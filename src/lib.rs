//! **MixQ-GNN** — mixed precision quantization for graph neural networks.
//!
//! A from-scratch Rust reproduction of *"Efficient Mixed Precision
//! Quantization in Graph Neural Networks"* (ICDE 2025): the full GNN
//! training stack (dense autograd, sparse kernels, layers, optimizers,
//! datasets) plus the paper's contribution — the Theorem 1 quantized
//! message-passing scheme and the MixQ differentiable bit-width search.
//!
//! This facade crate re-exports the workspace:
//!
//! * [`telemetry`] — zero-dependency metrics / span-tracing layer
//!   (`MIXQ_TELEMETRY=1` to enable; reports under `results/telemetry/`);
//! * [`faultinject`] — deterministic, env-gated fault injection
//!   (`MIXQ_FAULTS=grad_nan@epoch=3,...`) used to drill the recovery paths
//!   in training, checkpointing, the parallel runtime and integer inference;
//! * [`parallel`] — the scoped-thread runtime behind every compute kernel
//!   (`MIXQ_THREADS` / [`parallel::set_num_threads`]; results stay
//!   bit-identical to serial at any thread count);
//! * [`tensor`] — matrices, seeded RNG, quantization parameters, autograd;
//! * [`sparse`] — CSR matrices, float and integer SpMM, normalizations;
//! * [`graph`] — datasets, CSL, Laplacian PE, batching, splits;
//! * [`nn`] — layers, optimizers, metrics, architectures, trainers;
//! * [`core`] — quantizers, quantized/relaxed nets, the MixQ search,
//!   Theorem 1 and the integer inference engine.
//!
//! Start with `examples/quickstart.rs`.

pub use mixq_core as core;
pub use mixq_faultinject as faultinject;
pub use mixq_graph as graph;
pub use mixq_nn as nn;
pub use mixq_parallel as parallel;
pub use mixq_sparse as sparse;
pub use mixq_telemetry as telemetry;
pub use mixq_tensor as tensor;
