//! Dense building blocks: linear layers, MLPs and batch normalization.

use mixq_tensor::{Rng, Var};

use crate::param::{Fwd, ParamId, ParamSet};

/// Fully-connected layer `y = xW (+ b)`.
#[derive(Debug, Clone)]
pub struct Linear {
    pub w: ParamId,
    pub b: Option<ParamId>,
    pub in_dim: usize,
    pub out_dim: usize,
}

impl Linear {
    pub fn new(ps: &mut ParamSet, in_dim: usize, out_dim: usize, rng: &mut Rng) -> Self {
        Self {
            w: ps.add_glorot(in_dim, out_dim, rng),
            b: Some(ps.add_zeros(1, out_dim)),
            in_dim,
            out_dim,
        }
    }

    pub fn new_no_bias(ps: &mut ParamSet, in_dim: usize, out_dim: usize, rng: &mut Rng) -> Self {
        Self {
            w: ps.add_glorot(in_dim, out_dim, rng),
            b: None,
            in_dim,
            out_dim,
        }
    }

    pub fn forward(&self, f: &mut Fwd, x: Var) -> Var {
        let w = f.bind(self.w);
        let y = f.tape.matmul(x, w);
        match self.b {
            Some(b) => {
                let bv = f.bind(b);
                f.tape.add_bias(y, bv)
            }
            None => y,
        }
    }

    /// Multiply–accumulate count for an input with `rows` rows, used by the
    /// BitOPs cost model.
    pub fn macs(&self, rows: usize) -> u64 {
        rows as u64 * self.in_dim as u64 * self.out_dim as u64
    }
}

/// Batch normalization over rows with running statistics for inference.
#[derive(Debug, Clone)]
pub struct BatchNorm1d {
    pub gamma: ParamId,
    pub beta: ParamId,
    pub running_mean: Vec<f32>,
    pub running_var: Vec<f32>,
    pub momentum: f32,
    pub eps: f32,
}

impl BatchNorm1d {
    pub fn new(ps: &mut ParamSet, dim: usize) -> Self {
        Self {
            gamma: ps.add(mixq_tensor::Matrix::ones(1, dim)),
            beta: ps.add_zeros(1, dim),
            running_mean: vec![0.0; dim],
            running_var: vec![1.0; dim],
            momentum: 0.1,
            eps: 1e-5,
        }
    }

    pub fn forward(&mut self, f: &mut Fwd, x: Var) -> Var {
        if f.training {
            let gamma = f.bind(self.gamma);
            let beta = f.bind(self.beta);
            let out = f.tape.batch_norm(x, gamma, beta, self.eps);
            for (rm, &bm) in self.running_mean.iter_mut().zip(out.mean.iter()) {
                *rm = (1.0 - self.momentum) * *rm + self.momentum * bm;
            }
            for (rv, &bv) in self.running_var.iter_mut().zip(out.var.iter()) {
                *rv = (1.0 - self.momentum) * *rv + self.momentum * bv;
            }
            out.y
        } else {
            // Inference: constant affine with the running statistics.
            let g = f.ps.value(self.gamma).data().to_vec();
            let b = f.ps.value(self.beta).data().to_vec();
            let scale: Vec<f32> = g
                .iter()
                .zip(self.running_var.iter())
                .map(|(&g, &v)| g / (v + self.eps).sqrt())
                .collect();
            let shift: Vec<f32> = b
                .iter()
                .zip(self.running_mean.iter())
                .zip(scale.iter())
                .map(|((&b, &m), &s)| b - m * s)
                .collect();
            f.tape.affine_cols(x, scale, shift)
        }
    }
}

/// A stack of linear layers with ReLU (and optional batch norm) in between —
/// the update network of GIN.
#[derive(Debug, Clone)]
pub struct Mlp {
    pub layers: Vec<Linear>,
    pub norms: Vec<Option<BatchNorm1d>>,
}

impl Mlp {
    /// `dims = [in, h1, …, out]`; `batch_norm` inserts BN after every hidden
    /// activation (GIN convention).
    pub fn new(ps: &mut ParamSet, dims: &[usize], batch_norm: bool, rng: &mut Rng) -> Self {
        assert!(dims.len() >= 2);
        let mut layers = Vec::new();
        let mut norms = Vec::new();
        for w in dims.windows(2) {
            layers.push(Linear::new(ps, w[0], w[1], rng));
            norms.push(None);
        }
        if batch_norm {
            for (i, w) in dims.windows(2).enumerate() {
                if i + 1 < layers.len() {
                    norms[i] = Some(BatchNorm1d::new(ps, w[1]));
                }
            }
        }
        Self { layers, norms }
    }

    pub fn forward(&mut self, f: &mut Fwd, mut x: Var) -> Var {
        let last = self.layers.len() - 1;
        for i in 0..self.layers.len() {
            x = self.layers[i].forward(f, x);
            if i < last {
                if let Some(bn) = self.norms[i].as_mut() {
                    x = bn.forward(f, x);
                }
                x = f.tape.relu(x);
            }
        }
        x
    }

    pub fn macs(&self, rows: usize) -> u64 {
        self.layers.iter().map(|l| l.macs(rows)).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::param::Binding;
    use mixq_tensor::{Matrix, Rng, Tape};

    fn fwd_env() -> (ParamSet, Tape, Binding, Rng) {
        (
            ParamSet::new(),
            Tape::new(),
            Binding::new(),
            Rng::seed_from_u64(0),
        )
    }

    #[test]
    fn linear_forward_shape_and_bias() {
        let (mut ps, mut tape, mut binding, mut rng) = fwd_env();
        let lin = Linear::new(&mut ps, 4, 3, &mut rng);
        // Set a known bias.
        ps.value_mut(lin.b.unwrap())
            .data_mut()
            .copy_from_slice(&[1.0, 2.0, 3.0]);
        let mut f = Fwd {
            tape: &mut tape,
            ps: &ps,
            binding: &mut binding,
            rng: &mut rng,
            training: true,
        };
        let x = f.tape.constant(Matrix::zeros(5, 4));
        let y = lin.forward(&mut f, x);
        assert_eq!(f.tape.value(y).shape(), (5, 3));
        // Zero input ⇒ output equals bias on every row.
        for r in 0..5 {
            assert_eq!(f.tape.value(y).row_slice(r), &[1.0, 2.0, 3.0]);
        }
        assert_eq!(lin.macs(5), 5 * 4 * 3);
    }

    #[test]
    fn mlp_trains_xor() {
        // Classic nonlinear sanity check: an MLP must fit XOR.
        let mut ps = ParamSet::new();
        let mut rng = Rng::seed_from_u64(3);
        let mut mlp = Mlp::new(&mut ps, &[2, 8, 2], false, &mut rng);
        let x = Matrix::from_vec(4, 2, vec![0.0, 0.0, 0.0, 1.0, 1.0, 0.0, 1.0, 1.0]);
        let rows = vec![0, 1, 2, 3];
        let targets = vec![0usize, 1, 1, 0];
        let mut opt = crate::optim::Adam::new(0.03);
        let mut last_loss = f32::INFINITY;
        for _ in 0..400 {
            ps.zero_grads();
            let mut tape = Tape::new();
            let mut binding = Binding::new();
            let mut f = Fwd {
                tape: &mut tape,
                ps: &ps,
                binding: &mut binding,
                rng: &mut rng,
                training: true,
            };
            let xv = f.tape.constant(x.clone());
            let logits = mlp.forward(&mut f, xv);
            let lp = f.tape.log_softmax(logits);
            let loss = f.tape.nll_masked(lp, &rows, &targets);
            last_loss = tape.value(loss).item();
            tape.backward(loss);
            ps.pull_grads(&binding, &tape);
            opt.step(&mut ps);
        }
        assert!(last_loss < 0.1, "XOR loss stuck at {last_loss}");
    }

    #[test]
    fn batchnorm_running_stats_track_batches() {
        let mut ps = ParamSet::new();
        let mut rng = Rng::seed_from_u64(5);
        let mut bn = BatchNorm1d::new(&mut ps, 2);
        // Feed batches with mean ≈ (3, −1) repeatedly.
        for _ in 0..60 {
            let x = Matrix::from_fn(32, 2, |_, c| {
                let base = if c == 0 { 3.0 } else { -1.0 };
                base + rng.normal() * 0.5
            });
            let mut tape = Tape::new();
            let mut binding = Binding::new();
            let mut f = Fwd {
                tape: &mut tape,
                ps: &ps,
                binding: &mut binding,
                rng: &mut rng,
                training: true,
            };
            let xv = f.tape.constant(x);
            let _ = bn.forward(&mut f, xv);
        }
        assert!(
            (bn.running_mean[0] - 3.0).abs() < 0.3,
            "{:?}",
            bn.running_mean
        );
        assert!((bn.running_mean[1] + 1.0).abs() < 0.3);
        assert!(
            (bn.running_var[0] - 0.25).abs() < 0.15,
            "{:?}",
            bn.running_var
        );
    }

    #[test]
    fn batchnorm_eval_uses_running_stats() {
        let mut ps = ParamSet::new();
        let mut rng = Rng::seed_from_u64(6);
        let mut bn = BatchNorm1d::new(&mut ps, 1);
        bn.running_mean = vec![2.0];
        bn.running_var = vec![4.0];
        let mut tape = Tape::new();
        let mut binding = Binding::new();
        let mut f = Fwd {
            tape: &mut tape,
            ps: &ps,
            binding: &mut binding,
            rng: &mut rng,
            training: false,
        };
        let x = f.tape.constant(Matrix::from_vec(1, 1, vec![4.0]));
        let y = bn.forward(&mut f, x);
        // (4−2)/√(4+eps) ≈ 1.
        assert!((tape.value(y).item() - 1.0).abs() < 1e-3);
    }
}
