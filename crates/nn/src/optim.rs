//! Gradient-descent optimizers over a [`ParamSet`].

use crate::param::ParamSet;

/// Adam (Kingma & Ba) with optional decoupled weight decay.
#[derive(Debug, Clone)]
pub struct Adam {
    pub lr: f32,
    pub beta1: f32,
    pub beta2: f32,
    pub eps: f32,
    pub weight_decay: f32,
    t: u64,
}

impl Adam {
    pub fn new(lr: f32) -> Self {
        Self {
            lr,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
            weight_decay: 0.0,
            t: 0,
        }
    }

    pub fn with_weight_decay(mut self, wd: f32) -> Self {
        self.weight_decay = wd;
        self
    }

    /// Number of update steps taken so far (drives bias correction).
    pub fn step_count(&self) -> u64 {
        self.t
    }

    /// Restores the step counter, e.g. when resuming from a checkpoint so
    /// bias correction continues exactly where the interrupted run stopped.
    pub fn set_step_count(&mut self, t: u64) {
        self.t = t;
    }

    /// One update step using the gradients currently stored in `ps`.
    pub fn step(&mut self, ps: &mut ParamSet) {
        self.t += 1;
        let bc1 = 1.0 - self.beta1.powi(self.t as i32);
        let bc2 = 1.0 - self.beta2.powi(self.t as i32);
        for id in ps.ids().collect::<Vec<_>>() {
            let p = ps.param_mut(id);
            for i in 0..p.value.numel() {
                let g = p.grad.data()[i] + self.weight_decay * p.value.data()[i];
                let m = self.beta1 * p.m.data()[i] + (1.0 - self.beta1) * g;
                let v = self.beta2 * p.v.data()[i] + (1.0 - self.beta2) * g * g;
                p.m.data_mut()[i] = m;
                p.v.data_mut()[i] = v;
                let mhat = m / bc1;
                let vhat = v / bc2;
                p.value.data_mut()[i] -= self.lr * mhat / (vhat.sqrt() + self.eps);
            }
        }
    }
}

/// Plain SGD with optional momentum.
#[derive(Debug, Clone)]
pub struct Sgd {
    pub lr: f32,
    pub momentum: f32,
}

impl Sgd {
    pub fn new(lr: f32) -> Self {
        Self { lr, momentum: 0.0 }
    }

    pub fn step(&mut self, ps: &mut ParamSet) {
        for id in ps.ids().collect::<Vec<_>>() {
            let p = ps.param_mut(id);
            for i in 0..p.value.numel() {
                let g = p.grad.data()[i];
                // Reuse the Adam `m` buffer as the momentum buffer.
                let m = self.momentum * p.m.data()[i] + g;
                p.m.data_mut()[i] = m;
                p.value.data_mut()[i] -= self.lr * m;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mixq_tensor::{Matrix, Tape};

    use crate::param::Binding;

    /// Minimizes f(w) = Σ (w − target)² and checks convergence.
    fn converges(optimizer_step: &mut dyn FnMut(&mut ParamSet)) {
        let mut ps = ParamSet::new();
        let target = Matrix::from_vec(1, 3, vec![1.0, -2.0, 0.5]);
        let id = ps.add(Matrix::zeros(1, 3));
        for _ in 0..400 {
            ps.zero_grads();
            let mut tape = Tape::new();
            let mut binding = Binding::new();
            let w = binding.bind(&mut tape, &ps, id);
            let t = tape.constant(target.clone());
            let d = tape.sub(w, t);
            let sq = tape.mul(d, d);
            let loss = tape.sum_all(sq);
            tape.backward(loss);
            ps.pull_grads(&binding, &tape);
            optimizer_step(&mut ps);
        }
        assert!(
            ps.value(id).max_abs_diff(&target) < 1e-2,
            "did not converge: {:?}",
            ps.value(id)
        );
    }

    #[test]
    fn adam_converges_on_quadratic() {
        let mut opt = Adam::new(0.05);
        converges(&mut |ps| opt.step(ps));
    }

    #[test]
    fn sgd_converges_on_quadratic() {
        let mut opt = Sgd::new(0.05);
        converges(&mut |ps| opt.step(ps));
    }

    #[test]
    fn sgd_with_momentum_converges() {
        let mut opt = Sgd {
            lr: 0.02,
            momentum: 0.9,
        };
        converges(&mut |ps| opt.step(ps));
    }

    #[test]
    fn weight_decay_shrinks_weights() {
        let mut ps = ParamSet::new();
        let id = ps.add(Matrix::from_vec(1, 1, vec![5.0]));
        let mut opt = Adam::new(0.1).with_weight_decay(1.0);
        for _ in 0..200 {
            ps.zero_grads(); // gradient stays zero; only decay acts
            opt.step(&mut ps);
        }
        assert!(ps.value(id).item().abs() < 0.5);
    }
}

/// Learning-rate schedules, applied by setting `opt.lr` each epoch.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum LrSchedule {
    /// Constant learning rate.
    Constant,
    /// Multiply by `gamma` every `every` epochs.
    Step { every: usize, gamma: f32 },
    /// Cosine annealing from the base LR to `min_lr` over `total` epochs.
    Cosine { total: usize, min_lr: f32 },
    /// Linear warm-up over `warmup` epochs, then constant.
    Warmup { warmup: usize },
}

impl LrSchedule {
    /// Learning rate at `epoch` given the base rate.
    pub fn at(&self, base: f32, epoch: usize) -> f32 {
        match *self {
            LrSchedule::Constant => base,
            LrSchedule::Step { every, gamma } => base * gamma.powi((epoch / every.max(1)) as i32),
            LrSchedule::Cosine { total, min_lr } => {
                let t = (epoch as f32 / total.max(1) as f32).min(1.0);
                min_lr + 0.5 * (base - min_lr) * (1.0 + (std::f32::consts::PI * t).cos())
            }
            LrSchedule::Warmup { warmup } => {
                if warmup == 0 || epoch >= warmup {
                    base
                } else {
                    base * (epoch + 1) as f32 / warmup as f32
                }
            }
        }
    }
}

/// Scales all gradients so their global L2 norm is at most `max_norm`.
/// Returns the pre-clipping norm.
pub fn clip_grad_norm(ps: &mut ParamSet, max_norm: f32) -> f32 {
    assert!(max_norm > 0.0);
    let mut sq = 0f64;
    for id in ps.all_ids() {
        for &g in ps.grad(id).data() {
            sq += (g as f64) * (g as f64);
        }
    }
    let norm = sq.sqrt() as f32;
    if norm > max_norm {
        let scale = max_norm / norm;
        for id in ps.all_ids() {
            ps.param_mut(id).grad.scale_assign(scale);
        }
    }
    norm
}

#[cfg(test)]
mod schedule_tests {
    use super::*;
    use mixq_tensor::Matrix;

    #[test]
    fn schedules_produce_expected_rates() {
        let s = LrSchedule::Step {
            every: 10,
            gamma: 0.5,
        };
        assert_eq!(s.at(1.0, 0), 1.0);
        assert_eq!(s.at(1.0, 10), 0.5);
        assert_eq!(s.at(1.0, 25), 0.25);

        let c = LrSchedule::Cosine {
            total: 100,
            min_lr: 0.0,
        };
        assert!((c.at(1.0, 0) - 1.0).abs() < 1e-6);
        assert!((c.at(1.0, 50) - 0.5).abs() < 1e-6);
        assert!(c.at(1.0, 100) < 1e-6);
        assert!(c.at(1.0, 500) < 1e-6, "clamps past the horizon");

        let w = LrSchedule::Warmup { warmup: 4 };
        assert_eq!(w.at(1.0, 0), 0.25);
        assert_eq!(w.at(1.0, 3), 1.0);
        assert_eq!(w.at(1.0, 10), 1.0);
        assert_eq!(LrSchedule::Constant.at(0.3, 77), 0.3);
    }

    #[test]
    fn clipping_bounds_global_norm() {
        let mut ps = ParamSet::new();
        let a = ps.add(Matrix::zeros(1, 2));
        let b = ps.add(Matrix::zeros(1, 1));
        ps.param_mut(a).grad.data_mut().copy_from_slice(&[3.0, 4.0]);
        ps.param_mut(b).grad.data_mut().copy_from_slice(&[12.0]);
        // Global norm = sqrt(9 + 16 + 144) = 13.
        let norm = clip_grad_norm(&mut ps, 1.0);
        assert!((norm - 13.0).abs() < 1e-5);
        let mut sq = 0f32;
        for id in ps.all_ids() {
            sq += ps.grad(id).data().iter().map(|g| g * g).sum::<f32>();
        }
        assert!((sq.sqrt() - 1.0).abs() < 1e-5);
        // Below the bound: untouched.
        let norm2 = clip_grad_norm(&mut ps, 10.0);
        assert!((norm2 - 1.0).abs() < 1e-5);
    }
}
