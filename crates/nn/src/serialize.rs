//! Plain-text model checkpoints (no external dependencies): saves and
//! restores every parameter tensor of a [`ParamSet`] so trained models and
//! searched assignments survive process restarts.
//!
//! Format (line-oriented, `f32` round-trips via exact decimal):
//!
//! ```text
//! mixq-params v1
//! <num_params>
//! <rows> <cols>
//! <v0> <v1> …
//! …
//! ```
//!
//! All checkpoint files are written **atomically**: the bytes go to
//! `<path>.tmp`, are fsynced, and the temp file is renamed over the target
//! ([`atomic_write`]). A crash mid-write leaves at worst a stale `.tmp`
//! alongside the previous intact checkpoint — never a torn file at the
//! final path.
//!
//! [`TrainState`] extends the parameter format with everything needed to
//! resume an interrupted run bit-identically: epoch counter, (possibly
//! backed-off) learning rate, Adam step count and moment buffers, raw RNG
//! state, and the best-so-far tracking (`mixq-train-state v1`).

use std::fmt::Write as _;
use std::io::{Read, Write};
use std::path::{Path, PathBuf};

use mixq_tensor::{Matrix, MixqError, MixqResult};

use crate::param::ParamSet;

/// Serializes all parameter values (not optimizer state) to a string.
pub fn params_to_string(ps: &ParamSet) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "mixq-params v1");
    let _ = writeln!(out, "{}", ps.len());
    for id in ps.all_ids() {
        let m = ps.value(id);
        let _ = writeln!(out, "{} {}", m.rows(), m.cols());
        let mut first = true;
        for &v in m.data() {
            if !first {
                out.push(' ');
            }
            // {:?} prints the shortest decimal that round-trips the f32.
            let _ = write!(out, "{v:?}");
            first = false;
        }
        out.push('\n');
    }
    out
}

/// Parses a checkpoint produced by [`params_to_string`].
pub fn params_from_string(s: &str) -> MixqResult<ParamSet> {
    const KIND: &str = "mixq-params checkpoint";
    let err = |detail: String| MixqError::parse(KIND, detail);
    let mut lines = s.lines();
    let header = lines.next().ok_or_else(|| err("empty checkpoint".into()))?;
    if header != "mixq-params v1" {
        return Err(err(format!("unsupported checkpoint header: {header}")));
    }
    let count: usize = lines
        .next()
        .ok_or_else(|| err("missing parameter count".into()))?
        .trim()
        .parse()
        .map_err(|e| err(format!("bad parameter count: {e}")))?;
    let mut ps = ParamSet::new();
    for i in 0..count {
        let shape = lines
            .next()
            .ok_or_else(|| err(format!("missing shape of param {i}")))?;
        let mut it = shape.split_whitespace();
        let rows: usize = it
            .next()
            .and_then(|v| v.parse().ok())
            .ok_or_else(|| err(format!("bad rows of param {i}")))?;
        let cols: usize = it
            .next()
            .and_then(|v| v.parse().ok())
            .ok_or_else(|| err(format!("bad cols of param {i}")))?;
        let data_line = lines
            .next()
            .ok_or_else(|| err(format!("missing data of param {i}")))?;
        let data: Vec<f32> = data_line
            .split_whitespace()
            .map(|v| {
                v.parse::<f32>()
                    .map_err(|e| err(format!("bad value in param {i}: {e}")))
            })
            .collect::<Result<_, _>>()?;
        if data.len() != rows * cols {
            return Err(err(format!(
                "param {i}: expected {} values, found {}",
                rows * cols,
                data.len()
            )));
        }
        ps.add(Matrix::from_vec(rows, cols, data));
    }
    Ok(ps)
}

/// `<path>.tmp` — the staging file used by [`atomic_write`].
fn tmp_path(path: &Path) -> PathBuf {
    let mut os = path.as_os_str().to_owned();
    os.push(".tmp");
    PathBuf::from(os)
}

/// Crash-safe file write: the bytes land in `<path>.tmp`, are fsynced, and
/// the temp file is atomically renamed over `path`. Readers therefore see
/// either the complete old file or the complete new one, never a torn mix.
///
/// A `ckpt_torn` injection (see `mixq-faultinject`) emulates a crash
/// mid-write: half the bytes are left in the temp file, the rename is
/// skipped, and an `Io` error is returned — the previous checkpoint at
/// `path` stays intact.
pub fn atomic_write(path: impl AsRef<Path>, bytes: &[u8]) -> MixqResult<()> {
    let path = path.as_ref();
    let tmp = tmp_path(path);
    if mixq_faultinject::should_fire(mixq_faultinject::FaultKind::CkptTorn, None) {
        let mut f = std::fs::File::create(&tmp)?;
        f.write_all(&bytes[..bytes.len() / 2])?;
        return Err(
            std::io::Error::other("mixq-faultinject: injected torn checkpoint write").into(),
        );
    }
    let mut f = std::fs::File::create(&tmp)?;
    f.write_all(bytes)?;
    f.sync_all()?;
    drop(f);
    std::fs::rename(&tmp, path)?;
    Ok(())
}

/// Writes a checkpoint file (atomically; see [`atomic_write`]).
pub fn save_params(ps: &ParamSet, path: impl AsRef<Path>) -> MixqResult<()> {
    atomic_write(path, params_to_string(ps).as_bytes())
}

/// Reads a checkpoint file.
pub fn load_params(path: impl AsRef<Path>) -> MixqResult<ParamSet> {
    let mut s = String::new();
    std::fs::File::open(path)?.read_to_string(&mut s)?;
    params_from_string(&s)
}

/// Everything needed to resume an interrupted training run bit-identically
/// from the epoch after the checkpoint was taken.
#[derive(Debug, Clone)]
pub struct TrainState {
    /// The next epoch to run (epochs before it are complete).
    pub epoch: usize,
    /// Current learning rate (reflects divergence-recovery back-off).
    pub lr: f32,
    /// Adam step count, so bias correction resumes mid-stream.
    pub adam_t: u64,
    /// Raw RNG state (`Rng::state`), so dropout/eval draws continue the
    /// same stream as an uninterrupted run.
    pub rng_state: [u64; 4],
    /// Best validation metric so far (`f64::NEG_INFINITY` if none yet).
    pub best_val: f64,
    /// Epoch of `best_val`.
    pub best_epoch: usize,
    /// Divergences recovered so far.
    pub recovered: usize,
    /// Live parameters *including* Adam moment buffers.
    pub params: ParamSet,
    /// Snapshot of the best-so-far parameter values (may be empty when the
    /// caller does not track a best set, e.g. the relaxed bit-width search).
    pub best_params: ParamSet,
}

fn push_values(out: &mut String, data: &[f32]) {
    let mut first = true;
    for &v in data {
        if !first {
            out.push(' ');
        }
        let _ = write!(out, "{v:?}");
        first = false;
    }
    out.push('\n');
}

/// Serializes a [`TrainState`] (`mixq-train-state v1`, line-oriented; every
/// float is printed via `{:?}` so it round-trips exactly).
pub fn train_state_to_string(st: &TrainState) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "mixq-train-state v1");
    let _ = writeln!(out, "epoch {}", st.epoch);
    let _ = writeln!(out, "lr {:?}", st.lr);
    let _ = writeln!(out, "adam_t {}", st.adam_t);
    let [a, b, c, d] = st.rng_state;
    let _ = writeln!(out, "rng {a} {b} {c} {d}");
    let _ = writeln!(out, "best_val {:?}", st.best_val);
    let _ = writeln!(out, "best_epoch {}", st.best_epoch);
    let _ = writeln!(out, "recovered {}", st.recovered);
    let _ = writeln!(out, "params {}", st.params.len());
    for id in st.params.all_ids() {
        let p = st.params.param(id);
        let _ = writeln!(out, "{} {}", p.value.rows(), p.value.cols());
        push_values(&mut out, p.value.data());
        push_values(&mut out, p.m.data());
        push_values(&mut out, p.v.data());
    }
    let _ = writeln!(out, "best_params {}", st.best_params.len());
    for id in st.best_params.all_ids() {
        let m = st.best_params.value(id);
        let _ = writeln!(out, "{} {}", m.rows(), m.cols());
        push_values(&mut out, m.data());
    }
    out
}

/// Parses a checkpoint produced by [`train_state_to_string`].
pub fn train_state_from_string(s: &str) -> MixqResult<TrainState> {
    const KIND: &str = "mixq-train-state checkpoint";
    let err = |detail: String| MixqError::parse(KIND, detail);
    let mut lines = s.lines();
    let header = lines.next().ok_or_else(|| err("empty checkpoint".into()))?;
    if header != "mixq-train-state v1" {
        return Err(err(format!("unsupported checkpoint header: {header}")));
    }
    let field = |lines: &mut std::str::Lines, key: &str| -> MixqResult<String> {
        let line = lines
            .next()
            .ok_or_else(|| err(format!("missing field '{key}'")))?;
        line.strip_prefix(key)
            .and_then(|rest| rest.strip_prefix(' '))
            .map(|rest| rest.to_string())
            .ok_or_else(|| err(format!("expected field '{key}', found '{line}'")))
    };
    let values_line =
        |lines: &mut std::str::Lines, numel: usize, what: &str| -> MixqResult<Vec<f32>> {
            let line = lines.next().ok_or_else(|| err(format!("missing {what}")))?;
            let data: Vec<f32> = line
                .split_whitespace()
                .map(|v| {
                    v.parse::<f32>()
                        .map_err(|e| err(format!("bad value in {what}: {e}")))
                })
                .collect::<Result<_, _>>()?;
            if data.len() != numel {
                return Err(err(format!(
                    "{what}: expected {numel} values, found {}",
                    data.len()
                )));
            }
            Ok(data)
        };
    let shape_line = |lines: &mut std::str::Lines, what: &str| -> MixqResult<(usize, usize)> {
        let line = lines
            .next()
            .ok_or_else(|| err(format!("missing shape of {what}")))?;
        let mut it = line.split_whitespace();
        let rows = it
            .next()
            .and_then(|v| v.parse().ok())
            .ok_or_else(|| err(format!("bad rows of {what}")))?;
        let cols = it
            .next()
            .and_then(|v| v.parse().ok())
            .ok_or_else(|| err(format!("bad cols of {what}")))?;
        Ok((rows, cols))
    };

    let epoch: usize = field(&mut lines, "epoch")?
        .parse()
        .map_err(|e| err(format!("bad epoch: {e}")))?;
    let lr: f32 = field(&mut lines, "lr")?
        .parse()
        .map_err(|e| err(format!("bad lr: {e}")))?;
    let adam_t: u64 = field(&mut lines, "adam_t")?
        .parse()
        .map_err(|e| err(format!("bad adam_t: {e}")))?;
    let rng_line = field(&mut lines, "rng")?;
    let rng: Vec<u64> = rng_line
        .split_whitespace()
        .map(|v| v.parse().map_err(|e| err(format!("bad rng word: {e}"))))
        .collect::<Result<_, _>>()?;
    let rng_state: [u64; 4] = rng
        .try_into()
        .map_err(|_| err("rng state must have 4 words".into()))?;
    let best_val: f64 = field(&mut lines, "best_val")?
        .parse()
        .map_err(|e| err(format!("bad best_val: {e}")))?;
    let best_epoch: usize = field(&mut lines, "best_epoch")?
        .parse()
        .map_err(|e| err(format!("bad best_epoch: {e}")))?;
    let recovered: usize = field(&mut lines, "recovered")?
        .parse()
        .map_err(|e| err(format!("bad recovered: {e}")))?;

    let n_params: usize = field(&mut lines, "params")?
        .parse()
        .map_err(|e| err(format!("bad params count: {e}")))?;
    let mut params = ParamSet::new();
    for i in 0..n_params {
        let (rows, cols) = shape_line(&mut lines, &format!("param {i}"))?;
        let value = values_line(&mut lines, rows * cols, &format!("param {i} value"))?;
        let m = values_line(&mut lines, rows * cols, &format!("param {i} m"))?;
        let v = values_line(&mut lines, rows * cols, &format!("param {i} v"))?;
        let id = params.add(Matrix::from_vec(rows, cols, value));
        let p = params.param_mut(id);
        p.m = Matrix::from_vec(rows, cols, m);
        p.v = Matrix::from_vec(rows, cols, v);
    }
    let n_best: usize = field(&mut lines, "best_params")?
        .parse()
        .map_err(|e| err(format!("bad best_params count: {e}")))?;
    let mut best_params = ParamSet::new();
    for i in 0..n_best {
        let (rows, cols) = shape_line(&mut lines, &format!("best param {i}"))?;
        let value = values_line(&mut lines, rows * cols, &format!("best param {i}"))?;
        best_params.add(Matrix::from_vec(rows, cols, value));
    }
    Ok(TrainState {
        epoch,
        lr,
        adam_t,
        rng_state,
        best_val,
        best_epoch,
        recovered,
        params,
        best_params,
    })
}

/// Writes a training-state checkpoint (atomically; see [`atomic_write`]).
pub fn save_train_state(st: &TrainState, path: impl AsRef<Path>) -> MixqResult<()> {
    atomic_write(path, train_state_to_string(st).as_bytes())
}

/// Reads a training-state checkpoint file.
pub fn load_train_state(path: impl AsRef<Path>) -> MixqResult<TrainState> {
    let mut s = String::new();
    std::fs::File::open(path)?.read_to_string(&mut s)?;
    train_state_from_string(&s)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mixq_tensor::Rng;

    #[test]
    fn round_trips_exactly() {
        let mut ps = ParamSet::new();
        let mut rng = Rng::seed_from_u64(1);
        ps.add_glorot(3, 5, &mut rng);
        ps.add(Matrix::scalar(-1.5e-7));
        ps.add(Matrix::from_vec(
            1,
            3,
            vec![f32::MIN_POSITIVE, 0.1 + 0.2, -0.0],
        ));
        let text = params_to_string(&ps);
        let back = params_from_string(&text).unwrap();
        assert_eq!(back.len(), ps.len());
        for (a, b) in ps.all_ids().into_iter().zip(back.all_ids()) {
            assert_eq!(ps.value(a).shape(), back.value(b).shape());
            for (x, y) in ps.value(a).data().iter().zip(back.value(b).data()) {
                assert!(x.to_bits() == y.to_bits(), "f32 {x:?} did not round-trip");
            }
        }
    }

    #[test]
    fn file_round_trip() {
        let mut ps = ParamSet::new();
        ps.add(Matrix::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]));
        let path = std::env::temp_dir().join("mixq_ckpt_test.txt");
        save_params(&ps, &path).unwrap();
        let back = load_params(&path).unwrap();
        assert_eq!(back.len(), 1);
        let _ = std::fs::remove_file(path);
    }

    #[test]
    fn rejects_corrupt_checkpoints() {
        assert!(params_from_string("").is_err());
        assert!(params_from_string("wrong header\n1\n").is_err());
        assert!(params_from_string("mixq-params v1\n1\n2 2\n1.0 2.0 3.0\n").is_err());
        assert!(params_from_string("mixq-params v1\n1\n2 2\n1.0 2.0 3.0 oops\n").is_err());
    }

    #[test]
    fn atomic_save_overwrites_and_leaves_no_temp() {
        let mut ps = ParamSet::new();
        ps.add(Matrix::from_vec(1, 2, vec![1.0, 2.0]));
        let path = std::env::temp_dir().join("mixq_atomic_ckpt_test.txt");
        save_params(&ps, &path).unwrap();
        // Overwrite with different contents; the temp staging file must be
        // gone and the final file must hold the new checkpoint.
        let mut ps2 = ParamSet::new();
        ps2.add(Matrix::from_vec(1, 2, vec![-7.5, 0.25]));
        save_params(&ps2, &path).unwrap();
        assert!(!tmp_path(&path).exists(), "staging file must be renamed");
        let back = load_params(&path).unwrap();
        assert_eq!(back.value(back.all_ids()[0]).data(), &[-7.5, 0.25]);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn torn_write_is_rejected_as_parse_error() {
        // Emulate a crash mid-write under the *old* non-atomic scheme: the
        // file holds only a prefix of the checkpoint. load_params must fail
        // with a typed Parse error, not panic or return garbage.
        let mut ps = ParamSet::new();
        let mut rng = Rng::seed_from_u64(5);
        ps.add_glorot(4, 4, &mut rng);
        ps.add_glorot(4, 2, &mut rng);
        let text = params_to_string(&ps);
        let path = std::env::temp_dir().join("mixq_torn_ckpt_test.txt");
        std::fs::write(&path, &text.as_bytes()[..text.len() / 2]).unwrap();
        match load_params(&path) {
            Err(MixqError::Parse { .. }) => {}
            other => panic!("torn checkpoint must give Parse error, got {other:?}"),
        }
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn train_state_round_trips_exactly() {
        let mut rng = Rng::seed_from_u64(33);
        let mut params = ParamSet::new();
        let id = params.add_glorot(3, 2, &mut rng);
        {
            let p = params.param_mut(id);
            p.m = Matrix::from_vec(3, 2, vec![0.1, -0.2, 1e-9, 4.0, -0.0, 7.25]);
            p.v = Matrix::from_vec(3, 2, vec![0.5; 6]);
        }
        let mut best_params = ParamSet::new();
        best_params.add(Matrix::from_vec(1, 2, vec![0.1 + 0.2, f32::MIN_POSITIVE]));
        for _ in 0..9 {
            rng.next_u64();
        }
        let st = TrainState {
            epoch: 17,
            lr: 0.0025,
            adam_t: 17,
            rng_state: rng.state(),
            best_val: 0.8137,
            best_epoch: 12,
            recovered: 2,
            params,
            best_params,
        };
        let text = train_state_to_string(&st);
        let back = train_state_from_string(&text).unwrap();
        assert_eq!(back.epoch, 17);
        assert_eq!(back.lr.to_bits(), st.lr.to_bits());
        assert_eq!(back.adam_t, 17);
        assert_eq!(back.rng_state, st.rng_state);
        assert_eq!(back.best_val.to_bits(), st.best_val.to_bits());
        assert_eq!(back.best_epoch, 12);
        assert_eq!(back.recovered, 2);
        for (a, b) in st.params.all_ids().into_iter().zip(back.params.all_ids()) {
            let (pa, pb) = (st.params.param(a), back.params.param(b));
            for (x, y) in pa.value.data().iter().zip(pb.value.data()) {
                assert_eq!(x.to_bits(), y.to_bits());
            }
            for (x, y) in pa.m.data().iter().zip(pb.m.data()) {
                assert_eq!(x.to_bits(), y.to_bits());
            }
            for (x, y) in pa.v.data().iter().zip(pb.v.data()) {
                assert_eq!(x.to_bits(), y.to_bits());
            }
        }
        assert_eq!(back.best_params.len(), 1);

        // A fresh state with no best yet uses -inf, which must round-trip.
        let st2 = TrainState {
            best_val: f64::NEG_INFINITY,
            best_params: ParamSet::new(),
            ..st
        };
        let back2 = train_state_from_string(&train_state_to_string(&st2)).unwrap();
        assert_eq!(back2.best_val, f64::NEG_INFINITY);
        assert!(back2.best_params.is_empty());

        // Corrupt variants are rejected with typed errors.
        assert!(train_state_from_string("").is_err());
        assert!(train_state_from_string("mixq-train-state v2\n").is_err());
        let truncated = &text[..text.len() / 2];
        assert!(train_state_from_string(truncated).is_err());
    }
}
