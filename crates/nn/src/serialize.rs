//! Plain-text model checkpoints (no external dependencies): saves and
//! restores every parameter tensor of a [`ParamSet`] so trained models and
//! searched assignments survive process restarts.
//!
//! Format (line-oriented, `f32` round-trips via exact decimal):
//!
//! ```text
//! mixq-params v1
//! <num_params>
//! <rows> <cols>
//! <v0> <v1> …
//! …
//! ```

use std::fmt::Write as _;
use std::io::{Read, Write};
use std::path::Path;

use mixq_tensor::{Matrix, MixqError, MixqResult};

use crate::param::ParamSet;

/// Serializes all parameter values (not optimizer state) to a string.
pub fn params_to_string(ps: &ParamSet) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "mixq-params v1");
    let _ = writeln!(out, "{}", ps.len());
    for id in ps.all_ids() {
        let m = ps.value(id);
        let _ = writeln!(out, "{} {}", m.rows(), m.cols());
        let mut first = true;
        for &v in m.data() {
            if !first {
                out.push(' ');
            }
            // {:?} prints the shortest decimal that round-trips the f32.
            let _ = write!(out, "{v:?}");
            first = false;
        }
        out.push('\n');
    }
    out
}

/// Parses a checkpoint produced by [`params_to_string`].
pub fn params_from_string(s: &str) -> MixqResult<ParamSet> {
    const KIND: &str = "mixq-params checkpoint";
    let err = |detail: String| MixqError::parse(KIND, detail);
    let mut lines = s.lines();
    let header = lines.next().ok_or_else(|| err("empty checkpoint".into()))?;
    if header != "mixq-params v1" {
        return Err(err(format!("unsupported checkpoint header: {header}")));
    }
    let count: usize = lines
        .next()
        .ok_or_else(|| err("missing parameter count".into()))?
        .trim()
        .parse()
        .map_err(|e| err(format!("bad parameter count: {e}")))?;
    let mut ps = ParamSet::new();
    for i in 0..count {
        let shape = lines
            .next()
            .ok_or_else(|| err(format!("missing shape of param {i}")))?;
        let mut it = shape.split_whitespace();
        let rows: usize = it
            .next()
            .and_then(|v| v.parse().ok())
            .ok_or_else(|| err(format!("bad rows of param {i}")))?;
        let cols: usize = it
            .next()
            .and_then(|v| v.parse().ok())
            .ok_or_else(|| err(format!("bad cols of param {i}")))?;
        let data_line = lines
            .next()
            .ok_or_else(|| err(format!("missing data of param {i}")))?;
        let data: Vec<f32> = data_line
            .split_whitespace()
            .map(|v| {
                v.parse::<f32>()
                    .map_err(|e| err(format!("bad value in param {i}: {e}")))
            })
            .collect::<Result<_, _>>()?;
        if data.len() != rows * cols {
            return Err(err(format!(
                "param {i}: expected {} values, found {}",
                rows * cols,
                data.len()
            )));
        }
        ps.add(Matrix::from_vec(rows, cols, data));
    }
    Ok(ps)
}

/// Writes a checkpoint file.
pub fn save_params(ps: &ParamSet, path: impl AsRef<Path>) -> MixqResult<()> {
    let mut f = std::fs::File::create(path)?;
    f.write_all(params_to_string(ps).as_bytes())?;
    Ok(())
}

/// Reads a checkpoint file.
pub fn load_params(path: impl AsRef<Path>) -> MixqResult<ParamSet> {
    let mut s = String::new();
    std::fs::File::open(path)?.read_to_string(&mut s)?;
    params_from_string(&s)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mixq_tensor::Rng;

    #[test]
    fn round_trips_exactly() {
        let mut ps = ParamSet::new();
        let mut rng = Rng::seed_from_u64(1);
        ps.add_glorot(3, 5, &mut rng);
        ps.add(Matrix::scalar(-1.5e-7));
        ps.add(Matrix::from_vec(
            1,
            3,
            vec![f32::MIN_POSITIVE, 0.1 + 0.2, -0.0],
        ));
        let text = params_to_string(&ps);
        let back = params_from_string(&text).unwrap();
        assert_eq!(back.len(), ps.len());
        for (a, b) in ps.all_ids().into_iter().zip(back.all_ids()) {
            assert_eq!(ps.value(a).shape(), back.value(b).shape());
            for (x, y) in ps.value(a).data().iter().zip(back.value(b).data()) {
                assert!(x.to_bits() == y.to_bits(), "f32 {x:?} did not round-trip");
            }
        }
    }

    #[test]
    fn file_round_trip() {
        let mut ps = ParamSet::new();
        ps.add(Matrix::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]));
        let path = std::env::temp_dir().join("mixq_ckpt_test.txt");
        save_params(&ps, &path).unwrap();
        let back = load_params(&path).unwrap();
        assert_eq!(back.len(), 1);
        let _ = std::fs::remove_file(path);
    }

    #[test]
    fn rejects_corrupt_checkpoints() {
        assert!(params_from_string("").is_err());
        assert!(params_from_string("wrong header\n1\n").is_err());
        assert!(params_from_string("mixq-params v1\n1\n2 2\n1.0 2.0 3.0\n").is_err());
        assert!(params_from_string("mixq-params v1\n1\n2 2\n1.0 2.0 3.0 oops\n").is_err());
    }
}
