//! Parameter storage and the per-forward binding between parameters and
//! tape variables.
//!
//! Layers hold [`ParamId`]s into a shared [`ParamSet`]; each forward pass
//! *binds* the parameters it uses onto a fresh [`Tape`](mixq_tensor::Tape)
//! via a [`Binding`], and after `backward` the gradients are pulled back
//! into the `ParamSet` where the optimizer finds them.

use mixq_tensor::{Matrix, Rng, Tape, Var};

/// Handle to one parameter tensor in a [`ParamSet`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ParamId(usize);

/// One learnable tensor plus its gradient and Adam moment estimates.
#[derive(Debug, Clone)]
pub struct Param {
    pub value: Matrix,
    pub grad: Matrix,
    pub m: Matrix,
    pub v: Matrix,
}

/// Arena of all learnable parameters of a model.
#[derive(Debug, Clone, Default)]
pub struct ParamSet {
    params: Vec<Param>,
}

impl ParamSet {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn add(&mut self, value: Matrix) -> ParamId {
        let (r, c) = value.shape();
        self.params.push(Param {
            value,
            grad: Matrix::zeros(r, c),
            m: Matrix::zeros(r, c),
            v: Matrix::zeros(r, c),
        });
        ParamId(self.params.len() - 1)
    }

    /// Glorot/Xavier-uniform initialized matrix, the standard GNN choice.
    pub fn add_glorot(&mut self, rows: usize, cols: usize, rng: &mut Rng) -> ParamId {
        let limit = (6.0 / (rows + cols) as f32).sqrt();
        let m = Matrix::from_fn(rows, cols, |_, _| rng.uniform_in(-limit, limit));
        self.add(m)
    }

    pub fn add_zeros(&mut self, rows: usize, cols: usize) -> ParamId {
        self.add(Matrix::zeros(rows, cols))
    }

    pub fn value(&self, id: ParamId) -> &Matrix {
        &self.params[id.0].value
    }

    pub fn value_mut(&mut self, id: ParamId) -> &mut Matrix {
        &mut self.params[id.0].value
    }

    pub fn grad(&self, id: ParamId) -> &Matrix {
        &self.params[id.0].grad
    }

    /// Mutable gradient access (fault-injection sites and custom
    /// regularizers write through this).
    pub fn grad_mut(&mut self, id: ParamId) -> &mut Matrix {
        &mut self.params[id.0].grad
    }

    pub fn len(&self) -> usize {
        self.params.len()
    }

    pub fn is_empty(&self) -> bool {
        self.params.is_empty()
    }

    /// Total number of scalar parameters (for Table 1-style accounting).
    pub fn num_scalars(&self) -> usize {
        self.params.iter().map(|p| p.value.numel()).sum()
    }

    /// Global L2 norm of all gradient buffers (√ Σᵢ gᵢ²), accumulated in
    /// `f64` so it is stable across parameter orderings. Used by the
    /// training telemetry; call after [`ParamSet::pull_grads`].
    pub fn grad_norm(&self) -> f64 {
        self.params
            .iter()
            .flat_map(|p| p.grad.data().iter())
            .map(|&g| g as f64 * g as f64)
            .sum::<f64>()
            .sqrt()
    }

    /// `true` iff every parameter *value* is finite. Checked before taking
    /// a checkpoint and when deciding whether a rollback is needed.
    pub fn all_finite(&self) -> bool {
        self.params.iter().all(|p| !p.value.has_non_finite())
    }

    /// `true` iff every gradient buffer is finite. The training loops run
    /// this after `pull_grads` to detect divergence before the optimizer
    /// can propagate NaN/Inf into the weights.
    pub fn grads_finite(&self) -> bool {
        self.params.iter().all(|p| !p.grad.has_non_finite())
    }

    /// Zeroes the gradient of one parameter (used to freeze it for a step).
    pub fn grad_zero(&mut self, id: ParamId) {
        self.params[id.0].grad.data_mut().fill(0.0);
    }

    pub fn zero_grads(&mut self) {
        for p in &mut self.params {
            p.grad.data_mut().fill(0.0);
        }
    }

    pub(crate) fn param(&self, id: ParamId) -> &Param {
        &self.params[id.0]
    }

    pub(crate) fn param_mut(&mut self, id: ParamId) -> &mut Param {
        &mut self.params[id.0]
    }

    pub(crate) fn ids(&self) -> impl Iterator<Item = ParamId> {
        (0..self.params.len()).map(ParamId)
    }

    /// All parameter ids (e.g. to freeze everything except a subset).
    pub fn all_ids(&self) -> Vec<ParamId> {
        (0..self.params.len()).map(ParamId).collect()
    }

    /// Accumulates the tape gradients recorded in `binding` into the
    /// parameters' `grad` buffers. Call after `tape.backward`.
    pub fn pull_grads(&mut self, binding: &Binding, tape: &Tape) {
        for &(id, var) in &binding.pairs {
            if let Some(g) = tape.grad(var) {
                self.params[id.0].grad.add_assign(g);
            }
        }
    }
}

/// Records which tape variable each parameter was bound to in one forward
/// pass. A parameter bound twice reuses the same variable so gradient
/// accumulation happens on the tape.
#[derive(Debug, Default)]
pub struct Binding {
    pairs: Vec<(ParamId, Var)>,
}

impl Binding {
    pub fn new() -> Self {
        Self::default()
    }

    /// Places the parameter's current value on the tape as a leaf (or
    /// returns the existing variable if already bound this pass).
    pub fn bind(&mut self, tape: &mut Tape, ps: &ParamSet, id: ParamId) -> Var {
        if let Some(&(_, v)) = self.pairs.iter().find(|(pid, _)| *pid == id) {
            return v;
        }
        let v = tape.leaf(ps.value(id).clone());
        self.pairs.push((id, v));
        v
    }
}

/// Everything a layer needs during one forward pass.
pub struct Fwd<'a> {
    pub tape: &'a mut Tape,
    pub ps: &'a ParamSet,
    pub binding: &'a mut Binding,
    pub rng: &'a mut Rng,
    pub training: bool,
}

impl<'a> Fwd<'a> {
    pub fn bind(&mut self, id: ParamId) -> Var {
        self.binding.bind(self.tape, self.ps, id)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn glorot_init_within_limit() {
        let mut ps = ParamSet::new();
        let mut rng = Rng::seed_from_u64(1);
        let id = ps.add_glorot(10, 20, &mut rng);
        let limit = (6.0f32 / 30.0).sqrt();
        assert!(ps.value(id).data().iter().all(|v| v.abs() <= limit));
        assert_eq!(ps.num_scalars(), 200);
    }

    #[test]
    fn binding_reuses_vars_and_accumulates_grads() {
        let mut ps = ParamSet::new();
        let id = ps.add(Matrix::from_vec(1, 2, vec![2.0, 3.0]));
        let mut tape = Tape::new();
        let mut binding = Binding::new();
        let v1 = binding.bind(&mut tape, &ps, id);
        let v2 = binding.bind(&mut tape, &ps, id);
        assert_eq!(v1, v2, "same param must bind to the same var");

        // loss = sum(w ⊙ w) ⇒ dw = 2w
        let y = tape.mul(v1, v2);
        let loss = tape.sum_all(y);
        tape.backward(loss);
        ps.pull_grads(&binding, &tape);
        assert_eq!(ps.grad(id).data(), &[4.0, 6.0]);

        // pull twice accumulates (caller controls zeroing).
        ps.pull_grads(&binding, &tape);
        assert_eq!(ps.grad(id).data(), &[8.0, 12.0]);
        ps.zero_grads();
        assert_eq!(ps.grad(id).data(), &[0.0, 0.0]);
    }
}
