//! Message-passing layers (FP32 reference implementations).
//!
//! Every layer follows the paper's MPNN formulation (Eq. 2): a message
//! transform `M`, sparse aggregation by an adjacency operator, and an update
//! `U`. The quantized counterparts live in `mixq-core`; these are the FP32
//! baselines and the substrate the relaxed architectures wrap.

use std::sync::Arc;

use mixq_sparse::{CooEntry, CsrMatrix};
use mixq_tensor::{Matrix, SpPair, Var};

use crate::layers::{Linear, Mlp};
use crate::param::{Fwd, ParamId, ParamSet};

/// Returns a copy of `a` with unit self-loops added (structure used by GAT
/// attention neighbourhoods).
pub fn with_self_loops(a: &CsrMatrix) -> CsrMatrix {
    let n = a.rows();
    let mut entries = Vec::with_capacity(a.nnz() + n);
    for r in 0..n {
        entries.push(CooEntry {
            row: r,
            col: r,
            val: 1.0,
        });
        for (c, v) in a.row(r) {
            if c != r {
                entries.push(CooEntry {
                    row: r,
                    col: c,
                    val: v,
                });
            }
        }
    }
    CsrMatrix::from_coo(n, n, entries)
}

/// GCN layer `H' = Â H Θ (+ b)` with `Â = D^{-1/2}(I+A)D^{-1/2}` supplied by
/// the caller (so normalization is done once per dataset).
#[derive(Debug, Clone)]
pub struct GcnConv {
    pub lin: Linear,
}

impl GcnConv {
    pub fn new(
        ps: &mut ParamSet,
        in_dim: usize,
        out_dim: usize,
        rng: &mut mixq_tensor::Rng,
    ) -> Self {
        Self {
            lin: Linear::new(ps, in_dim, out_dim, rng),
        }
    }

    pub fn forward(&self, f: &mut Fwd, adj_norm: &Arc<SpPair>, x: Var) -> Var {
        // XΘ first: cheaper when out_dim < in_dim, and it matches the
        // quantized execution order of Theorem 1's example (§4).
        let xw = self.lin.forward(f, x);
        f.tape.spmm(adj_norm, xw)
    }
}

/// GIN layer `H' = MLP((1+ε)·H + A·H)` with a learnable ε.
#[derive(Debug, Clone)]
pub struct GinConv {
    pub mlp: Mlp,
    pub eps: ParamId,
}

impl GinConv {
    pub fn new(
        ps: &mut ParamSet,
        in_dim: usize,
        hidden: usize,
        out_dim: usize,
        batch_norm: bool,
        rng: &mut mixq_tensor::Rng,
    ) -> Self {
        Self {
            mlp: Mlp::new(ps, &[in_dim, hidden, out_dim], batch_norm, rng),
            eps: ps.add_zeros(1, 1),
        }
    }

    pub fn forward(&mut self, f: &mut Fwd, adj: &Arc<SpPair>, x: Var) -> Var {
        let agg = f.tape.spmm(adj, x);
        let eps = f.bind(self.eps);
        let one = f.tape.constant(Matrix::scalar(1.0));
        let one_eps = f.tape.add(one, eps);
        let scaled = f.tape.mul_scalar_var(x, one_eps);
        let combined = f.tape.add(scaled, agg);
        self.mlp.forward(f, combined)
    }
}

/// GraphSAGE (mean aggregator): `H' = H Θ₁ + (D⁻¹A H) Θ₂ (+ b)`.
/// The caller passes the row-normalized adjacency.
#[derive(Debug, Clone)]
pub struct SageConv {
    pub lin_root: Linear,
    pub lin_neigh: Linear,
}

impl SageConv {
    pub fn new(
        ps: &mut ParamSet,
        in_dim: usize,
        out_dim: usize,
        rng: &mut mixq_tensor::Rng,
    ) -> Self {
        Self {
            lin_root: Linear::new(ps, in_dim, out_dim, rng),
            lin_neigh: Linear::new_no_bias(ps, in_dim, out_dim, rng),
        }
    }

    pub fn forward(&self, f: &mut Fwd, adj_mean: &Arc<SpPair>, x: Var) -> Var {
        let root = self.lin_root.forward(f, x);
        let agg = f.tape.spmm(adj_mean, x);
        let neigh = self.lin_neigh.forward(f, agg);
        f.tape.add(root, neigh)
    }
}

/// Topology-adaptive GCN: `H' = Σ_{k=0}^{K} (Â^k H) Θ_k`.
#[derive(Debug, Clone)]
pub struct TagConv {
    pub lins: Vec<Linear>,
}

impl TagConv {
    pub fn new(
        ps: &mut ParamSet,
        in_dim: usize,
        out_dim: usize,
        k: usize,
        rng: &mut mixq_tensor::Rng,
    ) -> Self {
        let lins = (0..=k)
            .map(|i| {
                if i == 0 {
                    Linear::new(ps, in_dim, out_dim, rng)
                } else {
                    Linear::new_no_bias(ps, in_dim, out_dim, rng)
                }
            })
            .collect();
        Self { lins }
    }

    pub fn forward(&self, f: &mut Fwd, adj_norm: &Arc<SpPair>, x: Var) -> Var {
        let mut hop = x;
        let mut out = self.lins[0].forward(f, x);
        for lin in &self.lins[1..] {
            hop = f.tape.spmm(adj_norm, hop);
            let term = lin.forward(f, hop);
            out = f.tape.add(out, term);
        }
        out
    }
}

/// Simplified GCN (SGC): `H' = Â^K H Θ` — all propagation, one transform.
#[derive(Debug, Clone)]
pub struct SgcConv {
    pub lin: Linear,
    pub k: usize,
}

impl SgcConv {
    pub fn new(
        ps: &mut ParamSet,
        in_dim: usize,
        out_dim: usize,
        k: usize,
        rng: &mut mixq_tensor::Rng,
    ) -> Self {
        Self {
            lin: Linear::new(ps, in_dim, out_dim, rng),
            k,
        }
    }

    pub fn forward(&self, f: &mut Fwd, adj_norm: &Arc<SpPair>, x: Var) -> Var {
        let mut h = x;
        for _ in 0..self.k {
            h = f.tape.spmm(adj_norm, h);
        }
        self.lin.forward(f, h)
    }
}

/// Graph attention layer (GAT, single head):
/// `y_i = Σ_{j∈N(i)∪{i}} α_ij · (x_j W)` with attention coefficients
/// `α_ij = softmax_j(LeakyReLU(aᵀ_src (x_i W) + aᵀ_dst (x_j W)))`.
#[derive(Debug, Clone)]
pub struct GatConv {
    pub lin: Linear,
    pub a_src: ParamId,
    pub a_dst: ParamId,
    pub slope: f32,
    loops: Option<Arc<CsrMatrix>>,
}

impl GatConv {
    pub fn new(
        ps: &mut ParamSet,
        in_dim: usize,
        out_dim: usize,
        rng: &mut mixq_tensor::Rng,
    ) -> Self {
        Self {
            lin: Linear::new_no_bias(ps, in_dim, out_dim, rng),
            a_src: ps.add_glorot(out_dim, 1, rng),
            a_dst: ps.add_glorot(out_dim, 1, rng),
            slope: 0.2,
            loops: None,
        }
    }

    /// `adj` is the raw adjacency; the self-loop-augmented attention
    /// structure is built once and cached.
    pub fn forward(&mut self, f: &mut Fwd, adj: &Arc<SpPair>, x: Var) -> Var {
        if self.loops.is_none() {
            self.loops = Some(Arc::new(with_self_loops(&adj.a)));
        }
        let h = self.lin.forward(f, x);
        let asrc = f.bind(self.a_src);
        let adst = f.bind(self.a_dst);
        let s = f.tape.matmul(h, asrc);
        let d = f.tape.matmul(h, adst);
        f.tape
            .gat_aggregate(h, s, d, self.loops.as_ref().unwrap(), self.slope)
    }
}

/// UniMP-style transformer convolution (single head): projects queries,
/// keys and values with learnable matrices and aggregates neighbours
/// (incl. a self-loop) by scaled dot-product attention, plus a residual
/// root transform:
/// `y_i = x_i W_r + Σ_{j∈N(i)∪{i}} softmax_j(⟨x_i W_q, x_j W_k⟩/√d) · x_j W_v`.
#[derive(Debug, Clone)]
pub struct TransformerConv {
    pub w_q: Linear,
    pub w_k: Linear,
    pub w_v: Linear,
    pub w_root: Linear,
    loops: Option<Arc<CsrMatrix>>,
}

impl TransformerConv {
    pub fn new(
        ps: &mut ParamSet,
        in_dim: usize,
        out_dim: usize,
        rng: &mut mixq_tensor::Rng,
    ) -> Self {
        Self {
            w_q: Linear::new_no_bias(ps, in_dim, out_dim, rng),
            w_k: Linear::new_no_bias(ps, in_dim, out_dim, rng),
            w_v: Linear::new_no_bias(ps, in_dim, out_dim, rng),
            w_root: Linear::new(ps, in_dim, out_dim, rng),
            loops: None,
        }
    }

    pub fn forward(&mut self, f: &mut Fwd, adj: &Arc<SpPair>, x: Var) -> Var {
        if self.loops.is_none() {
            self.loops = Some(Arc::new(with_self_loops(&adj.a)));
        }
        let q = self.w_q.forward(f, x);
        let k = self.w_k.forward(f, x);
        let v = self.w_v.forward(f, x);
        let attn = f
            .tape
            .dot_attn_aggregate(q, k, v, self.loops.as_ref().unwrap());
        let root = self.w_root.forward(f, x);
        f.tape.add(root, attn)
    }
}

/// APPNP-style propagation: `Z⁰ = H`, `Z^{t+1} = (1−α)ÂZ^t + αH`.
/// Applied after a feature transform; has no parameters of its own.
#[derive(Debug, Clone)]
pub struct AppnpProp {
    pub k: usize,
    pub alpha: f32,
}

impl AppnpProp {
    pub fn forward(&self, f: &mut Fwd, adj_norm: &Arc<SpPair>, h: Var) -> Var {
        let h_scaled = f.tape.scale(h, self.alpha);
        let mut z = h;
        for _ in 0..self.k {
            let prop = f.tape.spmm(adj_norm, z);
            let damped = f.tape.scale(prop, 1.0 - self.alpha);
            z = f.tape.add(damped, h_scaled);
        }
        z
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::param::Binding;
    use mixq_sparse::{gcn_normalize, row_normalize, CooEntry, CsrMatrix};
    use mixq_tensor::{Rng, Tape};

    fn tiny_graph() -> CsrMatrix {
        CsrMatrix::from_coo(
            3,
            3,
            vec![
                CooEntry {
                    row: 0,
                    col: 1,
                    val: 1.0,
                },
                CooEntry {
                    row: 1,
                    col: 0,
                    val: 1.0,
                },
                CooEntry {
                    row: 1,
                    col: 2,
                    val: 1.0,
                },
                CooEntry {
                    row: 2,
                    col: 1,
                    val: 1.0,
                },
            ],
        )
    }

    macro_rules! fwd {
        ($ps:expr, $tape:expr, $binding:expr, $rng:expr) => {
            Fwd {
                tape: &mut $tape,
                ps: &$ps,
                binding: &mut $binding,
                rng: &mut $rng,
                training: true,
            }
        };
    }

    #[test]
    fn gcn_matches_manual_formula() {
        let mut ps = ParamSet::new();
        let mut rng = Rng::seed_from_u64(1);
        let conv = GcnConv::new(&mut ps, 2, 2, &mut rng);
        let adj_norm = gcn_normalize(&tiny_graph());
        let dense_a = Matrix::from_vec(3, 3, adj_norm.to_dense());
        let pair = SpPair::new(adj_norm);
        let x = Matrix::from_fn(3, 2, |r, c| (r + c) as f32);

        let mut tape = Tape::new();
        let mut binding = Binding::new();
        let mut f = fwd!(ps, tape, binding, rng);
        let xv = f.tape.constant(x.clone());
        let y = conv.forward(&mut f, &pair, xv);

        // Manual: Â (X Θ) + b
        let w = ps.value(conv.lin.w);
        let expect = dense_a.matmul(&x.matmul(w)); // bias is zero at init
        assert!(tape.value(y).max_abs_diff(&expect) < 1e-5);
    }

    #[test]
    fn gin_eps_zero_is_sum_of_self_and_neighbors() {
        let mut ps = ParamSet::new();
        let mut rng = Rng::seed_from_u64(2);
        let mut conv = GinConv::new(&mut ps, 2, 4, 2, false, &mut rng);
        let adj = tiny_graph();
        let dense_a = Matrix::from_vec(3, 3, adj.to_dense());
        let pair = SpPair::new(adj);
        let x = Matrix::from_fn(3, 2, |r, c| (r * 2 + c) as f32 * 0.3);

        let mut tape = Tape::new();
        let mut binding = Binding::new();
        let mut f = fwd!(ps, tape, binding, rng);
        let xv = f.tape.constant(x.clone());
        let y = conv.forward(&mut f, &pair, xv);

        // ε = 0 at init ⇒ MLP input is X + AX; check through the MLP.
        let combined = {
            let ax = dense_a.matmul(&x);
            ax.zip(&x, |a, b| a + b)
        };
        let w0 = ps.value(conv.mlp.layers[0].w).clone();
        let w1 = ps.value(conv.mlp.layers[1].w).clone();
        let h = combined.matmul(&w0).map(|v| v.max(0.0)); // biases are zero
        let expect = h.matmul(&w1);
        assert!(tape.value(y).max_abs_diff(&expect) < 1e-5);
    }

    #[test]
    fn sage_combines_root_and_neighbors() {
        let mut ps = ParamSet::new();
        let mut rng = Rng::seed_from_u64(3);
        let conv = SageConv::new(&mut ps, 2, 3, &mut rng);
        let adj_mean = row_normalize(&tiny_graph());
        let dense_a = Matrix::from_vec(3, 3, adj_mean.to_dense());
        let pair = SpPair::new(adj_mean);
        let x = Matrix::from_fn(3, 2, |r, c| (r as f32 - c as f32) * 0.5);

        let mut tape = Tape::new();
        let mut binding = Binding::new();
        let mut f = fwd!(ps, tape, binding, rng);
        let xv = f.tape.constant(x.clone());
        let y = conv.forward(&mut f, &pair, xv);

        let w1 = ps.value(conv.lin_root.w);
        let w2 = ps.value(conv.lin_neigh.w);
        let expect = x
            .matmul(w1)
            .zip(&dense_a.matmul(&x).matmul(w2), |a, b| a + b);
        assert!(tape.value(y).max_abs_diff(&expect) < 1e-5);
    }

    #[test]
    fn tag_k0_equals_linear() {
        let mut ps = ParamSet::new();
        let mut rng = Rng::seed_from_u64(4);
        let conv = TagConv::new(&mut ps, 3, 2, 0, &mut rng);
        let pair = SpPair::new(gcn_normalize(&tiny_graph()));
        let x = Matrix::from_fn(3, 3, |r, c| (r + c) as f32 * 0.1);

        let mut tape = Tape::new();
        let mut binding = Binding::new();
        let mut f = fwd!(ps, tape, binding, rng);
        let xv = f.tape.constant(x.clone());
        let y = conv.forward(&mut f, &pair, xv);
        let expect = x.matmul(ps.value(conv.lins[0].w));
        assert!(tape.value(y).max_abs_diff(&expect) < 1e-5);
    }

    #[test]
    fn sgc_propagates_k_times() {
        let mut ps = ParamSet::new();
        let mut rng = Rng::seed_from_u64(5);
        let conv = SgcConv::new(&mut ps, 2, 2, 3, &mut rng);
        let adj_norm = gcn_normalize(&tiny_graph());
        let dense = Matrix::from_vec(3, 3, adj_norm.to_dense());
        let pair = SpPair::new(adj_norm);
        let x = Matrix::from_fn(3, 2, |r, c| (r * 2 + c) as f32 * 0.2);

        let mut tape = Tape::new();
        let mut binding = Binding::new();
        let mut f = fwd!(ps, tape, binding, rng);
        let xv = f.tape.constant(x.clone());
        let y = conv.forward(&mut f, &pair, xv);
        let a3 = dense.matmul(&dense).matmul(&dense);
        let expect = a3.matmul(&x).matmul(ps.value(conv.lin.w));
        assert!(tape.value(y).max_abs_diff(&expect) < 1e-4);
    }

    #[test]
    fn appnp_alpha_one_is_identity() {
        let ps = ParamSet::new();
        let mut rng = Rng::seed_from_u64(6);
        let prop = AppnpProp { k: 4, alpha: 1.0 };
        let pair = SpPair::new(gcn_normalize(&tiny_graph()));
        let x = Matrix::from_fn(3, 2, |r, c| (r + 2 * c) as f32);

        let mut tape = Tape::new();
        let mut binding = Binding::new();
        let mut f = fwd!(ps, tape, binding, rng);
        let xv = f.tape.constant(x.clone());
        let y = prop.forward(&mut f, &pair, xv);
        assert!(tape.value(y).max_abs_diff(&x) < 1e-5);
    }
}

#[cfg(test)]
mod gat_tests {
    use super::*;
    use crate::param::{Binding, ParamSet};
    use mixq_sparse::CsrMatrix;
    use mixq_tensor::{Rng, Tape};

    #[test]
    fn self_loops_added_once() {
        let a = CsrMatrix::from_coo(
            2,
            2,
            vec![
                CooEntry {
                    row: 0,
                    col: 0,
                    val: 5.0,
                },
                CooEntry {
                    row: 0,
                    col: 1,
                    val: 1.0,
                },
            ],
        );
        let l = with_self_loops(&a);
        assert_eq!(l.get(0, 0), 1.0, "existing self-loop replaced by unit loop");
        assert_eq!(l.get(1, 1), 1.0, "missing self-loop added");
        assert_eq!(l.get(0, 1), 1.0);
        assert_eq!(l.nnz(), 3);
    }

    #[test]
    fn gat_forward_shapes_and_determinism() {
        let mut ps = ParamSet::new();
        let mut rng = Rng::seed_from_u64(1);
        let mut conv = GatConv::new(&mut ps, 3, 4, &mut rng);
        let adj = CsrMatrix::from_coo(
            3,
            3,
            vec![
                CooEntry {
                    row: 0,
                    col: 1,
                    val: 1.0,
                },
                CooEntry {
                    row: 1,
                    col: 0,
                    val: 1.0,
                },
                CooEntry {
                    row: 1,
                    col: 2,
                    val: 1.0,
                },
                CooEntry {
                    row: 2,
                    col: 1,
                    val: 1.0,
                },
            ],
        );
        let pair = SpPair::new(adj);
        let x = Matrix::from_fn(3, 3, |r, c| (r + c) as f32 * 0.3);
        let run = |conv: &mut GatConv| {
            let mut tape = Tape::new();
            let mut binding = Binding::new();
            let mut rng = Rng::seed_from_u64(0);
            let mut f = Fwd {
                tape: &mut tape,
                ps: &ps,
                binding: &mut binding,
                rng: &mut rng,
                training: false,
            };
            let xv = f.tape.constant(x.clone());
            let y = conv.forward(&mut f, &pair, xv);
            tape.value(y).clone()
        };
        let y1 = run(&mut conv);
        let y2 = run(&mut conv); // cached self-loop structure reused
        assert_eq!(y1.shape(), (3, 4));
        assert_eq!(y1, y2);
    }
}

#[cfg(test)]
mod transformer_tests {
    use super::*;
    use crate::param::{Binding, ParamSet};
    use mixq_sparse::CsrMatrix;
    use mixq_tensor::{Rng, Tape};

    #[test]
    fn transformer_conv_shapes_and_residual() {
        let mut ps = ParamSet::new();
        let mut rng = Rng::seed_from_u64(2);
        let mut conv = TransformerConv::new(&mut ps, 3, 5, &mut rng);
        let adj = CsrMatrix::from_coo(
            4,
            4,
            vec![
                CooEntry {
                    row: 0,
                    col: 1,
                    val: 1.0,
                },
                CooEntry {
                    row: 1,
                    col: 0,
                    val: 1.0,
                },
            ],
        );
        let pair = SpPair::new(adj);
        let x = Matrix::from_fn(4, 3, |r, c| (r + c) as f32 * 0.2);
        let mut tape = Tape::new();
        let mut binding = Binding::new();
        let mut f = Fwd {
            tape: &mut tape,
            ps: &ps,
            binding: &mut binding,
            rng: &mut rng,
            training: false,
        };
        let xv = f.tape.constant(x.clone());
        let y = conv.forward(&mut f, &pair, xv);
        assert_eq!(tape.value(y).shape(), (4, 5));

        // Nodes 2 and 3 have only their self-loop: attention output is
        // exactly x_i W_v, so y_i = x_i (W_root + W_v) + b.
        let wv = ps.value(conv.w_v.w);
        let wr = ps.value(conv.w_root.w);
        for node in [2usize, 3] {
            for c in 0..5 {
                let expect: f32 = (0..3)
                    .map(|k| x.get(node, k) * (wv.get(k, c) + wr.get(k, c)))
                    .sum();
                assert!(
                    (tape.value(y).get(node, c) - expect).abs() < 1e-5,
                    "self-loop-only node must be root + value transform"
                );
            }
        }
    }
}
