//! Complete FP32 architectures and the generic training loops.
//!
//! Models implement [`NodeNet`] (full-graph node classification) or
//! [`GraphNet`] (graph classification over block-diagonal batches); the
//! quantized/relaxed architectures in `mixq-core` implement the same traits,
//! so every experiment shares [`train_node`] / [`train_graph`].

use std::path::PathBuf;
use std::sync::Arc;

use mixq_graph::{batch_graphs, GraphDataset, NodeDataset, NodeTargets};
use mixq_sparse::{gcn_normalize, row_normalize};
use mixq_tensor::{Matrix, MixqError, MixqResult, Rng, SpPair, Tape, Var};

use crate::conv::{
    AppnpProp, GatConv, GcnConv, GinConv, SageConv, SgcConv, TagConv, TransformerConv,
};
use crate::layers::{Linear, Mlp};
use crate::metrics::{accuracy, roc_auc_mean};
use crate::optim::{clip_grad_norm, Adam};
use crate::param::{Binding, Fwd, ParamSet};
use crate::serialize::{load_train_state, save_train_state, TrainState};

/// Preprocessed views of one node-classification graph: features plus the
/// three adjacency flavours the layer zoo needs, each with its transpose.
pub struct NodeBundle {
    pub features: Matrix,
    /// GCN-normalized `D^{-1/2}(I+A)D^{-1/2}`.
    pub norm: Arc<SpPair>,
    /// Row-normalized `D^{-1}A` (mean aggregator).
    pub mean: Arc<SpPair>,
    /// Raw adjacency.
    pub raw: Arc<SpPair>,
    /// In-degree of each node (drives DQ/A²Q quantizers).
    pub degrees: Vec<usize>,
}

impl NodeBundle {
    pub fn new(ds: &NodeDataset) -> Self {
        Self {
            features: ds.features.clone(),
            norm: SpPair::new(gcn_normalize(&ds.adj)),
            mean: SpPair::new(row_normalize(&ds.adj)),
            degrees: ds.adj.row_degrees(),
            raw: SpPair::new(ds.adj.clone()),
        }
    }

    pub fn num_nodes(&self) -> usize {
        self.features.rows()
    }
}

/// A block-diagonal batch of graphs for graph classification.
pub struct GraphBundle {
    pub features: Matrix,
    pub raw: Arc<SpPair>,
    pub norm: Arc<SpPair>,
    pub offsets: Vec<usize>,
    pub labels: Vec<usize>,
    /// In-degree of each batch node (drives DQ/A²Q quantizers).
    pub degrees: Vec<usize>,
}

impl GraphBundle {
    /// Batches the graphs selected by `idx` into one bundle.
    pub fn from_graphs(ds: &GraphDataset, idx: &[usize]) -> Self {
        let refs: Vec<_> = idx.iter().map(|&i| &ds.graphs[i]).collect();
        let batch = batch_graphs(&refs);
        let labels = idx.iter().map(|&i| ds.labels[i]).collect();
        Self {
            norm: SpPair::new(gcn_normalize(&batch.adj)),
            degrees: batch.adj.row_degrees(),
            raw: SpPair::new(batch.adj),
            features: batch.features,
            offsets: batch.offsets,
            labels,
        }
    }

    pub fn num_graphs(&self) -> usize {
        self.offsets.len() - 1
    }
}

/// A node-classification network: features in, per-node logits out.
pub trait NodeNet {
    fn forward(&mut self, f: &mut Fwd, b: &NodeBundle, x: Var) -> Var;
}

/// A graph-classification network: batch in, per-graph logits out.
pub trait GraphNet {
    fn forward(&mut self, f: &mut Fwd, b: &GraphBundle, x: Var) -> Var;
}

// ---- node architectures ----------------------------------------------------

/// Multi-layer GCN with ReLU and dropout between layers.
pub struct GcnNet {
    pub convs: Vec<GcnConv>,
    pub dropout: f32,
}

impl GcnNet {
    /// `dims = [in, h…, classes]`.
    pub fn new(ps: &mut ParamSet, dims: &[usize], dropout: f32, rng: &mut Rng) -> Self {
        let convs = dims
            .windows(2)
            .map(|w| GcnConv::new(ps, w[0], w[1], rng))
            .collect();
        Self { convs, dropout }
    }

    /// MAC count of one forward pass (Fig. 1's x-axis; ×2 gives OPs).
    pub fn macs(&self, n: u64, nnz: u64) -> u64 {
        self.convs
            .iter()
            .map(|c| c.lin.macs(n as usize) + nnz * c.lin.out_dim as u64)
            .sum()
    }
}

impl NodeNet for GcnNet {
    fn forward(&mut self, f: &mut Fwd, b: &NodeBundle, mut x: Var) -> Var {
        let last = self.convs.len() - 1;
        for (i, conv) in self.convs.iter().enumerate() {
            x = f.tape.dropout(x, self.dropout, f.rng, f.training);
            x = conv.forward(f, &b.norm, x);
            if i < last {
                x = f.tape.relu(x);
            }
        }
        x
    }
}

/// Multi-layer GraphSAGE (mean aggregator).
pub struct SageNet {
    pub convs: Vec<SageConv>,
    pub dropout: f32,
}

impl SageNet {
    pub fn new(ps: &mut ParamSet, dims: &[usize], dropout: f32, rng: &mut Rng) -> Self {
        let convs = dims
            .windows(2)
            .map(|w| SageConv::new(ps, w[0], w[1], rng))
            .collect();
        Self { convs, dropout }
    }

    pub fn macs(&self, n: u64, nnz: u64) -> u64 {
        self.convs
            .iter()
            .map(|c| {
                c.lin_root.macs(n as usize)
                    + c.lin_neigh.macs(n as usize)
                    + nnz * c.lin_root.in_dim as u64
            })
            .sum()
    }
}

impl NodeNet for SageNet {
    fn forward(&mut self, f: &mut Fwd, b: &NodeBundle, mut x: Var) -> Var {
        let last = self.convs.len() - 1;
        for (i, conv) in self.convs.iter().enumerate() {
            x = f.tape.dropout(x, self.dropout, f.rng, f.training);
            x = conv.forward(f, &b.mean, x);
            if i < last {
                x = f.tape.relu(x);
            }
        }
        x
    }
}

/// Multi-layer GIN for node tasks.
pub struct GinNet {
    pub convs: Vec<GinConv>,
    pub dropout: f32,
}

impl GinNet {
    pub fn new(ps: &mut ParamSet, dims: &[usize], dropout: f32, rng: &mut Rng) -> Self {
        let convs = dims
            .windows(2)
            .map(|w| GinConv::new(ps, w[0], w[1].max(w[0] / 2), w[1], false, rng))
            .collect();
        Self { convs, dropout }
    }

    pub fn macs(&self, n: u64, nnz: u64) -> u64 {
        self.convs
            .iter()
            .map(|c| c.mlp.macs(n as usize) + nnz * c.mlp.layers[0].in_dim as u64)
            .sum()
    }
}

impl NodeNet for GinNet {
    fn forward(&mut self, f: &mut Fwd, b: &NodeBundle, mut x: Var) -> Var {
        let last = self.convs.len() - 1;
        for i in 0..self.convs.len() {
            x = f.tape.dropout(x, self.dropout, f.rng, f.training);
            x = self.convs[i].forward(f, &b.raw, x);
            if i < last {
                x = f.tape.relu(x);
            }
        }
        x
    }
}

/// Multi-layer TAGCN (K = 2 hops per layer).
pub struct TagNet {
    pub convs: Vec<TagConv>,
    pub dropout: f32,
}

impl TagNet {
    pub fn new(ps: &mut ParamSet, dims: &[usize], dropout: f32, rng: &mut Rng) -> Self {
        let convs = dims
            .windows(2)
            .map(|w| TagConv::new(ps, w[0], w[1], 2, rng))
            .collect();
        Self { convs, dropout }
    }

    pub fn macs(&self, n: u64, nnz: u64) -> u64 {
        self.convs
            .iter()
            .map(|c| {
                let hops = (c.lins.len() - 1) as u64;
                c.lins.iter().map(|l| l.macs(n as usize)).sum::<u64>()
                    + hops * nnz * c.lins[0].in_dim as u64
            })
            .sum()
    }
}

impl NodeNet for TagNet {
    fn forward(&mut self, f: &mut Fwd, b: &NodeBundle, mut x: Var) -> Var {
        let last = self.convs.len() - 1;
        for (i, conv) in self.convs.iter().enumerate() {
            x = f.tape.dropout(x, self.dropout, f.rng, f.training);
            x = conv.forward(f, &b.norm, x);
            if i < last {
                x = f.tape.relu(x);
            }
        }
        x
    }
}

/// Multi-layer GAT (single attention head per layer).
pub struct GatNet {
    pub convs: Vec<GatConv>,
    pub dropout: f32,
}

impl GatNet {
    pub fn new(ps: &mut ParamSet, dims: &[usize], dropout: f32, rng: &mut Rng) -> Self {
        let convs = dims
            .windows(2)
            .map(|w| GatConv::new(ps, w[0], w[1], rng))
            .collect();
        Self { convs, dropout }
    }

    pub fn macs(&self, n: u64, nnz: u64) -> u64 {
        self.convs
            .iter()
            .map(|c| {
                // xW, the two attention projections, and the weighted sum
                // over edges (incl. self-loops).
                c.lin.macs(n as usize)
                    + 2 * n * c.lin.out_dim as u64
                    + (nnz + n) * c.lin.out_dim as u64
            })
            .sum()
    }
}

impl NodeNet for GatNet {
    fn forward(&mut self, f: &mut Fwd, b: &NodeBundle, mut x: Var) -> Var {
        let last = self.convs.len() - 1;
        for i in 0..self.convs.len() {
            x = f.tape.dropout(x, self.dropout, f.rng, f.training);
            x = self.convs[i].forward(f, &b.raw, x);
            if i < last {
                x = f.tape.relu(x);
            }
        }
        x
    }
}

/// Multi-layer UniMP-style transformer network.
pub struct UniMpNet {
    pub convs: Vec<TransformerConv>,
    pub dropout: f32,
}

impl UniMpNet {
    pub fn new(ps: &mut ParamSet, dims: &[usize], dropout: f32, rng: &mut Rng) -> Self {
        let convs = dims
            .windows(2)
            .map(|w| TransformerConv::new(ps, w[0], w[1], rng))
            .collect();
        Self { convs, dropout }
    }

    pub fn macs(&self, n: u64, nnz: u64) -> u64 {
        self.convs
            .iter()
            .map(|c| {
                // Four projections + per-edge attention dot + weighted sum.
                4 * c.w_q.macs(n as usize) + 2 * (nnz + n) * c.w_q.out_dim as u64
            })
            .sum()
    }
}

impl NodeNet for UniMpNet {
    fn forward(&mut self, f: &mut Fwd, b: &NodeBundle, mut x: Var) -> Var {
        let last = self.convs.len() - 1;
        for i in 0..self.convs.len() {
            x = f.tape.dropout(x, self.dropout, f.rng, f.training);
            x = self.convs[i].forward(f, &b.raw, x);
            if i < last {
                x = f.tape.relu(x);
            }
        }
        x
    }
}

/// SGC: `depth` propagation hops, one linear transform.
pub struct SgcNet {
    pub conv: SgcConv,
}

impl SgcNet {
    pub fn new(
        ps: &mut ParamSet,
        in_dim: usize,
        classes: usize,
        depth: usize,
        rng: &mut Rng,
    ) -> Self {
        Self {
            conv: SgcConv::new(ps, in_dim, classes, depth, rng),
        }
    }

    pub fn macs(&self, n: u64, nnz: u64) -> u64 {
        self.conv.lin.macs(n as usize) + self.conv.k as u64 * nnz * self.conv.lin.in_dim as u64
    }
}

impl NodeNet for SgcNet {
    fn forward(&mut self, f: &mut Fwd, b: &NodeBundle, x: Var) -> Var {
        self.conv.forward(f, &b.norm, x)
    }
}

/// APPNP: MLP predictor followed by personalized-PageRank propagation.
pub struct AppnpNet {
    pub mlp: Mlp,
    pub prop: AppnpProp,
    pub dropout: f32,
}

impl AppnpNet {
    pub fn new(
        ps: &mut ParamSet,
        dims: &[usize],
        k: usize,
        alpha: f32,
        dropout: f32,
        rng: &mut Rng,
    ) -> Self {
        Self {
            mlp: Mlp::new(ps, dims, false, rng),
            prop: AppnpProp { k, alpha },
            dropout,
        }
    }

    pub fn macs(&self, n: u64, nnz: u64) -> u64 {
        let classes = self.mlp.layers.last().unwrap().out_dim as u64;
        self.mlp.macs(n as usize) + self.prop.k as u64 * nnz * classes
    }
}

impl NodeNet for AppnpNet {
    fn forward(&mut self, f: &mut Fwd, b: &NodeBundle, mut x: Var) -> Var {
        x = f.tape.dropout(x, self.dropout, f.rng, f.training);
        let h = self.mlp.forward(f, x);
        self.prop.forward(f, &b.norm, h)
    }
}

// ---- graph architectures -----------------------------------------------------

/// The paper's graph-classification architecture: five GIN layers (2-layer
/// MLPs), global max pooling (chosen to avoid quantized-sum overflow, §5.4),
/// then a two-layer ReLU classifier.
pub struct GinGraphNet {
    pub convs: Vec<GinConv>,
    pub head1: Linear,
    pub head2: Linear,
    pub dropout: f32,
}

impl GinGraphNet {
    pub fn new(
        ps: &mut ParamSet,
        in_dim: usize,
        hidden: usize,
        classes: usize,
        layers: usize,
        rng: &mut Rng,
    ) -> Self {
        let mut convs = Vec::with_capacity(layers);
        for i in 0..layers {
            let ind = if i == 0 { in_dim } else { hidden };
            convs.push(GinConv::new(ps, ind, hidden, hidden, true, rng));
        }
        Self {
            convs,
            head1: Linear::new(ps, hidden, hidden, rng),
            head2: Linear::new(ps, hidden, classes, rng),
            dropout: 0.3,
        }
    }
}

impl GraphNet for GinGraphNet {
    fn forward(&mut self, f: &mut Fwd, b: &GraphBundle, mut x: Var) -> Var {
        for i in 0..self.convs.len() {
            x = self.convs[i].forward(f, &b.raw, x);
            x = f.tape.relu(x);
        }
        let pooled = f.tape.global_max_pool(x, &b.offsets);
        let h = self.head1.forward(f, pooled);
        let h = f.tape.relu(h);
        let h = f.tape.dropout(h, self.dropout, f.rng, f.training);
        self.head2.forward(f, h)
    }
}

/// GCN-based graph classifier used for CSL (Table 9): `layers` GCN
/// convolutions, max pooling, linear head.
pub struct GcnGraphNet {
    pub convs: Vec<GcnConv>,
    pub head: Linear,
}

impl GcnGraphNet {
    pub fn new(
        ps: &mut ParamSet,
        in_dim: usize,
        hidden: usize,
        classes: usize,
        layers: usize,
        rng: &mut Rng,
    ) -> Self {
        let mut convs = Vec::with_capacity(layers);
        for i in 0..layers {
            let ind = if i == 0 { in_dim } else { hidden };
            convs.push(GcnConv::new(ps, ind, hidden, rng));
        }
        Self {
            convs,
            head: Linear::new(ps, hidden, classes, rng),
        }
    }
}

impl GraphNet for GcnGraphNet {
    fn forward(&mut self, f: &mut Fwd, b: &GraphBundle, mut x: Var) -> Var {
        for conv in &self.convs {
            x = conv.forward(f, &b.norm, x);
            x = f.tape.relu(x);
        }
        let pooled = f.tape.global_max_pool(x, &b.offsets);
        self.head.forward(f, pooled)
    }
}

// ---- training loops ----------------------------------------------------------

/// Periodic crash-safe checkpointing of a training run.
#[derive(Debug, Clone)]
pub struct CheckpointConfig {
    /// File the train state is written to (atomically; see
    /// [`crate::serialize::atomic_write`]).
    pub path: PathBuf,
    /// Write every `every` epochs (validated ≥ 1 by the builder).
    pub every: usize,
}

#[derive(Debug, Clone)]
pub struct TrainConfig {
    pub epochs: usize,
    pub lr: f32,
    pub weight_decay: f32,
    pub seed: u64,
    /// Early-stopping patience in epochs (0 disables early stopping).
    pub patience: usize,
    /// Divergence recovery: how many consecutive retries of one epoch are
    /// allowed before the run is declared diverged. The first retry re-runs
    /// the epoch unchanged from the last good snapshot (enough for
    /// transient faults); later retries also multiply the LR by `backoff`.
    pub max_retries: usize,
    /// LR multiplier applied from the second retry of an epoch onward.
    pub backoff: f32,
    /// Global gradient-norm clip applied before each optimizer step
    /// (`None` disables clipping; validated finite and > 0 by the builder).
    pub grad_clip: Option<f32>,
    /// Periodic crash-safe checkpointing (`None` disables it).
    pub checkpoint: Option<CheckpointConfig>,
    /// Resume from this train-state checkpoint if the file exists. A
    /// missing file starts fresh (so first runs and restarts share one
    /// config); an unreadable or shape-mismatched file also starts fresh
    /// and bumps the `train.resume_failures` telemetry counter.
    pub resume_from: Option<PathBuf>,
}

impl Default for TrainConfig {
    fn default() -> Self {
        Self {
            epochs: 150,
            lr: 0.01,
            weight_decay: 5e-4,
            seed: 0,
            patience: 40,
            max_retries: 3,
            backoff: 0.5,
            grad_clip: None,
            checkpoint: None,
            resume_from: None,
        }
    }
}

impl TrainConfig {
    /// Starts a validated builder pre-loaded with the defaults. Literal
    /// struct construction keeps working; the builder is for callers that
    /// assemble configs from user input and want range checks.
    pub fn builder() -> TrainConfigBuilder {
        TrainConfigBuilder {
            cfg: TrainConfig::default(),
        }
    }
}

/// Builder for [`TrainConfig`] whose [`TrainConfigBuilder::build`] rejects
/// out-of-range hyper-parameters instead of training with them.
#[derive(Debug, Clone)]
pub struct TrainConfigBuilder {
    cfg: TrainConfig,
}

impl TrainConfigBuilder {
    pub fn epochs(mut self, epochs: usize) -> Self {
        self.cfg.epochs = epochs;
        self
    }

    pub fn lr(mut self, lr: f32) -> Self {
        self.cfg.lr = lr;
        self
    }

    pub fn weight_decay(mut self, weight_decay: f32) -> Self {
        self.cfg.weight_decay = weight_decay;
        self
    }

    pub fn seed(mut self, seed: u64) -> Self {
        self.cfg.seed = seed;
        self
    }

    /// Early-stopping patience in epochs (0 disables early stopping).
    pub fn patience(mut self, patience: usize) -> Self {
        self.cfg.patience = patience;
        self
    }

    /// Maximum consecutive divergence-recovery retries per epoch.
    pub fn max_retries(mut self, max_retries: usize) -> Self {
        self.cfg.max_retries = max_retries;
        self
    }

    /// LR multiplier applied from the second retry of an epoch onward.
    pub fn backoff(mut self, backoff: f32) -> Self {
        self.cfg.backoff = backoff;
        self
    }

    /// Global gradient-norm clip applied before each optimizer step.
    pub fn grad_clip(mut self, max_norm: f32) -> Self {
        self.cfg.grad_clip = Some(max_norm);
        self
    }

    /// Write a crash-safe train-state checkpoint to `path` every `every`
    /// epochs.
    pub fn checkpoint(mut self, path: impl Into<PathBuf>, every: usize) -> Self {
        self.cfg.checkpoint = Some(CheckpointConfig {
            path: path.into(),
            every,
        });
        self
    }

    /// Resume from this checkpoint if it exists (see
    /// [`TrainConfig::resume_from`]).
    pub fn resume_from(mut self, path: impl Into<PathBuf>) -> Self {
        self.cfg.resume_from = Some(path.into());
        self
    }

    /// Validates the assembled configuration: at least one epoch, a finite
    /// learning rate in `(0, 1]`, a finite non-negative weight decay, a
    /// backoff factor in `(0, 1]`, a positive finite grad clip (when set)
    /// and a checkpoint interval ≥ 1 (when set).
    pub fn build(self) -> MixqResult<TrainConfig> {
        let c = &self.cfg;
        if c.epochs == 0 {
            return Err(MixqError::config("TrainConfig", "epochs must be >= 1"));
        }
        if !c.lr.is_finite() || c.lr <= 0.0 || c.lr > 1.0 {
            return Err(MixqError::config(
                "TrainConfig",
                format!("lr must be in (0, 1], got {}", c.lr),
            ));
        }
        if !c.weight_decay.is_finite() || c.weight_decay < 0.0 {
            return Err(MixqError::config(
                "TrainConfig",
                format!(
                    "weight_decay must be finite and >= 0, got {}",
                    c.weight_decay
                ),
            ));
        }
        if !c.backoff.is_finite() || c.backoff <= 0.0 || c.backoff > 1.0 {
            return Err(MixqError::config(
                "TrainConfig",
                format!("backoff must be in (0, 1], got {}", c.backoff),
            ));
        }
        if let Some(clip) = c.grad_clip {
            if !clip.is_finite() || clip <= 0.0 {
                return Err(MixqError::config(
                    "TrainConfig",
                    format!("grad_clip must be finite and > 0, got {clip}"),
                ));
            }
        }
        if let Some(ck) = &c.checkpoint {
            if ck.every == 0 {
                return Err(MixqError::config(
                    "TrainConfig",
                    "checkpoint interval must be >= 1",
                ));
            }
        }
        Ok(self.cfg)
    }
}

#[derive(Debug, Clone)]
pub struct TrainReport {
    pub best_val: f64,
    pub test_metric: f64,
    pub best_epoch: usize,
    pub final_train_loss: f64,
    /// Divergences absorbed by rollback + retry (0 for a clean run).
    pub recovered_divergences: usize,
    /// `true` when an epoch stayed non-finite after `max_retries` retries
    /// and training stopped early. The reported metrics still come from the
    /// best (finite) parameters seen before the divergence.
    pub diverged: bool,
}

/// Result of [`train_graph`].
#[derive(Debug, Clone)]
pub struct GraphTrainReport {
    pub train_acc: f64,
    pub test_acc: f64,
    pub final_train_loss: f64,
    /// Divergences absorbed by rollback + retry (0 for a clean run).
    pub recovered_divergences: usize,
    /// `true` when recovery retries were exhausted and training stopped
    /// early (accuracies then reflect the last finite parameters).
    pub diverged: bool,
}

/// Loads the resume checkpoint named by `cfg.resume_from`, if any. Missing
/// files start fresh silently (first run and restart share one config);
/// unreadable or shape-mismatched states start fresh and bump `counter`.
fn load_resume_state(cfg: &TrainConfig, ps: &ParamSet, counter: &str) -> Option<TrainState> {
    let path = cfg.resume_from.as_ref()?;
    if !path.exists() {
        return None;
    }
    match load_train_state(path) {
        Ok(st) if st.params.len() == ps.len() && st.params.num_scalars() == ps.num_scalars() => {
            Some(st)
        }
        _ => {
            mixq_telemetry::counter_add(counter, 1);
            None
        }
    }
}

/// One epoch's rollback snapshot: parameters (with Adam moments), optimizer
/// scalars (incl. step count) and the RNG stream position.
type Snapshot = (ParamSet, Adam, Rng);

/// Shared per-epoch divergence handling: after `pull_grads`, checks that
/// the loss and every gradient are finite; on divergence restores the
/// epoch-start snapshot and schedules a retry (the first retry re-runs the
/// epoch unchanged, later ones also multiply the LR by `cfg.backoff`).
///
/// Returns `Some(true)` for "healthy, proceed", `Some(false)` for "rolled
/// back, retry the epoch", `None` for "retries exhausted, stop: diverged".
#[allow(clippy::too_many_arguments)]
fn check_divergence(
    cfg: &TrainConfig,
    loss: f64,
    injected: bool,
    snap: Snapshot,
    ps: &mut ParamSet,
    opt: &mut Adam,
    rng: &mut Rng,
    retries: &mut usize,
    recovered: &mut usize,
    counter: &str,
) -> Option<bool> {
    if loss.is_finite() && ps.grads_finite() {
        *retries = 0;
        return Some(true);
    }
    if *retries >= cfg.max_retries {
        return None;
    }
    *retries += 1;
    *recovered += 1;
    let (sp, so, sr) = snap;
    *ps = sp;
    *opt = so;
    *rng = sr;
    if *retries > 1 {
        opt.lr *= cfg.backoff;
    }
    mixq_telemetry::counter_add(counter, 1);
    if injected {
        mixq_faultinject::mark_recovered();
    }
    Some(false)
}

/// Trains a node-classification network full-batch with Adam, selecting the
/// parameters at the best validation metric (accuracy or ROC-AUC, depending
/// on the dataset's targets) and reporting the matching test metric.
///
/// Non-finite losses or gradients trigger rollback to the epoch-start
/// snapshot with bounded retries (see [`TrainConfig::max_retries`]); the
/// outcome is surfaced in [`TrainReport::recovered_divergences`] /
/// [`TrainReport::diverged`]. With [`TrainConfig::checkpoint`] set, a
/// crash-safe [`TrainState`] is written periodically, and
/// [`TrainConfig::resume_from`] continues an interrupted run bit-identically
/// to an uninterrupted one.
pub fn train_node<M: NodeNet>(
    model: &mut M,
    ps: &mut ParamSet,
    ds: &NodeDataset,
    bundle: &NodeBundle,
    cfg: &TrainConfig,
) -> TrainReport {
    let mut rng = Rng::seed_from_u64(cfg.seed);
    let mut opt = Adam::new(cfg.lr).with_weight_decay(cfg.weight_decay);
    let mut best_val = f64::NEG_INFINITY;
    let mut best_epoch = 0usize;
    let mut best_ps = ps.clone();
    let mut last_loss = f64::NAN;
    let mut recovered = 0usize;
    let mut diverged = false;
    let mut start_epoch = 0usize;

    if let Some(st) = load_resume_state(cfg, ps, "train.resume_failures") {
        *ps = st.params;
        opt.lr = st.lr;
        opt.set_step_count(st.adam_t);
        rng = Rng::from_state(st.rng_state);
        best_val = st.best_val;
        best_epoch = st.best_epoch;
        recovered = st.recovered;
        best_ps = if st.best_params.is_empty() {
            ps.clone()
        } else {
            st.best_params
        };
        start_epoch = st.epoch;
    }

    let mut retries = 0usize;
    let mut epoch = start_epoch;
    while epoch < cfg.epochs {
        let snap: Snapshot = (ps.clone(), opt.clone(), rng.clone());
        let _epoch_span = mixq_telemetry::span("train_node/epoch");
        ps.zero_grads();
        let mut tape = Tape::new();
        let mut binding = Binding::new();
        let mut f = Fwd {
            tape: &mut tape,
            ps,
            binding: &mut binding,
            rng: &mut rng,
            training: true,
        };
        let x = f.tape.constant(bundle.features.clone_pooled());
        let logits = model.forward(&mut f, bundle, x);
        let loss = match &ds.targets {
            NodeTargets::SingleLabel { labels, .. } => {
                let targets: Vec<usize> = ds.train_idx.iter().map(|&i| labels[i]).collect();
                let lp = tape.log_softmax(logits);
                tape.nll_masked(lp, &ds.train_idx, &targets)
            }
            NodeTargets::MultiLabel(t) => tape.bce_with_logits_masked(logits, t, &ds.train_idx),
        };
        last_loss = tape.value(loss).item() as f64;
        tape.backward(loss);
        ps.pull_grads(&binding, &tape);
        // Gradients are copied into `ps`; hand every tape buffer back to the
        // pool so the next epoch's forward pass reuses them.
        tape.recycle();

        let injected =
            mixq_faultinject::should_fire(mixq_faultinject::FaultKind::GradNan, Some(epoch as u64));
        if injected {
            if let Some(&id) = ps.all_ids().first() {
                ps.grad_mut(id).data_mut()[0] = f32::NAN;
            }
        }
        match check_divergence(
            cfg,
            last_loss,
            injected,
            snap,
            ps,
            &mut opt,
            &mut rng,
            &mut retries,
            &mut recovered,
            "train.divergence_rollbacks",
        ) {
            Some(true) => {}
            Some(false) => continue,
            None => {
                diverged = true;
                break;
            }
        }

        let pre_clip_norm = cfg.grad_clip.map(|maxn| clip_grad_norm(ps, maxn) as f64);
        if mixq_telemetry::enabled() {
            mixq_telemetry::series_push("train.loss", last_loss);
            mixq_telemetry::series_push("train.lr", opt.lr as f64);
            mixq_telemetry::series_push(
                "train.grad_norm",
                pre_clip_norm.unwrap_or_else(|| ps.grad_norm()),
            );
        }
        opt.step(ps);

        let val = eval_node(model, ps, ds, bundle, &ds.val_idx, &mut rng);
        mixq_telemetry::series_push("train.val_metric", val);
        let mut stop = false;
        if val > best_val {
            best_val = val;
            best_epoch = epoch;
            best_ps = ps.clone();
        } else if cfg.patience > 0 && epoch - best_epoch >= cfg.patience {
            stop = true;
        }
        if let Some(ck) = &cfg.checkpoint {
            if (epoch + 1).is_multiple_of(ck.every) {
                let st = TrainState {
                    epoch: epoch + 1,
                    lr: opt.lr,
                    adam_t: opt.step_count(),
                    rng_state: rng.state(),
                    best_val,
                    best_epoch,
                    recovered,
                    params: ps.clone(),
                    best_params: best_ps.clone(),
                };
                if save_train_state(&st, &ck.path).is_err() {
                    // Checkpointing must never kill training: count it,
                    // keep the previous durable checkpoint, move on.
                    mixq_telemetry::counter_add("train.checkpoint_failures", 1);
                    if mixq_faultinject::enabled() {
                        mixq_faultinject::mark_recovered();
                    }
                }
            }
        }
        if stop {
            break;
        }
        epoch += 1;
    }
    *ps = best_ps;
    let test_metric = eval_node(model, ps, ds, bundle, &ds.test_idx, &mut rng);
    TrainReport {
        best_val,
        test_metric,
        best_epoch,
        final_train_loss: last_loss,
        recovered_divergences: recovered,
        diverged,
    }
}

/// Evaluates a node network on the rows in `idx` (accuracy or mean ROC-AUC).
pub fn eval_node<M: NodeNet>(
    model: &mut M,
    ps: &ParamSet,
    ds: &NodeDataset,
    bundle: &NodeBundle,
    idx: &[usize],
    rng: &mut Rng,
) -> f64 {
    let mut tape = Tape::new();
    let mut binding = Binding::new();
    let mut f = Fwd {
        tape: &mut tape,
        ps,
        binding: &mut binding,
        rng,
        training: false,
    };
    let x = f.tape.constant(bundle.features.clone_pooled());
    let logits = model.forward(&mut f, bundle, x);
    let metric = match &ds.targets {
        NodeTargets::SingleLabel { labels, .. } => accuracy(tape.value(logits), labels, idx),
        NodeTargets::MultiLabel(t) => roc_auc_mean(tape.value(logits), t, idx),
    };
    tape.recycle();
    metric
}

/// Trains a graph-classification network full-batch on `train` and reports
/// train/test accuracy of the final model, with the same divergence
/// recovery, checkpointing and resume behaviour as [`train_node`].
pub fn train_graph<M: GraphNet>(
    model: &mut M,
    ps: &mut ParamSet,
    train: &GraphBundle,
    test: &GraphBundle,
    cfg: &TrainConfig,
) -> GraphTrainReport {
    let mut rng = Rng::seed_from_u64(cfg.seed);
    let mut opt = Adam::new(cfg.lr).with_weight_decay(cfg.weight_decay);
    let rows: Vec<usize> = (0..train.num_graphs()).collect();
    let mut last_loss = f64::NAN;
    let mut recovered = 0usize;
    let mut diverged = false;
    let mut start_epoch = 0usize;

    if let Some(st) = load_resume_state(cfg, ps, "train_graph.resume_failures") {
        *ps = st.params;
        opt.lr = st.lr;
        opt.set_step_count(st.adam_t);
        rng = Rng::from_state(st.rng_state);
        recovered = st.recovered;
        start_epoch = st.epoch;
    }

    let mut retries = 0usize;
    let mut epoch = start_epoch;
    while epoch < cfg.epochs {
        let snap: Snapshot = (ps.clone(), opt.clone(), rng.clone());
        let _epoch_span = mixq_telemetry::span("train_graph/epoch");
        ps.zero_grads();
        let mut tape = Tape::new();
        let mut binding = Binding::new();
        let mut f = Fwd {
            tape: &mut tape,
            ps,
            binding: &mut binding,
            rng: &mut rng,
            training: true,
        };
        let x = f.tape.constant(train.features.clone_pooled());
        let logits = model.forward(&mut f, train, x);
        let lp = tape.log_softmax(logits);
        let loss = tape.nll_masked(lp, &rows, &train.labels);
        last_loss = tape.value(loss).item() as f64;
        tape.backward(loss);
        ps.pull_grads(&binding, &tape);
        // As in `train_node`: gradients are in `ps`, buffers go back to the
        // pool for the next epoch.
        tape.recycle();

        let injected =
            mixq_faultinject::should_fire(mixq_faultinject::FaultKind::GradNan, Some(epoch as u64));
        if injected {
            if let Some(&id) = ps.all_ids().first() {
                ps.grad_mut(id).data_mut()[0] = f32::NAN;
            }
        }
        match check_divergence(
            cfg,
            last_loss,
            injected,
            snap,
            ps,
            &mut opt,
            &mut rng,
            &mut retries,
            &mut recovered,
            "train_graph.divergence_rollbacks",
        ) {
            Some(true) => {}
            Some(false) => continue,
            None => {
                diverged = true;
                break;
            }
        }

        let pre_clip_norm = cfg.grad_clip.map(|maxn| clip_grad_norm(ps, maxn) as f64);
        if mixq_telemetry::enabled() {
            mixq_telemetry::series_push("train_graph.loss", last_loss);
            mixq_telemetry::series_push("train_graph.lr", opt.lr as f64);
            mixq_telemetry::series_push(
                "train_graph.grad_norm",
                pre_clip_norm.unwrap_or_else(|| ps.grad_norm()),
            );
        }
        opt.step(ps);

        if let Some(ck) = &cfg.checkpoint {
            if (epoch + 1).is_multiple_of(ck.every) {
                let st = TrainState {
                    epoch: epoch + 1,
                    lr: opt.lr,
                    adam_t: opt.step_count(),
                    rng_state: rng.state(),
                    best_val: f64::NEG_INFINITY,
                    best_epoch: 0,
                    recovered,
                    params: ps.clone(),
                    best_params: ParamSet::new(),
                };
                if save_train_state(&st, &ck.path).is_err() {
                    mixq_telemetry::counter_add("train_graph.checkpoint_failures", 1);
                    if mixq_faultinject::enabled() {
                        mixq_faultinject::mark_recovered();
                    }
                }
            }
        }
        epoch += 1;
    }
    let train_acc = eval_graph(model, ps, train, &mut rng);
    let test_acc = eval_graph(model, ps, test, &mut rng);
    if mixq_telemetry::enabled() {
        mixq_telemetry::gauge_set("train_graph.train_accuracy", train_acc);
        mixq_telemetry::gauge_set("train_graph.test_accuracy", test_acc);
    }
    GraphTrainReport {
        train_acc,
        test_acc,
        final_train_loss: last_loss,
        recovered_divergences: recovered,
        diverged,
    }
}

/// Accuracy of a graph network on a bundle.
pub fn eval_graph<M: GraphNet>(
    model: &mut M,
    ps: &ParamSet,
    bundle: &GraphBundle,
    rng: &mut Rng,
) -> f64 {
    let mut tape = Tape::new();
    let mut binding = Binding::new();
    let mut f = Fwd {
        tape: &mut tape,
        ps,
        binding: &mut binding,
        rng,
        training: false,
    };
    let x = f.tape.constant(bundle.features.clone_pooled());
    let logits = model.forward(&mut f, bundle, x);
    let idx: Vec<usize> = (0..bundle.num_graphs()).collect();
    let metric = accuracy(tape.value(logits), &bundle.labels, &idx);
    tape.recycle();
    metric
}

#[cfg(test)]
mod trainer_tests {
    use super::*;
    use mixq_graph::{citation_like, CitationConfig};

    fn tiny() -> mixq_graph::NodeDataset {
        citation_like(
            &CitationConfig {
                name: "tiny",
                nodes: 200,
                feat_dim: 24,
                classes: 3,
                avg_degree: 5.0,
                homophily: 0.85,
                degree_alpha: 2.0,
                topic_size: 6,
                p_topic: 0.5,
                p_noise: 0.02,
                train_per_class: 15,
                val_size: 40,
                test_size: 80,
            },
            31,
        )
    }

    #[test]
    fn early_stopping_restores_best_parameters() {
        let ds = tiny();
        let bundle = NodeBundle::new(&ds);
        let mut rng = Rng::seed_from_u64(0);
        let mut ps = ParamSet::new();
        let dims = [ds.feat_dim(), 8, ds.num_classes()];
        let mut net = GcnNet::new(&mut ps, &dims, 0.5, &mut rng);
        let cfg = TrainConfig {
            epochs: 60,
            lr: 0.05,
            weight_decay: 0.0,
            seed: 0,
            patience: 10,
            ..TrainConfig::default()
        };
        let rep = train_node(&mut net, &mut ps, &ds, &bundle, &cfg);
        // After training, evaluating with the restored parameters must give
        // exactly the reported best validation metric.
        let mut rng = Rng::seed_from_u64(9);
        let val = eval_node(&mut net, &ps, &ds, &bundle, &ds.val_idx, &mut rng);
        assert!(
            (val - rep.best_val).abs() < 1e-9,
            "restored params give val {val}, reported best {b}",
            b = rep.best_val
        );
    }

    #[test]
    fn zero_patience_disables_early_stopping() {
        let ds = tiny();
        let bundle = NodeBundle::new(&ds);
        let mut rng = Rng::seed_from_u64(1);
        let mut ps = ParamSet::new();
        let dims = [ds.feat_dim(), 8, ds.num_classes()];
        let mut net = GcnNet::new(&mut ps, &dims, 0.5, &mut rng);
        let cfg = TrainConfig {
            epochs: 12,
            lr: 0.01,
            weight_decay: 0.0,
            seed: 0,
            patience: 0,
            ..TrainConfig::default()
        };
        let rep = train_node(&mut net, &mut ps, &ds, &bundle, &cfg);
        assert!(rep.best_epoch < 12);
        assert!(rep.final_train_loss.is_finite());
    }
}
