//! Evaluation metrics: classification accuracy, ROC-AUC (for multi-label
//! tasks like OGB-Proteins), and the correlation coefficients the paper
//! reports in Figures 1 and 8.

use mixq_tensor::Matrix;

/// Fraction of rows in `idx` whose argmax logit equals the label.
pub fn accuracy(logits: &Matrix, labels: &[usize], idx: &[usize]) -> f64 {
    assert!(!idx.is_empty());
    let mut correct = 0usize;
    for &i in idx {
        let row = logits.row_slice(i);
        let pred = row
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
            .map(|(j, _)| j)
            .unwrap();
        if pred == labels[i] {
            correct += 1;
        }
    }
    correct as f64 / idx.len() as f64
}

/// Area under the ROC curve for one score/label column, via the rank
/// statistic (Mann–Whitney U) with midrank tie handling. Returns 0.5 when a
/// class is absent.
pub fn roc_auc(scores: &[f32], labels: &[f32]) -> f64 {
    assert_eq!(scores.len(), labels.len());
    let n_pos = labels.iter().filter(|&&l| l > 0.5).count();
    let n_neg = labels.len() - n_pos;
    if n_pos == 0 || n_neg == 0 {
        return 0.5;
    }
    let mut order: Vec<usize> = (0..scores.len()).collect();
    order.sort_by(|&a, &b| scores[a].partial_cmp(&scores[b]).unwrap());
    // Midranks over ties.
    let mut ranks = vec![0f64; scores.len()];
    let mut i = 0;
    while i < order.len() {
        let mut j = i;
        while j + 1 < order.len() && scores[order[j + 1]] == scores[order[i]] {
            j += 1;
        }
        let midrank = (i + j) as f64 / 2.0 + 1.0;
        for &k in &order[i..=j] {
            ranks[k] = midrank;
        }
        i = j + 1;
    }
    let rank_sum_pos: f64 = labels
        .iter()
        .zip(ranks.iter())
        .filter(|(&l, _)| l > 0.5)
        .map(|(_, &r)| r)
        .sum();
    let u = rank_sum_pos - (n_pos * (n_pos + 1)) as f64 / 2.0;
    u / (n_pos * n_neg) as f64
}

/// Mean ROC-AUC over all task columns, restricted to rows in `idx`.
pub fn roc_auc_mean(scores: &Matrix, targets: &Matrix, idx: &[usize]) -> f64 {
    assert_eq!(scores.shape(), targets.shape());
    let t = scores.cols();
    let mut total = 0f64;
    for c in 0..t {
        let s: Vec<f32> = idx.iter().map(|&i| scores.get(i, c)).collect();
        let l: Vec<f32> = idx.iter().map(|&i| targets.get(i, c)).collect();
        total += roc_auc(&s, &l);
    }
    total / t as f64
}

/// Pearson correlation coefficient.
pub fn pearson(xs: &[f64], ys: &[f64]) -> f64 {
    assert_eq!(xs.len(), ys.len());
    let n = xs.len() as f64;
    let mx = xs.iter().sum::<f64>() / n;
    let my = ys.iter().sum::<f64>() / n;
    let mut num = 0f64;
    let mut dx = 0f64;
    let mut dy = 0f64;
    for (&x, &y) in xs.iter().zip(ys.iter()) {
        num += (x - mx) * (y - my);
        dx += (x - mx) * (x - mx);
        dy += (y - my) * (y - my);
    }
    if dx == 0.0 || dy == 0.0 {
        return 0.0;
    }
    num / (dx * dy).sqrt()
}

/// Spearman rank correlation (Pearson over midranks).
pub fn spearman(xs: &[f64], ys: &[f64]) -> f64 {
    pearson(&midranks(xs), &midranks(ys))
}

fn midranks(xs: &[f64]) -> Vec<f64> {
    let mut order: Vec<usize> = (0..xs.len()).collect();
    order.sort_by(|&a, &b| xs[a].partial_cmp(&xs[b]).unwrap());
    let mut ranks = vec![0f64; xs.len()];
    let mut i = 0;
    while i < order.len() {
        let mut j = i;
        while j + 1 < order.len() && xs[order[j + 1]] == xs[order[i]] {
            j += 1;
        }
        let midrank = (i + j) as f64 / 2.0 + 1.0;
        for &k in &order[i..=j] {
            ranks[k] = midrank;
        }
        i = j + 1;
    }
    ranks
}

/// Mean and (population) standard deviation of a sample — the ±σ the
/// paper's tables report.
pub fn mean_std(xs: &[f64]) -> (f64, f64) {
    assert!(!xs.is_empty());
    let n = xs.len() as f64;
    let mean = xs.iter().sum::<f64>() / n;
    let var = xs.iter().map(|&x| (x - mean) * (x - mean)).sum::<f64>() / n;
    (mean, var.sqrt())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accuracy_counts_argmax_hits() {
        let logits = Matrix::from_vec(3, 2, vec![0.9, 0.1, 0.2, 0.8, 0.6, 0.4]);
        let labels = vec![0usize, 1, 1];
        assert_eq!(accuracy(&logits, &labels, &[0, 1, 2]), 2.0 / 3.0);
        assert_eq!(accuracy(&logits, &labels, &[0, 1]), 1.0);
    }

    #[test]
    fn auc_perfect_and_inverted() {
        let scores = vec![0.1, 0.2, 0.8, 0.9];
        let labels = vec![0.0, 0.0, 1.0, 1.0];
        assert!((roc_auc(&scores, &labels) - 1.0).abs() < 1e-9);
        let inv = vec![1.0, 1.0, 0.0, 0.0];
        assert!((roc_auc(&scores, &inv) - 0.0).abs() < 1e-9);
    }

    #[test]
    fn auc_random_is_half() {
        let scores = vec![0.5; 10];
        let labels: Vec<f32> = (0..10).map(|i| (i % 2) as f32).collect();
        assert!(
            (roc_auc(&scores, &labels) - 0.5).abs() < 1e-9,
            "all-tied scores give 0.5"
        );
    }

    #[test]
    fn auc_degenerate_labels() {
        assert_eq!(roc_auc(&[0.1, 0.9], &[1.0, 1.0]), 0.5);
        assert_eq!(roc_auc(&[0.1, 0.9], &[0.0, 0.0]), 0.5);
    }

    #[test]
    fn pearson_exact_linear() {
        let xs = vec![1.0, 2.0, 3.0, 4.0];
        let ys = vec![2.0, 4.0, 6.0, 8.0];
        assert!((pearson(&xs, &ys) - 1.0).abs() < 1e-12);
        let neg: Vec<f64> = ys.iter().map(|y| -y).collect();
        assert!((pearson(&xs, &neg) + 1.0).abs() < 1e-12);
    }

    #[test]
    fn spearman_monotone_nonlinear() {
        let xs = vec![1.0, 2.0, 3.0, 4.0, 5.0];
        let ys: Vec<f64> = xs.iter().map(|&x: &f64| x.exp()).collect();
        assert!((spearman(&xs, &ys) - 1.0).abs() < 1e-12, "monotone ⇒ ρ = 1");
        assert!(pearson(&xs, &ys) < 1.0);
    }

    #[test]
    fn mean_std_known() {
        let (m, s) = mean_std(&[2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]);
        assert!((m - 5.0).abs() < 1e-12);
        assert!((s - 2.0).abs() < 1e-12);
    }
}

/// Confusion matrix: `m[actual][predicted]` counts over the rows in `idx`.
pub fn confusion_matrix(
    logits: &Matrix,
    labels: &[usize],
    idx: &[usize],
    num_classes: usize,
) -> Vec<Vec<usize>> {
    let mut m = vec![vec![0usize; num_classes]; num_classes];
    for &i in idx {
        let row = logits.row_slice(i);
        let pred = row
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
            .map(|(j, _)| j)
            .unwrap();
        m[labels[i]][pred] += 1;
    }
    m
}

/// Macro-averaged F1 over classes (classes absent from both predictions and
/// labels contribute 0).
pub fn macro_f1(logits: &Matrix, labels: &[usize], idx: &[usize], num_classes: usize) -> f64 {
    let m = confusion_matrix(logits, labels, idx, num_classes);
    let mut total = 0f64;
    for (c, row) in m.iter().enumerate() {
        let tp = row[c] as f64;
        let fp: f64 = (0..num_classes)
            .filter(|&a| a != c)
            .map(|a| m[a][c] as f64)
            .sum();
        let fneg: f64 = (0..num_classes)
            .filter(|&p| p != c)
            .map(|p| row[p] as f64)
            .sum();
        if tp + fp + fneg > 0.0 {
            total += 2.0 * tp / (2.0 * tp + fp + fneg);
        }
    }
    total / num_classes as f64
}

#[cfg(test)]
mod f1_tests {
    use super::*;

    #[test]
    fn confusion_matrix_counts() {
        let logits = Matrix::from_vec(4, 2, vec![0.9, 0.1, 0.1, 0.9, 0.8, 0.2, 0.3, 0.7]);
        let labels = vec![0usize, 1, 1, 1];
        let m = confusion_matrix(&logits, &labels, &[0, 1, 2, 3], 2);
        assert_eq!(m[0][0], 1);
        assert_eq!(m[1][1], 2);
        assert_eq!(m[1][0], 1);
        assert_eq!(m[0][1], 0);
    }

    #[test]
    fn perfect_predictions_give_f1_one() {
        let logits = Matrix::from_vec(3, 3, vec![1.0, 0.0, 0.0, 0.0, 1.0, 0.0, 0.0, 0.0, 1.0]);
        let labels = vec![0usize, 1, 2];
        assert!((macro_f1(&logits, &labels, &[0, 1, 2], 3) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn macro_f1_penalizes_minority_errors_more_than_accuracy() {
        // 9 correct majority, 1 wrong minority: accuracy 0.9, macro-F1 < 0.9.
        let mut data = Vec::new();
        for _ in 0..9 {
            data.extend([1.0f32, 0.0]);
        }
        data.extend([1.0f32, 0.0]); // minority sample predicted as class 0
        let logits = Matrix::from_vec(10, 2, data);
        let mut labels = vec![0usize; 9];
        labels.push(1);
        let idx: Vec<usize> = (0..10).collect();
        let acc = accuracy(&logits, &labels, &idx);
        let f1 = macro_f1(&logits, &labels, &idx, 2);
        assert!((acc - 0.9).abs() < 1e-12);
        assert!(f1 < acc, "macro-F1 {f1} must fall below accuracy {acc}");
    }
}
