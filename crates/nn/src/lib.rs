//! Neural-network substrate for MixQ-GNN: parameter storage, FP32 layers
//! (dense and message-passing), optimizers, metrics, full architectures and
//! the shared training loops. The quantized counterparts in `mixq-core`
//! implement the same [`NodeNet`]/[`GraphNet`] traits, so every experiment
//! in the paper runs through the same trainer.

pub mod conv;
pub mod layers;
pub mod metrics;
pub mod models;
pub mod optim;
pub mod param;
pub mod serialize;

pub use conv::{
    with_self_loops, AppnpProp, GatConv, GcnConv, GinConv, SageConv, SgcConv, TagConv,
    TransformerConv,
};
pub use layers::{BatchNorm1d, Linear, Mlp};
pub use metrics::{
    accuracy, confusion_matrix, macro_f1, mean_std, pearson, roc_auc, roc_auc_mean, spearman,
};
pub use models::{
    eval_graph, eval_node, train_graph, train_node, AppnpNet, CheckpointConfig, GatNet,
    GcnGraphNet, GcnNet, GinGraphNet, GinNet, GraphBundle, GraphNet, GraphTrainReport, NodeBundle,
    NodeNet, SageNet, SgcNet, TagNet, TrainConfig, TrainConfigBuilder, TrainReport, UniMpNet,
};
pub use optim::{clip_grad_norm, Adam, LrSchedule, Sgd};
pub use param::{Binding, Fwd, Param, ParamId, ParamSet};
pub use serialize::{
    atomic_write, load_params, load_train_state, params_from_string, params_to_string, save_params,
    save_train_state, TrainState,
};
