//! Dependency-free parallel runtime for the MixQ-GNN compute kernels.
//!
//! Every hot kernel in the workspace (dense matmul, f32 SpMM, integer SpMM,
//! quantize/dequantize/fake-quant element-wise maps) is parallelized by
//! partitioning the **output** into disjoint contiguous row ranges and
//! handing each range to one `std::thread::scope` thread. Because each
//! thread owns its output slice exclusively and the per-row accumulation
//! order is exactly the serial order, results are **bit-identical** to the
//! serial kernels at any thread count — seeded experiments stay
//! reproducible no matter how the work is split.
//!
//! The thread count is process-wide:
//!
//! * `MIXQ_THREADS` environment variable (read once, on first use);
//! * [`set_num_threads`] overrides it at runtime;
//! * the default is [`std::thread::available_parallelism`].
//!
//! Small inputs fall back to the serial path: row-partitioned kernels when
//! the row count is below the tunable [`parallel_row_threshold`],
//! element-wise kernels below a fixed element threshold. Spawning a scoped
//! thread costs tens of microseconds, so parallelism only pays off once a
//! kernel does comparable work per range.
//!
//! Worker panics are **contained**: each chunk runs under `catch_unwind`,
//! and any chunk whose worker panicked is zeroed and re-run serially on the
//! caller's thread after the scope joins (counted in the
//! `parallel.worker_panics` telemetry counter). Kernels route through this
//! runtime with freshly zero-initialized output buffers and either overwrite
//! or accumulate into them, so zero-and-retry reproduces the unfaulted
//! result bit-identically. A panic that recurs on the serial retry is a
//! genuine kernel bug and propagates.
//!
//! This lives in its own crate (rather than `mixq-tensor`) because
//! `mixq-sparse` sits *below* `mixq-tensor` in the dependency graph and its
//! SpMM kernels need the same runtime; `mixq-tensor` re-exports this crate
//! as `mixq_tensor::parallel`.

use std::sync::atomic::{AtomicUsize, Ordering};

/// Upper bound on the configurable thread count; a guard against
/// `MIXQ_THREADS=1000000` typos, far above any sensible setting.
pub const MAX_THREADS: usize = 256;

/// Default minimum number of rows before a row-partitioned kernel spawns
/// threads (tunable via [`set_parallel_row_threshold`]).
pub const DEFAULT_ROW_THRESHOLD: usize = 32;

/// Minimum number of elements before an element-wise kernel spawns threads.
/// Element-wise work is a few ns per element, so anything below this is
/// cheaper than one thread spawn.
pub const ELEMENTWISE_THRESHOLD: usize = 1 << 14;

/// 0 means "not initialized yet" — the first reader resolves the default.
static NUM_THREADS: AtomicUsize = AtomicUsize::new(0);
static ROW_THRESHOLD: AtomicUsize = AtomicUsize::new(DEFAULT_ROW_THRESHOLD);

fn resolve_default_threads() -> usize {
    if let Ok(s) = std::env::var("MIXQ_THREADS") {
        if let Ok(n) = s.trim().parse::<usize>() {
            if n >= 1 {
                return n.min(MAX_THREADS);
            }
        }
        // Invalid values fall through to the hardware default rather than
        // silently serializing a production deployment.
    }
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
        .min(MAX_THREADS)
}

/// The process-wide thread count used by all parallel kernels.
///
/// Resolution order: [`set_num_threads`] override, then the `MIXQ_THREADS`
/// environment variable, then [`std::thread::available_parallelism`].
pub fn num_threads() -> usize {
    let n = NUM_THREADS.load(Ordering::Relaxed);
    if n != 0 {
        return n;
    }
    let d = resolve_default_threads();
    // Benign race: concurrent first readers compute the same value.
    NUM_THREADS.store(d, Ordering::Relaxed);
    d
}

/// Sets the process-wide thread count (clamped to `1..=MAX_THREADS`).
/// `set_num_threads(1)` makes every kernel run serially.
pub fn set_num_threads(n: usize) {
    NUM_THREADS.store(n.clamp(1, MAX_THREADS), Ordering::Relaxed);
}

/// Rows below this threshold run serially in row-partitioned kernels.
pub fn parallel_row_threshold() -> usize {
    ROW_THRESHOLD.load(Ordering::Relaxed)
}

/// Tunes the serial-fallback row threshold (0 parallelizes everything —
/// useful in tests that must exercise the threaded path on tiny inputs).
pub fn set_parallel_row_threshold(rows: usize) {
    ROW_THRESHOLD.store(rows, Ordering::Relaxed);
}

/// Partitions `rows` into `pieces` contiguous ranges whose sizes differ by
/// at most one row, returning the range boundaries (length `pieces + 1`).
fn range_bounds(rows: usize, pieces: usize) -> Vec<usize> {
    (0..=pieces).map(|i| rows * i / pieces).collect()
}

/// Partitions the rows described by a CSR-style prefix-sum array into
/// `pieces` contiguous ranges of approximately equal *weight* (non-zeros),
/// returning the row boundaries (length `pieces + 1`, `bounds[0] == 0`,
/// `bounds[pieces] == rows`, non-decreasing).
///
/// `row_ptr` must have `rows + 1` monotone entries (a CSR `row_ptr` works
/// verbatim). Boundary `i` is the first row whose prefix weight reaches
/// `i/pieces` of the total, so every chunk carries at most
/// `ceil(total/pieces) + max_row_weight` non-zeros — a hub row can only
/// overshoot its chunk by itself, never serialize unrelated rows behind it.
/// An all-zero matrix degrades to the equal-row split.
pub fn nnz_balanced_bounds(row_ptr: &[usize], pieces: usize) -> Vec<usize> {
    assert!(
        !row_ptr.is_empty(),
        "nnz_balanced_bounds: row_ptr must hold rows+1 prefix sums"
    );
    assert!(pieces >= 1, "nnz_balanced_bounds: pieces must be >= 1");
    let rows = row_ptr.len() - 1;
    let base = row_ptr[0];
    let total = row_ptr[rows] - base;
    if total == 0 {
        return range_bounds(rows, pieces);
    }
    let mut bounds = Vec::with_capacity(pieces + 1);
    bounds.push(0usize);
    for i in 1..pieces {
        // u128 sidesteps overflow of total × i on huge graphs.
        let target = base + ((total as u128 * i as u128) / pieces as u128) as usize;
        let b = row_ptr.partition_point(|&v| v < target);
        bounds.push(b.max(*bounds.last().unwrap()).min(rows));
    }
    bounds.push(rows);
    bounds
}

/// `true` iff a caught panic payload came from [`mixq_faultinject`] (its
/// injected panics embed [`mixq_faultinject::PANIC_MARKER`] in the message).
fn payload_is_injected(payload: &(dyn std::any::Any + Send)) -> bool {
    if let Some(s) = payload.downcast_ref::<&str>() {
        return s.contains(mixq_faultinject::PANIC_MARKER);
    }
    if let Some(s) = payload.downcast_ref::<String>() {
        return s.contains(mixq_faultinject::PANIC_MARKER);
    }
    false
}

/// Runs `f(row_start, chunk)` over disjoint row ranges of a row-major
/// `rows × width` output buffer, in parallel when the input is large enough.
///
/// `out.len()` must equal `rows * width`. Each invocation receives the
/// starting row index of its range and the exclusive `&mut` sub-slice
/// covering exactly that range, so writes are race-free by construction and
/// `f` observes the same per-row state as the serial loop — the parallel
/// result is bit-identical to `f(0, out)`.
///
/// If a worker panics, its chunk is reset to `T::default()` and re-run
/// serially after the scope joins (see the module docs); hence the
/// `Copy + Default` bound, which every numeric output type satisfies.
pub fn par_row_chunks_mut<T: Send + Copy + Default>(
    out: &mut [T],
    rows: usize,
    width: usize,
    f: impl Fn(usize, &mut [T]) + Sync,
) {
    assert_eq!(
        out.len(),
        rows * width,
        "output buffer must be rows × width"
    );
    // Zero rows or zero width means zero output elements: nothing to
    // compute, and skipping `f` here lets callers use `chunks_mut(width)`
    // without a per-caller `.max(1)` guard against zero-width rows.
    if out.is_empty() {
        return;
    }
    let t = num_threads().min(rows);
    if t <= 1 || rows < parallel_row_threshold().max(2) {
        if mixq_telemetry::enabled() {
            mixq_telemetry::counter_add("parallel.serial_calls", 1);
        }
        f(0, out);
        return;
    }
    run_bounded(out, width, range_bounds(rows, t), f);
}

/// Like [`par_row_chunks_mut`] but splits rows at **nnz-balanced**
/// boundaries derived from `row_ptr` (a `rows + 1` prefix-sum array, e.g. a
/// CSR `row_ptr`) instead of equal row counts. Power-law graphs concentrate
/// most non-zeros in a few hub rows; an equal-row split hands one thread all
/// the hubs and serializes the kernel on that chunk, while this split keeps
/// per-chunk work within one row's weight of even (see
/// [`nnz_balanced_bounds`]).
///
/// Chunks are still disjoint contiguous row ranges and per-row work runs in
/// serial order, so results remain bit-identical to the serial kernel and to
/// the equal-row schedule at any thread count.
pub fn par_row_chunks_mut_balanced<T: Send + Copy + Default>(
    out: &mut [T],
    rows: usize,
    width: usize,
    row_ptr: &[usize],
    f: impl Fn(usize, &mut [T]) + Sync,
) {
    assert_eq!(
        out.len(),
        rows * width,
        "output buffer must be rows × width"
    );
    assert_eq!(
        row_ptr.len(),
        rows + 1,
        "row_ptr must be a rows+1 prefix-sum array"
    );
    if out.is_empty() {
        return;
    }
    let t = num_threads().min(rows);
    if t <= 1 || rows < parallel_row_threshold().max(2) {
        if mixq_telemetry::enabled() {
            mixq_telemetry::counter_add("parallel.serial_calls", 1);
        }
        f(0, out);
        return;
    }
    if mixq_telemetry::enabled() {
        mixq_telemetry::counter_add("parallel.balanced_calls", 1);
    }
    let mut bounds = nnz_balanced_bounds(row_ptr, t);
    // A dominant hub row can swallow several targets, leaving empty ranges;
    // collapse them rather than spawning idle workers.
    bounds.dedup();
    if bounds.len() <= 2 {
        // One chunk carries everything: parallelism cannot help this shape.
        f(0, out);
        return;
    }
    run_bounded(out, width, bounds, f);
}

/// Shared parallel core: runs `f` over the row ranges given by `bounds`
/// (monotone, `bounds[0] == 0`, last entry = row count), one scoped thread
/// per range, with panic containment and utilization telemetry.
fn run_bounded<T: Send + Copy + Default>(
    out: &mut [T],
    width: usize,
    bounds: Vec<usize>,
    f: impl Fn(usize, &mut [T]) + Sync,
) {
    let telemetry = mixq_telemetry::enabled();
    let t = bounds.len() - 1;
    if telemetry {
        mixq_telemetry::counter_add("parallel.par_calls", 1);
        mixq_telemetry::counter_add("parallel.threads_used", t as u64);
    }
    let faults = mixq_faultinject::enabled();
    // Per-thread utilization: sum of per-chunk busy time over wall × threads.
    // Only measured when telemetry is on; otherwise the closure wrapper is a
    // single never-taken branch per chunk.
    let busy_ns = std::sync::atomic::AtomicU64::new(0);
    let run = |start: usize, chunk: &mut [T]| {
        if faults && mixq_faultinject::should_fire(mixq_faultinject::FaultKind::WorkerPanic, None) {
            mixq_faultinject::injected_panic("par_row_chunks_mut");
        }
        if telemetry {
            let t0 = std::time::Instant::now();
            f(start, chunk);
            busy_ns.fetch_add(t0.elapsed().as_nanos() as u64, Ordering::Relaxed);
        } else {
            f(start, chunk);
        }
    };
    // Chunks whose worker panicked: (start row, row count, injected?).
    // They are zeroed and re-run serially after the scope joins.
    let panicked: std::sync::Mutex<Vec<(usize, usize, bool)>> = std::sync::Mutex::new(Vec::new());
    let guarded = |start: usize, nrows: usize, chunk: &mut [T]| {
        // The closure only writes through the exclusive chunk borrow, and a
        // panicked chunk is wholly reset before retry, so no broken
        // invariant can escape the unwind boundary.
        let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| run(start, chunk)));
        if let Err(payload) = r {
            let injected = payload_is_injected(payload.as_ref());
            panicked.lock().unwrap().push((start, nrows, injected));
        }
    };
    let wall = std::time::Instant::now();
    let rows = bounds[t];
    std::thread::scope(|s| {
        let mut rest = &mut *out;
        // Spawn the first t−1 ranges and run the last one on this thread;
        // the scope joins everything before returning.
        for w in bounds.windows(2).take(t - 1) {
            let (chunk, tail) = rest.split_at_mut((w[1] - w[0]) * width);
            rest = tail;
            let (start, nrows) = (w[0], w[1] - w[0]);
            let guarded = &guarded;
            s.spawn(move || guarded(start, nrows, chunk));
        }
        guarded(bounds[t - 1], rows - bounds[t - 1], rest);
    });
    let panicked = panicked.into_inner().unwrap();
    if !panicked.is_empty() {
        mixq_telemetry::counter_add("parallel.worker_panics", panicked.len() as u64);
        for (start, nrows, injected) in panicked {
            let chunk = &mut out[start * width..(start + nrows) * width];
            chunk.fill(T::default());
            // A second panic here is a genuine kernel bug: let it propagate.
            run(start, chunk);
            if injected {
                mixq_faultinject::mark_recovered();
            }
        }
    }
    if telemetry {
        let wall_ns = wall.elapsed().as_nanos() as u64;
        let busy = busy_ns.into_inner();
        let ideal = wall_ns.saturating_mul(t as u64);
        mixq_telemetry::counter_add("parallel.busy_ns", busy);
        mixq_telemetry::counter_add("parallel.ideal_ns", ideal);
        if ideal > 0 {
            mixq_telemetry::gauge_set("parallel.last_utilization", busy as f64 / ideal as f64);
        }
    }
}

/// Element-wise `dst[i] = f(src[i])`, parallelized over contiguous chunks
/// when there are at least [`ELEMENTWISE_THRESHOLD`] elements. Bit-identical
/// to the serial map (each element is computed independently).
pub fn par_map_slice<T: Copy + Sync, U: Send + Copy + Default>(
    src: &[T],
    dst: &mut [U],
    f: impl Fn(T) -> U + Sync,
) {
    assert_eq!(src.len(), dst.len(), "par_map_slice: length mismatch");
    let apply = |start: usize, chunk: &mut [U]| {
        for (o, &v) in chunk.iter_mut().zip(&src[start..]) {
            *o = f(v);
        }
    };
    if src.len() < ELEMENTWISE_THRESHOLD || num_threads() <= 1 {
        apply(0, dst);
        return;
    }
    let len = src.len();
    par_row_chunks_mut(dst, len, 1, apply);
}

/// Element-wise `dst[i] = f(a[i], b[i])` over two sources, parallelized like
/// [`par_map_slice`].
pub fn par_zip_slice<A: Copy + Sync, B: Copy + Sync, U: Send + Copy + Default>(
    a: &[A],
    b: &[B],
    dst: &mut [U],
    f: impl Fn(A, B) -> U + Sync,
) {
    assert_eq!(a.len(), dst.len(), "par_zip_slice: length mismatch");
    assert_eq!(b.len(), dst.len(), "par_zip_slice: length mismatch");
    let apply = |start: usize, chunk: &mut [U]| {
        for (i, o) in chunk.iter_mut().enumerate() {
            *o = f(a[start + i], b[start + i]);
        }
    };
    if a.len() < ELEMENTWISE_THRESHOLD || num_threads() <= 1 {
        apply(0, dst);
        return;
    }
    let len = a.len();
    par_row_chunks_mut(dst, len, 1, apply);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bounds_cover_rows_evenly() {
        let b = range_bounds(10, 4);
        assert_eq!(b, vec![0, 2, 5, 7, 10]);
        assert_eq!(range_bounds(3, 8), vec![0, 0, 0, 1, 1, 1, 2, 2, 3]);
    }

    #[test]
    fn nnz_bounds_isolate_hub_rows() {
        // Row 0 is a hub with 100 nnz; rows 1..=4 hold 1 nnz each. An
        // equal-row split at 2 pieces would put the hub plus a light row in
        // one chunk; the balanced split cuts right after the hub.
        let row_ptr = vec![0, 100, 101, 102, 103, 104];
        assert_eq!(nnz_balanced_bounds(&row_ptr, 2), vec![0, 1, 5]);
        // Every chunk carries ≤ ceil(total/pieces) + max_row nnz.
        for pieces in 1..=8 {
            let b = nnz_balanced_bounds(&row_ptr, pieces);
            assert_eq!(b.len(), pieces + 1);
            assert_eq!((b[0], b[pieces]), (0, 5));
            let limit = 104usize.div_ceil(pieces) + 100;
            for w in b.windows(2) {
                assert!(w[0] <= w[1], "bounds must be monotone");
                assert!(row_ptr[w[1]] - row_ptr[w[0]] <= limit);
            }
        }
        // All-empty rows degrade to the equal-row split; a single piece
        // spans everything.
        assert_eq!(nnz_balanced_bounds(&[0, 0, 0, 0], 2), vec![0, 1, 3]);
        assert_eq!(nnz_balanced_bounds(&[0, 3, 7], 1), vec![0, 2]);
        // rows == 0 (row_ptr of length 1) is well-defined.
        assert_eq!(nnz_balanced_bounds(&[0], 3), vec![0, 0, 0, 0]);
    }

    /// Thread-count / threshold knobs are process-wide, so everything that
    /// mutates them lives in one test to avoid cross-test races.
    #[test]
    fn runtime_partitions_match_serial() {
        let saved = (num_threads(), parallel_row_threshold());

        // Every row is touched exactly once, with the right start offset.
        for threads in [1usize, 2, 3, 8] {
            set_num_threads(threads);
            set_parallel_row_threshold(0);
            let (rows, width) = (13, 3);
            let mut out = vec![0u32; rows * width];
            par_row_chunks_mut(&mut out, rows, width, |start, chunk| {
                for (i, row) in chunk.chunks_mut(width).enumerate() {
                    for v in row.iter_mut() {
                        *v += (start + i) as u32 + 1;
                    }
                }
            });
            let want: Vec<u32> = (0..rows)
                .flat_map(|r| std::iter::repeat_n(r as u32 + 1, width))
                .collect();
            assert_eq!(out, want, "threads={threads}");
        }

        // Below the row threshold the kernel must not spawn: a closure that
        // records thread ids sees only the caller's.
        set_num_threads(8);
        set_parallel_row_threshold(64);
        let main_id = std::thread::current().id();
        let mut out = vec![0u8; 8];
        par_row_chunks_mut(&mut out, 8, 1, |_, _| {
            assert_eq!(
                std::thread::current().id(),
                main_id,
                "small input must stay serial"
            );
        });

        // Element-wise maps agree with their serial form above the
        // element threshold.
        set_parallel_row_threshold(0);
        let src: Vec<i64> = (0..(ELEMENTWISE_THRESHOLD as i64 + 17)).collect();
        let mut dst = vec![0i64; src.len()];
        par_map_slice(&src, &mut dst, |v| v * 3 - 1);
        assert!(dst.iter().zip(&src).all(|(&d, &s)| d == s * 3 - 1));
        let mut dst2 = vec![0i64; src.len()];
        par_zip_slice(&src, &dst, &mut dst2, |a, b| a + b);
        assert!(dst2
            .iter()
            .zip(src.iter().zip(&dst))
            .all(|(&o, (&a, &b))| o == a + b));

        // Worker-panic containment (the faultinject gate is process-global,
        // so this lives in the same test). The hook swap silences the
        // expected panic backtraces from worker threads.
        set_num_threads(4);
        set_parallel_row_threshold(0);
        let hook = std::panic::take_hook();
        std::panic::set_hook(Box::new(|_| {}));
        mixq_faultinject::set_spec("worker_panic@2").unwrap();
        let (rows, width) = (64, 3);
        let mut out = vec![0i64; rows * width];
        par_row_chunks_mut(&mut out, rows, width, |start, chunk| {
            for (i, row) in chunk.chunks_mut(width).enumerate() {
                for (j, v) in row.iter_mut().enumerate() {
                    *v += ((start + i) * width + j) as i64;
                }
            }
        });
        let want: Vec<i64> = (0..(rows * width) as i64).collect();
        assert_eq!(out, want, "panicked chunk must be retried bit-identically");
        assert_eq!(mixq_faultinject::injected_count(), 1);
        assert_eq!(mixq_faultinject::recovered_count(), 1);
        mixq_faultinject::clear();

        // A deterministic (non-injected) panic recurs on the serial retry
        // and must propagate — containment only absorbs transient faults.
        let mut out = vec![0u32; 64];
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            par_row_chunks_mut(&mut out, 64, 1, |start, _chunk| {
                if start == 0 {
                    panic!("genuine kernel bug");
                }
            });
        }));
        assert!(result.is_err(), "deterministic panic must propagate");
        std::panic::set_hook(hook);

        // Empty and degenerate shapes stay well-defined, and the zero-width
        // guard is centralized here: `f` is never invoked with an empty
        // output, so callers may call `chunks_mut(width)` unconditionally.
        let mut empty: Vec<f32> = Vec::new();
        par_row_chunks_mut(&mut empty, 0, 4, |_, _| {});
        par_row_chunks_mut(&mut empty, 4, 0, |_, _| panic!("width 0 must skip f"));
        par_row_chunks_mut_balanced(&mut empty, 4, 0, &[0, 1, 2, 3, 4], |_, _| {
            panic!("width 0 must skip f")
        });
        let mut one = vec![1.0f32; 5];
        par_row_chunks_mut(&mut one, 1, 5, |start, chunk| {
            assert_eq!((start, chunk.len()), (0, 5));
        });

        // The nnz-balanced runner visits every row exactly once with the
        // right start offsets, for skewed and uniform weights alike.
        set_num_threads(4);
        set_parallel_row_threshold(0);
        let rows = 13;
        let mut row_ptr = vec![0usize];
        for r in 0..rows {
            let w = if r == 2 { 500 } else { r % 3 };
            row_ptr.push(row_ptr[r] + w);
        }
        for threads in [1usize, 2, 4, 8] {
            set_num_threads(threads);
            let width = 3;
            let mut out = vec![0u32; rows * width];
            par_row_chunks_mut_balanced(&mut out, rows, width, &row_ptr, |start, chunk| {
                for (i, row) in chunk.chunks_mut(width).enumerate() {
                    for v in row.iter_mut() {
                        *v += (start + i) as u32 + 1;
                    }
                }
            });
            let want: Vec<u32> = (0..rows)
                .flat_map(|r| std::iter::repeat_n(r as u32 + 1, width))
                .collect();
            assert_eq!(out, want, "balanced threads={threads}");
        }

        // Telemetry (also process-wide, so it lives in this same test):
        // a parallel call records busy/ideal time, a serial call does not.
        mixq_telemetry::set_enabled(true);
        mixq_telemetry::reset();
        set_num_threads(4);
        set_parallel_row_threshold(0);
        let mut out = vec![0u64; 64];
        par_row_chunks_mut(&mut out, 64, 1, |start, chunk| {
            chunk[0] = start as u64;
        });
        set_parallel_row_threshold(1000);
        par_row_chunks_mut(&mut out, 64, 1, |_, _| {});
        let rep = mixq_telemetry::snapshot();
        let counter = |n: &str| {
            rep.counters
                .iter()
                .find(|(k, _)| k == n)
                .map(|&(_, v)| v)
                .unwrap_or(0)
        };
        assert_eq!(counter("parallel.par_calls"), 1);
        assert_eq!(counter("parallel.serial_calls"), 1);
        assert_eq!(counter("parallel.threads_used"), 4);
        assert!(counter("parallel.ideal_ns") >= counter("parallel.busy_ns") / 4);
        mixq_telemetry::reset();
        mixq_telemetry::set_enabled(false);

        set_num_threads(saved.0);
        set_parallel_row_threshold(saved.1);
    }

    #[test]
    fn set_num_threads_clamps() {
        // Read-only observation of the clamp logic via a scratch value;
        // restore immediately so other tests see a sane count.
        let saved = num_threads();
        set_num_threads(0);
        assert_eq!(num_threads(), 1);
        set_num_threads(1_000_000);
        assert_eq!(num_threads(), MAX_THREADS);
        set_num_threads(saved);
    }
}
