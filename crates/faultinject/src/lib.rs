//! Deterministic fault injection for the MixQ-GNN resilience layer.
//!
//! Compiled into the fragile paths of the workspace (training loops, the
//! checkpoint writer, the parallel runtime, the integer executors) but
//! **gated by the `MIXQ_FAULTS` environment variable** exactly like
//! `mixq-telemetry`'s gate: when unset, every [`should_fire`] probe is a
//! single relaxed atomic load and an early return, so production paths pay
//! effectively nothing.
//!
//! A fault spec is a comma-separated list of rules:
//!
//! ```text
//! MIXQ_FAULTS=grad_nan@epoch=3,ckpt_torn@1,worker_panic@2,acc_saturate@1
//! ```
//!
//! * `kind@N` — fire on the **N-th probe** of that kind (1-based);
//! * `kind@name=N` — fire on the probe whose caller-supplied index equals
//!   `N` (e.g. `grad_nan@epoch=3` fires in epoch 3). The `name` is
//!   documentation only; the match is on the index value.
//!
//! Each rule fires **once**; re-installing a spec ([`set_spec`]) resets all
//! probe counters. The injection sites and the recovery machinery record
//! `faults.injected` / `faults.injected.<kind>` / `faults.recovered`
//! telemetry counters, and the same counts are available in-process via
//! [`injected_count`] / [`recovered_count`] for tests that run with
//! telemetry off.

use std::sync::atomic::{AtomicU64, AtomicU8, Ordering};
use std::sync::Mutex;

/// The failure modes the harness can inject.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// Poison one gradient buffer with `NaN` after the backward pass.
    GradNan,
    /// Make the checkpoint writer leave a truncated temp file and fail.
    CkptTorn,
    /// Panic inside one parallel worker chunk.
    WorkerPanic,
    /// Pretend an integer accumulator would saturate, forcing the executor
    /// onto its per-layer f32 fallback.
    AccSaturate,
}

impl FaultKind {
    fn as_str(self) -> &'static str {
        match self {
            FaultKind::GradNan => "grad_nan",
            FaultKind::CkptTorn => "ckpt_torn",
            FaultKind::WorkerPanic => "worker_panic",
            FaultKind::AccSaturate => "acc_saturate",
        }
    }

    fn parse(s: &str) -> Option<Self> {
        Some(match s {
            "grad_nan" => FaultKind::GradNan,
            "ckpt_torn" => FaultKind::CkptTorn,
            "worker_panic" => FaultKind::WorkerPanic,
            "acc_saturate" => FaultKind::AccSaturate,
            _ => return None,
        })
    }
}

/// Marker substring carried by every injected panic payload so the parallel
/// runtime can tell an injected worker panic from a genuine kernel bug.
pub const PANIC_MARKER: &str = "mixq-faultinject";

#[derive(Debug, Clone, Copy)]
enum Trigger {
    /// Fire on the n-th probe of this kind (1-based).
    Probe(u64),
    /// Fire when the caller-supplied index equals this value.
    Index(u64),
}

#[derive(Debug, Clone)]
struct Rule {
    kind: FaultKind,
    trigger: Trigger,
    probes: u64,
    fired: bool,
}

const GATE_UNSET: u8 = 0;
const GATE_OFF: u8 = 1;
const GATE_ON: u8 = 2;

static GATE: AtomicU8 = AtomicU8::new(GATE_UNSET);
static RULES: Mutex<Vec<Rule>> = Mutex::new(Vec::new());
static INJECTED: AtomicU64 = AtomicU64::new(0);
static RECOVERED: AtomicU64 = AtomicU64::new(0);

/// Whether fault injection is armed. First call resolves `MIXQ_FAULTS`
/// (unset or empty disables; otherwise the value is parsed as a spec);
/// later calls are one relaxed atomic load.
#[inline]
pub fn enabled() -> bool {
    match GATE.load(Ordering::Relaxed) {
        GATE_ON => true,
        GATE_OFF => false,
        _ => resolve_gate(),
    }
}

#[cold]
fn resolve_gate() -> bool {
    let spec = std::env::var("MIXQ_FAULTS").unwrap_or_default();
    if spec.trim().is_empty() {
        GATE.store(GATE_OFF, Ordering::Relaxed);
        return false;
    }
    match set_spec(&spec) {
        Ok(()) => true,
        Err(e) => {
            eprintln!("mixq-faultinject: ignoring bad MIXQ_FAULTS: {e}");
            GATE.store(GATE_OFF, Ordering::Relaxed);
            false
        }
    }
}

/// Installs a fault spec, arming the gate and resetting all probe counters
/// and in-process injected/recovered counts. See the module docs for the
/// grammar.
pub fn set_spec(spec: &str) -> Result<(), String> {
    let mut rules = Vec::new();
    for part in spec.split(',') {
        let part = part.trim();
        if part.is_empty() {
            continue;
        }
        let (kind_s, trig_s) = part
            .split_once('@')
            .ok_or_else(|| format!("rule '{part}' missing '@trigger'"))?;
        let kind = FaultKind::parse(kind_s.trim())
            .ok_or_else(|| format!("unknown fault kind '{kind_s}'"))?;
        let trig_s = trig_s.trim();
        let trigger = match trig_s.split_once('=') {
            Some((_name, v)) => Trigger::Index(
                v.trim()
                    .parse()
                    .map_err(|_| format!("bad index in rule '{part}'"))?,
            ),
            None => {
                let n: u64 = trig_s
                    .parse()
                    .map_err(|_| format!("bad probe count in rule '{part}'"))?;
                if n == 0 {
                    return Err(format!("probe count in '{part}' must be >= 1"));
                }
                Trigger::Probe(n)
            }
        };
        rules.push(Rule {
            kind,
            trigger,
            probes: 0,
            fired: false,
        });
    }
    *RULES.lock().unwrap() = rules;
    INJECTED.store(0, Ordering::Relaxed);
    RECOVERED.store(0, Ordering::Relaxed);
    GATE.store(GATE_ON, Ordering::Relaxed);
    Ok(())
}

/// Disarms the gate and removes all rules (counters keep their values so a
/// drill can read them after clearing).
pub fn clear() {
    RULES.lock().unwrap().clear();
    GATE.store(GATE_OFF, Ordering::Relaxed);
}

/// Probes for a fault of `kind` at this site. Returns `true` exactly when a
/// matching rule triggers (each rule at most once). `index` carries a
/// caller-meaningful position (epoch, layer, …) matched by `kind@name=N`
/// rules; probe-count rules (`kind@N`) count every probe of the kind.
///
/// When the gate is off this is one relaxed atomic load.
#[inline]
pub fn should_fire(kind: FaultKind, index: Option<u64>) -> bool {
    if !enabled() {
        return false;
    }
    should_fire_slow(kind, index)
}

#[cold]
fn should_fire_slow(kind: FaultKind, index: Option<u64>) -> bool {
    let mut rules = RULES.lock().unwrap();
    for rule in rules.iter_mut() {
        if rule.kind != kind || rule.fired {
            continue;
        }
        let hit = match rule.trigger {
            Trigger::Probe(n) => {
                rule.probes += 1;
                rule.probes == n
            }
            Trigger::Index(v) => index == Some(v),
        };
        if hit {
            rule.fired = true;
            drop(rules);
            INJECTED.fetch_add(1, Ordering::Relaxed);
            mixq_telemetry::counter_add("faults.injected", 1);
            mixq_telemetry::counter_add(&format!("faults.injected.{}", kind.as_str()), 1);
            return true;
        }
    }
    false
}

/// Records that a recovery path knowingly absorbed one injected fault.
/// Called by the rollback/retry/fallback sites after they handle a fault
/// they know was injected.
pub fn mark_recovered() {
    RECOVERED.fetch_add(1, Ordering::Relaxed);
    mixq_telemetry::counter_add("faults.recovered", 1);
}

/// Number of faults injected since the last [`set_spec`].
pub fn injected_count() -> u64 {
    INJECTED.load(Ordering::Relaxed)
}

/// Number of injected faults recovered since the last [`set_spec`].
pub fn recovered_count() -> u64 {
    RECOVERED.load(Ordering::Relaxed)
}

/// Panics with the injection marker; the parallel runtime's containment
/// recognises the payload via [`PANIC_MARKER`].
pub fn injected_panic(site: &str) -> ! {
    panic!("{PANIC_MARKER}: injected worker panic at {site}")
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The gate/rule state is process-global, so all behavioural assertions
    /// live in one test (the same pattern the telemetry crate uses).
    #[test]
    fn spec_grammar_and_firing_semantics() {
        // Probe-count rule: fires exactly on the 2nd probe, once.
        set_spec("worker_panic@2").unwrap();
        assert!(enabled());
        assert!(!should_fire(FaultKind::WorkerPanic, None));
        assert!(should_fire(FaultKind::WorkerPanic, None));
        assert!(!should_fire(FaultKind::WorkerPanic, None));
        assert_eq!(injected_count(), 1);

        // Index rule: fires when the caller index matches, regardless of
        // probe order; other kinds never match.
        set_spec("grad_nan@epoch=3").unwrap();
        assert!(!should_fire(FaultKind::GradNan, Some(1)));
        assert!(!should_fire(FaultKind::CkptTorn, Some(3)));
        assert!(should_fire(FaultKind::GradNan, Some(3)));
        assert!(!should_fire(FaultKind::GradNan, Some(3)), "fires once");
        assert_eq!(injected_count(), 1);
        mark_recovered();
        assert_eq!(recovered_count(), 1);

        // Multiple rules, independent counters.
        set_spec("ckpt_torn@1, acc_saturate@layer=0").unwrap();
        assert_eq!(injected_count(), 0, "set_spec resets counters");
        assert!(should_fire(FaultKind::CkptTorn, None));
        assert!(should_fire(FaultKind::AccSaturate, Some(0)));
        assert_eq!(injected_count(), 2);

        // Bad specs are rejected.
        assert!(set_spec("grad_nan").is_err(), "missing trigger");
        assert!(set_spec("nonsense@1").is_err(), "unknown kind");
        assert!(set_spec("grad_nan@zero").is_err(), "bad count");
        assert!(set_spec("grad_nan@0").is_err(), "count must be >= 1");
        assert!(set_spec("grad_nan@epoch=x").is_err(), "bad index");

        // clear() disarms: probes return false without touching rules.
        set_spec("ckpt_torn@1").unwrap();
        clear();
        assert!(!enabled());
        assert!(!should_fire(FaultKind::CkptTorn, None));
    }
}
