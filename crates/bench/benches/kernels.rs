//! Micro-benchmarks of the computational kernels: dense matmul, float and
//! integer SpMM, quantization, and the small eigensolver.
//!
//! Run with `cargo bench --bench kernels`.

use mixq_bench::bench;
use mixq_core::{quantize_csr_symmetric, quantized_spmm, QmpParams};
use mixq_graph::{cora_like, jacobi_eigh};
use mixq_sparse::gcn_normalize;
use mixq_tensor::{Matrix, QuantParams, Rng};

fn bench_matmul() {
    let mut rng = Rng::seed_from_u64(1);
    let a = Matrix::from_fn(256, 256, |_, _| rng.normal());
    let b = Matrix::from_fn(256, 256, |_, _| rng.normal());
    bench("matmul_256", || {
        std::hint::black_box(a.matmul(&b));
    });
    bench("matmul_at_b_256", || {
        std::hint::black_box(a.matmul_at_b(&b));
    });
}

fn bench_spmm() {
    let ds = cora_like(1);
    let adj = gcn_normalize(&ds.adj);
    let f = 64usize;
    let mut rng = Rng::seed_from_u64(2);
    let x: Vec<f32> = (0..ds.num_nodes() * f).map(|_| rng.normal()).collect();
    bench("spmm_f32_cora_f64", || {
        std::hint::black_box(adj.spmm(&x, f));
    });

    let (qa, sa) = quantize_csr_symmetric(&adj, 8);
    let qx: Vec<i32> = (0..ds.num_nodes() * f)
        .map(|_| rng.gen_range(255) as i32 - 128)
        .collect();
    let p = QmpParams::per_tensor(ds.num_nodes(), f, sa, 0, 0.01, 3, 0.02, 0, -128, 127);
    bench("spmm_int8_theorem1_cora_f64", || {
        std::hint::black_box(quantized_spmm(&qa, &qx, f, &p));
    });
}

fn bench_quantize() {
    let mut rng = Rng::seed_from_u64(3);
    let x = Matrix::from_fn(512, 128, |_, _| rng.normal());
    let qp = QuantParams::from_min_max(-4.0, 4.0, 8);
    bench("fake_quant_64k", || {
        std::hint::black_box(x.map(|v| qp.fake(v)));
    });
}

fn bench_eigh() {
    let mut rng = Rng::seed_from_u64(4);
    let b = Matrix::from_fn(41, 41, |_, _| rng.normal());
    let sym = b.zip(&b.transpose(), |x, y| 0.5 * (x + y));
    bench("jacobi_eigh_41", || {
        std::hint::black_box(jacobi_eigh(&sym, 50));
    });
}

fn main() {
    bench_matmul();
    bench_spmm();
    bench_quantize();
    bench_eigh();
}
