//! Speedup of the scoped-thread parallel runtime over the serial kernels.
//!
//! Measures dense matmul, float SpMM, Theorem-1 integer SpMM, and the
//! fake-quant element-wise kernel at 1/2/4/8 threads, and prints each
//! configuration's speedup relative to the 1-thread baseline. Results are
//! bit-identical across thread counts (asserted against the baseline as
//! part of the run), so the only variable is wall-clock time.
//!
//! Run with `cargo bench --bench parallel_kernels`. On a single-core
//! machine the speedups hover around 1×; the runtime caps threads at the
//! row count and falls back to the serial path below the row threshold, so
//! oversubscription costs stay bounded.

use mixq_bench::{format_ns, median_ns_per_iter};
use mixq_core::{quantize_csr_symmetric, quantized_spmm, QmpParams};
use mixq_graph::cora_like;
use mixq_parallel::set_num_threads;
use mixq_sparse::gcn_normalize;
use mixq_tensor::{Matrix, QuantParams, Rng};

const THREADS: [usize; 4] = [1, 2, 4, 8];

/// Benchmarks `f` at each thread count and prints time + speedup vs 1.
fn sweep<T: PartialEq>(name: &str, mut f: impl FnMut() -> T) {
    set_num_threads(1);
    let reference = f();
    let mut base = 0f64;
    for &t in &THREADS {
        set_num_threads(t);
        assert!(f() == reference, "{name}: output changed at {t} threads");
        let ns = median_ns_per_iter(|| {
            std::hint::black_box(f());
        });
        if t == 1 {
            base = ns;
        }
        println!(
            "{name:<32} {t} thread{} {:>12}/iter  {:>5.2}x",
            if t == 1 { " " } else { "s" },
            format_ns(ns),
            base / ns
        );
    }
    set_num_threads(1);
}

fn main() {
    println!(
        "parallel runtime: {} hardware threads available, MIXQ_THREADS={}",
        std::thread::available_parallelism().map_or(1, |n| n.get()),
        std::env::var("MIXQ_THREADS").unwrap_or_else(|_| "<unset>".into()),
    );

    let mut rng = Rng::seed_from_u64(1);
    let a = Matrix::from_fn(256, 256, |_, _| rng.normal());
    let b = Matrix::from_fn(256, 256, |_, _| rng.normal());
    sweep("matmul_256", || a.matmul(&b).into_vec());

    let ds = cora_like(1);
    let adj = gcn_normalize(&ds.adj);
    let f = 64usize;
    let x: Vec<f32> = (0..ds.num_nodes() * f).map(|_| rng.normal()).collect();
    sweep("spmm_f32_cora_f64", || adj.spmm(&x, f));

    let (qa, sa) = quantize_csr_symmetric(&adj, 8);
    let qx: Vec<i32> = (0..ds.num_nodes() * f)
        .map(|_| rng.gen_range(255) as i32 - 128)
        .collect();
    let p = QmpParams::per_tensor(ds.num_nodes(), f, sa, 0, 0.01, 3, 0.02, 0, -128, 127);
    sweep("spmm_int8_theorem1_cora_f64", || {
        quantized_spmm(&qa, &qx, f, &p)
    });

    let big = Matrix::from_fn(512, 128, |_, _| rng.normal());
    let qp = QuantParams::from_min_max(-4.0, 4.0, 8);
    sweep("fake_quant_64k", || big.par_map(|v| qp.fake(v)).into_vec());
}
