//! Design-choice ablation benchmarks called out in DESIGN.md:
//!
//! * Theorem 1's fused integer path vs the naive dequantize → FP32 SpMM →
//!   requantize pipeline (same result, different execution);
//! * the relaxed (|B|-way) forward vs the plain fixed-bit QAT forward —
//!   the `×|B|` search overhead factor of §4.2;
//! * fixed-point requantization vs float requantization of an accumulator.
//!
//! Run with `cargo bench --bench quantized_paths`.

use mixq_bench::bench;
use mixq_core::{
    fixed_point_multiply, gcn_schema, quantize_csr_symmetric, quantize_multiplier, quantized_spmm,
    BitAssignment, QGcnNet, QmpParams, QuantKind, RelaxedGcnNet, SearchConfig,
};
use mixq_graph::cora_like;
use mixq_nn::{Binding, Fwd, NodeBundle, NodeNet, ParamSet};
use mixq_sparse::gcn_normalize;
use mixq_tensor::{QuantParams, Rng, Tape};

fn bench_theorem1_vs_naive() {
    let ds = cora_like(1);
    let adj = gcn_normalize(&ds.adj);
    let f = 64usize;
    let n = ds.num_nodes();
    let mut rng = Rng::seed_from_u64(1);
    let (qa, sa) = quantize_csr_symmetric(&adj, 8);
    let qx: Vec<i32> = (0..n * f)
        .map(|_| rng.gen_range(255) as i32 - 128)
        .collect();
    let x_qp = QuantParams::from_min_max(-1.0, 1.0, 8);
    let y_qp = QuantParams::from_min_max(-4.0, 4.0, 8);
    let p = QmpParams::per_tensor(
        n,
        f,
        sa,
        0,
        x_qp.scale,
        x_qp.zero_point,
        y_qp.scale,
        y_qp.zero_point,
        -128,
        127,
    );
    bench("theorem1_fused_int_path", || {
        std::hint::black_box(quantized_spmm(&qa, &qx, f, &p));
    });
    bench("naive_dequant_fp_requant_path", || {
        // Dequantize X, run the FP32 SpMM, requantize the output.
        let xf: Vec<f32> = qx.iter().map(|&q| x_qp.dequantize(q)).collect();
        let y = adj.spmm(&xf, f);
        let qy: Vec<i32> = y.iter().map(|&v| y_qp.quantize(v)).collect();
        std::hint::black_box(qy);
    });
}

fn bench_relaxed_overhead() {
    let ds = cora_like(1);
    let bundle = NodeBundle::new(&ds);
    let dims = [ds.feat_dim(), 32, ds.num_classes()];
    let _ = SearchConfig::default();

    let mut ps_q = ParamSet::new();
    let mut rng = Rng::seed_from_u64(2);
    let a = BitAssignment::uniform(gcn_schema(2), 8);
    let mut qnet = QGcnNet::new(
        &mut ps_q,
        &dims,
        a,
        QuantKind::Native,
        &bundle.degrees,
        0.0,
        &mut rng,
    )
    .expect("assignment matches schema");
    bench("fixed_bit_qat_forward", || {
        let mut tape = Tape::new();
        let mut binding = Binding::new();
        let mut rng = Rng::seed_from_u64(0);
        let mut f = Fwd {
            tape: &mut tape,
            ps: &ps_q,
            binding: &mut binding,
            rng: &mut rng,
            training: true,
        };
        let x = f.tape.constant(bundle.features.clone());
        std::hint::black_box(qnet.forward(&mut f, &bundle, x));
    });

    let mut ps_r = ParamSet::new();
    let mut rng = Rng::seed_from_u64(2);
    let mut rnet = RelaxedGcnNet::new(&mut ps_r, &dims, &[2, 4, 8], 0.0, &mut rng);
    bench("relaxed_forward_3_choices", || {
        let mut tape = Tape::new();
        let mut binding = Binding::new();
        let mut rng = Rng::seed_from_u64(0);
        let mut f = Fwd {
            tape: &mut tape,
            ps: &ps_r,
            binding: &mut binding,
            rng: &mut rng,
            training: true,
        };
        let x = f.tape.constant(bundle.features.clone());
        std::hint::black_box(rnet.forward(&mut f, &bundle, x));
    });
}

fn bench_requantization() {
    let accs: Vec<i64> = (0..65_536).map(|i| (i as i64 - 32_768) * 1_001).collect();
    let real = 0.000_734_f64;
    let (m0, rshift) = quantize_multiplier(real);
    bench("requant_fixed_point_64k", || {
        let mut s = 0i64;
        for &a in &accs {
            s = s.wrapping_add(fixed_point_multiply(a, m0, rshift));
        }
        std::hint::black_box(s);
    });
    bench("requant_float_64k", || {
        let mut s = 0i64;
        for &a in &accs {
            s = s.wrapping_add((a as f64 * real).round() as i64);
        }
        std::hint::black_box(s);
    });
}

fn main() {
    bench_theorem1_vs_naive();
    bench_relaxed_overhead();
    bench_requantization();
}
