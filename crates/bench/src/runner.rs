//! Shared experiment runners: each paper table/figure binary composes these.

use mixq_core::{
    gcn_cost_model, sage_cost_model, search_gcn_bits, search_sage_bits, BitAssignment, CostModel,
    QGcnNet, QSageNet, QuantKind, SearchConfig,
};
use mixq_graph::NodeDataset;
use mixq_nn::{
    mean_std, train_node, GcnNet, NodeBundle, ParamSet, SageNet, TrainConfig, TrainReport,
};
use mixq_tensor::Rng;

/// One table cell: metric (accuracy or ROC-AUC) over several runs, plus the
/// efficiency numbers.
#[derive(Debug, Clone)]
pub struct CellResult {
    pub mean: f64,
    pub std: f64,
    pub avg_bits: f64,
    pub gbitops: f64,
    /// Bit assignment of the last run (for MixQ rows; None otherwise).
    pub assignment: Option<BitAssignment>,
}

impl CellResult {
    pub fn from_runs(metrics: &[f64], avg_bits: f64, gbitops: f64) -> Self {
        let (mean, std) = mean_std(metrics);
        Self {
            mean,
            std,
            avg_bits,
            gbitops,
            assignment: None,
        }
    }
}

/// The architecture family used by the node-level runners.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum NodeArch {
    Gcn,
    Sage,
}

/// Configuration of one node-classification experiment cell.
#[derive(Debug, Clone)]
pub struct NodeExp {
    pub arch: NodeArch,
    pub hidden: Vec<usize>,
    pub dropout: f32,
    pub train: TrainConfig,
    pub search: SearchConfig,
    pub runs: usize,
}

impl NodeExp {
    pub fn gcn(hidden: usize, runs: usize) -> Self {
        Self {
            arch: NodeArch::Gcn,
            hidden: vec![hidden],
            dropout: 0.5,
            train: TrainConfig {
                epochs: 150,
                lr: 0.01,
                weight_decay: 5e-4,
                seed: 0,
                patience: 40,
                ..TrainConfig::default()
            },
            search: SearchConfig {
                epochs: 60,
                lr: 0.01,
                lambda: 0.1,
                seed: 0,
                warmup: 30,
                ..SearchConfig::default()
            },
            runs,
        }
    }

    pub fn sage(hidden: usize, runs: usize) -> Self {
        Self {
            arch: NodeArch::Sage,
            ..Self::gcn(hidden, runs)
        }
    }

    pub fn dims(&self, ds: &NodeDataset) -> Vec<usize> {
        let mut d = vec![ds.feat_dim()];
        d.extend(&self.hidden);
        d.push(ds.num_classes());
        d
    }
}

/// Reduces a training report to its test metric. A diverged run is flagged
/// on stderr (`DIVERGED (recovered k times)`) instead of silently feeding a
/// NaN row into the tables — the metric itself comes from the last finite
/// parameters the recovery machinery kept.
pub fn report_metric(rep: &TrainReport, what: &str) -> f64 {
    if rep.diverged {
        eprintln!(
            "{what}: DIVERGED (recovered {} times); metric taken from last finite params",
            rep.recovered_divergences
        );
    } else if rep.recovered_divergences > 0 {
        eprintln!(
            "{what}: recovered from {} divergence(s)",
            rep.recovered_divergences
        );
    }
    rep.test_metric
}

fn fp32_assignment(arch: NodeArch, nlayers: usize) -> BitAssignment {
    match arch {
        NodeArch::Gcn => BitAssignment::uniform(mixq_core::gcn_schema(nlayers), 32),
        NodeArch::Sage => BitAssignment::uniform(mixq_core::sage_schema(nlayers), 32),
    }
}

fn cost_for(arch: NodeArch, a: &BitAssignment, dims: &[usize], ds: &NodeDataset) -> CostModel {
    let n = ds.num_nodes() as u64;
    // GCN uses Â (adds self-loops); SAGE uses D⁻¹A.
    let nnz = match arch {
        NodeArch::Gcn => (ds.num_edges() + ds.num_nodes()) as u64,
        NodeArch::Sage => ds.num_edges() as u64,
    };
    match arch {
        NodeArch::Gcn => gcn_cost_model(a, dims, n, nnz),
        NodeArch::Sage => sage_cost_model(a, dims, n, nnz),
    }
}

/// FP32 baseline row.
pub fn run_fp32(ds: &NodeDataset, bundle: &NodeBundle, exp: &NodeExp) -> CellResult {
    let dims = exp.dims(ds);
    let metrics: Vec<f64> = (0..exp.runs)
        .map(|run| {
            let seed = exp.train.seed + run as u64;
            let mut rng = Rng::seed_from_u64(seed ^ 0xF32);
            let mut ps = ParamSet::new();
            let cfg = TrainConfig {
                seed,
                ..exp.train.clone()
            };
            let rep: TrainReport = match exp.arch {
                NodeArch::Gcn => {
                    let mut net = GcnNet::new(&mut ps, &dims, exp.dropout, &mut rng);
                    train_node(&mut net, &mut ps, ds, bundle, &cfg)
                }
                NodeArch::Sage => {
                    let mut net = SageNet::new(&mut ps, &dims, exp.dropout, &mut rng);
                    train_node(&mut net, &mut ps, ds, bundle, &cfg)
                }
            };
            report_metric(&rep, "fp32")
        })
        .collect();
    let a = fp32_assignment(exp.arch, dims.len() - 1);
    let cm = cost_for(exp.arch, &a, &dims, ds);
    CellResult::from_runs(&metrics, cm.avg_bits(), cm.gbit_ops())
}

/// Trains a fixed-bit quantized net (native or DQ quantizers) and reports
/// the cell.
pub fn run_quantized(
    ds: &NodeDataset,
    bundle: &NodeBundle,
    exp: &NodeExp,
    assignment: &BitAssignment,
    kind: QuantKind,
) -> CellResult {
    let dims = exp.dims(ds);
    let metrics: Vec<f64> = (0..exp.runs)
        .map(|run| {
            let seed = exp.train.seed + run as u64;
            train_one_quantized(ds, bundle, exp, &dims, assignment.clone(), kind, seed)
        })
        .collect();
    let cm = cost_for(exp.arch, assignment, &dims, ds);
    let mut cell = CellResult::from_runs(&metrics, cm.avg_bits(), cm.gbit_ops());
    cell.assignment = Some(assignment.clone());
    cell
}

fn train_one_quantized(
    ds: &NodeDataset,
    bundle: &NodeBundle,
    exp: &NodeExp,
    dims: &[usize],
    assignment: BitAssignment,
    kind: QuantKind,
    seed: u64,
) -> f64 {
    let mut rng = Rng::seed_from_u64(seed ^ 0x0A7);
    let mut ps = ParamSet::new();
    let cfg = TrainConfig {
        seed,
        ..exp.train.clone()
    };
    match exp.arch {
        NodeArch::Gcn => {
            let mut net = QGcnNet::new(
                &mut ps,
                dims,
                assignment,
                kind,
                &bundle.degrees,
                exp.dropout,
                &mut rng,
            )
            .expect("assignment matches schema");
            report_metric(&train_node(&mut net, &mut ps, ds, bundle, &cfg), "qgcn")
        }
        NodeArch::Sage => {
            let mut net = QSageNet::new(
                &mut ps,
                dims,
                assignment,
                kind,
                &bundle.degrees,
                exp.dropout,
                &mut rng,
            )
            .expect("assignment matches schema");
            report_metric(&train_node(&mut net, &mut ps, ds, bundle, &cfg), "qsage")
        }
    }
}

/// The full MixQ pipeline: relaxed search per run, then QAT training of the
/// found assignment (optionally with the DQ quantizer — Tables 4/5).
pub fn run_mixq(
    ds: &NodeDataset,
    bundle: &NodeBundle,
    exp: &NodeExp,
    bit_choices: &[u8],
    lambda: f32,
    kind: QuantKind,
) -> CellResult {
    let dims = exp.dims(ds);
    let mut metrics = Vec::with_capacity(exp.runs);
    let mut last_assignment = None;
    let mut bits_acc = 0.0;
    let mut gbit_acc = 0.0;
    for run in 0..exp.runs {
        let seed = exp.train.seed + run as u64;
        let scfg = SearchConfig {
            lambda,
            seed,
            ..exp.search.clone()
        };
        let assignment = match exp.arch {
            NodeArch::Gcn => search_gcn_bits(ds, bundle, &dims, bit_choices, exp.dropout, &scfg),
            NodeArch::Sage => search_sage_bits(ds, bundle, &dims, bit_choices, exp.dropout, &scfg),
        };
        metrics.push(train_one_quantized(
            ds,
            bundle,
            exp,
            &dims,
            assignment.clone(),
            kind,
            seed,
        ));
        let cm = cost_for(exp.arch, &assignment, &dims, ds);
        bits_acc += cm.avg_bits();
        gbit_acc += cm.gbit_ops();
        last_assignment = Some(assignment);
    }
    let (mean, std) = mean_std(&metrics);
    CellResult {
        mean,
        std,
        avg_bits: bits_acc / exp.runs as f64,
        gbitops: gbit_acc / exp.runs as f64,
        assignment: last_assignment,
    }
}

/// The A²Q baseline: per-node bit-widths by degree tier, 8-bit weights.
/// BitOPs include the dynamic-precision marshalling overhead (FP32 work
/// proportional to the activations, per Table 1's complexity row).
pub fn run_a2q(
    ds: &NodeDataset,
    bundle: &NodeBundle,
    exp: &NodeExp,
    tiers: (u8, u8, u8),
) -> CellResult {
    let dims = exp.dims(ds);
    let nlayers = dims.len() - 1;
    // Activation components are overridden per-node by the A²Q quantizer;
    // weights and adjacency run at 8 bits.
    let base = match exp.arch {
        NodeArch::Gcn => BitAssignment::uniform(mixq_core::gcn_schema(nlayers), 8),
        NodeArch::Sage => BitAssignment::uniform(mixq_core::sage_schema(nlayers), 8),
    };
    let kind = QuantKind::A2q {
        lo: tiers.0,
        mid: tiers.1,
        hi: tiers.2,
    };
    let metrics: Vec<f64> = (0..exp.runs)
        .map(|run| {
            let seed = exp.train.seed + run as u64;
            train_one_quantized(ds, bundle, exp, &dims, base.clone(), kind, seed)
        })
        .collect();
    let (avg_bits, gbitops) = a2q_cost(ds, exp, &dims, tiers);
    let mut cell = CellResult::from_runs(&metrics, avg_bits, gbitops);
    cell.assignment = None;
    cell
}

/// A²Q efficiency model: MACs run at `max(b_node, 8)` (≈8 for every tier we
/// use), but every activation element pays an FP32 marshalling cost for the
/// per-node scale/bit-width handling — the `O_FP32(nfl)` term of Table 1.
/// The marshalling fraction (30 % of MACs at FP32) is calibrated so the
/// FP32 : A²Q BitOPs ratio on a 2-layer GCN matches the paper's Table 3
/// (16.11 : 8.94 on Cora).
fn a2q_cost(ds: &NodeDataset, exp: &NodeExp, dims: &[usize], tiers: (u8, u8, u8)) -> (f64, f64) {
    let q = mixq_core::A2qQuantizer::new(&ds.adj.row_degrees(), tiers.0, tiers.1, tiers.2);
    let avg_bits = q.avg_bits();
    let int8 = match exp.arch {
        NodeArch::Gcn => BitAssignment::uniform(mixq_core::gcn_schema(dims.len() - 1), 8),
        NodeArch::Sage => BitAssignment::uniform(mixq_core::sage_schema(dims.len() - 1), 8),
    };
    let cm = cost_for(exp.arch, &int8, dims, ds);
    let int8_bitops = cm.bit_ops();
    let total_macs: u64 = cm.total_ops() / 2;
    let marshalling = 0.3 * total_macs as f64 * 2.0 * 32.0;
    (avg_bits, (int8_bitops + marshalling) / 1e9)
}

/// The Random / Random+INT8 ablation baselines (Table 10).
pub fn run_random(
    ds: &NodeDataset,
    bundle: &NodeBundle,
    exp: &NodeExp,
    bit_choices: &[u8],
    force_output_int8: bool,
) -> CellResult {
    let dims = exp.dims(ds);
    let nlayers = dims.len() - 1;
    let mut metrics = Vec::with_capacity(exp.runs);
    let mut bits_acc = 0.0;
    let mut gbit_acc = 0.0;
    for run in 0..exp.runs {
        let seed = exp.train.seed + run as u64;
        let mut rng = Rng::seed_from_u64(seed ^ 0x3A4D);
        let names = match exp.arch {
            NodeArch::Gcn => mixq_core::gcn_schema(nlayers),
            NodeArch::Sage => mixq_core::sage_schema(nlayers),
        };
        let mut a = BitAssignment::random(names, bit_choices, &mut rng);
        if force_output_int8 {
            let last = a.len() - 1;
            a.bits[last] = 8;
        }
        metrics.push(train_one_quantized(
            ds,
            bundle,
            exp,
            &dims,
            a.clone(),
            QuantKind::Native,
            seed,
        ));
        let cm = cost_for(exp.arch, &a, &dims, ds);
        bits_acc += cm.avg_bits();
        gbit_acc += cm.gbit_ops();
    }
    let (mean, std) = mean_std(&metrics);
    CellResult {
        mean,
        std,
        avg_bits: bits_acc / exp.runs as f64,
        gbitops: gbit_acc / exp.runs as f64,
        assignment: None,
    }
}
