//! Cross-validated graph-classification runners (Tables 8 and 9).

use mixq_core::{
    gcn_graph_cost_model, gcn_graph_schema, gin_graph_cost_model, gin_graph_schema,
    search_gcn_graph_bits, search_gin_graph_bits, BitAssignment, QGcnGraphNet, QGinGraphNet,
    QuantKind, SearchConfig,
};
use mixq_graph::{stratified_kfold, GraphDataset};
use mixq_nn::{
    mean_std, train_graph, GcnGraphNet, GinGraphNet, GraphBundle, GraphTrainReport, ParamSet,
    TrainConfig,
};
use mixq_tensor::Rng;

use crate::runner::CellResult;

/// Graph-level twin of [`crate::runner::report_metric`]: flags diverged
/// folds on stderr instead of feeding NaN into the k-fold means.
fn fold_metric(rep: &GraphTrainReport, what: &str) -> f64 {
    if rep.diverged {
        eprintln!(
            "{what}: DIVERGED (recovered {} times); metric taken from last finite params",
            rep.recovered_divergences
        );
    } else if rep.recovered_divergences > 0 {
        eprintln!(
            "{what}: recovered from {} divergence(s)",
            rep.recovered_divergences
        );
    }
    rep.test_acc
}

/// The graph-level architecture family.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum GraphArch {
    /// Five GIN layers + max pool + 2-linear head (Table 8).
    Gin,
    /// Four GCN layers + max pool + linear head (Table 9, CSL).
    Gcn,
}

/// Configuration of one graph-classification experiment.
#[derive(Debug, Clone)]
pub struct GraphExp {
    pub arch: GraphArch,
    pub hidden: usize,
    pub layers: usize,
    pub folds: usize,
    pub train: TrainConfig,
    pub search: SearchConfig,
}

impl GraphExp {
    pub fn gin_table8(folds: usize) -> Self {
        Self {
            arch: GraphArch::Gin,
            hidden: 32,
            layers: 5,
            folds,
            train: TrainConfig {
                epochs: 80,
                lr: 0.01,
                weight_decay: 1e-4,
                seed: 0,
                patience: 0,
                ..TrainConfig::default()
            },
            search: SearchConfig {
                epochs: 50,
                lr: 0.01,
                lambda: 0.1,
                seed: 0,
                warmup: 25,
                ..SearchConfig::default()
            },
        }
    }

    pub fn gcn_csl(folds: usize) -> Self {
        Self {
            arch: GraphArch::Gcn,
            hidden: 32,
            layers: 4,
            folds,
            train: TrainConfig {
                epochs: 120,
                lr: 0.01,
                weight_decay: 1e-4,
                seed: 0,
                patience: 0,
                ..TrainConfig::default()
            },
            search: SearchConfig {
                epochs: 60,
                lr: 0.01,
                lambda: 0.0,
                seed: 0,
                warmup: 30,
                ..SearchConfig::default()
            },
        }
    }
}

/// What to run in each fold.
pub enum GraphMethod {
    Fp32,
    Fixed(BitAssignment, QuantKind),
    /// MixQ: per-fold relaxed search with this λ, then QAT.
    MixQ {
        choices: Vec<u8>,
        lambda: f32,
    },
    A2q {
        lo: u8,
        mid: u8,
        hi: u8,
    },
}

/// Per-fold accuracies plus averaged efficiency numbers.
pub struct CvOutcome {
    pub accs: Vec<f64>,
    pub avg_bits: f64,
    pub gbitops: f64,
}

impl CvOutcome {
    pub fn cell(&self) -> CellResult {
        let (mean, std) = mean_std(&self.accs);
        CellResult {
            mean,
            std,
            avg_bits: self.avg_bits,
            gbitops: self.gbitops,
            assignment: None,
        }
    }

    pub fn min(&self) -> f64 {
        self.accs.iter().cloned().fold(f64::INFINITY, f64::min)
    }

    pub fn max(&self) -> f64 {
        self.accs.iter().cloned().fold(f64::NEG_INFINITY, f64::max)
    }
}

fn dataset_totals(ds: &GraphDataset) -> (u64, u64, u64) {
    let n: u64 = ds.graphs.iter().map(|g| g.num_nodes() as u64).sum();
    let e: u64 = ds.graphs.iter().map(|g| g.num_edges() as u64).sum();
    (n, e, ds.len() as u64)
}

fn schema(exp: &GraphExp) -> Vec<String> {
    match exp.arch {
        GraphArch::Gin => gin_graph_schema(exp.layers),
        GraphArch::Gcn => gcn_graph_schema(exp.layers),
    }
}

fn cost(exp: &GraphExp, ds: &GraphDataset, a: &BitAssignment) -> (f64, f64) {
    let (n, e, g) = dataset_totals(ds);
    // GCN-graph aggregation runs on Â (self-loops added).
    let cm = match exp.arch {
        GraphArch::Gin => gin_graph_cost_model(
            a,
            ds.feat_dim(),
            exp.hidden,
            ds.num_classes,
            exp.layers,
            n,
            e,
            g,
        ),
        GraphArch::Gcn => gcn_graph_cost_model(
            a,
            ds.feat_dim(),
            exp.hidden,
            ds.num_classes,
            exp.layers,
            n,
            e + n,
            g,
        ),
    };
    (cm.avg_bits(), cm.gbit_ops())
}

/// Runs `method` under stratified k-fold cross validation.
pub fn run_graph_cv(ds: &GraphDataset, exp: &GraphExp, method: &GraphMethod) -> CvOutcome {
    let mut rng = Rng::seed_from_u64(exp.train.seed ^ 0xF01D);
    let folds = stratified_kfold(&mut rng, &ds.labels, ds.num_classes, exp.folds);
    let mut accs = Vec::with_capacity(exp.folds);
    let mut bits_acc = 0.0;
    let mut gb_acc = 0.0;
    for (fold, (train_idx, test_idx)) in folds.iter().enumerate() {
        let seed = exp.train.seed + fold as u64;
        let train = GraphBundle::from_graphs(ds, train_idx);
        let test = GraphBundle::from_graphs(ds, test_idx);
        let (acc, bits, gb) = run_fold(ds, exp, method, &train, &test, seed);
        accs.push(acc);
        bits_acc += bits;
        gb_acc += gb;
    }
    CvOutcome {
        accs,
        avg_bits: bits_acc / exp.folds as f64,
        gbitops: gb_acc / exp.folds as f64,
    }
}

fn run_fold(
    ds: &GraphDataset,
    exp: &GraphExp,
    method: &GraphMethod,
    train: &GraphBundle,
    test: &GraphBundle,
    seed: u64,
) -> (f64, f64, f64) {
    let cfg = TrainConfig {
        seed,
        ..exp.train.clone()
    };
    match method {
        GraphMethod::Fp32 => {
            let a = BitAssignment::uniform(schema(exp), 32);
            let (bits, gb) = cost(exp, ds, &a);
            let mut ps = ParamSet::new();
            let mut rng = Rng::seed_from_u64(seed ^ 0xF32);
            let acc = match exp.arch {
                GraphArch::Gin => {
                    let mut net = GinGraphNet::new(
                        &mut ps,
                        ds.feat_dim(),
                        exp.hidden,
                        ds.num_classes,
                        exp.layers,
                        &mut rng,
                    );
                    fold_metric(&train_graph(&mut net, &mut ps, train, test, &cfg), "fp32")
                }
                GraphArch::Gcn => {
                    let mut net = GcnGraphNet::new(
                        &mut ps,
                        ds.feat_dim(),
                        exp.hidden,
                        ds.num_classes,
                        exp.layers,
                        &mut rng,
                    );
                    fold_metric(&train_graph(&mut net, &mut ps, train, test, &cfg), "fp32")
                }
            };
            (acc, bits, gb)
        }
        GraphMethod::Fixed(a, kind) => {
            let (bits, gb) = cost(exp, ds, a);
            let acc = train_fixed(ds, exp, a.clone(), *kind, train, test, &cfg);
            (acc, bits, gb)
        }
        GraphMethod::MixQ { choices, lambda } => {
            let scfg = SearchConfig {
                lambda: *lambda,
                seed,
                ..exp.search.clone()
            };
            let a = match exp.arch {
                GraphArch::Gin => search_gin_graph_bits(
                    train,
                    ds.feat_dim(),
                    exp.hidden,
                    ds.num_classes,
                    exp.layers,
                    choices,
                    &scfg,
                ),
                GraphArch::Gcn => search_gcn_graph_bits(
                    train,
                    ds.feat_dim(),
                    exp.hidden,
                    ds.num_classes,
                    exp.layers,
                    choices,
                    &scfg,
                ),
            };
            let (bits, gb) = cost(exp, ds, &a);
            let acc = train_fixed(ds, exp, a, QuantKind::Native, train, test, &cfg);
            (acc, bits, gb)
        }
        GraphMethod::A2q { lo, mid, hi } => {
            let a = BitAssignment::uniform(schema(exp), 8);
            let (_, gb8) = cost(exp, ds, &a);
            let kind = QuantKind::A2q {
                lo: *lo,
                mid: *mid,
                hi: *hi,
            };
            let acc = train_fixed(ds, exp, a, kind, train, test, &cfg);
            // Avg bits from the degree-tier allocation over the train batch;
            // BitOPs = INT8 compute + dynamic-precision marshalling (30 % of
            // MACs at FP32, see the node runner's calibration note).
            let q = mixq_core::A2qQuantizer::new(&train.degrees, *lo, *mid, *hi);
            let marshalling = 0.3 * (gb8 / 8.0) * 32.0;
            (acc, q.avg_bits(), gb8 + marshalling)
        }
    }
}

fn train_fixed(
    ds: &GraphDataset,
    exp: &GraphExp,
    a: BitAssignment,
    kind: QuantKind,
    train: &GraphBundle,
    test: &GraphBundle,
    cfg: &TrainConfig,
) -> f64 {
    let mut ps = ParamSet::new();
    let mut rng = Rng::seed_from_u64(cfg.seed ^ 0x0A7);
    match exp.arch {
        GraphArch::Gin => {
            let mut net = QGinGraphNet::new(
                &mut ps,
                ds.feat_dim(),
                exp.hidden,
                ds.num_classes,
                exp.layers,
                a,
                kind,
                &train.degrees,
                &mut rng,
            )
            .expect("assignment matches schema");
            fold_metric(
                &train_graph(&mut net, &mut ps, train, test, cfg),
                "quantized",
            )
        }
        GraphArch::Gcn => {
            let mut net = QGcnGraphNet::new(
                &mut ps,
                ds.feat_dim(),
                exp.hidden,
                ds.num_classes,
                exp.layers,
                a,
                kind,
                &train.degrees,
                &mut rng,
            )
            .expect("assignment matches schema");
            fold_metric(
                &train_graph(&mut net, &mut ps, train, test, cfg),
                "quantized",
            )
        }
    }
}
