//! Experiment harness for the MixQ-GNN reproduction: shared runners, a
//! table printer, and one binary per paper table/figure (see `src/bin/`).

pub mod graph_runner;
pub mod runner;
pub mod sweep;
pub mod table;
pub mod timing;

pub use graph_runner::{run_graph_cv, CvOutcome, GraphArch, GraphExp, GraphMethod};
pub use runner::{
    run_a2q, run_fp32, run_mixq, run_quantized, run_random, CellResult, NodeArch, NodeExp,
};
pub use sweep::{gcn_bit_sweep, pareto_front, SweepPoint};
pub use table::{bits, frac, gbops, pct, Table};
pub use timing::{bench, format_ns, median_ns_per_iter, write_json, BenchRecord};

/// Parses `--runs N` and `--quick` style flags shared by all binaries.
pub struct Args {
    pub runs: Option<usize>,
    pub quick: bool,
}

impl Args {
    pub fn parse() -> Self {
        let argv: Vec<String> = std::env::args().collect();
        let mut runs = None;
        let mut quick = false;
        let mut i = 1;
        while i < argv.len() {
            match argv[i].as_str() {
                "--quick" => quick = true,
                "--runs" => {
                    i += 1;
                    runs = Some(
                        argv.get(i)
                            .and_then(|v| v.parse().ok())
                            .expect("--runs needs an integer"),
                    );
                }
                other => panic!("unknown argument {other} (supported: --quick, --runs N)"),
            }
            i += 1;
        }
        Self { runs, quick }
    }

    pub fn runs_or(&self, default: usize) -> usize {
        self.runs.unwrap_or(if self.quick { 2 } else { default })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn runs_or_prefers_explicit_then_quick_then_default() {
        let explicit = Args {
            runs: Some(7),
            quick: true,
        };
        assert_eq!(explicit.runs_or(5), 7, "--runs wins over --quick");
        let quick = Args {
            runs: None,
            quick: true,
        };
        assert_eq!(quick.runs_or(5), 2);
        let default = Args {
            runs: None,
            quick: false,
        };
        assert_eq!(default.runs_or(5), 5);
    }
}
