//! Figure 3: per-component bit-width histograms along the Pareto front of
//! the Figure 2 sweep — showing that the optimal assignments follow no
//! simple pattern.

use mixq_bench::{gcn_bit_sweep, pareto_front, Args, Table};
use mixq_core::gcn_schema;
use mixq_graph::cora_like;
use mixq_nn::NodeBundle;

fn main() {
    let args = Args::parse();
    let ds = cora_like(42);
    let bundle = NodeBundle::new(&ds);
    let samples = if args.quick { 24 } else { 120 };
    let runs = args.runs_or(2);
    let epochs = if args.quick { 50 } else { 100 };
    eprintln!("[fig3] sweeping {samples} combinations × {runs} runs ...");
    let points = gcn_bit_sweep(&ds, &bundle, &[2, 4, 8], samples, runs, epochs);
    let front = pareto_front(&points);
    println!(
        "\nPareto front ({} of {} candidates):",
        front.len(),
        points.len()
    );
    for &i in &front {
        println!(
            "  bits={:?} avg={:.2} acc={:.3}",
            points[i].bits, points[i].avg_bits, points[i].acc
        );
    }
    let schema = gcn_schema(2);
    let mut t = Table::new(
        "Figure 3 — bit-width histogram per component over the Pareto front",
        &["Component", "#2-bit", "#4-bit", "#8-bit"],
    );
    for (c, name) in schema.iter().enumerate() {
        let count = |b: u8| front.iter().filter(|&&i| points[i].bits[c] == b).count();
        t.row(&[
            name.clone(),
            format!("{}", count(2)),
            format!("{}", count(4)),
            format!("{}", count(8)),
        ]);
    }
    t.print();
}
