//! Table 1: space/time complexity of DQ, A²Q and MixQ — the analytic rows
//! plus *measured* parameter counts on a 3-layer GCN (the paper's footnote
//! compares exactly these).

use mixq_bench::Table;
use mixq_core::{A2qQuantizer, RelaxedGcnNet};
use mixq_graph::arxiv_like;
use mixq_nn::{GcnNet, NodeBundle, ParamSet};
use mixq_tensor::Rng;

fn main() {
    let ds = arxiv_like(42);
    let _bundle = NodeBundle::new(&ds);
    let dims = [ds.feat_dim(), 64, 64, ds.num_classes()];
    let mut rng = Rng::seed_from_u64(0);

    let mut ps = ParamSet::new();
    let _fp32 = GcnNet::new(&mut ps, &dims, 0.5, &mut rng);
    let fp32_params = ps.num_scalars();

    let mut ps_rel = ParamSet::new();
    let _relaxed = RelaxedGcnNet::new(&mut ps_rel, &dims, &[2, 4, 8], 0.5, &mut rng);
    let mixq_params = ps_rel.num_scalars();

    let a2q_extra = A2qQuantizer::extra_params_for(ds.num_nodes()) * 3; // per layer
    let dq_extra = 3; // one protection schedule per layer

    let mut t = Table::new(
        "Table 1 — complexity and measured parameter counts (3-layer GCN, arxiv-like)",
        &[
            "Method",
            "Space complexity",
            "Time complexity",
            "Learnable params",
        ],
    );
    t.row(&[
        "DQ".into(),
        "O(l + b·n·f·l)".into(),
        "O_FP32(f·l) + O_INT((n²f + nf²)l)".into(),
        format!("{}", fp32_params + dq_extra),
    ]);
    t.row(&[
        "A2Q".into(),
        "O(n·l + b̄·n·f·l)".into(),
        "O_FP32(n·f·l) + O_INT((n²f + nf²)l)".into(),
        format!("{}", fp32_params + a2q_extra),
    ]);
    t.row(&[
        "MixQ".into(),
        "O(l + b̄·n·f·l)".into(),
        "O_FP32(f·l) + O_INT((n²f + nf²)l)".into(),
        format!("{mixq_params}"),
    ]);
    t.print();
    println!(
        "FP32 3-layer GCN: {fp32_params} params; A2Q adds 2 FP32 quantization \
         parameters per node per layer ({} extra on n={}), while MixQ adds only \
         |B| α logits per component ({} extra total).",
        a2q_extra,
        ds.num_nodes(),
        mixq_params - fp32_params
    );
}
