//! Table 1: space/time complexity of DQ, A²Q and MixQ — the analytic rows
//! plus *measured* parameter counts on a 3-layer GCN (the paper's footnote
//! compares exactly these).

use mixq_bench::Table;
use mixq_core::{search_gcn_bits, A2qQuantizer, RelaxedGcnNet, SearchConfig};
use mixq_graph::{arxiv_like, cora_like};
use mixq_nn::{train_node, GcnNet, NodeBundle, ParamSet, TrainConfig};
use mixq_tensor::Rng;

fn main() {
    let ds = arxiv_like(42);
    let _bundle = NodeBundle::new(&ds);
    let dims = [ds.feat_dim(), 64, 64, ds.num_classes()];
    let mut rng = Rng::seed_from_u64(0);

    let mut ps = ParamSet::new();
    let _fp32 = GcnNet::new(&mut ps, &dims, 0.5, &mut rng);
    let fp32_params = ps.num_scalars();

    let mut ps_rel = ParamSet::new();
    let _relaxed = RelaxedGcnNet::new(&mut ps_rel, &dims, &[2, 4, 8], 0.5, &mut rng);
    let mixq_params = ps_rel.num_scalars();

    let a2q_extra = A2qQuantizer::extra_params_for(ds.num_nodes()) * 3; // per layer
    let dq_extra = 3; // one protection schedule per layer

    let mut t = Table::new(
        "Table 1 — complexity and measured parameter counts (3-layer GCN, arxiv-like)",
        &[
            "Method",
            "Space complexity",
            "Time complexity",
            "Learnable params",
        ],
    );
    t.row(&[
        "DQ".into(),
        "O(l + b·n·f·l)".into(),
        "O_FP32(f·l) + O_INT((n²f + nf²)l)".into(),
        format!("{}", fp32_params + dq_extra),
    ]);
    t.row(&[
        "A2Q".into(),
        "O(n·l + b̄·n·f·l)".into(),
        "O_FP32(n·f·l) + O_INT((n²f + nf²)l)".into(),
        format!("{}", fp32_params + a2q_extra),
    ]);
    t.row(&[
        "MixQ".into(),
        "O(l + b̄·n·f·l)".into(),
        "O_FP32(f·l) + O_INT((n²f + nf²)l)".into(),
        format!("{mixq_params}"),
    ]);
    t.print();
    println!(
        "FP32 3-layer GCN: {fp32_params} params; A2Q adds 2 FP32 quantization \
         parameters per node per layer ({} extra on n={}), while MixQ adds only \
         |B| α logits per component ({} extra total).",
        a2q_extra,
        ds.num_nodes(),
        mixq_params - fp32_params
    );

    // With telemetry enabled, run a miniature end-to-end pipeline (training
    // + bit-width search on the small synthetic Cora) so the emitted report
    // carries kernel, training and search metrics alongside the table.
    if mixq_telemetry::enabled() {
        let small = cora_like(7);
        let sbundle = NodeBundle::new(&small);
        let sdims = [small.feat_dim(), 16, small.num_classes()];
        let mut sps = ParamSet::new();
        let mut srng = Rng::seed_from_u64(7);
        let mut snet = GcnNet::new(&mut sps, &sdims, 0.5, &mut srng);
        let cfg = TrainConfig {
            epochs: 10,
            patience: 10,
            ..TrainConfig::default()
        };
        let rep = train_node(&mut snet, &mut sps, &small, &sbundle, &cfg);
        let scfg = SearchConfig {
            epochs: 8,
            warmup: 3,
            ..SearchConfig::default()
        };
        let assignment = search_gcn_bits(&small, &sbundle, &sdims, &[2, 4, 8], 0.5, &scfg);
        let health = if rep.diverged {
            format!(
                " [DIVERGED (recovered {} times)]",
                rep.recovered_divergences
            )
        } else {
            String::new()
        };
        println!(
            "telemetry pipeline: train test-acc {:.1}%{health}, searched avg bits {:.2}",
            rep.test_metric * 100.0,
            assignment.simple_avg()
        );
        match mixq_telemetry::write_report("table1") {
            Ok(p) => println!("telemetry report written to {}", p.display()),
            Err(e) => eprintln!("telemetry report failed: {e}"),
        }
    }
}
