//! Figure 8: BitOPs vs measured inference time of one quantized message-
//! passing layer (integer SpMM via Theorem 1 at INT8/INT16/INT32, plus the
//! FP32 kernel), across graphs of different sizes.
//!
//! The paper times three hardware platforms; this substrate has one CPU and
//! no sub-word SIMD packing, so per-op time is width-independent and the
//! correlation is driven by operation count — analogous to the weakest
//! (AMD, r = 0.59) platform in the paper.

use std::time::Instant;

use mixq_bench::Table;
use mixq_core::{quantize_csr_symmetric, quantized_spmm, QmpParams};
use mixq_graph::{arxiv_like, citeseer_like, cora_like, products_like, pubmed_like, reddit_like};
use mixq_nn::pearson;
use mixq_sparse::gcn_normalize;
use mixq_tensor::Rng;

fn main() {
    let feat = 64usize;
    let mut t = Table::new(
        "Figure 8 — BitOPs vs inference time, one message-passing layer",
        &["Dataset", "Precision", "GBitOPs", "Time (ms)"],
    );
    let mut xs = Vec::new();
    let mut ys = Vec::new();
    for (name, ds) in [
        ("cora", cora_like(1)),
        ("citeseer", citeseer_like(1)),
        ("pubmed", pubmed_like(1)),
        ("arxiv", arxiv_like(1)),
        ("reddit", reddit_like(1)),
        ("products", products_like(1)),
    ] {
        let adj = gcn_normalize(&ds.adj);
        let n = ds.num_nodes();
        let nnz = adj.nnz() as f64;
        let mut rng = Rng::seed_from_u64(7);
        let reps = (200_000_000.0 / (nnz * feat as f64)).clamp(1.0, 50.0) as usize;

        for bits in [8u8, 16, 32] {
            let (qa, sa) = quantize_csr_symmetric(&adj, bits.min(16));
            let (qmin, qmax) = mixq_tensor::QuantParams::int_range(bits.min(16));
            let qx: Vec<i32> = (0..n * feat)
                .map(|_| qmin + rng.gen_range((qmax - qmin) as usize) as i32)
                .collect();
            let p = QmpParams::per_tensor(n, feat, sa, 0, 0.01, 3, 0.02, 0, qmin, qmax);
            let t0 = Instant::now();
            for _ in 0..reps {
                let out = quantized_spmm(&qa, &qx, feat, &p);
                std::hint::black_box(&out);
            }
            let ms = t0.elapsed().as_secs_f64() * 1e3 / reps as f64;
            let gbitops = 2.0 * nnz * feat as f64 * bits as f64 / 1e9;
            t.row(&[
                name.into(),
                format!("INT{bits}"),
                format!("{gbitops:.3}"),
                format!("{ms:.2}"),
            ]);
            xs.push(gbitops);
            ys.push(ms);
        }
        // FP32 kernel.
        let x: Vec<f32> = (0..n * feat).map(|_| rng.normal()).collect();
        let t0 = Instant::now();
        for _ in 0..reps {
            let out = adj.spmm(&x, feat);
            std::hint::black_box(&out);
        }
        let ms = t0.elapsed().as_secs_f64() * 1e3 / reps as f64;
        let gbitops = 2.0 * nnz * feat as f64 * 32.0 / 1e9;
        t.row(&[
            name.into(),
            "FP32".into(),
            format!("{gbitops:.3}"),
            format!("{ms:.2}"),
        ]);
        xs.push(gbitops);
        ys.push(ms);
    }
    t.print();
    println!(
        "Pearson correlation (BitOPs vs time): {:.2}",
        pearson(&xs, &ys)
    );
    println!("(paper: AMD 0.59, Apple M1 0.95, Intel 0.70)");

    if mixq_telemetry::enabled() {
        match mixq_telemetry::write_report("fig8") {
            Ok(p) => println!("telemetry report written to {}", p.display()),
            Err(e) => eprintln!("telemetry report failed: {e}"),
        }
    }
}
