//! Table 2: dataset characteristics of the (synthetic) evaluation suite.

use mixq_bench::Table;
use mixq_graph::*;

fn main() {
    let mut t = Table::new(
        "Table 2 — dataset characteristics (seeded synthetic mirrors; see DESIGN.md)",
        &["Dataset", "|G|", "avg |V|", "avg |E|", "|X|", "|Y|"],
    );
    let node = |name: &str, ds: &NodeDataset| {
        vec![
            name.to_string(),
            "1".into(),
            format!("{}", ds.num_nodes()),
            format!("{}", ds.num_edges()),
            format!("{}", ds.feat_dim()),
            format!("{}", ds.num_classes()),
        ]
    };
    for (n, ds) in [
        ("citeseer-like", citeseer_like(1)),
        ("cora-like", cora_like(1)),
        ("pubmed-like", pubmed_like(1)),
        ("arxiv-like", arxiv_like(1)),
        ("igb-like", igb_like(1)),
        ("ogb-proteins-like", proteins_ogb_like(1)),
        ("products-like", products_like(1)),
        ("reddit-like", reddit_like(1)),
    ] {
        t.row(&node(n, &ds));
    }
    let graph = |ds: &GraphDataset| {
        vec![
            ds.name.clone(),
            format!("{}", ds.len()),
            format!("{:.1}", ds.avg_nodes()),
            format!("{:.1}", ds.avg_edges()),
            format!("{}", ds.feat_dim()),
            format!("{}", ds.num_classes),
        ]
    };
    t.row(&graph(&csl_dataset(1, 15, 20)));
    t.row(&graph(&imdb_b_like(1, 300)));
    t.row(&graph(&proteins_like(1, 300)));
    t.row(&graph(&dd_like(1, 150)));
    t.row(&graph(&reddit_b_like(1, 200)));
    t.row(&graph(&reddit_m_like(1, 250)));
    t.print();
}
