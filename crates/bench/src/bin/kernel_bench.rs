//! Kernel benchmark trajectory: dense tiled-vs-naive GEMM, nnz-balanced
//! vs row-chunked SpMM on a hub-heavy power-law graph, and the i32
//! fast-path integer SpMM — written as machine-readable JSON so speedups
//! can be tracked across commits (`BENCH_kernels.json` at the repo root).
//!
//! Modes:
//!
//! * default — full measurement run; prints a table and writes
//!   `BENCH_kernels.json` into the current directory.
//! * `--smoke` — seconds-long CI drill: asserts tiled/naive bit-identity
//!   on awkward shapes, exercises both `spmm_int` accumulator paths and a
//!   3-epoch training loop (so the buffer pool sees steady state), then
//!   writes a telemetry report (`kernel_bench.json`) for `telemetry_check`
//!   to assert `qcsr.spmm.i32_path > 0` and `pool.hit_bytes > 0`.

use std::path::Path;

use mixq_bench::{bench, BenchRecord};
use mixq_graph::cora_like;
use mixq_nn::{train_node, GcnNet, NodeBundle, ParamSet, TrainConfig};
use mixq_parallel::{nnz_balanced_bounds, set_num_threads};
use mixq_sparse::{spmm_int, CsrMatrix, QuantCsr};
use mixq_tensor::{Matrix, Rng};

/// Builds a hub-heavy "power-law" CSR: the first `hubs` rows carry
/// `hub_nnz` entries each, every other row carries `tail_nnz`. Fronting
/// the hubs makes equal-*row* chunking maximally unbalanced (one chunk
/// owns almost all the work), which is exactly the shape the nnz-balanced
/// partitioner exists for. Column indices are strictly increasing by
/// construction (stride layout), satisfying the CSR invariants.
fn powerlaw_csr(n: usize, hubs: usize, hub_nnz: usize, tail_nnz: usize, seed: u64) -> CsrMatrix {
    assert!(hub_nnz <= n && tail_nnz <= n && hubs <= n);
    let mut rng = Rng::seed_from_u64(seed);
    let mut row_ptr = Vec::with_capacity(n + 1);
    let mut col_idx = Vec::new();
    let mut values = Vec::new();
    row_ptr.push(0);
    for r in 0..n {
        let nnz = if r < hubs { hub_nnz } else { tail_nnz };
        let stride = n / nnz;
        let offset = r % stride.max(1);
        for j in 0..nnz {
            col_idx.push(j * stride + offset);
            values.push(rng.normal() * 0.1);
        }
        row_ptr.push(col_idx.len());
    }
    CsrMatrix::from_parts(n, n, row_ptr, col_idx, values)
}

/// Quantized clone of `a` with values clipped to `±max_abs` integers.
fn quantize(a: &CsrMatrix, max_abs: i32, bits: u8) -> QuantCsr {
    QuantCsr::from_csr(a, bits, |_, _, v| {
        ((v * 10.0 * max_abs as f32).round() as i32).clamp(-max_abs, max_abs)
    })
}

fn dense_features(rows: usize, cols: usize, seed: u64) -> Vec<f32> {
    let mut rng = Rng::seed_from_u64(seed);
    (0..rows * cols).map(|_| rng.normal()).collect()
}

fn int_features(rows: usize, cols: usize, max_abs: i32, seed: u64) -> Vec<i32> {
    let mut rng = Rng::seed_from_u64(seed);
    (0..rows * cols)
        .map(|_| rng.gen_range(2 * max_abs as usize + 1) as i32 - max_abs)
        .collect()
}

/// Full measurement run: the headline numbers are the single-thread tiled
/// GEMM speedup (acceptance bar: ≥ 1.5× on 512³) and the balanced-vs-row
/// chunked SpMM ratio at 4 threads on the hub-heavy graph.
fn full_run() {
    let mut records: Vec<BenchRecord> = Vec::new();

    // ---- dense GEMM, single thread (isolates the micro-kernel) ----------
    set_num_threads(1);
    let d = 512usize;
    let macs = (d * d * d) as u64;
    let mut rng = Rng::seed_from_u64(7);
    let a = Matrix::from_fn(d, d, |_, _| rng.normal());
    let b = Matrix::from_fn(d, d, |_, _| rng.normal());

    type GemmFn = fn(&Matrix, &Matrix) -> Matrix;
    let gemms: [(&str, GemmFn, GemmFn); 3] = [
        ("matmul_512", Matrix::matmul_unblocked, Matrix::matmul),
        (
            "matmul_at_b_512",
            Matrix::matmul_at_b_unblocked,
            Matrix::matmul_at_b,
        ),
        (
            "matmul_a_bt_512",
            Matrix::matmul_a_bt_unblocked,
            Matrix::matmul_a_bt,
        ),
    ];
    let mut matmul_speedup = 0.0;
    for (name, naive, tiled) in gemms {
        let ns_naive = bench(&format!("{name}_naive_t1"), || {
            std::hint::black_box(naive(&a, &b));
        });
        let ns_tiled = bench(&format!("{name}_tiled_t1"), || {
            std::hint::black_box(tiled(&a, &b));
        });
        let base = BenchRecord::new(&format!("{name}_naive"), 1, ns_naive, macs);
        let fast = BenchRecord::new(&format!("{name}_tiled"), 1, ns_tiled, macs).vs(&base);
        if name == "matmul_512" {
            matmul_speedup = fast.speedup.unwrap();
        }
        records.push(base);
        records.push(fast);
    }

    // ---- f32 SpMM on a hub-heavy power-law graph -------------------------
    let n = 20_000usize;
    let f = 64usize;
    let adj = powerlaw_csr(n, 32, 2000, 8, 11);
    let x = dense_features(n, f, 13);
    let mut y = vec![0.0f32; n * f];
    let spmm_macs = (adj.nnz() * f) as u64;

    set_num_threads(1);
    let ns_serial = bench("spmm_f32_powerlaw_t1", || {
        adj.spmm_into(&x, f, &mut y);
        std::hint::black_box(&y);
    });
    let serial = BenchRecord::new("spmm_f32_powerlaw_serial", 1, ns_serial, spmm_macs);

    set_num_threads(4);
    let ns_rows = bench("spmm_f32_powerlaw_row_chunked_t4", || {
        adj.spmm_into_row_chunked(&x, f, &mut y);
        std::hint::black_box(&y);
    });
    let ns_bal = bench("spmm_f32_powerlaw_balanced_t4", || {
        adj.spmm_into(&x, f, &mut y);
        std::hint::black_box(&y);
    });
    let row_chunked =
        BenchRecord::new("spmm_f32_powerlaw_row_chunked", 4, ns_rows, spmm_macs).vs(&serial);
    let balanced = BenchRecord::new("spmm_f32_powerlaw_balanced", 4, ns_bal, spmm_macs).vs(&serial);
    let balanced_vs_rows = ns_rows / ns_bal;

    // ---- integer SpMM: i32 fast path vs forced i64 -----------------------
    // Small magnitudes keep max_row_nnz · max|a| · max|x| within i32 (the
    // narrow accumulator path); large ones overflow the bound and take the
    // i64 path. Same structure, so the ratio isolates the accumulator.
    let qa_small = quantize(&adj, 7, 4);
    let xi_small = int_features(n, f, 7, 17);
    let qa_big = quantize(&adj, 60_000, 16);
    let xi_big = int_features(n, f, 60_000, 19);
    let ns_i32 = bench("spmm_int_powerlaw_i32_t4", || {
        std::hint::black_box(spmm_int(&qa_small, &xi_small, f));
    });
    let ns_i64 = bench("spmm_int_powerlaw_i64_t4", || {
        std::hint::black_box(spmm_int(&qa_big, &xi_big, f));
    });
    let wide = BenchRecord::new("spmm_int_powerlaw_i64", 4, ns_i64, spmm_macs);
    let narrow = BenchRecord::new("spmm_int_powerlaw_i32", 4, ns_i32, spmm_macs).vs(&wide);

    records.push(serial);
    records.push(row_chunked);
    records.push(balanced);
    records.push(wide);
    records.push(narrow);

    // Thread-count records only mean what they say relative to the host:
    // on a single-CPU box the 4-thread schedules time-slice one core, so
    // the balanced-vs-row-chunked wall-clock gap collapses to scheduling
    // noise there. The *imbalance factor* (heaviest chunk nnz ÷ ideal
    // nnz/chunk) is the host-independent quality metric: with enough cores
    // a schedule's parallel runtime is proportional to its heaviest chunk,
    // so row-chunked forfeits roughly `imbalance_row_chunked /
    // imbalance_balanced` of the potential speedup on this graph.
    let host_cpus = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let imbalance = |bounds: &[usize]| -> f64 {
        let rp = adj.row_ptr();
        let max_chunk = bounds
            .windows(2)
            .map(|w| rp[w[1]] - rp[w[0]])
            .max()
            .unwrap_or(0);
        max_chunk as f64 / (adj.nnz() as f64 / (bounds.len() - 1) as f64)
    };
    let row_bounds: Vec<usize> = (0..=4).map(|i| i * n / 4).collect();
    let imbalance_rows = imbalance(&row_bounds);
    let imbalance_bal = imbalance(&nnz_balanced_bounds(adj.row_ptr(), 4));
    let summary = [
        ("host_cpus", host_cpus as f64),
        ("matmul_512_tiled_speedup_t1", matmul_speedup),
        ("spmm_balanced_vs_row_chunked_t4", balanced_vs_rows),
        ("spmm_balanced_t4_vs_serial", ns_serial / ns_bal),
        ("spmm_imbalance_row_chunked_t4", imbalance_rows),
        ("spmm_imbalance_balanced_t4", imbalance_bal),
    ];
    let path = Path::new("BENCH_kernels.json");
    match mixq_bench::write_json(path, &records, &summary) {
        Ok(()) => println!("\nwrote {}", path.display()),
        Err(e) => eprintln!("failed to write {}: {e}", path.display()),
    }
    println!(
        "matmul 512^3 tiled speedup (1 thread): {matmul_speedup:.2}x; \
         balanced vs row-chunked SpMM (4 threads, {host_cpus} cpu(s)): {balanced_vs_rows:.2}x; \
         nnz imbalance row-chunked {imbalance_rows:.2} vs balanced {imbalance_bal:.2}"
    );
}

/// CI smoke drill: cheap correctness + telemetry-counter coverage, no
/// `BENCH_kernels.json` (measurements under CI load are noise).
fn smoke_run() {
    // Tiled kernels must be bit-identical to the naive ones on shapes that
    // exercise every remainder path (non-multiples of the 4×8 tile).
    let mut rng = Rng::seed_from_u64(23);
    let a = Matrix::from_fn(
        41,
        33,
        |r, c| {
            if (r + c) % 5 == 0 {
                0.0
            } else {
                rng.normal()
            }
        },
    );
    let b = Matrix::from_fn(33, 21, |_, _| rng.normal());
    assert_eq!(a.matmul(&b).data(), a.matmul_unblocked(&b).data());
    let at = Matrix::from_fn(33, 41, |_, _| rng.normal());
    assert_eq!(
        at.matmul_at_b(&b).data(),
        at.matmul_at_b_unblocked(&b).data()
    );
    let bt = Matrix::from_fn(21, 33, |_, _| rng.normal());
    assert_eq!(
        a.matmul_a_bt(&bt).data(),
        a.matmul_a_bt_unblocked(&bt).data()
    );

    // Both integer-SpMM accumulator paths, checked against each other via
    // the magnitude dispatch: small values take i32, large take i64. Two
    // threads (regardless of host cores — this is a code-path drill, not a
    // measurement) so the nnz-balanced scheduler actually engages.
    set_num_threads(2);
    let adj = powerlaw_csr(400, 4, 64, 4, 29);
    let f = 8usize;
    let qa_small = quantize(&adj, 7, 4);
    let xi_small = int_features(400, f, 7, 31);
    let y_narrow = spmm_int(&qa_small, &xi_small, f);
    let qa_big = quantize(&adj, 60_000, 16);
    let xi_big = int_features(400, f, 60_000, 37);
    let y_wide = spmm_int(&qa_big, &xi_big, f);
    assert_eq!(y_narrow.len(), 400 * f);
    assert_eq!(y_wide.len(), 400 * f);

    // Balanced and row-chunked f32 schedules agree bit-for-bit.
    let x = dense_features(400, f, 41);
    let mut y_bal = vec![0.0f32; 400 * f];
    let mut y_rows = vec![0.0f32; 400 * f];
    adj.spmm_into(&x, f, &mut y_bal);
    adj.spmm_into_row_chunked(&x, f, &mut y_rows);
    assert_eq!(
        y_bal.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
        y_rows.iter().map(|v| v.to_bits()).collect::<Vec<_>>()
    );

    // Three training epochs: epoch 1 fills the buffer pool, epochs 2-3 run
    // on recycled buffers — `pool.hit_bytes` must be nonzero afterwards.
    let ds = cora_like(5);
    let bundle = NodeBundle::new(&ds);
    let mut ps = ParamSet::new();
    let dims = [ds.feat_dim(), 16, ds.num_classes()];
    let mut net = GcnNet::new(&mut ps, &dims, 0.5, &mut Rng::seed_from_u64(43));
    let cfg = TrainConfig {
        epochs: 3,
        patience: 0,
        ..TrainConfig::default()
    };
    let rep = train_node(&mut net, &mut ps, &ds, &bundle, &cfg);
    assert!(rep.final_train_loss.is_finite(), "smoke training diverged");
    let stats = mixq_tensor::pool::thread_stats();
    assert!(
        stats.hit_bytes > 0,
        "buffer pool saw no reuse across epochs (hits={}, misses={})",
        stats.hits,
        stats.misses
    );

    if mixq_telemetry::enabled() {
        match mixq_telemetry::write_report("kernel_bench") {
            Ok(p) => println!("telemetry report written to {}", p.display()),
            Err(e) => eprintln!("telemetry report failed: {e}"),
        }
    }
    println!("kernel_bench --smoke: OK");
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    if smoke {
        smoke_run();
    } else {
        full_run();
    }
}
