//! Figure 1: accuracy vs number of scalar operations for eight GNN layer
//! types at depths 1–5 on the Cora-like dataset, plus the Spearman rank
//! correlation between OPs and accuracy.

use mixq_bench::{Args, Table};
use mixq_graph::cora_like;
use mixq_nn::{
    spearman, train_node, AppnpNet, GatNet, GcnNet, GinNet, NodeBundle, ParamSet, SageNet, SgcNet,
    TagNet, TrainConfig, UniMpNet,
};
use mixq_tensor::Rng;

fn main() {
    let args = Args::parse();
    let runs = args.runs_or(5);
    let ds = cora_like(42);
    let bundle = NodeBundle::new(&ds);
    let n = ds.num_nodes() as u64;
    let nnz = (ds.num_edges() + ds.num_nodes()) as u64;
    let hidden = 32;

    let mut t = Table::new(
        "Figure 1 — accuracy vs operations, eight GNN types × depth 1–5",
        &["Layer type", "Depth", "OPs (M)", "Accuracy"],
    );
    let mut xs = Vec::new();
    let mut ys = Vec::new();
    for depth in 1..=5usize {
        let mut dims = vec![ds.feat_dim()];
        dims.extend(std::iter::repeat_n(hidden, depth - 1));
        dims.push(ds.num_classes());
        for arch in ["GCN", "GIN", "GAT", "UniMP", "SAGE", "TAG", "SGC", "APPNP"] {
            let mut accs = Vec::new();
            let mut macs = 0u64;
            for run in 0..runs {
                let seed = run as u64;
                let cfg = TrainConfig {
                    epochs: if args.quick { 50 } else { 120 },
                    lr: 0.01,
                    weight_decay: 5e-4,
                    seed,
                    patience: 30,
                    ..TrainConfig::default()
                };
                let mut rng = Rng::seed_from_u64(seed ^ 0xF16);
                let mut ps = ParamSet::new();
                let acc = match arch {
                    "GCN" => {
                        let mut m = GcnNet::new(&mut ps, &dims, 0.5, &mut rng);
                        macs = m.macs(n, nnz);
                        train_node(&mut m, &mut ps, &ds, &bundle, &cfg).test_metric
                    }
                    "GIN" => {
                        let mut m = GinNet::new(&mut ps, &dims, 0.5, &mut rng);
                        macs = m.macs(n, nnz);
                        train_node(&mut m, &mut ps, &ds, &bundle, &cfg).test_metric
                    }
                    "GAT" => {
                        let mut m = GatNet::new(&mut ps, &dims, 0.5, &mut rng);
                        macs = m.macs(n, nnz);
                        train_node(&mut m, &mut ps, &ds, &bundle, &cfg).test_metric
                    }
                    "UniMP" => {
                        let mut m = UniMpNet::new(&mut ps, &dims, 0.5, &mut rng);
                        macs = m.macs(n, nnz);
                        train_node(&mut m, &mut ps, &ds, &bundle, &cfg).test_metric
                    }
                    "SAGE" => {
                        let mut m = SageNet::new(&mut ps, &dims, 0.5, &mut rng);
                        macs = m.macs(n, nnz);
                        train_node(&mut m, &mut ps, &ds, &bundle, &cfg).test_metric
                    }
                    "TAG" => {
                        let mut m = TagNet::new(&mut ps, &dims, 0.5, &mut rng);
                        macs = m.macs(n, nnz);
                        train_node(&mut m, &mut ps, &ds, &bundle, &cfg).test_metric
                    }
                    "SGC" => {
                        let mut m =
                            SgcNet::new(&mut ps, ds.feat_dim(), ds.num_classes(), depth, &mut rng);
                        macs = m.macs(n, nnz);
                        train_node(&mut m, &mut ps, &ds, &bundle, &cfg).test_metric
                    }
                    "APPNP" => {
                        let mut m = AppnpNet::new(&mut ps, &dims, depth, 0.2, 0.5, &mut rng);
                        macs = m.macs(n, nnz);
                        train_node(&mut m, &mut ps, &ds, &bundle, &cfg).test_metric
                    }
                    _ => unreachable!(),
                };
                accs.push(acc);
            }
            let (mean, _) = mixq_nn::mean_std(&accs);
            let ops = 2.0 * macs as f64;
            xs.push(ops);
            ys.push(mean);
            t.row(&[
                arch.into(),
                format!("{depth}"),
                format!("{:.2}", ops / 1e6),
                format!("{:.3}", mean),
            ]);
        }
    }
    t.print();
    println!(
        "Spearman rank correlation (OPs vs accuracy): {:.2}",
        spearman(&xs, &ys)
    );
    println!("(paper reports 0.64 on real Cora)");
}
