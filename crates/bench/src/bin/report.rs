//! Stitches the experiment outputs in `results/*.txt` into EXPERIMENTS.md:
//! each `<!-- NAME -->` placeholder is replaced by a fenced code block with
//! the corresponding `results/name.txt` (progress lines stripped).
//! Re-runnable: regenerated blocks are re-replaced in place.

use std::fs;

fn block_for(name: &str) -> Option<String> {
    let path = format!("results/{}.txt", name.to_lowercase());
    let raw = fs::read_to_string(&path).ok()?;
    let body: String = raw
        .lines()
        .filter(|l| {
            !l.starts_with('[')
                && !l.contains("Compiling")
                && !l.contains("Finished")
                && !l.contains("Running `")
        })
        .collect::<Vec<_>>()
        .join("\n");
    let trimmed = body.trim();
    if trimmed.is_empty() {
        return None;
    }
    Some(format!("```text\n{trimmed}\n```"))
}

fn main() {
    let md = fs::read_to_string("EXPERIMENTS.md").expect("run from the repository root");
    let mut out = String::with_capacity(md.len());
    let mut replaced = 0;
    let mut missing = Vec::new();
    let mut in_generated = false;
    for line in md.lines() {
        // Drop previously generated blocks (between begin/end markers).
        if line.starts_with("<!-- generated:") {
            in_generated = true;
            continue;
        }
        if in_generated {
            if line == "<!-- end generated -->" {
                in_generated = false;
            }
            continue;
        }
        out.push_str(line);
        out.push('\n');
        if let Some(name) = line
            .strip_prefix("<!-- ")
            .and_then(|l| l.strip_suffix(" -->"))
        {
            if name == "HEADLINE" {
                continue; // written by hand in EXPERIMENTS.md
            }
            match block_for(name) {
                Some(block) => {
                    out.push_str(&format!("<!-- generated: {name} -->\n"));
                    out.push_str(&block);
                    out.push_str("\n<!-- end generated -->\n");
                    replaced += 1;
                }
                None => missing.push(name.to_string()),
            }
        }
    }
    fs::write("EXPERIMENTS.md", out).expect("write EXPERIMENTS.md");
    println!("filled {replaced} sections; missing results for: {missing:?}");
}
