//! Table 5: A²Q vs MixQ+DQ — both leverage graph structure for quantizing
//! aggregated values.

use mixq_bench::{gbops, pct, run_a2q, run_mixq, Args, NodeExp, Table};
use mixq_core::QuantKind;
use mixq_graph::{citeseer_like, cora_like, pubmed_like};
use mixq_nn::NodeBundle;

fn main() {
    let args = Args::parse();
    let dq = QuantKind::Dq {
        p_min: 0.0,
        p_max: 0.2,
    };
    let mut t = Table::new(
        "Table 5 — A²Q vs MixQ+DQ (2-layer GCN)",
        &["Dataset", "Method", "Accuracy", "GBitOPs"],
    );
    for (name, ds) in [
        ("Cora", cora_like(42)),
        ("CiteSeer", citeseer_like(42)),
        ("PubMed", pubmed_like(42)),
    ] {
        eprintln!("[table5] {name} ...");
        let bundle = NodeBundle::new(&ds);
        let mut exp = NodeExp::gcn(64, args.runs_or(5));
        if args.quick {
            exp.train.epochs = 60;
            exp.search.epochs = 30;
            exp.search.warmup = 15;
        }
        let a2q = run_a2q(&ds, &bundle, &exp, (2, 4, 8));
        t.row(&[
            name.into(),
            "A2Q".into(),
            pct(a2q.mean, a2q.std),
            gbops(a2q.gbitops),
        ]);
        let mq = run_mixq(&ds, &bundle, &exp, &[2, 4, 8], 0.1, dq);
        t.row(&[
            name.into(),
            "MixQ + DQ".into(),
            pct(mq.mean, mq.std),
            gbops(mq.gbitops),
        ]);
    }
    t.print();
}
