//! Property-fuzz conformance drill: one representative generated-case suite
//! per differential-testing family, run as a standalone binary so CI can pin
//! the executed case counts through telemetry.
//!
//! Families drilled (each a `mixq-proptest` suite with shrinking and
//! `MIXQ_PT_SEED` replay, case budgets overridable via `MIXQ_PT_CASES`):
//!
//! * `drill.theorem1` — integer sparse aggregation vs the dense general form
//!   vs an f64 dequantize-multiply-requantize reference (Theorem 1).
//! * `drill.quant_edges` — `QuantParams::from_min_max` over NaN/±inf/
//!   subnormal/extreme endpoints stays well-formed.
//! * `drill.autograd` — finite-difference gradcheck of a small tape program
//!   (matmul → relu → spmm → square → sum).
//! * `drill.parallel` — threaded kernels bit-identical to the serial path.
//! * `drill.qcsr` — `QuantCsr` integer SpMM vs a dense i64 contraction on
//!   isolation-heavy degree-skewed graphs.
//!
//! The runner bumps `proptest.cases` / `proptest.<suite>.cases` per executed
//! case; `ci.sh` runs this with `MIXQ_TELEMETRY=1 MIXQ_PT_CASES=32` and
//! asserts the exact totals with `telemetry_check`, so a suite that silently
//! stops generating fails the build.

use std::sync::Arc;

use mixq_core::{quantized_matmul_dense, quantized_spmm, QmpParams};
use mixq_proptest::{f32_with_specials, graph, usize_in, Config, Gen, GraphConfig, RandomGraph};
use mixq_sparse::{spmm_int, QuantCsr};
use mixq_tensor::{assert_close_tol, numeric_grad, Matrix, QuantParams, Rng, SpPair, Tape};

/// f64 reference for Theorem 1: dequantize the codes, multiply, requantize.
fn reference(qa: &[i32], n: usize, m: usize, qx: &[i32], f: usize, p: &QmpParams) -> Vec<i32> {
    let mut out = vec![0i32; n * f];
    for i in 0..n {
        for j in 0..f {
            let mut acc = 0f64;
            for k in 0..m {
                let a = (qa[i * m + k] - p.za[i]) as f64 * p.sa[i] as f64;
                let x = (qx[k * f + j] - p.zx[j]) as f64 * p.sx[j] as f64;
                acc += a * x;
            }
            let q = (acc / p.sy[j] as f64).round_ties_even() as i64 + p.zy[j] as i64;
            out[i * f + j] = q.clamp(p.y_qmin as i64, p.y_qmax as i64) as i32;
        }
    }
    out
}

/// Shrinkable structure (graph, feature width) from the generators; the
/// per-case codes and quantization vectors derive from a generated seed so
/// the structure shrinks while the data stays deterministic.
fn graph_case(max_nodes: usize) -> Gen<(RandomGraph, usize, u64)> {
    let cfg = GraphConfig {
        min_nodes: 1,
        max_nodes,
        max_degree: 6,
        degree_alpha: 2.5,
        isolated_frac: 0.25,
        self_loops: true,
        val_lo: -7.0,
        val_hi: 7.0,
    };
    graph(cfg)
        .zip(&usize_in(1, 4))
        .zip(&usize_in(0, 1 << 20))
        .map(|&((ref g, f), seed)| (g.clone(), f, seed as u64))
}

/// Sparse Theorem-1 conformance: the sparse fast path, the dense general
/// form, and the f64 reference must agree bit-exactly on generated graphs.
fn drill_theorem1() {
    Config::new("drill.theorem1")
        .cases(96)
        .run(&graph_case(16), |&(ref g, f, seed)| {
            let n = g.nodes;
            let mut rng = Rng::seed_from_u64(seed);
            let qx: Vec<i32> = (0..n * f)
                .map(|_| rng.gen_range(256) as i32 - 128)
                .collect();
            let sa: Vec<f32> = (0..n).map(|_| rng.uniform_in(0.01, 0.5)).collect();
            let sx: Vec<f32> = (0..f).map(|_| rng.uniform_in(0.01, 0.5)).collect();
            let zx: Vec<i32> = (0..f).map(|_| rng.gen_range(21) as i32 - 10).collect();
            let sy: Vec<f32> = (0..f).map(|_| rng.uniform_in(0.05, 1.0)).collect();
            let zy: Vec<i32> = (0..f).map(|_| rng.gen_range(11) as i32 - 5).collect();
            let p = QmpParams {
                sa,
                za: vec![0; n], // the sparse fast path requires Z_a = 0
                sx,
                zx,
                sy,
                zy,
                y_qmin: -128,
                y_qmax: 127,
            };

            let qcsr = QuantCsr::from_csr(&g.to_csr(), 4, |_, _, v| v.round_ties_even() as i32);
            let mut qa = vec![0i32; n * n];
            for &(s, d, v) in &g.edges {
                qa[s * n + d] = v.round_ties_even() as i32;
            }

            let sparse = quantized_spmm(&qcsr, &qx, f, &p);
            let dense = quantized_matmul_dense(&qa, n, n, &qx, f, &p);
            assert_eq!(
                sparse,
                dense,
                "sparse fast path diverged from dense form (nodes={n}, nnz={})",
                g.nnz()
            );
            assert_eq!(
                dense,
                reference(&qa, n, n, &qx, f, &p),
                "dense form diverged from f64 reference (nodes={n}, f={f})"
            );
        });
}

/// Quantizer construction over special endpoints: every combination must
/// yield a finite positive scale, an in-range zero point, exact zero
/// round-trip, and finite dequantization of both extreme codes.
fn drill_quant_edges() {
    let endpoint = f32_with_specials(-1e30, 1e30, 0.4);
    let gen = endpoint.zip(&endpoint).zip(&mixq_proptest::bits());
    Config::new("drill.quant_edges")
        .cases(128)
        .run(&gen, |&((lo, hi), bits)| {
            let qp = QuantParams::from_min_max(lo, hi, bits);
            let ctx = format!("from_min_max({lo}, {hi}, {bits})");
            assert!(
                qp.scale.is_finite() && qp.scale > 0.0,
                "{ctx}: scale {} must be positive finite",
                qp.scale
            );
            assert!(
                qp.qmin <= qp.zero_point && qp.zero_point <= qp.qmax,
                "{ctx}: zero point {} escaped [{}, {}]",
                qp.zero_point,
                qp.qmin,
                qp.qmax
            );
            assert_eq!(qp.fake(0.0), 0.0, "{ctx}: zero must round-trip exactly");
            assert!(qp.dequantize(qp.qmin).is_finite(), "{ctx}");
            assert!(qp.dequantize(qp.qmax).is_finite(), "{ctx}");
        });
}

/// Forward+backward tape program used by the autograd and parallel drills.
fn run_program(pair: &Arc<SpPair>, x: &Matrix, w: &Matrix) -> (f32, Matrix, Matrix) {
    let mut t = Tape::new();
    let xv = t.leaf(x.clone());
    let wv = t.leaf(w.clone());
    let xw = t.matmul(xv, wv);
    let h = t.relu(xw);
    let y = t.spmm(pair, h);
    let y2 = t.mul(y, y);
    let loss = t.sum_all(y2);
    t.backward(loss);
    (
        t.value(loss).item(),
        t.grad(xv).unwrap().clone(),
        t.grad(wv).unwrap().clone(),
    )
}

/// Finite-difference gradcheck of the tape program on generated graphs and
/// shapes; inputs are kept away from the ReLU kink so central differences
/// are valid.
fn drill_autograd() {
    Config::new("drill.autograd")
        .cases(24)
        .run(&graph_case(10), |&(ref g, hidden, seed)| {
            let n = g.nodes;
            let pair = Arc::new(SpPair::new(g.to_csr()));
            let mut rng = Rng::seed_from_u64(seed);
            let feats = 1 + (seed as usize % 3);
            let off = |v: f32| v + 0.05f32.copysign(v);
            let x = Matrix::from_fn(n, feats, |_, _| off(rng.uniform_in(-1.0, 1.0)));
            let w = Matrix::from_fn(feats, hidden, |_, _| off(rng.uniform_in(-1.0, 1.0)));

            let (_, dx, dw) = run_program(&pair, &x, &w);
            let num_dx = numeric_grad(|xp| run_program(&pair, xp, &w).0, &x, 1e-3);
            let num_dw = numeric_grad(|wp| run_program(&pair, &x, wp).0, &w, 1e-3);
            assert_close_tol(&dx, &num_dx, 2e-2, 2e-2, "drill dX");
            assert_close_tol(&dw, &num_dw, 2e-2, 2e-2, "drill dW");
        });
}

/// Threaded kernels and gradients bit-identical to the serial path across
/// generated shapes, graphs and thread counts.
fn drill_parallel() {
    mixq_parallel::set_parallel_row_threshold(0); // thread even tiny shapes

    let gen = graph_case(20).zip(&usize_in(2, 6));
    Config::new("drill.parallel")
        .cases(48)
        .run(&gen, |&((ref g, hidden, seed), threads)| {
            let n = g.nodes;
            let pair = Arc::new(SpPair::new(g.to_csr()));
            let mut rng = Rng::seed_from_u64(seed);
            let feats = 1 + (seed as usize % 4);
            let x = Matrix::from_fn(n, feats, |_, _| rng.uniform_in(-2.0, 2.0));
            let w = Matrix::from_fn(feats, hidden, |_, _| rng.uniform_in(-1.0, 1.0));

            mixq_parallel::set_num_threads(1);
            let (loss_s, dx_s, dw_s) = run_program(&pair, &x, &w);
            mixq_parallel::set_num_threads(threads);
            let (loss_p, dx_p, dw_p) = run_program(&pair, &x, &w);
            mixq_parallel::set_num_threads(1);

            assert_eq!(
                loss_s.to_bits(),
                loss_p.to_bits(),
                "loss @ {threads} threads"
            );
            let bits = |m: &Matrix| m.data().iter().map(|v| v.to_bits()).collect::<Vec<_>>();
            assert_eq!(bits(&dx_s), bits(&dx_p), "dX @ {threads} threads");
            assert_eq!(bits(&dw_s), bits(&dw_p), "dW @ {threads} threads");
        });

    mixq_parallel::set_parallel_row_threshold(mixq_parallel::DEFAULT_ROW_THRESHOLD);
}

/// `QuantCsr` integer SpMM equals the dense i64 contraction on graphs biased
/// toward pathology (isolated nodes, hub rows).
fn drill_qcsr() {
    Config::new("drill.qcsr")
        .cases(96)
        .run(&graph_case(24), |&(ref g, f, seed)| {
            let q = QuantCsr::from_csr(&g.to_csr(), 4, |_, _, v| v.round_ties_even() as i32);
            let mut rng = Rng::seed_from_u64(seed);
            let x: Vec<i32> = (0..g.nodes * f)
                .map(|_| rng.gen_range(256) as i32 - 128)
                .collect();
            let mut want = vec![0i64; q.rows() * f];
            for r in 0..q.rows() {
                for (c, v) in q.row(r) {
                    for j in 0..f {
                        want[r * f + j] += v as i64 * x[c * f + j] as i64;
                    }
                }
            }
            assert_eq!(
                spmm_int(&q, &x, f),
                want,
                "integer SpMM diverged (nodes={}, nnz={}, f={f})",
                g.nodes,
                q.nnz()
            );
        });
}

fn main() {
    let suites: [(&str, fn()); 5] = [
        ("drill.theorem1", drill_theorem1),
        ("drill.quant_edges", drill_quant_edges),
        ("drill.autograd", drill_autograd),
        ("drill.parallel", drill_parallel),
        ("drill.qcsr", drill_qcsr),
    ];
    for (name, run) in suites {
        run();
        println!("fuzz_drill: suite '{name}' passed");
    }
    if mixq_telemetry::enabled() {
        match mixq_telemetry::write_report("fuzz_drill") {
            Ok(p) => println!("telemetry report written to {}", p.display()),
            Err(e) => eprintln!("telemetry report failed: {e}"),
        }
    }
    println!("fuzz_drill: OK ({} suites)", suites.len());
}
