//! Table 4: native quantizer vs the DQ quantizer under MixQ-selected
//! bit-widths (2-layer GCN, Cora).

use mixq_bench::{bits, gbops, pct, run_mixq, Args, NodeExp, Table};
use mixq_core::QuantKind;
use mixq_graph::cora_like;
use mixq_nn::NodeBundle;

fn main() {
    let args = Args::parse();
    let ds = cora_like(42);
    let bundle = NodeBundle::new(&ds);
    let mut exp = NodeExp::gcn(64, args.runs_or(5));
    if args.quick {
        exp.train.epochs = 60;
        exp.search.epochs = 30;
        exp.search.warmup = 15;
    }
    let dq = QuantKind::Dq {
        p_min: 0.0,
        p_max: 0.2,
    };
    let mut t = Table::new(
        "Table 4 — MixQ vs MixQ+DQ on Cora (2-layer GCN, bits {2,4,8})",
        &["Method", "Accuracy", "Bits", "GBitOPs"],
    );
    for (lname, lambda) in [("-1e-8", -1e-8f32), ("0.1", 0.1), ("1", 1.0)] {
        eprintln!("[table4] λ={lname} ...");
        for (mname, kind) in [("MixQ", QuantKind::Native), ("MixQ + DQ", dq)] {
            let c = run_mixq(&ds, &bundle, &exp, &[2, 4, 8], lambda, kind);
            t.row(&[
                format!("{mname} (λ={lname})"),
                pct(c.mean, c.std),
                bits(c.avg_bits),
                gbops(c.gbitops),
            ]);
        }
    }
    t.print();
}
