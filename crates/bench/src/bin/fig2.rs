//! Figure 2: accuracy vs average bit-width for sampled per-component bit
//! assignments of a 2-layer GCN on Cora-like (bits {2,4,8}, 9 components).

use mixq_bench::{gcn_bit_sweep, Args, Table};
use mixq_graph::cora_like;
use mixq_nn::NodeBundle;

fn main() {
    let args = Args::parse();
    let ds = cora_like(42);
    let bundle = NodeBundle::new(&ds);
    let samples = if args.quick { 24 } else { 120 };
    let runs = args.runs_or(2);
    let epochs = if args.quick { 50 } else { 100 };
    eprintln!("[fig2] sweeping {samples} combinations × {runs} runs ...");
    let points = gcn_bit_sweep(&ds, &bundle, &[2, 4, 8], samples, runs, epochs);
    let mut t = Table::new(
        "Figure 2 — accuracy vs avg bit-width, sampled {2,4,8}^9 combinations",
        &["Combination", "Avg bits", "Accuracy", "GBitOPs"],
    );
    for p in &points {
        t.row(&[
            format!("{:?}", p.bits),
            format!("{:.2}", p.avg_bits),
            format!("{:.3}", p.acc),
            format!("{:.3}", p.gbitops),
        ]);
    }
    t.print();
    let above_fp32 = points.iter().filter(|p| p.acc >= 0.80).count();
    println!(
        "{above_fp32}/{} sampled quantized candidates reach ≥ 80% accuracy",
        points.len()
    );
}
