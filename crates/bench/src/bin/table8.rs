//! Table 8: graph classification, 5-layer GIN, stratified k-fold CV.
//! Bit search space {4,8} for IMDB-B/PROTEINS/D&D and {8,16} for the
//! REDDIT datasets, as in the paper.

use mixq_bench::{bits, gbops, pct, run_graph_cv, Args, GraphExp, GraphMethod, Table};
use mixq_core::{gin_graph_schema, BitAssignment, QuantKind};
use mixq_graph::{dd_like, imdb_b_like, proteins_like, reddit_b_like, reddit_m_like};

fn main() {
    let args = Args::parse();
    let folds = args.runs_or(10);
    let mut t = Table::new(
        "Table 8 — graph classification, 5-layer GIN, k-fold CV",
        &["Dataset", "Method", "Accuracy", "Bits", "GBitOPs"],
    );
    let dq = QuantKind::Dq {
        p_min: 0.0,
        p_max: 0.2,
    };
    let sets: Vec<(&str, mixq_graph::GraphDataset, Vec<u8>)> = vec![
        ("IMDB-B", imdb_b_like(42, 300), vec![4, 8]),
        ("PROTEINS", proteins_like(42, 300), vec![4, 8]),
        ("D&D", dd_like(42, 150), vec![4, 8]),
        ("REDDIT-B", reddit_b_like(42, 200), vec![8, 16]),
        ("REDDIT-M", reddit_m_like(42, 250), vec![8, 16]),
    ];
    for (name, ds, choices) in sets {
        eprintln!("[table8] {name} ...");
        let mut exp = GraphExp::gin_table8(folds);
        if args.quick {
            exp.train.epochs = 40;
            exp.search.epochs = 24;
            exp.search.warmup = 12;
        }
        let schema = gin_graph_schema(exp.layers);
        let mut row = |method: &str, m: &GraphMethod| {
            let out = run_graph_cv(&ds, &exp, m);
            let c = out.cell();
            t.row(&[
                name.into(),
                method.into(),
                pct(c.mean, c.std),
                bits(c.avg_bits),
                gbops(c.gbitops),
            ]);
        };
        row("FP32", &GraphMethod::Fp32);
        row(
            "DQ (INT4)",
            &GraphMethod::Fixed(BitAssignment::uniform(schema.clone(), 4), dq),
        );
        row(
            "DQ (INT8)",
            &GraphMethod::Fixed(BitAssignment::uniform(schema.clone(), 8), dq),
        );
        row(
            "A2Q",
            &GraphMethod::A2q {
                lo: 4,
                mid: 4,
                hi: 8,
            },
        );
        row(
            "MixQ (λ*)",
            &GraphMethod::MixQ {
                choices: choices.clone(),
                lambda: -1e-8,
            },
        );
        row(
            "MixQ (λ=1)",
            &GraphMethod::MixQ {
                choices,
                lambda: 1.0,
            },
        );
    }
    t.print();
}
