//! Table 6: node classification with GraphSAGE — FP32 vs MixQ(0.1/1).
//! Mean-aggregator sampling keeps in-degrees low, so MixQ works well even
//! without structure-aware quantizers (§5.3.2).

use mixq_bench::{bits, gbops, pct, run_fp32, run_mixq, Args, NodeExp, Table};
use mixq_core::QuantKind;
use mixq_graph::{citeseer_like, cora_like, pubmed_like};
use mixq_nn::NodeBundle;

fn main() {
    let args = Args::parse();
    let mut t = Table::new(
        "Table 6 — node classification, 2-layer GraphSAGE (hidden 64)",
        &["Dataset", "Method", "Accuracy", "Bits", "GBitOPs"],
    );
    for (name, ds) in [
        ("Cora", cora_like(42)),
        ("CiteSeer", citeseer_like(42)),
        ("PubMed", pubmed_like(42)),
    ] {
        eprintln!("[table6] {name} ...");
        let bundle = NodeBundle::new(&ds);
        let mut exp = NodeExp::sage(64, args.runs_or(5));
        if args.quick {
            exp.train.epochs = 60;
            exp.search.epochs = 30;
            exp.search.warmup = 15;
        }
        let mut row = |method: &str, c: &mixq_bench::CellResult| {
            t.row(&[
                name.into(),
                method.into(),
                pct(c.mean, c.std),
                bits(c.avg_bits),
                gbops(c.gbitops),
            ]);
        };
        row("FP32", &run_fp32(&ds, &bundle, &exp));
        row(
            "MixQ (λ=0.1)",
            &run_mixq(&ds, &bundle, &exp, &[2, 4, 8], 0.1, QuantKind::Native),
        );
        row(
            "MixQ (λ=1)",
            &run_mixq(&ds, &bundle, &exp, &[2, 4, 8], 1.0, QuantKind::Native),
        );
    }
    t.print();
}
