//! Table 10 (ablation): random per-component bit-width choices vs MixQ.

use mixq_bench::{bits, gbops, pct, run_mixq, run_random, Args, NodeExp, Table};
use mixq_core::QuantKind;
use mixq_graph::{citeseer_like, cora_like, pubmed_like};
use mixq_nn::NodeBundle;

fn main() {
    let args = Args::parse();
    let mut t = Table::new(
        "Table 10 — random bit-width choices vs MixQ (λ=1), 2-layer GCN",
        &["Dataset", "Method", "Accuracy", "Bits", "GBitOPs"],
    );
    for (name, ds) in [
        ("Cora", cora_like(42)),
        ("CiteSeer", citeseer_like(42)),
        ("PubMed", pubmed_like(42)),
    ] {
        eprintln!("[table10] {name} ...");
        let bundle = NodeBundle::new(&ds);
        let mut exp = NodeExp::gcn(64, args.runs_or(8));
        if args.quick {
            exp.train.epochs = 60;
            exp.search.epochs = 30;
            exp.search.warmup = 15;
        }
        let mut row = |method: &str, c: &mixq_bench::CellResult| {
            t.row(&[
                name.into(),
                method.into(),
                pct(c.mean, c.std),
                bits(c.avg_bits),
                gbops(c.gbitops),
            ]);
        };
        row("Random", &run_random(&ds, &bundle, &exp, &[2, 4, 8], false));
        row(
            "Random + INT8",
            &run_random(&ds, &bundle, &exp, &[2, 4, 8], true),
        );
        let mut mexp = exp.clone();
        mexp.runs = args.runs_or(5);
        row(
            "MixQ (λ=1)",
            &run_mixq(&ds, &bundle, &mexp, &[2, 4, 8], 1.0, QuantKind::Native),
        );
    }
    t.print();
}
