//! Ablation study of the design choices DESIGN.md calls out:
//!
//! 1. quantizer scale policy — ACIQ-clipped observers (default) vs raw
//!    min/max observers vs LSQ learnable scales, at INT4 and INT8;
//! 2. bi-level search warm-up — α frozen for half the search vs no warm-up.

use mixq_bench::{bits, pct, run_mixq, run_quantized, Args, NodeExp, Table};
use mixq_core::{gcn_schema, BitAssignment, QuantKind};
use mixq_graph::cora_like;
use mixq_nn::NodeBundle;

fn main() {
    let args = Args::parse();
    let ds = cora_like(42);
    let bundle = NodeBundle::new(&ds);
    let mut exp = NodeExp::gcn(64, args.runs_or(4));
    if args.quick {
        exp.train.epochs = 60;
    }

    let mut t = Table::new(
        "Ablation 1 — quantizer scale policy (2-layer GCN, Cora-like)",
        &["Bits", "Scale policy", "Accuracy"],
    );
    for b in [4u8, 8] {
        let a = BitAssignment::uniform(gcn_schema(2), b);
        let aciq = run_quantized(&ds, &bundle, &exp, &a, QuantKind::Native);
        t.row(&[
            format!("INT{b}"),
            "ACIQ-clipped observer".into(),
            pct(aciq.mean, aciq.std),
        ]);
        let lsq = run_quantized(&ds, &bundle, &exp, &a, QuantKind::Lsq);
        t.row(&[
            format!("INT{b}"),
            "LSQ learnable scale".into(),
            pct(lsq.mean, lsq.std),
        ]);
        let dq_raw = run_quantized(
            &ds,
            &bundle,
            &exp,
            &a,
            QuantKind::Dq {
                p_min: 0.0,
                p_max: 0.0,
            }, // percentile range, no protection
        );
        t.row(&[
            format!("INT{b}"),
            "percentile min/max".into(),
            pct(dq_raw.mean, dq_raw.std),
        ]);
    }
    t.print();

    let mut t2 = Table::new(
        "Ablation 2 — search warm-up (MixQ λ=0.1, bits {2,4,8})",
        &["Warm-up", "Accuracy", "Avg bits"],
    );
    for (name, warmup_frac) in [("half (default)", 0.5f32), ("none", 0.0)] {
        let mut e = exp.clone();
        e.search.warmup = (e.search.epochs as f32 * warmup_frac) as usize;
        let c = run_mixq(&ds, &bundle, &e, &[2, 4, 8], 0.1, QuantKind::Native);
        t2.row(&[name.into(), pct(c.mean, c.std), bits(c.avg_bits)]);
    }
    t2.print();
}
