//! Fault-injection drill: runs one training + integer-inference pipeline
//! with `MIXQ_FAULTS` injecting a NaN gradient, a torn checkpoint write, a
//! worker panic and an accumulator-saturation sentinel — then repeats the
//! run unfaulted and asserts the recovered run is *bit-identical*.
//!
//! CI wires this binary together with `telemetry_check` to pin the exact
//! `faults.injected` / `faults.recovered` counter totals. Run standalone
//! (no `MIXQ_FAULTS` in the environment) it installs the canonical spec
//! itself, so `cargo run --release --bin fault_drill` always drills.

use mixq_core::{GcnLayerSnapshot, GcnSnapshot, QuantizedGcn};
use mixq_graph::cora_like;
use mixq_nn::{params_to_string, train_node, GcnNet, NodeBundle, ParamSet, TrainConfig};
use mixq_sparse::{gcn_normalize, CooEntry, CsrMatrix};
use mixq_tensor::{Matrix, QuantParams, Rng};

const SPEC: &str = "grad_nan@epoch=3,ckpt_torn@1,worker_panic@2,acc_saturate@1";

fn train_once(cfg: &TrainConfig) -> (mixq_nn::TrainReport, String) {
    let ds = cora_like(7);
    let bundle = NodeBundle::new(&ds);
    let dims = [ds.feat_dim(), 16, ds.num_classes()];
    let mut rng = Rng::seed_from_u64(7);
    let mut ps = ParamSet::new();
    let mut net = GcnNet::new(&mut ps, &dims, 0.5, &mut rng);
    let rep = train_node(&mut net, &mut ps, &ds, &bundle, cfg);
    (rep, params_to_string(&ps))
}

/// Hand-built one-layer GCN snapshot plus a small graph — the integer
/// inference leg the `acc_saturate` sentinel redirects to the f32 fallback.
fn integer_leg() -> Matrix {
    let mut rng = Rng::seed_from_u64(11);
    let n = 48;
    let (fin, fout) = (6, 4);
    let x = Matrix::from_fn(n, fin, |_, _| rng.normal() * 0.5);
    let mut entries = Vec::new();
    for i in 0..n {
        for j in 0..n {
            if i != j && rng.bernoulli(0.1) {
                entries.push(CooEntry {
                    row: i,
                    col: j,
                    val: 1.0,
                });
            }
        }
    }
    let adj = gcn_normalize(&CsrMatrix::from_coo(n, n, entries));
    let weight = Matrix::from_fn(fin, fout, |_, _| rng.normal() * 0.3);
    let snap = GcnSnapshot {
        input_qp: QuantParams::from_min_max(-2.0, 2.0, 8),
        layers: vec![GcnLayerSnapshot {
            weight,
            bias: Some(vec![0.05; fout]),
            w_qp: QuantParams::symmetric(-1.0, 1.0, 8),
            lin_qp: QuantParams::from_min_max(-2.0, 2.0, 8),
            agg_qp: QuantParams::from_min_max(-2.0, 2.0, 8),
            adj_bits: 8,
        }],
    };
    QuantizedGcn::prepare(&snap, &adj).infer(&x)
}

fn main() {
    // Injected worker panics are caught and retried by the runtime; keep the
    // default hook from spraying their backtraces over the drill output.
    let default_hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(move |info| {
        let msg = info
            .payload()
            .downcast_ref::<String>()
            .map(String::as_str)
            .or_else(|| info.payload().downcast_ref::<&str>().copied())
            .unwrap_or("");
        if !msg.contains(mixq_faultinject::PANIC_MARKER) {
            default_hook(info);
        }
    }));

    // Force the parallel runtime on so the worker-panic containment path is
    // actually exercised, regardless of the host's core count.
    mixq_parallel::set_num_threads(4);
    mixq_parallel::set_parallel_row_threshold(2);

    if !mixq_faultinject::enabled() {
        mixq_faultinject::set_spec(SPEC).expect("canonical fault spec parses");
        println!("fault_drill: MIXQ_FAULTS not set, using builtin spec '{SPEC}'");
    }

    let ckpt = std::env::temp_dir().join(format!("mixq_fault_drill_{}.ckpt", std::process::id()));
    let cfg = TrainConfig::builder()
        .epochs(8)
        .lr(0.01)
        .seed(7)
        .patience(0)
        .grad_clip(5.0)
        .checkpoint(&ckpt, 2)
        .build()
        .expect("drill config is valid");

    // --- faulted run --------------------------------------------------------
    let (rep_f, params_f) = train_once(&cfg);
    let logits_f = integer_leg();
    let injected = mixq_faultinject::injected_count();
    let recovered = mixq_faultinject::recovered_count();
    println!(
        "faulted run: test-acc {:.3}, recovered_divergences {}, diverged {}, \
         faults injected {injected} / recovered {recovered}",
        rep_f.test_metric, rep_f.recovered_divergences, rep_f.diverged
    );
    assert!(
        rep_f.recovered_divergences >= 1,
        "grad_nan@epoch=3 must be absorbed by a rollback"
    );
    assert!(!rep_f.diverged, "recovery must succeed within max_retries");
    assert!(
        rep_f.test_metric.is_finite() && rep_f.final_train_loss.is_finite(),
        "faulted run must end with finite metrics"
    );
    assert!(
        logits_f.data().iter().all(|v| v.is_finite()),
        "fallback inference must stay finite"
    );
    assert_eq!(injected, 4, "all four injected faults must fire");
    assert_eq!(recovered, 4, "every injected fault must be recovered");

    // --- clean reference run ------------------------------------------------
    mixq_faultinject::clear();
    let clean_ckpt = std::env::temp_dir().join(format!(
        "mixq_fault_drill_{}_clean.ckpt",
        std::process::id()
    ));
    let clean_cfg = TrainConfig {
        checkpoint: cfg.checkpoint.as_ref().map(|c| mixq_nn::CheckpointConfig {
            path: clean_ckpt.clone(),
            every: c.every,
        }),
        ..cfg.clone()
    };
    let (rep_c, params_c) = train_once(&clean_cfg);
    let logits_c = integer_leg();
    assert_eq!(
        params_f, params_c,
        "recovered faulted run must be bit-identical to the clean run"
    );
    assert_eq!(rep_c.recovered_divergences, 0);
    assert_eq!(rep_f.test_metric, rep_c.test_metric);
    assert_eq!(rep_f.final_train_loss, rep_c.final_train_loss);
    // The saturation fallback is f32 (not bit-exact) but must agree with the
    // integer path to within a couple of output LSBs.
    let tol = 3.0 * 4.0 / 255.0; // 3 × agg_qp scale of the drill snapshot
    assert!(
        logits_f.max_abs_diff(&logits_c) <= tol,
        "fallback logits drifted {} (> {tol})",
        logits_f.max_abs_diff(&logits_c)
    );
    println!("clean run matches faulted run bit-for-bit; fallback within {tol} of integer path");

    let _ = std::fs::remove_file(&ckpt);
    let _ = std::fs::remove_file(&clean_ckpt);
    if mixq_telemetry::enabled() {
        match mixq_telemetry::write_report("fault_drill") {
            Ok(p) => println!("telemetry report written to {}", p.display()),
            Err(e) => eprintln!("telemetry report failed: {e}"),
        }
    }
    println!("fault_drill: OK");
}
