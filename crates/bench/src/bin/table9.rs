//! Table 9: CSL synthetic dataset — 4-layer GCN with Laplacian positional
//! encodings. Reliable accuracy needs ≈ log2(41) ≈ 5.36 bits of feature
//! precision, so INT4 is marginal and INT2 fails.

use mixq_bench::{bits as fbits, pct, run_graph_cv, Args, GraphExp, GraphMethod, Table};
use mixq_core::{gcn_graph_schema, BitAssignment, QuantKind};
use mixq_graph::csl_dataset;

fn main() {
    let args = Args::parse();
    let ds = csl_dataset(42, 15, 20);
    let folds = 5;
    let repeats = args.runs_or(4);
    let mut t = Table::new(
        "Table 9 — CSL, 4-layer GCN + LapPE(20), 5-fold CV",
        &["Method", "Bits", "Mean ± Std", "Min", "Max"],
    );
    let schema = gcn_graph_schema(4);
    let methods: Vec<(&str, GraphMethod)> = vec![
        ("FP32", GraphMethod::Fp32),
        (
            "QAT - INT2",
            GraphMethod::Fixed(BitAssignment::uniform(schema.clone(), 2), QuantKind::Native),
        ),
        (
            "QAT - INT4",
            GraphMethod::Fixed(BitAssignment::uniform(schema.clone(), 4), QuantKind::Native),
        ),
        (
            "MixQ (λ=-1e-3)",
            GraphMethod::MixQ {
                choices: vec![2, 4, 8],
                lambda: -1e-3,
            },
        ),
        (
            "MixQ (λ=0)",
            GraphMethod::MixQ {
                choices: vec![2, 4, 8],
                lambda: 0.0,
            },
        ),
    ];
    for (name, method) in methods {
        eprintln!("[table9] {name} ...");
        let mut accs = Vec::new();
        let mut bit_acc = 0.0;
        for rep in 0..repeats {
            let mut exp = GraphExp::gcn_csl(folds);
            exp.train.seed = rep as u64 * 100;
            if args.quick {
                exp.train.epochs = 60;
                exp.search.epochs = 30;
                exp.search.warmup = 15;
            }
            let out = run_graph_cv(&ds, &exp, &method);
            bit_acc += out.avg_bits;
            accs.extend(out.accs);
        }
        let (mean, std) = mixq_nn::mean_std(&accs);
        let min = accs.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = accs.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        t.row(&[
            name.into(),
            fbits(bit_acc / repeats as f64),
            pct(mean, std),
            format!("{:.1}", min * 100.0),
            format!("{:.1}", max * 100.0),
        ]);
    }
    t.print();
}
