//! Table 3: node classification with the GCN architecture — FP32, DQ (8/4
//! bits), A²Q, and MixQ at λ ∈ {−ε, 0.1, 1}.

use mixq_bench::{
    bits, gbops, pct, run_a2q, run_fp32, run_mixq, run_quantized, Args, NodeExp, Table,
};
use mixq_core::{gcn_schema, BitAssignment, QuantKind};
use mixq_graph::{arxiv_like, citeseer_like, cora_like, pubmed_like};
use mixq_nn::NodeBundle;

fn main() {
    let args = Args::parse();
    let mut t = Table::new(
        "Table 3 — node classification, 2-layer GCN (hidden 64)",
        &["Dataset", "Method", "Accuracy", "Bits", "GBitOPs"],
    );
    let eps = -1e-8f32;
    let dq = QuantKind::Dq {
        p_min: 0.0,
        p_max: 0.2,
    };
    let datasets: Vec<(&str, mixq_graph::NodeDataset, Vec<u8>, usize)> = vec![
        ("Cora", cora_like(42), vec![2, 4, 8], args.runs_or(5)),
        (
            "CiteSeer",
            citeseer_like(42),
            vec![2, 4, 8],
            args.runs_or(5),
        ),
        ("PubMed", pubmed_like(42), vec![2, 4, 8], args.runs_or(4)),
        ("OGB-Arxiv", arxiv_like(42), vec![4, 8], args.runs_or(3)),
    ];
    for (name, ds, choices, runs) in datasets {
        eprintln!("[table3] {name} ...");
        let bundle = NodeBundle::new(&ds);
        let mut exp = NodeExp::gcn(64, runs);
        if args.quick {
            exp.train.epochs = 60;
            exp.search.epochs = 30;
            exp.search.warmup = 15;
        }
        let mut row = |method: &str, c: &mixq_bench::CellResult| {
            t.row(&[
                name.into(),
                method.into(),
                pct(c.mean, c.std),
                bits(c.avg_bits),
                gbops(c.gbitops),
            ]);
        };
        row("FP32", &run_fp32(&ds, &bundle, &exp));
        let a8 = BitAssignment::uniform(gcn_schema(2), 8);
        row("DQ (INT8)", &run_quantized(&ds, &bundle, &exp, &a8, dq));
        let a4 = BitAssignment::uniform(gcn_schema(2), 4);
        row("DQ (INT4)", &run_quantized(&ds, &bundle, &exp, &a4, dq));
        row("A2Q", &run_a2q(&ds, &bundle, &exp, (2, 4, 8)));
        row(
            "MixQ (λ=-1e-8)",
            &run_mixq(&ds, &bundle, &exp, &choices, eps, QuantKind::Native),
        );
        row(
            "MixQ (λ=0.1)",
            &run_mixq(&ds, &bundle, &exp, &choices, 0.1, QuantKind::Native),
        );
        row(
            "MixQ (λ=1)",
            &run_mixq(&ds, &bundle, &exp, &choices, 1.0, QuantKind::Native),
        );
    }
    t.print();
}
