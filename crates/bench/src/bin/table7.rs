//! Table 7: large-scale node classification with GraphSAGE + MixQ.
//! OGB-Proteins is multi-label and reports ROC-AUC; the rest accuracy.

use mixq_bench::{bits, frac, gbops, pct, run_fp32, run_mixq, Args, NodeExp, Table};
use mixq_core::QuantKind;
use mixq_graph::{igb_like, products_like, proteins_ogb_like, reddit_like, NodeTargets};
use mixq_nn::NodeBundle;

fn main() {
    let args = Args::parse();
    let mut t = Table::new(
        "Table 7 — large-scale GraphSAGE (hidden 32)",
        &[
            "Dataset",
            "λ / precision",
            "Acc / ROC-AUC",
            "Bits",
            "GBitOPs",
        ],
    );
    for (name, ds) in [
        ("Reddit", reddit_like(42)),
        ("OGB-Proteins", proteins_ogb_like(42)),
        ("OGB-Products", products_like(42)),
        ("IGB", igb_like(42)),
    ] {
        eprintln!("[table7] {name} ...");
        let is_auc = matches!(ds.targets, NodeTargets::MultiLabel(_));
        let bundle = NodeBundle::new(&ds);
        let mut exp = NodeExp::sage(32, args.runs_or(3));
        exp.train.epochs = if args.quick { 40 } else { 80 };
        exp.train.patience = 25;
        exp.search.epochs = if args.quick { 20 } else { 40 };
        exp.search.warmup = exp.search.epochs / 2;
        let fmt = |c: &mixq_bench::CellResult| {
            if is_auc {
                frac(c.mean, c.std)
            } else {
                pct(c.mean, c.std)
            }
        };
        let c = run_fp32(&ds, &bundle, &exp);
        t.row(&[
            name.into(),
            "FP32".into(),
            fmt(&c),
            bits(c.avg_bits),
            gbops(c.gbitops),
        ]);
        for (lname, lambda) in [("-1e-8", -1e-8f32), ("0.1", 0.1), ("1", 1.0)] {
            let c = run_mixq(&ds, &bundle, &exp, &[2, 4, 8], lambda, QuantKind::Native);
            t.row(&[
                name.into(),
                lname.into(),
                fmt(&c),
                bits(c.avg_bits),
                gbops(c.gbitops),
            ]);
        }
    }
    t.print();
}
