//! Figure 9: effect of λ on the average bit-width and accuracy of MixQ
//! (2-layer GCN, Cora-like).

use mixq_bench::{run_mixq, Args, NodeExp, Table};
use mixq_core::QuantKind;
use mixq_graph::cora_like;
use mixq_nn::NodeBundle;

fn main() {
    let args = Args::parse();
    let ds = cora_like(42);
    let bundle = NodeBundle::new(&ds);
    let mut t = Table::new(
        "Figure 9 — λ sweep (2-layer GCN, bits {2,4,8})",
        &["λ", "Avg bits", "Accuracy"],
    );
    for lambda in [-0.1f32, -0.05, -0.01, 0.0, 0.01, 0.05, 0.1, 0.3, 1.0] {
        eprintln!("[fig9] λ={lambda} ...");
        let mut exp = NodeExp::gcn(64, args.runs_or(3));
        if args.quick {
            exp.train.epochs = 60;
            exp.search.epochs = 30;
            exp.search.warmup = 15;
        }
        let c = run_mixq(&ds, &bundle, &exp, &[2, 4, 8], lambda, QuantKind::Native);
        t.row(&[
            format!("{lambda}"),
            format!("{:.2}", c.avg_bits),
            format!("{:.1}±{:.1}%", c.mean * 100.0, c.std * 100.0),
        ]);
    }
    t.print();
}
