//! Minimal aligned-column table printer for the experiment binaries.

/// Collects rows and prints them with aligned columns, paper-style.
#[derive(Debug, Default)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
    title: String,
}

impl Table {
    pub fn new(title: &str, header: &[&str]) -> Self {
        Self {
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
            title: title.to_string(),
        }
    }

    pub fn row(&mut self, cells: &[String]) {
        assert_eq!(cells.len(), self.header.len(), "row width mismatch");
        self.rows.push(cells.to_vec());
    }

    pub fn print(&self) {
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.chars().count()).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row.iter()) {
                *w = (*w).max(cell.chars().count());
            }
        }
        let line: usize = widths.iter().sum::<usize>() + 3 * widths.len() + 1;
        println!("\n{}", self.title);
        println!("{}", "=".repeat(line.min(110)));
        let fmt_row = |cells: &[String]| {
            let mut s = String::from("|");
            for (cell, w) in cells.iter().zip(&widths) {
                let pad = w - cell.chars().count();
                s.push(' ');
                s.push_str(cell);
                s.push_str(&" ".repeat(pad + 1));
                s.push('|');
            }
            s
        };
        println!("{}", fmt_row(&self.header));
        println!("{}", "-".repeat(line.min(110)));
        for row in &self.rows {
            println!("{}", fmt_row(row));
        }
        println!();
    }
}

/// `82.3±0.4%` formatting used across tables.
pub fn pct(mean: f64, std: f64) -> String {
    format!("{:.1}±{:.1}%", mean * 100.0, std * 100.0)
}

/// Fraction (e.g. ROC-AUC) with two decimals.
pub fn frac(mean: f64, std: f64) -> String {
    format!("{mean:.2}±{std:.2}")
}

pub fn bits(b: f64) -> String {
    format!("{b:.2}")
}

pub fn gbops(g: f64) -> String {
    if g >= 100.0 {
        format!("{g:.0}")
    } else if g >= 1.0 {
        format!("{g:.2}")
    } else {
        format!("{g:.3}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn formats() {
        assert_eq!(pct(0.8152, 0.007), "81.5±0.7%");
        assert_eq!(bits(7.6911), "7.69");
        assert_eq!(gbops(16.114), "16.11");
        assert_eq!(gbops(0.1234), "0.123");
        assert_eq!(gbops(692.87), "693");
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn rejects_ragged_rows() {
        let mut t = Table::new("t", &["a", "b"]);
        t.row(&["x".to_string()]);
    }
}
