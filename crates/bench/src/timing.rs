//! Minimal wall-clock benchmarking harness.
//!
//! The offline build environment cannot fetch Criterion, so the bench
//! targets use this self-contained runner instead: calibrate an iteration
//! count that fills a fixed batch duration, take several batch samples,
//! and report the median per-iteration time (the median is robust to the
//! occasional scheduler hiccup that would skew a mean).

use std::time::{Duration, Instant};

/// Batch samples taken per benchmark; the median is reported.
pub const SAMPLES: usize = 7;

/// Target wall-clock duration of one calibration/sample batch.
pub const BATCH: Duration = Duration::from_millis(25);

/// Median nanoseconds per call of `f`, measured over [`SAMPLES`] batches of
/// a calibrated iteration count.
pub fn median_ns_per_iter(mut f: impl FnMut()) -> f64 {
    // Calibrate: double the iteration count until one batch fills BATCH.
    let mut iters = 1u64;
    loop {
        let t = Instant::now();
        for _ in 0..iters {
            f();
        }
        if t.elapsed() >= BATCH || iters >= 1 << 24 {
            break;
        }
        iters = iters.saturating_mul(2);
    }
    let mut samples = [0f64; SAMPLES];
    for s in samples.iter_mut() {
        let t = Instant::now();
        for _ in 0..iters {
            f();
        }
        *s = t.elapsed().as_nanos() as f64 / iters as f64;
    }
    samples.sort_by(f64::total_cmp);
    samples[SAMPLES / 2]
}

/// Runs `f` under [`median_ns_per_iter`], prints one aligned result line,
/// and returns the median ns/iter (callers use it for speedup ratios).
pub fn bench(name: &str, f: impl FnMut()) -> f64 {
    let ns = median_ns_per_iter(f);
    println!("{name:<44} {:>12}/iter", format_ns(ns));
    ns
}

/// Human-readable duration from nanoseconds.
pub fn format_ns(ns: f64) -> String {
    if ns < 1e3 {
        format!("{ns:.1} ns")
    } else if ns < 1e6 {
        format!("{:.2} µs", ns / 1e3)
    } else if ns < 1e9 {
        format!("{:.2} ms", ns / 1e6)
    } else {
        format!("{:.3} s", ns / 1e9)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn format_ns_picks_sensible_units() {
        assert_eq!(format_ns(12.34), "12.3 ns");
        assert_eq!(format_ns(12_340.0), "12.34 µs");
        assert_eq!(format_ns(12_340_000.0), "12.34 ms");
        assert_eq!(format_ns(2_500_000_000.0), "2.500 s");
    }

    #[test]
    fn median_measures_positive_time() {
        let mut x = 0u64;
        let ns = median_ns_per_iter(|| x = x.wrapping_add(std::hint::black_box(1)));
        assert!(ns > 0.0);
    }
}
