//! Minimal wall-clock benchmarking harness.
//!
//! The offline build environment cannot fetch Criterion, so the bench
//! targets use this self-contained runner instead: calibrate an iteration
//! count that fills a fixed batch duration, take several batch samples,
//! and report the median per-iteration time (the median is robust to the
//! occasional scheduler hiccup that would skew a mean).

use std::io::Write;
use std::path::Path;
use std::time::{Duration, Instant};

/// Batch samples taken per benchmark; the median is reported.
pub const SAMPLES: usize = 7;

/// Target wall-clock duration of one calibration/sample batch.
pub const BATCH: Duration = Duration::from_millis(25);

/// Median nanoseconds per call of `f`, measured over [`SAMPLES`] batches of
/// a calibrated iteration count.
pub fn median_ns_per_iter(mut f: impl FnMut()) -> f64 {
    // Calibrate: double the iteration count until one batch fills BATCH.
    let mut iters = 1u64;
    loop {
        let t = Instant::now();
        for _ in 0..iters {
            f();
        }
        if t.elapsed() >= BATCH || iters >= 1 << 24 {
            break;
        }
        iters = iters.saturating_mul(2);
    }
    let mut samples = [0f64; SAMPLES];
    for s in samples.iter_mut() {
        let t = Instant::now();
        for _ in 0..iters {
            f();
        }
        *s = t.elapsed().as_nanos() as f64 / iters as f64;
    }
    samples.sort_by(f64::total_cmp);
    samples[SAMPLES / 2]
}

/// Runs `f` under [`median_ns_per_iter`], prints one aligned result line,
/// and returns the median ns/iter (callers use it for speedup ratios).
pub fn bench(name: &str, f: impl FnMut()) -> f64 {
    let ns = median_ns_per_iter(f);
    println!("{name:<44} {:>12}/iter", format_ns(ns));
    ns
}

/// One machine-readable benchmark result, as written by [`write_json`].
///
/// `macs` is the multiply-accumulate count of a single iteration, so
/// [`BenchRecord::macs_per_s`] gives a size-independent throughput that can
/// be compared across commits and shapes. `speedup` relates this record to
/// the named `baseline` record in the same report (ratio of baseline
/// ns/iter to this ns/iter; > 1 means faster than the baseline).
#[derive(Debug, Clone)]
pub struct BenchRecord {
    pub name: String,
    pub threads: usize,
    pub ns_per_iter: f64,
    pub macs: u64,
    pub baseline: Option<String>,
    pub speedup: Option<f64>,
}

impl BenchRecord {
    pub fn new(name: &str, threads: usize, ns_per_iter: f64, macs: u64) -> Self {
        Self {
            name: name.to_string(),
            threads,
            ns_per_iter,
            macs,
            baseline: None,
            speedup: None,
        }
    }

    /// Marks `base` as the reference this record is compared to and stores
    /// the speedup (`base.ns_per_iter / self.ns_per_iter`).
    pub fn vs(mut self, base: &BenchRecord) -> Self {
        self.baseline = Some(base.name.clone());
        self.speedup = Some(base.ns_per_iter / self.ns_per_iter);
        self
    }

    /// Multiply-accumulates per second at the measured ns/iter.
    pub fn macs_per_s(&self) -> f64 {
        if self.ns_per_iter <= 0.0 {
            return 0.0;
        }
        self.macs as f64 / (self.ns_per_iter * 1e-9)
    }
}

/// A JSON number that is always valid JSON (NaN/Inf become 0).
fn json_num(v: f64) -> String {
    if v.is_finite() {
        format!("{v:.3}")
    } else {
        "0".to_string()
    }
}

/// Writes the benchmark trajectory as a small hand-rolled JSON document
/// (the offline build has no serde): a `records` array plus a flat
/// `summary` object of named headline ratios. Names are written verbatim —
/// callers use plain ASCII identifiers.
pub fn write_json(
    path: &Path,
    records: &[BenchRecord],
    summary: &[(&str, f64)],
) -> std::io::Result<()> {
    let mut s = String::new();
    s.push_str("{\n  \"schema\": \"mixq.kernel_bench.v1\",\n  \"records\": [\n");
    for (i, r) in records.iter().enumerate() {
        s.push_str(&format!(
            "    {{\"name\": \"{}\", \"threads\": {}, \"ns_per_iter\": {}, \"macs\": {}, \"macs_per_s\": {}",
            r.name,
            r.threads,
            json_num(r.ns_per_iter),
            r.macs,
            json_num(r.macs_per_s()),
        ));
        if let (Some(b), Some(sp)) = (&r.baseline, r.speedup) {
            s.push_str(&format!(
                ", \"baseline\": \"{}\", \"speedup\": {}",
                b,
                json_num(sp)
            ));
        }
        s.push('}');
        if i + 1 < records.len() {
            s.push(',');
        }
        s.push('\n');
    }
    s.push_str("  ],\n  \"summary\": {\n");
    for (i, (k, v)) in summary.iter().enumerate() {
        s.push_str(&format!("    \"{}\": {}", k, json_num(*v)));
        if i + 1 < summary.len() {
            s.push(',');
        }
        s.push('\n');
    }
    s.push_str("  }\n}\n");
    let mut f = std::fs::File::create(path)?;
    f.write_all(s.as_bytes())
}

/// Human-readable duration from nanoseconds.
pub fn format_ns(ns: f64) -> String {
    if ns < 1e3 {
        format!("{ns:.1} ns")
    } else if ns < 1e6 {
        format!("{:.2} µs", ns / 1e3)
    } else if ns < 1e9 {
        format!("{:.2} ms", ns / 1e6)
    } else {
        format!("{:.3} s", ns / 1e9)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn format_ns_picks_sensible_units() {
        assert_eq!(format_ns(12.34), "12.3 ns");
        assert_eq!(format_ns(12_340.0), "12.34 µs");
        assert_eq!(format_ns(12_340_000.0), "12.34 ms");
        assert_eq!(format_ns(2_500_000_000.0), "2.500 s");
    }

    #[test]
    fn bench_record_json_round_trips_structure() {
        let base = BenchRecord::new("naive", 1, 2000.0, 1000);
        let fast = BenchRecord::new("tiled", 1, 500.0, 1000).vs(&base);
        assert_eq!(fast.speedup, Some(4.0));
        assert!((fast.macs_per_s() - 2e9).abs() < 1.0);

        let dir = std::env::temp_dir().join(format!("mixq_bench_json_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("bench.json");
        write_json(&path, &[base, fast], &[("tiled_speedup", 4.0)]).unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        std::fs::remove_dir_all(&dir).unwrap();
        assert!(text.contains("\"schema\": \"mixq.kernel_bench.v1\""));
        assert!(text.contains("\"baseline\": \"naive\", \"speedup\": 4.000"));
        assert!(text.contains("\"tiled_speedup\": 4.000"));
        // Hand-rolled JSON must stay structurally balanced.
        let balance =
            |open: char, close: char| text.matches(open).count() == text.matches(close).count();
        assert!(balance('{', '}') && balance('[', ']'));
        assert_eq!(text.matches('"').count() % 2, 0);
    }

    #[test]
    fn median_measures_positive_time() {
        let mut x = 0u64;
        let ns = median_ns_per_iter(|| x = x.wrapping_add(std::hint::black_box(1)));
        assert!(ns > 0.0);
    }
}
