//! The Figure 2/3 bit-width sweep: accuracy of a 2-layer GCN under sampled
//! per-component bit assignments, and the Pareto front over
//! (average bits ↓, accuracy ↑).

use mixq_core::{gcn_cost_model, gcn_schema, BitAssignment, QGcnNet, QuantKind};
use mixq_graph::NodeDataset;
use mixq_nn::{mean_std, train_node, NodeBundle, ParamSet, TrainConfig};
use mixq_tensor::Rng;

/// One evaluated bit-width combination.
#[derive(Debug, Clone)]
pub struct SweepPoint {
    pub bits: Vec<u8>,
    pub avg_bits: f64,
    pub acc: f64,
    pub gbitops: f64,
}

/// Evaluates `samples` random combinations from `choices^9` (plus the
/// uniform corners) with `runs` training runs each. The paper enumerates
/// all 3⁹ = 19,683 combinations; the deterministic sample keeps the sweep
/// tractable on one core while covering the same range.
pub fn gcn_bit_sweep(
    ds: &NodeDataset,
    bundle: &NodeBundle,
    choices: &[u8],
    samples: usize,
    runs: usize,
    epochs: usize,
) -> Vec<SweepPoint> {
    let dims = vec![ds.feat_dim(), 64, ds.num_classes()];
    let schema = gcn_schema(2);
    let mut rng = Rng::seed_from_u64(0xF160);
    let mut combos: Vec<BitAssignment> = choices
        .iter()
        .map(|&b| BitAssignment::uniform(schema.clone(), b))
        .collect();
    for _ in 0..samples.saturating_sub(combos.len()) {
        combos.push(BitAssignment::random(schema.clone(), choices, &mut rng));
    }
    let n = ds.num_nodes() as u64;
    let nnz = (ds.num_edges() + ds.num_nodes()) as u64;

    combos
        .into_iter()
        .enumerate()
        .map(|(i, a)| {
            let mut accs = Vec::with_capacity(runs);
            for run in 0..runs {
                let seed = (i * 31 + run) as u64;
                let cfg = TrainConfig {
                    epochs,
                    lr: 0.01,
                    weight_decay: 5e-4,
                    seed,
                    patience: 30,
                    ..TrainConfig::default()
                };
                let mut prng = Rng::seed_from_u64(seed ^ 0xF2);
                let mut ps = ParamSet::new();
                let mut net = QGcnNet::new(
                    &mut ps,
                    &dims,
                    a.clone(),
                    QuantKind::Native,
                    &bundle.degrees,
                    0.5,
                    &mut prng,
                )
                .expect("assignment matches schema");
                accs.push(train_node(&mut net, &mut ps, ds, bundle, &cfg).test_metric);
            }
            let (acc, _) = mean_std(&accs);
            let cm = gcn_cost_model(&a, &dims, n, nnz);
            SweepPoint {
                bits: a.bits,
                avg_bits: cm.avg_bits(),
                acc,
                gbitops: cm.gbit_ops(),
            }
        })
        .collect()
}

/// Indices of the Pareto-optimal points (maximize accuracy, minimize
/// average bits).
pub fn pareto_front(points: &[SweepPoint]) -> Vec<usize> {
    let mut front = Vec::new();
    for (i, p) in points.iter().enumerate() {
        let dominated = points.iter().enumerate().any(|(j, q)| {
            j != i
                && q.acc >= p.acc
                && q.avg_bits <= p.avg_bits
                && (q.acc > p.acc || q.avg_bits < p.avg_bits)
        });
        if !dominated {
            front.push(i);
        }
    }
    front
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pareto_front_filters_dominated_points() {
        let mk = |bits: f64, acc: f64| SweepPoint {
            bits: vec![],
            avg_bits: bits,
            acc,
            gbitops: 0.0,
        };
        let pts = vec![
            mk(2.0, 0.5),
            mk(4.0, 0.8),
            mk(4.0, 0.6),
            mk(8.0, 0.8),
            mk(3.0, 0.7),
        ];
        let front = pareto_front(&pts);
        // (4.0, 0.6) dominated by (4.0, 0.8) and (3.0, 0.7); (8.0, 0.8)
        // dominated by (4.0, 0.8).
        assert_eq!(front, vec![0, 1, 4]);
    }
}
