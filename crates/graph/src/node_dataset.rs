//! Node-classification datasets.
//!
//! The paper evaluates on Planetoid (Cora/CiteSeer/PubMed), OGB
//! (Arxiv/Proteins/Products), Reddit and IGB. Those corpora are not
//! available offline, so each is replaced by a *seeded synthetic generator*
//! that reproduces the structural properties quantization behaviour depends
//! on — in-degree skew (the main source of aggregation error per the paper),
//! homophily, sparse bag-of-words-style features and the relative scale
//! ordering between the datasets — at sizes trainable on one CPU core. See
//! DESIGN.md ("Substitutions") for the full rationale.

use std::collections::HashSet;

use mixq_sparse::{CooEntry, CsrMatrix};
use mixq_tensor::{Matrix, Rng};

/// Targets of a node-level task.
#[derive(Debug, Clone)]
pub enum NodeTargets {
    /// One class index per node.
    SingleLabel {
        labels: Vec<usize>,
        num_classes: usize,
    },
    /// A `n×t` 0/1 matrix of independent binary tasks (evaluated by
    /// ROC-AUC, like OGB-Proteins).
    MultiLabel(Matrix),
}

/// A full-graph node classification dataset with fixed splits.
#[derive(Debug, Clone)]
pub struct NodeDataset {
    pub name: String,
    /// Raw (unnormalized) adjacency; symmetric with unit weights.
    pub adj: CsrMatrix,
    /// Node features, `n×f`, row-normalized sparse bag-of-words style.
    pub features: Matrix,
    pub targets: NodeTargets,
    pub train_idx: Vec<usize>,
    pub val_idx: Vec<usize>,
    pub test_idx: Vec<usize>,
}

impl NodeDataset {
    pub fn num_nodes(&self) -> usize {
        self.adj.rows()
    }

    pub fn num_edges(&self) -> usize {
        self.adj.nnz()
    }

    pub fn feat_dim(&self) -> usize {
        self.features.cols()
    }

    pub fn num_classes(&self) -> usize {
        match &self.targets {
            NodeTargets::SingleLabel { num_classes, .. } => *num_classes,
            NodeTargets::MultiLabel(t) => t.cols(),
        }
    }

    /// Single-label targets, panicking for multi-label datasets.
    pub fn labels(&self) -> &[usize] {
        match &self.targets {
            NodeTargets::SingleLabel { labels, .. } => labels,
            NodeTargets::MultiLabel(_) => panic!("{} is a multi-label dataset", self.name),
        }
    }
}

/// Knobs of the synthetic citation-style generator.
#[derive(Debug, Clone)]
pub struct CitationConfig {
    pub name: &'static str,
    pub nodes: usize,
    pub feat_dim: usize,
    pub classes: usize,
    /// Average (undirected) degree.
    pub avg_degree: f32,
    /// Probability that an edge endpoint is drawn from the same class.
    pub homophily: f64,
    /// Pareto shape for degree propensities; smaller ⇒ heavier tail.
    pub degree_alpha: f64,
    /// Number of "topic" features characteristic of each class.
    pub topic_size: usize,
    /// Probability that a node activates each of its class topics.
    pub p_topic: f64,
    /// Background activation probability for any feature.
    pub p_noise: f64,
    /// Nodes per class in the training split.
    pub train_per_class: usize,
    pub val_size: usize,
    pub test_size: usize,
}

/// Generates a synthetic citation-style dataset (planted partition with
/// power-law degree propensities and class-topic features).
pub fn citation_like(cfg: &CitationConfig, seed: u64) -> NodeDataset {
    let mut rng = Rng::seed_from_u64(seed);
    let n = cfg.nodes;
    let c = cfg.classes;

    // Class assignment, round-robin then shuffled so classes are balanced.
    let mut labels: Vec<usize> = (0..n).map(|i| i % c).collect();
    rng.shuffle(&mut labels);

    // Degree propensities: Pareto-distributed, capped to avoid one node
    // dominating. High-propensity nodes become the high in-degree hubs whose
    // quantized aggregation the paper identifies as the main error source.
    let cap = (n as f64 / 8.0).max(10.0);
    let props: Vec<f64> = (0..n)
        .map(|_| {
            let u = rng.uniform().max(1e-9);
            u.powf(-1.0 / cfg.degree_alpha).min(cap)
        })
        .collect();

    // Weighted sampling pools: global and per class.
    let pool = WeightedPool::new(&props);
    let class_pools: Vec<WeightedPool> = (0..c)
        .map(|k| {
            let idx: Vec<usize> = (0..n).filter(|&i| labels[i] == k).collect();
            let w: Vec<f64> = idx.iter().map(|&i| props[i]).collect();
            WeightedPool::with_indices(&w, idx)
        })
        .collect();

    let m_target = (n as f32 * cfg.avg_degree / 2.0) as usize;
    let mut seen: HashSet<(usize, usize)> = HashSet::with_capacity(m_target * 2);
    let mut entries: Vec<CooEntry> = Vec::with_capacity(m_target * 2);
    let mut attempts = 0usize;
    while seen.len() < m_target && attempts < m_target * 30 {
        attempts += 1;
        let u = pool.sample(&mut rng);
        let v = if rng.bernoulli(cfg.homophily) {
            class_pools[labels[u]].sample(&mut rng)
        } else {
            pool.sample(&mut rng)
        };
        if u == v {
            continue;
        }
        let key = (u.min(v), u.max(v));
        if seen.insert(key) {
            entries.push(CooEntry {
                row: key.0,
                col: key.1,
                val: 1.0,
            });
            entries.push(CooEntry {
                row: key.1,
                col: key.0,
                val: 1.0,
            });
        }
    }
    let adj = CsrMatrix::from_coo(n, n, entries);

    // Class-topic features: class k activates a contiguous (wrapping) block
    // of `topic_size` features starting at k·stride, plus uniform noise.
    let stride = cfg.feat_dim / c;
    let mut features = Matrix::zeros(n, cfg.feat_dim);
    for (i, &label) in labels.iter().enumerate() {
        let base = label * stride;
        for t in 0..cfg.topic_size {
            if rng.bernoulli(cfg.p_topic) {
                let j = (base + t) % cfg.feat_dim;
                features.set(i, j, 1.0);
            }
        }
        for j in 0..cfg.feat_dim {
            if rng.bernoulli(cfg.p_noise) {
                features.set(i, j, 1.0);
            }
        }
        // Ensure no all-zero rows, then row-normalize (Planetoid convention).
        let s: f32 = features.row_slice(i).iter().sum();
        if s == 0.0 {
            features.set(i, base % cfg.feat_dim, 1.0);
        }
        let s: f32 = features.row_slice(i).iter().sum();
        for v in features.row_slice_mut(i) {
            *v /= s;
        }
    }

    let (train_idx, val_idx, test_idx) = planetoid_split(
        &mut rng,
        &labels,
        c,
        cfg.train_per_class,
        cfg.val_size,
        cfg.test_size,
    );

    NodeDataset {
        name: cfg.name.to_string(),
        adj,
        features,
        targets: NodeTargets::SingleLabel {
            labels,
            num_classes: c,
        },
        train_idx,
        val_idx,
        test_idx,
    }
}

/// Planetoid-style split: `per_class` training nodes per class, then `nval`
/// validation and `ntest` test nodes from the remainder.
pub fn planetoid_split(
    rng: &mut Rng,
    labels: &[usize],
    classes: usize,
    per_class: usize,
    nval: usize,
    ntest: usize,
) -> (Vec<usize>, Vec<usize>, Vec<usize>) {
    let n = labels.len();
    let mut order: Vec<usize> = (0..n).collect();
    rng.shuffle(&mut order);
    let mut train = Vec::with_capacity(per_class * classes);
    let mut counts = vec![0usize; classes];
    let mut rest = Vec::new();
    for &i in &order {
        if counts[labels[i]] < per_class {
            counts[labels[i]] += 1;
            train.push(i);
        } else {
            rest.push(i);
        }
    }
    let nval = nval.min(rest.len());
    let val = rest[..nval].to_vec();
    let ntest = ntest.min(rest.len() - nval);
    let test = rest[nval..nval + ntest].to_vec();
    (train, val, test)
}

/// Alias-free weighted sampler over node indices (cumulative distribution +
/// binary search). Good enough for dataset generation, which is one-time.
struct WeightedPool {
    cumulative: Vec<f64>,
    indices: Option<Vec<usize>>,
}

impl WeightedPool {
    fn new(weights: &[f64]) -> Self {
        Self::build(weights, None)
    }

    fn with_indices(weights: &[f64], indices: Vec<usize>) -> Self {
        Self::build(weights, Some(indices))
    }

    fn build(weights: &[f64], indices: Option<Vec<usize>>) -> Self {
        assert!(!weights.is_empty());
        let mut cumulative = Vec::with_capacity(weights.len());
        let mut acc = 0f64;
        for &w in weights {
            acc += w.max(0.0);
            cumulative.push(acc);
        }
        Self {
            cumulative,
            indices,
        }
    }

    fn sample(&self, rng: &mut Rng) -> usize {
        let total = *self.cumulative.last().unwrap();
        let x = rng.uniform() * total;
        let pos = self.cumulative.partition_point(|&c| c <= x);
        let pos = pos.min(self.cumulative.len() - 1);
        match &self.indices {
            Some(idx) => idx[pos],
            None => pos,
        }
    }
}

// ---- dataset registry (scaled-down mirrors of Table 2) --------------------

/// Cora-like: small citation network, 7 classes, strong homophily.
pub fn cora_like(seed: u64) -> NodeDataset {
    citation_like(
        &CitationConfig {
            name: "cora-like",
            nodes: 1500,
            feat_dim: 180,
            classes: 7,
            avg_degree: 4.0,
            homophily: 0.70,
            degree_alpha: 2.2,
            topic_size: 9,
            p_topic: 0.19,
            p_noise: 0.07,
            train_per_class: 20,
            val_size: 300,
            test_size: 600,
        },
        seed,
    )
}

/// CiteSeer-like: sparser, weaker homophily, more features — the hardest of
/// the three small citation sets, as in the paper.
pub fn citeseer_like(seed: u64) -> NodeDataset {
    citation_like(
        &CitationConfig {
            name: "citeseer-like",
            nodes: 1650,
            feat_dim: 220,
            classes: 6,
            avg_degree: 2.8,
            homophily: 0.64,
            degree_alpha: 2.5,
            topic_size: 10,
            p_topic: 0.20,
            p_noise: 0.07,
            train_per_class: 20,
            val_size: 300,
            test_size: 600,
        },
        seed,
    )
}

/// PubMed-like: larger, 3 classes, low feature dimension.
pub fn pubmed_like(seed: u64) -> NodeDataset {
    citation_like(
        &CitationConfig {
            name: "pubmed-like",
            nodes: 3000,
            feat_dim: 120,
            classes: 3,
            avg_degree: 4.5,
            homophily: 0.66,
            degree_alpha: 2.0,
            topic_size: 12,
            p_topic: 0.14,
            p_noise: 0.09,
            train_per_class: 20,
            val_size: 400,
            test_size: 900,
        },
        seed,
    )
}

/// OGB-Arxiv-like: larger citation graph, many classes, dense split.
pub fn arxiv_like(seed: u64) -> NodeDataset {
    citation_like(
        &CitationConfig {
            name: "arxiv-like",
            nodes: 6000,
            feat_dim: 96,
            classes: 16,
            avg_degree: 7.0,
            homophily: 0.58,
            degree_alpha: 1.8,
            topic_size: 4,
            p_topic: 0.23,
            p_noise: 0.07,
            train_per_class: 120,
            val_size: 800,
            test_size: 1600,
        },
        seed,
    )
}

/// Reddit-like: large, dense social graph with heavy degree tail.
pub fn reddit_like(seed: u64) -> NodeDataset {
    citation_like(
        &CitationConfig {
            name: "reddit-like",
            nodes: 8000,
            feat_dim: 80,
            classes: 12,
            avg_degree: 24.0,
            homophily: 0.75,
            degree_alpha: 1.6,
            topic_size: 6,
            p_topic: 0.35,
            p_noise: 0.05,
            train_per_class: 150,
            val_size: 1000,
            test_size: 2000,
        },
        seed,
    )
}

/// OGB-Products-like: the largest graph in the suite.
pub fn products_like(seed: u64) -> NodeDataset {
    citation_like(
        &CitationConfig {
            name: "products-like",
            nodes: 10_000,
            feat_dim: 64,
            classes: 16,
            avg_degree: 14.0,
            homophily: 0.60,
            degree_alpha: 1.7,
            topic_size: 4,
            p_topic: 0.26,
            p_noise: 0.07,
            train_per_class: 120,
            val_size: 1000,
            test_size: 2500,
        },
        seed,
    )
}

/// IGB-like: many classes, noisy labels ⇒ lower ceiling, as in Table 7.
pub fn igb_like(seed: u64) -> NodeDataset {
    let mut ds = citation_like(
        &CitationConfig {
            name: "igb-like",
            nodes: 8000,
            feat_dim: 128,
            classes: 19,
            avg_degree: 12.0,
            homophily: 0.64,
            degree_alpha: 1.9,
            topic_size: 5,
            p_topic: 0.30,
            p_noise: 0.06,
            train_per_class: 150,
            val_size: 1000,
            test_size: 2000,
        },
        seed,
    );
    // Label noise: IGB's automatically-derived labels are noisy, which is
    // why every method (including FP32) plateaus near 70% in the paper.
    let mut rng = Rng::seed_from_u64(seed ^ 0x1619);
    if let NodeTargets::SingleLabel {
        labels,
        num_classes,
    } = &mut ds.targets
    {
        for l in labels.iter_mut() {
            if rng.bernoulli(0.18) {
                *l = rng.gen_range(*num_classes);
            }
        }
    }
    ds
}

/// OGB-Proteins-like: multi-label protein function prediction (ROC-AUC).
pub fn proteins_ogb_like(seed: u64) -> NodeDataset {
    let base = citation_like(
        &CitationConfig {
            name: "ogb-proteins-like",
            nodes: 4000,
            feat_dim: 48,
            classes: 8,
            avg_degree: 30.0,
            homophily: 0.75,
            degree_alpha: 1.7,
            topic_size: 5,
            p_topic: 0.5,
            p_noise: 0.03,
            train_per_class: 150,
            val_size: 600,
            test_size: 1200,
        },
        seed,
    );
    // Derive 16 binary tasks from the latent classes: task t is "on" for a
    // random half of the classes with high probability, off otherwise.
    let mut rng = Rng::seed_from_u64(seed ^ 0x9127);
    let labels = base.labels().to_vec();
    let classes = base.num_classes();
    let tasks = 16;
    let mut task_on = vec![vec![false; classes]; tasks];
    for row in task_on.iter_mut() {
        for v in row.iter_mut() {
            *v = rng.bernoulli(0.5);
        }
    }
    let targets = Matrix::from_fn(base.num_nodes(), tasks, |i, t| {
        let p = if task_on[t][labels[i]] { 0.66 } else { 0.34 };
        if rng.bernoulli(p) {
            1.0
        } else {
            0.0
        }
    });
    NodeDataset {
        targets: NodeTargets::MultiLabel(targets),
        ..base
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generator_is_deterministic() {
        let a = cora_like(1);
        let b = cora_like(1);
        assert_eq!(a.adj.nnz(), b.adj.nnz());
        assert_eq!(a.features, b.features);
        assert_eq!(a.train_idx, b.train_idx);
    }

    #[test]
    fn different_seeds_differ() {
        let a = cora_like(1);
        let b = cora_like(2);
        assert_ne!(a.features, b.features);
    }

    #[test]
    fn adjacency_is_symmetric_without_self_loops() {
        let ds = cora_like(3);
        let t = ds.adj.transpose();
        assert_eq!(ds.adj, t, "undirected graph must be symmetric");
        for r in 0..ds.num_nodes() {
            assert_eq!(ds.adj.get(r, r), 0.0, "no self-loops in raw adjacency");
        }
    }

    #[test]
    fn features_are_row_normalized() {
        let ds = citeseer_like(4);
        for r in 0..ds.num_nodes() {
            let s: f32 = ds.features.row_slice(r).iter().sum();
            assert!((s - 1.0).abs() < 1e-5, "row {r} sums to {s}");
        }
    }

    #[test]
    fn splits_are_disjoint_and_sized() {
        let ds = cora_like(5);
        let mut all: Vec<usize> = ds
            .train_idx
            .iter()
            .chain(&ds.val_idx)
            .chain(&ds.test_idx)
            .copied()
            .collect();
        let total = all.len();
        all.sort_unstable();
        all.dedup();
        assert_eq!(all.len(), total, "splits overlap");
        assert_eq!(ds.train_idx.len(), 20 * 7);
        assert_eq!(ds.val_idx.len(), 300);
        assert_eq!(ds.test_idx.len(), 600);
    }

    #[test]
    fn train_split_is_class_balanced() {
        let ds = pubmed_like(6);
        let labels = ds.labels();
        let mut counts = vec![0usize; ds.num_classes()];
        for &i in &ds.train_idx {
            counts[labels[i]] += 1;
        }
        assert!(counts.iter().all(|&c| c == 20), "counts={counts:?}");
    }

    #[test]
    fn degree_distribution_has_heavy_tail() {
        let ds = arxiv_like(7);
        let mut degs = ds.adj.row_degrees();
        degs.sort_unstable();
        let median = degs[degs.len() / 2];
        let max = *degs.last().unwrap();
        assert!(
            max as f32 > 6.0 * median.max(1) as f32,
            "expected skewed degrees: median={median}, max={max}"
        );
    }

    #[test]
    fn homophily_is_materialized() {
        let ds = cora_like(8);
        let labels = ds.labels();
        let mut same = 0usize;
        let mut total = 0usize;
        for r in 0..ds.num_nodes() {
            for (c, _) in ds.adj.row(r) {
                total += 1;
                if labels[r] == labels[c] {
                    same += 1;
                }
            }
        }
        let h = same as f64 / total as f64;
        assert!(h > 0.6, "edge homophily {h} too low");
    }

    #[test]
    fn multilabel_targets_are_binary() {
        let ds = proteins_ogb_like(9);
        if let NodeTargets::MultiLabel(t) = &ds.targets {
            assert_eq!(t.cols(), 16);
            assert!(t.data().iter().all(|&v| v == 0.0 || v == 1.0));
            let mean: f32 = t.data().iter().sum::<f32>() / t.numel() as f32;
            assert!(mean > 0.2 && mean < 0.8, "task balance {mean}");
        } else {
            panic!("expected multi-label targets");
        }
    }

    #[test]
    fn relative_scale_ordering_matches_table2() {
        // Spot-check that the suite preserves the paper's size ordering.
        let cora = cora_like(1);
        let pubmed = pubmed_like(1);
        let products = products_like(1);
        assert!(cora.num_nodes() < pubmed.num_nodes());
        assert!(pubmed.num_nodes() < products.num_nodes());
        let reddit = reddit_like(1);
        let avg_deg = |d: &NodeDataset| d.num_edges() as f32 / d.num_nodes() as f32;
        assert!(
            avg_deg(&reddit) > 3.0 * avg_deg(&cora),
            "reddit must be much denser"
        );
    }
}
