//! Graph data substrate for MixQ-GNN: dataset containers, seeded synthetic
//! generators mirroring the paper's evaluation corpora (see DESIGN.md for
//! the substitution rationale), the exact CSL construction with Laplacian
//! positional encodings, block-diagonal batching, and split utilities.

mod csl;
mod graph_dataset;
mod io;
mod linalg;
mod node_dataset;
mod sampling;
mod splits;

pub use csl::{
    circular_skip_graph, csl_dataset, laplacian_pe, permute_graph, CSL_NODES, CSL_SKIPS,
};
pub use graph_dataset::{
    batch_graphs, dd_like, degree_one_hot, imdb_b_like, proteins_like, reddit_b_like,
    reddit_m_like, Batch, GraphDataset, SmallGraph,
};
pub use io::{
    edge_list_to_string, load_edge_list, node_table_to_string, parse_edge_list, parse_node_table,
    save_edge_list,
};
pub use linalg::jacobi_eigh;
pub use node_dataset::{
    arxiv_like, citation_like, citeseer_like, cora_like, igb_like, planetoid_split, products_like,
    proteins_ogb_like, pubmed_like, reddit_like, CitationConfig, NodeDataset, NodeTargets,
};
pub use sampling::sample_neighbors;
pub use splits::stratified_kfold;
