//! The CSL (Circular Skip Links) synthetic dataset, generated *exactly* as
//! in Murphy et al. (2019) and the paper's Table 9: 150 graphs on 41 nodes,
//! 10 isomorphism classes `C(41, s)` for skip lengths
//! `s ∈ {2,3,4,5,6,9,11,12,13,16}`, 15 node-permuted copies per class.
//!
//! CSL graphs are regular, so message passing alone cannot distinguish them;
//! the paper (and this module) equips nodes with Laplacian positional
//! encodings. The paper's information-theoretic observation — features need
//! ≈ log₂(41) ≈ 5.36 bits, so INT4 is marginal and INT2 fails — is what
//! Table 9 tests.

use mixq_sparse::{sym_laplacian, CooEntry, CsrMatrix};
use mixq_tensor::{Matrix, Rng};

use crate::graph_dataset::{GraphDataset, SmallGraph};
use crate::linalg::jacobi_eigh;

/// The standard CSL skip lengths (10 isomorphism classes on 41 nodes).
pub const CSL_SKIPS: [usize; 10] = [2, 3, 4, 5, 6, 9, 11, 12, 13, 16];
pub const CSL_NODES: usize = 41;

/// Builds the circulant graph `C(n, s)`: a cycle 0–1–…–(n−1)–0 plus skip
/// edges `i ↔ (i+s) mod n`.
pub fn circular_skip_graph(n: usize, skip: usize) -> CsrMatrix {
    let mut entries = Vec::with_capacity(4 * n);
    for i in 0..n {
        for j in [(i + 1) % n, (i + skip) % n] {
            if i != j {
                entries.push(CooEntry {
                    row: i,
                    col: j,
                    val: 1.0,
                });
                entries.push(CooEntry {
                    row: j,
                    col: i,
                    val: 1.0,
                });
            }
        }
    }
    CsrMatrix::from_coo(n, n, entries)
}

/// Applies a node permutation `perm` (new index of old node `i` is
/// `perm[i]`) to an adjacency matrix.
pub fn permute_graph(adj: &CsrMatrix, perm: &[usize]) -> CsrMatrix {
    let n = adj.rows();
    assert_eq!(perm.len(), n);
    let mut entries = Vec::with_capacity(adj.nnz());
    for r in 0..n {
        for (c, v) in adj.row(r) {
            entries.push(CooEntry {
                row: perm[r],
                col: perm[c],
                val: v,
            });
        }
    }
    CsrMatrix::from_coo(n, n, entries)
}

/// Laplacian positional encodings: each node's features are its entries in
/// the `dim` eigenvectors of the symmetric normalized Laplacian with the
/// smallest non-trivial eigenvalues. Eigenvector signs are randomized (the
/// standard augmentation — eigenvectors are only defined up to sign).
pub fn laplacian_pe(adj: &CsrMatrix, dim: usize, rng: &mut Rng) -> Matrix {
    let n = adj.rows();
    let l = sym_laplacian(adj);
    let dense = Matrix::from_vec(n, n, l.to_dense());
    let (_, vecs) = jacobi_eigh(&dense, 60);
    let dim = dim.min(n.saturating_sub(1));
    let signs: Vec<f32> = (0..dim)
        .map(|_| if rng.bernoulli(0.5) { 1.0 } else { -1.0 })
        .collect();
    // Skip the trivial (constant) eigenvector at index 0.
    Matrix::from_fn(n, dim, |r, c| vecs.get(r, c + 1) * signs[c])
}

/// Generates the full CSL dataset: `copies` node-permuted instances of each
/// of the 10 classes, with `pe_dim`-dimensional Laplacian PEs as features.
pub fn csl_dataset(seed: u64, copies: usize, pe_dim: usize) -> GraphDataset {
    let mut rng = Rng::seed_from_u64(seed);
    let mut graphs = Vec::with_capacity(CSL_SKIPS.len() * copies);
    let mut labels = Vec::with_capacity(CSL_SKIPS.len() * copies);
    for (label, &skip) in CSL_SKIPS.iter().enumerate() {
        let base = circular_skip_graph(CSL_NODES, skip);
        for _ in 0..copies {
            let mut perm: Vec<usize> = (0..CSL_NODES).collect();
            rng.shuffle(&mut perm);
            let adj = permute_graph(&base, &perm);
            let features = laplacian_pe(&adj, pe_dim, &mut rng);
            graphs.push(SmallGraph { adj, features });
            labels.push(label);
        }
    }
    GraphDataset {
        name: "CSL".into(),
        graphs,
        labels,
        num_classes: 10,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn csl_graph_is_4_regular() {
        for &s in &CSL_SKIPS {
            let g = circular_skip_graph(CSL_NODES, s);
            for d in g.row_degrees() {
                assert_eq!(d, 4, "C(41,{s}) must be 4-regular");
            }
        }
    }

    #[test]
    fn csl_classes_are_structurally_distinct() {
        // Count triangles per graph — a cheap isomorphism-sensitive
        // statistic that differs across several skip lengths.
        let tri = |g: &CsrMatrix| {
            let mut t = 0usize;
            for r in 0..g.rows() {
                for (c1, _) in g.row(r) {
                    for (c2, _) in g.row(r) {
                        if c1 < c2 && g.get(c1, c2) != 0.0 {
                            t += 1;
                        }
                    }
                }
            }
            t
        };
        let t2 = tri(&circular_skip_graph(CSL_NODES, 2));
        let t5 = tri(&circular_skip_graph(CSL_NODES, 5));
        assert_ne!(t2, t5, "skip 2 and 5 should differ in triangle count");
    }

    #[test]
    fn permutation_preserves_degree_sequence() {
        let g = circular_skip_graph(11, 3);
        let mut rng = Rng::seed_from_u64(4);
        let mut perm: Vec<usize> = (0..11).collect();
        rng.shuffle(&mut perm);
        let p = permute_graph(&g, &perm);
        assert_eq!(p.nnz(), g.nnz());
        let mut d1 = g.row_degrees();
        let mut d2 = p.row_degrees();
        d1.sort_unstable();
        d2.sort_unstable();
        assert_eq!(d1, d2);
    }

    #[test]
    fn laplacian_pe_shape_and_scale() {
        let g = circular_skip_graph(CSL_NODES, 3);
        let mut rng = Rng::seed_from_u64(1);
        let pe = laplacian_pe(&g, 20, &mut rng);
        assert_eq!(pe.shape(), (41, 20));
        // Eigenvectors are unit-norm: column norms ≈ 1.
        for c in 0..20 {
            let norm: f32 = (0..41).map(|r| pe.get(r, c) * pe.get(r, c)).sum();
            assert!((norm - 1.0).abs() < 1e-2, "column {c} norm {norm}");
        }
    }

    #[test]
    fn dataset_has_150_graphs_10_classes() {
        let ds = csl_dataset(1, 15, 16);
        assert_eq!(ds.len(), 150);
        assert_eq!(ds.num_classes, 10);
        let mut counts = [0usize; 10];
        for &l in &ds.labels {
            counts[l] += 1;
        }
        assert!(counts.iter().all(|&c| c == 15));
        for g in &ds.graphs {
            assert_eq!(g.num_nodes(), CSL_NODES);
            assert_eq!(g.features.cols(), 16);
        }
    }
}
