//! Cross-validation splits for graph-level tasks.

use mixq_tensor::Rng;

/// Stratified k-fold split: returns `k` `(train, test)` index pairs whose
/// test folds partition `0..labels.len()` and preserve class proportions.
pub fn stratified_kfold(
    rng: &mut Rng,
    labels: &[usize],
    num_classes: usize,
    k: usize,
) -> Vec<(Vec<usize>, Vec<usize>)> {
    assert!(k >= 2, "k-fold needs k ≥ 2");
    // Shuffle within each class, then deal class members round-robin over
    // the folds so every fold sees every class.
    let mut per_class: Vec<Vec<usize>> = vec![Vec::new(); num_classes];
    for (i, &l) in labels.iter().enumerate() {
        per_class[l].push(i);
    }
    let mut fold_of = vec![0usize; labels.len()];
    for members in per_class.iter_mut() {
        rng.shuffle(members);
        for (j, &i) in members.iter().enumerate() {
            fold_of[i] = j % k;
        }
    }
    (0..k)
        .map(|f| {
            let mut train = Vec::new();
            let mut test = Vec::new();
            for (i, &fold) in fold_of.iter().enumerate() {
                if fold == f {
                    test.push(i);
                } else {
                    train.push(i);
                }
            }
            (train, test)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn folds_partition_the_dataset() {
        let labels: Vec<usize> = (0..100).map(|i| i % 3).collect();
        let mut rng = Rng::seed_from_u64(1);
        let folds = stratified_kfold(&mut rng, &labels, 3, 10);
        assert_eq!(folds.len(), 10);
        let mut all_test: Vec<usize> = folds.iter().flat_map(|(_, t)| t.clone()).collect();
        all_test.sort_unstable();
        assert_eq!(all_test, (0..100).collect::<Vec<_>>());
        for (train, test) in &folds {
            assert_eq!(train.len() + test.len(), 100);
            for t in test {
                assert!(!train.contains(t));
            }
        }
    }

    #[test]
    fn folds_are_stratified() {
        let labels: Vec<usize> = (0..120).map(|i| i % 4).collect();
        let mut rng = Rng::seed_from_u64(2);
        for (_, test) in stratified_kfold(&mut rng, &labels, 4, 5) {
            let mut counts = vec![0usize; 4];
            for &i in &test {
                counts[labels[i]] += 1;
            }
            for &c in &counts {
                assert_eq!(c, 6, "each fold must hold 6 of each class, got {counts:?}");
            }
        }
    }

    #[test]
    fn unbalanced_classes_spread_over_folds() {
        let mut labels = vec![0usize; 37];
        labels.extend(vec![1usize; 13]);
        let mut rng = Rng::seed_from_u64(3);
        for (_, test) in stratified_kfold(&mut rng, &labels, 2, 5) {
            let minority = test.iter().filter(|&&i| labels[i] == 1).count();
            assert!((2..=3).contains(&minority), "minority count {minority}");
        }
    }
}
