//! Graph-classification datasets (TUDataset-style) and batching.
//!
//! Each generator mirrors one TUDataset used in the paper's Table 8 at a
//! reduced scale: the classes differ by the structural signal that makes the
//! real dataset learnable (density, hubs, rings, communities), and datasets
//! without node features use degree one-hot encodings exactly as the paper
//! does ("for datasets lacking node features, one-hot encoding based on node
//! degree was applied").

use std::collections::HashSet;

use mixq_sparse::{CooEntry, CsrMatrix};
use mixq_tensor::{Matrix, Rng};

/// One graph of a multi-graph dataset.
#[derive(Debug, Clone)]
pub struct SmallGraph {
    /// Symmetric unit-weight adjacency, no self-loops.
    pub adj: CsrMatrix,
    /// Node features, `n×f`.
    pub features: Matrix,
}

impl SmallGraph {
    pub fn num_nodes(&self) -> usize {
        self.adj.rows()
    }

    pub fn num_edges(&self) -> usize {
        self.adj.nnz()
    }
}

/// A graph classification dataset.
#[derive(Debug, Clone)]
pub struct GraphDataset {
    pub name: String,
    pub graphs: Vec<SmallGraph>,
    pub labels: Vec<usize>,
    pub num_classes: usize,
}

impl GraphDataset {
    pub fn len(&self) -> usize {
        self.graphs.len()
    }

    pub fn is_empty(&self) -> bool {
        self.graphs.is_empty()
    }

    pub fn feat_dim(&self) -> usize {
        self.graphs[0].features.cols()
    }

    pub fn avg_nodes(&self) -> f32 {
        self.graphs
            .iter()
            .map(|g| g.num_nodes() as f32)
            .sum::<f32>()
            / self.len() as f32
    }

    pub fn avg_edges(&self) -> f32 {
        self.graphs
            .iter()
            .map(|g| g.num_edges() as f32)
            .sum::<f32>()
            / self.len() as f32
    }
}

/// A batch of graphs merged into one block-diagonal graph.
pub struct Batch {
    /// Block-diagonal adjacency over all batch nodes.
    pub adj: CsrMatrix,
    /// Stacked node features.
    pub features: Matrix,
    /// `offsets[g]..offsets[g+1]` are the node rows of graph `g`.
    pub offsets: Vec<usize>,
}

/// Merges graphs into a block-diagonal batch (the standard trick that turns
/// graph-level minibatching into one big sparse product).
pub fn batch_graphs(graphs: &[&SmallGraph]) -> Batch {
    assert!(!graphs.is_empty());
    let f = graphs[0].features.cols();
    let total: usize = graphs.iter().map(|g| g.num_nodes()).sum();
    let mut offsets = Vec::with_capacity(graphs.len() + 1);
    offsets.push(0);
    let mut entries = Vec::new();
    let mut features = Matrix::zeros(total, f);
    let mut base = 0usize;
    for g in graphs {
        assert_eq!(g.features.cols(), f, "all graphs must share feature dim");
        for r in 0..g.num_nodes() {
            for (c, v) in g.adj.row(r) {
                entries.push(CooEntry {
                    row: base + r,
                    col: base + c,
                    val: v,
                });
            }
            features
                .row_slice_mut(base + r)
                .copy_from_slice(g.features.row_slice(r));
        }
        base += g.num_nodes();
        offsets.push(base);
    }
    Batch {
        adj: CsrMatrix::from_coo(total, total, entries),
        features,
        offsets,
    }
}

// ---- low-level graph builders ---------------------------------------------

/// Undirected edge accumulator that deduplicates and rejects self-loops.
struct EdgeSet {
    n: usize,
    seen: HashSet<(usize, usize)>,
}

impl EdgeSet {
    fn new(n: usize) -> Self {
        Self {
            n,
            seen: HashSet::new(),
        }
    }

    fn add(&mut self, u: usize, v: usize) {
        if u == v || u >= self.n || v >= self.n {
            return;
        }
        self.seen.insert((u.min(v), u.max(v)));
    }

    fn into_csr(self) -> CsrMatrix {
        let mut entries = Vec::with_capacity(self.seen.len() * 2);
        for (u, v) in self.seen {
            entries.push(CooEntry {
                row: u,
                col: v,
                val: 1.0,
            });
            entries.push(CooEntry {
                row: v,
                col: u,
                val: 1.0,
            });
        }
        CsrMatrix::from_coo(self.n, self.n, entries)
    }
}

/// Erdős–Rényi edges with probability `p`, plus a random spanning path so
/// the graph is connected.
fn er_connected(rng: &mut Rng, n: usize, p: f64) -> CsrMatrix {
    let mut es = EdgeSet::new(n);
    let mut order: Vec<usize> = (0..n).collect();
    rng.shuffle(&mut order);
    for w in order.windows(2) {
        es.add(w[0], w[1]);
    }
    for u in 0..n {
        for v in (u + 1)..n {
            if rng.bernoulli(p) {
                es.add(u, v);
            }
        }
    }
    es.into_csr()
}

/// Star-like graph with `hubs` hub nodes; every leaf connects to a random
/// hub, hubs are connected to each other, plus a few random extra edges.
fn hub_graph(rng: &mut Rng, n: usize, hubs: usize, extra: usize) -> CsrMatrix {
    assert!(hubs >= 1 && hubs < n);
    let mut es = EdgeSet::new(n);
    for h in 0..hubs {
        for h2 in (h + 1)..hubs {
            es.add(h, h2);
        }
    }
    for v in hubs..n {
        es.add(v, rng.gen_range(hubs));
    }
    for _ in 0..extra {
        es.add(rng.gen_range(n), rng.gen_range(n));
    }
    es.into_csr()
}

/// Degree one-hot features with `bins` buckets (the last bucket saturates).
pub fn degree_one_hot(adj: &CsrMatrix, bins: usize) -> Matrix {
    let degs = adj.row_degrees();
    Matrix::from_fn(adj.rows(), bins, |r, c| {
        let b = degs[r].min(bins - 1);
        if b == c {
            1.0
        } else {
            0.0
        }
    })
}

// ---- TU-style dataset generators -------------------------------------------

/// IMDB-B-like: ego-network genre classification — class 0 is a single dense
/// community (ER), class 1 is two loosely-joined communities.
pub fn imdb_b_like(seed: u64, num_graphs: usize) -> GraphDataset {
    let mut rng = Rng::seed_from_u64(seed);
    let bins = 20;
    let mut graphs = Vec::with_capacity(num_graphs);
    let mut labels = Vec::with_capacity(num_graphs);
    for i in 0..num_graphs {
        let label = i % 2;
        let n = 14 + rng.gen_range(12);
        let adj = if label == 0 {
            er_connected(&mut rng, n, 0.35)
        } else {
            // Two communities with a sparse bridge.
            let half = n / 2;
            let a = er_connected(&mut rng, half, 0.55);
            let b = er_connected(&mut rng, n - half, 0.55);
            let mut es = EdgeSet::new(n);
            for r in 0..half {
                for (c, _) in a.row(r) {
                    es.add(r, c);
                }
            }
            for r in 0..(n - half) {
                for (c, _) in b.row(r) {
                    es.add(half + r, half + c);
                }
            }
            es.add(rng.gen_range(half), half + rng.gen_range(n - half));
            es.into_csr()
        };
        let features = degree_one_hot(&adj, bins);
        graphs.push(SmallGraph { adj, features });
        labels.push(label);
    }
    GraphDataset {
        name: "imdb-b-like".into(),
        graphs,
        labels,
        num_classes: 2,
    }
}

/// PROTEINS-like: chains with branches (class 0) vs structures containing
/// rings (class 1); 3-dimensional node-type features as in the original.
pub fn proteins_like(seed: u64, num_graphs: usize) -> GraphDataset {
    let mut rng = Rng::seed_from_u64(seed);
    let mut graphs = Vec::with_capacity(num_graphs);
    let mut labels = Vec::with_capacity(num_graphs);
    for i in 0..num_graphs {
        let label = i % 2;
        let n = 25 + rng.gen_range(30);
        let mut es = EdgeSet::new(n);
        // Backbone path.
        for v in 1..n {
            es.add(v - 1, v);
        }
        if label == 0 {
            // Side branches.
            for _ in 0..n / 4 {
                let a = rng.gen_range(n);
                let b = rng.gen_range(n);
                es.add(a, b);
            }
        } else {
            // Close several short rings along the backbone.
            for _ in 0..n / 6 {
                let s = rng.gen_range(n.saturating_sub(6).max(1));
                let len = 4 + rng.gen_range(3);
                es.add(s, (s + len).min(n - 1));
            }
        }
        let adj = es.into_csr();
        // 3 node types, correlated with position parity + degree.
        let degs = adj.row_degrees();
        let features = Matrix::from_fn(n, 3, |r, c| {
            let t = if degs[r] >= 3 { 2 } else { r % 2 };
            if t == c {
                1.0
            } else {
                0.0
            }
        });
        graphs.push(SmallGraph { adj, features });
        labels.push(label);
    }
    GraphDataset {
        name: "proteins-like".into(),
        graphs,
        labels,
        num_classes: 2,
    }
}

/// D&D-like: larger graphs; class 1 hides a planted clique in a sparse
/// background. Node features are degree one-hots in a wide (89-ish) space.
pub fn dd_like(seed: u64, num_graphs: usize) -> GraphDataset {
    let mut rng = Rng::seed_from_u64(seed);
    let bins = 30;
    let mut graphs = Vec::with_capacity(num_graphs);
    let mut labels = Vec::with_capacity(num_graphs);
    for i in 0..num_graphs {
        let label = i % 2;
        let n = 60 + rng.gen_range(60);
        let mut adj = er_connected(&mut rng, n, 3.0 / n as f64);
        if label == 1 {
            let k = 8 + rng.gen_range(5);
            let members = rng.sample_indices(n, k);
            let mut es = EdgeSet::new(n);
            for r in 0..n {
                for (c, _) in adj.row(r) {
                    es.add(r, c);
                }
            }
            for a in 0..k {
                for b in (a + 1)..k {
                    es.add(members[a], members[b]);
                }
            }
            adj = es.into_csr();
        }
        let features = degree_one_hot(&adj, bins);
        graphs.push(SmallGraph { adj, features });
        labels.push(label);
    }
    GraphDataset {
        name: "dd-like".into(),
        graphs,
        labels,
        num_classes: 2,
    }
}

/// REDDIT-B-like: discussion-thread graphs — one dominant hub (class 0) vs
/// two interacting hubs (class 1); extreme degree skew like the original.
pub fn reddit_b_like(seed: u64, num_graphs: usize) -> GraphDataset {
    let mut rng = Rng::seed_from_u64(seed);
    let bins = 40;
    let mut graphs = Vec::with_capacity(num_graphs);
    let mut labels = Vec::with_capacity(num_graphs);
    for i in 0..num_graphs {
        let label = i % 2;
        let n = 60 + rng.gen_range(80);
        let hubs = if label == 0 { 1 } else { 2 };
        let adj = hub_graph(&mut rng, n, hubs, n / 5);
        let features = degree_one_hot(&adj, bins);
        graphs.push(SmallGraph { adj, features });
        labels.push(label);
    }
    GraphDataset {
        name: "reddit-b-like".into(),
        graphs,
        labels,
        num_classes: 2,
    }
}

/// REDDIT-M-like: five classes distinguished by the number of hubs (1–5).
pub fn reddit_m_like(seed: u64, num_graphs: usize) -> GraphDataset {
    let mut rng = Rng::seed_from_u64(seed);
    let bins = 40;
    let mut graphs = Vec::with_capacity(num_graphs);
    let mut labels = Vec::with_capacity(num_graphs);
    for i in 0..num_graphs {
        let label = i % 5;
        let n = 70 + rng.gen_range(80);
        let adj = hub_graph(&mut rng, n, label + 1, n / 6);
        let features = degree_one_hot(&adj, bins);
        graphs.push(SmallGraph { adj, features });
        labels.push(label);
    }
    GraphDataset {
        name: "reddit-m-like".into(),
        graphs,
        labels,
        num_classes: 5,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn batch_is_block_diagonal() {
        let ds = imdb_b_like(1, 4);
        let refs: Vec<&SmallGraph> = ds.graphs.iter().collect();
        let batch = batch_graphs(&refs);
        assert_eq!(batch.offsets.len(), 5);
        assert_eq!(
            *batch.offsets.last().unwrap(),
            ds.graphs.iter().map(|g| g.num_nodes()).sum::<usize>()
        );
        // No cross-graph edges.
        for g in 0..4 {
            let (s, e) = (batch.offsets[g], batch.offsets[g + 1]);
            for r in s..e {
                for (c, _) in batch.adj.row(r) {
                    assert!(c >= s && c < e, "edge {r}->{c} escapes graph {g}");
                }
            }
        }
        // Edge counts preserved.
        assert_eq!(
            batch.adj.nnz(),
            ds.graphs.iter().map(|g| g.num_edges()).sum::<usize>()
        );
    }

    #[test]
    fn batch_preserves_features() {
        let ds = proteins_like(2, 3);
        let refs: Vec<&SmallGraph> = ds.graphs.iter().collect();
        let batch = batch_graphs(&refs);
        let g1 = &ds.graphs[1];
        let base = batch.offsets[1];
        for r in 0..g1.num_nodes() {
            assert_eq!(batch.features.row_slice(base + r), g1.features.row_slice(r));
        }
    }

    #[test]
    fn generators_are_deterministic_and_balanced() {
        for (name, ds) in [
            ("imdb", imdb_b_like(7, 40)),
            ("proteins", proteins_like(7, 40)),
            ("dd", dd_like(7, 20)),
            ("reddit-b", reddit_b_like(7, 40)),
        ] {
            let mut counts = vec![0usize; ds.num_classes];
            for &l in &ds.labels {
                counts[l] += 1;
            }
            let max = counts.iter().max().unwrap();
            let min = counts.iter().min().unwrap();
            assert!(max - min <= 1, "{name} classes unbalanced: {counts:?}");
            for g in &ds.graphs {
                assert_eq!(g.adj, g.adj.transpose(), "{name} graph not symmetric");
                assert!(g.num_nodes() > 0);
            }
        }
        assert_eq!(
            imdb_b_like(7, 10).graphs[3].adj,
            imdb_b_like(7, 10).graphs[3].adj
        );
    }

    #[test]
    fn reddit_m_has_five_classes() {
        let ds = reddit_m_like(3, 25);
        assert_eq!(ds.num_classes, 5);
        let distinct: std::collections::HashSet<_> = ds.labels.iter().collect();
        assert_eq!(distinct.len(), 5);
    }

    #[test]
    fn reddit_graphs_have_hub_degree_skew() {
        let ds = reddit_b_like(5, 10);
        for g in &ds.graphs {
            let max_deg = *g.adj.row_degrees().iter().max().unwrap();
            assert!(
                max_deg as f32 > g.num_nodes() as f32 * 0.3,
                "expected a dominant hub"
            );
        }
    }

    #[test]
    fn degree_one_hot_saturates() {
        let adj = hub_graph(&mut Rng::seed_from_u64(1), 50, 1, 0);
        let f = degree_one_hot(&adj, 10);
        // The hub has degree 49 ≥ 10 ⇒ last bucket.
        assert_eq!(f.get(0, 9), 1.0);
        for r in 0..50 {
            let s: f32 = f.row_slice(r).iter().sum();
            assert_eq!(s, 1.0, "one-hot must have exactly one bit");
        }
    }
}
