//! Plain-text dataset I/O so real datasets can be plugged in without any
//! framework: an edge-list format for graphs and a TSV format for node
//! features/labels. All synthetic experiments in this repository also
//! round-trip through these loaders (tested below).
//!
//! Edge list (`#`-comments allowed, whitespace-separated):
//!
//! ```text
//! # src dst [weight]
//! 0 1
//! 1 2 0.5
//! ```
//!
//! Node table: one row per node — `label` followed by `f` feature values.

use std::io::Write;
use std::path::Path;

use mixq_sparse::{CooEntry, CsrMatrix};
use mixq_tensor::{Matrix, MixqError, MixqResult};

/// Parses an edge list into a (directed) adjacency; `num_nodes` must bound
/// every endpoint. Duplicate edges sum their weights.
pub fn parse_edge_list(text: &str, num_nodes: usize) -> MixqResult<CsrMatrix> {
    let err = |detail: String| MixqError::parse("edge list", detail);
    let mut entries = Vec::new();
    for (lineno, raw) in text.lines().enumerate() {
        let line = raw.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        let mut it = line.split_whitespace();
        let src: usize = it
            .next()
            .and_then(|v| v.parse().ok())
            .ok_or_else(|| err(format!("line {}: bad source node", lineno + 1)))?;
        let dst: usize = it
            .next()
            .and_then(|v| v.parse().ok())
            .ok_or_else(|| err(format!("line {}: bad destination node", lineno + 1)))?;
        let w: f32 = match it.next() {
            Some(v) => v
                .parse()
                .map_err(|e| err(format!("line {}: bad weight: {e}", lineno + 1)))?,
            None => 1.0,
        };
        if src >= num_nodes || dst >= num_nodes {
            return Err(err(format!(
                "line {}: node id out of range (n={num_nodes})",
                lineno + 1
            )));
        }
        entries.push(CooEntry {
            row: src,
            col: dst,
            val: w,
        });
    }
    Ok(CsrMatrix::from_coo(num_nodes, num_nodes, entries))
}

/// Serializes an adjacency as an edge list (weights printed when ≠ 1).
pub fn edge_list_to_string(adj: &CsrMatrix) -> String {
    let mut out = String::from("# src dst [weight]\n");
    for r in 0..adj.rows() {
        for (c, v) in adj.row(r) {
            if v == 1.0 {
                out.push_str(&format!("{r} {c}\n"));
            } else {
                out.push_str(&format!("{r} {c} {v:?}\n"));
            }
        }
    }
    out
}

/// Parses a node table: each non-comment line is `label f0 f1 …`.
/// Returns `(labels, features)`; every row must have the same feature count.
pub fn parse_node_table(text: &str) -> MixqResult<(Vec<usize>, Matrix)> {
    let err = |detail: String| MixqError::parse("node table", detail);
    let mut labels = Vec::new();
    let mut rows: Vec<Vec<f32>> = Vec::new();
    let mut width: Option<usize> = None;
    for (lineno, raw) in text.lines().enumerate() {
        let line = raw.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        let mut it = line.split_whitespace();
        let label: usize = it
            .next()
            .and_then(|v| v.parse().ok())
            .ok_or_else(|| err(format!("line {}: bad label", lineno + 1)))?;
        let feats: Vec<f32> = it
            .map(|v| {
                v.parse::<f32>()
                    .map_err(|e| err(format!("line {}: bad feature: {e}", lineno + 1)))
            })
            .collect::<Result<_, _>>()?;
        match width {
            None => width = Some(feats.len()),
            Some(w) if w != feats.len() => {
                return Err(err(format!(
                    "line {}: expected {w} features, found {}",
                    lineno + 1,
                    feats.len()
                )))
            }
            _ => {}
        }
        labels.push(label);
        rows.push(feats);
    }
    if rows.is_empty() {
        return Err(err("empty node table".into()));
    }
    let f = width.unwrap();
    let data: Vec<f32> = rows.into_iter().flatten().collect();
    Ok((labels.clone(), Matrix::from_vec(labels.len(), f, data)))
}

/// Serializes labels + features as a node table.
pub fn node_table_to_string(labels: &[usize], features: &Matrix) -> String {
    assert_eq!(labels.len(), features.rows());
    let mut out = String::from("# label f0 f1 …\n");
    for (r, &l) in labels.iter().enumerate() {
        out.push_str(&format!("{l}"));
        for &v in features.row_slice(r) {
            out.push_str(&format!(" {v:?}"));
        }
        out.push('\n');
    }
    out
}

/// Loads an edge-list file.
pub fn load_edge_list(path: impl AsRef<Path>, num_nodes: usize) -> MixqResult<CsrMatrix> {
    let text = std::fs::read_to_string(path)?;
    parse_edge_list(&text, num_nodes)
}

/// Saves an adjacency as an edge-list file.
pub fn save_edge_list(adj: &CsrMatrix, path: impl AsRef<Path>) -> MixqResult<()> {
    std::fs::File::create(path)?.write_all(edge_list_to_string(adj).as_bytes())?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::node_dataset::cora_like;

    #[test]
    fn edge_list_round_trip() {
        let ds = cora_like(3);
        let text = edge_list_to_string(&ds.adj);
        let back = parse_edge_list(&text, ds.num_nodes()).unwrap();
        assert_eq!(back, ds.adj);
    }

    #[test]
    fn node_table_round_trip() {
        let ds = cora_like(4);
        let text = node_table_to_string(ds.labels(), &ds.features);
        let (labels, feats) = parse_node_table(&text).unwrap();
        assert_eq!(labels, ds.labels());
        assert_eq!(feats, ds.features);
    }

    #[test]
    fn parses_comments_weights_and_defaults() {
        let text = "# a comment\n0 1\n1 2 0.25 # trailing comment\n\n";
        let adj = parse_edge_list(text, 3).unwrap();
        assert_eq!(adj.get(0, 1), 1.0);
        assert_eq!(adj.get(1, 2), 0.25);
        assert_eq!(adj.nnz(), 2);
    }

    #[test]
    fn rejects_malformed_input() {
        assert!(parse_edge_list("0 9", 3).is_err(), "out-of-range node");
        assert!(parse_edge_list("0", 3).is_err(), "missing endpoint");
        assert!(parse_edge_list("a b", 3).is_err(), "non-numeric");
        assert!(parse_node_table("").is_err(), "empty table");
        assert!(parse_node_table("0 1.0\n1 2.0 3.0").is_err(), "ragged rows");
        assert!(parse_node_table("x 1.0").is_err(), "bad label");
    }

    #[test]
    fn file_round_trip() {
        let ds = cora_like(5);
        let path = std::env::temp_dir().join("mixq_edges_test.txt");
        save_edge_list(&ds.adj, &path).unwrap();
        let back = load_edge_list(&path, ds.num_nodes()).unwrap();
        assert_eq!(back, ds.adj);
        let _ = std::fs::remove_file(path);
    }
}
