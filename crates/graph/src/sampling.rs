//! Neighbourhood sampling (GraphSAGE): keeping at most `k` random
//! in-neighbours per node bounds in-degrees, which §5.3.2 identifies as the
//! reason MixQ works well on GraphSAGE without structure-aware quantizers —
//! bounded in-degree bounds the aggregated-value magnitude spread that
//! causes quantization error.

use mixq_sparse::{CooEntry, CsrMatrix};
use mixq_tensor::Rng;

/// Returns a copy of `adj` where every row keeps at most `k` uniformly
/// sampled entries (edge weights preserved).
pub fn sample_neighbors(adj: &CsrMatrix, k: usize, rng: &mut Rng) -> CsrMatrix {
    assert!(k > 0, "sample_neighbors needs k > 0");
    let mut entries = Vec::with_capacity(adj.nnz().min(adj.rows() * k));
    for r in 0..adj.rows() {
        let row: Vec<(usize, f32)> = adj.row(r).collect();
        if row.len() <= k {
            for (c, v) in row {
                entries.push(CooEntry {
                    row: r,
                    col: c,
                    val: v,
                });
            }
        } else {
            for &pick in &rng.sample_indices(row.len(), k) {
                let (c, v) = row[pick];
                entries.push(CooEntry {
                    row: r,
                    col: c,
                    val: v,
                });
            }
        }
    }
    CsrMatrix::from_coo(adj.rows(), adj.cols(), entries)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dense_row(n: usize) -> CsrMatrix {
        let entries = (0..n)
            .flat_map(|r| {
                (0..n).filter(move |&c| c != r).map(move |c| CooEntry {
                    row: r,
                    col: c,
                    val: (r * n + c) as f32,
                })
            })
            .collect();
        CsrMatrix::from_coo(n, n, entries)
    }

    #[test]
    fn caps_every_row_at_k() {
        let adj = dense_row(12);
        let mut rng = Rng::seed_from_u64(1);
        let s = sample_neighbors(&adj, 4, &mut rng);
        assert!(s.row_degrees().iter().all(|&d| d == 4));
    }

    #[test]
    fn keeps_small_rows_intact_with_weights() {
        let adj = CsrMatrix::from_coo(
            3,
            3,
            vec![
                CooEntry {
                    row: 0,
                    col: 1,
                    val: 2.5,
                },
                CooEntry {
                    row: 0,
                    col: 2,
                    val: -1.0,
                },
            ],
        );
        let mut rng = Rng::seed_from_u64(2);
        let s = sample_neighbors(&adj, 5, &mut rng);
        assert_eq!(s, adj);
    }

    #[test]
    fn sampled_edges_are_a_subset() {
        let adj = dense_row(10);
        let mut rng = Rng::seed_from_u64(3);
        let s = sample_neighbors(&adj, 3, &mut rng);
        for r in 0..10 {
            for (c, v) in s.row(r) {
                assert_eq!(adj.get(r, c), v, "sampled edge must exist in the original");
            }
        }
    }

    #[test]
    fn reduces_max_degree_skew() {
        // A star graph: hub in-degree n−1 becomes ≤ k.
        let n = 50;
        let entries = (1..n)
            .map(|c| CooEntry {
                row: 0,
                col: c,
                val: 1.0,
            })
            .collect();
        let adj = CsrMatrix::from_coo(n, n, entries);
        let mut rng = Rng::seed_from_u64(4);
        let s = sample_neighbors(&adj, 5, &mut rng);
        assert_eq!(s.row_degrees()[0], 5);
    }
}
