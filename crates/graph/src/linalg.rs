//! Small dense symmetric eigensolver (cyclic Jacobi), used for Laplacian
//! positional encodings on the CSL graphs (n = 41, so a dense solver is the
//! right tool).

use mixq_tensor::Matrix;

/// Eigendecomposition of a symmetric matrix by the cyclic Jacobi method.
///
/// Returns `(eigenvalues, eigenvectors)` with eigenvalues sorted ascending
/// and eigenvectors as the *columns* of the returned matrix, in the same
/// order. The input must be square and (numerically) symmetric.
pub fn jacobi_eigh(a: &Matrix, max_sweeps: usize) -> (Vec<f32>, Matrix) {
    let n = a.rows();
    assert_eq!(a.cols(), n, "jacobi_eigh requires a square matrix");
    let mut m = a.clone();
    let mut v = Matrix::from_fn(n, n, |r, c| if r == c { 1.0 } else { 0.0 });

    for _ in 0..max_sweeps {
        // Off-diagonal Frobenius norm — the convergence measure.
        let mut off = 0f32;
        for r in 0..n {
            for c in (r + 1)..n {
                off += m.get(r, c) * m.get(r, c);
            }
        }
        if off < 1e-18 {
            break;
        }
        for p in 0..n {
            for q in (p + 1)..n {
                let apq = m.get(p, q);
                if apq.abs() < 1e-12 {
                    continue;
                }
                let app = m.get(p, p);
                let aqq = m.get(q, q);
                let theta = (aqq - app) / (2.0 * apq);
                // Stable rotation: t = sign(θ)/(|θ| + sqrt(θ²+1)).
                let t = if theta >= 0.0 {
                    1.0 / (theta + (theta * theta + 1.0).sqrt())
                } else {
                    -1.0 / (-theta + (theta * theta + 1.0).sqrt())
                };
                let c = 1.0 / (t * t + 1.0).sqrt();
                let s = t * c;

                // Rotate rows/columns p and q of M.
                for k in 0..n {
                    let mkp = m.get(k, p);
                    let mkq = m.get(k, q);
                    m.set(k, p, c * mkp - s * mkq);
                    m.set(k, q, s * mkp + c * mkq);
                }
                for k in 0..n {
                    let mpk = m.get(p, k);
                    let mqk = m.get(q, k);
                    m.set(p, k, c * mpk - s * mqk);
                    m.set(q, k, s * mpk + c * mqk);
                }
                // Accumulate the rotation into the eigenvector matrix.
                for k in 0..n {
                    let vkp = v.get(k, p);
                    let vkq = v.get(k, q);
                    v.set(k, p, c * vkp - s * vkq);
                    v.set(k, q, s * vkp + c * vkq);
                }
            }
        }
    }

    let mut order: Vec<usize> = (0..n).collect();
    let diag: Vec<f32> = (0..n).map(|i| m.get(i, i)).collect();
    order.sort_by(|&i, &j| diag[i].partial_cmp(&diag[j]).unwrap());
    let eigvals: Vec<f32> = order.iter().map(|&i| diag[i]).collect();
    let eigvecs = Matrix::from_fn(n, n, |r, c| v.get(r, order[c]));
    (eigvals, eigvecs)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sym_random(n: usize, seed: u64) -> Matrix {
        let mut rng = mixq_tensor::Rng::seed_from_u64(seed);
        let b = Matrix::from_fn(n, n, |_, _| rng.normal());
        // A = (B + Bᵀ)/2 is symmetric.
        b.zip(&b.transpose(), |x, y| 0.5 * (x + y))
    }

    #[test]
    fn diagonal_matrix_eigenvalues() {
        let a = Matrix::from_vec(3, 3, vec![3.0, 0.0, 0.0, 0.0, 1.0, 0.0, 0.0, 0.0, 2.0]);
        let (vals, _) = jacobi_eigh(&a, 30);
        assert!((vals[0] - 1.0).abs() < 1e-5);
        assert!((vals[1] - 2.0).abs() < 1e-5);
        assert!((vals[2] - 3.0).abs() < 1e-5);
    }

    #[test]
    fn known_2x2() {
        // [[2,1],[1,2]] has eigenvalues 1 and 3.
        let a = Matrix::from_vec(2, 2, vec![2.0, 1.0, 1.0, 2.0]);
        let (vals, vecs) = jacobi_eigh(&a, 30);
        assert!((vals[0] - 1.0).abs() < 1e-5);
        assert!((vals[1] - 3.0).abs() < 1e-5);
        // Eigenvector of λ=3 is (1,1)/√2 up to sign.
        let v = (vecs.get(0, 1), vecs.get(1, 1));
        assert!((v.0.abs() - std::f32::consts::FRAC_1_SQRT_2).abs() < 1e-4);
        assert!((v.0 - v.1).abs() < 1e-4 || (v.0 + v.1).abs() < 1e-4);
    }

    #[test]
    fn satisfies_eigen_equation() {
        let a = sym_random(12, 5);
        let (vals, vecs) = jacobi_eigh(&a, 50);
        for (j, &val) in vals.iter().enumerate() {
            // A v_j == λ_j v_j
            for r in 0..12 {
                let av: f32 = (0..12).map(|k| a.get(r, k) * vecs.get(k, j)).sum();
                assert!(
                    (av - val * vecs.get(r, j)).abs() < 1e-3,
                    "eigen equation violated at ({r},{j})"
                );
            }
        }
    }

    #[test]
    fn eigenvectors_are_orthonormal() {
        let a = sym_random(10, 7);
        let (_, vecs) = jacobi_eigh(&a, 50);
        for i in 0..10 {
            for j in 0..10 {
                let dot: f32 = (0..10).map(|k| vecs.get(k, i) * vecs.get(k, j)).sum();
                let expect = if i == j { 1.0 } else { 0.0 };
                assert!(
                    (dot - expect).abs() < 1e-3,
                    "orthonormality failed at ({i},{j})"
                );
            }
        }
    }

    #[test]
    fn eigenvalues_sorted_ascending() {
        let a = sym_random(8, 9);
        let (vals, _) = jacobi_eigh(&a, 50);
        for w in vals.windows(2) {
            assert!(w[0] <= w[1] + 1e-6);
        }
    }
}
