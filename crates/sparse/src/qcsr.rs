//! Integer (quantized) CSR values and the integer sparse × dense product.
//!
//! Quantized message passing (Theorem 1 of the paper) evaluates
//! `Q_a(A) · Q_x(X)` where both operands hold small integers. Values are
//! stored as `i32` regardless of the logical bit-width (2/4/8/16 bits) —
//! hardware would pack them, but the *numerical* behaviour only depends on
//! the clipping range, which the quantizer enforces. Products are
//! accumulated in `i64` so that no intermediate overflow is possible for any
//! realistic graph size (|row| · 2^(ba-1) · 2^(bx-1) ≪ 2^63).

use crate::csr::CsrMatrix;

/// A CSR matrix whose stored values are quantized integers.
///
/// The structure (row pointers / column indices) is shared semantics with
/// [`CsrMatrix`]; only the value type differs. `bits` records the logical
/// bit-width so cost models can account for it.
#[derive(Debug, Clone, PartialEq)]
pub struct QuantCsr {
    rows: usize,
    cols: usize,
    row_ptr: Vec<usize>,
    col_idx: Vec<usize>,
    values: Vec<i32>,
    bits: u8,
}

impl QuantCsr {
    /// Quantizes the values of `a` with `f`, keeping its sparsity structure.
    pub fn from_csr(a: &CsrMatrix, bits: u8, mut f: impl FnMut(usize, usize, f32) -> i32) -> Self {
        let mut values = Vec::with_capacity(a.nnz());
        for r in 0..a.rows() {
            for (c, v) in a.row(r) {
                values.push(f(r, c, v));
            }
        }
        Self {
            rows: a.rows(),
            cols: a.cols(),
            row_ptr: a.row_ptr().to_vec(),
            col_idx: a.col_idx().to_vec(),
            values,
            bits,
        }
    }

    pub fn rows(&self) -> usize {
        self.rows
    }

    pub fn cols(&self) -> usize {
        self.cols
    }

    pub fn nnz(&self) -> usize {
        self.values.len()
    }

    pub fn bits(&self) -> u8 {
        self.bits
    }

    pub fn values(&self) -> &[i32] {
        &self.values
    }

    /// Iterator over `(col, value)` pairs of row `r`.
    pub fn row(&self, r: usize) -> impl Iterator<Item = (usize, i32)> + '_ {
        let (s, e) = (self.row_ptr[r], self.row_ptr[r + 1]);
        self.col_idx[s..e]
            .iter()
            .copied()
            .zip(self.values[s..e].iter().copied())
    }

    /// Largest number of non-zeros in any row — the worst-case term count
    /// of one accumulator in [`spmm_int`], used by the inference engine's
    /// a-priori saturation analysis.
    pub fn max_row_nnz(&self) -> usize {
        (0..self.rows)
            .map(|r| self.row_ptr[r + 1] - self.row_ptr[r])
            .max()
            .unwrap_or(0)
    }

    /// Integer row sums `Σ_c Q_a(A)_{r,c}`, needed by Theorem 1's zero-point
    /// correction term.
    pub fn row_sums_i64(&self) -> Vec<i64> {
        (0..self.rows)
            .map(|r| {
                self.values[self.row_ptr[r]..self.row_ptr[r + 1]]
                    .iter()
                    .map(|&v| v as i64)
                    .sum()
            })
            .collect()
    }
}

/// Integer sparse × dense product `Y = Q_a(A) · Q_x(X)`. `x` is row-major
/// with `x_cols` columns. Output rows are partitioned across the
/// `mixq-parallel` runtime at nnz-balanced boundaries; integer accumulation
/// is associative, so the result is exact at any thread count and under any
/// row partition.
///
/// When the static per-row bound `max_row_nnz × max|a| × max|x|` fits in
/// `i32` — which every prefix of every row's accumulation then also
/// satisfies — the kernel accumulates in `i32` (half the store traffic,
/// twice the SIMD lanes) and widens once at the end; otherwise it falls back
/// to the `i64` path. Both paths are exact, so the dispatch is invisible
/// numerically; the telemetry counters `qcsr.spmm.i32_path` /
/// `qcsr.spmm.i64_path` record which one ran.
pub fn spmm_int(a: &QuantCsr, x: &[i32], x_cols: usize) -> Vec<i64> {
    assert_eq!(
        x.len(),
        a.cols * x_cols,
        "spmm_int: dense operand has wrong size"
    );
    let t0 = mixq_telemetry::kernel_start();
    let mut y = vec![0i64; a.rows * x_cols];
    if spmm_fits_i32(a, x) {
        mixq_telemetry::counter_add("qcsr.spmm.i32_path", 1);
        let mut narrow = vec![0i32; a.rows * x_cols];
        mixq_parallel::par_row_chunks_mut_balanced(
            &mut narrow,
            a.rows,
            x_cols,
            &a.row_ptr,
            |start, chunk| {
                for (dr, out) in chunk.chunks_mut(x_cols).enumerate() {
                    let r = start + dr;
                    for i in a.row_ptr[r]..a.row_ptr[r + 1] {
                        let c = a.col_idx[i];
                        let v = a.values[i];
                        let xr = &x[c * x_cols..(c + 1) * x_cols];
                        for (o, &xv) in out.iter_mut().zip(xr.iter()) {
                            *o += v * xv;
                        }
                    }
                }
            },
        );
        mixq_parallel::par_map_slice(&narrow, &mut y, |v| v as i64);
    } else {
        mixq_telemetry::counter_add("qcsr.spmm.i64_path", 1);
        mixq_parallel::par_row_chunks_mut_balanced(
            &mut y,
            a.rows,
            x_cols,
            &a.row_ptr,
            |start, chunk| {
                for (dr, out) in chunk.chunks_mut(x_cols).enumerate() {
                    let r = start + dr;
                    for i in a.row_ptr[r]..a.row_ptr[r + 1] {
                        let c = a.col_idx[i];
                        let v = a.values[i] as i64;
                        let xr = &x[c * x_cols..(c + 1) * x_cols];
                        for (o, &xv) in out.iter_mut().zip(xr.iter()) {
                            *o += v * xv as i64;
                        }
                    }
                }
            },
        );
    }
    mixq_telemetry::kernel_finish("sparse.spmm_int", t0, (a.nnz() * x_cols) as u64);
    y
}

/// `true` iff every intermediate of every row accumulation provably fits in
/// `i32`: each of the ≤ `max_row_nnz` terms is bounded by `max|a|·max|x|`,
/// so every prefix sum is bounded by their product (computed in `i128`, so
/// the check itself cannot overflow). This is the same a-priori analysis the
/// inference engine runs against the 2^62 `i64` limit in `qinfer.rs`, here
/// applied at the `i32` boundary.
fn spmm_fits_i32(a: &QuantCsr, x: &[i32]) -> bool {
    let amax = a
        .values
        .iter()
        .map(|&v| (v as i64).abs())
        .max()
        .unwrap_or(0);
    let xmax = x.iter().map(|&v| (v as i64).abs()).max().unwrap_or(0);
    let bound = a.max_row_nnz() as i128 * amax as i128 * xmax as i128;
    bound <= i32::MAX as i128
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::csr::CooEntry;

    fn sample() -> CsrMatrix {
        CsrMatrix::from_coo(
            2,
            3,
            vec![
                CooEntry {
                    row: 0,
                    col: 0,
                    val: 1.0,
                },
                CooEntry {
                    row: 0,
                    col: 2,
                    val: -2.0,
                },
                CooEntry {
                    row: 1,
                    col: 1,
                    val: 3.0,
                },
            ],
        )
    }

    #[test]
    fn quantizes_with_structure_preserved() {
        let q = QuantCsr::from_csr(&sample(), 8, |_, _, v| v as i32);
        assert_eq!(q.nnz(), 3);
        assert_eq!(q.bits(), 8);
        let row0: Vec<_> = q.row(0).collect();
        assert_eq!(row0, vec![(0, 1), (2, -2)]);
    }

    #[test]
    fn integer_spmm_matches_manual() {
        let q = QuantCsr::from_csr(&sample(), 8, |_, _, v| v as i32);
        // X (3×2) integer
        let x = vec![1, 2, 3, 4, 5, 6];
        let y = spmm_int(&q, &x, 2);
        // row0 = 1*[1,2] + (-2)*[5,6] = [-9, -10]; row1 = 3*[3,4] = [9,12]
        assert_eq!(y, vec![-9, -10, 9, 12]);
    }

    #[test]
    fn row_sums_match() {
        let q = QuantCsr::from_csr(&sample(), 4, |_, _, v| v as i32);
        assert_eq!(q.row_sums_i64(), vec![-1, 3]);
        assert_eq!(q.max_row_nnz(), 2);
    }

    #[test]
    fn i32_fast_path_boundary_is_exact() {
        // One row of `nnz` entries, all equal to `v`, against an all-`xv`
        // dense operand: the static bound is exactly nnz·|v|·|xv|. Probe the
        // i32 ceiling from both sides; results must be exact either way.
        let build = |nnz: usize, v: f32| {
            let entries: Vec<CooEntry> = (0..nnz)
                .map(|c| CooEntry {
                    row: 0,
                    col: c,
                    val: v,
                })
                .collect();
            let a = CsrMatrix::from_coo(1, nnz, entries);
            QuantCsr::from_csr(&a, 16, |_, _, v| v as i32)
        };
        // 2 · 32767 · 32767 = 2147352578 ≤ i32::MAX → narrow path.
        let q = build(2, 32767.0);
        assert!(spmm_fits_i32(&q, &[32767, 32767]));
        assert_eq!(spmm_int(&q, &[32767, 32767], 1), vec![2 * 32767 * 32767]);
        // 3 terms overflow i32 (3221028867 > i32::MAX) → wide path, exact.
        let q = build(3, 32767.0);
        assert!(!spmm_fits_i32(&q, &[32767, 32767, 32767]));
        assert_eq!(
            spmm_int(&q, &[32767, 32767, 32767], 1),
            vec![3 * 32767 * 32767]
        );
        // Negative extremes count by magnitude: i32::MIN valued entries must
        // not trick the |·| analysis into the narrow path.
        let entries = vec![CooEntry {
            row: 0,
            col: 0,
            val: 0.0,
        }];
        let a = CsrMatrix::from_coo(1, 1, entries);
        let q = QuantCsr::from_csr(&a, 32, |_, _, _| i32::MIN);
        assert!(!spmm_fits_i32(&q, &[2]));
        assert_eq!(spmm_int(&q, &[2], 1), vec![2 * i32::MIN as i64]);
    }

    #[test]
    fn accumulates_without_overflow_in_i64() {
        // 1000 entries of 127 * 127 stays exact in i64.
        let entries: Vec<CooEntry> = (0..1000)
            .map(|c| CooEntry {
                row: 0,
                col: c,
                val: 127.0,
            })
            .collect();
        let a = CsrMatrix::from_coo(1, 1000, entries);
        let q = QuantCsr::from_csr(&a, 8, |_, _, v| v as i32);
        let x = vec![127i32; 1000];
        let y = spmm_int(&q, &x, 1);
        assert_eq!(y[0], 1000 * 127 * 127);
    }
}
