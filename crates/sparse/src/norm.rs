//! Adjacency normalizations used by the GNN layers.

use crate::csr::{CooEntry, CsrMatrix};

/// GCN normalization `Â = D^{-1/2} (I + A) D^{-1/2}` (Kipf & Welling).
///
/// `a` must be square. `D` is the diagonal of weighted degrees of `I + A`
/// (`d_v = 1 + Σ_u w_vu`), so every row gains a self-loop before scaling.
/// Degrees that come out non-positive (possible with negative edge weights)
/// are clamped to 1 to keep the scaling well defined.
pub fn gcn_normalize(a: &CsrMatrix) -> CsrMatrix {
    assert_eq!(a.rows(), a.cols(), "gcn_normalize requires a square matrix");
    let n = a.rows();
    let mut entries: Vec<CooEntry> = Vec::with_capacity(a.nnz() + n);
    for r in 0..n {
        entries.push(CooEntry {
            row: r,
            col: r,
            val: 1.0,
        });
        for (c, v) in a.row(r) {
            entries.push(CooEntry {
                row: r,
                col: c,
                val: v,
            });
        }
    }
    let with_loops = CsrMatrix::from_coo(n, n, entries);
    let deg = with_loops.row_sums();
    let inv_sqrt: Vec<f32> = deg
        .iter()
        .map(|&d| if d > 0.0 { 1.0 / d.sqrt() } else { 1.0 })
        .collect();
    with_loops.map_values(|r, c, v| v * inv_sqrt[r] * inv_sqrt[c])
}

/// Row normalization `D^{-1} A` (mean aggregator, used by GraphSAGE).
/// Rows with no neighbours stay all-zero.
pub fn row_normalize(a: &CsrMatrix) -> CsrMatrix {
    let sums = a.row_sums();
    a.map_values(|r, _, v| if sums[r] != 0.0 { v / sums[r] } else { 0.0 })
}

/// Symmetric normalized Laplacian `L = I - D^{-1/2} A D^{-1/2}` (no added
/// self-loops), used for Laplacian positional encodings. Isolated nodes get
/// `L_ii = 1`.
pub fn sym_laplacian(a: &CsrMatrix) -> CsrMatrix {
    assert_eq!(a.rows(), a.cols(), "sym_laplacian requires a square matrix");
    let n = a.rows();
    let deg = a.row_sums();
    let inv_sqrt: Vec<f32> = deg
        .iter()
        .map(|&d| if d > 0.0 { 1.0 / d.sqrt() } else { 0.0 })
        .collect();
    let mut entries: Vec<CooEntry> = Vec::with_capacity(a.nnz() + n);
    for r in 0..n {
        entries.push(CooEntry {
            row: r,
            col: r,
            val: 1.0,
        });
        for (c, v) in a.row(r) {
            entries.push(CooEntry {
                row: r,
                col: c,
                val: -v * inv_sqrt[r] * inv_sqrt[c],
            });
        }
    }
    CsrMatrix::from_coo(n, n, entries)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Undirected path graph 0 - 1 - 2 with unit weights.
    fn path3() -> CsrMatrix {
        CsrMatrix::from_coo(
            3,
            3,
            vec![
                CooEntry {
                    row: 0,
                    col: 1,
                    val: 1.0,
                },
                CooEntry {
                    row: 1,
                    col: 0,
                    val: 1.0,
                },
                CooEntry {
                    row: 1,
                    col: 2,
                    val: 1.0,
                },
                CooEntry {
                    row: 2,
                    col: 1,
                    val: 1.0,
                },
            ],
        )
    }

    #[test]
    fn gcn_norm_adds_self_loops() {
        let n = gcn_normalize(&path3());
        assert!(n.get(0, 0) > 0.0);
        assert!(n.get(1, 1) > 0.0);
        assert_eq!(n.nnz(), 4 + 3);
    }

    #[test]
    fn gcn_norm_values_match_formula() {
        let n = gcn_normalize(&path3());
        // deg(0)=2, deg(1)=3, deg(2)=2 after self-loops.
        let d0 = 2.0f32;
        let d1 = 3.0f32;
        assert!((n.get(0, 0) - 1.0 / d0).abs() < 1e-6);
        assert!((n.get(0, 1) - 1.0 / (d0 * d1).sqrt()).abs() < 1e-6);
        assert!((n.get(1, 1) - 1.0 / d1).abs() < 1e-6);
    }

    #[test]
    fn gcn_norm_is_symmetric_for_symmetric_input() {
        let n = gcn_normalize(&path3());
        for r in 0..3 {
            for c in 0..3 {
                assert!((n.get(r, c) - n.get(c, r)).abs() < 1e-6);
            }
        }
    }

    #[test]
    fn row_normalize_rows_sum_to_one() {
        let n = row_normalize(&path3());
        for (r, s) in n.row_sums().iter().enumerate() {
            assert!((s - 1.0).abs() < 1e-6, "row {r} sums to {s}");
        }
    }

    #[test]
    fn row_normalize_keeps_isolated_rows_zero() {
        let a = CsrMatrix::from_coo(
            2,
            2,
            vec![CooEntry {
                row: 0,
                col: 1,
                val: 2.0,
            }],
        );
        let n = row_normalize(&a);
        assert_eq!(n.get(0, 1), 1.0);
        assert_eq!(n.row_sums()[1], 0.0);
    }

    #[test]
    fn laplacian_rows_sum_to_zero_for_connected_nodes() {
        let l = sym_laplacian(&path3());
        // For a d-regular graph rows of L sum to 0; for the path only the
        // middle node sees both neighbours with equal normalization.
        assert!((l.get(0, 0) - 1.0).abs() < 1e-6);
        assert!((l.get(0, 1) + 1.0 / (1.0f32 * 2.0).sqrt()).abs() < 1e-6);
    }

    #[test]
    fn laplacian_isolated_node_identity() {
        let a = CsrMatrix::from_coo(2, 2, vec![]);
        let l = sym_laplacian(&a);
        assert_eq!(l.get(0, 0), 1.0);
        assert_eq!(l.get(1, 1), 1.0);
    }
}
