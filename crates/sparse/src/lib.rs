//! Sparse matrix substrate for MixQ-GNN.
//!
//! Graph neural networks spend most of their time in sparse-dense matrix
//! products between the (normalized) adjacency matrix and the node feature
//! matrix. This crate provides the CSR containers and kernels that the rest
//! of the workspace builds on:
//!
//! * [`CsrMatrix`] — compressed sparse row storage over `f32` values,
//!   built from COO triplets, with transpose, degree and normalization
//!   helpers.
//! * [`CsrMatrix::spmm`] — the float sparse × dense product `Y = A · X`.
//! * [`QuantCsr`] and [`spmm_int`] — integer CSR values and the integer
//!   sparse × dense product with `i64` accumulation, used by the quantized
//!   message-passing path of Theorem 1.
//!
//! All kernels operate on raw row-major slices (`&[f32]`, `&[i32]`) plus
//! explicit dimensions so that this crate stays independent of the dense
//! tensor crate that sits above it.

mod csr;
mod norm;
mod qcsr;

pub use csr::{CooEntry, CsrMatrix};
pub use norm::{gcn_normalize, row_normalize, sym_laplacian};
pub use qcsr::{spmm_int, QuantCsr};
