//! Compressed sparse row matrices over `f32`.
//!
//! The SpMM kernel partitions output rows across the scoped-thread runtime
//! in `mixq-parallel`; each thread owns a disjoint row range of `y` and the
//! per-row accumulation order is unchanged, so results are bit-identical to
//! the serial kernel at any thread count.

use mixq_parallel::{par_row_chunks_mut, par_row_chunks_mut_balanced};

/// One coordinate-format entry `(row, col, value)` used to build a CSR matrix.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CooEntry {
    pub row: usize,
    pub col: usize,
    pub val: f32,
}

/// A sparse matrix in compressed sparse row format.
///
/// ```
/// use mixq_sparse::{CooEntry, CsrMatrix};
/// let a = CsrMatrix::from_coo(2, 2, vec![
///     CooEntry { row: 0, col: 1, val: 2.0 },
///     CooEntry { row: 1, col: 0, val: 1.0 },
/// ]);
/// // Y = A · X with X = [[1],[3]] (row-major, 1 column)
/// assert_eq!(a.spmm(&[1.0, 3.0], 1), vec![6.0, 1.0]);
/// ```
///
/// Invariants (checked by [`CsrMatrix::check_invariants`] and enforced by all
/// constructors):
/// * `row_ptr.len() == rows + 1`, `row_ptr[0] == 0`,
///   `row_ptr[rows] == col_idx.len() == values.len()`;
/// * `row_ptr` is non-decreasing;
/// * within each row, column indices are strictly increasing (no duplicates)
///   and `< cols`.
#[derive(Debug, Clone, PartialEq)]
pub struct CsrMatrix {
    rows: usize,
    cols: usize,
    row_ptr: Vec<usize>,
    col_idx: Vec<usize>,
    values: Vec<f32>,
}

impl CsrMatrix {
    /// Builds a CSR matrix from COO entries. Entries may be unsorted;
    /// duplicates at the same `(row, col)` are summed.
    pub fn from_coo(rows: usize, cols: usize, mut entries: Vec<CooEntry>) -> Self {
        for e in &entries {
            assert!(e.row < rows, "row {} out of bounds ({} rows)", e.row, rows);
            assert!(e.col < cols, "col {} out of bounds ({} cols)", e.col, cols);
        }
        entries.sort_unstable_by_key(|e| (e.row, e.col));

        let mut col_idx: Vec<usize> = Vec::with_capacity(entries.len());
        let mut values: Vec<f32> = Vec::with_capacity(entries.len());
        let mut coords: Vec<(usize, usize)> = Vec::with_capacity(entries.len());
        for e in entries {
            if coords.last() == Some(&(e.row, e.col)) {
                // Merge duplicate coordinates by summing their values.
                *values.last_mut().unwrap() += e.val;
            } else {
                coords.push((e.row, e.col));
                col_idx.push(e.col);
                values.push(e.val);
            }
        }
        let mut row_ptr = vec![0usize; rows + 1];
        for &(r, _) in &coords {
            row_ptr[r + 1] += 1;
        }
        for r in 0..rows {
            row_ptr[r + 1] += row_ptr[r];
        }
        let m = Self {
            rows,
            cols,
            row_ptr,
            col_idx,
            values,
        };
        m.check_invariants_on_build();
        m
    }

    /// Builds directly from raw CSR parts, validating all invariants (the
    /// full `O(nnz)` scan in debug builds, the `O(rows)` structural checks
    /// in release — call [`CsrMatrix::check_invariants`] for an explicit
    /// full validation of untrusted data).
    pub fn from_parts(
        rows: usize,
        cols: usize,
        row_ptr: Vec<usize>,
        col_idx: Vec<usize>,
        values: Vec<f32>,
    ) -> Self {
        let m = Self {
            rows,
            cols,
            row_ptr,
            col_idx,
            values,
        };
        m.check_invariants_on_build();
        m
    }

    /// The identity matrix of size `n`.
    pub fn identity(n: usize) -> Self {
        Self {
            rows: n,
            cols: n,
            row_ptr: (0..=n).collect(),
            col_idx: (0..n).collect(),
            values: vec![1.0; n],
        }
    }

    /// Panics if any CSR structural invariant is violated. `O(nnz)` — runs
    /// on every constructor call in debug builds; in release builds the
    /// constructors only do the `O(rows)` checks of
    /// [`CsrMatrix::check_invariants_cheap`] (the full scan made `transpose`
    /// and every `from_coo` in training loops quadratic-feeling on large
    /// graphs). Call this directly to validate untrusted data.
    pub fn check_invariants(&self) {
        self.check_invariants_cheap();
        for r in 0..self.rows {
            let cols = &self.col_idx[self.row_ptr[r]..self.row_ptr[r + 1]];
            for w in cols.windows(2) {
                assert!(w[0] < w[1], "columns not strictly increasing in row {r}");
            }
            if let Some(&c) = cols.last() {
                assert!(c < self.cols, "column index out of bounds");
            }
        }
    }

    /// The `O(rows)` subset of the invariants: array lengths, first/last
    /// row pointers, and row-pointer monotonicity. Cheap enough to run on
    /// every constructor call even in release builds.
    pub fn check_invariants_cheap(&self) {
        assert_eq!(self.row_ptr.len(), self.rows + 1, "row_ptr length");
        assert_eq!(self.row_ptr[0], 0, "row_ptr must start at 0");
        assert_eq!(
            *self.row_ptr.last().unwrap(),
            self.col_idx.len(),
            "row_ptr must end at nnz"
        );
        assert_eq!(
            self.col_idx.len(),
            self.values.len(),
            "col/val length mismatch"
        );
        for r in 0..self.rows {
            assert!(
                self.row_ptr[r] <= self.row_ptr[r + 1],
                "row_ptr not monotone"
            );
        }
    }

    /// Constructor-time validation: full scan in debug, cheap checks in
    /// release.
    fn check_invariants_on_build(&self) {
        if cfg!(debug_assertions) {
            self.check_invariants();
        } else {
            self.check_invariants_cheap();
        }
    }

    pub fn rows(&self) -> usize {
        self.rows
    }

    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Number of stored (structural) non-zeros.
    pub fn nnz(&self) -> usize {
        self.values.len()
    }

    pub fn row_ptr(&self) -> &[usize] {
        &self.row_ptr
    }

    pub fn col_idx(&self) -> &[usize] {
        &self.col_idx
    }

    pub fn values(&self) -> &[f32] {
        &self.values
    }

    pub fn values_mut(&mut self) -> &mut [f32] {
        &mut self.values
    }

    /// Iterator over `(col, value)` pairs of row `r`.
    pub fn row(&self, r: usize) -> impl Iterator<Item = (usize, f32)> + '_ {
        let (s, e) = (self.row_ptr[r], self.row_ptr[r + 1]);
        self.col_idx[s..e]
            .iter()
            .copied()
            .zip(self.values[s..e].iter().copied())
    }

    /// Value at `(r, c)`, or 0 if structurally zero. Binary-searches the row.
    pub fn get(&self, r: usize, c: usize) -> f32 {
        let (s, e) = (self.row_ptr[r], self.row_ptr[r + 1]);
        match self.col_idx[s..e].binary_search(&c) {
            Ok(i) => self.values[s + i],
            Err(_) => 0.0,
        }
    }

    /// Transposed copy (CSR of `Aᵀ`), `O(nnz + rows + cols)`.
    pub fn transpose(&self) -> CsrMatrix {
        let mut counts = vec![0usize; self.cols + 1];
        for &c in &self.col_idx {
            counts[c + 1] += 1;
        }
        for i in 1..=self.cols {
            counts[i] += counts[i - 1];
        }
        let row_ptr = counts.clone();
        let mut col_idx = vec![0usize; self.nnz()];
        let mut values = vec![0f32; self.nnz()];
        let mut next = counts;
        for r in 0..self.rows {
            for (c, v) in self.row(r) {
                let slot = next[c];
                col_idx[slot] = r;
                values[slot] = v;
                next[c] += 1;
            }
        }
        CsrMatrix::from_parts(self.cols, self.rows, row_ptr, col_idx, values)
    }

    /// In-degree of each column when the matrix is interpreted as
    /// edge `row -> col` (number of structural non-zeros per column).
    pub fn col_degrees(&self) -> Vec<usize> {
        let mut d = vec![0usize; self.cols];
        for &c in &self.col_idx {
            d[c] += 1;
        }
        d
    }

    /// Number of structural non-zeros per row.
    pub fn row_degrees(&self) -> Vec<usize> {
        (0..self.rows)
            .map(|r| self.row_ptr[r + 1] - self.row_ptr[r])
            .collect()
    }

    /// Weighted row sums `A · 1`.
    pub fn row_sums(&self) -> Vec<f32> {
        (0..self.rows)
            .map(|r| {
                self.values[self.row_ptr[r]..self.row_ptr[r + 1]]
                    .iter()
                    .sum()
            })
            .collect()
    }

    /// Sparse × dense product `Y = A · X`.
    ///
    /// `x` is row-major with `x_cols` columns and `self.cols()` rows; the
    /// result has `self.rows()` rows and `x_cols` columns. Panics on
    /// dimension mismatch.
    pub fn spmm(&self, x: &[f32], x_cols: usize) -> Vec<f32> {
        assert_eq!(
            x.len(),
            self.cols * x_cols,
            "spmm: dense operand has wrong size"
        );
        let mut y = vec![0f32; self.rows * x_cols];
        self.spmm_into(x, x_cols, &mut y);
        y
    }

    /// Like [`CsrMatrix::spmm`] but writes into a caller-provided buffer.
    /// Output rows are partitioned across threads at **nnz-balanced**
    /// boundaries (disjoint `y` slices, serial per-row accumulation order ⇒
    /// bit-identical to serial and to any other row partition). Power-law
    /// graphs pack most edges into a few hub rows, so equal-row chunks leave
    /// one thread doing nearly all the work; balancing on `row_ptr` keeps
    /// per-chunk nnz within one row's weight of even.
    pub fn spmm_into(&self, x: &[f32], x_cols: usize, y: &mut [f32]) {
        assert_eq!(x.len(), self.cols * x_cols);
        assert_eq!(y.len(), self.rows * x_cols);
        let t0 = mixq_telemetry::kernel_start();
        par_row_chunks_mut_balanced(y, self.rows, x_cols, &self.row_ptr, |start, chunk| {
            self.spmm_rows(x, x_cols, start, chunk);
        });
        mixq_telemetry::kernel_finish("sparse.spmm_f32", t0, (self.nnz() * x_cols) as u64);
    }

    /// [`CsrMatrix::spmm_into`] under the legacy equal-row-count schedule.
    /// Kept public for benchmarks and the partition-law property suite,
    /// which assert the balanced schedule is bit-identical (and faster on
    /// degree-skewed graphs); not intended for production call sites.
    pub fn spmm_into_row_chunked(&self, x: &[f32], x_cols: usize, y: &mut [f32]) {
        assert_eq!(x.len(), self.cols * x_cols);
        assert_eq!(y.len(), self.rows * x_cols);
        let t0 = mixq_telemetry::kernel_start();
        par_row_chunks_mut(y, self.rows, x_cols, |start, chunk| {
            self.spmm_rows(x, x_cols, start, chunk);
        });
        mixq_telemetry::kernel_finish("sparse.spmm_f32", t0, (self.nnz() * x_cols) as u64);
    }

    /// Serial SpMM body over the output rows starting at `start`; shared by
    /// both schedules so their per-row accumulation order is identical by
    /// construction.
    fn spmm_rows(&self, x: &[f32], x_cols: usize, start: usize, chunk: &mut [f32]) {
        for (dr, out) in chunk.chunks_mut(x_cols).enumerate() {
            let r = start + dr;
            out.fill(0.0);
            for i in self.row_ptr[r]..self.row_ptr[r + 1] {
                let c = self.col_idx[i];
                let v = self.values[i];
                let xr = &x[c * x_cols..(c + 1) * x_cols];
                for (o, &xv) in out.iter_mut().zip(xr.iter()) {
                    *o += v * xv;
                }
            }
        }
    }

    /// Dense copy of the matrix (row-major), for tests and small examples.
    pub fn to_dense(&self) -> Vec<f32> {
        let mut d = vec![0f32; self.rows * self.cols];
        for r in 0..self.rows {
            for (c, v) in self.row(r) {
                d[r * self.cols + c] = v;
            }
        }
        d
    }

    /// Returns a copy with each stored value transformed by `f(row, col, val)`.
    pub fn map_values(&self, mut f: impl FnMut(usize, usize, f32) -> f32) -> CsrMatrix {
        let mut out = self.clone();
        for r in 0..self.rows {
            for i in self.row_ptr[r]..self.row_ptr[r + 1] {
                out.values[i] = f(r, self.col_idx[i], self.values[i]);
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> CsrMatrix {
        // [[1, 0, 2],
        //  [0, 0, 0],
        //  [3, 4, 0]]
        CsrMatrix::from_coo(
            3,
            3,
            vec![
                CooEntry {
                    row: 0,
                    col: 0,
                    val: 1.0,
                },
                CooEntry {
                    row: 0,
                    col: 2,
                    val: 2.0,
                },
                CooEntry {
                    row: 2,
                    col: 0,
                    val: 3.0,
                },
                CooEntry {
                    row: 2,
                    col: 1,
                    val: 4.0,
                },
            ],
        )
    }

    #[test]
    fn builds_from_unsorted_coo() {
        let m = CsrMatrix::from_coo(
            2,
            2,
            vec![
                CooEntry {
                    row: 1,
                    col: 1,
                    val: 4.0,
                },
                CooEntry {
                    row: 0,
                    col: 0,
                    val: 1.0,
                },
            ],
        );
        assert_eq!(m.get(0, 0), 1.0);
        assert_eq!(m.get(1, 1), 4.0);
        assert_eq!(m.get(0, 1), 0.0);
        assert_eq!(m.nnz(), 2);
    }

    #[test]
    fn sums_duplicate_coordinates() {
        let m = CsrMatrix::from_coo(
            1,
            1,
            vec![
                CooEntry {
                    row: 0,
                    col: 0,
                    val: 1.5,
                },
                CooEntry {
                    row: 0,
                    col: 0,
                    val: 2.5,
                },
            ],
        );
        assert_eq!(m.get(0, 0), 4.0);
        assert_eq!(m.nnz(), 1);
    }

    #[test]
    fn handles_empty_rows() {
        let m = sample();
        assert_eq!(m.row(1).count(), 0);
        assert_eq!(m.row_degrees(), vec![2, 0, 2]);
    }

    #[test]
    fn spmm_matches_dense_product() {
        let m = sample();
        let x = vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]; // 3×2
        let y = m.spmm(&x, 2);
        // row0 = 1*[1,2] + 2*[5,6] = [11, 14]
        // row1 = [0, 0]
        // row2 = 3*[1,2] + 4*[3,4] = [15, 22]
        assert_eq!(y, vec![11.0, 14.0, 0.0, 0.0, 15.0, 22.0]);
    }

    #[test]
    fn transpose_round_trips() {
        let m = sample();
        let t = m.transpose();
        assert_eq!(t.get(0, 0), 1.0);
        assert_eq!(t.get(2, 0), 2.0);
        assert_eq!(t.get(0, 2), 3.0);
        assert_eq!(t.get(1, 2), 4.0);
        assert_eq!(t.transpose(), m);
    }

    #[test]
    fn identity_spmm_is_noop() {
        let id = CsrMatrix::identity(4);
        let x: Vec<f32> = (0..12).map(|i| i as f32).collect();
        assert_eq!(id.spmm(&x, 3), x);
    }

    #[test]
    fn degrees_and_sums() {
        let m = sample();
        assert_eq!(m.col_degrees(), vec![2, 1, 1]);
        assert_eq!(m.row_sums(), vec![3.0, 0.0, 7.0]);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn rejects_out_of_bounds_entries() {
        CsrMatrix::from_coo(
            1,
            1,
            vec![CooEntry {
                row: 0,
                col: 5,
                val: 1.0,
            }],
        );
    }

    #[test]
    fn map_values_preserves_structure() {
        let m = sample().map_values(|_, _, v| v * 2.0);
        assert_eq!(m.get(0, 2), 4.0);
        assert_eq!(m.nnz(), 4);
    }
}
