//! Property-based tests of the sparse substrate.

use proptest::prelude::*;

use mixq_sparse::{gcn_normalize, row_normalize, spmm_int, CooEntry, CsrMatrix, QuantCsr};

/// Strategy: a random sparse matrix as (rows, cols, entries).
fn coo_matrix() -> impl Strategy<Value = (usize, usize, Vec<CooEntry>)> {
    (1usize..8, 1usize..8).prop_flat_map(|(r, c)| {
        let entry = (0..r, 0..c, -10i32..10).prop_map(|(row, col, v)| CooEntry {
            row,
            col,
            val: v as f32 * 0.5,
        });
        (Just(r), Just(c), proptest::collection::vec(entry, 0..20))
    })
}

proptest! {
    #[test]
    fn transpose_is_involutive((r, c, entries) in coo_matrix()) {
        let m = CsrMatrix::from_coo(r, c, entries);
        prop_assert_eq!(m.transpose().transpose(), m);
    }

    #[test]
    fn spmm_matches_dense_reference((r, c, entries) in coo_matrix(), fdim in 1usize..5) {
        let m = CsrMatrix::from_coo(r, c, entries);
        let x: Vec<f32> = (0..c * fdim).map(|i| (i as f32) * 0.25 - 1.0).collect();
        let y = m.spmm(&x, fdim);
        // Dense reference.
        let d = m.to_dense();
        for i in 0..r {
            for j in 0..fdim {
                let mut acc = 0f32;
                for k in 0..c {
                    acc += d[i * c + k] * x[k * fdim + j];
                }
                prop_assert!((y[i * fdim + j] - acc).abs() < 1e-4);
            }
        }
    }

    #[test]
    fn duplicate_entries_sum((r, c, entries) in coo_matrix()) {
        // Doubling every entry doubles every value.
        let m1 = CsrMatrix::from_coo(r, c, entries.clone());
        let doubled: Vec<CooEntry> =
            entries.iter().flat_map(|e| [*e, *e]).collect();
        let m2 = CsrMatrix::from_coo(r, c, doubled);
        prop_assert_eq!(m1.nnz(), m2.nnz());
        for row in 0..r {
            for (col, v) in m1.row(row) {
                prop_assert!((m2.get(row, col) - 2.0 * v).abs() < 1e-5);
            }
        }
    }

    #[test]
    fn gcn_normalize_entries_bounded(n in 1usize..8, seed in 0u64..500) {
        // Build a random symmetric unit-weight graph.
        let mut entries = Vec::new();
        let mut s = seed;
        for i in 0..n {
            for j in (i + 1)..n {
                s = s.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                if s >> 62 == 0 {
                    entries.push(CooEntry { row: i, col: j, val: 1.0 });
                    entries.push(CooEntry { row: j, col: i, val: 1.0 });
                }
            }
        }
        let a = CsrMatrix::from_coo(n, n, entries);
        let norm = gcn_normalize(&a);
        for i in 0..n {
            prop_assert!(norm.get(i, i) > 0.0, "diagonal must be positive");
        }
        for i in 0..n {
            for (j, v) in norm.row(i) {
                prop_assert!(v > 0.0 && v <= 1.0 + 1e-6, "entry ({},{}) = {}", i, j, v);
            }
        }
    }

    #[test]
    fn row_normalize_rows_sum_to_one_or_zero((r, c, entries) in coo_matrix()) {
        let positive: Vec<CooEntry> = entries
            .into_iter()
            .map(|e| CooEntry { val: e.val.abs() + 0.1, ..e })
            .collect();
        let m = CsrMatrix::from_coo(r, c, positive);
        let n = row_normalize(&m);
        for s in n.row_sums() {
            prop_assert!((s - 1.0).abs() < 1e-4 || s == 0.0);
        }
    }

    #[test]
    fn integer_spmm_matches_float_spmm((r, c, entries) in coo_matrix(), fdim in 1usize..4) {
        // Integer-valued matrices: both paths must agree exactly.
        let int_entries: Vec<CooEntry> = entries
            .into_iter()
            .map(|e| CooEntry { val: e.val.round(), ..e })
            .filter(|e| e.val != 0.0)
            .collect();
        let m = CsrMatrix::from_coo(r, c, int_entries);
        let q = QuantCsr::from_csr(&m, 8, |_, _, v| v as i32);
        let xi: Vec<i32> = (0..c * fdim).map(|i| (i as i32 % 7) - 3).collect();
        let xf: Vec<f32> = xi.iter().map(|&v| v as f32).collect();
        let yi = spmm_int(&q, &xi, fdim);
        let yf = m.spmm(&xf, fdim);
        for (a, b) in yi.iter().zip(yf.iter()) {
            prop_assert_eq!(*a as f32, *b);
        }
    }
}
