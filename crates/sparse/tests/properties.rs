//! Property-based tests of the sparse substrate.
//!
//! Randomized with the workspace's seeded RNG stream (a self-contained
//! SplitMix64 here, to avoid a dependency cycle on `mixq-tensor`) instead
//! of proptest: external dev-dependencies cannot be fetched in the offline
//! build environment.

use mixq_sparse::{gcn_normalize, row_normalize, spmm_int, CooEntry, CsrMatrix, QuantCsr};

/// Minimal SplitMix64 for test-case generation.
struct Sm(u64);

impl Sm {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }

    fn below(&mut self, n: usize) -> usize {
        (self.next() % n as u64) as usize
    }
}

/// Random sparse matrix as (rows, cols, entries): shapes 1..8, up to 20
/// possibly-duplicate entries with values in ±5 (the proptest strategy this
/// replaces used the same ranges).
fn coo_matrix(seed: u64) -> (usize, usize, Vec<CooEntry>) {
    let mut s = Sm(seed);
    let r = 1 + s.below(7);
    let c = 1 + s.below(7);
    let n = s.below(20);
    let entries = (0..n)
        .map(|_| CooEntry {
            row: s.below(r),
            col: s.below(c),
            val: (s.below(20) as i32 - 10) as f32 * 0.5,
        })
        .collect();
    (r, c, entries)
}

const CASES: u64 = 256;

#[test]
fn transpose_is_involutive() {
    for seed in 0..CASES {
        let (r, c, entries) = coo_matrix(seed);
        let m = CsrMatrix::from_coo(r, c, entries);
        assert_eq!(m.transpose().transpose(), m, "seed {seed}");
    }
}

#[test]
fn spmm_matches_dense_reference() {
    for seed in 0..CASES {
        let (r, c, entries) = coo_matrix(seed);
        let fdim = 1 + (seed as usize % 4);
        let m = CsrMatrix::from_coo(r, c, entries);
        let x: Vec<f32> = (0..c * fdim).map(|i| (i as f32) * 0.25 - 1.0).collect();
        let y = m.spmm(&x, fdim);
        let d = m.to_dense();
        for i in 0..r {
            for j in 0..fdim {
                let mut acc = 0f32;
                for k in 0..c {
                    acc += d[i * c + k] * x[k * fdim + j];
                }
                assert!(
                    (y[i * fdim + j] - acc).abs() < 1e-4,
                    "seed {seed} at ({i},{j})"
                );
            }
        }
    }
}

#[test]
fn duplicate_entries_sum() {
    for seed in 0..CASES {
        let (r, c, entries) = coo_matrix(seed);
        // Doubling every entry doubles every value.
        let m1 = CsrMatrix::from_coo(r, c, entries.clone());
        let doubled: Vec<CooEntry> = entries.iter().flat_map(|e| [*e, *e]).collect();
        let m2 = CsrMatrix::from_coo(r, c, doubled);
        assert_eq!(m1.nnz(), m2.nnz(), "seed {seed}");
        for row in 0..r {
            for (col, v) in m1.row(row) {
                assert!((m2.get(row, col) - 2.0 * v).abs() < 1e-5, "seed {seed}");
            }
        }
    }
}

#[test]
fn gcn_normalize_entries_bounded() {
    for seed in 0..500u64 {
        let mut s = Sm(seed);
        let n = 1 + s.below(7);
        // Build a random symmetric unit-weight graph.
        let mut entries = Vec::new();
        for i in 0..n {
            for j in (i + 1)..n {
                if s.next() >> 62 == 0 {
                    entries.push(CooEntry {
                        row: i,
                        col: j,
                        val: 1.0,
                    });
                    entries.push(CooEntry {
                        row: j,
                        col: i,
                        val: 1.0,
                    });
                }
            }
        }
        let a = CsrMatrix::from_coo(n, n, entries);
        let norm = gcn_normalize(&a);
        for i in 0..n {
            assert!(
                norm.get(i, i) > 0.0,
                "diagonal must be positive (seed {seed})"
            );
        }
        for i in 0..n {
            for (j, v) in norm.row(i) {
                assert!(
                    v > 0.0 && v <= 1.0 + 1e-6,
                    "entry ({i},{j}) = {v} (seed {seed})"
                );
            }
        }
    }
}

#[test]
fn row_normalize_rows_sum_to_one_or_zero() {
    for seed in 0..CASES {
        let (r, c, entries) = coo_matrix(seed);
        let positive: Vec<CooEntry> = entries
            .into_iter()
            .map(|e| CooEntry {
                val: e.val.abs() + 0.1,
                ..e
            })
            .collect();
        let m = CsrMatrix::from_coo(r, c, positive);
        let n = row_normalize(&m);
        for s in n.row_sums() {
            assert!(
                (s - 1.0).abs() < 1e-4 || s == 0.0,
                "seed {seed}: row sum {s}"
            );
        }
    }
}

#[test]
fn integer_spmm_matches_float_spmm() {
    for seed in 0..CASES {
        let (r, c, entries) = coo_matrix(seed);
        let fdim = 1 + (seed as usize % 3);
        // Integer-valued matrices: both paths must agree exactly.
        let int_entries: Vec<CooEntry> = entries
            .into_iter()
            .map(|e| CooEntry {
                val: e.val.round(),
                ..e
            })
            .filter(|e| e.val != 0.0)
            .collect();
        let m = CsrMatrix::from_coo(r, c, int_entries);
        let q = QuantCsr::from_csr(&m, 8, |_, _, v| v as i32);
        let xi: Vec<i32> = (0..c * fdim).map(|i| (i as i32 % 7) - 3).collect();
        let xf: Vec<f32> = xi.iter().map(|&v| v as f32).collect();
        let yi = spmm_int(&q, &xi, fdim);
        let yf = m.spmm(&xf, fdim);
        for (a, b) in yi.iter().zip(yf.iter()) {
            assert_eq!(*a as f32, *b, "seed {seed}");
        }
    }
}
