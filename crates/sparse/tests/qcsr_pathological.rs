//! `QuantCsr` on pathological graphs: empty rows, all-isolated-node
//! (zero-nnz) matrices, and single fully-dense rows where
//! `max_row_nnz == cols`. Each structure is driven through the integer
//! SpMM and differentially checked against a dense i64 reference, both at
//! fixed corner cases and over generated graphs with extreme isolation.

use mixq_proptest::{graph, i32_in, usize_in, Config, Gen, GraphConfig, RandomGraph};
use mixq_sparse::{spmm_int, CooEntry, CsrMatrix, QuantCsr};

/// Dense i64 reference for `A · X` over integer codes.
fn dense_spmm_ref(a: &QuantCsr, x: &[i32], f: usize) -> Vec<i64> {
    let mut y = vec![0i64; a.rows() * f];
    for r in 0..a.rows() {
        for (c, v) in a.row(r) {
            for j in 0..f {
                y[r * f + j] += v as i64 * x[c * f + j] as i64;
            }
        }
    }
    y
}

fn quantize_round(csr: &CsrMatrix) -> QuantCsr {
    QuantCsr::from_csr(csr, 4, |_, _, v| v.round_ties_even() as i32)
}

#[test]
fn all_isolated_graph_produces_zeros() {
    for n in [1usize, 3, 17] {
        let csr = CsrMatrix::from_coo(n, n, vec![]);
        let q = quantize_round(&csr);
        assert_eq!(q.nnz(), 0);
        assert_eq!(q.max_row_nnz(), 0);
        assert_eq!(q.row_sums_i64(), vec![0i64; n]);
        let x = vec![7i32; n * 3];
        assert_eq!(spmm_int(&q, &x, 3), vec![0i64; n * 3]);
    }
}

#[test]
fn zero_rows_between_populated_rows() {
    // Rows 0 and 4 empty, row 2 has two entries, rows 1/3 one each.
    let entries = vec![
        CooEntry {
            row: 1,
            col: 0,
            val: 3.0,
        },
        CooEntry {
            row: 2,
            col: 1,
            val: -2.0,
        },
        CooEntry {
            row: 2,
            col: 4,
            val: 5.0,
        },
        CooEntry {
            row: 3,
            col: 3,
            val: 1.0,
        },
    ];
    let csr = CsrMatrix::from_coo(5, 5, entries);
    let q = quantize_round(&csr);
    let x: Vec<i32> = (0..5 * 2).map(|i| i - 4).collect();
    let y = spmm_int(&q, &x, 2);
    assert_eq!(y, dense_spmm_ref(&q, &x, 2));
    // Empty rows are exactly zero, not merely small.
    assert_eq!(&y[0..2], &[0, 0]);
    assert_eq!(&y[8..10], &[0, 0]);
    assert_eq!(q.row_sums_i64(), vec![0, 3, 3, 1, 0]);
}

#[test]
fn single_dense_row_max_row_nnz_equals_cols() {
    for n in [1usize, 4, 9] {
        let entries: Vec<CooEntry> = (0..n)
            .map(|c| CooEntry {
                row: 0,
                col: c,
                val: (c as f32) - (n as f32) / 2.0,
            })
            .collect();
        let csr = CsrMatrix::from_coo(n, n, entries);
        let q = quantize_round(&csr);
        assert_eq!(q.max_row_nnz(), q.cols(), "row 0 must be fully dense");
        let x: Vec<i32> = (0..n * 2).map(|i| (i as i32 % 7) - 3).collect();
        assert_eq!(spmm_int(&q, &x, 2), dense_spmm_ref(&q, &x, 2));
    }
}

#[derive(Clone, Debug)]
struct QcsrCase {
    g: RandomGraph,
    f: usize,
    x: Vec<i32>,
}

/// Generated graphs biased hard toward pathology: most nodes isolated, the
/// rest forming hub rows via strong degree skew.
fn qcsr_case() -> Gen<QcsrCase> {
    let cfg = GraphConfig {
        min_nodes: 1,
        max_nodes: 24,
        max_degree: 8,
        degree_alpha: 3.0,
        isolated_frac: 0.6,
        self_loops: true,
        val_lo: -7.0,
        val_hi: 7.0,
    };
    graph(cfg).zip(&usize_in(1, 4)).bind(|&(ref g, f)| {
        let n = g.nodes;
        let g = g.clone();
        i32_in(-128, 127)
            .vec_of(n * f, n * f)
            .map(move |x| QcsrCase {
                g: g.clone(),
                f,
                x: x.clone(),
            })
    })
}

#[test]
fn fuzz_qcsr_integer_spmm_matches_dense_reference() {
    Config::new("qcsr_pathological")
        .cases(96)
        .run(&qcsr_case(), |c| {
            let csr = c.g.to_csr();
            let q = quantize_round(&csr);
            assert_eq!(q.rows(), csr.rows());
            assert_eq!(q.nnz(), csr.nnz());
            // Structural accessors agree with a per-row recount.
            let max_nnz = (0..q.rows()).map(|r| q.row(r).count()).max().unwrap_or(0);
            assert_eq!(q.max_row_nnz(), max_nnz);
            let sums: Vec<i64> = (0..q.rows())
                .map(|r| q.row(r).map(|(_, v)| v as i64).sum())
                .collect();
            assert_eq!(q.row_sums_i64(), sums);
            // Integer SpMM is exactly the dense contraction.
            assert_eq!(
                spmm_int(&q, &c.x, c.f),
                dense_spmm_ref(&q, &c.x, c.f),
                "nodes={} nnz={} f={}",
                c.g.nodes,
                q.nnz(),
                c.f
            );
        });
}

#[test]
fn duplicate_coo_entries_sum_before_quantization() {
    let entries = vec![
        CooEntry {
            row: 0,
            col: 1,
            val: 1.4,
        },
        CooEntry {
            row: 0,
            col: 1,
            val: 1.4,
        },
        CooEntry {
            row: 0,
            col: 1,
            val: 1.4,
        },
    ];
    let csr = CsrMatrix::from_coo(2, 2, entries);
    assert_eq!(csr.nnz(), 1);
    let q = quantize_round(&csr);
    // 3 × 1.4 sums to 4.2 in f32 and rounds to 4 — not 3 × round(1.4).
    assert_eq!(q.values(), &[4]);
}
