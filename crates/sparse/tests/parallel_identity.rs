//! Property tests: the parallel SpMM kernels are bit-identical to the
//! serial kernels for random shapes at 1–8 threads, including matrices
//! with empty rows, a single row, and zero columns.
//!
//! Everything lives in one `#[test]` because the thread count and the
//! serial-fallback threshold are process-wide knobs; separate tests would
//! race on them.

use mixq_parallel::{set_num_threads, set_parallel_row_threshold};
use mixq_sparse::{spmm_int, CooEntry, CsrMatrix, QuantCsr};

/// Minimal SplitMix64 for test-case generation.
struct Sm(u64);

impl Sm {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }

    fn below(&mut self, n: usize) -> usize {
        (self.next() % n as u64) as usize
    }
}

/// Random CSR with deliberately skewed structure: some rows dense-ish,
/// many rows empty (degree skew is the regime Degree-Quant identifies as
/// the SpMM bottleneck).
fn random_csr(s: &mut Sm, rows: usize, cols: usize) -> CsrMatrix {
    let mut entries = Vec::new();
    for r in 0..rows {
        // ~half the rows stay empty; the rest get up to `cols` entries.
        if s.below(2) == 0 {
            continue;
        }
        let deg = 1 + s.below(cols);
        for _ in 0..deg {
            entries.push(CooEntry {
                row: r,
                col: s.below(cols),
                val: (s.below(17) as i32 - 8) as f32 * 0.25,
            });
        }
    }
    CsrMatrix::from_coo(rows, cols, entries)
}

#[test]
fn parallel_spmm_bit_identical_to_serial() {
    // Force the threaded path even for tiny shapes.
    set_parallel_row_threshold(0);

    let shapes = [
        (1usize, 5usize),
        (2, 2),
        (7, 3),
        (16, 16),
        (33, 8),
        (64, 40),
    ];
    for (case, &(rows, cols)) in shapes.iter().enumerate() {
        let mut s = Sm(0xC0FFEE + case as u64);
        let a = random_csr(&mut s, rows, cols);
        for fdim in [1usize, 3, 8] {
            let x: Vec<f32> = (0..cols * fdim)
                .map(|_| (s.below(41) as i32 - 20) as f32 * 0.125)
                .collect();
            let xi: Vec<i32> = (0..cols * fdim)
                .map(|_| s.below(255) as i32 - 127)
                .collect();
            let q = QuantCsr::from_csr(&a, 8, |_, _, v| (v * 4.0) as i32);

            set_num_threads(1);
            let y_serial = a.spmm(&x, fdim);
            let yi_serial = spmm_int(&q, &xi, fdim);

            for threads in 2..=8usize {
                set_num_threads(threads);
                let y_par = a.spmm(&x, fdim);
                // f32 bit-identity, not approximate equality.
                assert!(
                    y_serial
                        .iter()
                        .zip(&y_par)
                        .all(|(a, b)| a.to_bits() == b.to_bits()),
                    "f32 spmm diverged: shape {rows}×{cols}, fdim {fdim}, {threads} threads"
                );
                let yi_par = spmm_int(&q, &xi, fdim);
                assert_eq!(
                    yi_serial, yi_par,
                    "int spmm diverged: shape {rows}×{cols}, fdim {fdim}, {threads} threads"
                );
            }
        }
    }

    // Degenerate cases: empty matrix, single empty row, zero feature dim.
    set_num_threads(8);
    let empty = CsrMatrix::from_coo(4, 4, Vec::new());
    assert!(empty.spmm(&[1.0; 8], 2).iter().all(|&v| v == 0.0));
    let one_row = CsrMatrix::from_coo(
        1,
        3,
        vec![CooEntry {
            row: 0,
            col: 1,
            val: 2.0,
        }],
    );
    assert_eq!(one_row.spmm(&[1.0, 3.0, 5.0], 1), vec![6.0]);
    let q = QuantCsr::from_csr(&one_row, 8, |_, _, v| v as i32);
    assert_eq!(spmm_int(&q, &[0i32; 0], 0), Vec::<i64>::new());

    // Restore defaults for any later test in this binary.
    set_num_threads(1);
    set_parallel_row_threshold(mixq_parallel::DEFAULT_ROW_THRESHOLD);
}
