//! Property tests of the nnz-balanced partitioner and the balanced SpMM
//! schedule on degree-skewed graphs: the boundary array must be a monotone
//! cover of the row range with provably bounded chunk weight, and the
//! balanced schedule must stay bit-identical to both the serial kernel and
//! the legacy equal-row schedule at every thread count.
//!
//! Everything lives in one `#[test]` because the thread count and the
//! serial-fallback threshold are process-wide knobs; separate tests would
//! race on them.

use mixq_parallel::{nnz_balanced_bounds, set_num_threads, set_parallel_row_threshold};
use mixq_proptest::{f32_in, graph, usize_in, Config, Gen, GraphConfig, RandomGraph};

#[derive(Clone, Debug)]
struct PartitionCase {
    g: RandomGraph,
    pieces: usize,
    f: usize,
    x: Vec<f32>,
}

/// Hub-skewed graphs (the Degree-Quant failure regime) with isolated
/// nodes, plus a piece count that can exceed the row count and a feature
/// width that includes zero.
fn partition_case() -> Gen<PartitionCase> {
    let cfg = GraphConfig {
        min_nodes: 1,
        max_nodes: 40,
        max_degree: 12,
        degree_alpha: 3.0,
        isolated_frac: 0.4,
        self_loops: true,
        val_lo: -2.0,
        val_hi: 2.0,
    };
    graph(cfg)
        .zip(&usize_in(1, 9))
        .zip(&usize_in(0, 4))
        .bind(|&((ref g, pieces), f)| {
            let n = g.nodes;
            let g = g.clone();
            f32_in(-4.0, 4.0)
                .vec_of(n * f, n * f)
                .map(move |x| PartitionCase {
                    g: g.clone(),
                    pieces,
                    f,
                    x: x.clone(),
                })
        })
}

#[test]
fn fuzz_partitioner_laws_and_balanced_schedule_identity() {
    // Tiny generated graphs must still exercise the threaded paths.
    set_parallel_row_threshold(0);

    Config::new("partition_fuzz")
        .cases(128)
        .run(&partition_case(), |c| {
            let csr = c.g.to_csr();
            let rp = csr.row_ptr();
            let rows = csr.rows();
            let total = csr.nnz();
            let max_row = c.g.max_row_nnz();
            let ctx = format!(
                "nodes={} nnz={} max_row={} pieces={} f={}",
                rows, total, max_row, c.pieces, c.f
            );

            // Law 1: `pieces + 1` monotone bounds covering exactly 0..rows.
            let bounds = nnz_balanced_bounds(rp, c.pieces);
            assert_eq!(bounds.len(), c.pieces + 1, "{ctx}: bounds {bounds:?}");
            assert_eq!(bounds[0], 0, "{ctx}: bounds {bounds:?}");
            assert_eq!(*bounds.last().unwrap(), rows, "{ctx}: bounds {bounds:?}");
            assert!(
                bounds.windows(2).all(|w| w[0] <= w[1]),
                "{ctx}: bounds not monotone: {bounds:?}"
            );

            // Law 2: no chunk outweighs the ideal share by more than one
            // row (a hub can overshoot its own chunk but never drag
            // unrelated rows behind it), and never exceeds the serial
            // total.
            if total > 0 {
                let limit = (total.div_ceil(c.pieces) + max_row).min(total);
                for w in bounds.windows(2) {
                    let chunk = rp[w[1]] - rp[w[0]];
                    assert!(
                        chunk <= limit,
                        "{ctx}: chunk rows {}..{} holds {chunk} nnz > limit {limit}",
                        w[0],
                        w[1]
                    );
                }
            }

            // Law 3: the balanced schedule and the legacy equal-row
            // schedule both reproduce the serial kernel bit-for-bit at
            // every thread count (disjoint row ranges + serial per-row
            // accumulation order).
            let bits = |v: &[f32]| v.iter().map(|x| x.to_bits()).collect::<Vec<u32>>();
            set_num_threads(1);
            let mut y_serial = vec![0.0f32; rows * c.f];
            csr.spmm_into(&c.x, c.f, &mut y_serial);
            for t in [2usize, 3, 8] {
                set_num_threads(t);
                let mut y_bal = vec![0.0f32; rows * c.f];
                csr.spmm_into(&c.x, c.f, &mut y_bal);
                let mut y_rows = vec![0.0f32; rows * c.f];
                csr.spmm_into_row_chunked(&c.x, c.f, &mut y_rows);
                assert_eq!(
                    bits(&y_serial),
                    bits(&y_bal),
                    "{ctx}: balanced schedule diverged at {t} threads"
                );
                assert_eq!(
                    bits(&y_serial),
                    bits(&y_rows),
                    "{ctx}: row-chunked schedule diverged at {t} threads"
                );
            }
            set_num_threads(1);
        });
}
