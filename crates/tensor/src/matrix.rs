//! Dense row-major `f32` matrices and the BLAS-free kernels used by the
//! autograd engine.
//!
//! The matmul kernels partition their *output* rows across the scoped-thread
//! runtime in `mixq-parallel`: each thread writes a disjoint row range and
//! the per-element accumulation order equals the serial loop, so results are
//! bit-identical at any thread count (`MIXQ_THREADS` /
//! [`mixq_parallel::set_num_threads`]). Small outputs stay on the serial
//! path.

use mixq_parallel::{par_map_slice, par_row_chunks_mut, par_zip_slice};

/// A dense row-major matrix of `f32`.
///
/// This is the only dense tensor type in the workspace: GNN training state
/// is naturally 2-D (nodes × features, features × features), and scalars are
/// represented as `1×1` matrices.
///
/// ```
/// use mixq_tensor::Matrix;
/// let a = Matrix::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]);
/// let b = Matrix::from_vec(2, 2, vec![0.0, 1.0, 1.0, 0.0]);
/// assert_eq!(a.matmul(&b).data(), &[2.0, 1.0, 4.0, 3.0]);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f32>,
}

impl Matrix {
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    pub fn ones(rows: usize, cols: usize) -> Self {
        Self::filled(rows, cols, 1.0)
    }

    pub fn filled(rows: usize, cols: usize, v: f32) -> Self {
        Self {
            rows,
            cols,
            data: vec![v; rows * cols],
        }
    }

    /// A `1×1` matrix holding a single scalar.
    pub fn scalar(v: f32) -> Self {
        Self {
            rows: 1,
            cols: 1,
            data: vec![v],
        }
    }

    pub fn from_vec(rows: usize, cols: usize, data: Vec<f32>) -> Self {
        assert_eq!(data.len(), rows * cols, "data length must equal rows*cols");
        Self { rows, cols, data }
    }

    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> f32) -> Self {
        let mut data = Vec::with_capacity(rows * cols);
        for r in 0..rows {
            for c in 0..cols {
                data.push(f(r, c));
            }
        }
        Self { rows, cols, data }
    }

    pub fn rows(&self) -> usize {
        self.rows
    }

    pub fn cols(&self) -> usize {
        self.cols
    }

    pub fn numel(&self) -> usize {
        self.data.len()
    }

    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    pub fn data(&self) -> &[f32] {
        &self.data
    }

    pub fn data_mut(&mut self) -> &mut [f32] {
        &mut self.data
    }

    pub fn into_vec(self) -> Vec<f32> {
        self.data
    }

    #[inline]
    pub fn get(&self, r: usize, c: usize) -> f32 {
        self.data[r * self.cols + c]
    }

    #[inline]
    pub fn set(&mut self, r: usize, c: usize, v: f32) {
        self.data[r * self.cols + c] = v;
    }

    /// The value of a `1×1` matrix.
    pub fn item(&self) -> f32 {
        assert_eq!(self.numel(), 1, "item() requires a 1×1 matrix");
        self.data[0]
    }

    pub fn row_slice(&self, r: usize) -> &[f32] {
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    pub fn row_slice_mut(&mut self, r: usize) -> &mut [f32] {
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Matrix product `C = A · B` (ikj loop order; the inner loop is
    /// contiguous over both `B` and `C` so it auto-vectorizes). Output rows
    /// are partitioned across threads; per-row accumulation order matches
    /// the serial loop exactly.
    pub fn matmul(&self, b: &Matrix) -> Matrix {
        assert_eq!(self.cols, b.rows, "matmul: inner dimensions differ");
        let t0 = mixq_telemetry::kernel_start();
        let mut c = Matrix::zeros(self.rows, b.cols);
        par_row_chunks_mut(&mut c.data, self.rows, b.cols, |start, chunk| {
            for (di, crow) in chunk.chunks_mut(b.cols).enumerate() {
                let i = start + di;
                for k in 0..self.cols {
                    let a = self.data[i * self.cols + k];
                    if a == 0.0 {
                        continue;
                    }
                    let brow = &b.data[k * b.cols..(k + 1) * b.cols];
                    for (cv, &bv) in crow.iter_mut().zip(brow.iter()) {
                        *cv += a * bv;
                    }
                }
            }
        });
        let macs = (self.rows * self.cols * b.cols) as u64;
        mixq_telemetry::kernel_finish("tensor.matmul", t0, macs);
        c
    }

    /// `C = Aᵀ · B` without materializing the transpose. Output rows (the
    /// `k` index over `A`'s columns) are partitioned across threads; within
    /// each output row the reduction over `i` runs in serial order, so the
    /// result is bit-identical to the single-threaded kernel.
    pub fn matmul_at_b(&self, b: &Matrix) -> Matrix {
        assert_eq!(self.rows, b.rows, "matmul_at_b: row counts differ");
        let t0 = mixq_telemetry::kernel_start();
        let mut c = Matrix::zeros(self.cols, b.cols);
        par_row_chunks_mut(&mut c.data, self.cols, b.cols, |start, chunk| {
            let k_hi = start + chunk.len() / b.cols;
            for i in 0..self.rows {
                let brow = &b.data[i * b.cols..(i + 1) * b.cols];
                for k in start..k_hi {
                    let a = self.data[i * self.cols + k];
                    if a == 0.0 {
                        continue;
                    }
                    let crow = &mut chunk[(k - start) * b.cols..(k - start + 1) * b.cols];
                    for (cv, &bv) in crow.iter_mut().zip(brow.iter()) {
                        *cv += a * bv;
                    }
                }
            }
        });
        let macs = (self.rows * self.cols * b.cols) as u64;
        mixq_telemetry::kernel_finish("tensor.matmul_at_b", t0, macs);
        c
    }

    /// `C = A · Bᵀ` without materializing the transpose. Each output element
    /// is an independent dot product; rows are partitioned across threads.
    pub fn matmul_a_bt(&self, b: &Matrix) -> Matrix {
        assert_eq!(self.cols, b.cols, "matmul_a_bt: col counts differ");
        let t0 = mixq_telemetry::kernel_start();
        let mut c = Matrix::zeros(self.rows, b.rows);
        par_row_chunks_mut(&mut c.data, self.rows, b.rows, |start, chunk| {
            for (di, crow) in chunk.chunks_mut(b.rows).enumerate() {
                let arow = &self.data[(start + di) * self.cols..(start + di + 1) * self.cols];
                for (j, cv) in crow.iter_mut().enumerate() {
                    let brow = &b.data[j * b.cols..(j + 1) * b.cols];
                    let mut acc = 0f32;
                    for (&av, &bv) in arow.iter().zip(brow.iter()) {
                        acc += av * bv;
                    }
                    *cv = acc;
                }
            }
        });
        let macs = (self.rows * self.cols * b.rows) as u64;
        mixq_telemetry::kernel_finish("tensor.matmul_a_bt", t0, macs);
        c
    }

    pub fn transpose(&self) -> Matrix {
        let mut t = Matrix::zeros(self.cols, self.rows);
        for r in 0..self.rows {
            for c in 0..self.cols {
                t.data[c * self.rows + r] = self.data[r * self.cols + c];
            }
        }
        t
    }

    pub fn add_assign(&mut self, other: &Matrix) {
        assert_eq!(self.shape(), other.shape(), "add_assign: shape mismatch");
        for (a, &b) in self.data.iter_mut().zip(other.data.iter()) {
            *a += b;
        }
    }

    pub fn scale_assign(&mut self, c: f32) {
        for v in &mut self.data {
            *v *= c;
        }
    }

    pub fn map(&self, f: impl Fn(f32) -> f32) -> Matrix {
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().map(|&v| f(v)).collect(),
        }
    }

    /// Like [`Matrix::map`] but parallelized over contiguous chunks for
    /// large matrices. Requires `f: Sync` (pure element-wise kernels such as
    /// quantize/dequantize); results are bit-identical to `map`.
    pub fn par_map(&self, f: impl Fn(f32) -> f32 + Sync) -> Matrix {
        let mut data = vec![0f32; self.data.len()];
        par_map_slice(&self.data, &mut data, f);
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data,
        }
    }

    /// Like [`Matrix::zip`] but parallelized over contiguous chunks for
    /// large matrices; bit-identical to `zip`.
    pub fn par_zip(&self, other: &Matrix, f: impl Fn(f32, f32) -> f32 + Sync) -> Matrix {
        assert_eq!(self.shape(), other.shape(), "par_zip: shape mismatch");
        let mut data = vec![0f32; self.data.len()];
        par_zip_slice(&self.data, &other.data, &mut data, f);
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data,
        }
    }

    /// Element-wise binary combination; shapes must match.
    pub fn zip(&self, other: &Matrix, f: impl Fn(f32, f32) -> f32) -> Matrix {
        assert_eq!(self.shape(), other.shape(), "zip: shape mismatch");
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self
                .data
                .iter()
                .zip(other.data.iter())
                .map(|(&a, &b)| f(a, b))
                .collect(),
        }
    }

    /// Sum of each column as a `1×cols` matrix.
    pub fn col_sums(&self) -> Matrix {
        let mut s = Matrix::zeros(1, self.cols);
        for r in 0..self.rows {
            for c in 0..self.cols {
                s.data[c] += self.data[r * self.cols + c];
            }
        }
        s
    }

    pub fn sum(&self) -> f32 {
        self.data.iter().sum()
    }

    pub fn min(&self) -> f32 {
        self.data.iter().copied().fold(f32::INFINITY, f32::min)
    }

    pub fn max(&self) -> f32 {
        self.data.iter().copied().fold(f32::NEG_INFINITY, f32::max)
    }

    /// Frobenius inner product `Σ_{ij} A_{ij} B_{ij}`.
    pub fn dot(&self, other: &Matrix) -> f32 {
        assert_eq!(self.shape(), other.shape(), "dot: shape mismatch");
        self.data
            .iter()
            .zip(other.data.iter())
            .map(|(&a, &b)| a * b)
            .sum()
    }

    /// `true` iff any element is NaN or infinite. Divergence detection runs
    /// this on every gradient buffer each epoch, so it short-circuits.
    pub fn has_non_finite(&self) -> bool {
        self.data.iter().any(|v| !v.is_finite())
    }

    /// Max absolute element-wise difference, for approximate comparisons.
    pub fn max_abs_diff(&self, other: &Matrix) -> f32 {
        assert_eq!(self.shape(), other.shape(), "max_abs_diff: shape mismatch");
        self.data
            .iter()
            .zip(other.data.iter())
            .map(|(&a, &b)| (a - b).abs())
            .fold(0.0, f32::max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn has_non_finite_detects_nan_and_inf() {
        let mut m = Matrix::from_vec(2, 2, vec![1.0, -2.0, 0.0, 3.5]);
        assert!(!m.has_non_finite());
        m.data_mut()[3] = f32::NAN;
        assert!(m.has_non_finite());
        m.data_mut()[3] = f32::NEG_INFINITY;
        assert!(m.has_non_finite());
    }

    #[test]
    fn matmul_small_known_result() {
        let a = Matrix::from_vec(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let b = Matrix::from_vec(3, 2, vec![7.0, 8.0, 9.0, 10.0, 11.0, 12.0]);
        let c = a.matmul(&b);
        assert_eq!(c.data(), &[58.0, 64.0, 139.0, 154.0]);
    }

    #[test]
    fn matmul_transposed_variants_agree() {
        let a = Matrix::from_fn(4, 3, |r, c| (r * 3 + c) as f32 * 0.5 - 2.0);
        let b = Matrix::from_fn(4, 5, |r, c| (r + c) as f32 * 0.25);
        let via_explicit = a.transpose().matmul(&b);
        assert!(a.matmul_at_b(&b).max_abs_diff(&via_explicit) < 1e-6);

        let c = Matrix::from_fn(6, 3, |r, c| (r as f32 - c as f32) * 0.1);
        let via_explicit = a.matmul(&c.transpose());
        assert!(a.matmul_a_bt(&c).max_abs_diff(&via_explicit) < 1e-6);
    }

    #[test]
    fn transpose_involution() {
        let a = Matrix::from_fn(3, 5, |r, c| (r * 5 + c) as f32);
        assert_eq!(a.transpose().transpose(), a);
    }

    #[test]
    fn col_sums_and_reductions() {
        let a = Matrix::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]);
        assert_eq!(a.col_sums().data(), &[4.0, 6.0]);
        assert_eq!(a.sum(), 10.0);
        assert_eq!(a.min(), 1.0);
        assert_eq!(a.max(), 4.0);
        assert_eq!(a.dot(&a), 30.0);
    }

    #[test]
    #[should_panic(expected = "inner dimensions differ")]
    fn matmul_shape_mismatch_panics() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(2, 3);
        let _ = a.matmul(&b);
    }

    #[test]
    fn scalar_helpers() {
        let s = Matrix::scalar(3.5);
        assert_eq!(s.item(), 3.5);
        assert_eq!(s.shape(), (1, 1));
    }
}
