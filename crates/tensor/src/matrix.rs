//! Dense row-major `f32` matrices and the BLAS-free kernels used by the
//! autograd engine.
//!
//! The matmul kernels partition their *output* rows across the scoped-thread
//! runtime in `mixq-parallel`: each thread writes a disjoint row range and
//! the per-element accumulation order equals the serial loop, so results are
//! bit-identical at any thread count (`MIXQ_THREADS` /
//! [`mixq_parallel::set_num_threads`]). Small outputs stay on the serial
//! path.

use crate::pool;
use mixq_parallel::{par_map_slice, par_row_chunks_mut, par_zip_slice};

/// Output-tile height of the register-tiled GEMM micro-kernels: each tile
/// keeps `TILE_M × TILE_N` accumulators in registers across the whole
/// k-reduction, so every loaded `B` vector is reused `TILE_M` times (the
/// naive kernel reloads all of `B` once per output row).
const TILE_M: usize = 4;
/// Output-tile width, chosen at compile time from the target's SIMD width:
/// the per-`k` overhead of a tile row (zero test + broadcast of one `A`
/// element) is amortized over `TILE_N` lanes, so the tile must widen with
/// the vector unit or the naive axpy kernel — whose inner loop is one long
/// contiguous stream — wins on wide targets. `TILE_M × TILE_N` accumulators
/// must also still fit the architectural register file (8 × 512-bit on
/// AVX-512, 8 × 256-bit on AVX2, 8 × 128-bit baseline). Tile width changes
/// never change results: each output element's k-reduction stays in full
/// serial order regardless of how many elements are carried per pass.
const TILE_N: usize = if cfg!(target_feature = "avx512f") {
    64
} else if cfg!(target_feature = "avx") {
    16
} else {
    8
};
/// Shapes below this many multiply-accumulates dispatch to the unblocked
/// kernels: tiling overhead (remainder handling, accumulator spills) only
/// pays off once the operands outgrow L1.
const TILE_MIN_MACS: usize = 1 << 13;
/// Square block edge for the cache-blocked transpose: a 32×32 f32 tile is
/// 4 KiB on each side of the copy, so both the strided reads and the
/// contiguous writes stay within L1 while a tile is live.
const TRANSPOSE_BLOCK: usize = 32;

/// A dense row-major matrix of `f32`.
///
/// This is the only dense tensor type in the workspace: GNN training state
/// is naturally 2-D (nodes × features, features × features), and scalars are
/// represented as `1×1` matrices.
///
/// ```
/// use mixq_tensor::Matrix;
/// let a = Matrix::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]);
/// let b = Matrix::from_vec(2, 2, vec![0.0, 1.0, 1.0, 0.0]);
/// assert_eq!(a.matmul(&b).data(), &[2.0, 1.0, 4.0, 3.0]);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f32>,
}

impl Matrix {
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Like [`Matrix::zeros`] but draws the backing buffer from the
    /// thread-local [`pool`]; bit-identical semantics (the buffer is
    /// zero-filled). Hot-path temporaries that are later [`recycled`]
    /// (`Matrix::recycle`) should use this so steady-state epochs reuse
    /// warm memory instead of allocating.
    ///
    /// [`recycled`]: Matrix::recycle
    pub fn zeros_pooled(rows: usize, cols: usize) -> Self {
        Self {
            rows,
            cols,
            data: pool::take_zeroed(rows * cols),
        }
    }

    /// A pooled matrix with unspecified (but initialized) contents, for
    /// kernels that overwrite every element before reading any.
    fn scratch_pooled(rows: usize, cols: usize) -> Self {
        Self {
            rows,
            cols,
            data: pool::take_scratch(rows * cols),
        }
    }

    /// A pooled copy of `self` (same data, buffer drawn from the pool).
    pub fn clone_pooled(&self) -> Self {
        let mut data = pool::take_scratch(self.data.len());
        data.copy_from_slice(&self.data);
        Self {
            rows: self.rows,
            cols: self.cols,
            data,
        }
    }

    /// Returns this matrix's buffer to the thread-local [`pool`] for reuse.
    /// Dropping instead is always correct — recycling is an optimization,
    /// not an obligation.
    pub fn recycle(self) {
        pool::give(self.data);
    }

    pub fn ones(rows: usize, cols: usize) -> Self {
        Self::filled(rows, cols, 1.0)
    }

    pub fn filled(rows: usize, cols: usize, v: f32) -> Self {
        Self {
            rows,
            cols,
            data: vec![v; rows * cols],
        }
    }

    /// A `1×1` matrix holding a single scalar.
    pub fn scalar(v: f32) -> Self {
        Self {
            rows: 1,
            cols: 1,
            data: vec![v],
        }
    }

    pub fn from_vec(rows: usize, cols: usize, data: Vec<f32>) -> Self {
        assert_eq!(data.len(), rows * cols, "data length must equal rows*cols");
        Self { rows, cols, data }
    }

    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> f32) -> Self {
        let mut data = Vec::with_capacity(rows * cols);
        for r in 0..rows {
            for c in 0..cols {
                data.push(f(r, c));
            }
        }
        Self { rows, cols, data }
    }

    pub fn rows(&self) -> usize {
        self.rows
    }

    pub fn cols(&self) -> usize {
        self.cols
    }

    pub fn numel(&self) -> usize {
        self.data.len()
    }

    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    pub fn data(&self) -> &[f32] {
        &self.data
    }

    pub fn data_mut(&mut self) -> &mut [f32] {
        &mut self.data
    }

    pub fn into_vec(self) -> Vec<f32> {
        self.data
    }

    #[inline]
    pub fn get(&self, r: usize, c: usize) -> f32 {
        self.data[r * self.cols + c]
    }

    #[inline]
    pub fn set(&mut self, r: usize, c: usize, v: f32) {
        self.data[r * self.cols + c] = v;
    }

    /// The value of a `1×1` matrix.
    pub fn item(&self) -> f32 {
        assert_eq!(self.numel(), 1, "item() requires a 1×1 matrix");
        self.data[0]
    }

    pub fn row_slice(&self, r: usize) -> &[f32] {
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    pub fn row_slice_mut(&mut self, r: usize) -> &mut [f32] {
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Matrix product `C = A · B`.
    ///
    /// Large shapes run the register-tiled micro-kernel
    /// ([`TILE_M`]`×`[`TILE_N`] output tiles with unrolled accumulators kept
    /// in registers across the whole k-loop); small shapes dispatch to the
    /// unblocked ikj kernel. Both keep each output element's k-reduction in
    /// full serial order — and replicate the `a == 0` skip — so the result
    /// is **bit-identical** across kernels and across thread counts (output
    /// rows are partitioned into disjoint chunks either way).
    pub fn matmul(&self, b: &Matrix) -> Matrix {
        assert_eq!(self.cols, b.rows, "matmul: inner dimensions differ");
        let t0 = mixq_telemetry::kernel_start();
        let mut c = Matrix::zeros_pooled(self.rows, b.cols);
        let macs = self.rows * self.cols * b.cols;
        let tiled = macs >= TILE_MIN_MACS && b.cols >= TILE_N;
        par_row_chunks_mut(&mut c.data, self.rows, b.cols, |start, chunk| {
            if tiled {
                self.matmul_chunk_tiled(b, start, chunk);
            } else {
                self.matmul_chunk(b, start, chunk);
            }
        });
        mixq_telemetry::kernel_finish("tensor.matmul", t0, macs as u64);
        c
    }

    /// [`Matrix::matmul`] forced through the unblocked ikj kernel (the
    /// inner loop is contiguous over both `B` and `C` so it
    /// auto-vectorizes). Public so benchmarks and the tiled-vs-naive
    /// bit-identity fuzz suite can compare kernels; production code should
    /// call [`Matrix::matmul`], which dispatches by shape.
    pub fn matmul_unblocked(&self, b: &Matrix) -> Matrix {
        assert_eq!(self.cols, b.rows, "matmul: inner dimensions differ");
        let t0 = mixq_telemetry::kernel_start();
        let mut c = Matrix::zeros_pooled(self.rows, b.cols);
        par_row_chunks_mut(&mut c.data, self.rows, b.cols, |start, chunk| {
            self.matmul_chunk(b, start, chunk);
        });
        let macs = (self.rows * self.cols * b.cols) as u64;
        mixq_telemetry::kernel_finish("tensor.matmul", t0, macs);
        c
    }

    /// Unblocked ikj kernel over one chunk of output rows.
    fn matmul_chunk(&self, b: &Matrix, start: usize, chunk: &mut [f32]) {
        for (di, crow) in chunk.chunks_mut(b.cols).enumerate() {
            let i = start + di;
            for k in 0..self.cols {
                let a = self.data[i * self.cols + k];
                if a == 0.0 {
                    continue;
                }
                let brow = &b.data[k * b.cols..(k + 1) * b.cols];
                for (cv, &bv) in crow.iter_mut().zip(brow.iter()) {
                    *cv += a * bv;
                }
            }
        }
    }

    /// Register-tiled kernel over one chunk of output rows: `TILE_M` rows ×
    /// `TILE_N` columns of `C` accumulate in a register tile while `k` runs
    /// its full serial range, so each `B` vector load feeds `TILE_M` rows.
    /// Row/column remainders fall back to the unblocked loop, which applies
    /// the same per-element accumulation order — the whole kernel is
    /// bit-identical to [`Matrix::matmul_chunk`].
    fn matmul_chunk_tiled(&self, b: &Matrix, start: usize, chunk: &mut [f32]) {
        let n = b.cols;
        let kdim = self.cols;
        let rows = chunk.len() / n;
        let full_rows = rows - rows % TILE_M;
        for i0 in (0..full_rows).step_by(TILE_M) {
            let arows: [&[f32]; TILE_M] = std::array::from_fn(|ii| {
                let g = start + i0 + ii;
                &self.data[g * kdim..(g + 1) * kdim]
            });
            let mut j = 0;
            while j + TILE_N <= n {
                let mut acc = [[0f32; TILE_N]; TILE_M];
                for k in 0..kdim {
                    let bk = &b.data[k * n + j..k * n + j + TILE_N];
                    for (accr, arow) in acc.iter_mut().zip(&arows) {
                        let a = arow[k];
                        if a == 0.0 {
                            continue;
                        }
                        for (av, &bv) in accr.iter_mut().zip(bk) {
                            *av += a * bv;
                        }
                    }
                }
                for (ii, accr) in acc.iter().enumerate() {
                    let o = (i0 + ii) * n + j;
                    chunk[o..o + TILE_N].copy_from_slice(accr);
                }
                j += TILE_N;
            }
            if j < n {
                for (ii, arow) in arows.iter().enumerate() {
                    for (k, &a) in arow.iter().enumerate() {
                        if a == 0.0 {
                            continue;
                        }
                        let brow = &b.data[k * n + j..(k + 1) * n];
                        let crow = &mut chunk[(i0 + ii) * n + j..(i0 + ii + 1) * n];
                        for (cv, &bv) in crow.iter_mut().zip(brow.iter()) {
                            *cv += a * bv;
                        }
                    }
                }
            }
        }
        if full_rows < rows {
            self.matmul_chunk(b, start + full_rows, &mut chunk[full_rows * n..]);
        }
    }

    /// `C = Aᵀ · B` without materializing the transpose. Output rows (the
    /// `k` index over `A`'s columns) are partitioned across threads; within
    /// each output element the reduction over `i` runs in serial order (with
    /// the `a == 0` skip), so the result is bit-identical to the
    /// single-threaded unblocked kernel. Large shapes run the register-tiled
    /// micro-kernel, small shapes the unblocked loop.
    pub fn matmul_at_b(&self, b: &Matrix) -> Matrix {
        assert_eq!(self.rows, b.rows, "matmul_at_b: row counts differ");
        let t0 = mixq_telemetry::kernel_start();
        let mut c = Matrix::zeros_pooled(self.cols, b.cols);
        let macs = self.rows * self.cols * b.cols;
        let tiled = macs >= TILE_MIN_MACS && b.cols >= TILE_N;
        par_row_chunks_mut(&mut c.data, self.cols, b.cols, |start, chunk| {
            if tiled {
                self.matmul_at_b_chunk_tiled(b, start, chunk);
            } else {
                self.matmul_at_b_chunk(b, start, chunk);
            }
        });
        mixq_telemetry::kernel_finish("tensor.matmul_at_b", t0, macs as u64);
        c
    }

    /// [`Matrix::matmul_at_b`] forced through the unblocked kernel, for
    /// benchmarks and bit-identity suites.
    pub fn matmul_at_b_unblocked(&self, b: &Matrix) -> Matrix {
        assert_eq!(self.rows, b.rows, "matmul_at_b: row counts differ");
        let t0 = mixq_telemetry::kernel_start();
        let mut c = Matrix::zeros_pooled(self.cols, b.cols);
        par_row_chunks_mut(&mut c.data, self.cols, b.cols, |start, chunk| {
            self.matmul_at_b_chunk(b, start, chunk);
        });
        let macs = (self.rows * self.cols * b.cols) as u64;
        mixq_telemetry::kernel_finish("tensor.matmul_at_b", t0, macs);
        c
    }

    /// Unblocked `AᵀB` kernel over one chunk of output rows.
    fn matmul_at_b_chunk(&self, b: &Matrix, start: usize, chunk: &mut [f32]) {
        let k_hi = start + chunk.len() / b.cols;
        for i in 0..self.rows {
            let brow = &b.data[i * b.cols..(i + 1) * b.cols];
            for k in start..k_hi {
                let a = self.data[i * self.cols + k];
                if a == 0.0 {
                    continue;
                }
                let crow = &mut chunk[(k - start) * b.cols..(k - start + 1) * b.cols];
                for (cv, &bv) in crow.iter_mut().zip(brow.iter()) {
                    *cv += a * bv;
                }
            }
        }
    }

    /// Register-tiled `AᵀB` kernel: a `TILE_M × TILE_N` tile of `C`
    /// accumulates in registers while the reduction index `i` runs its full
    /// serial range; the `TILE_M` `A` loads per step are contiguous
    /// (`A[i, k0..k0+TILE_M]`). Per-element `i` order and the `a == 0` skip
    /// match the unblocked kernel exactly, so results are bit-identical.
    fn matmul_at_b_chunk_tiled(&self, b: &Matrix, start: usize, chunk: &mut [f32]) {
        let n = b.cols;
        let m = self.rows;
        let kdim = self.cols;
        let rows = chunk.len() / n;
        let full_rows = rows - rows % TILE_M;
        for k0 in (0..full_rows).step_by(TILE_M) {
            let gk = start + k0;
            let mut j = 0;
            while j + TILE_N <= n {
                let mut acc = [[0f32; TILE_N]; TILE_M];
                for i in 0..m {
                    let av = &self.data[i * kdim + gk..i * kdim + gk + TILE_M];
                    let bk = &b.data[i * n + j..i * n + j + TILE_N];
                    for (accr, &a) in acc.iter_mut().zip(av) {
                        if a == 0.0 {
                            continue;
                        }
                        for (o, &bv) in accr.iter_mut().zip(bk) {
                            *o += a * bv;
                        }
                    }
                }
                for (kk, accr) in acc.iter().enumerate() {
                    let o = (k0 + kk) * n + j;
                    chunk[o..o + TILE_N].copy_from_slice(accr);
                }
                j += TILE_N;
            }
            if j < n {
                for i in 0..m {
                    let brow = &b.data[i * n + j..(i + 1) * n];
                    for kk in 0..TILE_M {
                        let a = self.data[i * kdim + gk + kk];
                        if a == 0.0 {
                            continue;
                        }
                        let crow = &mut chunk[(k0 + kk) * n + j..(k0 + kk + 1) * n];
                        for (cv, &bv) in crow.iter_mut().zip(brow.iter()) {
                            *cv += a * bv;
                        }
                    }
                }
            }
        }
        if full_rows < rows {
            self.matmul_at_b_chunk(b, start + full_rows, &mut chunk[full_rows * n..]);
        }
    }

    /// `C = A · Bᵀ` without materializing the transpose. Each output element
    /// is an independent dot product accumulated in serial `k` order; rows
    /// are partitioned across threads. Large shapes run a `TILE_M × TILE_M`
    /// blocked kernel that reuses each loaded `A`/`B` value across the tile,
    /// small shapes the per-element loop.
    pub fn matmul_a_bt(&self, b: &Matrix) -> Matrix {
        assert_eq!(self.cols, b.cols, "matmul_a_bt: col counts differ");
        let t0 = mixq_telemetry::kernel_start();
        let mut c = Matrix::zeros_pooled(self.rows, b.rows);
        let macs = self.rows * self.cols * b.rows;
        let tiled = macs >= TILE_MIN_MACS && b.rows >= TILE_M;
        par_row_chunks_mut(&mut c.data, self.rows, b.rows, |start, chunk| {
            if tiled {
                self.matmul_a_bt_chunk_tiled(b, start, chunk);
            } else {
                self.matmul_a_bt_chunk(b, start, chunk);
            }
        });
        mixq_telemetry::kernel_finish("tensor.matmul_a_bt", t0, macs as u64);
        c
    }

    /// [`Matrix::matmul_a_bt`] forced through the unblocked kernel, for
    /// benchmarks and bit-identity suites.
    pub fn matmul_a_bt_unblocked(&self, b: &Matrix) -> Matrix {
        assert_eq!(self.cols, b.cols, "matmul_a_bt: col counts differ");
        let t0 = mixq_telemetry::kernel_start();
        let mut c = Matrix::zeros_pooled(self.rows, b.rows);
        par_row_chunks_mut(&mut c.data, self.rows, b.rows, |start, chunk| {
            self.matmul_a_bt_chunk(b, start, chunk);
        });
        let macs = (self.rows * self.cols * b.rows) as u64;
        mixq_telemetry::kernel_finish("tensor.matmul_a_bt", t0, macs);
        c
    }

    /// Unblocked `ABᵀ` kernel (independent dot products) over one chunk.
    fn matmul_a_bt_chunk(&self, b: &Matrix, start: usize, chunk: &mut [f32]) {
        for (di, crow) in chunk.chunks_mut(b.rows).enumerate() {
            let arow = &self.data[(start + di) * self.cols..(start + di + 1) * self.cols];
            for (j, cv) in crow.iter_mut().enumerate() {
                let brow = &b.data[j * b.cols..(j + 1) * b.cols];
                let mut acc = 0f32;
                for (&av, &bv) in arow.iter().zip(brow.iter()) {
                    acc += av * bv;
                }
                *cv = acc;
            }
        }
    }

    /// Blocked `ABᵀ` kernel: `TILE_M` rows of `A` × `TILE_M` rows of `B`
    /// accumulate a `TILE_M × TILE_M` register tile over the shared `k`
    /// loop, cutting `B` traffic by `TILE_M×`. Each accumulator still adds
    /// its products in serial `k` order (scalar adds, no horizontal sums),
    /// so every element is bit-identical to the unblocked dot product.
    fn matmul_a_bt_chunk_tiled(&self, b: &Matrix, start: usize, chunk: &mut [f32]) {
        let nb = b.rows;
        let kdim = self.cols;
        let rows = chunk.len() / nb;
        let full_rows = rows - rows % TILE_M;
        let full_j = nb - nb % TILE_M;
        for i0 in (0..full_rows).step_by(TILE_M) {
            let arows: [&[f32]; TILE_M] = std::array::from_fn(|ii| {
                let g = start + i0 + ii;
                &self.data[g * kdim..(g + 1) * kdim]
            });
            for j0 in (0..full_j).step_by(TILE_M) {
                let brows: [&[f32]; TILE_M] =
                    std::array::from_fn(|jj| &b.data[(j0 + jj) * kdim..(j0 + jj + 1) * kdim]);
                let mut acc = [[0f32; TILE_M]; TILE_M];
                for k in 0..kdim {
                    for (accr, arow) in acc.iter_mut().zip(&arows) {
                        let a = arow[k];
                        for (o, brow) in accr.iter_mut().zip(&brows) {
                            *o += a * brow[k];
                        }
                    }
                }
                for (ii, accr) in acc.iter().enumerate() {
                    let o = (i0 + ii) * nb + j0;
                    chunk[o..o + TILE_M].copy_from_slice(accr);
                }
            }
            for j in full_j..nb {
                let brow = &b.data[j * kdim..(j + 1) * kdim];
                for (ii, arow) in arows.iter().enumerate() {
                    let mut acc = 0f32;
                    for (&av, &bv) in arow.iter().zip(brow.iter()) {
                        acc += av * bv;
                    }
                    chunk[(ii + i0) * nb + j] = acc;
                }
            }
        }
        if full_rows < rows {
            self.matmul_a_bt_chunk(b, start + full_rows, &mut chunk[full_rows * nb..]);
        }
    }

    /// Cache-blocked, parallel transpose. Output rows (= input columns) are
    /// partitioned across threads; within a chunk the copy walks
    /// [`TRANSPOSE_BLOCK`]² tiles so both the strided reads and the
    /// contiguous writes stay cache-resident. Pure data movement — the
    /// result is trivially identical to the naive double loop.
    pub fn transpose(&self) -> Matrix {
        let t0 = mixq_telemetry::kernel_start();
        let mut t = Matrix::scratch_pooled(self.cols, self.rows);
        let (rows, cols) = (self.rows, self.cols);
        par_row_chunks_mut(&mut t.data, cols, rows, |start, chunk| {
            let out_rows = chunk.len() / rows;
            for r0 in (0..rows).step_by(TRANSPOSE_BLOCK) {
                let r1 = (r0 + TRANSPOSE_BLOCK).min(rows);
                for c0 in (0..out_rows).step_by(TRANSPOSE_BLOCK) {
                    let c1 = (c0 + TRANSPOSE_BLOCK).min(out_rows);
                    for c in c0..c1 {
                        for r in r0..r1 {
                            chunk[c * rows + r] = self.data[r * cols + start + c];
                        }
                    }
                }
            }
        });
        mixq_telemetry::kernel_finish("tensor.transpose", t0, self.numel() as u64);
        t
    }

    pub fn add_assign(&mut self, other: &Matrix) {
        assert_eq!(self.shape(), other.shape(), "add_assign: shape mismatch");
        for (a, &b) in self.data.iter_mut().zip(other.data.iter()) {
            *a += b;
        }
    }

    pub fn scale_assign(&mut self, c: f32) {
        for v in &mut self.data {
            *v *= c;
        }
    }

    pub fn map(&self, f: impl Fn(f32) -> f32) -> Matrix {
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().map(|&v| f(v)).collect(),
        }
    }

    /// Like [`Matrix::map`] but parallelized over contiguous chunks for
    /// large matrices. Requires `f: Sync` (pure element-wise kernels such as
    /// quantize/dequantize); results are bit-identical to `map`.
    pub fn par_map(&self, f: impl Fn(f32) -> f32 + Sync) -> Matrix {
        let mut data = pool::take_scratch(self.data.len());
        par_map_slice(&self.data, &mut data, f);
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data,
        }
    }

    /// Like [`Matrix::zip`] but parallelized over contiguous chunks for
    /// large matrices; bit-identical to `zip`.
    pub fn par_zip(&self, other: &Matrix, f: impl Fn(f32, f32) -> f32 + Sync) -> Matrix {
        assert_eq!(self.shape(), other.shape(), "par_zip: shape mismatch");
        let mut data = pool::take_scratch(self.data.len());
        par_zip_slice(&self.data, &other.data, &mut data, f);
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data,
        }
    }

    /// Element-wise binary combination; shapes must match.
    pub fn zip(&self, other: &Matrix, f: impl Fn(f32, f32) -> f32) -> Matrix {
        assert_eq!(self.shape(), other.shape(), "zip: shape mismatch");
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self
                .data
                .iter()
                .zip(other.data.iter())
                .map(|(&a, &b)| f(a, b))
                .collect(),
        }
    }

    /// Sum of each column as a `1×cols` matrix.
    pub fn col_sums(&self) -> Matrix {
        let mut s = Matrix::zeros(1, self.cols);
        for r in 0..self.rows {
            for c in 0..self.cols {
                s.data[c] += self.data[r * self.cols + c];
            }
        }
        s
    }

    pub fn sum(&self) -> f32 {
        self.data.iter().sum()
    }

    pub fn min(&self) -> f32 {
        self.data.iter().copied().fold(f32::INFINITY, f32::min)
    }

    pub fn max(&self) -> f32 {
        self.data.iter().copied().fold(f32::NEG_INFINITY, f32::max)
    }

    /// Frobenius inner product `Σ_{ij} A_{ij} B_{ij}`.
    pub fn dot(&self, other: &Matrix) -> f32 {
        assert_eq!(self.shape(), other.shape(), "dot: shape mismatch");
        self.data
            .iter()
            .zip(other.data.iter())
            .map(|(&a, &b)| a * b)
            .sum()
    }

    /// `true` iff any element is NaN or infinite. Divergence detection runs
    /// this on every gradient buffer each epoch, so it short-circuits.
    pub fn has_non_finite(&self) -> bool {
        self.data.iter().any(|v| !v.is_finite())
    }

    /// Max absolute element-wise difference, for approximate comparisons.
    pub fn max_abs_diff(&self, other: &Matrix) -> f32 {
        assert_eq!(self.shape(), other.shape(), "max_abs_diff: shape mismatch");
        self.data
            .iter()
            .zip(other.data.iter())
            .map(|(&a, &b)| (a - b).abs())
            .fold(0.0, f32::max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn has_non_finite_detects_nan_and_inf() {
        let mut m = Matrix::from_vec(2, 2, vec![1.0, -2.0, 0.0, 3.5]);
        assert!(!m.has_non_finite());
        m.data_mut()[3] = f32::NAN;
        assert!(m.has_non_finite());
        m.data_mut()[3] = f32::NEG_INFINITY;
        assert!(m.has_non_finite());
    }

    #[test]
    fn matmul_small_known_result() {
        let a = Matrix::from_vec(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let b = Matrix::from_vec(3, 2, vec![7.0, 8.0, 9.0, 10.0, 11.0, 12.0]);
        let c = a.matmul(&b);
        assert_eq!(c.data(), &[58.0, 64.0, 139.0, 154.0]);
    }

    #[test]
    fn matmul_transposed_variants_agree() {
        let a = Matrix::from_fn(4, 3, |r, c| (r * 3 + c) as f32 * 0.5 - 2.0);
        let b = Matrix::from_fn(4, 5, |r, c| (r + c) as f32 * 0.25);
        let via_explicit = a.transpose().matmul(&b);
        assert!(a.matmul_at_b(&b).max_abs_diff(&via_explicit) < 1e-6);

        let c = Matrix::from_fn(6, 3, |r, c| (r as f32 - c as f32) * 0.1);
        let via_explicit = a.matmul(&c.transpose());
        assert!(a.matmul_a_bt(&c).max_abs_diff(&via_explicit) < 1e-6);
    }

    #[test]
    fn transpose_involution() {
        let a = Matrix::from_fn(3, 5, |r, c| (r * 5 + c) as f32);
        assert_eq!(a.transpose().transpose(), a);
        // Shapes that straddle TRANSPOSE_BLOCK exercise the tile remainders.
        let b = Matrix::from_fn(45, 71, |r, c| (r as f32 - 0.5) * (c as f32 + 0.25));
        let naive = Matrix::from_fn(71, 45, |r, c| b.get(c, r));
        assert_eq!(b.transpose(), naive);
        assert_eq!(b.transpose().transpose(), b);
    }

    #[test]
    fn tiled_kernels_match_unblocked_bitwise() {
        // Big enough to cross TILE_MIN_MACS with awkward (non-multiple-of-
        // tile) dimensions on every axis, seasoned with exact zeros so the
        // a == 0 skip fires inside tiles.
        let a = Matrix::from_fn(37, 29, |r, c| {
            if (r + c) % 7 == 0 {
                0.0
            } else {
                ((r * 31 + c * 17) % 13) as f32 * 0.37 - 2.0
            }
        });
        let b = Matrix::from_fn(29, 21, |r, c| ((r * 5 + c * 3) % 11) as f32 * 0.21 - 1.0);
        let (t, u) = (a.matmul(&b), a.matmul_unblocked(&b));
        assert_eq!(t.data(), u.data(), "matmul tiled vs unblocked");

        let b2 = Matrix::from_fn(37, 21, |r, c| ((r + 2 * c) % 9) as f32 * 0.11 - 0.4);
        let (t, u) = (a.matmul_at_b(&b2), a.matmul_at_b_unblocked(&b2));
        assert_eq!(t.data(), u.data(), "matmul_at_b tiled vs unblocked");

        let b3 = Matrix::from_fn(23, 29, |r, c| ((3 * r + c) % 8) as f32 * 0.19 - 0.7);
        let (t, u) = (a.matmul_a_bt(&b3), a.matmul_a_bt_unblocked(&b3));
        assert_eq!(t.data(), u.data(), "matmul_a_bt tiled vs unblocked");
    }

    #[test]
    fn pooled_matmul_reuses_clean_buffers() {
        // A recycled dirty buffer must not leak stale values into a later
        // product: zeros_pooled re-zeroes on reuse.
        let a = Matrix::from_fn(16, 16, |r, c| (r + c) as f32);
        let b = Matrix::from_fn(16, 16, |r, c| (r as f32) - (c as f32));
        let first = a.matmul(&b);
        let expect = first.clone();
        first.recycle();
        let again = a.matmul(&b);
        assert_eq!(again, expect);
        let pooled_clone = again.clone_pooled();
        assert_eq!(pooled_clone, expect);
        pooled_clone.recycle();
    }

    #[test]
    fn col_sums_and_reductions() {
        let a = Matrix::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]);
        assert_eq!(a.col_sums().data(), &[4.0, 6.0]);
        assert_eq!(a.sum(), 10.0);
        assert_eq!(a.min(), 1.0);
        assert_eq!(a.max(), 4.0);
        assert_eq!(a.dot(&a), 30.0);
    }

    #[test]
    #[should_panic(expected = "inner dimensions differ")]
    fn matmul_shape_mismatch_panics() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(2, 3);
        let _ = a.matmul(&b);
    }

    #[test]
    fn scalar_helpers() {
        let s = Matrix::scalar(3.5);
        assert_eq!(s.item(), 3.5);
        assert_eq!(s.shape(), (1, 1));
    }
}
