//! The workspace-wide error type.
//!
//! Fallible public APIs across the workspace (checkpoint parsing, dataset
//! loading, bit-assignment parsing, executor construction) return
//! [`MixqError`] instead of ad-hoc `Result<_, String>` / panics, so callers
//! can match on the failure class and `?` works uniformly with
//! `Box<dyn Error>` mains.

use std::error::Error;
use std::fmt;
use std::io;

/// Convenience alias used by fallible APIs across the workspace.
pub type MixqResult<T> = Result<T, MixqError>;

/// Failure classes of the MixQ workspace.
#[derive(Debug)]
pub enum MixqError {
    /// Text input (checkpoint, edge list, bit assignment, …) is malformed.
    /// `kind` names the format, `detail` says what was wrong and where.
    Parse { kind: &'static str, detail: String },
    /// Two tensors / graph structures have incompatible dimensions.
    ShapeMismatch {
        context: &'static str,
        detail: String,
    },
    /// A configuration value is out of range or inconsistent (bad
    /// hyper-parameter, schema mismatch, unsupported quantizer, …).
    InvalidConfig {
        context: &'static str,
        detail: String,
    },
    /// An underlying I/O operation failed.
    Io(io::Error),
}

impl MixqError {
    /// Shorthand for a [`MixqError::Parse`] with formatted detail.
    pub fn parse(kind: &'static str, detail: impl Into<String>) -> Self {
        Self::Parse {
            kind,
            detail: detail.into(),
        }
    }

    /// Shorthand for a [`MixqError::ShapeMismatch`] with formatted detail.
    pub fn shape(context: &'static str, detail: impl Into<String>) -> Self {
        Self::ShapeMismatch {
            context,
            detail: detail.into(),
        }
    }

    /// Shorthand for a [`MixqError::InvalidConfig`] with formatted detail.
    pub fn config(context: &'static str, detail: impl Into<String>) -> Self {
        Self::InvalidConfig {
            context,
            detail: detail.into(),
        }
    }
}

impl fmt::Display for MixqError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Parse { kind, detail } => write!(f, "{kind}: {detail}"),
            Self::ShapeMismatch { context, detail } => {
                write!(f, "{context}: shape mismatch: {detail}")
            }
            Self::InvalidConfig { context, detail } => {
                write!(f, "{context}: invalid configuration: {detail}")
            }
            Self::Io(e) => write!(f, "i/o error: {e}"),
        }
    }
}

impl Error for MixqError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            Self::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for MixqError {
    fn from(e: io::Error) -> Self {
        Self::Io(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_names_the_failure_class() {
        let e = MixqError::parse("mixq-params", "line 3: bad float");
        assert_eq!(e.to_string(), "mixq-params: line 3: bad float");
        let e = MixqError::shape("matmul", "2x3 · 4x5");
        assert!(e.to_string().contains("shape mismatch"));
        let e = MixqError::config("TrainConfig", "lr must be positive");
        assert!(e.to_string().contains("invalid configuration"));
    }

    #[test]
    fn io_errors_convert_and_chain() {
        let io = io::Error::new(io::ErrorKind::NotFound, "no such checkpoint");
        let e: MixqError = io.into();
        assert!(e.to_string().contains("no such checkpoint"));
        assert!(Error::source(&e).is_some(), "io source must be preserved");
    }

    #[test]
    fn works_as_boxed_dyn_error() {
        fn fails() -> Result<(), Box<dyn Error>> {
            Err(MixqError::config("test", "nope"))?;
            Ok(())
        }
        assert!(fails().is_err());
    }
}
