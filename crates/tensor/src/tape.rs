//! Reverse-mode automatic differentiation on a linear tape.
//!
//! A [`Tape`] records every operation of one forward pass as a node with an
//! explicit [`Op`] descriptor; [`Tape::backward`] then walks the nodes in
//! reverse, applying each op's hand-written adjoint rule. Ops are an enum
//! (not closures) so that every backward rule is inspectable and unit-tested
//! against central finite differences (see `gradcheck`).
//!
//! The tape owns three parallel vectors (`values`, `grads`, `ops`): node `i`
//! only ever references parents `< i`, so reverse iteration is a valid
//! topological order. Nodes created from [`Tape::constant`] (inputs,
//! adjacency) do not require gradients and the backward pass skips work
//! feeding them.
//!
//! Quantization-specific ops: [`Tape::fake_quant`] implements simulated
//! quantization with the clipped straight-through estimator, and
//! [`Tape::relaxed_fake_quant`] implements the paper's Eq. 6 — a softmax
//! mixture over per-bit-width quantizers whose mixing logits α are trained
//! by backpropagation. [`Tape::bit_penalty`] is the differentiable bit-cost
//! `C(T)` of Eq. 8.
//!
//! The matmul/spmm forward *and* backward rules run on the row-partitioned
//! parallel kernels ([`Matrix::matmul_a_bt`]/[`Matrix::matmul_at_b`] for
//! `∂matmul`, the transpose SpMM for `∂spmm`), and the fake-quant ops use
//! the parallel element-wise maps — gradients stay bit-identical to the
//! serial engine at any thread count.

use std::sync::Arc;

use mixq_sparse::CsrMatrix;

use crate::matrix::Matrix;
use crate::quant::QuantParams;
use crate::rng::Rng;

/// Handle to a node on the tape.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Var(pub usize);

/// A sparse adjacency matrix paired with its transpose.
///
/// The transpose is needed by the backward rule of `spmm`
/// (`∂L/∂X = Aᵀ · ∂L/∂Y`); building it once per dataset instead of once per
/// tape keeps the epoch loop cheap.
#[derive(Debug)]
pub struct SpPair {
    pub a: Arc<CsrMatrix>,
    pub at: Arc<CsrMatrix>,
}

impl SpPair {
    pub fn new(a: CsrMatrix) -> Arc<Self> {
        let at = Arc::new(a.transpose());
        Arc::new(Self { a: Arc::new(a), at })
    }
}

/// Result of a training-mode batch-norm op: the output var plus the batch
/// statistics the layer needs to maintain running averages.
pub struct BatchNormOut {
    pub y: Var,
    pub mean: Vec<f32>,
    pub var: Vec<f32>,
}

/// Declares the `Op` enum, its `name()` method, and [`ALL_OP_NAMES`] from a
/// single variant list, so the three can never drift apart. The autograd
/// fuzz suite iterates [`ALL_OP_NAMES`] and fails on any name it has no
/// gradient case for — adding a variant here without adding a test case
/// fails that suite, and forgetting to list the variant at all fails the
/// build (the forward op's constructor won't compile).
macro_rules! define_ops {
    (
        $(
            $name:ident $( ( $($tty:ty),* $(,)? ) )? $( { $($f:ident : $fty:ty),* $(,)? } )? => $sname:literal
        ),* $(,)?
    ) => {
        /// One recorded operation. Parent handles always point at earlier
        /// nodes.
        enum Op {
            $(
                $name $( ( $($tty),* ) )? $( { $($f: $fty),* } )?,
            )*
        }

        /// The snake-case name of every `Op` variant, in declaration order.
        /// Test suites enumerate this to guarantee per-variant coverage.
        pub const ALL_OP_NAMES: &[&str] = &[$($sname),*];

        impl Op {
            fn name(&self) -> &'static str {
                match self {
                    $(
                        define_ops!(@pat $name $( ( $($tty),* ) )? $( { $($f: $fty),* } )?) => $sname,
                    )*
                }
            }
        }
    };
    (@pat $name:ident) => { Op::$name };
    (@pat $name:ident ( $($tty:ty),* )) => { Op::$name(..) };
    (@pat $name:ident { $($f:ident : $fty:ty),* }) => { Op::$name { .. } };
}

define_ops! {
    Leaf => "leaf",
    MatMul(Var, Var) => "matmul",
    Spmm {
        pair: Arc<SpPair>,
        x: Var,
    } => "spmm",
    Add(Var, Var) => "add",
    Sub(Var, Var) => "sub",
    Mul(Var, Var) => "mul",
    AddBias {
        x: Var,
        bias: Var,
    } => "add_bias",
    Scale {
        x: Var,
        c: f32,
    } => "scale",
    MulScalarVar {
        x: Var,
        s: Var,
    } => "mul_scalar_var",
    AffineCols {
        x: Var,
        scale: Box<[f32]>,
    } => "affine_cols",
    Exp(Var) => "exp",
    Relu(Var) => "relu",
    LeakyRelu {
        x: Var,
        slope: f32,
    } => "leaky_relu",
    Dropout {
        x: Var,
        mask: Box<[f32]>,
    } => "dropout",
    LogSoftmaxRows(Var) => "log_softmax",
    NllMasked {
        logp: Var,
        targets: Box<[u32]>,
        rows: Box<[u32]>,
    } => "nll",
    BceWithLogits {
        logits: Var,
        targets: Box<Matrix>,
        rows: Box<[u32]>,
    } => "bce",
    BatchNorm {
        x: Var,
        gamma: Var,
        beta: Var,
        xhat: Box<Matrix>,
        inv_std: Box<[f32]>,
    } => "batch_norm",
    GlobalMaxPool {
        x: Var,
        argmax: Box<[u32]>,
    } => "global_max_pool",
    GatAggregate {
        h: Var,
        src: Var,
        dst: Var,
        adj: Arc<CsrMatrix>,
        alphas: Box<[f32]>,
        slope: f32,
    } => "gat_aggregate",
    DotAttnAggregate {
        q: Var,
        k: Var,
        v: Var,
        adj: Arc<CsrMatrix>,
        alphas: Box<[f32]>,
    } => "dot_attn_aggregate",
    SumAll(Var) => "sum_all",
    MeanAll(Var) => "mean_all",
    FakeQuant {
        x: Var,
        qp: QuantParams,
    } => "fake_quant",
    FakeQuantLsq {
        x: Var,
        scale: Var,
        qmin: i32,
        qmax: i32,
        grad_scale: f32,
    } => "fake_quant_lsq",
    FakeQuantRows {
        x: Var,
        qps: Box<[QuantParams]>,
    } => "fake_quant_rows",
    RelaxedFakeQuant {
        x: Var,
        alphas: Var,
        qps: Box<[QuantParams]>,
        quants: Box<[Matrix]>,
    } => "relaxed_fake_quant",
    BitPenalty {
        alphas: Var,
        bits: Box<[f32]>,
        numel: f32,
    } => "bit_penalty",
}

/// The autograd tape. Create one per forward pass.
///
/// ```
/// use mixq_tensor::{Matrix, Tape};
/// let mut t = Tape::new();
/// let w = t.leaf(Matrix::from_vec(1, 2, vec![3.0, -2.0]));
/// let y = t.mul(w, w);           // y = w ⊙ w
/// let loss = t.sum_all(y);       // L = Σ w²
/// t.backward(loss);
/// assert_eq!(t.grad(w).unwrap().data(), &[6.0, -4.0]); // dL/dw = 2w
/// ```
pub struct Tape {
    values: Vec<Matrix>,
    grads: Vec<Option<Matrix>>,
    ops: Vec<Op>,
    requires: Vec<bool>,
}

impl Default for Tape {
    fn default() -> Self {
        Self::new()
    }
}

/// Numerically stable softmax of a small slice.
pub fn softmax_slice(xs: &[f32]) -> Vec<f32> {
    let m = xs.iter().copied().fold(f32::NEG_INFINITY, f32::max);
    let exps: Vec<f32> = xs.iter().map(|&x| (x - m).exp()).collect();
    let sum: f32 = exps.iter().sum();
    exps.into_iter().map(|e| e / sum).collect()
}

impl Tape {
    pub fn new() -> Self {
        Self {
            values: Vec::new(),
            grads: Vec::new(),
            ops: Vec::new(),
            requires: Vec::new(),
        }
    }

    fn push(&mut self, value: Matrix, op: Op, requires: bool) -> Var {
        self.values.push(value);
        self.grads.push(None);
        self.ops.push(op);
        self.requires.push(requires);
        Var(self.values.len() - 1)
    }

    /// A differentiable leaf (parameter). Its gradient is available from
    /// [`Tape::grad`] after `backward`.
    pub fn leaf(&mut self, m: Matrix) -> Var {
        self.push(m, Op::Leaf, true)
    }

    /// A non-differentiable input (features, targets as data, …). Backward
    /// skips all work that would only feed constants.
    pub fn constant(&mut self, m: Matrix) -> Var {
        self.push(m, Op::Leaf, false)
    }

    pub fn value(&self, v: Var) -> &Matrix {
        &self.values[v.0]
    }

    pub fn grad(&self, v: Var) -> Option<&Matrix> {
        self.grads[v.0].as_ref()
    }

    pub fn len(&self) -> usize {
        self.values.len()
    }

    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    fn req(&self, v: Var) -> bool {
        self.requires[v.0]
    }

    // ---- forward ops -----------------------------------------------------

    pub fn matmul(&mut self, a: Var, b: Var) -> Var {
        let v = self.values[a.0].matmul(&self.values[b.0]);
        let r = self.req(a) || self.req(b);
        self.push(v, Op::MatMul(a, b), r)
    }

    /// Sparse × dense product `Y = A · X` where `A` is a fixed adjacency.
    pub fn spmm(&mut self, pair: &Arc<SpPair>, x: Var) -> Var {
        let xm = &self.values[x.0];
        let y = pair.a.spmm(xm.data(), xm.cols());
        let v = Matrix::from_vec(pair.a.rows(), xm.cols(), y);
        let r = self.req(x);
        self.push(
            v,
            Op::Spmm {
                pair: Arc::clone(pair),
                x,
            },
            r,
        )
    }

    pub fn add(&mut self, a: Var, b: Var) -> Var {
        let v = self.values[a.0].zip(&self.values[b.0], |x, y| x + y);
        let r = self.req(a) || self.req(b);
        self.push(v, Op::Add(a, b), r)
    }

    pub fn sub(&mut self, a: Var, b: Var) -> Var {
        let v = self.values[a.0].zip(&self.values[b.0], |x, y| x - y);
        let r = self.req(a) || self.req(b);
        self.push(v, Op::Sub(a, b), r)
    }

    /// Element-wise (Hadamard) product.
    pub fn mul(&mut self, a: Var, b: Var) -> Var {
        let v = self.values[a.0].zip(&self.values[b.0], |x, y| x * y);
        let r = self.req(a) || self.req(b);
        self.push(v, Op::Mul(a, b), r)
    }

    /// Adds a `1×c` bias row to every row of `x`.
    pub fn add_bias(&mut self, x: Var, bias: Var) -> Var {
        let xm = &self.values[x.0];
        let bm = &self.values[bias.0];
        assert_eq!(bm.rows(), 1, "bias must be 1×c");
        assert_eq!(bm.cols(), xm.cols(), "bias width mismatch");
        let mut v = xm.clone();
        for r in 0..v.rows() {
            for (o, &b) in v.row_slice_mut(r).iter_mut().zip(bm.data()) {
                *o += b;
            }
        }
        let r = self.req(x) || self.req(bias);
        self.push(v, Op::AddBias { x, bias }, r)
    }

    pub fn scale(&mut self, x: Var, c: f32) -> Var {
        let v = self.values[x.0].map(|e| e * c);
        let r = self.req(x);
        self.push(v, Op::Scale { x, c }, r)
    }

    /// Multiplies every element of `x` by a learnable scalar `s` (`1×1`),
    /// e.g. GIN's `(1+ε)` factor with `s = 1+ε`.
    pub fn mul_scalar_var(&mut self, x: Var, s: Var) -> Var {
        let sv = self.values[s.0].item();
        let v = self.values[x.0].map(|e| e * sv);
        let r = self.req(x) || self.req(s);
        self.push(v, Op::MulScalarVar { x, s }, r)
    }

    /// Per-column affine map with *constant* coefficients (inference-mode
    /// batch norm): `y[r,c] = x[r,c]·scale[c] + shift[c]`.
    pub fn affine_cols(&mut self, x: Var, scale: Vec<f32>, shift: Vec<f32>) -> Var {
        let xm = &self.values[x.0];
        assert_eq!(scale.len(), xm.cols());
        assert_eq!(shift.len(), xm.cols());
        let mut v = xm.clone();
        for r in 0..v.rows() {
            for (c, o) in v.row_slice_mut(r).iter_mut().enumerate() {
                *o = *o * scale[c] + shift[c];
            }
        }
        let r = self.req(x);
        self.push(
            v,
            Op::AffineCols {
                x,
                scale: scale.into(),
            },
            r,
        )
    }

    /// Element-wise exponential.
    pub fn exp(&mut self, x: Var) -> Var {
        let v = self.values[x.0].map(f32::exp);
        let r = self.req(x);
        self.push(v, Op::Exp(x), r)
    }

    pub fn relu(&mut self, x: Var) -> Var {
        let v = self.values[x.0].map(|e| e.max(0.0));
        let r = self.req(x);
        self.push(v, Op::Relu(x), r)
    }

    pub fn leaky_relu(&mut self, x: Var, slope: f32) -> Var {
        let v = self.values[x.0].map(|e| if e > 0.0 { e } else { slope * e });
        let r = self.req(x);
        self.push(v, Op::LeakyRelu { x, slope }, r)
    }

    /// Inverted dropout: keeps each element with probability `1−p` and
    /// rescales by `1/(1−p)`. Identity when `training` is false or `p == 0`.
    pub fn dropout(&mut self, x: Var, p: f32, rng: &mut Rng, training: bool) -> Var {
        if !training || p <= 0.0 {
            return x;
        }
        assert!(p < 1.0, "dropout probability must be < 1");
        let keep = 1.0 - p;
        let xm = &self.values[x.0];
        let mask: Vec<f32> = (0..xm.numel())
            .map(|_| {
                if rng.bernoulli(keep as f64) {
                    1.0 / keep
                } else {
                    0.0
                }
            })
            .collect();
        self.dropout_with_mask(x, mask)
    }

    /// Dropout with an explicit mask (already including the `1/keep`
    /// scaling); exposed for deterministic tests.
    pub fn dropout_with_mask(&mut self, x: Var, mask: Vec<f32>) -> Var {
        let xm = &self.values[x.0];
        assert_eq!(mask.len(), xm.numel());
        let data: Vec<f32> = xm
            .data()
            .iter()
            .zip(mask.iter())
            .map(|(&v, &m)| v * m)
            .collect();
        let v = Matrix::from_vec(xm.rows(), xm.cols(), data);
        let r = self.req(x);
        self.push(
            v,
            Op::Dropout {
                x,
                mask: mask.into(),
            },
            r,
        )
    }

    /// Row-wise `log_softmax`.
    pub fn log_softmax(&mut self, x: Var) -> Var {
        let xm = &self.values[x.0];
        let mut v = xm.clone();
        for r in 0..v.rows() {
            let row = v.row_slice_mut(r);
            let m = row.iter().copied().fold(f32::NEG_INFINITY, f32::max);
            let lse = m + row.iter().map(|&e| (e - m).exp()).sum::<f32>().ln();
            for e in row.iter_mut() {
                *e -= lse;
            }
        }
        let r = self.req(x);
        self.push(v, Op::LogSoftmaxRows(x), r)
    }

    /// Negative log-likelihood over a subset of rows: mean of
    /// `−logp[rows[i], targets[i]]`. Input must already be log-probabilities.
    pub fn nll_masked(&mut self, logp: Var, rows: &[usize], targets: &[usize]) -> Var {
        assert_eq!(rows.len(), targets.len());
        assert!(!rows.is_empty(), "nll_masked needs at least one row");
        let lm = &self.values[logp.0];
        let mut loss = 0f32;
        for (&r, &t) in rows.iter().zip(targets.iter()) {
            loss -= lm.get(r, t);
        }
        loss /= rows.len() as f32;
        let rows: Box<[u32]> = rows.iter().map(|&r| r as u32).collect();
        let targets: Box<[u32]> = targets.iter().map(|&t| t as u32).collect();
        let r = self.req(logp);
        self.push(
            Matrix::scalar(loss),
            Op::NllMasked {
                logp,
                targets,
                rows,
            },
            r,
        )
    }

    /// Binary cross-entropy with logits over a subset of rows (multi-label
    /// tasks). `targets` has the same shape as `logits`; only `rows` enter
    /// the mean.
    pub fn bce_with_logits_masked(&mut self, logits: Var, targets: &Matrix, rows: &[usize]) -> Var {
        let lm = &self.values[logits.0];
        assert_eq!(lm.shape(), targets.shape());
        assert!(!rows.is_empty());
        let cols = lm.cols();
        let mut loss = 0f32;
        for &r in rows {
            for c in 0..cols {
                let z = lm.get(r, c);
                let t = targets.get(r, c);
                // max(z,0) − z·t + ln(1 + e^{−|z|}) — numerically stable form.
                loss += z.max(0.0) - z * t + (-z.abs()).exp().ln_1p();
            }
        }
        loss /= (rows.len() * cols) as f32;
        let rows: Box<[u32]> = rows.iter().map(|&r| r as u32).collect();
        let r = self.req(logits);
        self.push(
            Matrix::scalar(loss),
            Op::BceWithLogits {
                logits,
                targets: Box::new(targets.clone()),
                rows,
            },
            r,
        )
    }

    /// Training-mode batch normalization over rows (per-column statistics),
    /// `y = γ·(x−μ)/√(σ²+eps) + β`. Returns the batch statistics so the
    /// caller can maintain running averages for inference.
    pub fn batch_norm(&mut self, x: Var, gamma: Var, beta: Var, eps: f32) -> BatchNormOut {
        let xm = &self.values[x.0];
        let (n, c) = xm.shape();
        assert!(n > 0);
        let gm = &self.values[gamma.0];
        let bm = &self.values[beta.0];
        assert_eq!(gm.shape(), (1, c), "gamma must be 1×c");
        assert_eq!(bm.shape(), (1, c), "beta must be 1×c");

        let mean = {
            let mut m = vec![0f32; c];
            for r in 0..n {
                for (j, &v) in xm.row_slice(r).iter().enumerate() {
                    m[j] += v;
                }
            }
            m.iter_mut().for_each(|v| *v /= n as f32);
            m
        };
        let var = {
            let mut s = vec![0f32; c];
            for r in 0..n {
                for (j, &v) in xm.row_slice(r).iter().enumerate() {
                    let d = v - mean[j];
                    s[j] += d * d;
                }
            }
            s.iter_mut().for_each(|v| *v /= n as f32);
            s
        };
        let inv_std: Vec<f32> = var.iter().map(|&v| 1.0 / (v + eps).sqrt()).collect();
        let mut xhat = Matrix::zeros_pooled(n, c);
        let mut y = Matrix::zeros_pooled(n, c);
        for r in 0..n {
            for j in 0..c {
                let h = (xm.get(r, j) - mean[j]) * inv_std[j];
                xhat.set(r, j, h);
                y.set(r, j, gm.data()[j] * h + bm.data()[j]);
            }
        }
        let r = self.req(x) || self.req(gamma) || self.req(beta);
        let yv = self.push(
            y,
            Op::BatchNorm {
                x,
                gamma,
                beta,
                xhat: Box::new(xhat),
                inv_std: inv_std.into(),
            },
            r,
        );
        BatchNormOut { y: yv, mean, var }
    }

    /// Per-graph max pooling. `offsets` has length `G+1`; graph `g` owns
    /// rows `offsets[g]..offsets[g+1]` (all non-empty). Output is `G×c`.
    pub fn global_max_pool(&mut self, x: Var, offsets: &[usize]) -> Var {
        let xm = &self.values[x.0];
        let g = offsets.len() - 1;
        let c = xm.cols();
        assert_eq!(
            *offsets.last().unwrap(),
            xm.rows(),
            "offsets must cover all rows"
        );
        let mut y = Matrix::filled(g, c, f32::NEG_INFINITY);
        let mut argmax = vec![0u32; g * c];
        for gi in 0..g {
            assert!(offsets[gi] < offsets[gi + 1], "graph {gi} has no nodes");
            for r in offsets[gi]..offsets[gi + 1] {
                for (j, &v) in xm.row_slice(r).iter().enumerate() {
                    if v > y.get(gi, j) {
                        y.set(gi, j, v);
                        argmax[gi * c + j] = r as u32;
                    }
                }
            }
        }
        let r = self.req(x);
        self.push(
            y,
            Op::GlobalMaxPool {
                x,
                argmax: argmax.into(),
            },
            r,
        )
    }

    /// Graph attention aggregation (GAT, Veličković et al.):
    /// `y_i = Σ_{j∈N(i)} α_ij · h_j` with
    /// `α_ij = softmax_j(LeakyReLU(src_i + dst_j))`.
    ///
    /// `h` is `n×f` (already transformed by the layer weight), `src`/`dst`
    /// are the `n×1` per-node attention terms (`h·a_src`, `h·a_dst`), and
    /// `adj` supplies the neighbourhood structure (include self-loops for
    /// the standard formulation). Rows without neighbours produce zeros.
    pub fn gat_aggregate(
        &mut self,
        h: Var,
        src: Var,
        dst: Var,
        adj: &Arc<CsrMatrix>,
        slope: f32,
    ) -> Var {
        let hm = &self.values[h.0];
        let (n, fdim) = hm.shape();
        assert_eq!(adj.rows(), n, "adjacency/feature size mismatch");
        assert_eq!(self.values[src.0].shape(), (n, 1), "src must be n×1");
        assert_eq!(self.values[dst.0].shape(), (n, 1), "dst must be n×1");
        let sv = self.values[src.0].data();
        let dv = self.values[dst.0].data();

        let mut alphas = vec![0f32; adj.nnz()];
        let mut y = Matrix::zeros_pooled(n, fdim);
        let row_ptr = adj.row_ptr();
        for i in 0..n {
            let (b, e) = (row_ptr[i], row_ptr[i + 1]);
            if b == e {
                continue;
            }
            // Row-wise softmax over LeakyReLU(src_i + dst_j), max-shifted.
            let mut mx = f32::NEG_INFINITY;
            for (k, (j, _)) in adj.row(i).enumerate() {
                let pre = sv[i] + dv[j];
                let act = if pre > 0.0 { pre } else { slope * pre };
                alphas[b + k] = act;
                mx = mx.max(act);
            }
            let mut z = 0f32;
            for a in &mut alphas[b..e] {
                *a = (*a - mx).exp();
                z += *a;
            }
            for a in &mut alphas[b..e] {
                *a /= z;
            }
            let out = y.row_slice_mut(i);
            for (k, (j, _)) in adj.row(i).enumerate() {
                let w = alphas[b + k];
                for (o, &hv) in out.iter_mut().zip(hm.row_slice(j)) {
                    *o += w * hv;
                }
            }
        }
        let r = self.req(h) || self.req(src) || self.req(dst);
        self.push(
            y,
            Op::GatAggregate {
                h,
                src,
                dst,
                adj: Arc::clone(adj),
                alphas: alphas.into(),
                slope,
            },
            r,
        )
    }

    /// Scaled dot-product attention aggregation over graph neighbourhoods
    /// (UniMP / TransformerConv):
    /// `y_i = Σ_{j∈N(i)} softmax_j(⟨q_i, k_j⟩/√d) · v_j`.
    ///
    /// `q`, `k`, `v` are `n×d` (already projected); `adj` supplies the
    /// neighbourhood structure (include self-loops for the standard
    /// formulation). Rows without neighbours produce zeros.
    pub fn dot_attn_aggregate(&mut self, q: Var, k: Var, v: Var, adj: &Arc<CsrMatrix>) -> Var {
        let (n, d) = self.values[q.0].shape();
        assert_eq!(self.values[k.0].shape(), (n, d), "k shape mismatch");
        assert_eq!(self.values[v.0].shape(), (n, d), "v shape mismatch");
        assert_eq!(adj.rows(), n, "adjacency/feature size mismatch");
        let scale = 1.0 / (d as f32).sqrt();
        let qm = &self.values[q.0];
        let km = &self.values[k.0];
        let vm = &self.values[v.0];

        let row_ptr = adj.row_ptr();
        let mut alphas = vec![0f32; adj.nnz()];
        let mut y = Matrix::zeros_pooled(n, d);
        for i in 0..n {
            let (b, e) = (row_ptr[i], row_ptr[i + 1]);
            if b == e {
                continue;
            }
            let qi = qm.row_slice(i);
            let mut mx = f32::NEG_INFINITY;
            for (idx, (j, _)) in adj.row(i).enumerate() {
                let mut dot = 0f32;
                for (&a, &b2) in qi.iter().zip(km.row_slice(j)) {
                    dot += a * b2;
                }
                alphas[b + idx] = dot * scale;
                mx = mx.max(dot * scale);
            }
            let mut z = 0f32;
            for a in &mut alphas[b..e] {
                *a = (*a - mx).exp();
                z += *a;
            }
            for a in &mut alphas[b..e] {
                *a /= z;
            }
            let out = y.row_slice_mut(i);
            for (idx, (j, _)) in adj.row(i).enumerate() {
                let w = alphas[b + idx];
                for (o, &vv) in out.iter_mut().zip(vm.row_slice(j)) {
                    *o += w * vv;
                }
            }
        }
        let r = self.req(q) || self.req(k) || self.req(v);
        self.push(
            y,
            Op::DotAttnAggregate {
                q,
                k,
                v,
                adj: Arc::clone(adj),
                alphas: alphas.into(),
            },
            r,
        )
    }

    pub fn sum_all(&mut self, x: Var) -> Var {
        let v = Matrix::scalar(self.values[x.0].sum());
        let r = self.req(x);
        self.push(v, Op::SumAll(x), r)
    }

    pub fn mean_all(&mut self, x: Var) -> Var {
        let xm = &self.values[x.0];
        let v = Matrix::scalar(xm.sum() / xm.numel() as f32);
        let r = self.req(x);
        self.push(v, Op::MeanAll(x), r)
    }

    /// Simulated quantization `Q⁻¹(Q(x))` with the clipped straight-through
    /// estimator: gradient passes unchanged where `x` is inside the
    /// representable range and is zeroed where the quantizer clips.
    pub fn fake_quant(&mut self, x: Var, qp: QuantParams) -> Var {
        let v = self.values[x.0].par_map(|e| qp.fake(e));
        let r = self.req(x);
        self.push(v, Op::FakeQuant { x, qp }, r)
    }

    /// LSQ fake quantization (Esser et al.): symmetric quantization with a
    /// *learnable* scalar scale `s` (a `1×1` leaf) —
    /// `y = clip(⌊x/s⌉, qmin, qmax) · s`. Gradients: clipped STE to `x`;
    /// the scale receives the LSQ gradient (`⌊v⌉ − v` in range, the clip
    /// level outside), damped by `1/√(numel·qmax)`. This realizes the
    /// paper's "S and Z tuned during training via gradient-based
    /// optimization" literally.
    pub fn fake_quant_lsq(&mut self, x: Var, scale: Var, qmin: i32, qmax: i32) -> Var {
        assert_eq!(
            self.values[scale.0].shape(),
            (1, 1),
            "LSQ scale must be 1×1"
        );
        let s = self.values[scale.0].item().max(1e-6);
        let xm = &self.values[x.0];
        let grad_scale = 1.0 / ((xm.numel() as f32 * qmax as f32).sqrt());
        let v = xm.par_map(|e| {
            let q = (e / s).round_ties_even().clamp(qmin as f32, qmax as f32);
            q * s
        });
        let r = self.req(x) || self.req(scale);
        self.push(
            v,
            Op::FakeQuantLsq {
                x,
                scale,
                qmin,
                qmax,
                grad_scale,
            },
            r,
        )
    }

    /// Per-row fake quantization: row `r` of `x` is quantized with
    /// `qps[r]`. Used by the A²Q-style baseline, which assigns each *node*
    /// its own scale and bit-width. Backward is the clipped STE per row.
    pub fn fake_quant_rows(&mut self, x: Var, qps: &[QuantParams]) -> Var {
        let xm = &self.values[x.0];
        assert_eq!(qps.len(), xm.rows(), "one quantizer per row");
        let mut v = xm.clone();
        for (r, qp) in qps.iter().enumerate() {
            for e in v.row_slice_mut(r) {
                *e = qp.fake(*e);
            }
        }
        let r = self.req(x);
        self.push(
            v,
            Op::FakeQuantRows {
                x,
                qps: qps.to_vec().into(),
            },
            r,
        )
    }

    /// The paper's relaxed quantizer (Eq. 6):
    /// `y = Σ_i softmax(α)_i · Q⁻¹_{b_i}(Q_{b_i}(x))`.
    ///
    /// `alphas` is a learnable `1×k` row of mixing logits and `qps` the `k`
    /// candidate quantizers. Gradients flow to `x` through each candidate's
    /// clipped STE (weighted by its softmax probability) and to `alphas`
    /// through the exact softmax Jacobian.
    pub fn relaxed_fake_quant(&mut self, x: Var, alphas: Var, qps: &[QuantParams]) -> Var {
        let am = &self.values[alphas.0];
        assert_eq!(am.rows(), 1, "alphas must be a 1×k row");
        assert_eq!(am.cols(), qps.len(), "one alpha per quantizer");
        let w = softmax_slice(am.data());
        let xm = &self.values[x.0];
        let quants: Vec<Matrix> = qps.iter().map(|qp| xm.par_map(|e| qp.fake(e))).collect();
        let mut y = Matrix::zeros_pooled(xm.rows(), xm.cols());
        for (wi, q) in w.iter().zip(quants.iter()) {
            for (o, &qv) in y.data_mut().iter_mut().zip(q.data()) {
                *o += wi * qv;
            }
        }
        let r = self.req(x) || self.req(alphas);
        self.push(
            y,
            Op::RelaxedFakeQuant {
                x,
                alphas,
                qps: qps.to_vec().into(),
                quants: quants.into(),
            },
            r,
        )
    }

    /// The differentiable bit-cost penalty `C(T)` of Eq. 8:
    /// `C = (Σ_i softmax(α)_i · b_i) · |T| / (1024·8)` (bits → MB-style
    /// normalization used in the paper).
    pub fn bit_penalty(&mut self, alphas: Var, bits: &[f32], numel: usize) -> Var {
        let am = &self.values[alphas.0];
        assert_eq!(am.cols(), bits.len());
        let w = softmax_slice(am.data());
        let avg: f32 = w.iter().zip(bits.iter()).map(|(&wi, &bi)| wi * bi).sum();
        let numel = numel as f32;
        let v = Matrix::scalar(avg * numel / (1024.0 * 8.0));
        let r = self.req(alphas);
        self.push(
            v,
            Op::BitPenalty {
                alphas,
                bits: bits.to_vec().into(),
                numel,
            },
            r,
        )
    }

    /// Histogram of recorded op kinds — cheap introspection for debugging
    /// and for verifying that a quantized architecture contains the
    /// expected number of quantization nodes.
    pub fn op_histogram(&self) -> Vec<(&'static str, usize)> {
        let mut counts: Vec<(&'static str, usize)> = Vec::new();
        for op in &self.ops {
            let name = op.name();
            match counts.iter_mut().find(|(n, _)| *n == name) {
                Some((_, c)) => *c += 1,
                None => counts.push((name, 1)),
            }
        }
        counts.sort_by_key(|&(_, c)| std::cmp::Reverse(c));
        counts
    }

    // ---- backward --------------------------------------------------------

    fn acc(&mut self, v: Var, g: Matrix) {
        if !self.requires[v.0] {
            return;
        }
        match &mut self.grads[v.0] {
            Some(acc) => acc.add_assign(&g),
            slot @ None => *slot = Some(g),
        }
    }

    /// Runs the backward pass from a `1×1` loss node. Gradients of leaf
    /// nodes remain available from [`Tape::grad`]; intermediate gradients
    /// are freed as soon as they have been propagated.
    pub fn backward(&mut self, loss: Var) {
        assert_eq!(
            self.values[loss.0].shape(),
            (1, 1),
            "backward needs a scalar loss"
        );
        self.grads[loss.0] = Some(Matrix::scalar(1.0));

        for i in (0..=loss.0).rev() {
            let Some(g) = self.grads[i].take() else {
                continue;
            };
            let op = std::mem::replace(&mut self.ops[i], Op::Leaf);
            match &op {
                Op::Leaf => {}
                Op::MatMul(a, b) => {
                    if self.req(*a) {
                        let ga = g.matmul_a_bt(&self.values[b.0]);
                        self.acc(*a, ga);
                    }
                    if self.req(*b) {
                        let gb = self.values[a.0].matmul_at_b(&g);
                        self.acc(*b, gb);
                    }
                }
                Op::Spmm { pair, x } => {
                    if self.req(*x) {
                        let gy = pair.at.spmm(g.data(), g.cols());
                        let gx = Matrix::from_vec(pair.at.rows(), g.cols(), gy);
                        self.acc(*x, gx);
                    }
                }
                Op::Add(a, b) => {
                    if self.req(*a) {
                        self.acc(*a, g.clone());
                    }
                    if self.req(*b) {
                        self.acc(*b, g.clone());
                    }
                }
                Op::Sub(a, b) => {
                    if self.req(*a) {
                        self.acc(*a, g.clone());
                    }
                    if self.req(*b) {
                        self.acc(*b, g.map(|e| -e));
                    }
                }
                Op::Mul(a, b) => {
                    if self.req(*a) {
                        let ga = g.zip(&self.values[b.0], |gv, bv| gv * bv);
                        self.acc(*a, ga);
                    }
                    if self.req(*b) {
                        let gb = g.zip(&self.values[a.0], |gv, av| gv * av);
                        self.acc(*b, gb);
                    }
                }
                Op::AddBias { x, bias } => {
                    if self.req(*x) {
                        self.acc(*x, g.clone());
                    }
                    if self.req(*bias) {
                        self.acc(*bias, g.col_sums());
                    }
                }
                Op::Scale { x, c } => {
                    if self.req(*x) {
                        self.acc(*x, g.map(|e| e * c));
                    }
                }
                Op::MulScalarVar { x, s } => {
                    let sv = self.values[s.0].item();
                    if self.req(*x) {
                        self.acc(*x, g.map(|e| e * sv));
                    }
                    if self.req(*s) {
                        let gs = self.values[x.0].dot(&g);
                        self.acc(*s, Matrix::scalar(gs));
                    }
                }
                Op::AffineCols { x, scale } => {
                    if self.req(*x) {
                        let mut gx = g.clone();
                        for r in 0..gx.rows() {
                            for (c, e) in gx.row_slice_mut(r).iter_mut().enumerate() {
                                *e *= scale[c];
                            }
                        }
                        self.acc(*x, gx);
                    }
                }
                Op::Exp(x) => {
                    if self.req(*x) {
                        // dy/dx = e^x = y (the stored output).
                        let gx = g.zip(&self.values[i], |gv, yv| gv * yv);
                        self.acc(*x, gx);
                    }
                }
                Op::Relu(x) => {
                    if self.req(*x) {
                        let gx = g.zip(&self.values[x.0], |gv, xv| if xv > 0.0 { gv } else { 0.0 });
                        self.acc(*x, gx);
                    }
                }
                Op::LeakyRelu { x, slope } => {
                    if self.req(*x) {
                        let s = *slope;
                        let gx = g.zip(
                            &self.values[x.0],
                            |gv, xv| if xv > 0.0 { gv } else { s * gv },
                        );
                        self.acc(*x, gx);
                    }
                }
                Op::Dropout { x, mask } => {
                    if self.req(*x) {
                        let mut gx = g.clone();
                        for (e, &m) in gx.data_mut().iter_mut().zip(mask.iter()) {
                            *e *= m;
                        }
                        self.acc(*x, gx);
                    }
                }
                Op::LogSoftmaxRows(x) => {
                    if self.req(*x) {
                        let y = &self.values[i];
                        let mut gx = g.clone();
                        for r in 0..gx.rows() {
                            let row_sum: f32 = g.row_slice(r).iter().sum();
                            for (c, e) in gx.row_slice_mut(r).iter_mut().enumerate() {
                                *e -= y.get(r, c).exp() * row_sum;
                            }
                        }
                        self.acc(*x, gx);
                    }
                }
                Op::NllMasked {
                    logp,
                    targets,
                    rows,
                } => {
                    if self.req(*logp) {
                        let go = g.item() / rows.len() as f32;
                        let lm = &self.values[logp.0];
                        let mut gx = Matrix::zeros_pooled(lm.rows(), lm.cols());
                        for (&r, &t) in rows.iter().zip(targets.iter()) {
                            let cur = gx.get(r as usize, t as usize);
                            gx.set(r as usize, t as usize, cur - go);
                        }
                        self.acc(*logp, gx);
                    }
                }
                Op::BceWithLogits {
                    logits,
                    targets,
                    rows,
                } => {
                    if self.req(*logits) {
                        let lm = &self.values[logits.0];
                        let cols = lm.cols();
                        let go = g.item() / (rows.len() * cols) as f32;
                        let mut gx = Matrix::zeros_pooled(lm.rows(), cols);
                        for &r in rows.iter() {
                            let r = r as usize;
                            for c in 0..cols {
                                let z = lm.get(r, c);
                                let sig = 1.0 / (1.0 + (-z).exp());
                                gx.set(r, c, go * (sig - targets.get(r, c)));
                            }
                        }
                        self.acc(*logits, gx);
                    }
                }
                Op::BatchNorm {
                    x,
                    gamma,
                    beta,
                    xhat,
                    inv_std,
                } => {
                    let (n, c) = g.shape();
                    let nf = n as f32;
                    // Per-column reductions of dy and dy⊙x̂.
                    let mut sum_dy = vec![0f32; c];
                    let mut sum_dy_xhat = vec![0f32; c];
                    for r in 0..n {
                        for j in 0..c {
                            let dy = g.get(r, j);
                            sum_dy[j] += dy;
                            sum_dy_xhat[j] += dy * xhat.get(r, j);
                        }
                    }
                    if self.req(*gamma) {
                        self.acc(*gamma, Matrix::from_vec(1, c, sum_dy_xhat.clone()));
                    }
                    if self.req(*beta) {
                        self.acc(*beta, Matrix::from_vec(1, c, sum_dy.clone()));
                    }
                    if self.req(*x) {
                        let gm = &self.values[gamma.0];
                        let mut gx = Matrix::zeros_pooled(n, c);
                        for r in 0..n {
                            for j in 0..c {
                                let dy = g.get(r, j);
                                let v = gm.data()[j] * inv_std[j] / nf
                                    * (nf * dy - sum_dy[j] - xhat.get(r, j) * sum_dy_xhat[j]);
                                gx.set(r, j, v);
                            }
                        }
                        self.acc(*x, gx);
                    }
                }
                Op::GlobalMaxPool { x, argmax } => {
                    if self.req(*x) {
                        let xm = &self.values[x.0];
                        let c = xm.cols();
                        let mut gx = Matrix::zeros_pooled(xm.rows(), c);
                        for gi in 0..g.rows() {
                            for j in 0..c {
                                let r = argmax[gi * c + j] as usize;
                                let cur = gx.get(r, j);
                                gx.set(r, j, cur + g.get(gi, j));
                            }
                        }
                        self.acc(*x, gx);
                    }
                }
                Op::GatAggregate {
                    h,
                    src,
                    dst,
                    adj,
                    alphas,
                    slope,
                } => {
                    let hm = &self.values[h.0];
                    let (n, fdim) = hm.shape();
                    let sv = self.values[src.0].data();
                    let dv = self.values[dst.0].data();
                    let row_ptr = adj.row_ptr();
                    let mut gh = Matrix::zeros_pooled(n, fdim);
                    let mut gs = Matrix::zeros_pooled(n, 1);
                    let mut gd = Matrix::zeros_pooled(n, 1);
                    for i in 0..n {
                        let (b, e) = (row_ptr[i], row_ptr[i + 1]);
                        if b == e {
                            continue;
                        }
                        let gi = g.row_slice(i);
                        // dα_ij = ⟨g_i, h_j⟩ and dh_j += α_ij · g_i.
                        let mut dalpha = vec![0f32; e - b];
                        for (k, (j, _)) in adj.row(i).enumerate() {
                            let a = alphas[b + k];
                            let mut dot = 0f32;
                            for (&gv, (&hv, o)) in gi
                                .iter()
                                .zip(hm.row_slice(j).iter().zip(gh.row_slice_mut(j)))
                            {
                                dot += gv * hv;
                                *o += a * gv;
                            }
                            dalpha[k] = dot;
                        }
                        // Softmax backward: dlogit = α (dα − Σ α dα).
                        let mixed: f32 = alphas[b..e]
                            .iter()
                            .zip(dalpha.iter())
                            .map(|(&a, &da)| a * da)
                            .sum();
                        for (k, (j, _)) in adj.row(i).enumerate() {
                            let dlogit = alphas[b + k] * (dalpha[k] - mixed);
                            let pre = sv[i] + dv[j];
                            let de = if pre > 0.0 { dlogit } else { *slope * dlogit };
                            gs.data_mut()[i] += de;
                            gd.data_mut()[j] += de;
                        }
                    }
                    if self.req(*h) {
                        self.acc(*h, gh);
                    }
                    if self.req(*src) {
                        self.acc(*src, gs);
                    }
                    if self.req(*dst) {
                        self.acc(*dst, gd);
                    }
                }
                Op::DotAttnAggregate {
                    q,
                    k,
                    v,
                    adj,
                    alphas,
                } => {
                    let (n, d) = self.values[q.0].shape();
                    let scale = 1.0 / (d as f32).sqrt();
                    let qm = &self.values[q.0];
                    let km = &self.values[k.0];
                    let vm = &self.values[v.0];
                    let row_ptr = adj.row_ptr();
                    let mut gq = Matrix::zeros_pooled(n, d);
                    let mut gk = Matrix::zeros_pooled(n, d);
                    let mut gv = Matrix::zeros_pooled(n, d);
                    for i in 0..n {
                        let (b, e) = (row_ptr[i], row_ptr[i + 1]);
                        if b == e {
                            continue;
                        }
                        let gi = g.row_slice(i);
                        // dα_ij = ⟨g_i, v_j⟩, dv_j += α_ij g_i.
                        let mut dalpha = vec![0f32; e - b];
                        for (idx, (j, _)) in adj.row(i).enumerate() {
                            let a = alphas[b + idx];
                            let mut dot = 0f32;
                            for (&gvl, (&vv, o)) in gi
                                .iter()
                                .zip(vm.row_slice(j).iter().zip(gv.row_slice_mut(j)))
                            {
                                dot += gvl * vv;
                                *o += a * gvl;
                            }
                            dalpha[idx] = dot;
                        }
                        // Softmax backward to logits, then to q and k.
                        let mixed: f32 = alphas[b..e]
                            .iter()
                            .zip(dalpha.iter())
                            .map(|(&a, &da)| a * da)
                            .sum();
                        for (idx, (j, _)) in adj.row(i).enumerate() {
                            let dlogit = alphas[b + idx] * (dalpha[idx] - mixed) * scale;
                            for c in 0..d {
                                let t = gq.get(i, c) + dlogit * km.get(j, c);
                                gq.set(i, c, t);
                                let t = gk.get(j, c) + dlogit * qm.get(i, c);
                                gk.set(j, c, t);
                            }
                        }
                    }
                    if self.req(*q) {
                        self.acc(*q, gq);
                    }
                    if self.req(*k) {
                        self.acc(*k, gk);
                    }
                    if self.req(*v) {
                        self.acc(*v, gv);
                    }
                }
                Op::SumAll(x) => {
                    if self.req(*x) {
                        let xm = &self.values[x.0];
                        self.acc(*x, Matrix::filled(xm.rows(), xm.cols(), g.item()));
                    }
                }
                Op::MeanAll(x) => {
                    if self.req(*x) {
                        let xm = &self.values[x.0];
                        let v = g.item() / xm.numel() as f32;
                        self.acc(*x, Matrix::filled(xm.rows(), xm.cols(), v));
                    }
                }
                Op::FakeQuant { x, qp } => {
                    if self.req(*x) {
                        let gx =
                            g.par_zip(
                                &self.values[x.0],
                                |gv, xv| if qp.in_range(xv) { gv } else { 0.0 },
                            );
                        self.acc(*x, gx);
                    }
                }
                Op::FakeQuantLsq {
                    x,
                    scale,
                    qmin,
                    qmax,
                    grad_scale,
                } => {
                    let s = self.values[scale.0].item().max(1e-6);
                    let (lo, hi) = (*qmin as f32, *qmax as f32);
                    let gx = if self.req(*x) {
                        Some(g.par_zip(&self.values[x.0], |gv, xv| {
                            let v = xv / s;
                            if v >= lo && v <= hi {
                                gv
                            } else {
                                0.0
                            }
                        }))
                    } else {
                        None
                    };
                    let gs = if self.req(*scale) {
                        let mut ds = 0f32;
                        for (&gv, &xv) in g.data().iter().zip(self.values[x.0].data()) {
                            let v = xv / s;
                            let term = if v <= lo {
                                lo
                            } else if v >= hi {
                                hi
                            } else {
                                v.round_ties_even() - v
                            };
                            ds += gv * term;
                        }
                        Some(Matrix::scalar(ds * grad_scale))
                    } else {
                        None
                    };
                    if let Some(gx) = gx {
                        self.acc(*x, gx);
                    }
                    if let Some(gs) = gs {
                        self.acc(*scale, gs);
                    }
                }
                Op::FakeQuantRows { x, qps } => {
                    if self.req(*x) {
                        let xm = &self.values[x.0];
                        let mut gx = g.clone();
                        for r in 0..gx.rows() {
                            let qp = qps[r];
                            for (e, &xv) in gx.row_slice_mut(r).iter_mut().zip(xm.row_slice(r)) {
                                if !qp.in_range(xv) {
                                    *e = 0.0;
                                }
                            }
                        }
                        self.acc(*x, gx);
                    }
                }
                Op::RelaxedFakeQuant {
                    x,
                    alphas,
                    qps,
                    quants,
                } => {
                    let w = softmax_slice(self.values[alphas.0].data());
                    if self.req(*x) {
                        let xm = &self.values[x.0];
                        let mut gx = Matrix::zeros_pooled(xm.rows(), xm.cols());
                        for (wi, qp) in w.iter().zip(qps.iter()) {
                            for ((o, &gv), &xv) in
                                gx.data_mut().iter_mut().zip(g.data()).zip(xm.data())
                            {
                                if qp.in_range(xv) {
                                    *o += wi * gv;
                                }
                            }
                        }
                        self.acc(*x, gx);
                    }
                    if self.req(*alphas) {
                        // t_i = <Q_i(x), dy>; dα_j = w_j (t_j − Σ_i w_i t_i).
                        let t: Vec<f32> = quants.iter().map(|q| q.dot(&g)).collect();
                        let mixed: f32 = w.iter().zip(t.iter()).map(|(&wi, &ti)| wi * ti).sum();
                        let ga: Vec<f32> = w
                            .iter()
                            .zip(t.iter())
                            .map(|(&wj, &tj)| wj * (tj - mixed))
                            .collect();
                        self.acc(*alphas, Matrix::from_vec(1, ga.len(), ga));
                    }
                }
                Op::BitPenalty {
                    alphas,
                    bits,
                    numel,
                } => {
                    if self.req(*alphas) {
                        let w = softmax_slice(self.values[alphas.0].data());
                        let avg: f32 = w.iter().zip(bits.iter()).map(|(&wi, &bi)| wi * bi).sum();
                        let go = g.item() * numel / (1024.0 * 8.0);
                        let ga: Vec<f32> = w
                            .iter()
                            .zip(bits.iter())
                            .map(|(&wj, &bj)| go * wj * (bj - avg))
                            .collect();
                        self.acc(*alphas, Matrix::from_vec(1, ga.len(), ga));
                    }
                }
            }
            self.ops[i] = op;
            // Leaf gradients stay readable after backward; intermediate
            // gradients go back to the buffer pool the moment they have
            // been propagated.
            if matches!(self.ops[i], Op::Leaf) {
                self.grads[i] = Some(g);
            } else {
                g.recycle();
            }
        }
    }

    /// Consumes the tape and returns every value and gradient buffer to the
    /// thread-local buffer pool (see [`crate::pool`]). Training loops call
    /// this at the end of each epoch so the next epoch's forward pass
    /// allocates nothing on the hot path; plain `drop` remains correct and
    /// merely skips the reuse.
    pub fn recycle(self) {
        for m in self.values {
            m.recycle();
        }
        for g in self.grads.into_iter().flatten() {
            g.recycle();
        }
    }
}
