//! Thread-confined buffer pool for `f32` kernel temporaries.
//!
//! Training allocates the same handful of matrix shapes every epoch —
//! forward activations, gradient accumulators, matmul outputs — and each
//! fresh `Vec` pays for pages the previous epoch just returned to the
//! allocator. The pool keeps freed buffers on per-thread size-class free
//! lists so steady-state epochs recycle warm memory instead: [`Tape`]
//! forward/backward temporaries come from [`take_zeroed`]/[`take_scratch`]
//! and go back via [`Tape::recycle`](crate::Tape::recycle) at the end of
//! each epoch.
//!
//! Design constraints:
//!
//! * **Thread-confined.** Kernel *outputs* are always allocated on the
//!   caller's thread (the parallel runtime hands workers slices of an
//!   already-allocated buffer), so a `thread_local!` free list needs no
//!   locks and cannot leak buffers across training threads.
//! * **Size classes.** Buffers live in power-of-two capacity classes:
//!   [`take_zeroed`]`(len)` draws from the class that covers `len`
//!   (ceil log2), [`give`] files a buffer under the class its capacity
//!   fully covers (floor log2), so a reused buffer always has enough room.
//! * **Bounded.** Each thread retains at most [`MAX_HELD_BYTES`]; beyond
//!   that, returned buffers are dropped (counted in `pool.drop_bytes`).
//! * **Observable.** Telemetry counters `pool.hit_bytes` / `pool.miss_bytes`
//!   (and hit/miss call counts) make the steady-state hit rate a CI
//!   assertion rather than a hope; [`thread_stats`] exposes the same
//!   numbers unconditionally for tests.
//!
//! Reuse is numerically invisible: [`take_zeroed`] zero-fills (kernels that
//! accumulate see exactly the state a fresh `vec![0.0; n]` gives), and
//! [`take_scratch`] is reserved for kernels that overwrite every element.

use std::cell::RefCell;

/// Buffers with capacity above this never enter the pool (2^26 f32 =
/// 256 MiB); they would monopolize the byte budget for a shape that large
/// workloads allocate once, not per epoch.
const MAX_CLASS: usize = 26;

/// Per-thread retention cap in bytes. Past it, [`give`] drops instead of
/// pooling — a leak guard, not a performance knob: one GNN training run
/// touches a few dozen MB of temporaries.
pub const MAX_HELD_BYTES: usize = 128 << 20;

/// Per-thread hit/miss accounting, mirrored into telemetry when enabled.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct PoolStats {
    pub hits: u64,
    pub misses: u64,
    pub hit_bytes: u64,
    pub miss_bytes: u64,
}

struct Pool {
    /// `free[c]` holds buffers whose capacity is ≥ `1 << c`.
    free: Vec<Vec<Vec<f32>>>,
    held_bytes: usize,
    stats: PoolStats,
}

impl Pool {
    fn new() -> Self {
        Self {
            free: (0..=MAX_CLASS).map(|_| Vec::new()).collect(),
            held_bytes: 0,
            stats: PoolStats::default(),
        }
    }
}

thread_local! {
    static POOL: RefCell<Pool> = RefCell::new(Pool::new());
}

/// Smallest class whose buffers can hold `len` elements (ceil log2).
fn class_for_len(len: usize) -> usize {
    len.next_power_of_two().trailing_zeros() as usize
}

/// Largest class a buffer of this capacity fully covers (floor log2).
fn class_for_capacity(cap: usize) -> usize {
    (usize::BITS - 1 - cap.leading_zeros()) as usize
}

fn take(len: usize, zero: bool) -> Vec<f32> {
    if len == 0 {
        return Vec::new();
    }
    let class = class_for_len(len);
    let hit = if class <= MAX_CLASS {
        POOL.with(|p| {
            let mut p = p.borrow_mut();
            let buf = p.free[class].pop();
            if let Some(b) = &buf {
                p.held_bytes -= b.capacity() * 4;
                p.stats.hits += 1;
                p.stats.hit_bytes += (len * 4) as u64;
            }
            buf
        })
    } else {
        None
    };
    match hit {
        Some(mut b) => {
            mixq_telemetry::counter_add("pool.hits", 1);
            mixq_telemetry::counter_add("pool.hit_bytes", (len * 4) as u64);
            if zero {
                b.clear();
                b.resize(len, 0.0);
            } else if b.len() >= len {
                // Scratch reuse: stale-but-initialized contents are fine,
                // the caller overwrites every element.
                b.truncate(len);
            } else {
                b.resize(len, 0.0);
            }
            b
        }
        None => {
            POOL.with(|p| {
                let s = &mut p.borrow_mut().stats;
                s.misses += 1;
                s.miss_bytes += (len * 4) as u64;
            });
            mixq_telemetry::counter_add("pool.misses", 1);
            mixq_telemetry::counter_add("pool.miss_bytes", (len * 4) as u64);
            // Allocate at full class size so the buffer re-enters the same
            // class it will be requested from.
            let mut v = Vec::with_capacity(1 << class.min(MAX_CLASS));
            v.resize(len, 0.0);
            v
        }
    }
}

/// A zero-filled buffer of exactly `len` elements, recycled when possible.
/// Bit-identical to `vec![0.0; len]` from the caller's perspective.
pub fn take_zeroed(len: usize) -> Vec<f32> {
    take(len, true)
}

/// A buffer of exactly `len` elements with **unspecified (but initialized)
/// contents**, recycled when possible. Only for kernels that overwrite every
/// element before any read.
pub fn take_scratch(len: usize) -> Vec<f32> {
    take(len, false)
}

/// Returns a buffer to the calling thread's pool (or drops it if the
/// retention cap is reached or the buffer is outside the pooled classes).
pub fn give(buf: Vec<f32>) {
    let cap_bytes = buf.capacity() * 4;
    if buf.capacity() == 0 {
        return;
    }
    let class = class_for_capacity(buf.capacity());
    POOL.with(|p| {
        let mut p = p.borrow_mut();
        if class > MAX_CLASS || p.held_bytes + cap_bytes > MAX_HELD_BYTES {
            mixq_telemetry::counter_add("pool.drop_bytes", cap_bytes as u64);
            return; // drop `buf`
        }
        p.held_bytes += cap_bytes;
        p.free[class].push(buf);
    });
}

/// Snapshot of this thread's hit/miss counters (independent of telemetry).
pub fn thread_stats() -> PoolStats {
    POOL.with(|p| p.borrow().stats)
}

/// Drops every pooled buffer on this thread and zeroes its counters.
/// Tests use this for isolation; production code never needs it.
pub fn clear_thread_pool() {
    POOL.with(|p| *p.borrow_mut() = Pool::new());
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_hits_and_zeroes() {
        clear_thread_pool();
        let mut a = take_zeroed(100);
        assert_eq!(a.len(), 100);
        assert!(a.iter().all(|&v| v == 0.0));
        assert_eq!(thread_stats().misses, 1);
        a.iter_mut().for_each(|v| *v = 7.0);
        give(a);

        // Same class (2^7 covers 100 and 120): reuse, re-zeroed.
        let b = take_zeroed(120);
        assert_eq!(b.len(), 120);
        assert!(b.iter().all(|&v| v == 0.0), "reused buffer must be zeroed");
        let s = thread_stats();
        assert_eq!((s.hits, s.misses), (1, 1));
        assert_eq!(s.hit_bytes, 120 * 4);
        give(b);

        // Scratch reuse keeps stale contents but the exact requested length.
        let mut c = take_scratch(90);
        assert_eq!(c.len(), 90);
        assert_eq!(thread_stats().hits, 2);
        c.fill(1.0);
        give(c);

        // A larger class misses even with smaller buffers pooled.
        let d = take_zeroed(1000);
        assert_eq!(d.len(), 1000);
        assert_eq!(thread_stats().misses, 2);

        // Zero-length takes never touch the pool.
        assert!(take_zeroed(0).is_empty());
        assert_eq!(thread_stats().misses, 2);
        clear_thread_pool();
    }

    #[test]
    fn class_math() {
        assert_eq!(class_for_len(1), 0);
        assert_eq!(class_for_len(2), 1);
        assert_eq!(class_for_len(3), 2);
        assert_eq!(class_for_len(1024), 10);
        assert_eq!(class_for_len(1025), 11);
        assert_eq!(class_for_capacity(1024), 10);
        assert_eq!(class_for_capacity(1535), 10);
        assert_eq!(class_for_capacity(2048), 11);
    }

    #[test]
    fn retention_cap_drops_excess() {
        clear_thread_pool();
        // Fill the pool up to the cap with large buffers, then one more.
        let class_bytes = (1usize << 20) * 4;
        let n_fit = MAX_HELD_BYTES / class_bytes;
        for _ in 0..n_fit + 3 {
            give(Vec::with_capacity(1 << 20));
        }
        let held = POOL.with(|p| p.borrow().held_bytes);
        assert!(held <= MAX_HELD_BYTES);
        clear_thread_pool();
    }
}
