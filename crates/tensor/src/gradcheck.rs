//! Central finite-difference gradient checking, used by the test suites of
//! this crate and the layers built on top of it.

use crate::matrix::Matrix;

/// Numerically estimates `∂f/∂x` by central differences: perturbs each
/// element of `x` by ±`eps` and evaluates the scalar function `f`.
pub fn numeric_grad(mut f: impl FnMut(&Matrix) -> f32, x: &Matrix, eps: f32) -> Matrix {
    let mut g = Matrix::zeros(x.rows(), x.cols());
    let mut xp = x.clone();
    for i in 0..x.numel() {
        let orig = xp.data()[i];
        xp.data_mut()[i] = orig + eps;
        let fp = f(&xp);
        xp.data_mut()[i] = orig - eps;
        let fm = f(&xp);
        xp.data_mut()[i] = orig;
        g.data_mut()[i] = (fp - fm) / (2.0 * eps);
    }
    g
}

/// Asserts that `analytic` matches `numeric` within a combined
/// absolute/relative tolerance, with a readable failure message.
pub fn assert_close(analytic: &Matrix, numeric: &Matrix, tol: f32, what: &str) {
    assert_eq!(
        analytic.shape(),
        numeric.shape(),
        "{what}: gradient shape mismatch"
    );
    for i in 0..analytic.numel() {
        let a = analytic.data()[i];
        let n = numeric.data()[i];
        let denom = 1.0f32.max(a.abs()).max(n.abs());
        assert!(
            (a - n).abs() / denom <= tol,
            "{what}: gradient mismatch at flat index {i}: analytic={a}, numeric={n}"
        );
    }
}
