//! Central finite-difference gradient checking, used by the test suites of
//! this crate and the layers built on top of it.

use crate::matrix::Matrix;

/// Numerically estimates `∂f/∂x` by central differences: perturbs each
/// element of `x` by ±`eps` and evaluates the scalar function `f`.
pub fn numeric_grad(mut f: impl FnMut(&Matrix) -> f32, x: &Matrix, eps: f32) -> Matrix {
    let mut g = Matrix::zeros(x.rows(), x.cols());
    let mut xp = x.clone();
    for i in 0..x.numel() {
        let orig = xp.data()[i];
        xp.data_mut()[i] = orig + eps;
        let fp = f(&xp);
        xp.data_mut()[i] = orig - eps;
        let fm = f(&xp);
        xp.data_mut()[i] = orig;
        g.data_mut()[i] = (fp - fm) / (2.0 * eps);
    }
    g
}

/// Asserts `|a − n| ≤ atol + rtol·max(|a|, |n|)` element-wise — the
/// standard mixed tolerance: `rtol` governs large-magnitude gradients
/// (where any fixed absolute bound is either vacuous or unsatisfiable) and
/// `atol` absorbs the finite-difference noise floor near zero (where a
/// relative bound alone is over-strict). Non-finite values on either side
/// fail outright instead of silently satisfying a NaN comparison.
pub fn assert_close_tol(analytic: &Matrix, numeric: &Matrix, rtol: f32, atol: f32, what: &str) {
    assert_eq!(
        analytic.shape(),
        numeric.shape(),
        "{what}: gradient shape mismatch"
    );
    for i in 0..analytic.numel() {
        let a = analytic.data()[i];
        let n = numeric.data()[i];
        assert!(
            a.is_finite() && n.is_finite(),
            "{what}: non-finite gradient at flat index {i}: analytic={a}, numeric={n}"
        );
        let bound = atol + rtol * a.abs().max(n.abs());
        assert!(
            (a - n).abs() <= bound,
            "{what}: gradient mismatch at flat index {i}: analytic={a}, numeric={n}, \
             |diff|={} > {bound} (rtol={rtol}, atol={atol})",
            (a - n).abs()
        );
    }
}

/// Single-tolerance convenience wrapper over [`assert_close_tol`] with
/// `rtol = atol = tol` (the historical call signature used across the
/// workspace's gradient tests).
pub fn assert_close(analytic: &Matrix, numeric: &Matrix, tol: f32, what: &str) {
    assert_close_tol(analytic, numeric, tol, tol, what);
}
