//! Deterministic pseudo-random numbers (xoshiro256**), self-contained so
//! that every experiment in the workspace is exactly reproducible from a
//! `u64` seed without depending on external RNG crates whose stream
//! definitions change across versions.

/// A seeded xoshiro256** generator.
///
/// Initialization runs the seed through SplitMix64, the initialization
/// recommended by the xoshiro authors, so that even seeds 0/1/2… give
/// well-mixed states.
#[derive(Debug, Clone)]
pub struct Rng {
    s: [u64; 4],
}

impl Rng {
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        let mut next = || {
            sm = sm.wrapping_add(0x9E3779B97F4A7C15);
            let mut z = sm;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
            z ^ (z >> 31)
        };
        Self {
            s: [next(), next(), next(), next()],
        }
    }

    /// Derives an independent generator, e.g. one per fold or per run.
    pub fn fork(&mut self, stream: u64) -> Rng {
        Rng::seed_from_u64(self.next_u64() ^ stream.wrapping_mul(0x9E3779B97F4A7C15))
    }

    /// Raw generator state, for checkpointing a run mid-stream.
    pub fn state(&self) -> [u64; 4] {
        self.s
    }

    /// Rebuilds a generator from [`Rng::state`] output, continuing the
    /// stream exactly where it left off.
    pub fn from_state(s: [u64; 4]) -> Self {
        Self { s }
    }

    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Uniform in `[0, 1)`, 53-bit resolution.
    pub fn uniform(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform `f32` in `[lo, hi)`.
    pub fn uniform_in(&mut self, lo: f32, hi: f32) -> f32 {
        lo + (hi - lo) * self.uniform() as f32
    }

    /// Uniform integer in `[0, n)`. Uses rejection to avoid modulo bias.
    pub fn gen_range(&mut self, n: usize) -> usize {
        assert!(n > 0, "gen_range requires n > 0");
        let n = n as u64;
        let zone = u64::MAX - (u64::MAX % n);
        loop {
            let v = self.next_u64();
            if v < zone {
                return (v % n) as usize;
            }
        }
    }

    /// Bernoulli draw with probability `p`.
    pub fn bernoulli(&mut self, p: f64) -> bool {
        self.uniform() < p
    }

    /// Standard normal via Box–Muller.
    pub fn normal(&mut self) -> f32 {
        loop {
            let u1 = self.uniform();
            if u1 <= f64::EPSILON {
                continue;
            }
            let u2 = self.uniform();
            let r = (-2.0 * u1.ln()).sqrt();
            return (r * (2.0 * std::f64::consts::PI * u2).cos()) as f32;
        }
    }

    /// In-place Fisher–Yates shuffle.
    pub fn shuffle<T>(&mut self, xs: &mut [T]) {
        for i in (1..xs.len()).rev() {
            let j = self.gen_range(i + 1);
            xs.swap(i, j);
        }
    }

    /// Samples `k` distinct indices from `0..n` (k ≤ n), in random order.
    pub fn sample_indices(&mut self, n: usize, k: usize) -> Vec<usize> {
        assert!(k <= n, "cannot sample {k} distinct items from {n}");
        let mut idx: Vec<usize> = (0..n).collect();
        // Partial Fisher–Yates: only the first k positions need shuffling.
        for i in 0..k {
            let j = i + self.gen_range(n - i);
            idx.swap(i, j);
        }
        idx.truncate(k);
        idx
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_same_seed() {
        let mut a = Rng::seed_from_u64(42);
        let mut b = Rng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = Rng::seed_from_u64(1);
        let mut b = Rng::seed_from_u64(2);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn uniform_bounds_and_mean() {
        let mut r = Rng::seed_from_u64(7);
        let mut sum = 0.0;
        for _ in 0..10_000 {
            let u = r.uniform();
            assert!((0.0..1.0).contains(&u));
            sum += u;
        }
        let mean = sum / 10_000.0;
        assert!(
            (mean - 0.5).abs() < 0.02,
            "uniform mean {mean} far from 0.5"
        );
    }

    #[test]
    fn normal_moments() {
        let mut r = Rng::seed_from_u64(9);
        let n = 20_000;
        let xs: Vec<f32> = (0..n).map(|_| r.normal()).collect();
        let mean = xs.iter().sum::<f32>() / n as f32;
        let var = xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f32>() / n as f32;
        assert!(mean.abs() < 0.05, "normal mean {mean}");
        assert!((var - 1.0).abs() < 0.08, "normal variance {var}");
    }

    #[test]
    fn gen_range_covers_all_values() {
        let mut r = Rng::seed_from_u64(3);
        let mut seen = [false; 5];
        for _ in 0..200 {
            seen[r.gen_range(5)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn sample_indices_distinct() {
        let mut r = Rng::seed_from_u64(11);
        let s = r.sample_indices(20, 10);
        assert_eq!(s.len(), 10);
        let mut sorted = s.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), 10, "sampled indices must be distinct");
    }

    #[test]
    fn state_round_trip_continues_stream() {
        let mut a = Rng::seed_from_u64(21);
        for _ in 0..17 {
            a.next_u64();
        }
        let mut b = Rng::from_state(a.state());
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut r = Rng::seed_from_u64(13);
        let mut xs: Vec<usize> = (0..50).collect();
        r.shuffle(&mut xs);
        let mut sorted = xs.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }
}
