//! Dense tensor and reverse-mode autograd substrate for MixQ-GNN.
//!
//! The workspace needs a complete (if compact) deep-learning stack to
//! reproduce the paper, and this crate is its foundation:
//!
//! * [`Matrix`] — dense row-major `f32` matrices with the BLAS-free matmul
//!   kernels the optimizer loops run on;
//! * [`Tape`] / [`Var`] — a tape-based reverse-mode autograd engine whose
//!   operations are an explicit enum with hand-derived, finite-difference-
//!   verified adjoints, including the quantization-specific ops (clipped
//!   straight-through fake quantization, the paper's relaxed multi-bit-width
//!   quantizer of Eq. 6, and the differentiable bit-cost penalty of Eq. 8);
//! * [`QuantParams`] — affine per-tensor quantization parameters shared
//!   bit-exactly between training-time fake quantization and the integer
//!   inference engine in `mixq-core`;
//! * [`Rng`] — a self-contained seeded xoshiro256** generator so every
//!   experiment is reproducible;
//! * gradient-checking helpers ([`numeric_grad`], [`assert_close`]) used
//!   across the workspace test suites;
//! * [`parallel`] — the scoped-thread runtime (re-exported from
//!   `mixq-parallel`) that the matmul/SpMM/element-wise kernels partition
//!   their output rows over. Configure with the `MIXQ_THREADS` environment
//!   variable or [`set_num_threads`]; results are bit-identical to the
//!   serial kernels at any thread count.

mod error;
mod gradcheck;
mod matrix;
pub mod pool;
mod quant;
mod rng;
mod tape;

/// The scoped-thread parallel runtime shared by every compute kernel in the
/// workspace (it lives in the `mixq-parallel` crate because `mixq-sparse`
/// sits below this crate in the dependency graph and uses it too).
pub use mixq_parallel as parallel;
pub use mixq_parallel::{num_threads, set_num_threads};

pub use error::{MixqError, MixqResult};
pub use gradcheck::{assert_close, assert_close_tol, numeric_grad};
pub use matrix::Matrix;
pub use quant::QuantParams;
pub use rng::Rng;
pub use tape::{softmax_slice, BatchNormOut, SpPair, Tape, Var, ALL_OP_NAMES};
