//! Affine per-tensor quantization parameters.
//!
//! A quantizer maps reals to integers as `Q(x) = clip(⌊x/S⌉ + Z, qmin, qmax)`
//! and back as `Q⁻¹(q) = (q − Z)·S` (Eqs. 3–4 of the paper). This struct is
//! shared between the autograd fake-quantization ops (training) and the
//! integer inference engine, so both paths use bit-identical rounding.

/// Parameters of one affine per-tensor quantizer.
///
/// ```
/// use mixq_tensor::QuantParams;
/// let qp = QuantParams::from_min_max(-1.0, 1.0, 8);
/// let code = qp.quantize(0.5);
/// assert!((qp.dequantize(code) - 0.5).abs() <= qp.scale / 2.0);
/// assert_eq!(qp.fake(0.0), 0.0); // zero is always exactly representable
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct QuantParams {
    /// Scale `S` (step size between representable values). Always > 0.
    pub scale: f32,
    /// Zero point `Z`: the integer that represents real 0.
    pub zero_point: i32,
    /// Smallest representable integer (e.g. −128 for signed INT8).
    pub qmin: i32,
    /// Largest representable integer (e.g. 127 for signed INT8).
    pub qmax: i32,
    /// Logical bit-width, kept for cost accounting.
    pub bits: u8,
}

impl QuantParams {
    /// Signed symmetric integer range for `bits`, e.g. 8 → [−128, 127].
    pub fn int_range(bits: u8) -> (i32, i32) {
        assert!((2..=32).contains(&bits), "bit-width {bits} unsupported");
        if bits == 32 {
            return (i32::MIN, i32::MAX);
        }
        (-(1 << (bits - 1)), (1 << (bits - 1)) - 1)
    }

    /// Builds parameters covering `[min, max]` with an asymmetric (affine)
    /// mapping. Degenerate ranges are widened so the scale stays positive,
    /// and non-finite endpoints (NaN from an empty reduction, ±inf from an
    /// upstream overflow) are sanitized instead of poisoning the scale:
    /// NaN collapses to 0, infinities saturate to the largest finite
    /// magnitude. The returned scale is always finite and > 0.
    pub fn from_min_max(mut min: f32, mut max: f32, bits: u8) -> Self {
        let (qmin, qmax) = Self::int_range(bits);
        if min.is_nan() {
            min = 0.0;
        }
        if max.is_nan() {
            max = 0.0;
        }
        min = min.clamp(f32::MIN, f32::MAX);
        max = max.clamp(f32::MIN, f32::MAX);
        if min > max {
            std::mem::swap(&mut min, &mut max);
        }
        // The range must contain zero so that 0.0 is exactly representable
        // (standard requirement: padding/zero messages stay exact).
        min = min.min(0.0);
        max = max.max(0.0);
        if max - min < 1e-12 {
            max = min + 1e-6;
        }
        // Widen before subtracting: for bits = 32, `qmax - qmin` overflows
        // i32 (i32::MAX − i32::MIN), panicking in debug builds.
        let mut scale = ((max as f64 - min as f64) / (qmax as i64 - qmin as i64) as f64) as f32;
        if !(scale.is_finite() && scale > 0.0) {
            // A span narrow enough (or wide enough) that the f64→f32 cast
            // lands on 0 or inf; saturate to the nearest positive normal.
            scale = if scale == 0.0 {
                f32::MIN_POSITIVE
            } else {
                f32::MAX
            };
        }
        // Near-f32::MAX spans can round the scale up just enough that the
        // extreme code dequantizes past f32::MAX to inf; nudge the scale
        // down one ULP at a time until the whole code range reconstructs
        // finite (one step suffices in practice).
        let span_codes = (qmax as i64 - qmin as i64) as f32;
        while !(span_codes * scale).is_finite() {
            scale = f32::from_bits(scale.to_bits() - 1);
        }
        let zero_point = (qmin as f32 - min / scale)
            .round()
            .clamp(qmin as f32, qmax as f32) as i32;
        Self {
            scale,
            zero_point,
            qmin,
            qmax,
            bits,
        }
    }

    /// Builds symmetric parameters (`Z = 0`) covering `[−a, a]` where
    /// `a = max(|min|, |max|)`. Preferred for weights.
    pub fn symmetric(min: f32, max: f32, bits: u8) -> Self {
        let (qmin, qmax) = Self::int_range(bits);
        let a = min.abs().max(max.abs()).max(1e-8);
        let scale = a / qmax as f32;
        Self {
            scale,
            zero_point: 0,
            qmin,
            qmax,
            bits,
        }
    }

    /// Identity-like parameters used when a component is left unquantized
    /// (`S = 1`, `Z = 0`), as recommended for inter-layer outputs (§4).
    pub fn identity(bits: u8) -> Self {
        let (qmin, qmax) = Self::int_range(bits);
        Self {
            scale: 1.0,
            zero_point: 0,
            qmin,
            qmax,
            bits,
        }
    }

    /// `Q(x)`: quantize one real value to its integer code.
    #[inline]
    pub fn quantize(&self, x: f32) -> i32 {
        let q = (x / self.scale).round_ties_even() + self.zero_point as f32;
        (q.clamp(self.qmin as f32, self.qmax as f32)) as i32
    }

    /// `Q⁻¹(q)`: map an integer code back to its real value.
    #[inline]
    pub fn dequantize(&self, q: i32) -> f32 {
        // Widen: `q - Z` overflows i32 when bits = 32 and Z sits near qmin.
        (q as i64 - self.zero_point as i64) as f32 * self.scale
    }

    /// Fake quantization `Q⁻¹(Q(x))` used during QAT.
    #[inline]
    pub fn fake(&self, x: f32) -> f32 {
        self.dequantize(self.quantize(x))
    }

    /// True when `x` falls inside the representable range *before* clipping.
    /// The clipped straight-through estimator passes gradient only here.
    #[inline]
    pub fn in_range(&self, x: f32) -> bool {
        let q = (x / self.scale).round_ties_even() + self.zero_point as f32;
        q >= self.qmin as f32 && q <= self.qmax as f32
    }

    /// Largest magnitude real value representable by this quantizer.
    pub fn real_range(&self) -> (f32, f32) {
        (self.dequantize(self.qmin), self.dequantize(self.qmax))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn int_ranges() {
        assert_eq!(QuantParams::int_range(2), (-2, 1));
        assert_eq!(QuantParams::int_range(4), (-8, 7));
        assert_eq!(QuantParams::int_range(8), (-128, 127));
        assert_eq!(QuantParams::int_range(16), (-32768, 32767));
    }

    #[test]
    fn zero_is_exactly_representable() {
        for bits in [2, 4, 8] {
            let qp = QuantParams::from_min_max(-1.3, 2.7, bits);
            assert_eq!(qp.fake(0.0), 0.0, "bits={bits}");
        }
    }

    #[test]
    fn round_trip_error_bounded_by_half_scale() {
        let qp = QuantParams::from_min_max(-4.0, 4.0, 8);
        for i in -40..=40 {
            let x = i as f32 * 0.1;
            assert!((qp.fake(x) - x).abs() <= qp.scale * 0.5 + 1e-6);
        }
    }

    #[test]
    fn clipping_saturates_out_of_range() {
        let qp = QuantParams::from_min_max(-1.0, 1.0, 4);
        let (lo, hi) = qp.real_range();
        assert!(qp.fake(100.0) <= hi + 1e-6);
        assert!(qp.fake(-100.0) >= lo - 1e-6);
        assert!(!qp.in_range(100.0));
        assert!(qp.in_range(0.5));
    }

    #[test]
    fn symmetric_has_zero_zero_point() {
        let qp = QuantParams::symmetric(-0.8, 0.3, 8);
        assert_eq!(qp.zero_point, 0);
        assert!((qp.fake(0.8) - 0.8).abs() < qp.scale);
    }

    #[test]
    fn identity_params_round_to_integers() {
        let qp = QuantParams::identity(16);
        assert_eq!(qp.fake(3.4), 3.0);
        assert_eq!(qp.fake(-2.6), -3.0);
    }

    #[test]
    fn degenerate_range_stays_finite() {
        let qp = QuantParams::from_min_max(0.0, 0.0, 8);
        assert!(qp.scale > 0.0);
        assert!(qp.fake(0.0).is_finite());
    }

    /// Regression: `from_min_max` used `(qmax - qmin)` in i32, which
    /// overflows (and panics in debug builds) for bits = 32. Every
    /// supported extreme bit-width must build finite, positive-scale
    /// parameters and round-trip in-range values.
    #[test]
    fn from_min_max_all_bit_widths_including_32() {
        for bits in [2u8, 8, 16, 32] {
            for (lo, hi) in [(-1.0f32, 1.0f32), (-0.5, 2.5), (0.0, 3.0), (-4.0, 0.0)] {
                let qp = QuantParams::from_min_max(lo, hi, bits);
                assert!(
                    qp.scale > 0.0 && qp.scale.is_finite(),
                    "bits={bits} range=({lo},{hi}) scale={}",
                    qp.scale
                );
                assert!(
                    qp.qmin <= qp.zero_point && qp.zero_point <= qp.qmax,
                    "bits={bits}"
                );
                assert_eq!(qp.fake(0.0), 0.0, "bits={bits}: zero must stay exact");
                // In-range values round-trip within one step (f32 rounding
                // of huge codes costs a few ULP at 32 bits, hence the 2×).
                // The representable range is [min(lo,0), max(hi,0)]; pick a
                // point a quarter of the way in so clipping never triggers.
                let (rlo, rhi) = (lo.min(0.0), hi.max(0.0));
                let x = rlo + 0.25 * (rhi - rlo);
                assert!(
                    (qp.fake(x) - x).abs() <= 2.0 * qp.scale.max(f32::EPSILON * x.abs()),
                    "bits={bits} x={x} fake={}",
                    qp.fake(x)
                );
            }
            // Symmetric and identity constructors share int_range(32).
            let sym = QuantParams::symmetric(-3.0, 2.0, bits);
            assert_eq!(sym.zero_point, 0);
            assert!(sym.scale > 0.0 && sym.scale.is_finite());
            let id = QuantParams::identity(bits);
            assert_eq!(id.scale, 1.0);
        }
    }
}
