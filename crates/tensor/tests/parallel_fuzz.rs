//! Generated-case extension of `parallel_identity`: random shapes, random
//! degree-skewed graphs, and random thread counts, checking that the
//! threaded kernels — and a full forward+backward tape program driven
//! through them — are *bit-identical* to the serial path.
//!
//! One `#[test]` only: the thread count and the serial-fallback threshold
//! are process-wide knobs, and cargo runs tests in one binary concurrently.

use std::sync::Arc;

use mixq_proptest::{graph, usize_in, Config, Gen, GraphConfig, RandomGraph};
use mixq_tensor::parallel::{set_num_threads, set_parallel_row_threshold, DEFAULT_ROW_THRESHOLD};
use mixq_tensor::{Matrix, Rng, SpPair, Tape};

fn assert_bits_eq(a: &Matrix, b: &Matrix, what: &str) {
    assert_eq!(a.shape(), b.shape(), "{what}: shape mismatch");
    let same = a
        .data()
        .iter()
        .zip(b.data())
        .all(|(x, y)| x.to_bits() == y.to_bits());
    assert!(
        same,
        "{what}: parallel result is not bit-identical to serial"
    );
}

#[derive(Clone, Debug)]
struct ParCase {
    g: RandomGraph,
    hidden: usize,
    threads: usize,
    seed: u64,
}

fn par_case() -> Gen<ParCase> {
    let cfg = GraphConfig {
        min_nodes: 1,
        max_nodes: 24,
        max_degree: 5,
        degree_alpha: 2.0,
        isolated_frac: 0.15,
        self_loops: true,
        val_lo: -1.0,
        val_hi: 1.0,
    };
    graph(cfg)
        .zip(&usize_in(1, 6))
        .zip(&usize_in(2, 6))
        .zip(&usize_in(0, 1 << 20))
        .map(|&(((ref g, hidden), threads), seed)| ParCase {
            g: g.clone(),
            hidden,
            threads,
            seed: seed as u64,
        })
}

/// One GCN-flavoured forward+backward that exercises the threaded matmul,
/// SpMM, par_map (relu), and par_zip (mul) kernels plus their backward
/// rules. Returns (loss, dX, dW) for bit comparison.
fn run_program(pair: &Arc<SpPair>, x: &Matrix, w: &Matrix) -> (f32, Matrix, Matrix) {
    let mut t = Tape::new();
    let xv = t.leaf(x.clone());
    let wv = t.leaf(w.clone());
    let xw = t.matmul(xv, wv);
    let h = t.relu(xw);
    let y = t.spmm(pair, h);
    let y2 = t.mul(y, y);
    let loss = t.sum_all(y2);
    t.backward(loss);
    (
        t.value(loss).item(),
        t.grad(xv).unwrap().clone(),
        t.grad(wv).unwrap().clone(),
    )
}

#[test]
fn fuzz_parallel_kernels_and_gradients_bit_identical_to_serial() {
    // Force the threaded path even for tiny shapes.
    set_parallel_row_threshold(0);

    Config::new("parallel_identity")
        .cases(48)
        .run(&par_case(), |c| {
            let n = c.g.nodes;
            let pair = Arc::new(SpPair::new(c.g.to_csr()));
            let mut rng = Rng::seed_from_u64(c.seed);
            let feats = 1 + (c.seed as usize % 4);
            let x = Matrix::from_fn(n, feats, |_, _| rng.uniform_in(-2.0, 2.0));
            let w = Matrix::from_fn(feats, c.hidden, |_, _| rng.uniform_in(-1.0, 1.0));

            set_num_threads(1);
            let serial_mm = x.matmul(&w);
            let (loss_s, dx_s, dw_s) = run_program(&pair, &x, &w);

            set_num_threads(c.threads);
            let par_mm = x.matmul(&w);
            let (loss_p, dx_p, dw_p) = run_program(&pair, &x, &w);
            set_num_threads(1);

            assert_bits_eq(&serial_mm, &par_mm, "matmul forward");
            assert_eq!(
                loss_s.to_bits(),
                loss_p.to_bits(),
                "loss diverged at {} threads (nodes={n})",
                c.threads
            );
            assert_bits_eq(&dx_s, &dx_p, "dX");
            assert_bits_eq(&dw_s, &dw_p, "dW");
        });

    // Restore defaults for any later test in this binary.
    set_num_threads(1);
    set_parallel_row_threshold(DEFAULT_ROW_THRESHOLD);
}
