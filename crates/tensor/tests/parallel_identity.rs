//! Property tests: the parallel dense kernels are bit-identical to the
//! serial kernels for random shapes at 1–8 threads, including single-row
//! and single-column matrices.
//!
//! One `#[test]` only: the thread count and the serial-fallback threshold
//! are process-wide knobs, and cargo runs tests in one binary concurrently.

use mixq_tensor::parallel::{set_num_threads, set_parallel_row_threshold, DEFAULT_ROW_THRESHOLD};
use mixq_tensor::{Matrix, QuantParams, Rng};

fn random_matrix(rng: &mut Rng, rows: usize, cols: usize) -> Matrix {
    Matrix::from_fn(rows, cols, |_, _| rng.uniform_in(-2.0, 2.0))
}

fn assert_bits_eq(a: &Matrix, b: &Matrix, what: &str) {
    assert_eq!(a.shape(), b.shape(), "{what}: shape mismatch");
    let same = a
        .data()
        .iter()
        .zip(b.data())
        .all(|(x, y)| x.to_bits() == y.to_bits());
    assert!(
        same,
        "{what}: parallel result is not bit-identical to serial"
    );
}

#[test]
fn parallel_dense_kernels_bit_identical_to_serial() {
    // Force the threaded path even for tiny shapes.
    set_parallel_row_threshold(0);
    let mut rng = Rng::seed_from_u64(0xDE17);

    // (m, k, n) triples covering single-row, single-col, uneven splits.
    let shapes = [
        (1usize, 1usize, 1usize),
        (1, 7, 3),
        (5, 1, 4),
        (3, 4, 1),
        (8, 8, 8),
        (17, 5, 9),
        (33, 16, 7),
    ];
    for &(m, k, n) in &shapes {
        let a = random_matrix(&mut rng, m, k);
        let b = random_matrix(&mut rng, k, n);
        let g = random_matrix(&mut rng, m, n);
        let qp = QuantParams::from_min_max(-1.5, 1.5, 4);

        set_num_threads(1);
        let mm = a.matmul(&b);
        let atb = a.matmul_at_b(&g); // (k × n) — the dB backward rule
        let abt = g.matmul_a_bt(&b); // (m × k) — the dA backward rule
        let fq = a.par_map(|x| qp.fake(x));
        let zi = a.par_zip(&a, |x, y| x * y + 0.5);

        for threads in 2..=8usize {
            set_num_threads(threads);
            assert_bits_eq(&mm, &a.matmul(&b), "matmul");
            assert_bits_eq(&atb, &a.matmul_at_b(&g), "matmul_at_b");
            assert_bits_eq(&abt, &g.matmul_a_bt(&b), "matmul_a_bt");
            assert_bits_eq(&fq, &a.par_map(|x| qp.fake(x)), "par_map");
            assert_bits_eq(&zi, &a.par_zip(&a, |x, y| x * y + 0.5), "par_zip");
            // The parallel map must also agree with the serial `map`.
            assert_bits_eq(&fq, &a.map(|x| qp.fake(x)), "par_map vs map");
        }
    }

    // Restore defaults for any later test in this binary.
    set_num_threads(1);
    set_parallel_row_threshold(DEFAULT_ROW_THRESHOLD);
}
