//! Finite-difference verification of every backward rule on the tape, plus
//! structural autograd tests (accumulation, constant skipping, reuse).

use std::sync::Arc;

use mixq_sparse::{CooEntry, CsrMatrix};
use mixq_tensor::{assert_close, numeric_grad, Matrix, QuantParams, Rng, SpPair, Tape, Var};

const EPS: f32 = 1e-3;
const TOL: f32 = 2e-2;

fn rand_matrix(rng: &mut Rng, r: usize, c: usize) -> Matrix {
    Matrix::from_fn(r, c, |_, _| rng.normal())
}

/// Checks `∂loss/∂x` for a scalar-valued tape program `build(tape, x_var)`.
fn check_grad(x: &Matrix, build: impl Fn(&mut Tape, Var) -> Var, what: &str) {
    let mut tape = Tape::new();
    let xv = tape.leaf(x.clone());
    let loss = build(&mut tape, xv);
    tape.backward(loss);
    let analytic = tape.grad(xv).expect("leaf must receive a gradient").clone();

    let numeric = numeric_grad(
        |xp| {
            let mut t = Tape::new();
            let xv = t.leaf(xp.clone());
            let loss = build(&mut t, xv);
            t.value(loss).item()
        },
        x,
        EPS,
    );
    assert_close(&analytic, &numeric, TOL, what);
}

#[test]
fn grad_matmul_left_and_right() {
    let mut rng = Rng::seed_from_u64(1);
    let a = rand_matrix(&mut rng, 3, 4);
    let b = rand_matrix(&mut rng, 4, 2);

    check_grad(
        &a,
        |t, x| {
            let bv = t.constant(b.clone());
            let y = t.matmul(x, bv);
            t.sum_all(y)
        },
        "matmul wrt lhs",
    );
    check_grad(
        &b,
        |t, x| {
            let av = t.constant(a.clone());
            let y = t.matmul(av, x);
            t.sum_all(y)
        },
        "matmul wrt rhs",
    );
}

#[test]
fn grad_spmm() {
    let mut rng = Rng::seed_from_u64(2);
    let adj = CsrMatrix::from_coo(
        3,
        3,
        vec![
            CooEntry {
                row: 0,
                col: 1,
                val: 0.5,
            },
            CooEntry {
                row: 1,
                col: 0,
                val: -1.5,
            },
            CooEntry {
                row: 1,
                col: 2,
                val: 2.0,
            },
            CooEntry {
                row: 2,
                col: 2,
                val: 1.0,
            },
        ],
    );
    let pair = SpPair::new(adj);
    let x = rand_matrix(&mut rng, 3, 4);
    check_grad(
        &x,
        move |t, xv| {
            let y = t.spmm(&pair, xv);
            let y2 = t.mul(y, y); // nonlinear so dX isn't constant
            t.sum_all(y2)
        },
        "spmm wrt dense operand",
    );
}

#[test]
fn grad_elementwise_ops() {
    let mut rng = Rng::seed_from_u64(3);
    let a = rand_matrix(&mut rng, 4, 3);
    let b = rand_matrix(&mut rng, 4, 3);

    check_grad(
        &a,
        |t, x| {
            let bv = t.constant(b.clone());
            let s = t.add(x, bv);
            let d = t.sub(s, x);
            let m = t.mul(d, x);
            let sc = t.scale(m, 0.7);
            t.sum_all(sc)
        },
        "add/sub/mul/scale chain",
    );
}

#[test]
fn grad_mul_accumulates_to_both_sides_when_same_var() {
    // y = x ⊙ x ⇒ dy/dx = 2x
    let x = Matrix::from_vec(1, 3, vec![1.0, -2.0, 3.0]);
    let mut t = Tape::new();
    let xv = t.leaf(x.clone());
    let y = t.mul(xv, xv);
    let loss = t.sum_all(y);
    t.backward(loss);
    let g = t.grad(xv).unwrap();
    assert_close(g, &x.map(|v| 2.0 * v), 1e-5, "x*x accumulation");
}

#[test]
fn grad_add_bias() {
    let mut rng = Rng::seed_from_u64(4);
    let x = rand_matrix(&mut rng, 5, 3);
    let b = rand_matrix(&mut rng, 1, 3);
    check_grad(
        &b,
        |t, bv| {
            let xv = t.constant(x.clone());
            let y = t.add_bias(xv, bv);
            let y2 = t.mul(y, y);
            t.sum_all(y2)
        },
        "bias grad is column sum",
    );
}

#[test]
fn grad_mul_scalar_var() {
    let mut rng = Rng::seed_from_u64(5);
    let x = rand_matrix(&mut rng, 3, 3);
    let s = Matrix::scalar(1.3);
    check_grad(
        &s,
        |t, sv| {
            let xv = t.constant(x.clone());
            let y = t.mul_scalar_var(xv, sv);
            let y2 = t.mul(y, y);
            t.sum_all(y2)
        },
        "scalar multiplier grad",
    );
    check_grad(
        &x,
        |t, xv| {
            let sv = t.constant(s.clone());
            let y = t.mul_scalar_var(xv, sv);
            t.sum_all(y)
        },
        "mul_scalar_var wrt tensor",
    );
}

#[test]
fn grad_affine_cols() {
    let mut rng = Rng::seed_from_u64(6);
    let x = rand_matrix(&mut rng, 4, 3);
    check_grad(
        &x,
        |t, xv| {
            let y = t.affine_cols(xv, vec![2.0, -1.0, 0.5], vec![0.1, 0.2, 0.3]);
            let y2 = t.mul(y, y);
            t.sum_all(y2)
        },
        "affine_cols",
    );
}

#[test]
fn grad_activations() {
    let mut rng = Rng::seed_from_u64(7);
    // Keep values away from the ReLU kink so finite differences are valid.
    let x = Matrix::from_fn(4, 4, |_, _| {
        let v = rng.normal();
        if v.abs() < 0.05 {
            0.2
        } else {
            v
        }
    });
    check_grad(
        &x,
        |t, xv| {
            let y = t.relu(xv);
            t.sum_all(y)
        },
        "relu",
    );
    check_grad(
        &x,
        |t, xv| {
            let y = t.leaky_relu(xv, 0.2);
            t.sum_all(y)
        },
        "leaky_relu",
    );
}

#[test]
fn grad_dropout_with_mask() {
    let mut rng = Rng::seed_from_u64(8);
    let x = rand_matrix(&mut rng, 3, 4);
    let mask: Vec<f32> = (0..12)
        .map(|i| if i % 3 == 0 { 0.0 } else { 2.0 })
        .collect();
    check_grad(
        &x,
        move |t, xv| {
            let y = t.dropout_with_mask(xv, mask.clone());
            let y2 = t.mul(y, y);
            t.sum_all(y2)
        },
        "dropout mask",
    );
}

#[test]
fn dropout_eval_mode_is_identity() {
    let mut rng = Rng::seed_from_u64(9);
    let x = rand_matrix(&mut rng, 2, 2);
    let mut t = Tape::new();
    let xv = t.leaf(x.clone());
    let y = t.dropout(xv, 0.5, &mut rng, false);
    assert_eq!(y, xv, "eval-mode dropout must return the input var");
}

#[test]
fn grad_log_softmax_and_nll() {
    let mut rng = Rng::seed_from_u64(10);
    let x = rand_matrix(&mut rng, 5, 4);
    let rows = vec![0usize, 2, 4];
    let targets = vec![1usize, 3, 0];
    check_grad(
        &x,
        move |t, xv| {
            let lp = t.log_softmax(xv);
            t.nll_masked(lp, &rows, &targets)
        },
        "log_softmax + masked NLL",
    );
}

#[test]
fn log_softmax_rows_are_normalized() {
    let mut rng = Rng::seed_from_u64(11);
    let x = rand_matrix(&mut rng, 3, 6);
    let mut t = Tape::new();
    let xv = t.constant(x);
    let lp = t.log_softmax(xv);
    for r in 0..3 {
        let sum: f32 = t.value(lp).row_slice(r).iter().map(|&v| v.exp()).sum();
        assert!((sum - 1.0).abs() < 1e-5, "row {r} softmax sums to {sum}");
    }
}

#[test]
fn grad_bce_with_logits() {
    let mut rng = Rng::seed_from_u64(12);
    let x = rand_matrix(&mut rng, 4, 3);
    let targets = Matrix::from_fn(4, 3, |_, _| if rng.bernoulli(0.5) { 1.0 } else { 0.0 });
    let rows = vec![0usize, 1, 3];
    check_grad(
        &x,
        move |t, xv| t.bce_with_logits_masked(xv, &targets, &rows),
        "BCE with logits",
    );
}

#[test]
fn grad_batch_norm_all_inputs() {
    let mut rng = Rng::seed_from_u64(13);
    let x = rand_matrix(&mut rng, 6, 3);
    let gamma = Matrix::from_vec(1, 3, vec![1.2, 0.8, -0.5]);
    let beta = Matrix::from_vec(1, 3, vec![0.1, -0.2, 0.3]);

    check_grad(
        &x,
        |t, xv| {
            let g = t.constant(gamma.clone());
            let b = t.constant(beta.clone());
            let out = t.batch_norm(xv, g, b, 1e-5);
            let y2 = t.mul(out.y, out.y);
            t.sum_all(y2)
        },
        "batch_norm wrt x",
    );
    check_grad(
        &gamma,
        |t, gv| {
            let xv = t.constant(x.clone());
            let b = t.constant(beta.clone());
            let out = t.batch_norm(xv, gv, b, 1e-5);
            let y2 = t.mul(out.y, out.y);
            t.sum_all(y2)
        },
        "batch_norm wrt gamma",
    );
    check_grad(
        &beta,
        |t, bv| {
            let xv = t.constant(x.clone());
            let g = t.constant(gamma.clone());
            let out = t.batch_norm(xv, g, bv, 1e-5);
            let y2 = t.mul(out.y, out.y);
            t.sum_all(y2)
        },
        "batch_norm wrt beta",
    );
}

#[test]
fn batch_norm_output_is_standardized() {
    let mut rng = Rng::seed_from_u64(14);
    let x = Matrix::from_fn(64, 2, |_, _| rng.normal() * 3.0 + 1.0);
    let mut t = Tape::new();
    let xv = t.constant(x);
    let g = t.constant(Matrix::ones(1, 2));
    let b = t.constant(Matrix::zeros(1, 2));
    let out = t.batch_norm(xv, g, b, 1e-5);
    let y = t.value(out.y);
    for c in 0..2 {
        let mean: f32 = (0..64).map(|r| y.get(r, c)).sum::<f32>() / 64.0;
        let var: f32 = (0..64).map(|r| (y.get(r, c) - mean).powi(2)).sum::<f32>() / 64.0;
        assert!(mean.abs() < 1e-4);
        assert!((var - 1.0).abs() < 1e-3);
    }
    assert!(
        (out.mean[0] - 1.0).abs() < 0.5,
        "batch mean should be near 1"
    );
}

#[test]
fn grad_global_max_pool() {
    let mut rng = Rng::seed_from_u64(15);
    let x = rand_matrix(&mut rng, 7, 3);
    let offsets = vec![0usize, 3, 7];
    check_grad(
        &x,
        move |t, xv| {
            let y = t.global_max_pool(xv, &offsets);
            let y2 = t.mul(y, y);
            t.sum_all(y2)
        },
        "global max pool",
    );
}

#[test]
fn global_max_pool_values() {
    let x = Matrix::from_vec(4, 2, vec![1.0, 5.0, 3.0, 2.0, -1.0, 0.0, 4.0, -2.0]);
    let mut t = Tape::new();
    let xv = t.constant(x);
    let y = t.global_max_pool(xv, &[0, 2, 4]);
    assert_eq!(t.value(y).data(), &[3.0, 5.0, 4.0, 0.0]);
}

#[test]
fn grad_mean_all() {
    let mut rng = Rng::seed_from_u64(16);
    let x = rand_matrix(&mut rng, 3, 5);
    check_grad(
        &x,
        |t, xv| {
            let y = t.mul(xv, xv);
            t.mean_all(y)
        },
        "mean_all",
    );
}

#[test]
fn grad_fake_quant_ste_passes_in_range_blocks_clipped() {
    let qp = QuantParams::from_min_max(-1.0, 1.0, 4);
    // Values well inside range, plus values far outside (clipped).
    let x = Matrix::from_vec(1, 4, vec![0.3, -0.4, 5.0, -5.0]);
    let mut t = Tape::new();
    let xv = t.leaf(x);
    let y = t.fake_quant(xv, qp);
    let loss = t.sum_all(y);
    t.backward(loss);
    let g = t.grad(xv).unwrap();
    assert_eq!(g.data()[0], 1.0, "in-range passes gradient");
    assert_eq!(g.data()[1], 1.0);
    assert_eq!(g.data()[2], 0.0, "clipped value blocks gradient");
    assert_eq!(g.data()[3], 0.0);
}

#[test]
fn fake_quant_forward_matches_params() {
    let qp = QuantParams::from_min_max(-2.0, 2.0, 8);
    let mut rng = Rng::seed_from_u64(17);
    let x = rand_matrix(&mut rng, 3, 3);
    let mut t = Tape::new();
    let xv = t.constant(x.clone());
    let y = t.fake_quant(xv, qp);
    for i in 0..x.numel() {
        assert_eq!(t.value(y).data()[i], qp.fake(x.data()[i]));
    }
}

#[test]
fn grad_relaxed_fake_quant_wrt_alphas() {
    let mut rng = Rng::seed_from_u64(18);
    let x = rand_matrix(&mut rng, 4, 3);
    let qps: Vec<QuantParams> = [2u8, 4, 8]
        .iter()
        .map(|&b| QuantParams::from_min_max(-3.0, 3.0, b))
        .collect();
    let alphas = Matrix::from_vec(1, 3, vec![0.3, -0.2, 0.5]);
    check_grad(
        &alphas,
        move |t, av| {
            let xv = t.constant(x.clone());
            let y = t.relaxed_fake_quant(xv, av, &qps);
            let y2 = t.mul(y, y);
            t.sum_all(y2)
        },
        "relaxed fake quant wrt alphas",
    );
}

#[test]
fn relaxed_fake_quant_is_convex_combination() {
    let mut rng = Rng::seed_from_u64(19);
    let x = rand_matrix(&mut rng, 5, 2);
    let qps: Vec<QuantParams> = [2u8, 8]
        .iter()
        .map(|&b| QuantParams::from_min_max(-3.0, 3.0, b))
        .collect();
    // Extreme alpha ⇒ output ≈ single quantizer.
    let mut t = Tape::new();
    let xv = t.constant(x.clone());
    let av = t.constant(Matrix::from_vec(1, 2, vec![20.0, -20.0]));
    let y = t.relaxed_fake_quant(xv, av, &qps);
    let expect = x.map(|v| qps[0].fake(v));
    assert!(t.value(y).max_abs_diff(&expect) < 1e-4);
}

#[test]
fn grad_bit_penalty() {
    let alphas = Matrix::from_vec(1, 3, vec![0.1, 0.7, -0.4]);
    check_grad(
        &alphas,
        |t, av| t.bit_penalty(av, &[2.0, 4.0, 8.0], 1000),
        "bit penalty wrt alphas",
    );
}

#[test]
fn bit_penalty_value_matches_formula() {
    let mut t = Tape::new();
    let av = t.constant(Matrix::from_vec(1, 2, vec![0.0, 0.0]));
    let p = t.bit_penalty(av, &[4.0, 8.0], 8192);
    // Equal weights ⇒ avg bits 6; 6 * 8192 / 8192 = 6.
    assert!((t.value(p).item() - 6.0).abs() < 1e-5);
}

#[test]
fn bit_penalty_gradient_favours_fewer_bits() {
    // Following Eq. 8's analysis: the α of the *larger* bit-width gets a
    // positive gradient (is pushed down by gradient descent).
    let mut t = Tape::new();
    let av = t.leaf(Matrix::from_vec(1, 3, vec![0.0, 0.0, 0.0]));
    let p = t.bit_penalty(av, &[2.0, 4.0, 8.0], 1024);
    t.backward(p);
    let g = t.grad(av).unwrap();
    assert!(g.data()[2] > 0.0, "widest bit-width pushed down");
    assert!(g.data()[0] < 0.0, "narrowest bit-width pulled up");
    let sum: f32 = g.data().iter().sum();
    assert!(sum.abs() < 1e-6, "softmax Jacobian gradient sums to zero");
}

#[test]
fn constants_receive_no_gradient() {
    let mut rng = Rng::seed_from_u64(20);
    let x = rand_matrix(&mut rng, 2, 2);
    let mut t = Tape::new();
    let xv = t.constant(x.clone());
    let w = t.leaf(x);
    let y = t.mul(xv, w);
    let loss = t.sum_all(y);
    t.backward(loss);
    assert!(
        t.grad(xv).is_none(),
        "constants must not accumulate gradients"
    );
    assert!(t.grad(w).is_some());
}

#[test]
fn gradient_accumulates_across_multiple_uses() {
    // loss = sum(x·B) + sum(x·C): dx must be B·1 + C·1.
    let mut rng = Rng::seed_from_u64(21);
    let x = rand_matrix(&mut rng, 2, 3);
    let b = rand_matrix(&mut rng, 3, 2);
    let c = rand_matrix(&mut rng, 3, 4);
    check_grad(
        &x,
        |t, xv| {
            let bv = t.constant(b.clone());
            let cv = t.constant(c.clone());
            let y1 = t.matmul(xv, bv);
            let y2 = t.matmul(xv, cv);
            let s1 = t.sum_all(y1);
            let s2 = t.sum_all(y2);
            t.add(s1, s2)
        },
        "multi-use accumulation",
    );
}

#[test]
fn deep_chain_end_to_end() {
    // A miniature 2-layer "GCN": relu(A·X·W1)·W2 with NLL loss — exercises
    // the exact op mix the real model uses.
    let mut rng = Rng::seed_from_u64(22);
    let adj = CsrMatrix::from_coo(
        4,
        4,
        vec![
            CooEntry {
                row: 0,
                col: 1,
                val: 0.5,
            },
            CooEntry {
                row: 1,
                col: 0,
                val: 0.5,
            },
            CooEntry {
                row: 2,
                col: 3,
                val: 1.0,
            },
            CooEntry {
                row: 3,
                col: 2,
                val: 1.0,
            },
            CooEntry {
                row: 0,
                col: 0,
                val: 0.5,
            },
            CooEntry {
                row: 1,
                col: 1,
                val: 0.5,
            },
        ],
    );
    let pair = SpPair::new(adj);
    let x = rand_matrix(&mut rng, 4, 3);
    let w1 = rand_matrix(&mut rng, 3, 5);
    let w2 = rand_matrix(&mut rng, 5, 2);
    let rows = vec![0usize, 2];
    let targets = vec![1usize, 0];

    check_grad(
        &w1,
        move |t, w1v| {
            let xv = t.constant(x.clone());
            let w2v = t.constant(w2.clone());
            let xw = t.matmul(xv, w1v);
            let ax = t.spmm(&pair, xw);
            let h = t.relu(ax);
            let out = t.matmul(h, w2v);
            let lp = t.log_softmax(out);
            t.nll_masked(lp, &rows, &targets)
        },
        "two-layer GCN chain wrt W1",
    );
}

#[test]
fn backward_twice_on_fresh_tapes_is_stable() {
    let mut rng = Rng::seed_from_u64(23);
    let x = rand_matrix(&mut rng, 3, 3);
    let mut grads = Vec::new();
    for _ in 0..2 {
        let mut t = Tape::new();
        let xv = t.leaf(x.clone());
        let y = t.mul(xv, xv);
        let loss = t.sum_all(y);
        t.backward(loss);
        grads.push(t.grad(xv).unwrap().clone());
    }
    assert_eq!(grads[0], grads[1]);
}

#[test]
fn spmm_forward_matches_dense() {
    let mut rng = Rng::seed_from_u64(24);
    let adj = CsrMatrix::from_coo(
        3,
        3,
        vec![
            CooEntry {
                row: 0,
                col: 2,
                val: 2.0,
            },
            CooEntry {
                row: 1,
                col: 1,
                val: -1.0,
            },
        ],
    );
    let dense_a = Matrix::from_vec(3, 3, adj.to_dense());
    let pair = SpPair::new(adj);
    let x = rand_matrix(&mut rng, 3, 4);
    let mut t = Tape::new();
    let xv = t.constant(x.clone());
    let y = t.spmm(&pair, xv);
    let expect = dense_a.matmul(&x);
    assert!(t.value(y).max_abs_diff(&expect) < 1e-6);
}

/// Property: for random shapes and values, the matmul backward rule
/// matches finite differences. Seeded loop instead of proptest (no
/// external dev-deps available offline).
#[test]
fn prop_matmul_grad() {
    let mut meta = Rng::seed_from_u64(0xA57);
    for case in 0..32u64 {
        let mut rng = meta.fork(case);
        let (m, k, n) = (
            1 + rng.gen_range(4),
            1 + rng.gen_range(4),
            1 + rng.gen_range(4),
        );
        let a = rand_matrix(&mut rng, m, k);
        let b = rand_matrix(&mut rng, k, n);
        check_grad(
            &a,
            |t, x| {
                let bv = t.constant(b.clone());
                let y = t.matmul(x, bv);
                let y2 = t.mul(y, y);
                t.sum_all(y2)
            },
            "prop matmul",
        );
    }
}

/// Property: relaxed quantizer output always lies between the min and
/// max of the individual quantizer outputs (convex combination).
#[test]
fn prop_relaxed_quant_convex() {
    for seed in 0..32u64 {
        let mut rng = Rng::seed_from_u64(seed * 31 + 7);
        let x = rand_matrix(&mut rng, 3, 3);
        let qps: Vec<QuantParams> = [2u8, 4, 8]
            .iter()
            .map(|&b| QuantParams::from_min_max(-3.0, 3.0, b))
            .collect();
        let alphas = Matrix::from_vec(1, 3, vec![rng.normal(), rng.normal(), rng.normal()]);
        let mut t = Tape::new();
        let xv = t.constant(x.clone());
        let av = t.constant(alphas);
        let y = t.relaxed_fake_quant(xv, av, &qps);
        for i in 0..x.numel() {
            let outs: Vec<f32> = qps.iter().map(|qp| qp.fake(x.data()[i])).collect();
            let lo = outs.iter().cloned().fold(f32::INFINITY, f32::min) - 1e-5;
            let hi = outs.iter().cloned().fold(f32::NEG_INFINITY, f32::max) + 1e-5;
            let v = t.value(y).data()[i];
            assert!(
                v >= lo && v <= hi,
                "element {} = {} outside [{}, {}]",
                i,
                v,
                lo,
                hi
            );
        }
    }
}

#[test]
fn grad_fake_quant_rows_per_row_ste() {
    let qps = vec![
        QuantParams::from_min_max(-1.0, 1.0, 2),
        QuantParams::from_min_max(-4.0, 4.0, 8),
    ];
    let x = Matrix::from_vec(2, 2, vec![0.3, 9.0, 0.3, 9.0]);
    let mut t = Tape::new();
    let xv = t.leaf(x.clone());
    let y = t.fake_quant_rows(xv, &qps);
    let loss = t.sum_all(y);
    t.backward(loss);
    let g = t.grad(xv).unwrap();
    // Row 0 (2-bit, range ±1): 0.3 in range, 9.0 clipped.
    assert_eq!(g.data()[0], 1.0);
    assert_eq!(g.data()[1], 0.0);
    // Row 1 (8-bit, range ±4): 0.3 in range, 9.0 clipped.
    assert_eq!(g.data()[2], 1.0);
    assert_eq!(g.data()[3], 0.0);
    // Forward uses the per-row params.
    assert_eq!(t.value(y).get(0, 0), qps[0].fake(0.3));
    assert_eq!(t.value(y).get(1, 0), qps[1].fake(0.3));
}

#[test]
fn grad_exp() {
    let mut rng = Rng::seed_from_u64(40);
    let x = rand_matrix(&mut rng, 3, 3);
    check_grad(
        &x,
        |t, xv| {
            let y = t.exp(xv);
            t.sum_all(y)
        },
        "exp",
    );
}

#[test]
fn softmax_via_exp_log_softmax_sums_to_one() {
    let mut rng = Rng::seed_from_u64(41);
    let x = rand_matrix(&mut rng, 1, 5);
    let mut t = Tape::new();
    let xv = t.constant(x);
    let lp = t.log_softmax(xv);
    let w = t.exp(lp);
    let s: f32 = t.value(w).data().iter().sum();
    assert!((s - 1.0).abs() < 1e-5);
}

fn gat_graph() -> Arc<CsrMatrix> {
    // Directed neighbourhoods incl. self-loops; node 3 has no edges.
    Arc::new(CsrMatrix::from_coo(
        4,
        4,
        vec![
            CooEntry {
                row: 0,
                col: 0,
                val: 1.0,
            },
            CooEntry {
                row: 0,
                col: 1,
                val: 1.0,
            },
            CooEntry {
                row: 0,
                col: 2,
                val: 1.0,
            },
            CooEntry {
                row: 1,
                col: 1,
                val: 1.0,
            },
            CooEntry {
                row: 1,
                col: 0,
                val: 1.0,
            },
            CooEntry {
                row: 2,
                col: 2,
                val: 1.0,
            },
            CooEntry {
                row: 2,
                col: 1,
                val: 1.0,
            },
        ],
    ))
}

#[test]
fn gat_attention_weights_sum_to_one() {
    let mut rng = Rng::seed_from_u64(50);
    let h = rand_matrix(&mut rng, 4, 3);
    let adj = gat_graph();
    let mut t = Tape::new();
    let hv = t.constant(h.clone());
    let ones = t.constant(Matrix::ones(4, 1));
    // With src = dst = 1 for all nodes, every edge has the same logit, so
    // y_i is the plain mean over N(i).
    let y = t.gat_aggregate(hv, ones, ones, &adj, 0.2);
    let y0 = t.value(y).row_slice(0);
    for (c, &yv) in y0.iter().enumerate() {
        let mean = (h.get(0, c) + h.get(1, c) + h.get(2, c)) / 3.0;
        assert!((yv - mean).abs() < 1e-5, "uniform attention must average");
    }
    // Isolated node produces zeros.
    assert!(t.value(y).row_slice(3).iter().all(|&v| v == 0.0));
}

#[test]
fn grad_gat_aggregate_all_inputs() {
    let mut rng = Rng::seed_from_u64(51);
    let h = rand_matrix(&mut rng, 4, 3);
    let s = rand_matrix(&mut rng, 4, 1);
    let d = rand_matrix(&mut rng, 4, 1);
    let adj = gat_graph();

    let adj_h = Arc::clone(&adj);
    let (s2, d2) = (s.clone(), d.clone());
    check_grad(
        &h,
        move |t, hv| {
            let sv = t.constant(s2.clone());
            let dv = t.constant(d2.clone());
            let y = t.gat_aggregate(hv, sv, dv, &adj_h, 0.2);
            let y2 = t.mul(y, y);
            t.sum_all(y2)
        },
        "gat wrt h",
    );
    let adj_s = Arc::clone(&adj);
    let (h2, d2) = (h.clone(), d.clone());
    check_grad(
        &s,
        move |t, sv| {
            let hv = t.constant(h2.clone());
            let dv = t.constant(d2.clone());
            let y = t.gat_aggregate(hv, sv, dv, &adj_s, 0.2);
            let y2 = t.mul(y, y);
            t.sum_all(y2)
        },
        "gat wrt src attention",
    );
    let (h2, s2) = (h.clone(), s.clone());
    check_grad(
        &d,
        move |t, dv| {
            let hv = t.constant(h2.clone());
            let sv = t.constant(s2.clone());
            let y = t.gat_aggregate(hv, sv, dv, &adj, 0.2);
            let y2 = t.mul(y, y);
            t.sum_all(y2)
        },
        "gat wrt dst attention",
    );
}

#[test]
fn lsq_forward_snaps_to_learned_grid() {
    let x = Matrix::from_vec(1, 4, vec![0.05, 0.24, -0.13, 5.0]);
    let mut t = Tape::new();
    let xv = t.constant(x);
    let sv = t.constant(Matrix::scalar(0.1));
    let y = t.fake_quant_lsq(xv, sv, -8, 7);
    // 0.05→0.0 or 0.1 (ties-even → 0.0), 0.24→0.2, −0.13→−0.1, 5.0→clip 0.7.
    let out = t.value(y).data();
    assert!((out[1] - 0.2).abs() < 1e-6);
    assert!((out[2] + 0.1).abs() < 1e-6);
    assert!((out[3] - 0.7).abs() < 1e-6, "clipped to qmax·s");
}

#[test]
fn grad_lsq_wrt_scale_matches_published_formula() {
    // LSQ's scale gradient is a *surrogate*, not the local true derivative
    // (locally round(x/s) is constant, so d(round(v)·s)/ds = round(v); the
    // estimator instead uses round(v) − v in range and the clip level
    // outside, damped by 1/√(numel·qmax) — Esser et al.). Verify the
    // implementation against that formula directly.
    let s0 = 0.23f32;
    let x = Matrix::from_fn(4, 4, |r, c| {
        let k = (r * 4 + c) as f32 - 7.0;
        s0 * (k + 0.3) // some values exceed ±qmax·s ⇒ exercise clipping
    });
    let (qmin, qmax) = (-8i32, 7i32);
    let damp = 1.0 / ((16.0 * qmax as f32).sqrt());

    let mut tape = Tape::new();
    let xv = tape.constant(x.clone());
    let sv = tape.leaf(Matrix::scalar(s0));
    let y = tape.fake_quant_lsq(xv, sv, qmin, qmax);
    let y2 = tape.mul(y, y); // loss = Σ y², so dL/dy = 2y
    let loss = tape.sum_all(y2);
    let yvals = tape.value(y).clone();
    tape.backward(loss);
    let analytic = tape.grad(sv).unwrap().item();

    let mut expect = 0f32;
    for (&xe, &ye) in x.data().iter().zip(yvals.data()) {
        let v = xe / s0;
        let term = if v <= qmin as f32 {
            qmin as f32
        } else if v >= qmax as f32 {
            qmax as f32
        } else {
            v.round_ties_even() - v
        };
        expect += 2.0 * ye * term;
    }
    expect *= damp;
    assert!(
        (analytic - expect).abs() < 1e-4 * expect.abs().max(1.0),
        "analytic {analytic} vs formula {expect}"
    );
}

#[test]
fn lsq_scale_gradient_pulls_range_toward_data() {
    // Data much larger than the representable range: the loss Σ(y−x)²
    // should push the scale UP (coverage), i.e. negative gradient.
    let x = Matrix::from_vec(1, 3, vec![5.0, -6.0, 7.0]);
    let mut t = Tape::new();
    let xv = t.constant(x.clone());
    let sv = t.leaf(Matrix::scalar(0.1));
    let y = t.fake_quant_lsq(xv, sv, -8, 7);
    let xc = t.constant(x);
    let d = t.sub(y, xc);
    let sq = t.mul(d, d);
    let loss = t.sum_all(sq);
    t.backward(loss);
    let g = t.grad(sv).unwrap().item();
    assert!(
        g < 0.0,
        "scale gradient {g} should increase the scale to cover the data"
    );
}

#[test]
fn op_histogram_counts_recorded_ops() {
    let mut t = Tape::new();
    let a = t.leaf(Matrix::ones(2, 2));
    let b = t.constant(Matrix::ones(2, 2));
    let c = t.mul(a, b);
    let d = t.mul(c, a);
    let _ = t.sum_all(d);
    let hist = t.op_histogram();
    let get = |n: &str| {
        hist.iter()
            .find(|(k, _)| *k == n)
            .map(|&(_, c)| c)
            .unwrap_or(0)
    };
    assert_eq!(get("leaf"), 2);
    assert_eq!(get("mul"), 2);
    assert_eq!(get("sum_all"), 1);
    assert_eq!(hist[0].0, "leaf", "sorted by frequency");
}

#[test]
fn grad_dot_attn_aggregate_all_inputs() {
    let mut rng = Rng::seed_from_u64(70);
    let q = rand_matrix(&mut rng, 4, 3);
    let k = rand_matrix(&mut rng, 4, 3);
    let v = rand_matrix(&mut rng, 4, 3);
    let adj = gat_graph();

    for which in 0..3 {
        let (q2, k2, v2, adj2) = (q.clone(), k.clone(), v.clone(), Arc::clone(&adj));
        let target = [&q, &k, &v][which].clone();
        check_grad(
            &target,
            move |t, leaf| {
                let mk = |t: &mut Tape, m: &Matrix| t.constant(m.clone());
                let (qv, kv, vv) = match which {
                    0 => (leaf, mk(t, &k2), mk(t, &v2)),
                    1 => (mk(t, &q2), leaf, mk(t, &v2)),
                    _ => (mk(t, &q2), mk(t, &k2), leaf),
                };
                let y = t.dot_attn_aggregate(qv, kv, vv, &adj2);
                let y2 = t.mul(y, y);
                t.sum_all(y2)
            },
            &format!("dot-attention wrt input {which}"),
        );
    }
}

#[test]
fn dot_attn_uniform_when_keys_identical() {
    // Identical keys ⇒ identical logits ⇒ mean aggregation of v.
    let mut rng = Rng::seed_from_u64(71);
    let q = rand_matrix(&mut rng, 4, 2);
    let k = Matrix::from_fn(4, 2, |_, c| if c == 0 { 1.0 } else { -0.5 });
    let v = rand_matrix(&mut rng, 4, 2);
    let adj = gat_graph();
    let mut t = Tape::new();
    let qv = t.constant(q);
    let kv = t.constant(k);
    let vv = t.constant(v.clone());
    let y = t.dot_attn_aggregate(qv, kv, vv, &adj);
    for c in 0..2 {
        let mean = (v.get(0, c) + v.get(1, c) + v.get(2, c)) / 3.0;
        assert!((t.value(y).get(0, c) - mean).abs() < 1e-5);
    }
    assert!(
        t.value(y).row_slice(3).iter().all(|&x| x == 0.0),
        "isolated node stays zero"
    );
}
