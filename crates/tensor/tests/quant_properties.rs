//! Property-based tests of the quantization primitives.
//!
//! The older suites below randomize with the workspace's seeded [`Rng`]
//! directly; the edge-case suites at the bottom use the in-repo
//! `mixq-proptest` framework (generators + shrinking + `MIXQ_PT_SEED`
//! replay). No external dev-dependencies either way: the build environment
//! is offline.

use mixq_proptest::{f32_with_specials, Config, F32_SPECIALS};
use mixq_tensor::{QuantParams, Rng};

const CASES: u64 = 256;

/// Quantize→dequantize error is bounded by half a step inside the
/// representable range.
#[test]
fn round_trip_error_bounded() {
    let mut rng = Rng::seed_from_u64(0x51);
    for _ in 0..CASES {
        let lo = rng.uniform_in(-100.0, 0.0);
        let span = rng.uniform_in(0.1, 200.0);
        let bits = 2 + rng.gen_range(7) as u8;
        let t = rng.uniform_in(0.0, 1.0);
        let qp = QuantParams::from_min_max(lo, lo + span, bits);
        let (rlo, rhi) = qp.real_range();
        let x = rlo + t * (rhi - rlo);
        let err = (qp.fake(x) - x).abs();
        assert!(
            err <= qp.scale * 0.5 + 1e-5,
            "err {} > half-scale {}",
            err,
            qp.scale * 0.5
        );
    }
}

/// Fake quantization is idempotent: quantizing a quantized value is a no-op.
#[test]
fn fake_quant_idempotent() {
    let mut rng = Rng::seed_from_u64(0x52);
    for _ in 0..CASES {
        let x = rng.uniform_in(-50.0, 50.0);
        let bits = 2 + rng.gen_range(7) as u8;
        let qp = QuantParams::from_min_max(-10.0, 10.0, bits);
        let once = qp.fake(x);
        assert_eq!(qp.fake(once), once, "x={x} bits={bits}");
    }
}

/// Quantization is monotone: x ≤ y ⇒ Q(x) ≤ Q(y).
#[test]
fn quantize_is_monotone() {
    let mut rng = Rng::seed_from_u64(0x53);
    for _ in 0..CASES {
        let a = rng.uniform_in(-20.0, 20.0);
        let b = rng.uniform_in(-20.0, 20.0);
        let bits = 2 + rng.gen_range(7) as u8;
        let qp = QuantParams::from_min_max(-5.0, 5.0, bits);
        let (x, y) = if a <= b { (a, b) } else { (b, a) };
        assert!(qp.quantize(x) <= qp.quantize(y), "x={x} y={y} bits={bits}");
    }
}

/// Codes always land in [qmin, qmax] no matter the input, including huge
/// magnitudes and exact powers of two.
#[test]
fn codes_in_range() {
    let mut rng = Rng::seed_from_u64(0x54);
    for i in 0..CASES {
        // Mix uniform draws with extreme magnitudes.
        let x = match i % 4 {
            0 => rng.uniform_in(-1e6, 1e6),
            1 => rng.uniform_in(-1.0, 1.0) * 1e30,
            2 => rng.uniform_in(-1e-30, 1e-30),
            _ => {
                (2f32).powi(rng.gen_range(60) as i32 - 30)
                    * if rng.bernoulli(0.5) { 1.0 } else { -1.0 }
            }
        };
        let bits = 2 + rng.gen_range(7) as u8;
        let qp = QuantParams::from_min_max(-1.0, 1.0, bits);
        let q = qp.quantize(x);
        assert!(q >= qp.qmin && q <= qp.qmax, "x={x} bits={bits} q={q}");
    }
}

/// More bits never increase the round-trip error for in-range values.
#[test]
fn wider_is_never_worse() {
    let mut rng = Rng::seed_from_u64(0x55);
    for _ in 0..CASES {
        // Use the symmetric interior to avoid edge-of-range clipping noise.
        let t = rng.uniform_in(0.02, 0.98);
        let x = -1.0 + 2.0 * t;
        let mut last = f32::INFINITY;
        for bits in [2u8, 4, 8, 16] {
            let qp = QuantParams::from_min_max(-1.0, 1.0, bits);
            let err = (qp.fake(x) - x).abs();
            assert!(
                err <= last + 1e-6,
                "error grew from {last} to {err} at {bits} bits"
            );
            last = err;
        }
    }
}

/// Symmetric quantizers map 0 to code 0 exactly.
#[test]
fn symmetric_zero_code() {
    let mut rng = Rng::seed_from_u64(0x56);
    for _ in 0..CASES {
        let lo = rng.uniform_in(-10.0, -0.1);
        let hi = rng.uniform_in(0.1, 10.0);
        let bits = 2 + rng.gen_range(7) as u8;
        let qp = QuantParams::symmetric(lo, hi, bits);
        assert_eq!(qp.quantize(0.0), 0);
        assert_eq!(qp.fake(0.0), 0.0);
    }
}

// ---- mixq-proptest edge-case suites -----------------------------------------

/// Every constructed quantizer must be well-formed: positive finite scale,
/// zero point inside the code range, zero exactly representable.
fn assert_well_formed(qp: &QuantParams, ctx: &str) {
    assert!(
        qp.scale.is_finite() && qp.scale > 0.0,
        "{ctx}: scale {} must be positive finite",
        qp.scale
    );
    assert!(
        qp.qmin <= qp.zero_point && qp.zero_point <= qp.qmax,
        "{ctx}: zero point {} outside [{}, {}]",
        qp.zero_point,
        qp.qmin,
        qp.qmax
    );
    assert_eq!(qp.fake(0.0), 0.0, "{ctx}: zero must round-trip exactly");
}

/// `from_min_max` over endpoints drawn with NaN/±inf/subnormal/extreme
/// specials mixed in: the constructor must sanitize every combination into
/// a usable quantizer — never an inf/NaN scale, never a panic.
#[test]
fn fuzz_from_min_max_survives_special_endpoints() {
    let endpoint = f32_with_specials(-1e30, 1e30, 0.4);
    let gen = endpoint.zip(&endpoint).zip(&mixq_proptest::bits());
    Config::new("quant_edges")
        .cases(192)
        .run(&gen, |&((lo, hi), bits)| {
            let qp = QuantParams::from_min_max(lo, hi, bits);
            let ctx = format!("from_min_max({lo}, {hi}, {bits})");
            assert_well_formed(&qp, &ctx);
            // The quantizer must also *work*: codes clamp, dequantization
            // of every representable code is finite.
            for x in [lo, hi, 0.0, 1.0, -1.0] {
                if x.is_finite() {
                    let q = qp.quantize(x);
                    assert!(q >= qp.qmin && q <= qp.qmax, "{ctx}: code {q} escaped");
                }
            }
            assert!(qp.dequantize(qp.qmin).is_finite(), "{ctx}");
            assert!(qp.dequantize(qp.qmax).is_finite(), "{ctx}");
        });
}

/// Degenerate ranges: `min == max` (including exactly 0, subnormals, and
/// large magnitudes) must widen to a positive scale and keep the
/// single-valued input within one step.
#[test]
fn fuzz_from_min_max_degenerate_single_value_ranges() {
    let v = f32_with_specials(-1e6, 1e6, 0.3);
    let gen = v.zip(&mixq_proptest::bits());
    Config::new("quant_degenerate")
        .cases(192)
        .run(&gen, |&(v, bits)| {
            let qp = QuantParams::from_min_max(v, v, bits);
            let ctx = format!("from_min_max({v}, {v}, {bits})");
            assert_well_formed(&qp, &ctx);
            if v.is_finite() {
                // A single-value range still contains 0 by construction, so
                // the representable span is [min(v,0), max(v,0)]: the value
                // itself must survive within one step (or clip to the edge
                // for magnitudes beyond f32 scale resolution).
                let fake = qp.fake(v);
                assert!(fake.is_finite(), "{ctx}: fake({v}) = {fake}");
            }
        });
}

/// The documented special values, pairwise, through every menu bit-width —
/// the exhaustive corner sweep the generators only sample.
#[test]
fn from_min_max_exhaustive_special_pairs() {
    for &lo in F32_SPECIALS.iter() {
        for &hi in F32_SPECIALS.iter() {
            for &bits in &[2u8, 4, 8, 16, 32] {
                let qp = QuantParams::from_min_max(lo, hi, bits);
                assert_well_formed(&qp, &format!("from_min_max({lo}, {hi}, {bits})"));
            }
        }
    }
}
