//! Property-based tests of the quantization primitives.

use proptest::prelude::*;

use mixq_tensor::QuantParams;

proptest! {
    /// Quantize→dequantize error is bounded by half a step inside the
    /// representable range.
    #[test]
    fn round_trip_error_bounded(
        lo in -100f32..0.0,
        span in 0.1f32..200.0,
        bits in 2u8..9,
        t in 0f32..1.0,
    ) {
        let hi = lo + span;
        let qp = QuantParams::from_min_max(lo, hi, bits);
        let (rlo, rhi) = qp.real_range();
        let x = rlo + t * (rhi - rlo);
        let err = (qp.fake(x) - x).abs();
        prop_assert!(err <= qp.scale * 0.5 + 1e-5, "err {} > half-scale {}", err, qp.scale * 0.5);
    }

    /// Fake quantization is idempotent: quantizing a quantized value is a
    /// no-op.
    #[test]
    fn fake_quant_idempotent(x in -50f32..50.0, bits in 2u8..9) {
        let qp = QuantParams::from_min_max(-10.0, 10.0, bits);
        let once = qp.fake(x);
        prop_assert_eq!(qp.fake(once), once);
    }

    /// Quantization is monotone: x ≤ y ⇒ Q(x) ≤ Q(y).
    #[test]
    fn quantize_is_monotone(a in -20f32..20.0, b in -20f32..20.0, bits in 2u8..9) {
        let qp = QuantParams::from_min_max(-5.0, 5.0, bits);
        let (x, y) = if a <= b { (a, b) } else { (b, a) };
        prop_assert!(qp.quantize(x) <= qp.quantize(y));
    }

    /// Codes always land in [qmin, qmax] no matter the input.
    #[test]
    fn codes_in_range(x in proptest::num::f32::NORMAL, bits in 2u8..9) {
        let qp = QuantParams::from_min_max(-1.0, 1.0, bits);
        let q = qp.quantize(x);
        prop_assert!(q >= qp.qmin && q <= qp.qmax);
    }

    /// More bits never increase the round-trip error for in-range values.
    #[test]
    fn wider_is_never_worse(t in 0.02f32..0.98) {
        // Use the symmetric interior to avoid edge-of-range clipping noise.
        let x = -1.0 + 2.0 * t;
        let mut last = f32::INFINITY;
        for bits in [2u8, 4, 8, 16] {
            let qp = QuantParams::from_min_max(-1.0, 1.0, bits);
            let err = (qp.fake(x) - x).abs();
            prop_assert!(err <= last + 1e-6, "error grew from {} to {} at {} bits", last, err, bits);
            last = err;
        }
    }

    /// Symmetric quantizers map 0 to code 0 exactly.
    #[test]
    fn symmetric_zero_code(lo in -10f32..-0.1, hi in 0.1f32..10.0, bits in 2u8..9) {
        let qp = QuantParams::symmetric(lo, hi, bits);
        prop_assert_eq!(qp.quantize(0.0), 0);
        prop_assert_eq!(qp.fake(0.0), 0.0);
    }
}
