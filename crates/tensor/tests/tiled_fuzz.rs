//! Property tests: the register-tiled GEMM kernels are bit-identical to
//! the unblocked kernels over generated shapes — including dimensions that
//! are not multiples of the tile (every row/column remainder path), shapes
//! straddling the tiled-dispatch threshold, seeded exact zeros (the
//! `a == 0` skip must fire identically in both kernels), and IEEE special
//! values that make any reordering or masked-multiply shortcut visible.
//!
//! One `#[test]`: the thread count and serial-fallback threshold are
//! process-wide knobs, and parallel dispatch is part of what is compared.

use mixq_proptest::{f32_in, usize_in, Config, Gen};
use mixq_tensor::{set_num_threads, Matrix, Rng};

#[derive(Clone, Debug)]
struct GemmCase {
    m: usize,
    k: usize,
    n: usize,
    /// Per-mille rate of exact-zero entries seeded into `A`.
    zero_permille: usize,
    seed: u64,
    /// Whether ±0.0 / ±inf / NaN are sprinkled into both operands.
    specials: bool,
}

fn gemm_case() -> Gen<GemmCase> {
    // 1..=68 straddles both the tile edges (4 and the widest TILE_N) and,
    // together with k, the TILE_MIN_MACS dispatch threshold.
    usize_in(1, 68)
        .zip(&usize_in(1, 48))
        .zip(&usize_in(1, 68))
        .zip(&usize_in(0, 400))
        .zip(&f32_in(0.0, 1.0))
        .map(|&((((m, k), n), zero_permille), sp)| GemmCase {
            m,
            k,
            n,
            zero_permille,
            seed: (m * 73 + k * 31 + n) as u64,
            specials: sp > 0.7,
        })
}

/// Deterministic operand with seeded zeros and (optionally) IEEE specials.
fn operand(rows: usize, cols: usize, c: &GemmCase, salt: u64) -> Matrix {
    let mut rng = Rng::seed_from_u64(c.seed ^ salt);
    let specials = [-0.0f32, f32::INFINITY, f32::NEG_INFINITY, f32::NAN];
    Matrix::from_fn(rows, cols, |_, _| {
        let draw = rng.gen_range(1000);
        if draw < c.zero_permille {
            0.0
        } else if c.specials && draw >= 995 {
            specials[rng.gen_range(specials.len())]
        } else {
            rng.normal()
        }
    })
}

/// NaN-aware bitwise comparison: all NaN payloads count as equal (the two
/// kernels may legitimately produce differently-signed NaNs only if they
/// multiplied different operands — which would also differ elsewhere — so
/// collapsing NaNs keeps the check strict without asserting payload bits
/// the IEEE standard leaves open).
fn bits(m: &Matrix) -> Vec<u32> {
    m.data()
        .iter()
        .map(|v| if v.is_nan() { u32::MAX } else { v.to_bits() })
        .collect()
}

#[test]
fn fuzz_tiled_kernels_bit_identical_to_unblocked() {
    Config::new("tiled_fuzz").cases(160).run(&gemm_case(), |c| {
        let ctx = format!(
            "m={} k={} n={} zeros={}‰ specials={}",
            c.m, c.k, c.n, c.zero_permille, c.specials
        );
        let a = operand(c.m, c.k, c, 0xA);
        let b = operand(c.k, c.n, c, 0xB);
        let at = operand(c.k, c.m, c, 0xAA); // for AᵀB: (k×m)ᵀ · (k×n)
        let bt = operand(c.n, c.k, c, 0xBB); // for ABᵀ: (m×k) · (n×k)ᵀ

        for threads in [1usize, 4] {
            set_num_threads(threads);
            assert_eq!(
                bits(&a.matmul(&b)),
                bits(&a.matmul_unblocked(&b)),
                "{ctx} t={threads}: matmul diverged"
            );
            assert_eq!(
                bits(&at.matmul_at_b(&b)),
                bits(&at.matmul_at_b_unblocked(&b)),
                "{ctx} t={threads}: matmul_at_b diverged"
            );
            assert_eq!(
                bits(&a.matmul_a_bt(&bt)),
                bits(&a.matmul_a_bt_unblocked(&bt)),
                "{ctx} t={threads}: matmul_a_bt diverged"
            );
        }
        set_num_threads(1);
    });
}
