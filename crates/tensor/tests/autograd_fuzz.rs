//! Generated-shape gradient fuzzing over EVERY `Op` variant on the tape.
//!
//! The suite enumerates [`ALL_OP_NAMES`] (emitted by the same macro that
//! declares the `Op` enum) and dispatches each name to a property: adding
//! an op to `tape.rs` without adding a case here fails
//! `every_op_variant_has_a_generated_gradcheck_case` with an explicit
//! message. Smooth ops are checked against central finite differences with
//! mixed relative/absolute tolerance; piecewise-constant quantization ops
//! (where FD is identically zero) are checked against their documented
//! straight-through-estimator gradients instead, and non-smooth inputs are
//! conditioned away from kinks (ReLU at 0, max-pool ties, LeakyReLU
//! attention logits at 0) so the FD comparison is well-posed.

use std::sync::Arc;

use mixq_proptest::{graph, usize_in, Config, Gen, GraphConfig, RandomGraph};
use mixq_tensor::{
    assert_close_tol, numeric_grad, Matrix, QuantParams, Rng, SpPair, Tape, Var, ALL_OP_NAMES,
};

const EPS: f32 = 1e-3;
const RTOL: f32 = 2e-2;
const ATOL: f32 = 2e-2;
const CASES: usize = 8;

fn randm(rng: &mut Rng, r: usize, c: usize) -> Matrix {
    Matrix::from_fn(r, c, |_, _| rng.normal())
}

/// Random matrix with every entry nudged at least `margin` away from zero,
/// so FD across the ReLU/LeakyReLU kink stays valid.
fn randm_off_zero(rng: &mut Rng, r: usize, c: usize, margin: f32) -> Matrix {
    Matrix::from_fn(r, c, |_, _| {
        let v = rng.normal();
        if v.abs() < margin {
            margin.copysign(if v == 0.0 { 1.0 } else { v })
        } else {
            v
        }
    })
}

/// `∂loss/∂x` of a scalar tape program, analytic vs central differences.
fn check_grad(x: &Matrix, build: impl Fn(&mut Tape, Var) -> Var, what: &str) {
    let mut tape = Tape::new();
    let xv = tape.leaf(x.clone());
    let loss = build(&mut tape, xv);
    tape.backward(loss);
    let analytic = tape.grad(xv).expect("leaf must receive a gradient").clone();
    let numeric = numeric_grad(
        |xp| {
            let mut t = Tape::new();
            let xv = t.leaf(xp.clone());
            let loss = build(&mut t, xv);
            t.value(loss).item()
        },
        x,
        EPS,
    );
    assert_close_tol(&analytic, &numeric, RTOL, ATOL, what);
}

/// Generated `(rows, cols, seed)` — shapes shrink toward 1×1.
fn shapes(max_r: usize, max_c: usize) -> Gen<(usize, usize, u64)> {
    usize_in(1, max_r)
        .zip(&usize_in(1, max_c))
        .zip(&usize_in(0, 1 << 20))
        .map(|&((r, c), s)| (r, c, s as u64))
}

/// Generated `(graph, feature_cols, seed)` for the sparse/attention ops.
fn graph_case(max_nodes: usize, max_c: usize) -> Gen<(RandomGraph, usize, u64)> {
    let cfg = GraphConfig {
        min_nodes: 1,
        max_nodes,
        max_degree: 3,
        degree_alpha: 1.5,
        isolated_frac: 0.2,
        self_loops: true,
        val_lo: -1.5,
        val_hi: 1.5,
    };
    graph(cfg)
        .zip(&usize_in(1, max_c))
        .zip(&usize_in(0, 1 << 20))
        .map(|&((ref g, c), s)| (g.clone(), c, s as u64))
}

fn cfg(op: &str) -> Config {
    Config::new(&format!("autograd.{op}")).cases(CASES)
}

// ---- per-op properties -------------------------------------------------------

fn op_leaf() {
    cfg("leaf").run(&shapes(5, 4), |&(r, c, seed)| {
        let x = randm(&mut Rng::seed_from_u64(seed), r, c);
        check_grad(&x, |t, xv| t.sum_all(xv), "leaf through sum_all");
    });
}

fn op_matmul() {
    cfg("matmul").run(&shapes(4, 3), |&(r, k, seed)| {
        let mut rng = Rng::seed_from_u64(seed);
        let c = 1 + (seed as usize % 3);
        let a = randm(&mut rng, r, k);
        let b = randm(&mut rng, k, c);
        check_grad(
            &a,
            |t, xv| {
                let bv = t.constant(b.clone());
                let y = t.matmul(xv, bv);
                t.sum_all(y)
            },
            "matmul wrt lhs",
        );
        check_grad(
            &b,
            |t, xv| {
                let av = t.constant(a.clone());
                let y = t.matmul(av, xv);
                t.sum_all(y)
            },
            "matmul wrt rhs",
        );
    });
}

fn op_spmm() {
    cfg("spmm").run(&graph_case(8, 3), |&(ref g, c, seed)| {
        let pair = SpPair::new(g.to_csr());
        let x = randm(&mut Rng::seed_from_u64(seed), g.nodes, c);
        check_grad(
            &x,
            move |t, xv| {
                let y = t.spmm(&pair, xv);
                let y2 = t.mul(y, y); // nonlinear so dX isn't constant
                t.sum_all(y2)
            },
            "spmm wrt x",
        );
    });
}

fn elementwise_binary(op: &'static str, apply: fn(&mut Tape, Var, Var) -> Var) {
    cfg(op).run(&shapes(5, 4), |&(r, c, seed)| {
        let mut rng = Rng::seed_from_u64(seed);
        let a = randm(&mut rng, r, c);
        let b = randm(&mut rng, r, c);
        check_grad(
            &a,
            |t, xv| {
                let bv = t.constant(b.clone());
                let y = apply(t, xv, bv);
                let y2 = t.mul(y, y);
                t.sum_all(y2)
            },
            &format!("{op} wrt lhs"),
        );
        check_grad(
            &b,
            |t, xv| {
                let av = t.constant(a.clone());
                let y = apply(t, av, xv);
                let y2 = t.mul(y, y);
                t.sum_all(y2)
            },
            &format!("{op} wrt rhs"),
        );
    });
}

fn op_add_bias() {
    cfg("add_bias").run(&shapes(5, 4), |&(r, c, seed)| {
        let mut rng = Rng::seed_from_u64(seed);
        let x = randm(&mut rng, r, c);
        let bias = randm(&mut rng, 1, c);
        check_grad(
            &x,
            |t, xv| {
                let bv = t.leaf(bias.clone());
                let y = t.add_bias(xv, bv);
                let y2 = t.mul(y, y);
                t.sum_all(y2)
            },
            "add_bias wrt x",
        );
        check_grad(
            &bias,
            |t, bv| {
                let xv = t.constant(x.clone());
                let y = t.add_bias(xv, bv);
                let y2 = t.mul(y, y);
                t.sum_all(y2)
            },
            "add_bias wrt bias",
        );
    });
}

fn op_scale() {
    cfg("scale").run(&shapes(5, 4), |&(r, c, seed)| {
        let mut rng = Rng::seed_from_u64(seed);
        let x = randm(&mut rng, r, c);
        let k = rng.uniform_in(-2.0, 2.0);
        check_grad(
            &x,
            |t, xv| {
                let y = t.scale(xv, k);
                t.sum_all(y)
            },
            "scale wrt x",
        );
    });
}

fn op_mul_scalar_var() {
    cfg("mul_scalar_var").run(&shapes(5, 4), |&(r, c, seed)| {
        let mut rng = Rng::seed_from_u64(seed);
        let x = randm(&mut rng, r, c);
        let s = Matrix::scalar(rng.uniform_in(0.2, 2.0));
        check_grad(
            &x,
            |t, xv| {
                let sv = t.leaf(s.clone());
                let y = t.mul_scalar_var(xv, sv);
                t.sum_all(y)
            },
            "mul_scalar_var wrt x",
        );
        check_grad(
            &s,
            |t, sv| {
                let xv = t.constant(x.clone());
                let y = t.mul_scalar_var(xv, sv);
                t.sum_all(y)
            },
            "mul_scalar_var wrt s",
        );
    });
}

fn op_affine_cols() {
    cfg("affine_cols").run(&shapes(5, 4), |&(r, c, seed)| {
        let mut rng = Rng::seed_from_u64(seed);
        let x = randm(&mut rng, r, c);
        let scale: Vec<f32> = (0..c).map(|_| rng.uniform_in(-1.5, 1.5)).collect();
        let shift: Vec<f32> = (0..c).map(|_| rng.uniform_in(-1.0, 1.0)).collect();
        check_grad(
            &x,
            |t, xv| {
                let y = t.affine_cols(xv, scale.clone(), shift.clone());
                let y2 = t.mul(y, y);
                t.sum_all(y2)
            },
            "affine_cols wrt x",
        );
    });
}

fn op_exp() {
    cfg("exp").run(&shapes(5, 4), |&(r, c, seed)| {
        let x = randm(&mut Rng::seed_from_u64(seed), r, c);
        check_grad(
            &x,
            |t, xv| {
                let y = t.exp(xv);
                t.sum_all(y)
            },
            "exp wrt x",
        );
    });
}

fn op_relu() {
    cfg("relu").run(&shapes(5, 4), |&(r, c, seed)| {
        let x = randm_off_zero(&mut Rng::seed_from_u64(seed), r, c, 0.05);
        check_grad(
            &x,
            |t, xv| {
                let y = t.relu(xv);
                t.sum_all(y)
            },
            "relu wrt x",
        );
    });
}

fn op_leaky_relu() {
    cfg("leaky_relu").run(&shapes(5, 4), |&(r, c, seed)| {
        let mut rng = Rng::seed_from_u64(seed);
        let x = randm_off_zero(&mut rng, r, c, 0.05);
        let slope = rng.uniform_in(0.01, 0.5);
        check_grad(
            &x,
            |t, xv| {
                let y = t.leaky_relu(xv, slope);
                t.sum_all(y)
            },
            "leaky_relu wrt x",
        );
    });
}

fn op_dropout() {
    cfg("dropout").run(&shapes(5, 4), |&(r, c, seed)| {
        let mut rng = Rng::seed_from_u64(seed);
        let x = randm(&mut rng, r, c);
        // Explicit mask (already including 1/keep scaling) so the FD
        // forward re-runs see the identical mask.
        let keep = 0.7f32;
        let mask: Vec<f32> = (0..r * c)
            .map(|_| {
                if rng.bernoulli(keep as f64) {
                    1.0 / keep
                } else {
                    0.0
                }
            })
            .collect();
        check_grad(
            &x,
            |t, xv| {
                let y = t.dropout_with_mask(xv, mask.clone());
                let y2 = t.mul(y, y);
                t.sum_all(y2)
            },
            "dropout wrt x",
        );
    });
}

fn op_log_softmax() {
    cfg("log_softmax").run(&shapes(4, 4), |&(r, c, seed)| {
        let x = randm(&mut Rng::seed_from_u64(seed), r, c);
        check_grad(
            &x,
            |t, xv| {
                let y = t.log_softmax(xv);
                let y2 = t.mul(y, y);
                t.sum_all(y2)
            },
            "log_softmax wrt x",
        );
    });
}

fn op_nll() {
    cfg("nll").run(&shapes(5, 4), |&(r, c, seed)| {
        let mut rng = Rng::seed_from_u64(seed);
        let x = randm(&mut rng, r, c);
        let k = 1 + rng.gen_range(r);
        let rows = rng.sample_indices(r, k);
        let targets: Vec<usize> = (0..k).map(|_| rng.gen_range(c)).collect();
        check_grad(
            &x,
            |t, xv| {
                let lp = t.log_softmax(xv);
                t.nll_masked(lp, &rows, &targets)
            },
            "nll wrt logits",
        );
    });
}

fn op_bce() {
    cfg("bce").run(&shapes(5, 4), |&(r, c, seed)| {
        let mut rng = Rng::seed_from_u64(seed);
        let logits = randm(&mut rng, r, c);
        let targets = Matrix::from_fn(r, c, |_, _| if rng.bernoulli(0.5) { 1.0 } else { 0.0 });
        let k = 1 + rng.gen_range(r);
        let rows = rng.sample_indices(r, k);
        check_grad(
            &logits,
            |t, xv| t.bce_with_logits_masked(xv, &targets, &rows),
            "bce wrt logits",
        );
    });
}

fn op_batch_norm() {
    cfg("batch_norm").run(&shapes(4, 3), |&(extra_r, c, seed)| {
        let r = extra_r + 3; // ≥ 4 rows so batch statistics are well-posed
        let mut rng = Rng::seed_from_u64(seed);
        // Spread rows so no column's variance is near zero (FD through
        // 1/√(σ²+eps) explodes otherwise).
        let x = Matrix::from_fn(r, c, |i, _| rng.normal() + 0.7 * i as f32);
        let gamma = Matrix::from_fn(1, c, |_, _| rng.uniform_in(0.5, 1.5));
        let beta = Matrix::from_fn(1, c, |_, _| rng.uniform_in(-0.5, 0.5));
        let build = |t: &mut Tape, xv: Var, gv: Var, bv: Var| {
            let out = t.batch_norm(xv, gv, bv, 1e-5);
            let y2 = t.mul(out.y, out.y);
            t.sum_all(y2)
        };
        check_grad(
            &x,
            |t, xv| {
                let gv = t.constant(gamma.clone());
                let bv = t.constant(beta.clone());
                build(t, xv, gv, bv)
            },
            "batch_norm wrt x",
        );
        check_grad(
            &gamma,
            |t, gv| {
                let xv = t.constant(x.clone());
                let bv = t.constant(beta.clone());
                build(t, xv, gv, bv)
            },
            "batch_norm wrt gamma",
        );
        check_grad(
            &beta,
            |t, bv| {
                let xv = t.constant(x.clone());
                let gv = t.constant(gamma.clone());
                build(t, xv, gv, bv)
            },
            "batch_norm wrt beta",
        );
    });
}

fn op_global_max_pool() {
    cfg("global_max_pool").run(&shapes(6, 3), |&(r, c, seed)| {
        let mut rng = Rng::seed_from_u64(seed);
        let n_graphs = 1 + rng.gen_range(r.min(3));
        // Non-empty contiguous segments.
        let mut offsets = vec![0usize];
        let base = r / n_graphs;
        for g in 1..n_graphs {
            offsets.push(g * base);
        }
        offsets.push(r);
        let mut x = randm(&mut rng, r, c);
        // Break max ties: FD needs the argmax to be stable under ±eps.
        for w in offsets.windows(2) {
            for j in 0..c {
                let (mut best, mut second) = (f32::NEG_INFINITY, f32::NEG_INFINITY);
                let mut best_r = w[0];
                for row in w[0]..w[1] {
                    let v = x.get(row, j);
                    if v > best {
                        second = best;
                        best = v;
                        best_r = row;
                    } else if v > second {
                        second = v;
                    }
                }
                if best - second < 0.05 {
                    x.set(best_r, j, best + 0.1);
                }
            }
        }
        check_grad(
            &x,
            |t, xv| {
                let y = t.global_max_pool(xv, &offsets);
                let y2 = t.mul(y, y);
                t.sum_all(y2)
            },
            "global_max_pool wrt x",
        );
    });
}

fn op_gat_aggregate() {
    cfg("gat_aggregate").run(&graph_case(6, 3), |&(ref g, c, seed)| {
        let n = g.nodes;
        let adj = Arc::new(g.to_csr());
        let mut rng = Rng::seed_from_u64(seed);
        let h = randm(&mut rng, n, c);
        // Attention terms on a lattice (k + 0.25)·0.3: any sum src_i+dst_j
        // is ≥ 0.15 from the LeakyReLU kink at 0, keeping FD well-posed.
        let lattice = |rng: &mut Rng| (rng.gen_range(7) as f32 - 3.0 + 0.25) * 0.3;
        let src = Matrix::from_fn(n, 1, |_, _| lattice(&mut rng));
        let dst = Matrix::from_fn(n, 1, |_, _| lattice(&mut rng));
        let slope = 0.2f32;
        let build = |t: &mut Tape, hv: Var, sv: Var, dv: Var| {
            let adj = Arc::clone(&adj);
            let y = t.gat_aggregate(hv, sv, dv, &adj, slope);
            let y2 = t.mul(y, y);
            t.sum_all(y2)
        };
        check_grad(
            &h,
            |t, hv| {
                let sv = t.constant(src.clone());
                let dv = t.constant(dst.clone());
                build(t, hv, sv, dv)
            },
            "gat_aggregate wrt h",
        );
        check_grad(
            &src,
            |t, sv| {
                let hv = t.constant(h.clone());
                let dv = t.constant(dst.clone());
                build(t, hv, sv, dv)
            },
            "gat_aggregate wrt src",
        );
        check_grad(
            &dst,
            |t, dv| {
                let hv = t.constant(h.clone());
                let sv = t.constant(src.clone());
                build(t, hv, sv, dv)
            },
            "gat_aggregate wrt dst",
        );
    });
}

fn op_dot_attn_aggregate() {
    cfg("dot_attn_aggregate").run(&graph_case(5, 3), |&(ref g, c, seed)| {
        let n = g.nodes;
        let adj = Arc::new(g.to_csr());
        let mut rng = Rng::seed_from_u64(seed);
        let q = randm(&mut rng, n, c);
        let k = randm(&mut rng, n, c);
        let v = randm(&mut rng, n, c);
        let build = |t: &mut Tape, qv: Var, kv: Var, vv: Var| {
            let adj = Arc::clone(&adj);
            let y = t.dot_attn_aggregate(qv, kv, vv, &adj);
            let y2 = t.mul(y, y);
            t.sum_all(y2)
        };
        for (leaf, what) in [(&q, "q"), (&k, "k"), (&v, "v")] {
            check_grad(
                leaf,
                |t, lv| {
                    let (qv, kv, vv) = match what {
                        "q" => (lv, t.constant(k.clone()), t.constant(v.clone())),
                        "k" => (t.constant(q.clone()), lv, t.constant(v.clone())),
                        _ => (t.constant(q.clone()), t.constant(k.clone()), lv),
                    };
                    build(t, qv, kv, vv)
                },
                &format!("dot_attn_aggregate wrt {what}"),
            );
        }
    });
}

fn op_sum_all() {
    cfg("sum_all").run(&shapes(5, 4), |&(r, c, seed)| {
        let x = randm(&mut Rng::seed_from_u64(seed), r, c);
        check_grad(
            &x,
            |t, xv| {
                let y = t.mul(xv, xv);
                t.sum_all(y)
            },
            "sum_all",
        );
    });
}

fn op_mean_all() {
    cfg("mean_all").run(&shapes(5, 4), |&(r, c, seed)| {
        let x = randm(&mut Rng::seed_from_u64(seed), r, c);
        check_grad(
            &x,
            |t, xv| {
                let y = t.mul(xv, xv);
                t.mean_all(y)
            },
            "mean_all",
        );
    });
}

/// STE check: FD is useless on the piecewise-constant fake-quant forward,
/// so assert the documented gradient directly — identity inside the
/// representable range, zero where the quantizer clips.
fn op_fake_quant() {
    cfg("fake_quant").run(&shapes(5, 4), |&(r, c, seed)| {
        let mut rng = Rng::seed_from_u64(seed);
        let x = Matrix::from_fn(r, c, |_, _| rng.uniform_in(-3.0, 3.0));
        let qp = QuantParams::from_min_max(-1.0, 1.0, 4);
        let mut t = Tape::new();
        let xv = t.leaf(x.clone());
        let y = t.fake_quant(xv, qp);
        let loss = t.sum_all(y);
        t.backward(loss);
        let g = t.grad(xv).unwrap();
        for i in 0..x.numel() {
            let expect = if qp.in_range(x.data()[i]) { 1.0 } else { 0.0 };
            assert_eq!(
                g.data()[i],
                expect,
                "clipped STE mask wrong at {i}: x={}",
                x.data()[i]
            );
        }
    });
}

/// LSQ: STE to x (mask of |x/s| in range); the scale receives the LSQ
/// estimator gradient — assert both against the documented formulas.
fn op_fake_quant_lsq() {
    cfg("fake_quant_lsq").run(&shapes(5, 4), |&(r, c, seed)| {
        let mut rng = Rng::seed_from_u64(seed);
        let x = Matrix::from_fn(r, c, |_, _| rng.uniform_in(-2.0, 2.0));
        let s = 0.13f32;
        let (qmin, qmax) = (-8, 7);
        let mut t = Tape::new();
        let xv = t.leaf(x.clone());
        let sv = t.leaf(Matrix::scalar(s));
        let y = t.fake_quant_lsq(xv, sv, qmin, qmax);
        let loss = t.sum_all(y);
        t.backward(loss);
        let gx = t.grad(xv).unwrap();
        let gs = t.grad(sv).unwrap().item();
        let grad_scale = 1.0 / ((x.numel() as f32 * qmax as f32).sqrt());
        let mut want_gs = 0f32;
        for i in 0..x.numel() {
            let v = x.data()[i] / s;
            let in_range = v >= qmin as f32 && v <= qmax as f32;
            assert_eq!(
                gx.data()[i],
                if in_range { 1.0 } else { 0.0 },
                "LSQ STE mask wrong at {i}"
            );
            want_gs += if v <= qmin as f32 {
                qmin as f32
            } else if v >= qmax as f32 {
                qmax as f32
            } else {
                v.round_ties_even() - v
            };
        }
        want_gs *= grad_scale;
        assert!(
            (gs - want_gs).abs() <= 1e-4 + 1e-4 * want_gs.abs(),
            "LSQ scale gradient: got {gs}, want {want_gs}"
        );
    });
}

fn op_fake_quant_rows() {
    cfg("fake_quant_rows").run(&shapes(5, 4), |&(r, c, seed)| {
        let mut rng = Rng::seed_from_u64(seed);
        let x = Matrix::from_fn(r, c, |_, _| rng.uniform_in(-3.0, 3.0));
        let qps: Vec<QuantParams> = (0..r)
            .map(|i| QuantParams::from_min_max(-1.0 - i as f32 * 0.3, 1.0 + i as f32 * 0.3, 4))
            .collect();
        let mut t = Tape::new();
        let xv = t.leaf(x.clone());
        let y = t.fake_quant_rows(xv, &qps);
        let loss = t.sum_all(y);
        t.backward(loss);
        let g = t.grad(xv).unwrap();
        for (row, qp) in qps.iter().enumerate() {
            for col in 0..c {
                let expect = if qp.in_range(x.get(row, col)) {
                    1.0
                } else {
                    0.0
                };
                assert_eq!(
                    g.get(row, col),
                    expect,
                    "per-row STE mask wrong at ({row},{col})"
                );
            }
        }
    });
}

/// Relaxed quantizer (Eq. 6): the forward is piecewise-constant in x
/// (checked via the probability-weighted STE mask) but *smooth* in the
/// mixing logits — so α is checked against finite differences.
fn op_relaxed_fake_quant() {
    cfg("relaxed_fake_quant").run(&shapes(4, 3), |&(r, c, seed)| {
        let mut rng = Rng::seed_from_u64(seed);
        let x = Matrix::from_fn(r, c, |_, _| rng.uniform_in(-2.0, 2.0));
        let qps: Vec<QuantParams> = [2u8, 4, 8]
            .iter()
            .map(|&b| QuantParams::from_min_max(-1.5, 1.5, b))
            .collect();
        let alphas = randm(&mut rng, 1, qps.len());

        // x side: weighted STE mask.
        let mut t = Tape::new();
        let xv = t.leaf(x.clone());
        let av = t.constant(alphas.clone());
        let y = t.relaxed_fake_quant(xv, av, &qps);
        let loss = t.sum_all(y);
        t.backward(loss);
        let g = t.grad(xv).unwrap();
        let w = mixq_tensor::softmax_slice(alphas.data());
        for i in 0..x.numel() {
            let expect: f32 = w
                .iter()
                .zip(qps.iter())
                .map(|(&wi, qp)| if qp.in_range(x.data()[i]) { wi } else { 0.0 })
                .sum();
            assert!(
                (g.data()[i] - expect).abs() <= 1e-5,
                "weighted STE mask wrong at {i}: got {}, want {expect}",
                g.data()[i]
            );
        }

        // α side: smooth — finite differences apply.
        check_grad(
            &alphas,
            |t, av| {
                let xv = t.constant(x.clone());
                let y = t.relaxed_fake_quant(xv, av, &qps);
                t.sum_all(y)
            },
            "relaxed_fake_quant wrt alphas",
        );
    });
}

fn op_bit_penalty() {
    cfg("bit_penalty").run(&shapes(1, 4), |&(_, k, seed)| {
        let mut rng = Rng::seed_from_u64(seed);
        let alphas = randm(&mut rng, 1, k);
        let bits: Vec<f32> = (0..k).map(|i| [2.0, 4.0, 8.0, 16.0][i % 4]).collect();
        let numel = 64 + rng.gen_range(1024);
        check_grad(
            &alphas,
            |t, av| t.bit_penalty(av, &bits, numel),
            "bit_penalty wrt alphas",
        );
    });
}

// ---- the enumerating dispatcher ---------------------------------------------

fn run_op_case(name: &str) {
    match name {
        "leaf" => op_leaf(),
        "matmul" => op_matmul(),
        "spmm" => op_spmm(),
        "add" => elementwise_binary("add", |t, a, b| t.add(a, b)),
        "sub" => elementwise_binary("sub", |t, a, b| t.sub(a, b)),
        "mul" => elementwise_binary("mul", |t, a, b| t.mul(a, b)),
        "add_bias" => op_add_bias(),
        "scale" => op_scale(),
        "mul_scalar_var" => op_mul_scalar_var(),
        "affine_cols" => op_affine_cols(),
        "exp" => op_exp(),
        "relu" => op_relu(),
        "leaky_relu" => op_leaky_relu(),
        "dropout" => op_dropout(),
        "log_softmax" => op_log_softmax(),
        "nll" => op_nll(),
        "bce" => op_bce(),
        "batch_norm" => op_batch_norm(),
        "global_max_pool" => op_global_max_pool(),
        "gat_aggregate" => op_gat_aggregate(),
        "dot_attn_aggregate" => op_dot_attn_aggregate(),
        "sum_all" => op_sum_all(),
        "mean_all" => op_mean_all(),
        "fake_quant" => op_fake_quant(),
        "fake_quant_lsq" => op_fake_quant_lsq(),
        "fake_quant_rows" => op_fake_quant_rows(),
        "relaxed_fake_quant" => op_relaxed_fake_quant(),
        "bit_penalty" => op_bit_penalty(),
        other => panic!(
            "Op variant '{other}' has no generated gradcheck case — \
             add one to autograd_fuzz.rs::run_op_case"
        ),
    }
}

/// THE coverage gate: every variant the `define_ops!` macro declares must
/// dispatch to a fuzz case above. A new `Op` without a case panics here.
#[test]
fn every_op_variant_has_a_generated_gradcheck_case() {
    assert!(!ALL_OP_NAMES.is_empty());
    let mut seen = std::collections::BTreeSet::new();
    for &name in ALL_OP_NAMES {
        assert!(seen.insert(name), "duplicate op name '{name}'");
        run_op_case(name);
    }
}
