//! Minimal JSON support for telemetry reports: escape/format helpers used
//! by the writer, and a small recursive-descent parser so tooling (CI smoke
//! checks, future regression dashboards) can read reports back without any
//! external dependency.
//!
//! The parser accepts standard JSON (objects, arrays, strings with escapes,
//! numbers, booleans, null). Numbers are held as `f64`, which is exact for
//! every counter below 2^53 — far above anything a run records.

use std::fmt;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<Json>),
    /// Key/value pairs in source order (duplicate keys keep the first).
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Looks up a key in an object; `None` for other variants.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(a) => Some(a),
            _ => None,
        }
    }

    pub fn as_object(&self) -> Option<&[(String, Json)]> {
        match self {
            Json::Obj(o) => Some(o),
            _ => None,
        }
    }
}

/// A parse failure with the byte offset it occurred at.
#[derive(Debug, Clone, PartialEq)]
pub struct JsonError {
    pub offset: usize,
    pub message: String,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for JsonError {}

/// Quotes and escapes a string as a JSON string literal.
pub fn quote(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Formats an `f64` as a JSON number. Non-finite values (which JSON cannot
/// represent) serialize as `null`-adjacent sentinels: `0` keeps reports
/// parseable rather than poisoning the whole file.
pub fn num(v: f64) -> String {
    if !v.is_finite() {
        return "0".to_string();
    }
    if v == v.trunc() && v.abs() < 1e15 {
        format!("{}", v as i64)
    } else {
        // {:?} prints the shortest decimal that round-trips the f64.
        format!("{v:?}")
    }
}

/// Parses a complete JSON document (rejects trailing garbage).
pub fn parse(text: &str) -> Result<Json, JsonError> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after document"));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, msg: impl Into<String>) -> JsonError {
        JsonError {
            offset: self.pos,
            message: msg.into(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(format!("expected '{}'", b as char)))
        }
    }

    fn value(&mut self) -> Result<Json, JsonError> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            Some(c) => Err(self.err(format!("unexpected character '{}'", c as char))),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn literal(&mut self, word: &str, v: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(self.err(format!("expected '{word}'")))
        }
    }

    fn object(&mut self) -> Result<Json, JsonError> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value()?;
            pairs.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(pairs));
                }
                _ => return Err(self.err("expected ',' or '}' in object")),
            }
        }
    }

    fn array(&mut self) -> Result<Json, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']' in array")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b't') => out.push('\t'),
                        Some(b'r') => out.push('\r'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| self.err("truncated \\u escape"))?;
                            let hex = std::str::from_utf8(hex)
                                .map_err(|_| self.err("invalid \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("invalid \\u escape"))?;
                            // Surrogates (only reachable for non-BMP chars,
                            // which reports never emit) decode as U+FFFD.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        _ => return Err(self.err("invalid escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one full UTF-8 scalar (input is a &str, so
                    // boundaries are valid).
                    let rest = &self.bytes[self.pos..];
                    let s = unsafe { std::str::from_utf8_unchecked(rest) };
                    let c = s.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| self.err(format!("invalid number '{text}'")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars_arrays_objects() {
        assert_eq!(parse("null").unwrap(), Json::Null);
        assert_eq!(parse(" true ").unwrap(), Json::Bool(true));
        assert_eq!(parse("-12.5e2").unwrap(), Json::Num(-1250.0));
        assert_eq!(parse("\"a\\nb\"").unwrap(), Json::Str("a\nb".into()));
        assert_eq!(parse("[1, 2, 3]").unwrap().as_array().unwrap().len(), 3);
        let v = parse("{\"a\": {\"b\": [1, {\"c\": false}]}}").unwrap();
        let inner = v.get("a").and_then(|a| a.get("b")).unwrap();
        assert_eq!(
            inner.as_array().unwrap()[1].get("c"),
            Some(&Json::Bool(false))
        );
    }

    #[test]
    fn quote_round_trips_escapes() {
        for s in [
            "plain",
            "with \"quotes\"",
            "tab\there",
            "new\nline",
            "back\\slash",
        ] {
            let parsed = parse(&quote(s)).unwrap();
            assert_eq!(parsed.as_str(), Some(s), "{s:?}");
        }
        assert_eq!(parse("\"\\u0041\"").unwrap().as_str(), Some("A"));
    }

    #[test]
    fn num_formats_round_trip() {
        for v in [0.0, 1.0, -3.0, 0.125, -2.5e-7, 1e14] {
            let back = parse(&num(v)).unwrap().as_f64().unwrap();
            assert_eq!(back, v, "{v}");
        }
        assert_eq!(num(f64::NAN), "0");
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in ["", "{", "[1,]", "{\"a\" 1}", "tru", "1 2", "\"open"] {
            assert!(parse(bad).is_err(), "{bad:?} should fail");
        }
    }
}
