//! Zero-dependency observability for the MixQ-GNN workspace.
//!
//! A process-wide metrics registry (counters, gauges, fixed-bucket
//! histograms, per-epoch series) plus RAII span timers with parent/child
//! nesting. Instrumentation is compiled in everywhere but **gated by the
//! `MIXQ_TELEMETRY` environment variable** (or [`set_enabled`]): when the
//! gate is off every recording call is a single relaxed atomic load and an
//! early return, so hot kernels pay effectively nothing.
//!
//! * Counters — monotonically increasing `u64` (call counts, element/nnz
//!   throughput, accumulated busy nanoseconds).
//! * Gauges — last-written `f64` (e.g. the parallel runtime's utilization).
//! * Histograms — power-of-two buckets over `u64` values (latencies in ns).
//! * Series — ordered `f64` trajectories (per-epoch loss, α entropy, …).
//! * Spans — RAII timers; nested spans aggregate under a slash-joined
//!   `parent/child` path per thread (count / total / min / max ns).
//!
//! Reports export as JSON (parse them back with [`json::parse`]) or as a
//! human-readable table; [`write_report`] writes
//! `results/telemetry/<tag>.json` (directory override:
//! `MIXQ_TELEMETRY_DIR`).
//!
//! This crate sits below `mixq-parallel` in the workspace dependency graph
//! so every other crate — including the parallel runtime itself — can
//! record into the same registry.

pub mod json;

use std::cell::RefCell;
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::Instant;

// ---- the enabled gate --------------------------------------------------------

const GATE_UNSET: u8 = 0;
const GATE_OFF: u8 = 1;
const GATE_ON: u8 = 2;

static GATE: AtomicU8 = AtomicU8::new(GATE_UNSET);

/// Whether telemetry recording is on. First call resolves `MIXQ_TELEMETRY`
/// (`0`, `false`, `off`, or empty disable; anything else enables); later
/// calls are one relaxed atomic load.
#[inline]
pub fn enabled() -> bool {
    match GATE.load(Ordering::Relaxed) {
        GATE_ON => true,
        GATE_OFF => false,
        _ => resolve_gate(),
    }
}

#[cold]
fn resolve_gate() -> bool {
    let on = match std::env::var("MIXQ_TELEMETRY") {
        Ok(v) => {
            let v = v.trim();
            !(v.is_empty()
                || v == "0"
                || v.eq_ignore_ascii_case("off")
                || v.eq_ignore_ascii_case("false"))
        }
        Err(_) => false,
    };
    GATE.store(if on { GATE_ON } else { GATE_OFF }, Ordering::Relaxed);
    on
}

/// Overrides the `MIXQ_TELEMETRY` gate at runtime (tests, bench binaries).
pub fn set_enabled(on: bool) {
    GATE.store(if on { GATE_ON } else { GATE_OFF }, Ordering::Relaxed);
}

// ---- histograms --------------------------------------------------------------

/// Number of power-of-two buckets: bucket 0 holds the value 0, bucket `i`
/// holds values in `[2^(i−1), 2^i)`. 44 buckets cover ~2.4 hours in ns.
pub const HIST_BUCKETS: usize = 44;

/// A fixed-bucket (power-of-two) histogram over `u64` values.
#[derive(Debug, Clone)]
pub struct Histogram {
    pub count: u64,
    pub sum: u64,
    pub min: u64,
    pub max: u64,
    pub buckets: [u64; HIST_BUCKETS],
}

impl Default for Histogram {
    fn default() -> Self {
        Self {
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
            buckets: [0; HIST_BUCKETS],
        }
    }
}

impl Histogram {
    /// Bucket index of a value: 0 for 0, otherwise `floor(log2 v) + 1`,
    /// saturating at the last bucket.
    pub fn bucket_of(v: u64) -> usize {
        if v == 0 {
            0
        } else {
            ((64 - v.leading_zeros()) as usize).min(HIST_BUCKETS - 1)
        }
    }

    pub fn record(&mut self, v: u64) {
        self.count += 1;
        self.sum = self.sum.saturating_add(v);
        self.min = self.min.min(v);
        self.max = self.max.max(v);
        self.buckets[Self::bucket_of(v)] += 1;
    }

    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }
}

/// Aggregated timing of one span path.
#[derive(Debug, Clone)]
pub struct SpanStat {
    pub count: u64,
    pub total_ns: u64,
    pub min_ns: u64,
    pub max_ns: u64,
}

impl Default for SpanStat {
    fn default() -> Self {
        Self {
            count: 0,
            total_ns: 0,
            min_ns: u64::MAX,
            max_ns: 0,
        }
    }
}

// ---- the registry ------------------------------------------------------------

#[derive(Debug, Default)]
struct Registry {
    counters: BTreeMap<String, u64>,
    gauges: BTreeMap<String, f64>,
    hists: BTreeMap<String, Histogram>,
    series: BTreeMap<String, Vec<f64>>,
    spans: BTreeMap<String, SpanStat>,
}

fn registry() -> &'static Mutex<Registry> {
    static REGISTRY: OnceLock<Mutex<Registry>> = OnceLock::new();
    REGISTRY.get_or_init(|| Mutex::new(Registry::default()))
}

fn with_registry(f: impl FnOnce(&mut Registry)) {
    // A poisoned registry only loses observability; never panic the caller.
    if let Ok(mut r) = registry().lock() {
        f(&mut r);
    }
}

/// Adds `delta` to a counter (no-op while disabled).
pub fn counter_add(name: &str, delta: u64) {
    if !enabled() {
        return;
    }
    with_registry(|r| {
        let c = r.counters.entry(name.to_string()).or_insert(0);
        *c = c.saturating_add(delta);
    });
}

/// Sets a gauge to its latest value (no-op while disabled).
pub fn gauge_set(name: &str, value: f64) {
    if !enabled() {
        return;
    }
    with_registry(|r| {
        r.gauges.insert(name.to_string(), value);
    });
}

/// Records a value into a power-of-two-bucket histogram (no-op while
/// disabled).
pub fn hist_record(name: &str, value: u64) {
    if !enabled() {
        return;
    }
    with_registry(|r| r.hists.entry(name.to_string()).or_default().record(value));
}

/// Appends the next point of a named series — per-epoch trajectories such
/// as training loss or α entropy (no-op while disabled).
pub fn series_push(name: &str, value: f64) {
    if !enabled() {
        return;
    }
    with_registry(|r| r.series.entry(name.to_string()).or_default().push(value));
}

/// Clears every metric and span (the gate state is kept).
pub fn reset() {
    with_registry(|r| *r = Registry::default());
}

// ---- kernel timing helpers ---------------------------------------------------

/// Starts a kernel timer; `None` while telemetry is disabled, so the hot
/// path's cost is one atomic load.
#[inline]
pub fn kernel_start() -> Option<Instant> {
    if enabled() {
        Some(Instant::now())
    } else {
        None
    }
}

/// Finishes a kernel timer started by [`kernel_start`]: bumps
/// `<name>.calls` and `<name>.work` counters and records the elapsed
/// nanoseconds into the `<name>.ns` histogram. `work` is the kernel's unit
/// of throughput (MACs for matmul, `nnz × cols` for SpMM, …).
pub fn kernel_finish(name: &str, start: Option<Instant>, work: u64) {
    let Some(t0) = start else { return };
    let ns = t0.elapsed().as_nanos() as u64;
    if !enabled() {
        return;
    }
    with_registry(|r| {
        let calls = r.counters.entry(format!("{name}.calls")).or_insert(0);
        *calls = calls.saturating_add(1);
        let w = r.counters.entry(format!("{name}.work")).or_insert(0);
        *w = w.saturating_add(work);
        r.hists.entry(format!("{name}.ns")).or_default().record(ns);
    });
}

// ---- RAII spans --------------------------------------------------------------

thread_local! {
    static SPAN_STACK: RefCell<Vec<&'static str>> = const { RefCell::new(Vec::new()) };
}

/// An RAII span timer. Created by [`span`]; records its duration under the
/// slash-joined path of the enclosing spans on this thread when dropped.
#[must_use = "a span records on drop; binding it to _ ends it immediately"]
pub struct Span {
    // None when telemetry is disabled: drop is then a no-op.
    live: Option<(String, Instant)>,
}

/// Opens a span named `name`. Nested spans aggregate under
/// `"outer/inner"`-style paths; the aggregate keeps count, total, min and
/// max nanoseconds per path.
pub fn span(name: &'static str) -> Span {
    if !enabled() {
        return Span { live: None };
    }
    let path = SPAN_STACK.with(|s| {
        let mut s = s.borrow_mut();
        s.push(name);
        s.join("/")
    });
    Span {
        live: Some((path, Instant::now())),
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        let Some((path, t0)) = self.live.take() else {
            return;
        };
        let ns = t0.elapsed().as_nanos() as u64;
        SPAN_STACK.with(|s| {
            s.borrow_mut().pop();
        });
        with_registry(|r| {
            let st = r.spans.entry(path).or_default();
            st.count += 1;
            st.total_ns = st.total_ns.saturating_add(ns);
            st.min_ns = st.min_ns.min(ns);
            st.max_ns = st.max_ns.max(ns);
        });
    }
}

// ---- reports -----------------------------------------------------------------

/// An owned, consistent snapshot of the registry, ready for export.
#[derive(Debug, Clone, Default)]
pub struct Report {
    pub counters: Vec<(String, u64)>,
    pub gauges: Vec<(String, f64)>,
    pub hists: Vec<(String, Histogram)>,
    pub series: Vec<(String, Vec<f64>)>,
    pub spans: Vec<(String, SpanStat)>,
}

/// Takes a snapshot of everything recorded so far (sorted by name).
pub fn snapshot() -> Report {
    let mut rep = Report::default();
    with_registry(|r| {
        rep.counters = r.counters.iter().map(|(k, v)| (k.clone(), *v)).collect();
        rep.gauges = r.gauges.iter().map(|(k, v)| (k.clone(), *v)).collect();
        rep.hists = r
            .hists
            .iter()
            .map(|(k, v)| (k.clone(), v.clone()))
            .collect();
        rep.series = r
            .series
            .iter()
            .map(|(k, v)| (k.clone(), v.clone()))
            .collect();
        rep.spans = r
            .spans
            .iter()
            .map(|(k, v)| (k.clone(), v.clone()))
            .collect();
    });
    rep
}

impl Report {
    /// Serializes the report as a JSON object (round-trips through
    /// [`json::parse`]).
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n");
        let _ = write!(out, "  \"counters\": {{");
        for (i, (k, v)) in self.counters.iter().enumerate() {
            let sep = if i == 0 { "" } else { "," };
            let _ = write!(out, "{sep}\n    {}: {v}", json::quote(k));
        }
        out.push_str(if self.counters.is_empty() {
            "},\n"
        } else {
            "\n  },\n"
        });
        let _ = write!(out, "  \"gauges\": {{");
        for (i, (k, v)) in self.gauges.iter().enumerate() {
            let sep = if i == 0 { "" } else { "," };
            let _ = write!(out, "{sep}\n    {}: {}", json::quote(k), json::num(*v));
        }
        out.push_str(if self.gauges.is_empty() {
            "},\n"
        } else {
            "\n  },\n"
        });
        let _ = write!(out, "  \"histograms\": {{");
        for (i, (k, h)) in self.hists.iter().enumerate() {
            let sep = if i == 0 { "" } else { "," };
            let _ = write!(
                out,
                "{sep}\n    {}: {{\"count\": {}, \"sum\": {}, \"min\": {}, \"max\": {}, \
                 \"mean\": {}, \"buckets\": [{}]}}",
                json::quote(k),
                h.count,
                h.sum,
                if h.count == 0 { 0 } else { h.min },
                h.max,
                json::num(h.mean()),
                h.buckets
                    .iter()
                    .map(|b| b.to_string())
                    .collect::<Vec<_>>()
                    .join(", ")
            );
        }
        out.push_str(if self.hists.is_empty() {
            "},\n"
        } else {
            "\n  },\n"
        });
        let _ = write!(out, "  \"series\": {{");
        for (i, (k, vs)) in self.series.iter().enumerate() {
            let sep = if i == 0 { "" } else { "," };
            let _ = write!(
                out,
                "{sep}\n    {}: [{}]",
                json::quote(k),
                vs.iter()
                    .map(|v| json::num(*v))
                    .collect::<Vec<_>>()
                    .join(", ")
            );
        }
        out.push_str(if self.series.is_empty() {
            "},\n"
        } else {
            "\n  },\n"
        });
        let _ = write!(out, "  \"spans\": {{");
        for (i, (k, s)) in self.spans.iter().enumerate() {
            let sep = if i == 0 { "" } else { "," };
            let _ = write!(
                out,
                "{sep}\n    {}: {{\"count\": {}, \"total_ns\": {}, \"min_ns\": {}, \
                 \"max_ns\": {}}}",
                json::quote(k),
                s.count,
                s.total_ns,
                if s.count == 0 { 0 } else { s.min_ns },
                s.max_ns
            );
        }
        out.push_str(if self.spans.is_empty() {
            "}\n"
        } else {
            "\n  }\n"
        });
        out.push('}');
        out
    }

    /// Renders the report as an aligned human-readable table.
    pub fn render_table(&self) -> String {
        let mut out = String::new();
        let section = |out: &mut String, title: &str| {
            let _ = writeln!(out, "== {title} ==");
        };
        if !self.counters.is_empty() {
            section(&mut out, "counters");
            let w = self
                .counters
                .iter()
                .map(|(k, _)| k.len())
                .max()
                .unwrap_or(0);
            for (k, v) in &self.counters {
                let _ = writeln!(out, "  {k:<w$}  {v}");
            }
        }
        if !self.gauges.is_empty() {
            section(&mut out, "gauges");
            let w = self.gauges.iter().map(|(k, _)| k.len()).max().unwrap_or(0);
            for (k, v) in &self.gauges {
                let _ = writeln!(out, "  {k:<w$}  {v:.6}");
            }
        }
        if !self.hists.is_empty() {
            section(&mut out, "histograms");
            let w = self.hists.iter().map(|(k, _)| k.len()).max().unwrap_or(0);
            for (k, h) in &self.hists {
                let _ = writeln!(
                    out,
                    "  {k:<w$}  count={} mean={:.0} min={} max={}",
                    h.count,
                    h.mean(),
                    if h.count == 0 { 0 } else { h.min },
                    h.max
                );
            }
        }
        if !self.series.is_empty() {
            section(&mut out, "series");
            let w = self.series.iter().map(|(k, _)| k.len()).max().unwrap_or(0);
            for (k, vs) in &self.series {
                let first = vs.first().copied().unwrap_or(0.0);
                let last = vs.last().copied().unwrap_or(0.0);
                let _ = writeln!(
                    out,
                    "  {k:<w$}  n={} first={first:.4} last={last:.4}",
                    vs.len()
                );
            }
        }
        if !self.spans.is_empty() {
            section(&mut out, "spans");
            let w = self.spans.iter().map(|(k, _)| k.len()).max().unwrap_or(0);
            for (k, s) in &self.spans {
                let _ = writeln!(
                    out,
                    "  {k:<w$}  count={} total={:.2}ms min={}ns max={}ns",
                    s.count,
                    s.total_ns as f64 / 1e6,
                    if s.count == 0 { 0 } else { s.min_ns },
                    s.max_ns
                );
            }
        }
        out
    }
}

/// Directory reports are written to: `MIXQ_TELEMETRY_DIR` or
/// `results/telemetry` relative to the working directory.
pub fn report_dir() -> PathBuf {
    std::env::var("MIXQ_TELEMETRY_DIR")
        .map(PathBuf::from)
        .unwrap_or_else(|_| PathBuf::from("results").join("telemetry"))
}

/// Snapshots the registry and writes `<report_dir>/<tag>.json`, creating
/// the directory as needed. Returns the path written. Call this even when
/// telemetry is disabled — the report is then simply empty.
pub fn write_report(tag: &str) -> std::io::Result<PathBuf> {
    let safe: String = tag
        .chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() || c == '-' || c == '_' {
                c
            } else {
                '_'
            }
        })
        .collect();
    let dir = report_dir();
    std::fs::create_dir_all(&dir)?;
    let path = dir.join(format!("{safe}.json"));
    std::fs::write(&path, snapshot().to_json())?;
    Ok(path)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The registry and the gate are process-wide; every test that touches
    /// them lives here, serialized by one lock, to avoid cross-test races.
    static TEST_LOCK: Mutex<()> = Mutex::new(());

    #[test]
    fn counters_gauges_histograms_series() {
        let _g = TEST_LOCK.lock().unwrap();
        set_enabled(true);
        reset();
        counter_add("t.calls", 2);
        counter_add("t.calls", 3);
        gauge_set("t.util", 0.5);
        gauge_set("t.util", 0.75);
        for v in [0u64, 1, 2, 3, 900, 1024] {
            hist_record("t.ns", v);
        }
        series_push("t.loss", 1.5);
        series_push("t.loss", 0.5);
        let rep = snapshot();
        assert_eq!(rep.counters, vec![("t.calls".into(), 5)]);
        assert_eq!(rep.gauges, vec![("t.util".into(), 0.75)]);
        let (_, h) = &rep.hists[0];
        assert_eq!(h.count, 6);
        assert_eq!((h.min, h.max), (0, 1024));
        assert_eq!(h.buckets[0], 1, "value 0 lands in bucket 0");
        assert_eq!(h.buckets[1], 1, "value 1 lands in bucket 1");
        assert_eq!(h.buckets[2], 2, "values 2..4 land in bucket 2");
        assert_eq!(h.buckets[10], 1, "900 ∈ [512, 1024)");
        assert_eq!(h.buckets[11], 1, "1024 ∈ [1024, 2048)");
        assert_eq!(rep.series, vec![("t.loss".into(), vec![1.5, 0.5])]);
        reset();
        set_enabled(false);
    }

    #[test]
    fn disabled_mode_is_a_no_op() {
        let _g = TEST_LOCK.lock().unwrap();
        set_enabled(true);
        reset();
        set_enabled(false);
        counter_add("off.c", 1);
        gauge_set("off.g", 1.0);
        hist_record("off.h", 1);
        series_push("off.s", 1.0);
        kernel_finish("off.k", kernel_start(), 10);
        {
            let _s = span("off.span");
        }
        set_enabled(true);
        let rep = snapshot();
        assert!(rep.counters.is_empty(), "{:?}", rep.counters);
        assert!(rep.gauges.is_empty());
        assert!(rep.hists.is_empty());
        assert!(rep.series.is_empty());
        assert!(rep.spans.is_empty());
        set_enabled(false);
    }

    #[test]
    fn spans_nest_and_aggregate() {
        let _g = TEST_LOCK.lock().unwrap();
        set_enabled(true);
        reset();
        for _ in 0..3 {
            let _outer = span("outer");
            let _inner = span("inner");
        }
        {
            let _solo = span("inner");
        }
        let rep = snapshot();
        let names: Vec<&str> = rep.spans.iter().map(|(k, _)| k.as_str()).collect();
        assert_eq!(names, vec!["inner", "outer", "outer/inner"]);
        let get = |n: &str| &rep.spans.iter().find(|(k, _)| k == n).unwrap().1;
        assert_eq!(get("outer").count, 3);
        assert_eq!(get("outer/inner").count, 3);
        assert_eq!(get("inner").count, 1);
        assert!(get("outer").min_ns <= get("outer").max_ns);
        reset();
        set_enabled(false);
    }

    #[test]
    fn kernel_helpers_record_calls_work_and_latency() {
        let _g = TEST_LOCK.lock().unwrap();
        set_enabled(true);
        reset();
        let t = kernel_start();
        assert!(t.is_some());
        kernel_finish("k", t, 640);
        kernel_finish("k", kernel_start(), 60);
        let rep = snapshot();
        let c = |n: &str| rep.counters.iter().find(|(k, _)| k == n).unwrap().1;
        assert_eq!(c("k.calls"), 2);
        assert_eq!(c("k.work"), 700);
        assert_eq!(rep.hists[0].0, "k.ns");
        assert_eq!(rep.hists[0].1.count, 2);
        reset();
        set_enabled(false);
    }

    #[test]
    fn report_round_trips_through_the_json_parser() {
        let _g = TEST_LOCK.lock().unwrap();
        set_enabled(true);
        reset();
        counter_add("rt.calls", 7);
        gauge_set("rt.g", -2.25);
        hist_record("rt.h", 100);
        series_push("rt.s", 0.125);
        series_push("rt.s", -3.0);
        {
            let _s = span("rt");
        }
        let text = snapshot().to_json();
        reset();
        set_enabled(false);

        let v = json::parse(&text).expect("report must be valid JSON");
        assert_eq!(
            v.get("counters")
                .and_then(|c| c.get("rt.calls"))
                .and_then(json::Json::as_f64),
            Some(7.0)
        );
        assert_eq!(
            v.get("gauges")
                .and_then(|g| g.get("rt.g"))
                .and_then(json::Json::as_f64),
            Some(-2.25)
        );
        let h = v.get("histograms").and_then(|h| h.get("rt.h")).unwrap();
        assert_eq!(h.get("count").and_then(json::Json::as_f64), Some(1.0));
        assert_eq!(
            h.get("buckets")
                .and_then(json::Json::as_array)
                .map(|a| a.len()),
            Some(HIST_BUCKETS)
        );
        let s = v
            .get("series")
            .and_then(|s| s.get("rt.s"))
            .and_then(json::Json::as_array)
            .unwrap();
        assert_eq!(s.len(), 2);
        assert_eq!(s[1].as_f64(), Some(-3.0));
        let sp = v.get("spans").and_then(|s| s.get("rt")).unwrap();
        assert_eq!(sp.get("count").and_then(json::Json::as_f64), Some(1.0));
    }

    #[test]
    fn empty_report_is_valid_json_and_table() {
        let _g = TEST_LOCK.lock().unwrap();
        set_enabled(true);
        reset();
        let rep = snapshot();
        reset();
        set_enabled(false);
        let v = json::parse(&rep.to_json()).unwrap();
        assert!(v.get("counters").is_some());
        assert_eq!(rep.render_table(), "");
    }
}
