//! CI smoke checker for telemetry reports: parses each JSON report given on
//! the command line with the in-repo parser and verifies the expected
//! top-level structure, exiting non-zero on any failure.
//!
//! ```text
//! telemetry_check results/telemetry/table1.json [--expect counters.key] …
//! ```
//!
//! `--expect <section>.<name>` additionally requires a named metric to be
//! present (section is one of counters/gauges/histograms/series/spans);
//! `--expect-eq <section>.<name>=<value>` also checks its numeric value
//! (used by the fault-injection CI step to pin exact counter totals);
//! `--expect-gt <section>.<name>=<value>` requires the value to be strictly
//! greater (used for counters whose exact total is workload-dependent but
//! whose presence proves a code path ran, e.g. buffer-pool hits).

use mixq_telemetry::json;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut paths = Vec::new();
    let mut expectations = Vec::new();
    let mut equalities = Vec::new();
    let mut lower_bounds = Vec::new();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        if a == "--expect" {
            match it.next() {
                Some(e) => expectations.push(e.clone()),
                None => fail("--expect needs an argument"),
            }
        } else if a == "--expect-eq" {
            let Some(e) = it.next() else {
                fail("--expect-eq needs an argument");
            };
            let Some((metric, value)) = e.split_once('=') else {
                fail(&format!("bad --expect-eq '{e}': want section.name=value"));
            };
            let Ok(value) = value.parse::<f64>() else {
                fail(&format!("bad --expect-eq '{e}': value is not a number"));
            };
            equalities.push((metric.to_string(), value));
        } else if a == "--expect-gt" {
            let Some(e) = it.next() else {
                fail("--expect-gt needs an argument");
            };
            let Some((metric, value)) = e.split_once('=') else {
                fail(&format!("bad --expect-gt '{e}': want section.name=value"));
            };
            let Ok(value) = value.parse::<f64>() else {
                fail(&format!("bad --expect-gt '{e}': value is not a number"));
            };
            lower_bounds.push((metric.to_string(), value));
        } else {
            paths.push(a.clone());
        }
    }
    if paths.is_empty() {
        fail(
            "usage: telemetry_check <report.json>… [--expect section.name]… \
             [--expect-eq section.name=value]… [--expect-gt section.name=value]…",
        );
    }

    for path in &paths {
        let text = match std::fs::read_to_string(path) {
            Ok(t) => t,
            Err(e) => fail(&format!("{path}: cannot read: {e}")),
        };
        let doc = match json::parse(&text) {
            Ok(d) => d,
            Err(e) => fail(&format!("{path}: {e}")),
        };
        for section in ["counters", "gauges", "histograms", "series", "spans"] {
            match doc.get(section) {
                Some(v) if v.as_object().is_some() => {}
                Some(_) => fail(&format!("{path}: \"{section}\" is not an object")),
                None => fail(&format!("{path}: missing \"{section}\" section")),
            }
        }
        for exp in &expectations {
            let Some((section, name)) = exp.split_once('.') else {
                fail(&format!("bad --expect '{exp}': want section.name"));
            };
            let found = doc.get(section).and_then(|s| s.get(name)).is_some();
            if !found {
                fail(&format!("{path}: expected {section} metric '{name}'"));
            }
        }
        for (metric, want) in &equalities {
            let Some((section, name)) = metric.split_once('.') else {
                fail(&format!("bad --expect-eq '{metric}': want section.name"));
            };
            let got = doc
                .get(section)
                .and_then(|s| s.get(name))
                .and_then(json::Json::as_f64);
            match got {
                Some(v) if v == *want => {}
                Some(v) => fail(&format!("{path}: {metric} = {v}, expected {want}")),
                None => fail(&format!(
                    "{path}: expected numeric {section} metric '{name}'"
                )),
            }
        }
        for (metric, floor) in &lower_bounds {
            let Some((section, name)) = metric.split_once('.') else {
                fail(&format!("bad --expect-gt '{metric}': want section.name"));
            };
            let got = doc
                .get(section)
                .and_then(|s| s.get(name))
                .and_then(json::Json::as_f64);
            match got {
                Some(v) if v > *floor => {}
                Some(v) => fail(&format!("{path}: {metric} = {v}, expected > {floor}")),
                None => fail(&format!(
                    "{path}: expected numeric {section} metric '{name}'"
                )),
            }
        }
        let count = |s: &str| {
            doc.get(s)
                .and_then(json::Json::as_object)
                .map_or(0, |o| o.len())
        };
        println!(
            "{path}: OK ({} counters, {} gauges, {} histograms, {} series, {} spans)",
            count("counters"),
            count("gauges"),
            count("histograms"),
            count("series"),
            count("spans")
        );
    }
}

fn fail(msg: &str) -> ! {
    eprintln!("telemetry_check: {msg}");
    std::process::exit(1)
}
