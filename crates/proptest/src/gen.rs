//! Composable generators over the workspace's seeded [`Rng`].
//!
//! A [`Gen<T>`] turns an [`Rng`] into a [`Shrinkable<T>`] — a value plus its
//! integrated shrink tree. Combinators ([`Gen::map`], [`Gen::zip`],
//! [`Gen::bind`], [`Gen::vec_of`]) compose both the generation *and* the
//! shrinking, so test authors never write a shrinker by hand.
//!
//! Primitive generators shrink toward a canonical origin: integers toward
//! the in-range value closest to zero, floats toward `0.0` (with a hop to
//! the truncated integer on the way), vectors by deleting chunks. Float
//! generators can inject IEEE specials (`NaN`, `±inf`, subnormals, `±MAX`)
//! with a configurable probability; specials shrink to ordinary values
//! first so minimal counterexamples stay readable.

use std::rc::Rc;

use mixq_tensor::Rng;

use crate::tree::{vec_tree, Shrinkable};

type RunFn<T> = Rc<dyn Fn(&mut Rng) -> Shrinkable<T>>;
type BindFn<T, U> = Rc<dyn Fn(&T) -> Gen<U>>;

/// A reusable generator of shrinkable `T` values.
pub struct Gen<T> {
    run: RunFn<T>,
}

impl<T> Clone for Gen<T> {
    fn clone(&self) -> Self {
        Self {
            run: Rc::clone(&self.run),
        }
    }
}

impl<T: Clone + 'static> Gen<T> {
    pub fn new(run: impl Fn(&mut Rng) -> Shrinkable<T> + 'static) -> Self {
        Self { run: Rc::new(run) }
    }

    /// Draws one shrinkable value.
    pub fn generate(&self, rng: &mut Rng) -> Shrinkable<T> {
        (self.run)(rng)
    }

    /// Always produces `value` (no shrinking).
    pub fn constant(value: T) -> Self {
        Gen::new(move |_| Shrinkable::leaf(value.clone()))
    }

    /// Applies `f` to generated values; shrinking stays in the source
    /// domain and is re-mapped, so `map` never loses shrink structure.
    pub fn map<U: Clone + 'static>(&self, f: impl Fn(&T) -> U + 'static) -> Gen<U> {
        let g = self.clone();
        let f: Rc<dyn Fn(&T) -> U> = Rc::new(f);
        Gen::new(move |rng| g.generate(rng).map(Rc::clone(&f)))
    }

    /// Pairs two independent generators (left shrinks first).
    pub fn zip<U: Clone + 'static>(&self, other: &Gen<U>) -> Gen<(T, U)> {
        let (a, b) = (self.clone(), other.clone());
        Gen::new(move |rng| {
            let ta = a.generate(rng);
            let tb = b.generate(rng);
            ta.zip(&tb)
        })
    }

    /// Monadic bind: the second generator depends on the first value. The
    /// inner generator is re-run from a captured per-case seed whenever the
    /// outer value shrinks, so both layers stay shrinkable.
    pub fn bind<U: Clone + 'static>(&self, f: impl Fn(&T) -> Gen<U> + 'static) -> Gen<U> {
        let g = self.clone();
        let f: BindFn<T, U> = Rc::new(f);
        Gen::new(move |rng| {
            let outer = g.generate(rng);
            let seed = rng.next_u64();
            bind_tree(&outer, Rc::clone(&f), seed)
        })
    }

    /// A vector of `self` values with a length drawn from
    /// `[min_len, max_len]`. Shrinks by deleting chunks of elements (never
    /// below `min_len`) and by shrinking elements in place.
    pub fn vec_of(&self, min_len: usize, max_len: usize) -> Gen<Vec<T>> {
        assert!(min_len <= max_len);
        let elem = self.clone();
        Gen::new(move |rng| {
            let n = min_len + rng.gen_range(max_len - min_len + 1);
            let elems: Vec<Shrinkable<T>> = (0..n).map(|_| elem.generate(rng)).collect();
            vec_tree(elems, min_len)
        })
    }

    /// Picks uniformly from a fixed list; shrinks toward the first entry.
    pub fn one_of(choices: Vec<T>) -> Self {
        assert!(!choices.is_empty(), "one_of needs at least one choice");
        Gen::new(move |rng| {
            let idx = rng.gen_range(choices.len());
            index_tree(Rc::new(choices.clone()), idx)
        })
    }
}

fn index_tree<T: Clone + 'static>(choices: Rc<Vec<T>>, idx: usize) -> Shrinkable<T> {
    Shrinkable::new(choices[idx].clone(), move || {
        // Earlier entries are by convention simpler.
        (0..idx)
            .map(|i| index_tree(Rc::clone(&choices), i))
            .collect()
    })
}

fn bind_tree<T: Clone + 'static, U: Clone + 'static>(
    outer: &Shrinkable<T>,
    f: BindFn<T, U>,
    seed: u64,
) -> Shrinkable<U> {
    let mut rng = Rng::seed_from_u64(seed);
    let inner = f(outer.value()).generate(&mut rng);
    let o = outer.clone();
    let fi = Rc::clone(&f);
    let inner_clone = inner.clone();
    Shrinkable::new(inner.value().clone(), move || {
        let mut out: Vec<Shrinkable<U>> = o
            .shrinks()
            .iter()
            .map(|s| bind_tree(s, Rc::clone(&fi), seed))
            .collect();
        out.extend(inner_clone.shrinks());
        out
    })
}

// ---- integers ----------------------------------------------------------------

fn int_tree(origin: i64, v: i64) -> Shrinkable<i64> {
    Shrinkable::new(v, move || {
        if v == origin {
            return Vec::new();
        }
        let mut cands = vec![origin];
        let half = origin + (v - origin) / 2;
        if half != origin && half != v {
            cands.push(half);
        }
        let step = if v > origin { v - 1 } else { v + 1 };
        if step != origin && !cands.contains(&step) {
            cands.push(step);
        }
        cands.into_iter().map(|c| int_tree(origin, c)).collect()
    })
}

/// Uniform `i64` in `[lo, hi]`, shrinking toward the in-range value closest
/// to zero.
pub fn i64_in(lo: i64, hi: i64) -> Gen<i64> {
    assert!(lo <= hi);
    Gen::new(move |rng| {
        let span = (hi - lo) as u64 as usize + 1;
        let v = lo + rng.gen_range(span) as i64;
        int_tree(0i64.clamp(lo, hi), v)
    })
}

/// Uniform `i32` in `[lo, hi]`, shrinking toward zero (clamped in range).
pub fn i32_in(lo: i32, hi: i32) -> Gen<i32> {
    i64_in(lo as i64, hi as i64).map(|&v| v as i32)
}

/// Uniform `usize` in `[lo, hi]`, shrinking toward `lo`.
pub fn usize_in(lo: usize, hi: usize) -> Gen<usize> {
    assert!(lo <= hi);
    Gen::new(move |rng| {
        let v = lo + rng.gen_range(hi - lo + 1);
        int_tree(lo as i64, v as i64)
    })
    .map(|&v| v as usize)
}

/// Bernoulli draw; `true` shrinks to `false`.
pub fn bool_p(p: f64) -> Gen<bool> {
    Gen::new(move |rng| {
        let v = rng.bernoulli(p);
        if v {
            Shrinkable::new(true, || vec![Shrinkable::leaf(false)])
        } else {
            Shrinkable::leaf(false)
        }
    })
}

// ---- floats ------------------------------------------------------------------

fn f32_tree(origin: f32, v: f32, depth: u32) -> Shrinkable<f32> {
    Shrinkable::new(v, move || {
        if depth == 0 || v == origin {
            return Vec::new();
        }
        let mut cands: Vec<f32> = Vec::new();
        if !v.is_finite() {
            // Specials first collapse to ordinary values.
            return vec![
                f32_tree(origin, origin, depth - 1),
                f32_tree(origin, 1.0, depth - 1),
            ];
        }
        cands.push(origin);
        let t = v.trunc();
        if t != v && t != origin {
            cands.push(t);
        }
        let half = origin + (v - origin) * 0.5;
        if half != origin && half != v && !cands.contains(&half) {
            cands.push(half);
        }
        cands
            .into_iter()
            .map(|c| f32_tree(origin, c, depth - 1))
            .collect()
    })
}

/// Uniform `f32` in `[lo, hi)`, shrinking toward the in-range value closest
/// to `0.0` (via the truncated integer and binary halving).
pub fn f32_in(lo: f32, hi: f32) -> Gen<f32> {
    assert!(lo < hi && lo.is_finite() && hi.is_finite());
    Gen::new(move |rng| {
        let v = rng.uniform_in(lo, hi);
        f32_tree(0f32.clamp(lo, hi), v, 64)
    })
}

/// IEEE special values worth throwing at numeric code.
pub const F32_SPECIALS: [f32; 9] = [
    0.0,
    -0.0,
    f32::NAN,
    f32::INFINITY,
    f32::NEG_INFINITY,
    f32::MIN_POSITIVE,
    1.0e-42, // subnormal
    f32::MAX,
    f32::MIN,
];

/// Like [`f32_in`] but with probability `p_special` the draw is replaced by
/// one of [`F32_SPECIALS`]. Specials shrink to ordinary in-range values.
pub fn f32_with_specials(lo: f32, hi: f32, p_special: f64) -> Gen<f32> {
    assert!(lo < hi && lo.is_finite() && hi.is_finite());
    Gen::new(move |rng| {
        let origin = 0f32.clamp(lo, hi);
        if rng.bernoulli(p_special) {
            let v = F32_SPECIALS[rng.gen_range(F32_SPECIALS.len())];
            f32_tree(origin, v, 64)
        } else {
            f32_tree(origin, rng.uniform_in(lo, hi), 64)
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ints_shrink_toward_zero_in_range() {
        let g = i64_in(-100, 100);
        let mut rng = Rng::seed_from_u64(1);
        for _ in 0..50 {
            let t = g.generate(&mut rng);
            assert!((-100..=100).contains(t.value()));
            // Walking first children greedily reaches the origin.
            let mut cur = t;
            while let Some(c) = cur.shrinks().into_iter().next() {
                cur = c;
            }
            assert_eq!(*cur.value(), 0);
        }
    }

    #[test]
    fn usize_respects_bounds_and_shrinks_to_lo() {
        let g = usize_in(3, 9);
        let mut rng = Rng::seed_from_u64(2);
        for _ in 0..30 {
            let t = g.generate(&mut rng);
            assert!((3..=9).contains(t.value()));
            let mut cur = t;
            while let Some(c) = cur.shrinks().into_iter().next() {
                cur = c;
            }
            assert_eq!(*cur.value(), 3);
        }
    }

    #[test]
    fn float_specials_shrink_to_ordinary_values() {
        let mut rng = Rng::seed_from_u64(3);
        let g = f32_with_specials(-1.0, 1.0, 1.0); // always special
        let mut saw_nonfinite = false;
        for _ in 0..40 {
            let t = g.generate(&mut rng);
            if !t.value().is_finite() {
                saw_nonfinite = true;
                let kids = t.shrinks();
                assert!(kids.iter().all(|k| k.value().is_finite()));
            }
        }
        assert!(saw_nonfinite, "specials distribution must hit NaN/inf");
    }

    #[test]
    fn vec_of_lengths_and_shrinks() {
        let g = i32_in(0, 9).vec_of(1, 6);
        let mut rng = Rng::seed_from_u64(4);
        for _ in 0..30 {
            let t = g.generate(&mut rng);
            assert!((1..=6).contains(&t.value().len()));
            for k in t.shrinks() {
                assert!(!k.value().is_empty());
            }
        }
    }

    #[test]
    fn bind_regenerates_inner_on_outer_shrink() {
        // Outer length, inner vector of exactly that length.
        let g = usize_in(1, 5).bind(|&n| i32_in(0, 3).vec_of(n, n));
        let mut rng = Rng::seed_from_u64(5);
        for _ in 0..20 {
            let t = g.generate(&mut rng);
            let n = t.value().len();
            assert!((1..=5).contains(&n));
            for k in t.shrinks() {
                assert!(k.value().len() <= n, "shrinks never grow");
            }
        }
    }

    #[test]
    fn one_of_shrinks_toward_first_choice() {
        let g = Gen::one_of(vec![2u8, 4, 8, 16, 32]);
        let mut rng = Rng::seed_from_u64(6);
        for _ in 0..20 {
            let mut cur = g.generate(&mut rng);
            while let Some(c) = cur.shrinks().into_iter().next() {
                cur = c;
            }
            assert_eq!(*cur.value(), 2);
        }
    }
}
