//! Lazy shrink trees — the substrate of integrated shrinking.
//!
//! A [`Shrinkable<T>`] is a value together with a *lazy* list of simpler
//! candidate values, each itself a `Shrinkable<T>` (a rose tree, hedgehog
//! style). Generators produce whole trees, so every combinator
//! ([`Shrinkable::map`], [`Shrinkable::zip`]) transports the shrink
//! structure automatically — there is no separate `Arbitrary`-style
//! shrinker to keep in sync with the generator, and `map`ped values shrink
//! in the *source* domain where "simpler" is well defined.
//!
//! Children are produced by a closure so that the (potentially exponential)
//! tree is only materialized along the path the greedy shrinker actually
//! walks.

use std::rc::Rc;

/// A generated value plus its lazy shrink candidates (simplest first).
pub struct Shrinkable<T> {
    value: T,
    children: Rc<dyn Fn() -> Vec<Shrinkable<T>>>,
}

impl<T: Clone + 'static> Clone for Shrinkable<T> {
    fn clone(&self) -> Self {
        Self {
            value: self.value.clone(),
            children: Rc::clone(&self.children),
        }
    }
}

impl<T: Clone + 'static> Shrinkable<T> {
    /// A value with no shrink candidates.
    pub fn leaf(value: T) -> Self {
        Self {
            value,
            children: Rc::new(Vec::new),
        }
    }

    /// A value with lazily computed shrink candidates.
    pub fn new(value: T, children: impl Fn() -> Vec<Shrinkable<T>> + 'static) -> Self {
        Self {
            value,
            children: Rc::new(children),
        }
    }

    pub fn value(&self) -> &T {
        &self.value
    }

    pub fn into_value(self) -> T {
        self.value
    }

    /// Materializes the immediate shrink candidates (one tree level).
    pub fn shrinks(&self) -> Vec<Shrinkable<T>> {
        (self.children)()
    }

    /// Applies `f` to the value and, lazily, to every shrink candidate —
    /// shrinking happens in the source domain and is re-mapped on demand.
    pub fn map<U: Clone + 'static>(&self, f: Rc<dyn Fn(&T) -> U>) -> Shrinkable<U> {
        let value = f(&self.value);
        let children = Rc::clone(&self.children);
        Shrinkable {
            value,
            children: Rc::new(move || children().iter().map(|c| c.map(Rc::clone(&f))).collect()),
        }
    }

    /// Pairs two trees. Shrinks the left component first (holding the right
    /// fixed), then the right — the standard product-shrink order.
    pub fn zip<U: Clone + 'static>(&self, other: &Shrinkable<U>) -> Shrinkable<(T, U)> {
        let value = (self.value.clone(), other.value.clone());
        let (a, b) = (self.clone(), other.clone());
        Shrinkable {
            value,
            children: Rc::new(move || {
                let mut out: Vec<Shrinkable<(T, U)>> =
                    a.shrinks().iter().map(|sa| sa.zip(&b)).collect();
                out.extend(b.shrinks().iter().map(|sb| a.zip(sb)));
                out
            }),
        }
    }
}

/// Builds a vector tree from element trees. Shrinks by (1) deleting chunks
/// of elements — halves first, then smaller runs, down to single elements —
/// while respecting `min_len`, then (2) shrinking individual elements in
/// place. Chunk deletion first makes the greedy walk drop large irrelevant
/// regions in O(log n) steps.
pub fn vec_tree<T: Clone + 'static>(
    elems: Vec<Shrinkable<T>>,
    min_len: usize,
) -> Shrinkable<Vec<T>> {
    let value: Vec<T> = elems.iter().map(|e| e.value().clone()).collect();
    Shrinkable {
        value,
        children: Rc::new(move || {
            let n = elems.len();
            let mut out: Vec<Shrinkable<Vec<T>>> = Vec::new();
            // Chunk deletion, largest chunks first.
            let mut chunk = n / 2;
            while chunk >= 1 {
                if n - chunk >= min_len {
                    let mut start = 0;
                    while start + chunk <= n {
                        let mut kept = elems.clone();
                        kept.drain(start..start + chunk);
                        out.push(vec_tree(kept, min_len));
                        start += chunk;
                    }
                }
                chunk /= 2;
            }
            // Per-element shrinking.
            for i in 0..n {
                for cand in elems[i].shrinks() {
                    let mut next = elems.clone();
                    next[i] = cand;
                    out.push(vec_tree(next, min_len));
                }
            }
            out
        }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn int_leafless(v: i32) -> Shrinkable<i32> {
        Shrinkable::new(v, move || {
            if v > 0 {
                vec![int_leafless(v - 1)]
            } else {
                vec![]
            }
        })
    }

    #[test]
    fn map_transports_shrinks() {
        let t = int_leafless(3).map(Rc::new(|v: &i32| v * 10));
        assert_eq!(*t.value(), 30);
        let kids = t.shrinks();
        assert_eq!(*kids[0].value(), 20);
        assert_eq!(*kids[0].shrinks()[0].value(), 10);
    }

    #[test]
    fn zip_shrinks_left_then_right() {
        let t = int_leafless(1).zip(&int_leafless(1));
        let kids = t.shrinks();
        assert_eq!(*kids[0].value(), (0, 1), "left component first");
        assert_eq!(*kids[1].value(), (1, 0));
    }

    #[test]
    fn vec_tree_deletes_chunks_and_respects_min_len() {
        let t = vec_tree((0..4).map(int_leafless).collect(), 2);
        assert_eq!(t.value(), &vec![0, 1, 2, 3]);
        let lens: Vec<usize> = t.shrinks().iter().map(|s| s.value().len()).collect();
        assert!(lens.iter().all(|&l| l >= 2), "min_len respected: {lens:?}");
        assert!(lens.contains(&2), "halving candidate present");
    }
}
