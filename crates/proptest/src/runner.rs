//! The property runner: seeded case loop, greedy integrated shrinking, and
//! reproducible-failure reporting.
//!
//! Each case gets an independent seed derived (SplitMix64) from the suite's
//! base seed and the case index, so case `k` is replayable in isolation.
//! On failure the runner greedily walks the value's shrink tree — always
//! taking the first child that still fails — until no child fails or the
//! step budget runs out, then panics with the *minimal* counterexample and
//! a one-liner of the form
//!
//! ```text
//! reproduce with: MIXQ_PT_SEED=0x1234abcd cargo test <test-name>
//! ```
//!
//! Environment knobs:
//! * `MIXQ_PT_SEED=<hex-or-dec u64>` — replay exactly one case with that
//!   per-case seed (skips the normal loop).
//! * `MIXQ_PT_CASES=<n>` — override every suite's case budget (CI pins
//!   this; set it higher for longer local soak runs).
//!
//! Every executed case bumps the telemetry counters `proptest.cases` and
//! `proptest.<suite>.cases`, which `ci.sh` asserts so a suite that silently
//! stops generating is caught.

use std::panic::{self, AssertUnwindSafe};
use std::sync::Once;

use mixq_tensor::Rng;

use crate::gen::Gen;
use crate::tree::Shrinkable;

/// Per-suite configuration. Construct with [`Config::new`] and override
/// fields builder-style.
#[derive(Debug, Clone)]
pub struct Config {
    /// Suite name, used in failure reports and telemetry counter names.
    pub name: String,
    /// Number of cases to run (overridden by `MIXQ_PT_CASES`).
    pub cases: usize,
    /// Base seed; per-case seeds are derived from it.
    pub seed: u64,
    /// Cap on property evaluations spent shrinking one failure.
    pub max_shrink_steps: usize,
}

impl Config {
    pub fn new(name: &str) -> Self {
        Self {
            name: name.to_string(),
            cases: 64,
            seed: 0x6d69_7871, // "mixq"
            max_shrink_steps: 2000,
        }
    }

    pub fn cases(mut self, cases: usize) -> Self {
        self.cases = cases;
        self
    }

    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    pub fn max_shrink_steps(mut self, n: usize) -> Self {
        self.max_shrink_steps = n;
        self
    }

    /// Runs `prop` (which signals failure by panicking, e.g. via `assert!`)
    /// against `cfg.cases` generated values, shrinking any failure to a
    /// minimal counterexample before reporting it.
    pub fn run<T: Clone + std::fmt::Debug + 'static>(&self, gen: &Gen<T>, prop: impl Fn(&T)) {
        let cases_budget = env_usize("MIXQ_PT_CASES").unwrap_or(self.cases);
        let replay_seed = env_u64("MIXQ_PT_SEED");

        let case_seeds: Vec<u64> = match replay_seed {
            Some(s) => vec![s],
            None => (0..cases_budget)
                .map(|i| splitmix64(self.seed.wrapping_add(i as u64)))
                .collect(),
        };

        let mut executed = 0u64;
        for &case_seed in &case_seeds {
            let mut rng = Rng::seed_from_u64(case_seed);
            let tree = gen.generate(&mut rng);
            executed += 1;
            if let Some(msg) = fails(&prop, tree.value()) {
                let (minimal, min_msg, steps) = shrink(tree, &prop, self.max_shrink_steps);
                self.report_counters(executed);
                panic!(
                    "[mixq-proptest] suite '{}' failed\n\
                     seed          : {:#x}\n\
                     original error: {}\n\
                     shrunk in     : {} step(s)\n\
                     minimal case  : {:?}\n\
                     minimal error : {}\n\
                     reproduce with: MIXQ_PT_SEED={:#x} cargo test {}\n",
                    self.name, case_seed, msg, steps, minimal, min_msg, case_seed, self.name,
                );
            }
        }
        self.report_counters(executed);
    }

    fn report_counters(&self, executed: u64) {
        mixq_telemetry::counter_add("proptest.cases", executed);
        mixq_telemetry::counter_add(&format!("proptest.{}.cases", self.name), executed);
    }
}

/// Greedy first-failing-child descent. Returns the minimal failing value,
/// its failure message, and the number of property evaluations spent.
fn shrink<T: Clone + std::fmt::Debug + 'static>(
    mut tree: Shrinkable<T>,
    prop: &impl Fn(&T),
    max_steps: usize,
) -> (T, String, usize) {
    let mut last_msg = fails(prop, tree.value()).unwrap_or_default();
    let mut steps = 0usize;
    steps += 1;
    'outer: loop {
        for child in tree.shrinks() {
            if steps >= max_steps {
                break 'outer;
            }
            steps += 1;
            if let Some(msg) = fails(prop, child.value()) {
                tree = child;
                last_msg = msg;
                continue 'outer;
            }
        }
        break; // no child fails: tree is locally minimal
    }
    (tree.value().clone(), last_msg, steps)
}

/// Runs `prop` on `value`, converting a panic into `Some(message)`.
/// The process panic hook is silenced for the duration so that the dozens
/// of intermediate shrink failures don't spam stderr; the real hook sees
/// only the runner's final report.
fn fails<T>(prop: &impl Fn(&T), value: &T) -> Option<String> {
    install_quiet_hook();
    SUPPRESS.with(|s| s.set(true));
    let result = panic::catch_unwind(AssertUnwindSafe(|| prop(value)));
    SUPPRESS.with(|s| s.set(false));
    match result {
        Ok(()) => None,
        Err(payload) => Some(panic_message(&*payload)),
    }
}

fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "<non-string panic payload>".to_string()
    }
}

thread_local! {
    static SUPPRESS: std::cell::Cell<bool> = const { std::cell::Cell::new(false) };
}

/// Wraps the current panic hook exactly once per process with a version
/// that checks the thread-local [`SUPPRESS`] flag. Thread-local gating
/// (rather than swapping hooks per call) keeps concurrent libtest threads
/// from silencing each other's genuine failures.
fn install_quiet_hook() {
    static INSTALL: Once = Once::new();
    INSTALL.call_once(|| {
        let previous = panic::take_hook();
        panic::set_hook(Box::new(move |info| {
            if !SUPPRESS.with(|s| s.get()) {
                previous(info);
            }
        }));
    });
}

/// SplitMix64 — derives well-mixed per-case seeds from `base + index`.
fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

fn env_u64(key: &str) -> Option<u64> {
    let raw = std::env::var(key).ok()?;
    let raw = raw.trim();
    let parsed = if let Some(hex) = raw.strip_prefix("0x").or_else(|| raw.strip_prefix("0X")) {
        u64::from_str_radix(hex, 16)
    } else {
        raw.parse()
    };
    match parsed {
        Ok(v) => Some(v),
        Err(_) => panic!("{key}={raw:?} is not a valid u64 (decimal or 0x-hex)"),
    }
}

fn env_usize(key: &str) -> Option<usize> {
    env_u64(key).map(|v| v as usize)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::{i64_in, usize_in};

    #[test]
    fn passing_property_runs_all_cases() {
        // Counting via a Cell: the property must be called exactly `cases`
        // times when it never fails.
        let count = std::rc::Rc::new(std::cell::Cell::new(0usize));
        let c2 = std::rc::Rc::clone(&count);
        Config::new("runner_pass")
            .cases(13)
            .run(&i64_in(0, 100), move |_| c2.set(c2.get() + 1));
        if std::env::var("MIXQ_PT_CASES").is_err() && std::env::var("MIXQ_PT_SEED").is_err() {
            assert_eq!(count.get(), 13);
        }
    }

    #[test]
    fn failing_property_shrinks_to_boundary() {
        let err = panic::catch_unwind(|| {
            Config::new("runner_shrink")
                .cases(200)
                .run(&i64_in(0, 10_000), |&v| assert!(v < 500, "too big: {v}"));
        })
        .expect_err("property must fail");
        let msg = panic_message(&*err);
        // Greedy shrinking on ints halves toward 0, so the minimal failing
        // value is exactly the boundary 500.
        assert!(
            msg.contains("minimal case  : 500"),
            "expected minimal case 500 in report:\n{msg}"
        );
        assert!(
            msg.contains("MIXQ_PT_SEED="),
            "report must be replayable:\n{msg}"
        );
        assert!(
            msg.contains("runner_shrink"),
            "report names the suite:\n{msg}"
        );
    }

    #[test]
    fn shrink_respects_structural_floors() {
        let err = panic::catch_unwind(|| {
            Config::new("runner_vec_floor")
                .cases(100)
                .run(&i64_in(0, 9).vec_of(3, 12), |v| {
                    assert!(v.iter().sum::<i64>() < 0, "sum is never negative");
                });
        })
        .expect_err("property must fail");
        let msg = panic_message(&*err);
        // Minimal case: length floor 3, all elements shrunk to 0.
        assert!(
            msg.contains("minimal case  : [0, 0, 0]"),
            "expected [0, 0, 0]:\n{msg}"
        );
    }

    #[test]
    fn replayed_seed_reproduces_the_same_value() {
        // Generate once, note the value for a fixed per-case seed; the same
        // seed through the replay path must see the identical value.
        let seed = splitmix64(Config::new("x").seed);
        let gen = usize_in(0, 1_000_000);
        let mut r1 = Rng::seed_from_u64(seed);
        let v1 = *gen.generate(&mut r1).value();
        let mut r2 = Rng::seed_from_u64(seed);
        let v2 = *gen.generate(&mut r2).value();
        assert_eq!(v1, v2);
    }

    #[test]
    fn shrink_step_budget_is_respected() {
        // A property that fails for every value forces shrinking to the
        // budget; it must terminate rather than walk the full tree.
        let err = panic::catch_unwind(|| {
            Config::new("runner_budget")
                .cases(1)
                .max_shrink_steps(10)
                .run(&i64_in(0, i64::MAX / 2), |_| panic!("always fails"));
        })
        .expect_err("property must fail");
        let msg = panic_message(&*err);
        assert!(msg.contains("suite 'runner_budget' failed"), "{msg}");
    }
}
