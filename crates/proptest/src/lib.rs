//! `mixq-proptest`: the workspace's in-repo property-testing framework.
//!
//! PR 1 removed the external `proptest` crate so the workspace builds
//! offline; this crate restores real property-based testing — composable
//! generators with *integrated shrinking* — on top of the workspace's own
//! deterministic [`mixq_tensor::Rng`], with zero external dependencies.
//!
//! # Architecture
//!
//! * [`tree`] — [`Shrinkable<T>`]: a value plus a lazy rose tree of simpler
//!   candidates. Combinators transport shrink structure automatically.
//! * [`gen`] — [`Gen<T>`]: `Rng → Shrinkable<T>` with `map`/`zip`/`bind`/
//!   `vec_of`/`one_of` combinators and primitive generators for integers,
//!   floats (optionally with IEEE specials), and booleans.
//! * [`graphs`] — CSR graph generation with degree skew, isolated nodes
//!   and self-loops; shrinks nodes-first, then edges, then weights.
//! * [`qparams`] — bit-width and [`mixq_tensor::QuantParams`] generators
//!   over the paper's mixed-precision menu `{2, 3, 4, 8, 16, 32}`.
//! * [`runner`] — [`Config::run`]: the seeded case loop with greedy
//!   shrinking, `MIXQ_PT_SEED`/`MIXQ_PT_CASES` env knobs, telemetry case
//!   counters, and reproducible failure reports.
//!
//! # Writing a property
//!
//! ```
//! use mixq_proptest::{gen, Config};
//!
//! Config::new("abs_is_nonneg")
//!     .cases(32)
//!     .run(&gen::i64_in(-1000, 1000), |&v| {
//!         assert!(v.abs() >= 0);
//!     });
//! ```
//!
//! On failure the runner prints the minimal counterexample plus a
//! `MIXQ_PT_SEED=0x… cargo test <suite>` line; exporting that variable
//! replays exactly the failing case.

pub mod gen;
pub mod graphs;
pub mod qparams;
pub mod runner;
pub mod tree;

pub use gen::{bool_p, f32_in, f32_with_specials, i32_in, i64_in, usize_in, Gen, F32_SPECIALS};
pub use graphs::{graph, GraphConfig, RandomGraph};
pub use qparams::{bits, bits_up_to, quant_params, symmetric_params, BIT_MENU};
pub use runner::Config;
pub use tree::{vec_tree, Shrinkable};
