//! Generators for quantization bit-widths and [`QuantParams`].
//!
//! Bit-widths cover the full mixed-precision menu the paper searches over
//! (`{2, 3, 4, 8, 16, 32}`) and shrink toward 2 bits — the coarsest
//! quantizer, where a minimal counterexample is easiest to reason about.
//! Parameter generation goes through the public constructors
//! ([`QuantParams::from_min_max`] / [`QuantParams::symmetric`]) rather than
//! raw field assembly, so fuzzed parameters are always ones the library
//! itself can produce — including the degenerate ranges (`min == max`,
//! single-value, subnormal spans) that the quantizer must survive.

use mixq_tensor::QuantParams;

use crate::gen::{f32_in, Gen};

/// The bit-widths exercised by the conformance suites.
pub const BIT_MENU: [u8; 6] = [2, 3, 4, 8, 16, 32];

/// Picks a bit-width from [`BIT_MENU`], shrinking toward 2.
pub fn bits() -> Gen<u8> {
    Gen::one_of(BIT_MENU.to_vec())
}

/// Picks a bit-width from [`BIT_MENU`] capped at `max_bits` (inclusive),
/// shrinking toward 2. Useful when wide accumulators would overflow the
/// differential reference.
pub fn bits_up_to(max_bits: u8) -> Gen<u8> {
    let menu: Vec<u8> = BIT_MENU
        .iter()
        .copied()
        .filter(|&b| b <= max_bits)
        .collect();
    assert!(!menu.is_empty(), "no bit-width <= {max_bits} in menu");
    Gen::one_of(menu)
}

/// Asymmetric (affine) quantizer over a generated `[min, max]` range with a
/// generated bit-width. `mag` bounds the endpoint magnitudes.
pub fn quant_params(mag: f32) -> Gen<QuantParams> {
    assert!(mag > 0.0 && mag.is_finite());
    f32_in(-mag, mag)
        .zip(&f32_in(-mag, mag))
        .zip(&bits())
        .map(|&((a, b), bits)| QuantParams::from_min_max(a.min(b), a.max(b), bits))
}

/// Symmetric quantizer (`Z = 0`) with a generated amplitude and bit-width.
pub fn symmetric_params(mag: f32) -> Gen<QuantParams> {
    assert!(mag > 0.0 && mag.is_finite());
    f32_in(0.0, mag)
        .zip(&bits())
        .map(|&(a, bits)| QuantParams::symmetric(-a, a, bits))
}

#[cfg(test)]
mod tests {
    use super::*;
    use mixq_tensor::Rng;

    #[test]
    fn bits_stay_in_menu_and_shrink_to_two() {
        let g = bits();
        let mut rng = Rng::seed_from_u64(1);
        for _ in 0..30 {
            let mut cur = g.generate(&mut rng);
            assert!(BIT_MENU.contains(cur.value()));
            while let Some(k) = cur.shrinks().into_iter().next() {
                cur = k;
            }
            assert_eq!(*cur.value(), 2);
        }
    }

    #[test]
    fn bits_up_to_respects_cap() {
        let g = bits_up_to(8);
        let mut rng = Rng::seed_from_u64(2);
        for _ in 0..30 {
            assert!(*g.generate(&mut rng).value() <= 8);
        }
    }

    #[test]
    fn generated_params_are_always_usable() {
        let g = quant_params(8.0);
        let mut rng = Rng::seed_from_u64(3);
        for _ in 0..100 {
            let qp = *g.generate(&mut rng).value();
            assert!(qp.scale > 0.0 && qp.scale.is_finite(), "{qp:?}");
            assert!(
                qp.qmin <= qp.zero_point && qp.zero_point <= qp.qmax,
                "{qp:?}"
            );
            assert_eq!(qp.fake(0.0), 0.0, "zero must stay exact: {qp:?}");
        }
    }

    #[test]
    fn symmetric_params_have_zero_zero_point() {
        let g = symmetric_params(4.0);
        let mut rng = Rng::seed_from_u64(4);
        for _ in 0..50 {
            let qp = *g.generate(&mut rng).value();
            assert_eq!(qp.zero_point, 0);
            assert!(qp.scale > 0.0 && qp.scale.is_finite());
        }
    }
}
