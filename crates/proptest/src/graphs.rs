//! Random CSR graph generation with integrated shrinking.
//!
//! GNN quantization bugs concentrate in degree extremes — hub rows that
//! saturate accumulators, isolated nodes whose aggregation is empty, and
//! self-loops that alias source and destination. [`GraphConfig`] exposes
//! knobs for all three regimes (degree skew via `degree_alpha`, an isolated
//! node fraction, a self-loop toggle) so suites can steer generation into
//! the regions the paper's Theorem 1 must survive.
//!
//! Shrinking is structural, not element-wise: a failing graph first tries
//! dropping whole node suffixes (edges referencing removed nodes go with
//! them), then deletes edge chunks, then canonicalizes edge weights to
//! `1.0`. A counterexample on a 200-node graph typically minimizes to a
//! handful of nodes and one or two edges.

use std::rc::Rc;

use mixq_sparse::{CooEntry, CsrMatrix};

use crate::gen::Gen;
use crate::tree::Shrinkable;

/// Knobs for random graph generation.
#[derive(Debug, Clone, Copy)]
pub struct GraphConfig {
    /// Minimum node count (also the shrink floor).
    pub min_nodes: usize,
    /// Maximum node count (inclusive).
    pub max_nodes: usize,
    /// Maximum out-degree drawn per non-isolated node.
    pub max_degree: usize,
    /// Destination skew exponent: `1.0` is uniform, larger values
    /// concentrate edges onto low-index hub nodes (power-law-ish degree
    /// distributions, the Degree-Quant failure regime).
    pub degree_alpha: f64,
    /// Probability that a node is isolated (no incident out-edges).
    pub isolated_frac: f64,
    /// Whether self-loop edges are kept.
    pub self_loops: bool,
    /// Edge weight range (uniform draw in `[val_lo, val_hi)`).
    pub val_lo: f32,
    pub val_hi: f32,
}

impl Default for GraphConfig {
    fn default() -> Self {
        Self {
            min_nodes: 1,
            max_nodes: 24,
            max_degree: 6,
            degree_alpha: 2.0,
            isolated_frac: 0.15,
            self_loops: true,
            val_lo: -2.0,
            val_hi: 2.0,
        }
    }
}

/// A generated graph: `nodes` and a duplicate-free edge list
/// `(src, dst, weight)` with `src, dst < nodes`.
#[derive(Debug, Clone, PartialEq)]
pub struct RandomGraph {
    pub nodes: usize,
    pub edges: Vec<(usize, usize, f32)>,
}

impl RandomGraph {
    /// The square `nodes × nodes` adjacency matrix in CSR form.
    pub fn to_csr(&self) -> CsrMatrix {
        CsrMatrix::from_coo(
            self.nodes,
            self.nodes,
            self.edges
                .iter()
                .map(|&(row, col, val)| CooEntry { row, col, val })
                .collect(),
        )
    }

    pub fn nnz(&self) -> usize {
        self.edges.len()
    }

    /// Largest number of edges sharing one source row.
    pub fn max_row_nnz(&self) -> usize {
        let mut per_row = vec![0usize; self.nodes];
        for &(src, _, _) in &self.edges {
            per_row[src] += 1;
        }
        per_row.into_iter().max().unwrap_or(0)
    }
}

/// Generator of [`RandomGraph`] under `cfg`, shrinking nodes-first.
pub fn graph(cfg: GraphConfig) -> Gen<RandomGraph> {
    assert!(cfg.min_nodes >= 1 && cfg.min_nodes <= cfg.max_nodes);
    assert!(cfg.val_lo < cfg.val_hi);
    Gen::new(move |rng| {
        let n = cfg.min_nodes + rng.gen_range(cfg.max_nodes - cfg.min_nodes + 1);
        let isolated: Vec<bool> = (0..n).map(|_| rng.bernoulli(cfg.isolated_frac)).collect();
        let active: Vec<usize> = (0..n).filter(|&i| !isolated[i]).collect();
        let mut edges: Vec<(usize, usize, f32)> = Vec::new();
        if !active.is_empty() {
            for &src in &active {
                let deg = rng.gen_range(cfg.max_degree + 1);
                for _ in 0..deg {
                    // u^alpha compresses toward 0 for alpha > 1, turning
                    // low-index active nodes into high-in-degree hubs.
                    let u = rng.uniform().powf(cfg.degree_alpha);
                    let pos = ((u * active.len() as f64) as usize).min(active.len() - 1);
                    let dst = active[pos];
                    if dst == src && !cfg.self_loops {
                        continue;
                    }
                    edges.push((src, dst, rng.uniform_in(cfg.val_lo, cfg.val_hi)));
                }
            }
        }
        edges.sort_unstable_by_key(|a| (a.0, a.1));
        edges.dedup_by_key(|e| (e.0, e.1));
        graph_tree(cfg.min_nodes, n, Rc::new(edges))
    })
}

fn graph_tree(
    min_nodes: usize,
    nodes: usize,
    edges: Rc<Vec<(usize, usize, f32)>>,
) -> Shrinkable<RandomGraph> {
    let value = RandomGraph {
        nodes,
        edges: (*edges).clone(),
    };
    Shrinkable::new(value, move || {
        let mut out: Vec<Shrinkable<RandomGraph>> = Vec::new();
        // 1. Node-suffix removal: try the floor, the midpoint, then n−1.
        //    Edges referencing removed nodes are dropped with them.
        let mut node_cands = vec![min_nodes, nodes / 2, nodes - 1];
        node_cands.retain(|&m| m >= min_nodes && m < nodes);
        node_cands.dedup();
        for m in node_cands {
            let kept: Vec<_> = edges
                .iter()
                .filter(|&&(s, d, _)| s < m && d < m)
                .copied()
                .collect();
            out.push(graph_tree(min_nodes, m, Rc::new(kept)));
        }
        // 2. Edge chunk deletion, halves first.
        let ne = edges.len();
        let mut chunk = ne / 2;
        while chunk >= 1 {
            let mut start = 0;
            while start + chunk <= ne {
                let mut kept = (*edges).clone();
                kept.drain(start..start + chunk);
                out.push(graph_tree(min_nodes, nodes, Rc::new(kept)));
                start += chunk;
            }
            chunk /= 2;
        }
        // 3. Canonicalize edge weights to 1.0, one edge at a time.
        for i in 0..ne {
            if edges[i].2 != 1.0 {
                let mut next = (*edges).clone();
                next[i].2 = 1.0;
                out.push(graph_tree(min_nodes, nodes, Rc::new(next)));
            }
        }
        out
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use mixq_tensor::Rng;

    #[test]
    fn generated_graphs_are_valid_and_build_csr() {
        let g = graph(GraphConfig::default());
        let mut rng = Rng::seed_from_u64(1);
        for _ in 0..50 {
            let t = g.generate(&mut rng);
            let rg = t.value();
            assert!((1..=24).contains(&rg.nodes));
            for &(s, d, v) in &rg.edges {
                assert!(s < rg.nodes && d < rg.nodes);
                assert!(v.is_finite());
            }
            let a = rg.to_csr();
            assert_eq!(a.rows(), rg.nodes);
            assert_eq!(a.nnz(), rg.edges.len(), "edge list must be duplicate-free");
        }
    }

    #[test]
    fn shrinks_reduce_nodes_and_stay_consistent() {
        let cfg = GraphConfig {
            min_nodes: 2,
            max_nodes: 16,
            ..GraphConfig::default()
        };
        let g = graph(cfg);
        let mut rng = Rng::seed_from_u64(2);
        for _ in 0..20 {
            let t = g.generate(&mut rng);
            let n = t.value().nodes;
            for k in t.shrinks() {
                let rg = k.value();
                assert!(rg.nodes >= 2 && rg.nodes <= n);
                for &(s, d, _) in &rg.edges {
                    assert!(s < rg.nodes && d < rg.nodes, "shrunk edges stay in range");
                }
            }
        }
    }

    #[test]
    fn greedy_walk_reaches_minimal_graph() {
        let g = graph(GraphConfig::default());
        let mut rng = Rng::seed_from_u64(3);
        // Property that always fails: walking first children must bottom out
        // at min_nodes with no edges.
        let mut cur = g.generate(&mut rng);
        loop {
            let kids = cur.shrinks();
            match kids.into_iter().next() {
                Some(k) => cur = k,
                None => break,
            }
        }
        assert_eq!(cur.value().nodes, 1);
        // A 1-node graph can retain at most a self-loop of weight 1.0.
        assert!(cur.value().edges.len() <= 1);
    }

    #[test]
    fn no_self_loops_when_disabled() {
        let cfg = GraphConfig {
            self_loops: false,
            ..GraphConfig::default()
        };
        let g = graph(cfg);
        let mut rng = Rng::seed_from_u64(4);
        for _ in 0..30 {
            let t = g.generate(&mut rng);
            assert!(t.value().edges.iter().all(|&(s, d, _)| s != d));
        }
    }

    #[test]
    fn isolated_fraction_produces_zero_rows() {
        let cfg = GraphConfig {
            min_nodes: 30,
            max_nodes: 40,
            isolated_frac: 0.5,
            ..GraphConfig::default()
        };
        let g = graph(cfg);
        let mut rng = Rng::seed_from_u64(5);
        let mut saw_isolated = false;
        for _ in 0..10 {
            let t = g.generate(&mut rng);
            let rg = t.value();
            let mut has_edge = vec![false; rg.nodes];
            for &(s, d, _) in &rg.edges {
                has_edge[s] = true;
                has_edge[d] = true;
            }
            if has_edge.iter().any(|&h| !h) {
                saw_isolated = true;
            }
        }
        assert!(saw_isolated, "isolated_frac=0.5 must yield isolated nodes");
    }
}
