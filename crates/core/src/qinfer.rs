//! Fully-integer inference engine built on Theorem 1.
//!
//! After quantization-aware training, fake quantizers are removed and the
//! architecture executes on integer codes (Fig. 5(iv)): weights and the
//! adjacency are quantized once, activations flow as `i32` codes, dense
//! products accumulate in `i64` and are requantized with *fixed-point*
//! multipliers (Jacob et al. [30]) — no floating point in the dense hot
//! loop. Sparse aggregation uses [`crate::theorem1::quantized_spmm`].

use mixq_faultinject::FaultKind;
use mixq_nn::ParamSet;
use mixq_sparse::{CooEntry, CsrMatrix, QuantCsr};
use mixq_tensor::{Matrix, MixqResult, QuantParams};

use crate::theorem1::{quantized_spmm, QmpParams};

// ---- accumulator-saturation analysis ----------------------------------------
//
// Both integer kernels accumulate in `i64`. For sane bit-widths the
// worst-case accumulator magnitude is nowhere near `i64::MAX`, but the
// engine should *prove* that per layer instead of assuming it: `prepare`
// computes a static a-priori bound (in `i128`, so the analysis itself
// cannot overflow) and, if it crosses [`ACC_SAT_LIMIT`], freezes the layer
// with a fake-quantized `f32` fallback instead of the integer kernels. The
// `acc_saturate` fault forces the same path deterministically so the
// fallback is exercisable in tests.

/// Conservative accumulator ceiling: one bit of headroom under `i64::MAX`
/// on top of the (already conservative) worst-case bound.
const ACC_SAT_LIMIT: i128 = 1 << 62;

fn qp_span(qp: &QuantParams) -> i128 {
    (qp.qmax as i128 - qp.qmin as i128).max(1)
}

/// Worst-case |accumulator| of [`int_matmul_requant`] for `x_qp × w_qp`
/// over inner dimension `in_dim`, with the bias folded at scale `Sx·Sw`.
fn matmul_acc_bound(
    in_dim: usize,
    x_qp: &QuantParams,
    w_qp: &QuantParams,
    bias: Option<&[f32]>,
) -> i128 {
    let acc_scale = x_qp.scale as f64 * w_qp.scale as f64;
    let bias_max = bias
        .map(|b| {
            b.iter()
                .map(|&v| (v as f64 / acc_scale).abs().round() as i128)
                .max()
                .unwrap_or(0)
        })
        .unwrap_or(0);
    in_dim as i128 * qp_span(x_qp) * qp_span(w_qp) + bias_max
}

/// Worst-case |accumulator| of one Theorem 1 aggregation row: `max_row_nnz`
/// products of an adjacency code (`|code| ≤ 2^{b_a}`) with an activation
/// code, plus the zero-point correction of the same order.
fn spmm_acc_bound(qadj: &QuantCsr, h_qp: &QuantParams) -> i128 {
    let a_span = 1i128 << qadj.bits().min(16);
    let h_mag = qp_span(h_qp) + h_qp.zero_point.unsigned_abs() as i128;
    qadj.max_row_nnz() as i128 * a_span * h_mag
}

/// Reconstructs the real-valued adjacency the integer path effectively uses
/// (`code · scale`), for the `f32` fallback of a saturating layer.
fn dequantize_qcsr(qadj: &QuantCsr, scale: f32) -> CsrMatrix {
    let mut entries = Vec::with_capacity(qadj.nnz());
    for r in 0..qadj.rows() {
        for (c, v) in qadj.row(r) {
            entries.push(CooEntry {
                row: r,
                col: c,
                val: v as f32 * scale,
            });
        }
    }
    CsrMatrix::from_coo(qadj.rows(), qadj.cols(), entries)
}

/// Decides at `prepare` time whether layer `idx` must run the `f32`
/// fallback: either the static bound crosses the ceiling, or the
/// `acc_saturate` fault fires for this layer.
fn layer_needs_fallback(idx: usize, bound: i128) -> bool {
    let injected = mixq_faultinject::should_fire(FaultKind::AccSaturate, Some(idx as u64));
    if injected {
        // Forcing the graceful path *is* the recovery.
        mixq_faultinject::mark_recovered();
    }
    let fallback = injected || bound >= ACC_SAT_LIMIT;
    if fallback && mixq_telemetry::enabled() {
        mixq_telemetry::counter_add("qinfer.fallback.layers", 1);
    }
    fallback
}

/// Adds a row-vector bias to every row of `m` in place.
fn add_bias_rows(m: &mut Matrix, bias: &[f32]) {
    assert_eq!(m.cols(), bias.len());
    for r in 0..m.rows() {
        for (c, &bv) in bias.iter().enumerate() {
            let v = m.get(r, c) + bv;
            m.set(r, c, v);
        }
    }
}

/// A dense integer tensor with its quantization parameters.
#[derive(Debug, Clone)]
pub struct QTensor {
    pub rows: usize,
    pub cols: usize,
    pub data: Vec<i32>,
    pub qp: QuantParams,
}

impl QTensor {
    /// Quantizes a real matrix (element-wise, parallelized over chunks;
    /// bit-identical to the serial map).
    pub fn quantize(m: &Matrix, qp: QuantParams) -> Self {
        let mut data = vec![0i32; m.numel()];
        mixq_parallel::par_map_slice(m.data(), &mut data, |v| qp.quantize(v));
        Self {
            rows: m.rows(),
            cols: m.cols(),
            data,
            qp,
        }
    }

    /// Dequantizes back to a real matrix (element-wise, parallelized).
    pub fn dequantize(&self) -> Matrix {
        let mut data = vec![0f32; self.data.len()];
        mixq_parallel::par_map_slice(&self.data, &mut data, |q| self.qp.dequantize(q));
        Matrix::from_vec(self.rows, self.cols, data)
    }

    /// Integer ReLU: real 0 corresponds to the zero-point code.
    pub fn relu_inplace(&mut self) {
        let z = self.qp.zero_point;
        for v in &mut self.data {
            *v = (*v).max(z);
        }
    }
}

/// Decomposes a positive real multiplier as `m0 · 2^{−(31+rshift)}` with
/// `m0 ∈ [2^30, 2^31)` — the fixed-point representation used to requantize
/// accumulators without floating point.
pub fn quantize_multiplier(real: f64) -> (i32, i32) {
    assert!(
        real > 0.0 && real.is_finite(),
        "multiplier must be positive, got {real}"
    );
    // frexp: real = mant · 2^exp with mant ∈ [0.5, 1).
    let exp = real.log2().floor() as i32 + 1;
    let mant = real / 2f64.powi(exp);
    debug_assert!((0.5..1.0).contains(&mant));
    let mut m0 = (mant * (1i64 << 31) as f64).round() as i64;
    let mut exp = exp;
    if m0 == (1i64 << 31) {
        m0 /= 2;
        exp += 1;
    }
    let rshift = -exp;
    assert!(
        31 + rshift >= 1,
        "multiplier {real} too large for fixed-point requantization"
    );
    (m0 as i32, rshift)
}

/// `round(acc · m0 · 2^{−(31+rshift)})` in pure integer arithmetic.
#[inline]
pub fn fixed_point_multiply(acc: i64, m0: i32, rshift: i32) -> i64 {
    let total = 31 + rshift;
    let prod = acc as i128 * m0 as i128;
    let round = 1i128 << (total - 1);
    ((prod + round) >> total) as i64
}

/// Integer dense product with requantization:
/// `out = clip(round((Σ (qx−zx)(qw−zw) + bias_int) · Sx·Sw/So) + zo)`.
///
/// The bias is folded into the accumulator at scale `Sx·Sw` (the standard
/// integer-only-inference recipe).
pub fn int_matmul_requant(
    x: &QTensor,
    w: &QTensor,
    bias: Option<&[f32]>,
    out_qp: QuantParams,
) -> QTensor {
    assert_eq!(x.cols, w.rows, "int_matmul: inner dimensions differ");
    let acc_scale = x.qp.scale as f64 * w.qp.scale as f64;
    let (m0, rshift) = quantize_multiplier(acc_scale / out_qp.scale as f64);
    let bias_int: Vec<i64> = match bias {
        Some(b) => {
            assert_eq!(b.len(), w.cols);
            b.iter()
                .map(|&v| (v as f64 / acc_scale).round() as i64)
                .collect()
        }
        None => vec![0; w.cols],
    };
    let (zx, zw) = (x.qp.zero_point as i64, w.qp.zero_point as i64);
    let mut out = vec![0i32; x.rows * w.cols];
    // Output rows are independent: partition them across threads, each with
    // its own accumulator row. Integer arithmetic ⇒ exact at any count.
    mixq_parallel::par_row_chunks_mut(&mut out, x.rows, w.cols, |start, chunk| {
        let mut acc_row = vec![0i64; w.cols];
        for (di, orow) in chunk.chunks_mut(w.cols).enumerate() {
            let i = start + di;
            acc_row.copy_from_slice(&bias_int);
            for k in 0..x.cols {
                let a = x.data[i * x.cols + k] as i64 - zx;
                if a == 0 {
                    continue;
                }
                let wrow = &w.data[k * w.cols..(k + 1) * w.cols];
                for (o, &wv) in acc_row.iter_mut().zip(wrow.iter()) {
                    *o += a * (wv as i64 - zw);
                }
            }
            for (o, &acc) in orow.iter_mut().zip(acc_row.iter()) {
                let q = fixed_point_multiply(acc, m0, rshift) + out_qp.zero_point as i64;
                *o = q.clamp(out_qp.qmin as i64, out_qp.qmax as i64) as i32;
            }
        }
    });
    if mixq_telemetry::enabled() {
        mixq_telemetry::counter_add("qinfer.requant.calls", 1);
        mixq_telemetry::counter_add("qinfer.requant.elems", out.len() as u64);
    }
    QTensor {
        rows: x.rows,
        cols: w.cols,
        data: out,
        qp: out_qp,
    }
}

/// Per-layer bit-width summary reported by [`QuantizedModel::bit_config`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LayerBits {
    /// Weight bit-width (for SAGE: the root weight; both weights share it).
    pub weight_bits: u8,
    /// Activation bit-width of the layer's output quantizer.
    pub activation_bits: u8,
    /// Adjacency bit-width used for the Theorem 1 aggregation.
    pub adj_bits: u8,
}

/// Common interface of the integer-only inference executors.
///
/// Both engines follow the same lifecycle: `prepare` freezes a trained
/// snapshot into integer weights plus a quantized adjacency, `infer` runs
/// the integer pipeline and dequantizes the logits, and `bit_config`
/// reports the per-layer bit-widths actually executing. Benches, examples
/// and tests route through this trait so GCN and GraphSAGE engines are
/// interchangeable.
pub trait QuantizedModel: Sized {
    /// The exported training-time state this executor is built from.
    type Snapshot;

    /// Freezes `snapshot` into an integer executor bound to `adj` (the
    /// model-specific normalized adjacency).
    fn prepare(snapshot: &Self::Snapshot, adj: &CsrMatrix) -> Self;

    /// Runs integer-only inference and returns dequantized logits.
    fn infer(&self, features: &Matrix) -> Matrix;

    /// Per-layer bit-widths of the frozen executor.
    fn bit_config(&self) -> Vec<LayerBits>;
}

/// Theorem 1 sparse aggregation shared by both executors: wraps `h`'s codes
/// through [`quantized_spmm`] (with `Z_a = 0` from symmetric adjacency
/// quantization) and returns the result as a [`QTensor`] under `agg_qp`.
fn aggregate_theorem1(
    qadj: &QuantCsr,
    adj_scale: f32,
    h: &QTensor,
    agg_qp: QuantParams,
) -> QTensor {
    let f = h.cols;
    let p = QmpParams::per_tensor(
        qadj.rows(),
        f,
        adj_scale,
        0,
        h.qp.scale,
        h.qp.zero_point,
        agg_qp.scale,
        agg_qp.zero_point,
        agg_qp.qmin,
        agg_qp.qmax,
    );
    let data = quantized_spmm(qadj, &h.data, f, &p);
    QTensor {
        rows: qadj.rows(),
        cols: f,
        data,
        qp: agg_qp,
    }
}

/// Quantization parameters of one GCN layer, exported from a trained
/// fixed-bit net.
#[derive(Debug, Clone)]
pub struct GcnLayerSnapshot {
    pub weight: Matrix,
    pub bias: Option<Vec<f32>>,
    pub w_qp: QuantParams,
    pub lin_qp: QuantParams,
    pub agg_qp: QuantParams,
    pub adj_bits: u8,
}

/// Everything needed to run integer-only GCN inference.
#[derive(Debug, Clone)]
pub struct GcnSnapshot {
    pub input_qp: QuantParams,
    pub layers: Vec<GcnLayerSnapshot>,
}

/// `f32` stand-in for one saturating GCN layer: the fake-quantized weight
/// and the dequantized adjacency reproduce the integer semantics to within
/// rounding, without `i64` accumulators.
struct GcnFallback {
    w_fake: Matrix,
    adj_deq: CsrMatrix,
}

struct ExecLayer {
    wq: QTensor,
    bias: Option<Vec<f32>>,
    lin_qp: QuantParams,
    agg_qp: QuantParams,
    qadj: QuantCsr,
    adj_scale: f32,
    fallback: Option<GcnFallback>,
}

/// The integer GCN executor: Fig. 5(iv) for the multi-layer GCN.
pub struct QuantizedGcn {
    input_qp: QuantParams,
    layers: Vec<ExecLayer>,
}

impl QuantizedGcn {
    /// Prepares integer weights and the quantized adjacency from a trained
    /// snapshot and the (normalized) adjacency.
    pub fn prepare(snapshot: &GcnSnapshot, adj_norm: &CsrMatrix) -> Self {
        let mut x_qp = snapshot.input_qp;
        let layers = snapshot
            .layers
            .iter()
            .enumerate()
            .map(|(i, l)| {
                let wq = QTensor::quantize(&l.weight, l.w_qp);
                let (qadj, adj_scale) = quantize_csr_symmetric(adj_norm, l.adj_bits);
                let bound = matmul_acc_bound(l.weight.rows(), &x_qp, &l.w_qp, l.bias.as_deref())
                    .max(spmm_acc_bound(&qadj, &l.lin_qp));
                let fallback = layer_needs_fallback(i, bound).then(|| GcnFallback {
                    w_fake: l.weight.map(|v| l.w_qp.fake(v)),
                    adj_deq: dequantize_qcsr(&qadj, adj_scale),
                });
                x_qp = l.agg_qp;
                ExecLayer {
                    wq,
                    bias: l.bias.clone(),
                    lin_qp: l.lin_qp,
                    agg_qp: l.agg_qp,
                    qadj,
                    adj_scale,
                    fallback,
                }
            })
            .collect();
        Self {
            input_qp: snapshot.input_qp,
            layers,
        }
    }

    /// Runs integer inference and returns dequantized logits.
    pub fn infer(&self, features: &Matrix) -> Matrix {
        let _span = mixq_telemetry::span("qinfer_gcn/infer");
        let mut x = QTensor::quantize(features, self.input_qp);
        let last = self.layers.len() - 1;
        for (i, layer) in self.layers.iter().enumerate() {
            let t0 = mixq_telemetry::kernel_start();
            let mut yt = match &layer.fallback {
                // Graceful f32 path for a layer whose integer accumulators
                // could saturate: same fake-quantized semantics, no i64 acc.
                Some(fb) => {
                    let xf = x.dequantize();
                    let mut lin = xf.matmul(&fb.w_fake);
                    if let Some(b) = &layer.bias {
                        add_bias_rows(&mut lin, b);
                    }
                    let lin = lin.map(|v| layer.lin_qp.fake(v));
                    let agg = Matrix::from_vec(
                        fb.adj_deq.rows(),
                        lin.cols(),
                        fb.adj_deq.spmm(lin.data(), lin.cols()),
                    );
                    QTensor::quantize(&agg, layer.agg_qp)
                }
                None => {
                    let h = int_matmul_requant(&x, &layer.wq, layer.bias.as_deref(), layer.lin_qp);
                    // Sparse aggregation via Theorem 1 (Z_a = 0 by construction).
                    aggregate_theorem1(&layer.qadj, layer.adj_scale, &h, layer.agg_qp)
                }
            };
            if i < last {
                yt.relu_inplace();
            }
            mixq_telemetry::kernel_finish("qinfer.gcn.layer", t0, (yt.rows * yt.cols) as u64);
            x = yt;
        }
        x.dequantize()
    }

    /// Per-layer bit-widths of the frozen executor.
    pub fn bit_config(&self) -> Vec<LayerBits> {
        self.layers
            .iter()
            .map(|l| LayerBits {
                weight_bits: l.wq.qp.bits,
                activation_bits: l.agg_qp.bits,
                adj_bits: l.qadj.bits(),
            })
            .collect()
    }
}

impl QuantizedModel for QuantizedGcn {
    type Snapshot = GcnSnapshot;

    fn prepare(snapshot: &GcnSnapshot, adj: &CsrMatrix) -> Self {
        QuantizedGcn::prepare(snapshot, adj)
    }

    fn infer(&self, features: &Matrix) -> Matrix {
        QuantizedGcn::infer(self, features)
    }

    fn bit_config(&self) -> Vec<LayerBits> {
        QuantizedGcn::bit_config(self)
    }
}

/// Symmetrically quantizes a sparse matrix's values to integer codes,
/// returning the codes and the common scale (`Z = 0`).
pub fn quantize_csr_symmetric(a: &CsrMatrix, bits: u8) -> (QuantCsr, f32) {
    // An empty matrix (all-isolated graph) would fold to (+inf, −inf) and
    // poison the scale; any positive amplitude quantizes zero entries fine.
    let (lo, hi) = if a.nnz() == 0 {
        (0.0, 0.0)
    } else {
        (
            a.values().iter().copied().fold(f32::INFINITY, f32::min),
            a.values().iter().copied().fold(f32::NEG_INFINITY, f32::max),
        )
    };
    let qp = QuantParams::symmetric(lo, hi, bits.min(16));
    (
        QuantCsr::from_csr(a, bits, |_, _, v| qp.quantize(v)),
        qp.scale,
    )
}

/// Exports a [`GcnSnapshot`] from a trained [`crate::QGcnNet`]'s quantizers
/// and weights. Only native (per-tensor) quantizers are supported — the
/// engine's scope matches the paper's integer execution path.
pub fn snapshot_qgcn(net: &crate::QGcnNet, ps: &ParamSet) -> MixqResult<GcnSnapshot> {
    net.snapshot(ps)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn multiplier_round_trips() {
        for real in [0.9, 0.5, 0.1, 0.013, 1e-4, 3.7] {
            let (m0, rshift) = quantize_multiplier(real);
            // Apply to a large accumulator and compare against f64 math.
            for acc in [1i64, -7, 123_456, -9_876_543] {
                let got = fixed_point_multiply(acc, m0, rshift);
                let want = (acc as f64 * real).round() as i64;
                assert!(
                    (got - want).abs() <= 1,
                    "real={real} acc={acc}: fixed={got} float={want}"
                );
            }
        }
    }

    #[test]
    fn int_matmul_matches_float_reference() {
        let x = Matrix::from_vec(2, 3, vec![0.5, -0.25, 0.75, -0.5, 0.25, 0.0]);
        let w = Matrix::from_vec(3, 2, vec![0.3, -0.6, 0.9, 0.1, -0.2, 0.4]);
        let x_qp = QuantParams::from_min_max(-1.0, 1.0, 8);
        let w_qp = QuantParams::symmetric(-1.0, 1.0, 8);
        let out_qp = QuantParams::from_min_max(-2.0, 2.0, 8);
        let xq = QTensor::quantize(&x, x_qp);
        let wq = QTensor::quantize(&w, w_qp);
        let bias = vec![0.1f32, -0.2];
        let got = int_matmul_requant(&xq, &wq, Some(&bias), out_qp).dequantize();

        // Float reference over the *fake-quantized* operands.
        let xf = x.map(|v| x_qp.fake(v));
        let wf = w.map(|v| w_qp.fake(v));
        let mut want = xf.matmul(&wf);
        for r in 0..2 {
            for (c, &bv) in bias.iter().enumerate() {
                let v = want.get(r, c) + bv;
                want.set(r, c, out_qp.fake(v));
            }
        }
        assert!(
            got.max_abs_diff(&want) <= out_qp.scale * 1.01,
            "max diff {} vs scale {}",
            got.max_abs_diff(&want),
            out_qp.scale
        );
    }

    #[test]
    fn qtensor_relu_uses_zero_point() {
        let qp = QuantParams::from_min_max(-1.0, 1.0, 8);
        let m = Matrix::from_vec(1, 3, vec![-0.5, 0.0, 0.5]);
        let mut q = QTensor::quantize(&m, qp);
        q.relu_inplace();
        let back = q.dequantize();
        assert_eq!(back.get(0, 0), 0.0, "negative values clamp to exact 0");
        assert_eq!(back.get(0, 1), 0.0);
        assert!((back.get(0, 2) - 0.5).abs() < qp.scale);
    }

    #[test]
    fn saturation_bounds_are_conservative_but_sane() {
        let x_qp = QuantParams::from_min_max(-1.0, 1.0, 8);
        let w_qp = QuantParams::symmetric(-1.0, 1.0, 8);
        // A realistic 8-bit layer sits far below the ceiling …
        let b = matmul_acc_bound(1024, &x_qp, &w_qp, Some(&[10.0]));
        assert!(b < ACC_SAT_LIMIT, "8-bit layer must not trip the fallback");
        // … but the bound still dominates the true worst case Σ|a||w|.
        assert!(b >= 1024 * 255 * 254);
        // An absurd inner dimension would cross it (analysis in i128, so
        // this cannot itself overflow).
        assert!(matmul_acc_bound(usize::MAX / 2, &x_qp, &w_qp, None) >= ACC_SAT_LIMIT);
    }

    #[test]
    fn quantize_csr_symmetric_preserves_structure() {
        use mixq_sparse::CooEntry;
        let a = CsrMatrix::from_coo(
            2,
            2,
            vec![
                CooEntry {
                    row: 0,
                    col: 1,
                    val: 0.5,
                },
                CooEntry {
                    row: 1,
                    col: 0,
                    val: 1.0,
                },
            ],
        );
        let (q, scale) = quantize_csr_symmetric(&a, 8);
        assert_eq!(q.nnz(), 2);
        assert!(scale > 0.0);
        // The largest value maps to qmax.
        assert_eq!(q.values().iter().copied().max(), Some(127));
    }
}

// ---- integer GraphSAGE -------------------------------------------------------

/// Quantization parameters of one GraphSAGE layer, exported from a trained
/// fixed-bit net.
#[derive(Debug, Clone)]
pub struct SageLayerSnapshot {
    pub w_root: Matrix,
    pub bias: Option<Vec<f32>>,
    pub w_neigh: Matrix,
    pub w_root_qp: QuantParams,
    pub w_neigh_qp: QuantParams,
    pub agg_qp: QuantParams,
    pub out_qp: QuantParams,
    pub adj_bits: u8,
}

/// Everything needed to run integer-only GraphSAGE inference.
#[derive(Debug, Clone)]
pub struct SageSnapshot {
    pub input_qp: QuantParams,
    pub layers: Vec<SageLayerSnapshot>,
}

/// `f32` stand-in for one saturating GraphSAGE layer (see [`GcnFallback`]).
struct SageFallback {
    wr_fake: Matrix,
    wn_fake: Matrix,
    adj_deq: CsrMatrix,
}

struct SageExecLayer {
    wr: QTensor,
    bias: Option<Vec<f32>>,
    wn: QTensor,
    agg_qp: QuantParams,
    out_qp: QuantParams,
    qadj: QuantCsr,
    adj_scale: f32,
    fallback: Option<SageFallback>,
}

/// Integer GraphSAGE executor: `y = clip(root + neigh − z_out)` where both
/// branches are requantized straight into the layer's output quantizer, so
/// the add is a plain integer add with one zero-point correction.
///
/// Relative to the fake-quantized training path (which adds in FP32 and
/// quantizes once), each branch rounds separately — a ≤1-LSB difference per
/// branch; prediction agreement is validated in the integration tests.
pub struct QuantizedSage {
    input_qp: QuantParams,
    layers: Vec<SageExecLayer>,
}

impl QuantizedSage {
    /// Prepares integer weights and the quantized mean-aggregator adjacency.
    pub fn prepare(snapshot: &SageSnapshot, adj_mean: &CsrMatrix) -> Self {
        let mut x_qp = snapshot.input_qp;
        let layers = snapshot
            .layers
            .iter()
            .enumerate()
            .map(|(i, l)| {
                let (qadj, adj_scale) = quantize_csr_symmetric(adj_mean, l.adj_bits);
                let bound =
                    matmul_acc_bound(l.w_root.rows(), &x_qp, &l.w_root_qp, l.bias.as_deref())
                        .max(matmul_acc_bound(
                            l.w_neigh.rows(),
                            &l.agg_qp,
                            &l.w_neigh_qp,
                            None,
                        ))
                        .max(spmm_acc_bound(&qadj, &x_qp));
                let fallback = layer_needs_fallback(i, bound).then(|| SageFallback {
                    wr_fake: l.w_root.map(|v| l.w_root_qp.fake(v)),
                    wn_fake: l.w_neigh.map(|v| l.w_neigh_qp.fake(v)),
                    adj_deq: dequantize_qcsr(&qadj, adj_scale),
                });
                x_qp = l.out_qp;
                SageExecLayer {
                    wr: QTensor::quantize(&l.w_root, l.w_root_qp),
                    bias: l.bias.clone(),
                    wn: QTensor::quantize(&l.w_neigh, l.w_neigh_qp),
                    agg_qp: l.agg_qp,
                    out_qp: l.out_qp,
                    qadj,
                    adj_scale,
                    fallback,
                }
            })
            .collect();
        Self {
            input_qp: snapshot.input_qp,
            layers,
        }
    }

    /// Runs integer inference and returns dequantized logits.
    pub fn infer(&self, features: &Matrix) -> Matrix {
        let _span = mixq_telemetry::span("qinfer_sage/infer");
        let mut x = QTensor::quantize(features, self.input_qp);
        let last = self.layers.len() - 1;
        for (i, layer) in self.layers.iter().enumerate() {
            let t0 = mixq_telemetry::kernel_start();
            let mut y = match &layer.fallback {
                // Graceful f32 path for a layer whose integer accumulators
                // could saturate: same fake-quantized semantics, no i64 acc.
                Some(fb) => {
                    let xf = x.dequantize();
                    let agg = Matrix::from_vec(
                        fb.adj_deq.rows(),
                        xf.cols(),
                        fb.adj_deq.spmm(xf.data(), xf.cols()),
                    )
                    .map(|v| layer.agg_qp.fake(v));
                    let mut root = xf.matmul(&fb.wr_fake);
                    if let Some(b) = &layer.bias {
                        add_bias_rows(&mut root, b);
                    }
                    let root = root.map(|v| layer.out_qp.fake(v));
                    let neigh = agg.matmul(&fb.wn_fake).map(|v| layer.out_qp.fake(v));
                    let (lo, hi) = layer.out_qp.real_range();
                    let sum = root.zip(&neigh, |a, b| (a + b).clamp(lo, hi));
                    QTensor::quantize(&sum, layer.out_qp)
                }
                None => {
                    // Neighbour mean aggregation (Theorem 1, Z_a = 0).
                    let agg = aggregate_theorem1(&layer.qadj, layer.adj_scale, &x, layer.agg_qp);

                    // Both branches requantize directly into the output quantizer.
                    let root =
                        int_matmul_requant(&x, &layer.wr, layer.bias.as_deref(), layer.out_qp);
                    let neigh = int_matmul_requant(&agg, &layer.wn, None, layer.out_qp);
                    let z = layer.out_qp.zero_point as i64;
                    let data: Vec<i32> = root
                        .data
                        .iter()
                        .zip(neigh.data.iter())
                        .map(|(&a, &b)| {
                            (a as i64 + b as i64 - z)
                                .clamp(layer.out_qp.qmin as i64, layer.out_qp.qmax as i64)
                                as i32
                        })
                        .collect();
                    QTensor {
                        rows: root.rows,
                        cols: root.cols,
                        data,
                        qp: layer.out_qp,
                    }
                }
            };
            if i < last {
                y.relu_inplace();
            }
            mixq_telemetry::kernel_finish("qinfer.sage.layer", t0, (y.rows * y.cols) as u64);
            x = y;
        }
        x.dequantize()
    }

    /// Per-layer bit-widths of the frozen executor.
    pub fn bit_config(&self) -> Vec<LayerBits> {
        self.layers
            .iter()
            .map(|l| LayerBits {
                weight_bits: l.wr.qp.bits,
                activation_bits: l.out_qp.bits,
                adj_bits: l.qadj.bits(),
            })
            .collect()
    }
}

impl QuantizedModel for QuantizedSage {
    type Snapshot = SageSnapshot;

    fn prepare(snapshot: &SageSnapshot, adj: &CsrMatrix) -> Self {
        QuantizedSage::prepare(snapshot, adj)
    }

    fn infer(&self, features: &Matrix) -> Matrix {
        QuantizedSage::infer(self, features)
    }

    fn bit_config(&self) -> Vec<LayerBits> {
        QuantizedSage::bit_config(self)
    }
}

#[cfg(test)]
mod sage_tests {
    use super::*;
    use mixq_tensor::Rng;

    #[test]
    fn integer_sage_layer_matches_float_reference() {
        // One layer, hand-built snapshot, dense reference computed with the
        // fake-quantized operands.
        let mut rng = Rng::seed_from_u64(3);
        let n = 6;
        let (fin, fout) = (4, 3);
        let x = Matrix::from_fn(n, fin, |_, _| rng.normal() * 0.5);
        let mut entries = Vec::new();
        for i in 0..n {
            for j in 0..n {
                if i != j && rng.bernoulli(0.4) {
                    entries.push(mixq_sparse::CooEntry {
                        row: i,
                        col: j,
                        val: 1.0,
                    });
                }
            }
        }
        let adj = mixq_sparse::row_normalize(&CsrMatrix::from_coo(n, n, entries));
        let wr = Matrix::from_fn(fin, fout, |_, _| rng.normal() * 0.3);
        let wn = Matrix::from_fn(fin, fout, |_, _| rng.normal() * 0.3);

        let input_qp = QuantParams::from_min_max(-2.0, 2.0, 8);
        let w_qp = QuantParams::from_min_max(-1.0, 1.0, 8);
        let agg_qp = QuantParams::from_min_max(-2.0, 2.0, 8);
        let out_qp = QuantParams::from_min_max(-3.0, 3.0, 8);
        let snap = SageSnapshot {
            input_qp,
            layers: vec![SageLayerSnapshot {
                w_root: wr.clone(),
                bias: None,
                w_neigh: wn.clone(),
                w_root_qp: w_qp,
                w_neigh_qp: w_qp,
                agg_qp,
                out_qp,
                adj_bits: 8,
            }],
        };
        let engine = QuantizedSage::prepare(&snap, &adj);
        let got = engine.infer(&x);

        // FP reference over fake-quantized tensors (quantizing each branch
        // into out_qp as the engine does).
        let xf = x.map(|v| input_qp.fake(v));
        let (qadj, ascale) = quantize_csr_symmetric(&adj, 8);
        let adj_fake = adj.map_values(|r, c, _| {
            // Reconstruct the symmetric-quantized value of edge (r, c).
            let code = qadj
                .row(r)
                .find(|&(cc, _)| cc == c)
                .map(|(_, v)| v)
                .unwrap_or(0);
            code as f32 * ascale
        });
        let agg_f = Matrix::from_vec(n, fin, adj_fake.spmm(xf.data(), fin)).map(|v| agg_qp.fake(v));
        let root = xf.matmul(&wr.map(|v| w_qp.fake(v))).map(|v| out_qp.fake(v));
        let neigh = agg_f
            .matmul(&wn.map(|v| w_qp.fake(v)))
            .map(|v| out_qp.fake(v));
        let want = root.zip(&neigh, |a, b| {
            (a + b).clamp(
                out_qp.dequantize(out_qp.qmin),
                out_qp.dequantize(out_qp.qmax),
            )
        });
        // Each branch can differ by ≤1 LSB from the float reference.
        assert!(
            got.max_abs_diff(&want) <= 2.0 * out_qp.scale + 1e-5,
            "max diff {} vs scale {}",
            got.max_abs_diff(&want),
            out_qp.scale
        );
    }
}
