//! Per-component bit-width assignments.
//!
//! A quantized architecture is described by one bit-width per *component*
//! (§1): the inputs, the adjacency operators, the learnable parameters, and
//! the outputs of every function. Each architecture family exposes a schema
//! (ordered component names); a [`BitAssignment`] is a vector of bit-widths
//! aligned with that schema, which both the fixed-bit QAT nets and the
//! relaxed nets consume, so MixQ search output plugs directly into QAT
//! retraining.

use mixq_tensor::{MixqError, MixqResult, Rng};

/// Bit-widths for each named component of one architecture instance.
///
/// ```
/// use mixq_core::{gcn_schema, BitAssignment};
/// let mut a = BitAssignment::uniform(gcn_schema(2), 8);
/// a.set("l0.weight", 4);
/// assert_eq!(a.get("l0.weight"), 4);
/// assert_eq!(a.len(), 9); // the paper's 9 components for a 2-layer GCN
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct BitAssignment {
    pub names: Vec<String>,
    pub bits: Vec<u8>,
}

impl BitAssignment {
    pub fn uniform(names: Vec<String>, bits: u8) -> Self {
        let n = names.len();
        Self {
            names,
            bits: vec![bits; n],
        }
    }

    pub fn new(names: Vec<String>, bits: Vec<u8>) -> Self {
        assert_eq!(names.len(), bits.len(), "one bit-width per component");
        Self { names, bits }
    }

    /// Uniform-random assignment from `choices` (the Random baseline of the
    /// ablation, Table 10).
    pub fn random(names: Vec<String>, choices: &[u8], rng: &mut Rng) -> Self {
        let bits = (0..names.len())
            .map(|_| choices[rng.gen_range(choices.len())])
            .collect();
        Self { names, bits }
    }

    pub fn len(&self) -> usize {
        self.bits.len()
    }

    pub fn is_empty(&self) -> bool {
        self.bits.is_empty()
    }

    /// Unweighted mean bit-width (the element-weighted version lives in the
    /// cost model, which knows tensor sizes).
    pub fn simple_avg(&self) -> f64 {
        self.bits.iter().map(|&b| b as f64).sum::<f64>() / self.bits.len() as f64
    }

    /// Index of a component by name (panics if absent).
    pub fn index_of(&self, name: &str) -> usize {
        self.names
            .iter()
            .position(|n| n == name)
            .unwrap_or_else(|| panic!("no component named {name}"))
    }

    pub fn get(&self, name: &str) -> u8 {
        self.bits[self.index_of(name)]
    }

    pub fn set(&mut self, name: &str, bits: u8) {
        let i = self.index_of(name);
        self.bits[i] = bits;
    }

    /// Serializes as `name=bits` lines (saved next to model checkpoints).
    pub fn to_text(&self) -> String {
        self.names
            .iter()
            .zip(&self.bits)
            .map(|(n, b)| format!("{n}={b}\n"))
            .collect()
    }

    /// Parses the [`BitAssignment::to_text`] format.
    pub fn from_text(s: &str) -> MixqResult<Self> {
        let err = |detail: String| MixqError::parse("bit assignment", detail);
        let mut names = Vec::new();
        let mut bits = Vec::new();
        for (lineno, line) in s.lines().enumerate() {
            let line = line.trim();
            if line.is_empty() {
                continue;
            }
            let (name, b) = line
                .split_once('=')
                .ok_or_else(|| err(format!("line {lineno}: missing '='")))?;
            names.push(name.to_string());
            bits.push(
                b.trim()
                    .parse::<u8>()
                    .map_err(|e| err(format!("line {lineno}: bad bit-width: {e}")))?,
            );
        }
        if names.is_empty() {
            return Err(err("empty assignment".into()));
        }
        Ok(Self { names, bits })
    }
}

/// Schema of an `layers`-deep GCN: `input`, then per layer
/// `adj / weight / lin_out / agg_out`. A 2-layer GCN has the paper's 9
/// components (§1).
pub fn gcn_schema(layers: usize) -> Vec<String> {
    let mut names = vec!["input".to_string()];
    for l in 0..layers {
        for part in ["adj", "weight", "lin_out", "agg_out"] {
            names.push(format!("l{l}.{part}"));
        }
    }
    names
}

/// Schema of an `layers`-deep GraphSAGE: `input`, then per layer
/// `adj / w_root / w_neigh / agg / out`.
pub fn sage_schema(layers: usize) -> Vec<String> {
    let mut names = vec!["input".to_string()];
    for l in 0..layers {
        for part in ["adj", "w_root", "w_neigh", "agg", "out"] {
            names.push(format!("l{l}.{part}"));
        }
    }
    names
}

/// Schema of a GIN graph classifier: `input`, per layer
/// `adj / agg / w1 / h1 / w2 / h2` (two-linear MLP), then the readout head
/// `head.w1 / head.h1 / head.w2 / head.out`.
pub fn gin_graph_schema(layers: usize) -> Vec<String> {
    let mut names = vec!["input".to_string()];
    for l in 0..layers {
        for part in ["adj", "agg", "w1", "h1", "w2", "h2"] {
            names.push(format!("l{l}.{part}"));
        }
    }
    for part in ["head.w1", "head.h1", "head.w2", "head.out"] {
        names.push(part.to_string());
    }
    names
}

/// Schema of a GCN graph classifier (CSL's architecture): `input`, per layer
/// `adj / weight / lin_out / agg_out`, then `head.w / head.out`.
pub fn gcn_graph_schema(layers: usize) -> Vec<String> {
    let mut names = gcn_schema(layers);
    names.push("head.w".to_string());
    names.push("head.out".to_string());
    names
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn two_layer_gcn_has_nine_components() {
        // The paper's motivating example (§1): 9 components for 2-layer GCN.
        assert_eq!(gcn_schema(2).len(), 9);
        assert_eq!(gcn_schema(2)[0], "input");
        assert_eq!(gcn_schema(2)[4], "l0.agg_out");
    }

    #[test]
    fn uniform_and_accessors() {
        let mut a = BitAssignment::uniform(gcn_schema(2), 8);
        assert_eq!(a.simple_avg(), 8.0);
        a.set("l1.weight", 4);
        assert_eq!(a.get("l1.weight"), 4);
        assert_eq!(a.get("l0.weight"), 8);
    }

    #[test]
    fn random_uses_only_choices() {
        let mut rng = Rng::seed_from_u64(1);
        let a = BitAssignment::random(gcn_schema(3), &[2, 4, 8], &mut rng);
        assert!(a.bits.iter().all(|b| [2u8, 4, 8].contains(b)));
        assert_eq!(a.len(), 13);
        // With 13 draws from 3 choices, all-same is (1/3)^12 — astronomically
        // unlikely; treat as a determinism check for this seed.
        let b = BitAssignment::random(gcn_schema(3), &[2, 4, 8], &mut Rng::seed_from_u64(1));
        assert_eq!(a, b);
    }

    #[test]
    fn schemas_have_expected_sizes() {
        assert_eq!(sage_schema(2).len(), 11);
        assert_eq!(gin_graph_schema(5).len(), 1 + 30 + 4);
        assert_eq!(gcn_graph_schema(4).len(), 1 + 16 + 2);
    }

    #[test]
    fn text_round_trip() {
        let a = BitAssignment::new(gcn_schema(2), vec![8, 4, 2, 8, 4, 2, 8, 4, 2]);
        let b = BitAssignment::from_text(&a.to_text()).unwrap();
        assert_eq!(a, b);
        assert!(BitAssignment::from_text("").is_err());
        assert!(BitAssignment::from_text("input8").is_err());
        assert!(BitAssignment::from_text("input=lots").is_err());
    }

    #[test]
    #[should_panic(expected = "no component named")]
    fn unknown_component_panics() {
        BitAssignment::uniform(gcn_schema(1), 8).get("l9.weight");
    }
}

#[cfg(test)]
mod complexity_tests {
    use crate::{A2qQuantizer, RelaxedGcnNet};
    use mixq_nn::{GcnNet, ParamSet};
    use mixq_tensor::Rng;

    /// Table 1's space-complexity claim, verified on concrete counts: the
    /// relaxed MixQ architecture adds only O(components·|B|) parameters,
    /// while A²Q's per-node scheme adds O(n) per layer.
    #[test]
    fn parameter_overheads_match_table1() {
        let dims = [128usize, 64, 64, 16];
        let n_nodes = 10_000usize;
        let mut rng = Rng::seed_from_u64(0);

        let mut ps = ParamSet::new();
        let _ = GcnNet::new(&mut ps, &dims, 0.5, &mut rng);
        let fp32 = ps.num_scalars();

        let mut ps_r = ParamSet::new();
        let _ = RelaxedGcnNet::new(&mut ps_r, &dims, &[2, 4, 8], 0.5, &mut rng);
        let mixq = ps_r.num_scalars();
        let mixq_extra = mixq - fp32;
        // 3 layers × 4 quantizers + 1 input quantizer = 13 α-vectors of 3.
        assert_eq!(
            mixq_extra,
            13 * 3,
            "MixQ adds one α per (component, bit choice)"
        );

        let a2q_extra = A2qQuantizer::extra_params_for(n_nodes) * 3;
        assert!(
            a2q_extra > 100 * mixq_extra,
            "A²Q per-node overhead ({a2q_extra}) dwarfs MixQ's ({mixq_extra})"
        );
    }
}
