//! Range observers that turn activation/weight statistics into quantization
//! parameters during quantization-aware training.

use mixq_tensor::{Matrix, QuantParams};

/// Tracks the value range of a tensor across training iterations.
///
/// Two policies are provided:
/// * plain min/max with exponential moving average (`ema = 0` keeps the
///   running extrema, `0 < ema ≤ 1` smooths like standard QAT observers);
/// * percentile clipping ([`Observer::observe_percentile`]) as used by
///   Degree-Quant to reduce the variance of quantized aggregation outputs.
#[derive(Debug, Clone)]
pub struct Observer {
    min: f32,
    max: f32,
    mean: f32,
    var: f32,
    initialized: bool,
    /// EMA coefficient: `new = (1−ema)·old + ema·batch`. `1.0` = last batch.
    pub ema: f32,
}

impl Default for Observer {
    fn default() -> Self {
        Self::new()
    }
}

impl Observer {
    pub fn new() -> Self {
        Self {
            min: 0.0,
            max: 0.0,
            mean: 0.0,
            var: 0.0,
            initialized: false,
            ema: 0.05,
        }
    }

    pub fn with_ema(ema: f32) -> Self {
        Self { ema, ..Self::new() }
    }

    pub fn is_initialized(&self) -> bool {
        self.initialized
    }

    pub fn range(&self) -> (f32, f32) {
        (self.min, self.max)
    }

    fn update(&mut self, lo: f32, hi: f32) {
        // Without moment statistics, assume a uniform-ish spread so the
        // ACIQ clipping still has something to work with.
        let mean = 0.5 * (lo + hi);
        let var = ((hi - lo) / 4.0).powi(2);
        self.update_full(lo, hi, mean, var);
    }

    fn update_full(&mut self, lo: f32, hi: f32, mean: f32, var: f32) {
        if !self.initialized {
            self.min = lo;
            self.max = hi;
            self.mean = mean;
            self.var = var;
            self.initialized = true;
        } else {
            self.min = (1.0 - self.ema) * self.min + self.ema * lo;
            self.max = (1.0 - self.ema) * self.max + self.ema * hi;
            self.mean = (1.0 - self.ema) * self.mean + self.ema * mean;
            self.var = (1.0 - self.ema) * self.var + self.ema * var;
        }
    }

    /// Observes a batch: min/max plus mean/variance (for MSE-optimal
    /// clipping at low bit-widths).
    pub fn observe(&mut self, m: &Matrix) {
        let n = m.numel() as f32;
        let mean = m.sum() / n;
        let var = m
            .data()
            .iter()
            .map(|&v| (v - mean) * (v - mean))
            .sum::<f32>()
            / n;
        self.update_full(m.min(), m.max(), mean, var);
    }

    /// Observes an externally computed `[lo, hi]` range (per-row observers).
    pub fn update_range(&mut self, lo: f32, hi: f32) {
        self.update(lo, hi);
    }

    /// Observes the `pct`/`1−pct` percentiles of a batch (Degree-Quant's
    /// range policy; `pct` around 0.001–0.01).
    pub fn observe_percentile(&mut self, m: &Matrix, pct: f64) {
        assert!((0.0..0.5).contains(&pct));
        let mut vals: Vec<f32> = m.data().to_vec();
        vals.sort_unstable_by(|a, b| a.partial_cmp(b).unwrap());
        let n = vals.len();
        let lo_i = ((n as f64 * pct) as usize).min(n - 1);
        let hi_i = ((n as f64 * (1.0 - pct)) as usize).min(n - 1);
        self.update(vals[lo_i], vals[hi_i]);
    }

    /// ACIQ clipping multiplier (Banner et al.): the MSE-optimal clip value
    /// for a Gaussian is `c(b)·σ`. Wider than 8 bits ⇒ no statistical
    /// clipping (min/max covers).
    fn aciq_multiplier(bits: u8) -> Option<f32> {
        match bits {
            2 => Some(1.71),
            3 => Some(2.15),
            4 => Some(2.55),
            5 => Some(2.94),
            6 => Some(3.29),
            7 => Some(3.61),
            8 => Some(3.92),
            _ => None,
        }
    }

    /// Quantization parameters for this tensor at `bits`.
    ///
    /// Low bit-widths trade range for resolution: the range is clipped to
    /// the MSE-optimal `μ ± c(b)·σ` (ACIQ) instead of the raw min/max — a
    /// narrow quantizer that covered the full range would waste its few
    /// levels on outliers. This mirrors the paper's scale tuning (their
    /// S/Z are trained by gradient descent to the same effect) and is what
    /// makes the task loss genuinely prefer wide bit-widths during the
    /// relaxed search.
    pub fn qparams(&self, bits: u8, symmetric: bool) -> QuantParams {
        assert!(self.initialized, "observer has seen no data");
        let (mut lo, mut hi) = (self.min, self.max);
        if let Some(c) = Self::aciq_multiplier(bits) {
            let sd = self.var.max(0.0).sqrt();
            if sd > 0.0 {
                lo = lo.max(self.mean - c * sd);
                hi = hi.min(self.mean + c * sd);
            }
        }
        if symmetric {
            QuantParams::symmetric(lo, hi, bits)
        } else {
            QuantParams::from_min_max(lo, hi, bits)
        }
    }

    /// Quantization parameters from the raw observed range (no statistical
    /// clipping) — used by Degree-Quant, whose percentile observation *is*
    /// its clipping policy.
    pub fn qparams_minmax(&self, bits: u8, symmetric: bool) -> QuantParams {
        assert!(self.initialized, "observer has seen no data");
        if symmetric {
            QuantParams::symmetric(self.min, self.max, bits)
        } else {
            QuantParams::from_min_max(self.min, self.max, bits)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_observation_initializes() {
        let mut o = Observer::new();
        o.observe(&Matrix::from_vec(1, 3, vec![-2.0, 0.0, 5.0]));
        assert_eq!(o.range(), (-2.0, 5.0));
    }

    #[test]
    fn ema_smooths_towards_new_range() {
        let mut o = Observer::with_ema(0.5);
        o.observe(&Matrix::from_vec(1, 2, vec![0.0, 4.0]));
        o.observe(&Matrix::from_vec(1, 2, vec![0.0, 8.0]));
        let (_, hi) = o.range();
        assert!(
            (hi - 6.0).abs() < 1e-6,
            "EMA of 4 and 8 at 0.5 is 6, got {hi}"
        );
    }

    #[test]
    fn percentile_ignores_outliers() {
        let mut vals = vec![0.5f32; 998];
        vals.push(1000.0);
        vals.push(-1000.0);
        let m = Matrix::from_vec(1, 1000, vals);
        let mut full = Observer::new();
        full.observe(&m);
        let mut pct = Observer::new();
        pct.observe_percentile(&m, 0.01);
        assert_eq!(full.range().1, 1000.0);
        assert!(pct.range().1 < 1.0, "percentile must clip the outlier");
        assert!(pct.range().0 > -1.0);
    }

    #[test]
    fn qparams_cover_observed_range() {
        let mut o = Observer::new();
        o.observe(&Matrix::from_vec(1, 2, vec![-1.5, 3.0]));
        let qp = o.qparams(8, false);
        let (lo, hi) = qp.real_range();
        assert!(lo <= -1.5 + qp.scale && hi >= 3.0 - qp.scale);
        let sym = o.qparams(8, true);
        assert_eq!(sym.zero_point, 0);
    }

    #[test]
    #[should_panic(expected = "no data")]
    fn qparams_require_data() {
        Observer::new().qparams(8, false);
    }
}
