//! **MixQ-GNN core** — the paper's contribution.
//!
//! This crate implements mixed precision quantization for graph neural
//! networks as described in *"Efficient Mixed Precision Quantization in
//! Graph Neural Networks"* (ICDE 2025):
//!
//! * quantization-aware training machinery: range [`Observer`]s, the native
//!   [`FakeQuantizer`], and the structure-aware [`DqQuantizer`] /
//!   [`A2qQuantizer`] baselines;
//! * fixed-bit quantized architectures ([`QGcnNet`], [`QSageNet`],
//!   [`QGinGraphNet`], [`QGcnGraphNet`]) driven by per-component
//!   [`BitAssignment`]s;
//! * the relaxed (differentiable) architectures and the MixQ bit-width
//!   search of Algorithm 1 (`relaxed` / `search`);
//! * **Theorem 1**: exact quantized message passing with integer
//!   sparse-dense products (`theorem1`), and the fully-integer inference
//!   engine built on it (`qinfer`);
//! * the BitOPs / average-bits [`CostModel`] of §5.1.

pub mod bits;
pub mod cost;
pub mod lsq;
pub mod observer;
pub mod qat;
pub mod qinfer;
pub mod qnets;
pub mod quantizers;
pub mod relaxed;
pub mod search;
pub mod theorem1;

pub use bits::{gcn_graph_schema, gcn_schema, gin_graph_schema, sage_schema, BitAssignment};
pub use cost::{Component, CostModel, OpTerm};
pub use lsq::LsqQuantizer;
pub use observer::Observer;
pub use qat::{FakeQuantizer, RangePolicy};
pub use qinfer::{
    fixed_point_multiply, int_matmul_requant, quantize_csr_symmetric, quantize_multiplier,
    GcnLayerSnapshot, GcnSnapshot, LayerBits, QTensor, QuantizedGcn, QuantizedModel, QuantizedSage,
    SageLayerSnapshot, SageSnapshot,
};
pub use qnets::{
    gcn_cost_model, gcn_graph_cost_model, gin_graph_cost_model, quantize_adjacency,
    sage_cost_model, QGcnGraphNet, QGcnNet, QGinGraphNet, QSageNet,
};
pub use quantizers::{A2qQuantizer, DqQuantizer, NodeQuant, QuantKind};
pub use relaxed::{
    RelaxedAdjQuantizer, RelaxedGcnGraphNet, RelaxedGcnNet, RelaxedGinGraphNet, RelaxedQuantizer,
    RelaxedSageNet,
};
pub use search::{
    search_gcn_bits, search_gcn_graph_bits, search_gin_graph_bits, search_sage_bits, SearchConfig,
};
pub use theorem1::{quantized_matmul_dense, quantized_spmm, QmpParams};
