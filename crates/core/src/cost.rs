//! The efficiency metrics of §5.1: **BitOPs** and average bit-width.
//!
//! The architecture is regarded as a collection of functions; each function
//! executes a number of scalar operations at one common bit-width (mixed
//! precision *within* a function is not hardware-realizable, §1). Following
//! the paper's definition, the total is the bit-width-weighted sum of
//! operation counts:
//!
//! `BitOPs = Σ_f ops(f) · bits(f)`,  with `ops(f) = 2 · MACs(f)`
//! (one multiply + one add per MAC) and `bits(f)` the execution width —
//! the *maximum* of the operand widths, since the narrower operand must be
//! cast up ([26]).
//!
//! The "Bits" column of the paper's tables is the element-weighted average
//! bit-width over all quantized tensors (components).

/// One quantized tensor (component) of the architecture.
#[derive(Debug, Clone)]
pub struct Component {
    pub name: String,
    pub numel: u64,
    pub bits: u8,
}

/// One compute function (matmul / SpMM) with its execution bit-width.
#[derive(Debug, Clone)]
pub struct OpTerm {
    pub name: String,
    pub macs: u64,
    pub bits: u8,
}

/// Accumulates components and compute terms and reports the paper's metrics.
#[derive(Debug, Clone, Default)]
pub struct CostModel {
    pub components: Vec<Component>,
    pub ops: Vec<OpTerm>,
}

impl CostModel {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn add_component(&mut self, name: impl Into<String>, numel: u64, bits: u8) {
        self.components.push(Component {
            name: name.into(),
            numel,
            bits,
        });
    }

    /// Records a function executing `macs` multiply–accumulates whose
    /// operands have widths `ba` and `bb` (execution width = max).
    pub fn add_macs(&mut self, name: impl Into<String>, macs: u64, ba: u8, bb: u8) {
        self.ops.push(OpTerm {
            name: name.into(),
            macs,
            bits: ba.max(bb),
        });
    }

    /// Element-weighted average bit-width over all components.
    pub fn avg_bits(&self) -> f64 {
        let total: u64 = self.components.iter().map(|c| c.numel).sum();
        if total == 0 {
            return 0.0;
        }
        let weighted: f64 = self
            .components
            .iter()
            .map(|c| c.numel as f64 * c.bits as f64)
            .sum();
        weighted / total as f64
    }

    /// Total scalar operations (2 per MAC), independent of precision.
    pub fn total_ops(&self) -> u64 {
        self.ops.iter().map(|t| 2 * t.macs).sum()
    }

    /// Total bit operations.
    pub fn bit_ops(&self) -> f64 {
        self.ops
            .iter()
            .map(|t| 2.0 * t.macs as f64 * t.bits as f64)
            .sum()
    }

    /// BitOPs in units of 10⁹ (the "GBitOPs" column).
    pub fn gbit_ops(&self) -> f64 {
        self.bit_ops() / 1e9
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn avg_bits_is_element_weighted() {
        let mut c = CostModel::new();
        c.add_component("a", 100, 8);
        c.add_component("b", 300, 4);
        // (100·8 + 300·4) / 400 = 5
        assert!((c.avg_bits() - 5.0).abs() < 1e-12);
    }

    #[test]
    fn bitops_scale_linearly_with_width() {
        let mut fp = CostModel::new();
        fp.add_macs("mm", 1000, 32, 32);
        let mut q = CostModel::new();
        q.add_macs("mm", 1000, 8, 8);
        assert!(
            (fp.bit_ops() / q.bit_ops() - 4.0).abs() < 1e-12,
            "32→8 bits = 4× fewer BitOPs"
        );
        assert_eq!(fp.total_ops(), q.total_ops());
    }

    #[test]
    fn mixed_operand_widths_execute_at_max() {
        let mut c = CostModel::new();
        c.add_macs("spmm", 10, 4, 8);
        assert_eq!(c.ops[0].bits, 8, "narrow operand is cast up");
    }

    #[test]
    fn empty_model_is_zero() {
        let c = CostModel::new();
        assert_eq!(c.avg_bits(), 0.0);
        assert_eq!(c.bit_ops(), 0.0);
    }
}

#[cfg(test)]
mod model_level_tests {
    use crate::{gcn_cost_model, gcn_schema, BitAssignment};

    #[test]
    fn fp32_to_int8_gcn_reduces_bitops_four_fold() {
        // End-to-end sanity on the paper's headline metric: uniform INT8
        // costs exactly a quarter of FP32's bit operations (same op count).
        let dims = [128usize, 64, 7];
        let fp = gcn_cost_model(
            &BitAssignment::uniform(gcn_schema(2), 32),
            &dims,
            1000,
            5000,
        );
        let q8 = gcn_cost_model(&BitAssignment::uniform(gcn_schema(2), 8), &dims, 1000, 5000);
        assert_eq!(fp.total_ops(), q8.total_ops());
        assert!((fp.bit_ops() / q8.bit_ops() - 4.0).abs() < 1e-9);
        assert_eq!(q8.avg_bits(), 8.0);
    }

    #[test]
    fn mixed_assignment_cost_between_extremes() {
        let dims = [128usize, 64, 7];
        let mut a = BitAssignment::uniform(gcn_schema(2), 8);
        a.set("input", 2);
        a.set("l0.weight", 4);
        let cm = gcn_cost_model(&a, &dims, 1000, 5000);
        let q8 = gcn_cost_model(&BitAssignment::uniform(gcn_schema(2), 8), &dims, 1000, 5000);
        let q2 = gcn_cost_model(&BitAssignment::uniform(gcn_schema(2), 2), &dims, 1000, 5000);
        assert!(cm.bit_ops() < q8.bit_ops());
        assert!(cm.bit_ops() > q2.bit_ops());
        assert!(cm.avg_bits() < 8.0 && cm.avg_bits() > 2.0);
    }

    #[test]
    fn spmm_executes_at_max_of_adjacency_and_activation_width() {
        let dims = [16usize, 8, 4];
        let mut a = BitAssignment::uniform(gcn_schema(2), 8);
        a.set("l0.adj", 2); // narrow adjacency must be cast up to 8
        let cm = gcn_cost_model(&a, &dims, 100, 500);
        let spmm = cm.ops.iter().find(|t| t.name == "l0.spmm").unwrap();
        assert_eq!(spmm.bits, 8);
    }
}
