//! Node-feature quantizers: the native QAT quantizer plus the two
//! graph-structure-aware schemes the paper compares against and composes
//! with (Degree-Quant and an A²Q-style per-node quantizer).

use mixq_nn::Fwd;
use mixq_tensor::{Matrix, QuantParams, Var};

use crate::lsq::LsqQuantizer;
use crate::observer::Observer;
use crate::qat::{FakeQuantizer, RangePolicy};

/// Degree-Quant ([8]): during training, high in-degree nodes are
/// stochastically protected (kept FP32) with probability proportional to
/// their degree percentile, and quantization ranges use percentile clipping.
/// At inference everything is quantized.
#[derive(Debug, Clone)]
pub struct DqQuantizer {
    pub inner: FakeQuantizer,
    /// Per-node protection probability in `[p_min, p_max]`.
    pub protect: Vec<f32>,
}

impl DqQuantizer {
    /// Builds the protective mask from node in-degrees: the probability
    /// interpolates between `p_min` (lowest degree) and `p_max` (highest)
    /// by degree rank, as in the DQ paper.
    pub fn new(bits: u8, degrees: &[usize], p_min: f32, p_max: f32) -> Self {
        assert!(p_min <= p_max && p_max <= 1.0);
        let n = degrees.len();
        let mut order: Vec<usize> = (0..n).collect();
        order.sort_by_key(|&i| degrees[i]);
        let mut protect = vec![0f32; n];
        for (rank, &i) in order.iter().enumerate() {
            let t = if n > 1 {
                rank as f32 / (n - 1) as f32
            } else {
                0.0
            };
            protect[i] = p_min + t * (p_max - p_min);
        }
        let inner = FakeQuantizer::new(bits, false)
            .with_policy(RangePolicy::Percentile(0.001))
            .with_raw_range();
        Self { inner, protect }
    }

    pub fn forward(&mut self, f: &mut Fwd, x: Var) -> Var {
        if self.inner.is_identity() {
            return x;
        }
        let q = self.inner.forward(f, x);
        if !f.training {
            return q;
        }
        // Stochastic protection: y = m ⊙ x + (1−m) ⊙ q, row-wise mask.
        // Protection is a *node-level* mechanism; tensors whose rows are
        // not nodes (e.g. pooled per-graph embeddings) are quantized
        // without it.
        let (rows, cols) = f.tape.value(x).shape();
        if rows != self.protect.len() {
            return q;
        }
        let mut mask = Matrix::zeros(rows, cols);
        for r in 0..rows {
            if f.rng.bernoulli(self.protect[r] as f64) {
                mask.row_slice_mut(r).fill(1.0);
            }
        }
        let inv = mask.map(|v| 1.0 - v);
        let m = f.tape.constant(mask);
        let im = f.tape.constant(inv);
        let keep = f.tape.mul(x, m);
        let quant = f.tape.mul(q, im);
        f.tape.add(keep, quant)
    }
}

/// A²Q-style per-node quantization ([16]): nodes carry their own scale and
/// bit-width. Scales/bit-widths are keyed by *degree bucket* (⌊log₂ deg⌋),
/// which is how the original generalizes to unseen graphs ("a nearest
/// neighbor strategy … learning a fixed number of quantization parameters
/// and selecting the appropriate ones"). High in-degree nodes — the main
/// source of aggregation error — receive more bits, and the scheme pays the
/// `O(n)` per-node parameter/bookkeeping overhead that Table 1 attributes
/// to A²Q (see DESIGN.md, "Substitutions").
#[derive(Debug, Clone)]
pub struct A2qQuantizer {
    /// Bit-width for each degree bucket.
    pub bucket_bits: Vec<u8>,
    observers: Vec<Observer>,
    /// Degrees of the rows of the tensor currently being quantized; updated
    /// by the owning network per batch via [`A2qQuantizer::set_degrees`].
    degrees: Vec<usize>,
}

const A2Q_BUCKETS: usize = 16;

fn degree_bucket(deg: usize) -> usize {
    (usize::BITS - deg.leading_zeros()) as usize % A2Q_BUCKETS
}

impl A2qQuantizer {
    /// Allocates bucket bit-widths from a degree sample: buckets above the
    /// 90th degree percentile get `hi` bits, above the 60th get `mid`, the
    /// rest `lo`.
    pub fn new(sample_degrees: &[usize], lo: u8, mid: u8, hi: u8) -> Self {
        assert!(!sample_degrees.is_empty());
        let mut sorted = sample_degrees.to_vec();
        sorted.sort_unstable();
        let p60 = sorted[(sorted.len() * 60) / 100];
        let p90 = sorted[(sorted.len() * 90) / 100];
        let bucket_bits = (0..A2Q_BUCKETS)
            .map(|b| {
                // Largest degree the bucket covers: 2^b − 1.
                let upper = (1usize << b).saturating_sub(1);
                if upper > p90 {
                    hi
                } else if upper > p60 {
                    mid
                } else {
                    lo
                }
            })
            .collect();
        Self {
            bucket_bits,
            observers: vec![Observer::new(); A2Q_BUCKETS],
            degrees: sample_degrees.to_vec(),
        }
    }

    /// Sets the per-row degrees for the next batch (node count may differ
    /// between train and evaluation batches in graph-level tasks).
    pub fn set_degrees(&mut self, degrees: &[usize]) {
        self.degrees = degrees.to_vec();
    }

    /// Per-node bit-width under the current degrees.
    pub fn bits_per_node(&self) -> Vec<u8> {
        self.degrees
            .iter()
            .map(|&d| self.bucket_bits[degree_bucket(d)])
            .collect()
    }

    /// Average bit-width over nodes (the "Bits" this scheme reports).
    pub fn avg_bits(&self) -> f64 {
        let bits = self.bits_per_node();
        bits.iter().map(|&b| b as f64).sum::<f64>() / bits.len() as f64
    }

    /// FP32 quantization parameters this scheme logically stores: one scale
    /// and one zero-point *per node* (Table 1's `O(n·l)` space term).
    pub fn extra_params_for(n: usize) -> usize {
        2 * n
    }

    pub fn forward(&mut self, f: &mut Fwd, x: Var) -> Var {
        let xm = f.tape.value(x);
        let rows = xm.rows();
        assert_eq!(rows, self.degrees.len(), "set_degrees before forward");
        if f.training || !self.observers.iter().any(|o| o.is_initialized()) {
            for r in 0..rows {
                let row = xm.row_slice(r);
                let lo = row.iter().copied().fold(f32::INFINITY, f32::min);
                let hi = row.iter().copied().fold(f32::NEG_INFINITY, f32::max);
                self.observers[degree_bucket(self.degrees[r])].update_range(lo, hi);
            }
        }
        let qps: Vec<QuantParams> = (0..rows)
            .map(|r| {
                let b = degree_bucket(self.degrees[r]);
                let obs = if self.observers[b].is_initialized() {
                    &self.observers[b]
                } else {
                    // Unseen bucket at eval: fall back to the nearest
                    // initialized bucket (the "nearest neighbor" strategy).
                    self.nearest_initialized(b)
                };
                obs.qparams(self.bucket_bits[b], false)
            })
            .collect();
        f.tape.fake_quant_rows(x, &qps)
    }

    fn nearest_initialized(&self, b: usize) -> &Observer {
        for d in 1..A2Q_BUCKETS {
            if b >= d && self.observers[b - d].is_initialized() {
                return &self.observers[b - d];
            }
            if b + d < A2Q_BUCKETS && self.observers[b + d].is_initialized() {
                return &self.observers[b + d];
            }
        }
        panic!("A2Q quantizer has observed no data");
    }
}

/// The node-activation quantizer used by a quantized architecture.
#[derive(Debug, Clone)]
pub enum NodeQuant {
    Native(FakeQuantizer),
    Dq(DqQuantizer),
    A2q(A2qQuantizer),
    Lsq(LsqQuantizer),
}

impl NodeQuant {
    pub fn forward(&mut self, f: &mut Fwd, x: Var) -> Var {
        match self {
            NodeQuant::Native(q) => q.forward(f, x),
            NodeQuant::Dq(q) => q.forward(f, x),
            NodeQuant::A2q(q) => q.forward(f, x),
            NodeQuant::Lsq(q) => q.forward(f, x),
        }
    }

    /// Updates the per-row degrees for quantizers that need them (A²Q);
    /// no-op for the others. Call before forwarding a batch whose node set
    /// differs from the one seen at construction.
    pub fn set_degrees(&mut self, degrees: &[usize]) {
        if let NodeQuant::A2q(q) = self {
            q.set_degrees(degrees);
        }
    }
}

/// Which quantizer family a quantized architecture instantiates for its
/// node-activation components (weights/adjacency always use the native
/// quantizer, matching the paper's setups).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum QuantKind {
    Native,
    /// Degree-Quant with the given protection probability range.
    Dq {
        p_min: f32,
        p_max: f32,
    },
    /// A²Q-style per-node quantization with the given lo/mid/hi bit tiers
    /// (the component's own bit-width is ignored for node activations).
    A2q {
        lo: u8,
        mid: u8,
        hi: u8,
    },
    /// LSQ: learnable scales trained by gradient descent.
    Lsq,
}

impl QuantKind {
    pub(crate) fn make(self, bits: u8, degrees: &[usize], ps: &mut mixq_nn::ParamSet) -> NodeQuant {
        match self {
            QuantKind::Native => NodeQuant::Native(FakeQuantizer::new(bits, false)),
            QuantKind::Dq { p_min, p_max } => {
                NodeQuant::Dq(DqQuantizer::new(bits, degrees, p_min, p_max))
            }
            QuantKind::A2q { lo, mid, hi } => {
                NodeQuant::A2q(A2qQuantizer::new(degrees, lo, mid, hi))
            }
            QuantKind::Lsq => NodeQuant::Lsq(LsqQuantizer::new(ps, bits)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mixq_nn::{Binding, ParamSet};
    use mixq_tensor::{Rng, Tape};

    fn run(q: &mut NodeQuant, x: Matrix, training: bool, seed: u64) -> Matrix {
        let ps = ParamSet::new();
        let mut tape = Tape::new();
        let mut binding = Binding::new();
        let mut rng = Rng::seed_from_u64(seed);
        let mut f = Fwd {
            tape: &mut tape,
            ps: &ps,
            binding: &mut binding,
            rng: &mut rng,
            training,
        };
        let xv = f.tape.constant(x);
        let y = q.forward(&mut f, xv);
        tape.value(y).clone()
    }

    #[test]
    fn dq_protection_increases_with_degree() {
        let degrees = vec![1, 5, 100, 2, 50];
        let dq = DqQuantizer::new(4, &degrees, 0.0, 1.0);
        assert!(
            dq.protect[2] > dq.protect[1],
            "higher degree ⇒ higher protection"
        );
        assert_eq!(dq.protect[2], 1.0);
        assert_eq!(dq.protect[0], 0.0);
    }

    #[test]
    fn dq_protected_rows_pass_through_in_training() {
        let degrees = vec![10usize; 4];
        // All nodes fully protected ⇒ training output equals input.
        let mut q = NodeQuant::Dq(DqQuantizer::new(2, &degrees, 1.0, 1.0));
        let x = Matrix::from_fn(4, 3, |r, c| (r * 3 + c) as f32 * 0.217);
        let y = run(&mut q, x.clone(), true, 1);
        assert_eq!(y, x);
        // At inference everything is quantized (low bits ⇒ visible error).
        let y_inf = run(&mut q, x.clone(), false, 1);
        assert!(y_inf.max_abs_diff(&x) > 1e-3);
    }

    #[test]
    fn a2q_allocates_more_bits_to_hubs() {
        let mut degrees = vec![1usize; 100];
        degrees[7] = 500;
        let q = A2qQuantizer::new(&degrees, 2, 4, 8);
        assert_eq!(q.bits_per_node()[7], 8);
        assert!(q.avg_bits() < 4.0);
        assert_eq!(A2qQuantizer::extra_params_for(100), 200);
    }

    #[test]
    fn a2q_rows_use_their_own_bits() {
        let degrees = vec![100, 1];
        let mut inner = A2qQuantizer::new(&[1, 1, 1, 1, 1, 1, 1, 1, 1, 100], 2, 4, 8);
        inner.set_degrees(&degrees);
        assert_eq!(inner.bits_per_node(), vec![8, 2]);
        let mut q = NodeQuant::A2q(inner);
        let x = Matrix::from_vec(2, 4, vec![0.1, 0.3, 0.7, 0.9, 0.1, 0.3, 0.7, 0.9]);
        let y = run(&mut q, x.clone(), true, 2);
        // Row 0 has 8 bits ⇒ small error; row 1 has 2 bits ⇒ large error.
        let e0: f32 = (0..4).map(|c| (y.get(0, c) - x.get(0, c)).abs()).sum();
        let e1: f32 = (0..4).map(|c| (y.get(1, c) - x.get(1, c)).abs()).sum();
        assert!(
            e1 > e0 * 4.0,
            "per-row bit-widths not applied: e0={e0}, e1={e1}"
        );
    }

    #[test]
    fn native_matches_fake_quantizer() {
        let mut q = NodeQuant::Native(FakeQuantizer::new(8, false));
        let x = Matrix::from_fn(3, 3, |r, c| (r as f32 - c as f32) * 0.37);
        let y = run(&mut q, x.clone(), true, 3);
        assert!(y.max_abs_diff(&x) < 0.01, "8-bit error should be small");
        assert!(y != x, "but not exactly zero");
    }
}
