//! Fixed-bit-width quantized architectures (QAT training path).
//!
//! Each net mirrors its FP32 counterpart in `mixq-nn` with a fake quantizer
//! on every component of its schema (see [`crate::bits`]). They implement
//! the same `NodeNet`/`GraphNet` traits, so the standard trainers apply, and
//! they expose a [`CostModel`] so tables can report Bits / GBitOPs.

use std::sync::Arc;

use mixq_nn::{Fwd, GraphBundle, GraphNet, Linear, Mlp, NodeBundle, NodeNet, ParamSet};
use mixq_sparse::CsrMatrix;
use mixq_tensor::{Matrix, MixqError, MixqResult, QuantParams, Rng, SpPair, Var};

use crate::bits::{gcn_graph_schema, gcn_schema, gin_graph_schema, sage_schema, BitAssignment};
use crate::cost::CostModel;
use crate::qat::FakeQuantizer;
use crate::quantizers::{NodeQuant, QuantKind};

/// Fake-quantizes the values of a sparse adjacency with a symmetric
/// quantizer (zero-point 0, so structural zeros stay exact — the property
/// Theorem 1's sparse integer path relies on). `bits ≥ 32` returns the
/// input unchanged.
pub fn quantize_adjacency(pair: &Arc<SpPair>, bits: u8) -> Arc<SpPair> {
    if bits >= 32 {
        return Arc::clone(pair);
    }
    let values = pair.a.values();
    let lo = values.iter().copied().fold(f32::INFINITY, f32::min);
    let hi = values.iter().copied().fold(f32::NEG_INFINITY, f32::max);
    let qp = QuantParams::symmetric(lo, hi, bits);
    let q: CsrMatrix = pair.a.map_values(|_, _, v| qp.fake(v));
    SpPair::new(q)
}

/// Caches the quantized adjacency per (layer, bits). Keyed by the source
/// `SpPair`'s address: node-level training reuses one adjacency for every
/// epoch (one quantization total), while graph-level tasks alternate
/// between train and evaluation batches (the cache re-quantizes whenever a
/// different batch arrives — a size-mismatch would otherwise follow).
#[derive(Debug, Clone, Default)]
struct AdjCache(Option<(*const CsrMatrix, Arc<SpPair>)>);

// The raw pointer is only used as a cache key, never dereferenced.
unsafe impl Send for AdjCache {}

impl AdjCache {
    fn get(&mut self, pair: &Arc<SpPair>, bits: u8) -> Arc<SpPair> {
        let key = Arc::as_ptr(&pair.a);
        match &self.0 {
            Some((k, cached)) if *k == key => Arc::clone(cached),
            _ => {
                let q = quantize_adjacency(pair, bits);
                self.0 = Some((key, Arc::clone(&q)));
                q
            }
        }
    }
}

/// Quantized linear transform: fake-quantizes the weight (STE keeps the
/// FP32 master trainable), multiplies, adds the (unquantized, as is
/// standard) bias.
pub(crate) fn qlinear(f: &mut Fwd, lin: &Linear, qw: &mut FakeQuantizer, x: Var) -> Var {
    let w = f.binding.bind(f.tape, f.ps, lin.w);
    let w = if qw.is_identity() {
        w
    } else {
        qw.forward(f, w)
    };
    let mut h = f.tape.matmul(x, w);
    if let Some(bias) = lin.b {
        let bv = f.binding.bind(f.tape, f.ps, bias);
        h = f.tape.add_bias(h, bv);
    }
    h
}

/// Extracts the per-tensor quantization parameters of a native quantizer,
/// or explains why the integer engine cannot execute this component.
fn native_qparams(context: &'static str, q: &NodeQuant) -> MixqResult<QuantParams> {
    match q {
        NodeQuant::Native(fq) if !fq.is_identity() => Ok(fq.qparams()),
        NodeQuant::Native(_) => Err(MixqError::config(
            context,
            "integer inference needs bits < 32",
        )),
        _ => Err(MixqError::config(
            context,
            "integer inference supports native quantizers only",
        )),
    }
}

// ---- quantized GCN ----------------------------------------------------------

struct QGcnLayer {
    lin: Linear,
    q_w: FakeQuantizer,
    q_lin_out: NodeQuant,
    q_agg_out: NodeQuant,
    adj_bits: u8,
    adj: AdjCache,
}

/// Quantized multi-layer GCN (schema: [`gcn_schema`]).
pub struct QGcnNet {
    pub assignment: BitAssignment,
    pub dims: Vec<usize>,
    q_input: NodeQuant,
    layers: Vec<QGcnLayer>,
    pub dropout: f32,
}

impl QGcnNet {
    /// `dims = [in, h…, classes]`; `assignment` must follow
    /// `gcn_schema(dims.len()-1)`. `degrees` (node in-degrees) parameterize
    /// the DQ/A²Q quantizers when `kind` requires them.
    pub fn new(
        ps: &mut ParamSet,
        dims: &[usize],
        assignment: BitAssignment,
        kind: QuantKind,
        degrees: &[usize],
        dropout: f32,
        rng: &mut Rng,
    ) -> MixqResult<Self> {
        let nlayers = dims.len() - 1;
        if assignment.names != gcn_schema(nlayers) {
            return Err(MixqError::config(
                "QGcnNet::new",
                format!("assignment does not follow gcn_schema({nlayers})"),
            ));
        }
        let q_input = kind.make(assignment.get("input"), degrees, ps);
        let layers = (0..nlayers)
            .map(|l| QGcnLayer {
                lin: Linear::new(ps, dims[l], dims[l + 1], rng),
                q_w: FakeQuantizer::new(assignment.get(&format!("l{l}.weight")), false),
                q_lin_out: kind.make(assignment.get(&format!("l{l}.lin_out")), degrees, ps),
                q_agg_out: kind.make(assignment.get(&format!("l{l}.agg_out")), degrees, ps),
                adj_bits: assignment.get(&format!("l{l}.adj")),
                adj: AdjCache::default(),
            })
            .collect();
        Ok(Self {
            assignment,
            dims: dims.to_vec(),
            q_input,
            layers,
            dropout,
        })
    }

    /// Cost model for a graph with `n` nodes and `nnz` (normalized)
    /// adjacency non-zeros.
    pub fn cost_model(&self, n: u64, nnz: u64) -> CostModel {
        gcn_cost_model(&self.assignment, &self.dims, n, nnz)
    }

    /// Exports the trained quantization parameters and weights for the
    /// integer inference engine (Fig. 5(iv)). Fails unless every component
    /// uses a native quantizer with bit-width < 32.
    pub fn snapshot(&self, ps: &ParamSet) -> MixqResult<crate::qinfer::GcnSnapshot> {
        let input_qp = native_qparams("QGcnNet::snapshot", &self.q_input)?;
        let layers = self
            .layers
            .iter()
            .map(|l| {
                Ok(crate::qinfer::GcnLayerSnapshot {
                    weight: ps.value(l.lin.w).clone(),
                    bias: l.lin.b.map(|b| ps.value(b).data().to_vec()),
                    w_qp: l.q_w.qparams(),
                    lin_qp: native_qparams("QGcnNet::snapshot", &l.q_lin_out)?,
                    agg_qp: native_qparams("QGcnNet::snapshot", &l.q_agg_out)?,
                    adj_bits: l.adj_bits,
                })
            })
            .collect::<MixqResult<_>>()?;
        Ok(crate::qinfer::GcnSnapshot { input_qp, layers })
    }
}

/// BitOPs/Bits cost of a (possibly quantized) multi-layer GCN under a
/// [`gcn_schema`] assignment. Works for FP32 too (uniform 32-bit).
pub fn gcn_cost_model(a: &BitAssignment, dims: &[usize], n: u64, nnz: u64) -> CostModel {
    let nlayers = dims.len() - 1;
    assert_eq!(a.names, gcn_schema(nlayers));
    {
        let mut cm = CostModel::new();
        cm.add_component("input", n * dims[0] as u64, a.get("input"));
        let mut in_bits = a.get("input");
        for l in 0..nlayers {
            let (din, dout) = (dims[l] as u64, dims[l + 1] as u64);
            let bw = a.get(&format!("l{l}.weight"));
            let blin = a.get(&format!("l{l}.lin_out"));
            let badj = a.get(&format!("l{l}.adj"));
            let bagg = a.get(&format!("l{l}.agg_out"));
            cm.add_component(format!("l{l}.weight"), din * dout, bw);
            cm.add_component(format!("l{l}.lin_out"), n * dout, blin);
            cm.add_component(format!("l{l}.adj"), nnz, badj);
            cm.add_component(format!("l{l}.agg_out"), n * dout, bagg);
            cm.add_macs(format!("l{l}.xw"), n * din * dout, in_bits, bw);
            cm.add_macs(format!("l{l}.spmm"), nnz * dout, badj, blin);
            in_bits = bagg;
        }
        cm
    }
}

impl NodeNet for QGcnNet {
    fn forward(&mut self, f: &mut Fwd, b: &NodeBundle, mut x: Var) -> Var {
        x = self.q_input.forward(f, x);
        let last = self.layers.len() - 1;
        for i in 0..self.layers.len() {
            let layer = &mut self.layers[i];
            x = f.tape.dropout(x, self.dropout, f.rng, f.training);
            // Quantized weight (STE lets gradients reach the FP32 master).
            let w = f.binding.bind(f.tape, f.ps, layer.lin.w);
            let wq = if layer.q_w.is_identity() {
                w
            } else {
                layer.q_w.forward(f, w)
            };
            let mut h = f.tape.matmul(x, wq);
            if let Some(bias) = layer.lin.b {
                let bv = f.binding.bind(f.tape, f.ps, bias);
                h = f.tape.add_bias(h, bv);
            }
            h = layer.q_lin_out.forward(f, h);
            let qadj = layer.adj.get(&b.norm, layer.adj_bits);
            let mut y = f.tape.spmm(&qadj, h);
            y = layer.q_agg_out.forward(f, y);
            if i < last {
                y = f.tape.relu(y);
            }
            x = y;
        }
        x
    }
}

// ---- quantized GraphSAGE ----------------------------------------------------

struct QSageLayer {
    lin_root: Linear,
    lin_neigh: Linear,
    q_w_root: FakeQuantizer,
    q_w_neigh: FakeQuantizer,
    q_agg: NodeQuant,
    q_out: NodeQuant,
    adj_bits: u8,
    adj: AdjCache,
}

/// Quantized multi-layer GraphSAGE (schema: [`sage_schema`]).
pub struct QSageNet {
    pub assignment: BitAssignment,
    pub dims: Vec<usize>,
    q_input: NodeQuant,
    layers: Vec<QSageLayer>,
    pub dropout: f32,
}

impl QSageNet {
    pub fn new(
        ps: &mut ParamSet,
        dims: &[usize],
        assignment: BitAssignment,
        kind: QuantKind,
        degrees: &[usize],
        dropout: f32,
        rng: &mut Rng,
    ) -> MixqResult<Self> {
        let nlayers = dims.len() - 1;
        if assignment.names != sage_schema(nlayers) {
            return Err(MixqError::config(
                "QSageNet::new",
                format!("assignment does not follow sage_schema({nlayers})"),
            ));
        }
        let q_input = kind.make(assignment.get("input"), degrees, ps);
        let layers = (0..nlayers)
            .map(|l| QSageLayer {
                lin_root: Linear::new(ps, dims[l], dims[l + 1], rng),
                lin_neigh: Linear::new_no_bias(ps, dims[l], dims[l + 1], rng),
                q_w_root: FakeQuantizer::new(assignment.get(&format!("l{l}.w_root")), false),
                q_w_neigh: FakeQuantizer::new(assignment.get(&format!("l{l}.w_neigh")), false),
                q_agg: kind.make(assignment.get(&format!("l{l}.agg")), degrees, ps),
                q_out: kind.make(assignment.get(&format!("l{l}.out")), degrees, ps),
                adj_bits: assignment.get(&format!("l{l}.adj")),
                adj: AdjCache::default(),
            })
            .collect();
        Ok(Self {
            assignment,
            dims: dims.to_vec(),
            q_input,
            layers,
            dropout,
        })
    }

    pub fn cost_model(&self, n: u64, nnz: u64) -> CostModel {
        sage_cost_model(&self.assignment, &self.dims, n, nnz)
    }

    /// Exports the trained quantization parameters and weights for the
    /// integer inference engine. Fails unless every component uses a native
    /// quantizer with bit-width < 32.
    pub fn snapshot(&self, ps: &ParamSet) -> MixqResult<crate::qinfer::SageSnapshot> {
        let input_qp = native_qparams("QSageNet::snapshot", &self.q_input)?;
        let layers = self
            .layers
            .iter()
            .map(|l| {
                Ok(crate::qinfer::SageLayerSnapshot {
                    w_root: ps.value(l.lin_root.w).clone(),
                    bias: l.lin_root.b.map(|b| ps.value(b).data().to_vec()),
                    w_neigh: ps.value(l.lin_neigh.w).clone(),
                    w_root_qp: l.q_w_root.qparams(),
                    w_neigh_qp: l.q_w_neigh.qparams(),
                    agg_qp: native_qparams("QSageNet::snapshot", &l.q_agg)?,
                    out_qp: native_qparams("QSageNet::snapshot", &l.q_out)?,
                    adj_bits: l.adj_bits,
                })
            })
            .collect::<MixqResult<_>>()?;
        Ok(crate::qinfer::SageSnapshot { input_qp, layers })
    }
}

/// BitOPs/Bits cost of a multi-layer GraphSAGE under a [`sage_schema`]
/// assignment.
pub fn sage_cost_model(a: &BitAssignment, dims: &[usize], n: u64, nnz: u64) -> CostModel {
    let nlayers = dims.len() - 1;
    assert_eq!(a.names, sage_schema(nlayers));
    {
        let mut cm = CostModel::new();
        cm.add_component("input", n * dims[0] as u64, a.get("input"));
        let mut in_bits = a.get("input");
        for l in 0..nlayers {
            let (din, dout) = (dims[l] as u64, dims[l + 1] as u64);
            let badj = a.get(&format!("l{l}.adj"));
            let bwr = a.get(&format!("l{l}.w_root"));
            let bwn = a.get(&format!("l{l}.w_neigh"));
            let bagg = a.get(&format!("l{l}.agg"));
            let bout = a.get(&format!("l{l}.out"));
            cm.add_component(format!("l{l}.adj"), nnz, badj);
            cm.add_component(format!("l{l}.w_root"), din * dout, bwr);
            cm.add_component(format!("l{l}.w_neigh"), din * dout, bwn);
            cm.add_component(format!("l{l}.agg"), n * din, bagg);
            cm.add_component(format!("l{l}.out"), n * dout, bout);
            cm.add_macs(format!("l{l}.spmm"), nnz * din, badj, in_bits);
            cm.add_macs(format!("l{l}.root"), n * din * dout, in_bits, bwr);
            cm.add_macs(format!("l{l}.neigh"), n * din * dout, bagg, bwn);
            in_bits = bout;
        }
        cm
    }
}

impl NodeNet for QSageNet {
    fn forward(&mut self, f: &mut Fwd, b: &NodeBundle, mut x: Var) -> Var {
        x = self.q_input.forward(f, x);
        let last = self.layers.len() - 1;
        for i in 0..self.layers.len() {
            let layer = &mut self.layers[i];
            x = f.tape.dropout(x, self.dropout, f.rng, f.training);
            let qadj = layer.adj.get(&b.mean, layer.adj_bits);
            let agg = f.tape.spmm(&qadj, x);
            let agg = layer.q_agg.forward(f, agg);

            let wr = f.binding.bind(f.tape, f.ps, layer.lin_root.w);
            let wr = if layer.q_w_root.is_identity() {
                wr
            } else {
                layer.q_w_root.forward(f, wr)
            };
            let mut root = f.tape.matmul(x, wr);
            if let Some(bias) = layer.lin_root.b {
                let bv = f.binding.bind(f.tape, f.ps, bias);
                root = f.tape.add_bias(root, bv);
            }
            let wn = f.binding.bind(f.tape, f.ps, layer.lin_neigh.w);
            let wn = if layer.q_w_neigh.is_identity() {
                wn
            } else {
                layer.q_w_neigh.forward(f, wn)
            };
            let neigh = f.tape.matmul(agg, wn);

            let mut y = f.tape.add(root, neigh);
            y = layer.q_out.forward(f, y);
            if i < last {
                y = f.tape.relu(y);
            }
            x = y;
        }
        x
    }
}

// ---- quantized GIN (graph classification) -----------------------------------

struct QGinLayer {
    mlp: Mlp,
    eps: mixq_nn::ParamId,
    q_agg: NodeQuant,
    q_w1: FakeQuantizer,
    q_h1: NodeQuant,
    q_w2: FakeQuantizer,
    q_h2: NodeQuant,
    adj_bits: u8,
}

/// Quantized GIN graph classifier (schema: [`gin_graph_schema`]):
/// `layers` GIN convolutions with 2-linear MLPs, global max pooling (the
/// paper's choice, to keep pooled values inside the quantization range),
/// then a quantized 2-linear head.
pub struct QGinGraphNet {
    pub assignment: BitAssignment,
    pub in_dim: usize,
    pub hidden: usize,
    pub classes: usize,
    q_input: NodeQuant,
    layers: Vec<QGinLayer>,
    head1: Linear,
    head2: Linear,
    q_head_w1: FakeQuantizer,
    q_head_h1: NodeQuant,
    q_head_w2: FakeQuantizer,
    q_head_out: NodeQuant,
    pub dropout: f32,
}

impl QGinGraphNet {
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        ps: &mut ParamSet,
        in_dim: usize,
        hidden: usize,
        classes: usize,
        nlayers: usize,
        assignment: BitAssignment,
        kind: QuantKind,
        degrees: &[usize],
        rng: &mut Rng,
    ) -> MixqResult<Self> {
        if assignment.names != gin_graph_schema(nlayers) {
            return Err(MixqError::config(
                "QGinGraphNet::new",
                format!("assignment does not follow gin_graph_schema({nlayers})"),
            ));
        }
        let q_input = kind.make(assignment.get("input"), degrees, ps);
        let layers = (0..nlayers)
            .map(|l| {
                let ind = if l == 0 { in_dim } else { hidden };
                QGinLayer {
                    mlp: Mlp::new(ps, &[ind, hidden, hidden], true, rng),
                    eps: ps.add_zeros(1, 1),
                    q_agg: kind.make(assignment.get(&format!("l{l}.agg")), degrees, ps),
                    q_w1: FakeQuantizer::new(assignment.get(&format!("l{l}.w1")), false),
                    q_h1: kind.make(assignment.get(&format!("l{l}.h1")), degrees, ps),
                    q_w2: FakeQuantizer::new(assignment.get(&format!("l{l}.w2")), false),
                    q_h2: kind.make(assignment.get(&format!("l{l}.h2")), degrees, ps),
                    adj_bits: assignment.get(&format!("l{l}.adj")),
                }
            })
            .collect();
        Ok(Self {
            q_head_w1: FakeQuantizer::new(assignment.get("head.w1"), false),
            q_head_h1: kind.make(assignment.get("head.h1"), degrees, ps),
            q_head_w2: FakeQuantizer::new(assignment.get("head.w2"), false),
            q_head_out: kind.make(assignment.get("head.out"), degrees, ps),
            assignment,
            in_dim,
            hidden,
            classes,
            q_input,
            layers,
            head1: Linear::new(ps, hidden, hidden, rng),
            head2: Linear::new(ps, hidden, classes, rng),
            dropout: 0.3,
        })
    }

    pub fn cost_model(&self, n: u64, nnz: u64, num_graphs: u64) -> CostModel {
        gin_graph_cost_model(
            &self.assignment,
            self.in_dim,
            self.hidden,
            self.classes,
            self.layers.len(),
            n,
            nnz,
            num_graphs,
        )
    }
}

/// BitOPs/Bits cost of the GIN graph classifier under a
/// [`gin_graph_schema`] assignment.
#[allow(clippy::too_many_arguments)]
pub fn gin_graph_cost_model(
    a: &BitAssignment,
    in_dim: usize,
    hidden: usize,
    classes: usize,
    nlayers: usize,
    n: u64,
    nnz: u64,
    num_graphs: u64,
) -> CostModel {
    assert_eq!(a.names, gin_graph_schema(nlayers));
    {
        let mut cm = CostModel::new();
        let h = hidden as u64;
        cm.add_component("input", n * in_dim as u64, a.get("input"));
        let mut in_bits = a.get("input");
        for l in 0..nlayers {
            let din = if l == 0 { in_dim as u64 } else { h };
            let badj = a.get(&format!("l{l}.adj"));
            let bagg = a.get(&format!("l{l}.agg"));
            let bw1 = a.get(&format!("l{l}.w1"));
            let bh1 = a.get(&format!("l{l}.h1"));
            let bw2 = a.get(&format!("l{l}.w2"));
            let bh2 = a.get(&format!("l{l}.h2"));
            cm.add_component(format!("l{l}.adj"), nnz, badj);
            cm.add_component(format!("l{l}.agg"), n * din, bagg);
            cm.add_component(format!("l{l}.w1"), din * h, bw1);
            cm.add_component(format!("l{l}.h1"), n * h, bh1);
            cm.add_component(format!("l{l}.w2"), h * h, bw2);
            cm.add_component(format!("l{l}.h2"), n * h, bh2);
            cm.add_macs(format!("l{l}.spmm"), nnz * din, badj, in_bits);
            cm.add_macs(format!("l{l}.lin1"), n * din * h, bagg.max(in_bits), bw1);
            cm.add_macs(format!("l{l}.lin2"), n * h * h, bh1, bw2);
            in_bits = bh2;
        }
        let g = num_graphs;
        let c = classes as u64;
        cm.add_component("head.w1", h * h, a.get("head.w1"));
        cm.add_component("head.h1", g * h, a.get("head.h1"));
        cm.add_component("head.w2", h * c, a.get("head.w2"));
        cm.add_component("head.out", g * c, a.get("head.out"));
        cm.add_macs("head.lin1", g * h * h, in_bits, a.get("head.w1"));
        cm.add_macs("head.lin2", g * h * c, a.get("head.h1"), a.get("head.w2"));
        cm
    }
}

impl GraphNet for QGinGraphNet {
    fn forward(&mut self, f: &mut Fwd, b: &GraphBundle, mut x: Var) -> Var {
        // Batches differ between train and eval; refresh degree-driven state.
        self.q_input.set_degrees(&b.degrees);
        for l in &mut self.layers {
            l.q_agg.set_degrees(&b.degrees);
            l.q_h1.set_degrees(&b.degrees);
            l.q_h2.set_degrees(&b.degrees);
        }
        let g = b.num_graphs();
        let graph_degrees = vec![1usize; g];
        self.q_head_h1.set_degrees(&graph_degrees);
        self.q_head_out.set_degrees(&graph_degrees);
        x = self.q_input.forward(f, x);
        for i in 0..self.layers.len() {
            // Split-borrow: MLP internals live in the layer struct.
            let adj_bits = self.layers[i].adj_bits;
            let qadj = quantize_adjacency(&b.raw, adj_bits);
            let agg = f.tape.spmm(&qadj, x);
            let agg = self.layers[i].q_agg.forward(f, agg);
            let eps = f.binding.bind(f.tape, f.ps, self.layers[i].eps);
            let one = f.tape.constant(Matrix::scalar(1.0));
            let one_eps = f.tape.add(one, eps);
            let scaled = f.tape.mul_scalar_var(x, one_eps);
            let comb = f.tape.add(scaled, agg);

            // MLP layer 1 (+ BN) → ReLU → quantize.
            let layer = &mut self.layers[i];
            let lin1 = layer.mlp.layers[0].clone();
            let mut h = qlinear(f, &lin1, &mut layer.q_w1, comb);
            if let Some(bn) = layer.mlp.norms[0].as_mut() {
                h = bn.forward(f, h);
            }
            h = f.tape.relu(h);
            h = layer.q_h1.forward(f, h);
            // MLP layer 2 → quantize.
            let lin2 = layer.mlp.layers[1].clone();
            let mut h2 = qlinear(f, &lin2, &mut layer.q_w2, h);
            h2 = layer.q_h2.forward(f, h2);
            x = f.tape.relu(h2);
        }
        let pooled = f.tape.global_max_pool(x, &b.offsets);
        let head1 = self.head1.clone();
        let mut h = qlinear(f, &head1, &mut self.q_head_w1, pooled);
        h = f.tape.relu(h);
        h = self.q_head_h1.forward(f, h);
        h = f.tape.dropout(h, self.dropout, f.rng, f.training);
        let head2 = self.head2.clone();
        let mut out = qlinear(f, &head2, &mut self.q_head_w2, h);
        out = self.q_head_out.forward(f, out);
        out
    }
}

// ---- quantized GCN graph classifier (CSL) ------------------------------------

/// Quantized GCN graph classifier (schema: [`gcn_graph_schema`]), the
/// 4-layer architecture of Table 9.
pub struct QGcnGraphNet {
    pub assignment: BitAssignment,
    pub in_dim: usize,
    pub hidden: usize,
    pub classes: usize,
    q_input: NodeQuant,
    layers: Vec<QGcnLayer>,
    head: Linear,
    q_head_w: FakeQuantizer,
    q_head_out: NodeQuant,
}

impl QGcnGraphNet {
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        ps: &mut ParamSet,
        in_dim: usize,
        hidden: usize,
        classes: usize,
        nlayers: usize,
        assignment: BitAssignment,
        kind: QuantKind,
        degrees: &[usize],
        rng: &mut Rng,
    ) -> MixqResult<Self> {
        if assignment.names != gcn_graph_schema(nlayers) {
            return Err(MixqError::config(
                "QGcnGraphNet::new",
                format!("assignment does not follow gcn_graph_schema({nlayers})"),
            ));
        }
        let q_input = kind.make(assignment.get("input"), degrees, ps);
        let layers = (0..nlayers)
            .map(|l| {
                let ind = if l == 0 { in_dim } else { hidden };
                QGcnLayer {
                    lin: Linear::new(ps, ind, hidden, rng),
                    q_w: FakeQuantizer::new(assignment.get(&format!("l{l}.weight")), false),
                    q_lin_out: kind.make(assignment.get(&format!("l{l}.lin_out")), degrees, ps),
                    q_agg_out: kind.make(assignment.get(&format!("l{l}.agg_out")), degrees, ps),
                    adj_bits: assignment.get(&format!("l{l}.adj")),
                    adj: AdjCache::default(),
                }
            })
            .collect();
        Ok(Self {
            q_head_w: FakeQuantizer::new(assignment.get("head.w"), false),
            q_head_out: kind.make(assignment.get("head.out"), degrees, ps),
            assignment,
            in_dim,
            hidden,
            classes,
            q_input,
            layers,
            head: Linear::new(ps, hidden, classes, rng),
        })
    }

    pub fn cost_model(&self, n: u64, nnz: u64, num_graphs: u64) -> CostModel {
        gcn_graph_cost_model(
            &self.assignment,
            self.in_dim,
            self.hidden,
            self.classes,
            self.layers.len(),
            n,
            nnz,
            num_graphs,
        )
    }
}

/// BitOPs/Bits cost of the GCN graph classifier under a
/// [`gcn_graph_schema`] assignment.
#[allow(clippy::too_many_arguments)]
pub fn gcn_graph_cost_model(
    a: &BitAssignment,
    in_dim: usize,
    hidden: usize,
    classes: usize,
    nlayers: usize,
    n: u64,
    nnz: u64,
    num_graphs: u64,
) -> CostModel {
    assert_eq!(a.names, gcn_graph_schema(nlayers));
    {
        let mut cm = CostModel::new();
        let h = hidden as u64;
        cm.add_component("input", n * in_dim as u64, a.get("input"));
        let mut in_bits = a.get("input");
        for l in 0..nlayers {
            let din = if l == 0 { in_dim as u64 } else { h };
            let bw = a.get(&format!("l{l}.weight"));
            let blin = a.get(&format!("l{l}.lin_out"));
            let badj = a.get(&format!("l{l}.adj"));
            let bagg = a.get(&format!("l{l}.agg_out"));
            cm.add_component(format!("l{l}.weight"), din * h, bw);
            cm.add_component(format!("l{l}.lin_out"), n * h, blin);
            cm.add_component(format!("l{l}.adj"), nnz, badj);
            cm.add_component(format!("l{l}.agg_out"), n * h, bagg);
            cm.add_macs(format!("l{l}.xw"), n * din * h, in_bits, bw);
            cm.add_macs(format!("l{l}.spmm"), nnz * h, badj, blin);
            in_bits = bagg;
        }
        let g = num_graphs;
        let c = classes as u64;
        cm.add_component("head.w", h * c, a.get("head.w"));
        cm.add_component("head.out", g * c, a.get("head.out"));
        cm.add_macs("head", g * h * c, in_bits, a.get("head.w"));
        cm
    }
}

impl GraphNet for QGcnGraphNet {
    fn forward(&mut self, f: &mut Fwd, b: &GraphBundle, mut x: Var) -> Var {
        self.q_input.set_degrees(&b.degrees);
        for l in &mut self.layers {
            l.q_lin_out.set_degrees(&b.degrees);
            l.q_agg_out.set_degrees(&b.degrees);
        }
        let graph_degrees = vec![1usize; b.num_graphs()];
        self.q_head_out.set_degrees(&graph_degrees);
        x = self.q_input.forward(f, x);
        for i in 0..self.layers.len() {
            let layer = &mut self.layers[i];
            let w = f.binding.bind(f.tape, f.ps, layer.lin.w);
            let wq = if layer.q_w.is_identity() {
                w
            } else {
                layer.q_w.forward(f, w)
            };
            let mut h = f.tape.matmul(x, wq);
            if let Some(bias) = layer.lin.b {
                let bv = f.binding.bind(f.tape, f.ps, bias);
                h = f.tape.add_bias(h, bv);
            }
            h = layer.q_lin_out.forward(f, h);
            let qadj = layer.adj.get(&b.norm, layer.adj_bits);
            let mut y = f.tape.spmm(&qadj, h);
            y = layer.q_agg_out.forward(f, y);
            x = f.tape.relu(y);
        }
        let pooled = f.tape.global_max_pool(x, &b.offsets);
        let head = self.head.clone();
        let mut out = qlinear(f, &head, &mut self.q_head_w, pooled);
        out = self.q_head_out.forward(f, out);
        out
    }
}
