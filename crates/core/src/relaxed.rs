//! Relaxed (differentiable) mixed precision architectures — §4.1.
//!
//! Every quantizer of the fixed-bit nets is replaced by a *relaxed*
//! quantizer holding one learnable logit α per candidate bit-width: the
//! forward pass outputs the softmax-weighted mixture of the candidate fake
//! quantizations (Eq. 6) and contributes a differentiable bit-cost term
//! `C(T)` (Eq. 8). Training the relaxed architecture with
//! `L + λ·Σ C(T_i)` tunes the α's; `argmax α` then yields the bit-width
//! assignment (Algorithm 1).

use std::sync::Arc;

use mixq_nn::{Fwd, GraphBundle, Linear, NodeBundle, ParamId, ParamSet};
use mixq_tensor::{softmax_slice, Matrix, QuantParams, Rng, SpPair, Var};

use crate::bits::{gcn_graph_schema, gcn_schema, gin_graph_schema, sage_schema, BitAssignment};
use crate::observer::Observer;
use crate::qnets::quantize_adjacency;

/// One relaxed quantizer over dense tensors (inputs, weights, function
/// outputs).
pub struct RelaxedQuantizer {
    pub alphas: ParamId,
    pub bit_choices: Vec<u8>,
    pub observer: Observer,
    pub symmetric: bool,
}

impl RelaxedQuantizer {
    pub fn new(ps: &mut ParamSet, bit_choices: &[u8], symmetric: bool) -> Self {
        assert!(!bit_choices.is_empty());
        Self {
            alphas: ps.add_zeros(1, bit_choices.len()),
            bit_choices: bit_choices.to_vec(),
            observer: Observer::new(),
            symmetric,
        }
    }

    /// Eq. 6 forward; pushes this tensor's `C(T)` term (and its element
    /// count, used for size normalization) onto `pens`.
    pub fn forward(&mut self, f: &mut Fwd, x: Var, pens: &mut Vec<(Var, usize)>) -> Var {
        if f.training || !self.observer.is_initialized() {
            self.observer.observe(f.tape.value(x));
        }
        let qps: Vec<QuantParams> = self
            .bit_choices
            .iter()
            .map(|&b| self.observer.qparams(b, self.symmetric))
            .collect();
        let av = f.bind(self.alphas);
        let numel = f.tape.value(x).numel();
        let y = f.tape.relaxed_fake_quant(x, av, &qps);
        let bits: Vec<f32> = self.bit_choices.iter().map(|&b| b as f32).collect();
        pens.push((f.tape.bit_penalty(av, &bits, numel), numel));
        y
    }

    /// The bit-width with the highest α (Algorithm 1 line 25).
    pub fn selected(&self, ps: &ParamSet) -> u8 {
        let a = ps.value(self.alphas).data();
        let mut best = 0usize;
        for i in 1..a.len() {
            if a[i] > a[best] {
                best = i;
            }
        }
        self.bit_choices[best]
    }

    /// Current softmax probabilities over the bit choices.
    pub fn probs(&self, ps: &ParamSet) -> Vec<f32> {
        softmax_slice(ps.value(self.alphas).data())
    }
}

/// Relaxed quantizer for a *sparse adjacency* operand. Because aggregation
/// is linear, the mixture `(Σ_i w_i Q_i(Â)) X` equals `Σ_i w_i (Q_i(Â) X)`,
/// so the forward computes one SpMM per candidate and mixes the results —
/// exactly the `×|B|` cost factor §4.2 attributes to the relaxed
/// architecture.
pub struct RelaxedAdjQuantizer {
    pub alphas: ParamId,
    pub bit_choices: Vec<u8>,
    cache: Vec<Option<Arc<SpPair>>>,
}

impl RelaxedAdjQuantizer {
    pub fn new(ps: &mut ParamSet, bit_choices: &[u8]) -> Self {
        Self {
            alphas: ps.add_zeros(1, bit_choices.len()),
            bit_choices: bit_choices.to_vec(),
            cache: vec![None; bit_choices.len()],
        }
    }

    /// Mixed quantized aggregation `Σ_i softmax(α)_i · Q_i(Â)·x`.
    pub fn forward(
        &mut self,
        f: &mut Fwd,
        pair: &Arc<SpPair>,
        x: Var,
        pens: &mut Vec<(Var, usize)>,
    ) -> Var {
        let k = self.bit_choices.len();
        for i in 0..k {
            if self.cache[i].is_none() {
                self.cache[i] = Some(quantize_adjacency(pair, self.bit_choices[i]));
            }
        }
        let av = f.bind(self.alphas);
        let logw = f.tape.log_softmax(av);
        let w = f.tape.exp(logw);
        let mut out: Option<Var> = None;
        for i in 0..k {
            let yi = f.tape.spmm(self.cache[i].as_ref().unwrap(), x);
            // w_i as a 1×1 var: ⟨w, e_i⟩.
            let onehot =
                f.tape
                    .constant(Matrix::from_fn(1, k, |_, c| if c == i { 1.0 } else { 0.0 }));
            let wi_vec = f.tape.mul(w, onehot);
            let wi = f.tape.sum_all(wi_vec);
            let term = f.tape.mul_scalar_var(yi, wi);
            out = Some(match out {
                Some(acc) => f.tape.add(acc, term),
                None => term,
            });
        }
        let bits: Vec<f32> = self.bit_choices.iter().map(|&b| b as f32).collect();
        pens.push((f.tape.bit_penalty(av, &bits, pair.a.nnz()), pair.a.nnz()));
        out.unwrap()
    }

    pub fn selected(&self, ps: &ParamSet) -> u8 {
        let a = ps.value(self.alphas).data();
        let mut best = 0usize;
        for i in 1..a.len() {
            if a[i] > a[best] {
                best = i;
            }
        }
        self.bit_choices[best]
    }
}

// ---- relaxed GCN (node classification) ---------------------------------------

struct RelaxedGcnLayer {
    lin: Linear,
    q_adj: RelaxedAdjQuantizer,
    q_w: RelaxedQuantizer,
    q_lin_out: RelaxedQuantizer,
    q_agg_out: RelaxedQuantizer,
}

/// Relaxed multi-layer GCN. Its quantizer order follows [`gcn_schema`], so
/// [`RelaxedGcnNet::extract`] produces a [`BitAssignment`] the fixed-bit
/// [`crate::QGcnNet`] accepts directly.
pub struct RelaxedGcnNet {
    pub dims: Vec<usize>,
    q_input: RelaxedQuantizer,
    layers: Vec<RelaxedGcnLayer>,
    pub dropout: f32,
}

impl RelaxedGcnNet {
    pub fn new(
        ps: &mut ParamSet,
        dims: &[usize],
        bit_choices: &[u8],
        dropout: f32,
        rng: &mut Rng,
    ) -> Self {
        let nlayers = dims.len() - 1;
        let q_input = RelaxedQuantizer::new(ps, bit_choices, false);
        let layers = (0..nlayers)
            .map(|l| RelaxedGcnLayer {
                lin: Linear::new(ps, dims[l], dims[l + 1], rng),
                q_adj: RelaxedAdjQuantizer::new(ps, bit_choices),
                q_w: RelaxedQuantizer::new(ps, bit_choices, false),
                q_lin_out: RelaxedQuantizer::new(ps, bit_choices, false),
                q_agg_out: RelaxedQuantizer::new(ps, bit_choices, false),
            })
            .collect();
        Self {
            dims: dims.to_vec(),
            q_input,
            layers,
            dropout,
        }
    }

    /// Forward pass returning `(logits, penalty terms)`.
    pub fn forward(&mut self, f: &mut Fwd, b: &NodeBundle, mut x: Var) -> (Var, Vec<(Var, usize)>) {
        let mut pens = Vec::new();
        x = self.q_input.forward(f, x, &mut pens);
        let last = self.layers.len() - 1;
        for i in 0..self.layers.len() {
            let layer = &mut self.layers[i];
            x = f.tape.dropout(x, self.dropout, f.rng, f.training);
            let w = f.binding.bind(f.tape, f.ps, layer.lin.w);
            let wq = layer.q_w.forward(f, w, &mut pens);
            let mut h = f.tape.matmul(x, wq);
            if let Some(bias) = layer.lin.b {
                let bv = f.binding.bind(f.tape, f.ps, bias);
                h = f.tape.add_bias(h, bv);
            }
            h = layer.q_lin_out.forward(f, h, &mut pens);
            let mut y = layer.q_adj.forward(f, &b.norm, h, &mut pens);
            y = layer.q_agg_out.forward(f, y, &mut pens);
            if i < last {
                y = f.tape.relu(y);
            }
            x = y;
        }
        (x, pens)
    }

    /// Argmax bit-widths in [`gcn_schema`] order.
    pub fn extract(&self, ps: &ParamSet) -> BitAssignment {
        let mut bits = vec![self.q_input.selected(ps)];
        for layer in &self.layers {
            bits.push(layer.q_adj.selected(ps));
            bits.push(layer.q_w.selected(ps));
            bits.push(layer.q_lin_out.selected(ps));
            bits.push(layer.q_agg_out.selected(ps));
        }
        BitAssignment::new(gcn_schema(self.layers.len()), bits)
    }

    /// ParamIds of every α vector (frozen during search warm-up).
    pub fn alpha_ids(&self) -> Vec<ParamId> {
        let mut ids = vec![self.q_input.alphas];
        for layer in &self.layers {
            ids.extend([
                layer.q_adj.alphas,
                layer.q_w.alphas,
                layer.q_lin_out.alphas,
                layer.q_agg_out.alphas,
            ]);
        }
        ids
    }
}

// ---- relaxed GraphSAGE (node classification) ----------------------------------

struct RelaxedSageLayer {
    lin_root: Linear,
    lin_neigh: Linear,
    q_adj: RelaxedAdjQuantizer,
    q_w_root: RelaxedQuantizer,
    q_w_neigh: RelaxedQuantizer,
    q_agg: RelaxedQuantizer,
    q_out: RelaxedQuantizer,
}

/// Relaxed GraphSAGE; extraction follows [`sage_schema`].
pub struct RelaxedSageNet {
    pub dims: Vec<usize>,
    q_input: RelaxedQuantizer,
    layers: Vec<RelaxedSageLayer>,
    pub dropout: f32,
}

impl RelaxedSageNet {
    pub fn new(
        ps: &mut ParamSet,
        dims: &[usize],
        bit_choices: &[u8],
        dropout: f32,
        rng: &mut Rng,
    ) -> Self {
        let nlayers = dims.len() - 1;
        let q_input = RelaxedQuantizer::new(ps, bit_choices, false);
        let layers = (0..nlayers)
            .map(|l| RelaxedSageLayer {
                lin_root: Linear::new(ps, dims[l], dims[l + 1], rng),
                lin_neigh: Linear::new_no_bias(ps, dims[l], dims[l + 1], rng),
                q_adj: RelaxedAdjQuantizer::new(ps, bit_choices),
                q_w_root: RelaxedQuantizer::new(ps, bit_choices, false),
                q_w_neigh: RelaxedQuantizer::new(ps, bit_choices, false),
                q_agg: RelaxedQuantizer::new(ps, bit_choices, false),
                q_out: RelaxedQuantizer::new(ps, bit_choices, false),
            })
            .collect();
        Self {
            dims: dims.to_vec(),
            q_input,
            layers,
            dropout,
        }
    }

    pub fn forward(&mut self, f: &mut Fwd, b: &NodeBundle, mut x: Var) -> (Var, Vec<(Var, usize)>) {
        let mut pens = Vec::new();
        x = self.q_input.forward(f, x, &mut pens);
        let last = self.layers.len() - 1;
        for i in 0..self.layers.len() {
            let layer = &mut self.layers[i];
            x = f.tape.dropout(x, self.dropout, f.rng, f.training);
            let agg = layer.q_adj.forward(f, &b.mean, x, &mut pens);
            let agg = layer.q_agg.forward(f, agg, &mut pens);

            let wr = f.binding.bind(f.tape, f.ps, layer.lin_root.w);
            let wr = layer.q_w_root.forward(f, wr, &mut pens);
            let mut root = f.tape.matmul(x, wr);
            if let Some(bias) = layer.lin_root.b {
                let bv = f.binding.bind(f.tape, f.ps, bias);
                root = f.tape.add_bias(root, bv);
            }
            let wn = f.binding.bind(f.tape, f.ps, layer.lin_neigh.w);
            let wn = layer.q_w_neigh.forward(f, wn, &mut pens);
            let neigh = f.tape.matmul(agg, wn);

            let mut y = f.tape.add(root, neigh);
            y = layer.q_out.forward(f, y, &mut pens);
            if i < last {
                y = f.tape.relu(y);
            }
            x = y;
        }
        (x, pens)
    }

    pub fn extract(&self, ps: &ParamSet) -> BitAssignment {
        let mut bits = vec![self.q_input.selected(ps)];
        for layer in &self.layers {
            bits.push(layer.q_adj.selected(ps));
            bits.push(layer.q_w_root.selected(ps));
            bits.push(layer.q_w_neigh.selected(ps));
            bits.push(layer.q_agg.selected(ps));
            bits.push(layer.q_out.selected(ps));
        }
        BitAssignment::new(sage_schema(self.layers.len()), bits)
    }

    /// ParamIds of every α vector (frozen during search warm-up).
    pub fn alpha_ids(&self) -> Vec<ParamId> {
        let mut ids = vec![self.q_input.alphas];
        for layer in &self.layers {
            ids.extend([
                layer.q_adj.alphas,
                layer.q_w_root.alphas,
                layer.q_w_neigh.alphas,
                layer.q_agg.alphas,
                layer.q_out.alphas,
            ]);
        }
        ids
    }
}

// ---- relaxed GIN (graph classification) ---------------------------------------

struct RelaxedGinLayer {
    mlp: mixq_nn::Mlp,
    eps: ParamId,
    q_adj: RelaxedAdjQuantizer,
    q_agg: RelaxedQuantizer,
    q_w1: RelaxedQuantizer,
    q_h1: RelaxedQuantizer,
    q_w2: RelaxedQuantizer,
    q_h2: RelaxedQuantizer,
}

/// Relaxed GIN graph classifier; extraction follows [`gin_graph_schema`].
pub struct RelaxedGinGraphNet {
    pub hidden: usize,
    q_input: RelaxedQuantizer,
    layers: Vec<RelaxedGinLayer>,
    head1: Linear,
    head2: Linear,
    q_head_w1: RelaxedQuantizer,
    q_head_h1: RelaxedQuantizer,
    q_head_w2: RelaxedQuantizer,
    q_head_out: RelaxedQuantizer,
    pub dropout: f32,
}

impl RelaxedGinGraphNet {
    pub fn new(
        ps: &mut ParamSet,
        in_dim: usize,
        hidden: usize,
        classes: usize,
        nlayers: usize,
        bit_choices: &[u8],
        rng: &mut Rng,
    ) -> Self {
        let q_input = RelaxedQuantizer::new(ps, bit_choices, false);
        let layers = (0..nlayers)
            .map(|l| {
                let ind = if l == 0 { in_dim } else { hidden };
                RelaxedGinLayer {
                    mlp: mixq_nn::Mlp::new(ps, &[ind, hidden, hidden], true, rng),
                    eps: ps.add_zeros(1, 1),
                    q_adj: RelaxedAdjQuantizer::new(ps, bit_choices),
                    q_agg: RelaxedQuantizer::new(ps, bit_choices, false),
                    q_w1: RelaxedQuantizer::new(ps, bit_choices, false),
                    q_h1: RelaxedQuantizer::new(ps, bit_choices, false),
                    q_w2: RelaxedQuantizer::new(ps, bit_choices, false),
                    q_h2: RelaxedQuantizer::new(ps, bit_choices, false),
                }
            })
            .collect();
        Self {
            hidden,
            q_input,
            layers,
            head1: Linear::new(ps, hidden, hidden, rng),
            head2: Linear::new(ps, hidden, classes, rng),
            q_head_w1: RelaxedQuantizer::new(ps, bit_choices, false),
            q_head_h1: RelaxedQuantizer::new(ps, bit_choices, false),
            q_head_w2: RelaxedQuantizer::new(ps, bit_choices, false),
            q_head_out: RelaxedQuantizer::new(ps, bit_choices, false),
            dropout: 0.3,
        }
    }

    fn rlinear(
        f: &mut Fwd,
        lin: &Linear,
        qw: &mut RelaxedQuantizer,
        x: Var,
        pens: &mut Vec<(Var, usize)>,
    ) -> Var {
        let w = f.binding.bind(f.tape, f.ps, lin.w);
        let w = qw.forward(f, w, pens);
        let mut h = f.tape.matmul(x, w);
        if let Some(bias) = lin.b {
            let bv = f.binding.bind(f.tape, f.ps, bias);
            h = f.tape.add_bias(h, bv);
        }
        h
    }

    pub fn forward(
        &mut self,
        f: &mut Fwd,
        b: &GraphBundle,
        mut x: Var,
    ) -> (Var, Vec<(Var, usize)>) {
        let mut pens = Vec::new();
        x = self.q_input.forward(f, x, &mut pens);
        for i in 0..self.layers.len() {
            let layer = &mut self.layers[i];
            let agg = layer.q_adj.forward(f, &b.raw, x, &mut pens);
            let agg = layer.q_agg.forward(f, agg, &mut pens);
            let eps = f.binding.bind(f.tape, f.ps, layer.eps);
            let one = f.tape.constant(Matrix::scalar(1.0));
            let one_eps = f.tape.add(one, eps);
            let scaled = f.tape.mul_scalar_var(x, one_eps);
            let comb = f.tape.add(scaled, agg);

            let lin1 = layer.mlp.layers[0].clone();
            let mut h = Self::rlinear(f, &lin1, &mut layer.q_w1, comb, &mut pens);
            if let Some(bn) = layer.mlp.norms[0].as_mut() {
                h = bn.forward(f, h);
            }
            h = f.tape.relu(h);
            h = layer.q_h1.forward(f, h, &mut pens);
            let lin2 = layer.mlp.layers[1].clone();
            let mut h2 = Self::rlinear(f, &lin2, &mut layer.q_w2, h, &mut pens);
            h2 = layer.q_h2.forward(f, h2, &mut pens);
            x = f.tape.relu(h2);
        }
        let pooled = f.tape.global_max_pool(x, &b.offsets);
        let head1 = self.head1.clone();
        let mut h = Self::rlinear(f, &head1, &mut self.q_head_w1, pooled, &mut pens);
        h = f.tape.relu(h);
        h = self.q_head_h1.forward(f, h, &mut pens);
        h = f.tape.dropout(h, self.dropout, f.rng, f.training);
        let head2 = self.head2.clone();
        let mut out = Self::rlinear(f, &head2, &mut self.q_head_w2, h, &mut pens);
        out = self.q_head_out.forward(f, out, &mut pens);
        (out, pens)
    }

    pub fn extract(&self, ps: &ParamSet) -> BitAssignment {
        let mut bits = vec![self.q_input.selected(ps)];
        for layer in &self.layers {
            bits.push(layer.q_adj.selected(ps));
            bits.push(layer.q_agg.selected(ps));
            bits.push(layer.q_w1.selected(ps));
            bits.push(layer.q_h1.selected(ps));
            bits.push(layer.q_w2.selected(ps));
            bits.push(layer.q_h2.selected(ps));
        }
        for q in [
            &self.q_head_w1,
            &self.q_head_h1,
            &self.q_head_w2,
            &self.q_head_out,
        ] {
            bits.push(q.selected(ps));
        }
        BitAssignment::new(gin_graph_schema(self.layers.len()), bits)
    }

    /// ParamIds of every α vector (frozen during search warm-up).
    pub fn alpha_ids(&self) -> Vec<ParamId> {
        let mut ids = vec![self.q_input.alphas];
        for layer in &self.layers {
            ids.extend([
                layer.q_adj.alphas,
                layer.q_agg.alphas,
                layer.q_w1.alphas,
                layer.q_h1.alphas,
                layer.q_w2.alphas,
                layer.q_h2.alphas,
            ]);
        }
        ids.extend([
            self.q_head_w1.alphas,
            self.q_head_h1.alphas,
            self.q_head_w2.alphas,
            self.q_head_out.alphas,
        ]);
        ids
    }
}

// ---- relaxed GCN graph classifier (CSL) ----------------------------------------

struct RelaxedGcnGraphLayer {
    lin: Linear,
    q_adj: RelaxedAdjQuantizer,
    q_w: RelaxedQuantizer,
    q_lin_out: RelaxedQuantizer,
    q_agg_out: RelaxedQuantizer,
}

/// Relaxed GCN graph classifier; extraction follows [`gcn_graph_schema`].
pub struct RelaxedGcnGraphNet {
    pub hidden: usize,
    q_input: RelaxedQuantizer,
    layers: Vec<RelaxedGcnGraphLayer>,
    head: Linear,
    q_head_w: RelaxedQuantizer,
    q_head_out: RelaxedQuantizer,
}

impl RelaxedGcnGraphNet {
    pub fn new(
        ps: &mut ParamSet,
        in_dim: usize,
        hidden: usize,
        classes: usize,
        nlayers: usize,
        bit_choices: &[u8],
        rng: &mut Rng,
    ) -> Self {
        let q_input = RelaxedQuantizer::new(ps, bit_choices, false);
        let layers = (0..nlayers)
            .map(|l| {
                let ind = if l == 0 { in_dim } else { hidden };
                RelaxedGcnGraphLayer {
                    lin: Linear::new(ps, ind, hidden, rng),
                    q_adj: RelaxedAdjQuantizer::new(ps, bit_choices),
                    q_w: RelaxedQuantizer::new(ps, bit_choices, false),
                    q_lin_out: RelaxedQuantizer::new(ps, bit_choices, false),
                    q_agg_out: RelaxedQuantizer::new(ps, bit_choices, false),
                }
            })
            .collect();
        Self {
            hidden,
            q_input,
            layers,
            head: Linear::new(ps, hidden, classes, rng),
            q_head_w: RelaxedQuantizer::new(ps, bit_choices, false),
            q_head_out: RelaxedQuantizer::new(ps, bit_choices, false),
        }
    }

    pub fn forward(
        &mut self,
        f: &mut Fwd,
        b: &GraphBundle,
        mut x: Var,
    ) -> (Var, Vec<(Var, usize)>) {
        let mut pens = Vec::new();
        x = self.q_input.forward(f, x, &mut pens);
        for i in 0..self.layers.len() {
            let layer = &mut self.layers[i];
            let w = f.binding.bind(f.tape, f.ps, layer.lin.w);
            let wq = layer.q_w.forward(f, w, &mut pens);
            let mut h = f.tape.matmul(x, wq);
            if let Some(bias) = layer.lin.b {
                let bv = f.binding.bind(f.tape, f.ps, bias);
                h = f.tape.add_bias(h, bv);
            }
            h = layer.q_lin_out.forward(f, h, &mut pens);
            let mut y = layer.q_adj.forward(f, &b.norm, h, &mut pens);
            y = layer.q_agg_out.forward(f, y, &mut pens);
            x = f.tape.relu(y);
        }
        let pooled = f.tape.global_max_pool(x, &b.offsets);
        let head = self.head.clone();
        let mut out = RelaxedGinGraphNet::rlinear(f, &head, &mut self.q_head_w, pooled, &mut pens);
        out = self.q_head_out.forward(f, out, &mut pens);
        (out, pens)
    }

    pub fn extract(&self, ps: &ParamSet) -> BitAssignment {
        let mut bits = vec![self.q_input.selected(ps)];
        for layer in &self.layers {
            bits.push(layer.q_adj.selected(ps));
            bits.push(layer.q_w.selected(ps));
            bits.push(layer.q_lin_out.selected(ps));
            bits.push(layer.q_agg_out.selected(ps));
        }
        bits.push(self.q_head_w.selected(ps));
        bits.push(self.q_head_out.selected(ps));
        BitAssignment::new(gcn_graph_schema(self.layers.len()), bits)
    }

    /// ParamIds of every α vector (frozen during search warm-up).
    pub fn alpha_ids(&self) -> Vec<ParamId> {
        let mut ids = vec![self.q_input.alphas];
        for layer in &self.layers {
            ids.extend([
                layer.q_adj.alphas,
                layer.q_w.alphas,
                layer.q_lin_out.alphas,
                layer.q_agg_out.alphas,
            ]);
        }
        ids.extend([self.q_head_w.alphas, self.q_head_out.alphas]);
        ids
    }
}
