//! Fixed-bit-width fake quantizers for quantization-aware training —
//! the paper's "native quantization-aware training quantizers" (§5).

use mixq_nn::Fwd;
use mixq_tensor::{QuantParams, Var};

use crate::observer::Observer;

/// Range policy of a [`FakeQuantizer`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum RangePolicy {
    /// Min/max with EMA smoothing (standard QAT).
    MinMax,
    /// Percentile clipping (Degree-Quant's policy), with the tail fraction.
    Percentile(f64),
}

/// One simulated quantizer: observes ranges during training and applies
/// fake quantization with the clipped straight-through estimator.
///
/// `bits == 32` disables quantization (FP32 pass-through), which is how a
/// component is left unquantized.
#[derive(Debug, Clone)]
pub struct FakeQuantizer {
    pub bits: u8,
    pub symmetric: bool,
    pub observer: Observer,
    pub policy: RangePolicy,
    /// Disable ACIQ statistical clipping (Degree-Quant provides its own
    /// percentile clipping).
    pub raw_range: bool,
}

impl FakeQuantizer {
    pub fn new(bits: u8, symmetric: bool) -> Self {
        Self {
            bits,
            symmetric,
            observer: Observer::new(),
            policy: RangePolicy::MinMax,
            raw_range: false,
        }
    }

    pub fn with_policy(mut self, policy: RangePolicy) -> Self {
        self.policy = policy;
        self
    }

    /// Uses the raw observed range instead of ACIQ clipping.
    pub fn with_raw_range(mut self) -> Self {
        self.raw_range = true;
        self
    }

    /// True when this quantizer is a no-op (FP32).
    pub fn is_identity(&self) -> bool {
        self.bits >= 32
    }

    /// Current quantization parameters (panics before any observation).
    pub fn qparams(&self) -> QuantParams {
        if self.raw_range {
            self.observer.qparams_minmax(self.bits, self.symmetric)
        } else {
            self.observer.qparams(self.bits, self.symmetric)
        }
    }

    /// Observes (training only) and fake-quantizes `x`.
    pub fn forward(&mut self, f: &mut Fwd, x: Var) -> Var {
        if self.is_identity() {
            return x;
        }
        if f.training || !self.observer.is_initialized() {
            match self.policy {
                RangePolicy::MinMax => self.observer.observe(f.tape.value(x)),
                RangePolicy::Percentile(p) => self.observer.observe_percentile(f.tape.value(x), p),
            }
        }
        let qp = self.qparams();
        f.tape.fake_quant(x, qp)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mixq_nn::{Binding, ParamSet};
    use mixq_tensor::{Matrix, Rng, Tape};

    fn run_forward(q: &mut FakeQuantizer, x: Matrix, training: bool) -> Matrix {
        let ps = ParamSet::new();
        let mut tape = Tape::new();
        let mut binding = Binding::new();
        let mut rng = Rng::seed_from_u64(0);
        let mut f = Fwd {
            tape: &mut tape,
            ps: &ps,
            binding: &mut binding,
            rng: &mut rng,
            training,
        };
        let xv = f.tape.constant(x);
        let y = q.forward(&mut f, xv);
        tape.value(y).clone()
    }

    #[test]
    fn fp32_is_identity() {
        let mut q = FakeQuantizer::new(32, false);
        let x = Matrix::from_vec(1, 3, vec![0.123, -4.5, 7.8]);
        assert_eq!(run_forward(&mut q, x.clone(), true), x);
    }

    #[test]
    fn quantized_output_snaps_to_grid() {
        let mut q = FakeQuantizer::new(4, false);
        let x = Matrix::from_vec(1, 4, vec![-1.0, -0.33, 0.47, 1.0]);
        let y = run_forward(&mut q, x, true);
        let qp = q.qparams();
        // Every output must be exactly representable.
        for &v in y.data() {
            assert!((qp.fake(v) - v).abs() < 1e-6, "{v} is not on the grid");
        }
        // 4 bits over [-1,1] ⇒ scale ≈ 2/15.
        assert!((qp.scale - 2.0 / 15.0).abs() < 0.01);
    }

    #[test]
    fn eval_does_not_move_observer() {
        let mut q = FakeQuantizer::new(8, false);
        let _ = run_forward(&mut q, Matrix::from_vec(1, 2, vec![-1.0, 1.0]), true);
        let before = q.observer.range();
        let _ = run_forward(&mut q, Matrix::from_vec(1, 2, vec![-100.0, 100.0]), false);
        assert_eq!(q.observer.range(), before, "eval must not update ranges");
    }

    #[test]
    fn lower_bits_give_larger_error() {
        let mut rng = Rng::seed_from_u64(1);
        let x = Matrix::from_fn(16, 16, |_, _| rng.normal());
        let mut err = Vec::new();
        for bits in [2u8, 4, 8] {
            let mut q = FakeQuantizer::new(bits, false);
            let y = run_forward(&mut q, x.clone(), true);
            err.push(y.max_abs_diff(&x));
        }
        assert!(err[0] > err[1], "2-bit error must exceed 4-bit: {err:?}");
        assert!(err[1] > err[2], "4-bit error must exceed 8-bit: {err:?}");
    }
}
