//! **Theorem 1** — quantized message passing.
//!
//! Given quantized forms `Q_a(A)` and `Q_x(X)`, the quantized product
//! `Q_y(AX)` can be computed *entirely from integer codes*:
//!
//! `Q_y(AX) = C1 ⊙ Q_a(A)Q_x(X) ⊙ C2 + C3`
//!
//! with `C1 = S_a` (per-row scales of `A`), `C2 = S_x ⊘ S_y` (per-column
//! scales) and `C3` a zero-point correction built from row/column sums of
//! the integer codes. The expensive part — the sparse-dense product — runs
//! on integers; the corrections are `O(n + f)` vector work.
//!
//! Two implementations are provided:
//!
//! * [`quantized_matmul_dense`] — the fully general form (arbitrary
//!   zero-points on both operands) over dense integer codes, used as the
//!   reference in the equality tests;
//! * [`quantized_spmm`] — the sparse fast path used by the inference
//!   engine. It requires `Z_a = 0` (symmetric quantization of the
//!   adjacency): with an affine zero-point, the integer code of a structural
//!   zero would be `Z_a ≠ 0` and the "sparse" matrix would densify — which
//!   is why the engine quantizes adjacencies symmetrically
//!   (see [`crate::quantize_adjacency`]).
//!
//! All correction arithmetic is done in `f64` so the only rounding is the
//! final `⌊·⌉`, making the integer path numerically identical to quantizing
//! the fake-quantized FP product (verified by property tests).

use mixq_sparse::{spmm_int, QuantCsr};

/// Quantization vectors for `Y = A·X` (Theorem 1's `{S_a,Z_a}`, `{S_x,Z_x}`,
/// `{S_y,Z_y}`). `A` is quantized per-row, `X` and `Y` per-column. Scalars
/// (per-tensor quantization) are the special case of constant vectors.
#[derive(Debug, Clone)]
pub struct QmpParams {
    pub sa: Vec<f32>,
    pub za: Vec<i32>,
    pub sx: Vec<f32>,
    pub zx: Vec<i32>,
    pub sy: Vec<f32>,
    pub zy: Vec<i32>,
    /// Output clipping range.
    pub y_qmin: i32,
    pub y_qmax: i32,
}

impl QmpParams {
    /// Per-tensor (scalar) parameters broadcast to vectors.
    #[allow(clippy::too_many_arguments)]
    pub fn per_tensor(
        n_rows: usize,
        n_cols: usize,
        sa: f32,
        za: i32,
        sx: f32,
        zx: i32,
        sy: f32,
        zy: i32,
        y_qmin: i32,
        y_qmax: i32,
    ) -> Self {
        Self {
            sa: vec![sa; n_rows],
            za: vec![za; n_rows],
            sx: vec![sx; n_cols],
            zx: vec![zx; n_cols],
            sy: vec![sy; n_cols],
            zy: vec![zy; n_cols],
            y_qmin,
            y_qmax,
        }
    }
}

#[inline]
fn round_clip(v: f64, zy: i32, qmin: i32, qmax: i32) -> i32 {
    let q = v.round_ties_even() as i64 + zy as i64;
    q.clamp(qmin as i64, qmax as i64) as i32
}

/// General (dense) Theorem 1: computes `Q_y(AX)` from dense integer codes
/// `qa` (`n×m`, row-quantized) and `qx` (`m×f`, column-quantized).
///
/// Expanding `Q⁻¹(q) = (q − Z)·S` on both operands:
///
/// `Y[i,j] = Sa_i·Sx_j·( P[i,j] − Zx_j·rowsum(Qa)_i − Za_i·colsum(Qx)_j
///            + m·Za_i·Zx_j )` with `P = Qa·Qx`,
///
/// then `Q_y = clip(⌊Y[i,j]/Sy_j⌉ + Zy_j)`. The row/column sums are the
/// `O(n+f)` precomputed factors of the theorem.
pub fn quantized_matmul_dense(
    qa: &[i32],
    n: usize,
    m: usize,
    qx: &[i32],
    f: usize,
    p: &QmpParams,
) -> Vec<i32> {
    assert_eq!(qa.len(), n * m);
    assert_eq!(qx.len(), m * f);
    assert_eq!(p.sa.len(), n);
    assert_eq!(p.sx.len(), f);

    // Integer product P = Qa·Qx in i64, partitioned by output row.
    let mut prod = vec![0i64; n * f];
    mixq_parallel::par_row_chunks_mut(&mut prod, n, f, |start, chunk| {
        for (di, out) in chunk.chunks_mut(f).enumerate() {
            let i = start + di;
            for k in 0..m {
                let a = qa[i * m + k] as i64;
                if a == 0 {
                    continue;
                }
                let row = &qx[k * f..(k + 1) * f];
                for (o, &x) in out.iter_mut().zip(row.iter()) {
                    *o += a * x as i64;
                }
            }
        }
    });
    // Precomputed factors.
    let row_sum_a: Vec<i64> = (0..n)
        .map(|i| qa[i * m..(i + 1) * m].iter().map(|&v| v as i64).sum())
        .collect();
    let col_sum_x: Vec<i64> = {
        let mut s = vec![0i64; f];
        for k in 0..m {
            for (j, sj) in s.iter_mut().enumerate() {
                *sj += qx[k * f + j] as i64;
            }
        }
        s
    };

    let mut out = vec![0i32; n * f];
    mixq_parallel::par_row_chunks_mut(&mut out, n, f, |start, chunk| {
        for (di, orow) in chunk.chunks_mut(f).enumerate() {
            let i = start + di;
            for (j, o) in orow.iter_mut().enumerate() {
                let corrected =
                    prod[i * f + j] - p.zx[j] as i64 * row_sum_a[i] - p.za[i] as i64 * col_sum_x[j]
                        + (m as i64) * p.za[i] as i64 * p.zx[j] as i64;
                let real = p.sa[i] as f64 * p.sx[j] as f64 * corrected as f64 / p.sy[j] as f64;
                *o = round_clip(real, p.zy[j], p.y_qmin, p.y_qmax);
            }
        }
    });
    out
}

/// Sparse Theorem 1 fast path: `Q_y(AX)` where `A` is a [`QuantCsr`] with
/// **zero zero-point** (`Z_a = 0`, enforced by assertion through `p.za`).
/// The hot loop is the integer SpMM; corrections are per-row/column vector
/// work.
pub fn quantized_spmm(qa: &QuantCsr, qx: &[i32], f: usize, p: &QmpParams) -> Vec<i32> {
    assert!(
        p.za.iter().all(|&z| z == 0),
        "sparse path requires Z_a = 0 (symmetric adjacency)"
    );
    assert_eq!(p.sa.len(), qa.rows());
    assert_eq!(p.sx.len(), f);
    let prod = spmm_int(qa, qx, f);
    let row_sum_a = qa.row_sums_i64();
    let n = qa.rows();
    let mut out = vec![0i32; n * f];
    // The integer SpMM above is already parallel; the per-element correction
    // is independent per output row, so partition it the same way.
    mixq_parallel::par_row_chunks_mut(&mut out, n, f, |start, chunk| {
        for (di, orow) in chunk.chunks_mut(f).enumerate() {
            let i = start + di;
            for (j, o) in orow.iter_mut().enumerate() {
                let corrected = prod[i * f + j] - p.zx[j] as i64 * row_sum_a[i];
                let real = p.sa[i] as f64 * p.sx[j] as f64 * corrected as f64 / p.sy[j] as f64;
                *o = round_clip(real, p.zy[j], p.y_qmin, p.y_qmax);
            }
        }
    });
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use mixq_sparse::{CooEntry, CsrMatrix};
    use mixq_tensor::{QuantParams, Rng};

    /// Reference: dequantize the codes (i.e. the fake-quantized values),
    /// multiply in floating point, then quantize the product.
    fn reference(qa: &[i32], n: usize, m: usize, qx: &[i32], f: usize, p: &QmpParams) -> Vec<i32> {
        let af: Vec<f64> = (0..n * m)
            .map(|i| (qa[i] - p.za[i / m]) as f64 * p.sa[i / m] as f64)
            .collect();
        let xf: Vec<f64> = (0..m * f)
            .map(|i| (qx[i] - p.zx[i % f]) as f64 * p.sx[i % f] as f64)
            .collect();
        let mut out = vec![0i32; n * f];
        for i in 0..n {
            for j in 0..f {
                let mut acc = 0f64;
                for k in 0..m {
                    acc += af[i * m + k] * xf[k * f + j];
                }
                out[i * f + j] = round_clip(acc / p.sy[j] as f64, p.zy[j], p.y_qmin, p.y_qmax);
            }
        }
        out
    }

    fn random_case(
        seed: u64,
        za_zero: bool,
    ) -> (Vec<i32>, Vec<i32>, usize, usize, usize, QmpParams) {
        let mut rng = Rng::seed_from_u64(seed);
        let n = 2 + rng.gen_range(5);
        let m = 2 + rng.gen_range(5);
        let f = 1 + rng.gen_range(6);
        let (aqmin, aqmax) = QuantParams::int_range(4);
        let (xqmin, xqmax) = QuantParams::int_range(8);
        let qa: Vec<i32> = (0..n * m)
            .map(|_| aqmin + rng.gen_range((aqmax - aqmin + 1) as usize) as i32)
            .collect();
        let qx: Vec<i32> = (0..m * f)
            .map(|_| xqmin + rng.gen_range((xqmax - xqmin + 1) as usize) as i32)
            .collect();
        let p = QmpParams {
            sa: (0..n).map(|_| rng.uniform_in(0.01, 0.5)).collect(),
            za: (0..n)
                .map(|_| {
                    if za_zero {
                        0
                    } else {
                        rng.gen_range(7) as i32 - 3
                    }
                })
                .collect(),
            sx: (0..f).map(|_| rng.uniform_in(0.01, 0.5)).collect(),
            zx: (0..f).map(|_| rng.gen_range(21) as i32 - 10).collect(),
            sy: (0..f).map(|_| rng.uniform_in(0.05, 1.0)).collect(),
            zy: (0..f).map(|_| rng.gen_range(11) as i32 - 5).collect(),
            y_qmin: -128,
            y_qmax: 127,
        };
        (qa, qx, n, m, f, p)
    }

    #[test]
    fn dense_theorem_matches_fp_reference() {
        for seed in 0..50 {
            let (qa, qx, n, m, f, p) = random_case(seed, false);
            let got = quantized_matmul_dense(&qa, n, m, &qx, f, &p);
            let want = reference(&qa, n, m, &qx, f, &p);
            assert_eq!(got, want, "mismatch at seed {seed}");
        }
    }

    #[test]
    fn sparse_theorem_matches_dense_theorem() {
        for seed in 100..130 {
            let mut rng = Rng::seed_from_u64(seed);
            let (_, qx, n, m, f, p) = random_case(seed, true);
            // Random sparse integer adjacency (≈30 % density).
            let mut entries = Vec::new();
            let mut dense_qa = vec![0i32; n * m];
            for i in 0..n {
                for k in 0..m {
                    if rng.bernoulli(0.3) {
                        let v = rng.gen_range(15) as i32 - 7;
                        if v != 0 {
                            entries.push(CooEntry {
                                row: i,
                                col: k,
                                val: v as f32,
                            });
                            dense_qa[i * m + k] = v;
                        }
                    }
                }
            }
            let csr = CsrMatrix::from_coo(n, m, entries);
            let qcsr = QuantCsr::from_csr(&csr, 4, |_, _, v| v as i32);
            let sparse = quantized_spmm(&qcsr, &qx, f, &p);
            let dense = quantized_matmul_dense(&dense_qa, n, m, &qx, f, &p);
            assert_eq!(sparse, dense, "mismatch at seed {seed}");
        }
    }

    #[test]
    #[should_panic(expected = "Z_a = 0")]
    fn sparse_path_rejects_nonzero_adjacency_zero_point() {
        let csr = CsrMatrix::from_coo(
            1,
            1,
            vec![CooEntry {
                row: 0,
                col: 0,
                val: 1.0,
            }],
        );
        let qcsr = QuantCsr::from_csr(&csr, 4, |_, _, v| v as i32);
        let mut p = QmpParams::per_tensor(1, 1, 0.1, 0, 0.1, 0, 0.1, 0, -8, 7);
        p.za[0] = 1;
        quantized_spmm(&qcsr, &[1], 1, &p);
    }

    #[test]
    fn identity_quantization_recovers_integer_product() {
        // With all scales 1 and zero-points 0, Theorem 1 is just the
        // integer product (no clipping within range).
        let qa = vec![1, 2, 3, 4]; // 2×2
        let qx = vec![5, 6, 7, 8]; // 2×2
        let p = QmpParams::per_tensor(2, 2, 1.0, 0, 1.0, 0, 1.0, 0, -1000, 1000);
        let got = quantized_matmul_dense(&qa, 2, 2, &qx, 2, &p);
        assert_eq!(got, vec![19, 22, 43, 50]);
    }

    #[test]
    fn output_respects_clipping_range() {
        let (qa, qx, n, m, f, mut p) = random_case(7, false);
        p.y_qmin = -8;
        p.y_qmax = 7;
        let got = quantized_matmul_dense(&qa, n, m, &qx, f, &p);
        assert!(got.iter().all(|&v| (-8..=7).contains(&v)));
    }

    /// Property: for any random codes and quantization vectors, the
    /// factored integer computation equals quantizing the FP product of
    /// the fake-quantized operands (the theorem's claim). Seeded
    /// exhaustively instead of via proptest (no external dev-deps).
    #[test]
    fn prop_theorem1_exact() {
        for seed in 0..64u64 {
            let (qa, qx, n, m, f, p) = random_case(seed * 157 + 1, false);
            let got = quantized_matmul_dense(&qa, n, m, &qx, f, &p);
            let want = reference(&qa, n, m, &qx, f, &p);
            assert_eq!(got, want, "mismatch at seed {seed}");
        }
    }
}
