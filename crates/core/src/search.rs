//! MixQ-GNN bit-width selection — Algorithm 1.
//!
//! Builds the relaxed architecture (all quantizers carrying per-bit-width
//! α logits), trains it on the task loss plus `λ·Σᵢ C(Tᵢ)`, and extracts
//! the argmax bit-widths. The resulting [`BitAssignment`] is then used to
//! instantiate and train the corresponding fixed-bit QAT net.

use mixq_graph::{NodeDataset, NodeTargets};
use mixq_nn::{
    load_train_state, save_train_state, Adam, Binding, CheckpointConfig, Fwd, GraphBundle,
    NodeBundle, ParamId, ParamSet, TrainState,
};
use mixq_tensor::{softmax_slice, Rng, Tape, Var};

use crate::bits::BitAssignment;
use crate::relaxed::{RelaxedGcnGraphNet, RelaxedGcnNet, RelaxedGinGraphNet, RelaxedSageNet};

/// Hyper-parameters of the relaxed search phase.
#[derive(Debug, Clone)]
pub struct SearchConfig {
    pub epochs: usize,
    pub lr: f32,
    /// The Lagrange multiplier λ weighting `Σ C(T)`. Negative values
    /// (the paper's `−ε`) reward wider bit-widths.
    pub lambda: f32,
    pub seed: u64,
    /// Epochs during which the α logits stay frozen while Θ fits the task
    /// (DARTS-style warm-up; prevents the early-training shrinkage bias
    /// from capturing the bit-width choice).
    pub warmup: usize,
    /// Divergence recovery: consecutive retries of one epoch before the
    /// search stops early (mirrors `TrainConfig::max_retries`).
    pub max_retries: usize,
    /// LR multiplier applied from the second retry of an epoch onward.
    pub backoff: f32,
    /// Periodic crash-safe checkpointing of the relaxed search state.
    pub checkpoint: Option<CheckpointConfig>,
    /// Resume from this checkpoint if it exists (missing files start
    /// fresh; unreadable or mismatched ones start fresh and bump the
    /// `search.resume_failures` telemetry counter).
    pub resume_from: Option<std::path::PathBuf>,
}

impl Default for SearchConfig {
    fn default() -> Self {
        Self {
            epochs: 60,
            lr: 0.01,
            lambda: 0.1,
            seed: 0,
            warmup: 25,
            max_retries: 3,
            backoff: 0.5,
            checkpoint: None,
            resume_from: None,
        }
    }
}

/// Generic bi-level relaxed-training loop (DARTS-style, as the continuous
/// relaxation the paper builds on [52]):
///
/// * **Θ step** (every epoch): minimize the *training* task loss with the
///   α logits frozen;
/// * **α step** (after `cfg.warmup` epochs): minimize the *validation*
///   task loss plus `λ·Σ C(T)` with Θ frozen.
///
/// Updating α on held-out data is essential: on the training loss, coarse
/// quantizers act as a regularizer/feature-selector and would win even when
/// they destroy generalization. The penalty sum is normalized by the total
/// number of penalized elements (so `λ·Σ C` has the scale of an
/// element-weighted average bit-width, keeping λ's useful range
/// dataset-size independent).
/// Divergence recovery mirrors [`mixq_nn::train_node`]: a non-finite loss
/// or gradient rolls the whole epoch (Θ **and** α step) back to its start
/// snapshot with bounded retries — the first retry re-runs unchanged, later
/// ones shrink the LR by `cfg.backoff`. Exhausting `cfg.max_retries`
/// restores the last finite state and stops the search early (bumping
/// `search.divergence_aborts`), so the extracted assignment always comes
/// from finite α logits.
fn train_relaxed(
    ps: &mut ParamSet,
    cfg: &SearchConfig,
    alpha_ids: &[ParamId],
    mut fwd_loss: impl FnMut(&mut Fwd, bool) -> (Var, Vec<(Var, usize)>),
) {
    let mut rng = Rng::seed_from_u64(cfg.seed);
    let mut opt = Adam::new(cfg.lr);
    let mut recovered = 0usize;
    let mut start_epoch = 0usize;

    if let Some(path) = &cfg.resume_from {
        if path.exists() {
            match load_train_state(path) {
                Ok(st)
                    if st.params.len() == ps.len()
                        && st.params.num_scalars() == ps.num_scalars() =>
                {
                    *ps = st.params;
                    opt.lr = st.lr;
                    opt.set_step_count(st.adam_t);
                    rng = Rng::from_state(st.rng_state);
                    recovered = st.recovered;
                    start_epoch = st.epoch;
                }
                _ => mixq_telemetry::counter_add("search.resume_failures", 1),
            }
        }
    }

    let mut retries = 0usize;
    let mut epoch = start_epoch;
    while epoch < cfg.epochs {
        let snap = (ps.clone(), opt.clone(), rng.clone());
        let _epoch_span = mixq_telemetry::span("search/epoch");
        // ---- Θ step on the training loss (α frozen) ----
        ps.zero_grads();
        let mut tape = Tape::new();
        let mut binding = Binding::new();
        let (loss, _pens) = {
            let mut f = Fwd {
                tape: &mut tape,
                ps,
                binding: &mut binding,
                rng: &mut rng,
                training: true,
            };
            fwd_loss(&mut f, false)
        };
        let theta_loss = tape.value(loss).item() as f64;
        tape.backward(loss);
        ps.pull_grads(&binding, &tape);
        // Θ-step gradients are in `ps`; buffers go back to the pool before
        // the α step builds its own tape.
        tape.recycle();
        for &id in alpha_ids {
            ps.grad_zero(id);
        }
        let injected =
            mixq_faultinject::should_fire(mixq_faultinject::FaultKind::GradNan, Some(epoch as u64));
        if injected {
            if let Some(&id) = ps.all_ids().first() {
                ps.grad_mut(id).data_mut()[0] = f32::NAN;
            }
        }
        let mut healthy = theta_loss.is_finite() && ps.grads_finite();
        if healthy {
            opt.step(ps);

            // ---- α step on the validation loss + penalty (Θ frozen) ----
            if epoch >= cfg.warmup {
                ps.zero_grads();
                let mut tape = Tape::new();
                let mut binding = Binding::new();
                let (loss, pens) = {
                    let mut f = Fwd {
                        tape: &mut tape,
                        ps,
                        binding: &mut binding,
                        rng: &mut rng,
                        training: false,
                    };
                    fwd_loss(&mut f, true)
                };
                let total_elems: usize = pens.iter().map(|&(_, n)| n).sum();
                // bit_penalty is already divided by 1024·8; undo that and divide
                // by the architecture size instead.
                // The 0.15 factor calibrates λ's useful range to the paper's
                // reported [−0.1, 1] interval (see Fig. 9 reproduction).
                let norm = 0.02 * cfg.lambda * (1024.0 * 8.0) / total_elems.max(1) as f32;
                if mixq_telemetry::enabled() {
                    // The λ·ΣC(T) penalty actually added to the α objective.
                    let penalty: f64 = pens
                        .iter()
                        .map(|&(p, _)| tape.value(p).item() as f64 * norm as f64)
                        .sum();
                    mixq_telemetry::series_push("search.penalty", penalty);
                }
                let mut total = loss;
                for (p, _) in pens {
                    let sp = tape.scale(p, norm);
                    total = tape.add(total, sp);
                }
                let alpha_loss = tape.value(total).item() as f64;
                tape.backward(total);
                ps.pull_grads(&binding, &tape);
                tape.recycle();
                for id in ps.all_ids() {
                    if !alpha_ids.contains(&id) {
                        ps.grad_zero(id);
                    }
                }
                healthy = alpha_loss.is_finite() && ps.grads_finite();
                if healthy {
                    opt.step(ps);
                }
            }
        }

        if !healthy {
            if retries >= cfg.max_retries {
                // Give up: restore the last finite state so extract()
                // reads sane α logits, and stop the search early.
                let (sp, _, _) = snap;
                *ps = sp;
                mixq_telemetry::counter_add("search.divergence_aborts", 1);
                break;
            }
            retries += 1;
            recovered += 1;
            let (sp, so, sr) = snap;
            *ps = sp;
            opt = so;
            rng = sr;
            if retries > 1 {
                opt.lr *= cfg.backoff;
            }
            mixq_telemetry::counter_add("search.divergence_rollbacks", 1);
            if injected {
                mixq_faultinject::mark_recovered();
            }
            continue;
        }
        retries = 0;

        if let Some(ck) = &cfg.checkpoint {
            if (epoch + 1).is_multiple_of(ck.every) {
                let st = TrainState {
                    epoch: epoch + 1,
                    lr: opt.lr,
                    adam_t: opt.step_count(),
                    rng_state: rng.state(),
                    best_val: f64::NEG_INFINITY,
                    best_epoch: 0,
                    recovered,
                    params: ps.clone(),
                    best_params: ParamSet::new(),
                };
                if save_train_state(&st, &ck.path).is_err() {
                    mixq_telemetry::counter_add("search.checkpoint_failures", 1);
                    if mixq_faultinject::enabled() {
                        mixq_faultinject::mark_recovered();
                    }
                }
            }
        }
        epoch += 1;

        if mixq_telemetry::enabled() && !alpha_ids.is_empty() {
            // Mean Shannon entropy of the α softmax distributions: high at
            // initialization (uniform over bit choices), dropping as the
            // search commits to bit-widths.
            let mut entropy = 0.0f64;
            for &id in alpha_ids {
                let probs = softmax_slice(ps.value(id).data());
                entropy -= probs
                    .iter()
                    .filter(|&&p| p > 0.0)
                    .map(|&p| p as f64 * (p as f64).ln())
                    .sum::<f64>();
            }
            mixq_telemetry::series_push("search.alpha_entropy", entropy / alpha_ids.len() as f64);
        }
    }
}

/// Records the outcome of a bit-width search: one `search.bits` histogram
/// entry per component plus a counter of completed searches (no-op while
/// telemetry is disabled).
fn record_search_outcome(a: &BitAssignment) {
    if !mixq_telemetry::enabled() {
        return;
    }
    for &b in &a.bits {
        mixq_telemetry::hist_record("search.bits", b as u64);
    }
    mixq_telemetry::counter_add("search.completed", 1);
    mixq_telemetry::gauge_set("search.avg_bits", a.simple_avg());
}

/// Builds the task loss for a node dataset on an open tape, over the
/// training split or (for the bi-level α step) the validation split.
fn node_task_loss(tape: &mut Tape, logits: Var, ds: &NodeDataset, val: bool) -> Var {
    let idx = if val { &ds.val_idx } else { &ds.train_idx };
    match &ds.targets {
        NodeTargets::SingleLabel { labels, .. } => {
            let targets: Vec<usize> = idx.iter().map(|&i| labels[i]).collect();
            let lp = tape.log_softmax(logits);
            tape.nll_masked(lp, idx, &targets)
        }
        NodeTargets::MultiLabel(t) => tape.bce_with_logits_masked(logits, t, idx),
    }
}

/// Carves ~20 % of the batch's graphs out as the α-step validation set.
fn graph_search_split(
    train: &GraphBundle,
    seed: u64,
) -> (Vec<usize>, Vec<usize>, Vec<usize>, Vec<usize>) {
    let g = train.num_graphs();
    let mut order: Vec<usize> = (0..g).collect();
    let mut rng = Rng::seed_from_u64(seed ^ 0x5EED);
    rng.shuffle(&mut order);
    let nval = (g / 5).max(1);
    let (va, tr) = order.split_at(nval);
    let targets = |rows: &[usize]| rows.iter().map(|&r| train.labels[r]).collect::<Vec<_>>();
    (tr.to_vec(), targets(tr), va.to_vec(), targets(va))
}

/// Searches bit-widths for a multi-layer GCN on a node dataset.
pub fn search_gcn_bits(
    ds: &NodeDataset,
    bundle: &NodeBundle,
    dims: &[usize],
    bit_choices: &[u8],
    dropout: f32,
    cfg: &SearchConfig,
) -> BitAssignment {
    let mut ps = ParamSet::new();
    let mut rng = Rng::seed_from_u64(cfg.seed ^ 0xA1);
    let mut net = RelaxedGcnNet::new(&mut ps, dims, bit_choices, dropout, &mut rng);
    let alpha_ids = net.alpha_ids();
    train_relaxed(&mut ps, cfg, &alpha_ids, |f, val| {
        let x = f.tape.constant(bundle.features.clone());
        let (logits, pens) = net.forward(f, bundle, x);
        let loss = node_task_loss(f.tape, logits, ds, val);
        (loss, pens)
    });
    let assignment = net.extract(&ps);
    record_search_outcome(&assignment);
    assignment
}

/// Searches bit-widths for a multi-layer GraphSAGE on a node dataset.
pub fn search_sage_bits(
    ds: &NodeDataset,
    bundle: &NodeBundle,
    dims: &[usize],
    bit_choices: &[u8],
    dropout: f32,
    cfg: &SearchConfig,
) -> BitAssignment {
    let mut ps = ParamSet::new();
    let mut rng = Rng::seed_from_u64(cfg.seed ^ 0xA2);
    let mut net = RelaxedSageNet::new(&mut ps, dims, bit_choices, dropout, &mut rng);
    let alpha_ids = net.alpha_ids();
    train_relaxed(&mut ps, cfg, &alpha_ids, |f, val| {
        let x = f.tape.constant(bundle.features.clone());
        let (logits, pens) = net.forward(f, bundle, x);
        let loss = node_task_loss(f.tape, logits, ds, val);
        (loss, pens)
    });
    let assignment = net.extract(&ps);
    record_search_outcome(&assignment);
    assignment
}

/// Searches bit-widths for the GIN graph classifier on a training batch.
#[allow(clippy::too_many_arguments)]
pub fn search_gin_graph_bits(
    train: &GraphBundle,
    in_dim: usize,
    hidden: usize,
    classes: usize,
    nlayers: usize,
    bit_choices: &[u8],
    cfg: &SearchConfig,
) -> BitAssignment {
    let mut ps = ParamSet::new();
    let mut rng = Rng::seed_from_u64(cfg.seed ^ 0xA3);
    let mut net = RelaxedGinGraphNet::new(
        &mut ps,
        in_dim,
        hidden,
        classes,
        nlayers,
        bit_choices,
        &mut rng,
    );
    let (tr_rows, tr_targets, va_rows, va_targets) = graph_search_split(train, cfg.seed);
    let alpha_ids = net.alpha_ids();
    train_relaxed(&mut ps, cfg, &alpha_ids, |f, val| {
        let x = f.tape.constant(train.features.clone());
        let (logits, pens) = net.forward(f, train, x);
        let lp = f.tape.log_softmax(logits);
        let (rows, targets) = if val {
            (&va_rows, &va_targets)
        } else {
            (&tr_rows, &tr_targets)
        };
        let loss = f.tape.nll_masked(lp, rows, targets);
        (loss, pens)
    });
    let assignment = net.extract(&ps);
    record_search_outcome(&assignment);
    assignment
}

/// Searches bit-widths for the GCN graph classifier (CSL's architecture).
#[allow(clippy::too_many_arguments)]
pub fn search_gcn_graph_bits(
    train: &GraphBundle,
    in_dim: usize,
    hidden: usize,
    classes: usize,
    nlayers: usize,
    bit_choices: &[u8],
    cfg: &SearchConfig,
) -> BitAssignment {
    let mut ps = ParamSet::new();
    let mut rng = Rng::seed_from_u64(cfg.seed ^ 0xA4);
    let mut net = RelaxedGcnGraphNet::new(
        &mut ps,
        in_dim,
        hidden,
        classes,
        nlayers,
        bit_choices,
        &mut rng,
    );
    let (tr_rows, tr_targets, va_rows, va_targets) = graph_search_split(train, cfg.seed);
    let alpha_ids = net.alpha_ids();
    train_relaxed(&mut ps, cfg, &alpha_ids, |f, val| {
        let x = f.tape.constant(train.features.clone());
        let (logits, pens) = net.forward(f, train, x);
        let lp = f.tape.log_softmax(logits);
        let (rows, targets) = if val {
            (&va_rows, &va_targets)
        } else {
            (&tr_rows, &tr_targets)
        };
        let loss = f.tape.nll_masked(lp, rows, targets);
        (loss, pens)
    });
    let assignment = net.extract(&ps);
    record_search_outcome(&assignment);
    assignment
}

#[cfg(test)]
mod tests {
    use super::*;
    use mixq_graph::cora_like;

    #[test]
    fn large_lambda_pushes_bits_down_and_negative_up() {
        // The key behavioural property of Algorithm 1: λ ≫ 0 favours
        // narrow bit-widths, λ < 0 favours wide ones.
        let ds = cora_like(11);
        let bundle = NodeBundle::new(&ds);
        let dims = [ds.feat_dim(), 16, ds.num_classes()];

        let narrow = search_gcn_bits(
            &ds,
            &bundle,
            &dims,
            &[2, 4, 8],
            0.0,
            &SearchConfig {
                epochs: 20,
                lr: 0.05,
                lambda: 50.0,
                seed: 1,
                warmup: 5,
                ..SearchConfig::default()
            },
        );
        let wide = search_gcn_bits(
            &ds,
            &bundle,
            &dims,
            &[2, 4, 8],
            0.0,
            &SearchConfig {
                epochs: 20,
                lr: 0.05,
                lambda: -50.0,
                seed: 1,
                warmup: 5,
                ..SearchConfig::default()
            },
        );
        assert!(
            narrow.simple_avg() < wide.simple_avg(),
            "λ=50 avg {} must be below λ=−50 avg {}",
            narrow.simple_avg(),
            wide.simple_avg()
        );
        assert_eq!(
            wide.simple_avg(),
            8.0,
            "strongly negative λ saturates at max bits"
        );
        assert_eq!(
            narrow.simple_avg(),
            2.0,
            "strongly positive λ saturates at min bits"
        );
    }

    #[test]
    fn search_returns_valid_assignment() {
        let ds = cora_like(12);
        let bundle = NodeBundle::new(&ds);
        let dims = [ds.feat_dim(), 16, ds.num_classes()];
        let a = search_gcn_bits(
            &ds,
            &bundle,
            &dims,
            &[4, 8],
            0.5,
            &SearchConfig {
                epochs: 8,
                lr: 0.02,
                lambda: 0.1,
                seed: 2,
                warmup: 2,
                ..SearchConfig::default()
            },
        );
        assert_eq!(a.len(), 9, "2-layer GCN has 9 components");
        assert!(a.bits.iter().all(|b| [4u8, 8].contains(b)));
    }
}
