//! LSQ quantizers (Esser et al.): symmetric quantization with a *learnable*
//! scale trained by backpropagation — the literal realization of the
//! paper's "quantization … parameterized by a scale vector S … tuned during
//! training via gradient-based optimization" (§2). An alternative to the
//! observer-based [`crate::FakeQuantizer`]; compare with
//! `cargo run -p mixq-bench --bin ablation`.

use mixq_nn::{Fwd, ParamId, ParamSet};
use mixq_tensor::{Matrix, QuantParams, Var};

/// One LSQ quantizer: the effective scale is `base · m`, where `base` is a
/// data-driven constant captured from the first training batch (Esser et
/// al.'s `2·E|x|/√qmax` rule) and `m` is a learnable scalar multiplier
/// (initialized to 1) trained by the LSQ gradient. Factoring the scale this
/// way lets the data-dependent initialization happen inside the forward
/// pass, where the parameter store is immutable.
#[derive(Debug, Clone)]
pub struct LsqQuantizer {
    pub scale: ParamId,
    pub bits: u8,
    base: f32,
    initialized: bool,
}

impl LsqQuantizer {
    pub fn new(ps: &mut ParamSet, bits: u8) -> Self {
        Self {
            scale: ps.add(Matrix::scalar(1.0)),
            bits,
            base: 1.0,
            initialized: false,
        }
    }

    pub fn is_identity(&self) -> bool {
        self.bits >= 32
    }

    pub fn forward(&mut self, f: &mut Fwd, x: Var) -> Var {
        if self.is_identity() {
            return x;
        }
        let (qmin, qmax) = QuantParams::int_range(self.bits);
        if !self.initialized {
            let xm = f.tape.value(x);
            let mean_abs = xm.data().iter().map(|v| v.abs()).sum::<f32>() / xm.numel() as f32;
            self.base = (2.0 * mean_abs / (qmax as f32).sqrt()).max(1e-6);
            self.initialized = true;
        }
        let sv = f.bind(self.scale);
        let sv_eff = f.tape.scale(sv, self.base);
        f.tape.fake_quant_lsq(x, sv_eff, qmin, qmax)
    }

    /// Current effective quantization parameters (for export/inspection).
    pub fn qparams(&self, ps: &ParamSet) -> QuantParams {
        let (qmin, qmax) = QuantParams::int_range(self.bits);
        QuantParams {
            scale: (ps.value(self.scale).item() * self.base).max(1e-9),
            zero_point: 0,
            qmin,
            qmax,
            bits: self.bits,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mixq_nn::Binding;
    use mixq_tensor::{Rng, Tape};

    #[test]
    fn first_forward_initializes_base_from_data() {
        let mut ps = ParamSet::new();
        let mut q = LsqQuantizer::new(&mut ps, 8);
        let sample = Matrix::from_vec(1, 4, vec![1.0, -1.0, 2.0, -2.0]); // E|x| = 1.5
        let mut tape = Tape::new();
        let mut binding = Binding::new();
        let mut rng = Rng::seed_from_u64(0);
        let mut f = Fwd {
            tape: &mut tape,
            ps: &ps,
            binding: &mut binding,
            rng: &mut rng,
            training: true,
        };
        let xv = f.tape.constant(sample);
        let _ = q.forward(&mut f, xv);
        let expect = 2.0 * 1.5 / (127f32).sqrt();
        assert!((q.qparams(&ps).scale - expect).abs() < 1e-6);

        // Second batch must not move the base.
        let mut tape = Tape::new();
        let mut binding = Binding::new();
        let mut rng = Rng::seed_from_u64(0);
        let mut f = Fwd {
            tape: &mut tape,
            ps: &ps,
            binding: &mut binding,
            rng: &mut rng,
            training: true,
        };
        let xv = f.tape.constant(Matrix::scalar(100.0));
        let _ = q.forward(&mut f, xv);
        assert!((q.qparams(&ps).scale - expect).abs() < 1e-6);
    }

    #[test]
    fn scale_learns_to_cover_the_data() {
        // Train only the scale to minimize the quantization MSE of a fixed
        // tensor: it must converge near the MSE-optimal value (roughly
        // max|x|/qmax for uniform data).
        let mut rng = Rng::seed_from_u64(1);
        let x = Matrix::from_fn(16, 16, |_, _| rng.uniform_in(-2.0, 2.0));
        let mut ps = ParamSet::new();
        let mut q = LsqQuantizer::new(&mut ps, 4);
        let mut opt = mixq_nn::Adam::new(0.02);
        for _ in 0..300 {
            ps.zero_grads();
            let mut tape = Tape::new();
            let mut binding = Binding::new();
            let mut rng2 = Rng::seed_from_u64(0);
            let mut f = Fwd {
                tape: &mut tape,
                ps: &ps,
                binding: &mut binding,
                rng: &mut rng2,
                training: true,
            };
            let xv = f.tape.constant(x.clone());
            let y = q.forward(&mut f, xv);
            let xc = tape.constant(x.clone());
            let d = tape.sub(y, xc);
            let sq = tape.mul(d, d);
            let loss = tape.mean_all(sq);
            tape.backward(loss);
            ps.pull_grads(&binding, &tape);
            opt.step(&mut ps);
        }
        let s = q.qparams(&ps).scale;
        // 4-bit qmax = 7; covering ±2 needs s ≈ 2/7 ≈ 0.29 (the MSE optimum
        // sits slightly below). The effective scale must land in that band.
        assert!(
            (0.18..0.4).contains(&s),
            "learned scale {s} not in the optimal band"
        );
    }

    #[test]
    fn identity_for_32_bits() {
        let mut ps = ParamSet::new();
        let mut q = LsqQuantizer::new(&mut ps, 32);
        let mut tape = Tape::new();
        let mut binding = Binding::new();
        let mut rng = Rng::seed_from_u64(0);
        let mut f = Fwd {
            tape: &mut tape,
            ps: &ps,
            binding: &mut binding,
            rng: &mut rng,
            training: true,
        };
        let xv = f.tape.constant(Matrix::scalar(1.234));
        let y = q.forward(&mut f, xv);
        assert_eq!(y, xv);
    }
}
