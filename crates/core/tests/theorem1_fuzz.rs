//! Differential conformance fuzzing of Theorem 1.
//!
//! The paper's central claim is that `Q_y(AX)` computed *entirely from
//! integer codes* (`quantized_matmul_dense` / `quantized_spmm`) equals
//! quantizing the floating-point product of the dequantized operands. These
//! suites generate random codes, quantization vectors, and CSR graphs —
//! including degree-skewed, isolated-node, and self-loop regimes — and
//! assert bit-exact agreement against an f64 dequantize-then-multiply
//! reference. Failures shrink to a minimal graph/code configuration and
//! print a replayable `MIXQ_PT_SEED`.

use mixq_core::{quantized_matmul_dense, quantized_spmm, QmpParams};
use mixq_proptest::{f32_in, graph, i32_in, usize_in, Config, Gen, GraphConfig, RandomGraph};
use mixq_sparse::QuantCsr;

/// Reference: dequantize the codes to f64, multiply, requantize.
fn reference(qa: &[i32], n: usize, m: usize, qx: &[i32], f: usize, p: &QmpParams) -> Vec<i32> {
    let mut out = vec![0i32; n * f];
    for i in 0..n {
        for j in 0..f {
            let mut acc = 0f64;
            for k in 0..m {
                let a = (qa[i * m + k] - p.za[i]) as f64 * p.sa[i] as f64;
                let x = (qx[k * f + j] - p.zx[j]) as f64 * p.sx[j] as f64;
                acc += a * x;
            }
            let q = (acc / p.sy[j] as f64).round_ties_even() as i64 + p.zy[j] as i64;
            out[i * f + j] = q.clamp(p.y_qmin as i64, p.y_qmax as i64) as i32;
        }
    }
    out
}

#[derive(Clone, Debug)]
struct DenseCase {
    n: usize,
    m: usize,
    f: usize,
    qa: Vec<i32>,
    qx: Vec<i32>,
    sa: Vec<f32>,
    za: Vec<i32>,
    sx: Vec<f32>,
    zx: Vec<i32>,
    sy: Vec<f32>,
    zy: Vec<i32>,
}

impl DenseCase {
    fn params(&self) -> QmpParams {
        QmpParams {
            sa: self.sa.clone(),
            za: self.za.clone(),
            sx: self.sx.clone(),
            zx: self.zx.clone(),
            sy: self.sy.clone(),
            zy: self.zy.clone(),
            y_qmin: -128,
            y_qmax: 127,
        }
    }
}

/// Dense Theorem-1 case: arbitrary zero points on both operands, code
/// ranges spanning 4-bit adjacency × 8-bit activations.
fn dense_case() -> Gen<DenseCase> {
    let dims = usize_in(1, 6).zip(&usize_in(1, 6)).zip(&usize_in(1, 6));
    dims.bind(|&((n, m), f)| {
        let qa = i32_in(-8, 7).vec_of(n * m, n * m);
        let qx = i32_in(-128, 127).vec_of(m * f, m * f);
        let sa = f32_in(0.01, 0.5).vec_of(n, n);
        let za = i32_in(-3, 3).vec_of(n, n);
        let sx = f32_in(0.01, 0.5).vec_of(f, f);
        let zx = i32_in(-10, 10).vec_of(f, f);
        let sy = f32_in(0.05, 1.0).vec_of(f, f);
        let zy = i32_in(-5, 5).vec_of(f, f);
        qa.zip(&qx)
            .zip(&sa.zip(&za))
            .zip(&sx.zip(&zx))
            .zip(&sy.zip(&zy))
            .map(move |case| {
                let (((qaqx, saza), sxzx), syzy) = case.clone();
                DenseCase {
                    n,
                    m,
                    f,
                    qa: qaqx.0,
                    qx: qaqx.1,
                    sa: saza.0,
                    za: saza.1,
                    sx: sxzx.0,
                    zx: sxzx.1,
                    sy: syzy.0,
                    zy: syzy.1,
                }
            })
    })
}

#[test]
fn fuzz_dense_theorem1_matches_f64_reference() {
    Config::new("theorem1_dense")
        .cases(96)
        .run(&dense_case(), |c| {
            let p = c.params();
            let got = quantized_matmul_dense(&c.qa, c.n, c.m, &c.qx, c.f, &p);
            let want = reference(&c.qa, c.n, c.m, &c.qx, c.f, &p);
            assert_eq!(
                got, want,
                "integer Theorem-1 path diverged from f64 reference (n={}, m={}, f={})",
                c.n, c.m, c.f
            );
        });
}

#[derive(Clone, Debug)]
struct SparseCase {
    g: RandomGraph,
    f: usize,
    qx: Vec<i32>,
    sa: Vec<f32>,
    sx: Vec<f32>,
    zx: Vec<i32>,
    sy: Vec<f32>,
    zy: Vec<i32>,
}

impl SparseCase {
    fn params(&self) -> QmpParams {
        QmpParams {
            sa: self.sa.clone(),
            za: vec![0; self.g.nodes], // sparse path requires Z_a = 0
            sx: self.sx.clone(),
            zx: self.zx.clone(),
            sy: self.sy.clone(),
            zy: self.zy.clone(),
            y_qmin: -128,
            y_qmax: 127,
        }
    }

    /// The adjacency codes: edge weights rounded to integers. Structural
    /// zeros and rounded-to-zero edges agree between sparse and dense form
    /// by construction.
    fn dense_codes(&self) -> Vec<i32> {
        let n = self.g.nodes;
        let mut qa = vec![0i32; n * n];
        for &(s, d, v) in &self.g.edges {
            qa[s * n + d] = v.round_ties_even() as i32;
        }
        qa
    }

    fn qcsr(&self) -> QuantCsr {
        QuantCsr::from_csr(&self.g.to_csr(), 4, |_, _, v| v.round_ties_even() as i32)
    }
}

/// Sparse case over generated graphs: degree-skewed with isolated nodes and
/// self-loops, edge weights in the 4-bit code range.
fn sparse_case() -> Gen<SparseCase> {
    let cfg = GraphConfig {
        min_nodes: 1,
        max_nodes: 20,
        max_degree: 6,
        degree_alpha: 2.5,
        isolated_frac: 0.2,
        self_loops: true,
        val_lo: -7.0,
        val_hi: 7.0,
    };
    graph(cfg).zip(&usize_in(1, 5)).bind(|&(ref g, f)| {
        let n = g.nodes;
        let g = g.clone();
        let qx = i32_in(-128, 127).vec_of(n * f, n * f);
        let sa = f32_in(0.01, 0.5).vec_of(n, n);
        let sx = f32_in(0.01, 0.5).vec_of(f, f);
        let zx = i32_in(-10, 10).vec_of(f, f);
        let sy = f32_in(0.05, 1.0).vec_of(f, f);
        let zy = i32_in(-5, 5).vec_of(f, f);
        qx.zip(&sa)
            .zip(&sx.zip(&zx))
            .zip(&sy.zip(&zy))
            .map(move |case| {
                let ((qxsa, sxzx), syzy) = case.clone();
                SparseCase {
                    g: g.clone(),
                    f,
                    qx: qxsa.0,
                    sa: qxsa.1,
                    sx: sxzx.0,
                    zx: sxzx.1,
                    sy: syzy.0,
                    zy: syzy.1,
                }
            })
    })
}

/// The sparse fast path must agree bit-exactly with BOTH the dense general
/// form and the f64 reference, on graphs spanning the isolated-node /
/// hub-row / self-loop regimes.
#[test]
fn fuzz_sparse_theorem1_matches_dense_and_reference() {
    Config::new("theorem1_sparse")
        .cases(96)
        .run(&sparse_case(), |c| {
            let n = c.g.nodes;
            let p = c.params();
            let qa = c.dense_codes();
            let sparse = quantized_spmm(&c.qcsr(), &c.qx, c.f, &p);
            let dense = quantized_matmul_dense(&qa, n, n, &c.qx, c.f, &p);
            assert_eq!(
                sparse,
                dense,
                "sparse fast path diverged from dense form (nodes={n}, nnz={}, f={})",
                c.g.nnz(),
                c.f
            );
            let want = reference(&qa, n, n, &c.qx, c.f, &p);
            assert_eq!(
                dense, want,
                "dense form diverged from f64 reference (nodes={n}, f={})",
                c.f
            );
        });
}

/// Tight output ranges force clipping on nearly every element; both paths
/// must clip identically.
#[test]
fn fuzz_theorem1_clipping_is_bit_exact() {
    Config::new("theorem1_clip")
        .cases(48)
        .run(&dense_case(), |c| {
            let mut p = c.params();
            p.y_qmin = -2;
            p.y_qmax = 1;
            let got = quantized_matmul_dense(&c.qa, c.n, c.m, &c.qx, c.f, &p);
            let want = reference(&c.qa, c.n, c.m, &c.qx, c.f, &p);
            assert_eq!(got, want, "clipping behaviour diverged");
            assert!(got.iter().all(|&v| (-2..=1).contains(&v)));
        });
}
