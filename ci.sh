#!/usr/bin/env bash
# Local CI gate: formatting, lints, release build, full test suite.
# Run from the repository root; exits non-zero on the first failure.
set -euo pipefail
cd "$(dirname "$0")"

echo "==> cargo fmt --check"
cargo fmt --all --check

echo "==> cargo clippy -D warnings (all targets)"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test"
cargo test --workspace -q

echo "==> telemetry smoke (table1 with MIXQ_TELEMETRY=1)"
smoke_dir="$(mktemp -d)"
MIXQ_TELEMETRY=1 MIXQ_TELEMETRY_DIR="$smoke_dir" ./target/release/table1 > /dev/null
./target/release/telemetry_check "$smoke_dir/table1.json" \
  --expect counters.tensor.matmul.calls \
  --expect series.train.loss \
  --expect series.search.alpha_entropy \
  --expect histograms.search.bits \
  --expect spans.train_node/epoch
rm -rf "$smoke_dir"

echo "==> fault-injection drill (MIXQ_FAULTS with all four kinds)"
drill_dir="$(mktemp -d)"
MIXQ_TELEMETRY=1 MIXQ_TELEMETRY_DIR="$drill_dir" \
  MIXQ_FAULTS='grad_nan@epoch=3,ckpt_torn@1,worker_panic@2,acc_saturate@1' \
  ./target/release/fault_drill
./target/release/telemetry_check "$drill_dir/fault_drill.json" \
  --expect counters.faults.injected \
  --expect counters.train.divergence_rollbacks \
  --expect counters.parallel.worker_panics \
  --expect-eq counters.faults.injected=4 \
  --expect-eq counters.faults.recovered=4 \
  --expect-eq counters.qinfer.fallback.layers=1
rm -rf "$drill_dir"

echo "==> kernel smoke (tiled/naive bit-identity, i32 SpMM path, pool reuse)"
kernel_dir="$(mktemp -d)"
MIXQ_TELEMETRY=1 MIXQ_TELEMETRY_DIR="$kernel_dir" \
  ./target/release/kernel_bench --smoke
./target/release/telemetry_check "$kernel_dir/kernel_bench.json" \
  --expect-gt counters.qcsr.spmm.i32_path=0 \
  --expect-gt counters.qcsr.spmm.i64_path=0 \
  --expect-gt counters.pool.hit_bytes=0 \
  --expect counters.parallel.balanced_calls
rm -rf "$kernel_dir"

echo "==> property-fuzz conformance drill (MIXQ_PT_CASES=32 pinned budget)"
fuzz_dir="$(mktemp -d)"
MIXQ_TELEMETRY=1 MIXQ_TELEMETRY_DIR="$fuzz_dir" MIXQ_PT_CASES=32 \
  ./target/release/fuzz_drill
./target/release/telemetry_check "$fuzz_dir/fuzz_drill.json" \
  --expect-eq counters.proptest.cases=160 \
  --expect-eq counters.proptest.drill.theorem1.cases=32 \
  --expect-eq counters.proptest.drill.quant_edges.cases=32 \
  --expect-eq counters.proptest.drill.autograd.cases=32 \
  --expect-eq counters.proptest.drill.parallel.cases=32 \
  --expect-eq counters.proptest.drill.qcsr.cases=32
rm -rf "$fuzz_dir"

echo "CI OK"
