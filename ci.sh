#!/usr/bin/env bash
# Local CI gate: formatting, lints, release build, full test suite.
# Run from the repository root; exits non-zero on the first failure.
set -euo pipefail
cd "$(dirname "$0")"

echo "==> cargo fmt --check"
cargo fmt --all --check

echo "==> cargo clippy -D warnings (all targets)"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test"
cargo test --workspace -q

echo "CI OK"
