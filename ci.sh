#!/usr/bin/env bash
# Local CI gate: formatting, lints, release build, full test suite.
# Run from the repository root; exits non-zero on the first failure.
set -euo pipefail
cd "$(dirname "$0")"

echo "==> cargo fmt --check"
cargo fmt --all --check

echo "==> cargo clippy -D warnings (all targets)"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test"
cargo test --workspace -q

echo "==> telemetry smoke (table1 with MIXQ_TELEMETRY=1)"
smoke_dir="$(mktemp -d)"
MIXQ_TELEMETRY=1 MIXQ_TELEMETRY_DIR="$smoke_dir" ./target/release/table1 > /dev/null
./target/release/telemetry_check "$smoke_dir/table1.json" \
  --expect counters.tensor.matmul.calls \
  --expect series.train.loss \
  --expect series.search.alpha_entropy \
  --expect histograms.search.bits \
  --expect spans.train_node/epoch
rm -rf "$smoke_dir"

echo "CI OK"
