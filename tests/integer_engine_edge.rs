//! Pathological-structure and saturation-boundary tests for the integer
//! executors (`QuantizedGcn` / `QuantizedSage`).
//!
//! Covers: all-isolated (zero-nnz) adjacencies, structurally-present but
//! zero-valued edges, single fully-dense rows (`max_row_nnz == cols`), a
//! manual integer reference for the GCN layer pipeline, generated
//! isolation-heavy graphs through both engines, and the `2^62`
//! accumulator-saturation boundary observed via the
//! `qinfer.fallback.layers` telemetry counter.
//!
//! Telemetry is process-global, so every test serializes on one mutex.

use std::sync::{Mutex, MutexGuard};

use mixq::core::{
    int_matmul_requant, quantize_csr_symmetric, quantized_spmm, GcnLayerSnapshot, GcnSnapshot,
    QTensor, QmpParams, QuantizedGcn, QuantizedSage, SageLayerSnapshot, SageSnapshot,
};
use mixq::sparse::{CooEntry, CsrMatrix};
use mixq::telemetry;
use mixq::tensor::{Matrix, QuantParams, Rng};
use mixq_proptest::{graph, usize_in, Config, GraphConfig};

static GLOBAL: Mutex<()> = Mutex::new(());

fn lock() -> MutexGuard<'static, ()> {
    GLOBAL.lock().unwrap_or_else(|e| e.into_inner())
}

fn assert_bits_eq(a: &Matrix, b: &Matrix, what: &str) {
    assert_eq!(a.shape(), b.shape(), "{what}: shape mismatch");
    assert!(
        a.data()
            .iter()
            .zip(b.data())
            .all(|(x, y)| x.to_bits() == y.to_bits()),
        "{what}: outputs are not bit-identical"
    );
}

/// One-layer GCN snapshot with 8-bit weights/activations.
fn gcn_1layer(weight: Matrix, adj_bits: u8) -> GcnSnapshot {
    GcnSnapshot {
        input_qp: QuantParams::from_min_max(-2.0, 2.0, 8),
        layers: vec![GcnLayerSnapshot {
            weight,
            bias: Some(vec![0.1, -0.2]),
            w_qp: QuantParams::from_min_max(-1.0, 1.0, 8),
            lin_qp: QuantParams::from_min_max(-4.0, 4.0, 8),
            agg_qp: QuantParams::from_min_max(-8.0, 8.0, 8),
            adj_bits,
        }],
    }
}

/// One-layer GraphSAGE snapshot with 8-bit weights/activations.
fn sage_1layer(w_root: Matrix, w_neigh: Matrix, adj_bits: u8) -> SageSnapshot {
    SageSnapshot {
        input_qp: QuantParams::from_min_max(-2.0, 2.0, 8),
        layers: vec![SageLayerSnapshot {
            w_root,
            bias: Some(vec![0.05, 0.15]),
            w_neigh,
            w_root_qp: QuantParams::from_min_max(-1.0, 1.0, 8),
            w_neigh_qp: QuantParams::from_min_max(-1.0, 1.0, 8),
            agg_qp: QuantParams::from_min_max(-4.0, 4.0, 8),
            out_qp: QuantParams::from_min_max(-8.0, 8.0, 8),
            adj_bits,
        }],
    }
}

fn rand_matrix(rng: &mut Rng, r: usize, c: usize) -> Matrix {
    Matrix::from_fn(r, c, |_, _| rng.uniform_in(-1.5, 1.5))
}

/// An all-isolated adjacency and one whose edges exist structurally but
/// carry value 0 quantize to the same codes, so both executors must be
/// bit-identical — and the GCN (whose layer ends in the aggregation)
/// must emit exactly zero logits.
#[test]
fn empty_and_zero_valued_adjacencies_are_bit_identical() {
    let _g = lock();
    let n = 6;
    let empty = CsrMatrix::from_coo(n, n, vec![]);
    let zeroed = CsrMatrix::from_coo(
        n,
        n,
        (0..n)
            .map(|i| CooEntry {
                row: i,
                col: (i + 1) % n,
                val: 0.0,
            })
            .collect(),
    );
    assert_eq!(
        zeroed.nnz(),
        n,
        "zero-valued edges must survive structurally"
    );

    let mut rng = Rng::seed_from_u64(11);
    let x = rand_matrix(&mut rng, n, 3);
    let w = rand_matrix(&mut rng, 3, 2);

    let snap = gcn_1layer(w.clone(), 8);
    let out_empty = QuantizedGcn::prepare(&snap, &empty).infer(&x);
    let out_zero = QuantizedGcn::prepare(&snap, &zeroed).infer(&x);
    assert_bits_eq(&out_empty, &out_zero, "GCN empty vs zero-valued adjacency");
    assert!(
        out_empty.data().iter().all(|&v| v == 0.0),
        "GCN over an all-isolated graph must produce exactly-zero logits"
    );

    let wn = rand_matrix(&mut rng, 3, 2);
    let ssnap = sage_1layer(w, wn, 8);
    let s_empty = QuantizedSage::prepare(&ssnap, &empty).infer(&x);
    let s_zero = QuantizedSage::prepare(&ssnap, &zeroed).infer(&x);
    assert_bits_eq(&s_empty, &s_zero, "SAGE empty vs zero-valued adjacency");
    // The root branch still flows: outputs must not collapse to zero.
    assert!(
        s_empty.data().iter().any(|&v| v != 0.0),
        "SAGE root branch must be unaffected by an empty adjacency"
    );
}

/// A single fully-dense row (`max_row_nnz == cols`): replicate the GCN
/// layer by hand from the exported integer primitives and demand the
/// engine's output match bit-for-bit.
#[test]
fn single_dense_row_gcn_matches_manual_integer_reference() {
    let _g = lock();
    let n = 5;
    let entries: Vec<CooEntry> = (0..n)
        .map(|c| CooEntry {
            row: 0,
            col: c,
            val: 0.3 + 0.1 * c as f32,
        })
        .collect();
    let adj = CsrMatrix::from_coo(n, n, entries);

    let mut rng = Rng::seed_from_u64(23);
    let x = rand_matrix(&mut rng, n, 3);
    let w = rand_matrix(&mut rng, 3, 2);
    let snap = gcn_1layer(w, 8);
    let l = &snap.layers[0];

    let (qadj, adj_scale) = quantize_csr_symmetric(&adj, l.adj_bits);
    assert_eq!(qadj.max_row_nnz(), qadj.cols(), "row 0 must be fully dense");

    // Manual pipeline: quantize → integer dense matmul+requant → Theorem 1
    // sparse aggregation → dequantize. One layer ⇒ no ReLU.
    let xq = QTensor::quantize(&x, snap.input_qp);
    let wq = QTensor::quantize(&l.weight, l.w_qp);
    let h = int_matmul_requant(&xq, &wq, l.bias.as_deref(), l.lin_qp);
    let p = QmpParams::per_tensor(
        qadj.rows(),
        h.cols,
        adj_scale,
        0,
        h.qp.scale,
        h.qp.zero_point,
        l.agg_qp.scale,
        l.agg_qp.zero_point,
        l.agg_qp.qmin,
        l.agg_qp.qmax,
    );
    let want = QTensor {
        rows: n,
        cols: h.cols,
        data: quantized_spmm(&qadj, &h.data, h.cols, &p),
        qp: l.agg_qp,
    }
    .dequantize();

    let got = QuantizedGcn::prepare(&snap, &adj).infer(&x);
    assert_bits_eq(&got, &want, "engine vs manual integer reference");
}

/// Generated isolation-heavy graphs through BOTH executors: outputs stay
/// finite, and every node with an empty adjacency row yields exactly-zero
/// GCN logits (the aggregation ends the layer).
#[test]
fn fuzz_pathological_graphs_through_both_executors() {
    let _g = lock();
    let cfg = GraphConfig {
        min_nodes: 1,
        max_nodes: 16,
        max_degree: 6,
        degree_alpha: 3.0,
        isolated_frac: 0.5,
        self_loops: true,
        val_lo: -1.0,
        val_hi: 1.0,
    };
    let gen = graph(cfg).zip(&usize_in(0, 1 << 20));
    Config::new("integer_engine_edge")
        .cases(48)
        .run(&gen, |&(ref g, seed)| {
            let n = g.nodes;
            let adj = g.to_csr();
            let mut rng = Rng::seed_from_u64(seed as u64);
            let x = rand_matrix(&mut rng, n, 3);
            let w = rand_matrix(&mut rng, 3, 2);
            let wn = rand_matrix(&mut rng, 3, 2);

            let out = QuantizedGcn::prepare(&gcn_1layer(w.clone(), 4), &adj).infer(&x);
            assert!(out.data().iter().all(|v| v.is_finite()));
            let row_ptr = adj.row_ptr();
            for r in 0..n {
                if row_ptr[r] == row_ptr[r + 1] {
                    assert!(
                        out.row_slice(r).iter().all(|&v| v == 0.0),
                        "isolated node {r} must aggregate to exactly zero"
                    );
                }
            }

            let s = QuantizedSage::prepare(&sage_1layer(w, wn, 4), &adj).infer(&x);
            assert!(s.data().iter().all(|v| v.is_finite()));
        });
}

/// Builds the boundary configuration: a single dense row of `nnz` entries,
/// 16-bit adjacency codes and a 32-bit (large zero-point) linear quantizer,
/// so the static spmm accumulator bound is `nnz · 2^16 · (2^32−1+2^30)` —
/// crossing `ACC_SAT_LIMIT = 2^62` exactly between 8192 and 16384 nnz.
fn boundary_snapshot_and_adj(nnz: usize) -> (GcnSnapshot, CsrMatrix, Matrix) {
    let n = nnz;
    let entries: Vec<CooEntry> = (0..n)
        .map(|c| CooEntry {
            row: 0,
            col: c,
            val: 1.0 / n as f32,
        })
        .collect();
    let adj = CsrMatrix::from_coo(n, n, entries);
    let snap = GcnSnapshot {
        input_qp: QuantParams::from_min_max(-1.0, 1.0, 8),
        layers: vec![GcnLayerSnapshot {
            weight: Matrix::scalar(0.5),
            bias: None,
            w_qp: QuantParams::from_min_max(-1.0, 1.0, 8),
            // Asymmetric 32-bit activations: span ≈ 2^32, |Z| ≈ 2^30.
            lin_qp: QuantParams::from_min_max(-1.0, 3.0, 32),
            agg_qp: QuantParams::from_min_max(-8.0, 8.0, 8),
            adj_bits: 16,
        }],
    };
    let x = Matrix::from_fn(n, 1, |i, _| ((i % 13) as f32 - 6.0) / 7.0);
    (snap, adj, x)
}

/// The `2^62` accumulator ceiling: a 16384-nnz dense row with 16-bit
/// adjacency × 32-bit activations must freeze the layer onto the f32
/// fallback (observable via `qinfer.fallback.layers`); halving the row to
/// 8192 nnz stays under the ceiling and keeps the integer kernels.
#[test]
fn acc_saturation_boundary_at_2_pow_62() {
    let _g = lock();
    telemetry::set_enabled(true);

    let fallback_layers = |nnz: usize| -> u64 {
        telemetry::reset();
        let (snap, adj, x) = boundary_snapshot_and_adj(nnz);
        let engine = QuantizedGcn::prepare(&snap, &adj);
        let out = engine.infer(&x);
        assert!(out.data().iter().all(|v| v.is_finite()), "nnz={nnz}");
        let rep = telemetry::snapshot();
        rep.counters
            .iter()
            .find(|(k, _)| k == "qinfer.fallback.layers")
            .map(|&(_, v)| v)
            .unwrap_or(0)
    };

    let over = fallback_layers(16384);
    let under = fallback_layers(8192);
    telemetry::set_enabled(false);

    assert_eq!(
        over, 1,
        "16384-nnz row must cross the 2^62 bound and fall back"
    );
    assert_eq!(under, 0, "8192-nnz row must stay on the integer kernels");
}
