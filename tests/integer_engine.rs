//! Integration test of the Theorem 1 integer inference engine: a trained
//! fully-quantized GCN must produce the same predictions when executed on
//! integer codes as on the fake-quantized FP32 path.

use mixq::core::{gcn_schema, BitAssignment, QGcnNet, QuantKind, QuantizedGcn};
use mixq::graph::{citation_like, CitationConfig};
use mixq::nn::{accuracy, train_node, NodeBundle, ParamSet, TrainConfig};
use mixq::sparse::gcn_normalize;
use mixq::tensor::{Matrix, Rng, Tape};

#[test]
fn integer_inference_matches_fake_quantized_path() {
    let ds = citation_like(
        &CitationConfig {
            name: "tiny",
            nodes: 300,
            feat_dim: 40,
            classes: 3,
            avg_degree: 5.0,
            homophily: 0.85,
            degree_alpha: 2.0,
            topic_size: 8,
            p_topic: 0.5,
            p_noise: 0.02,
            train_per_class: 20,
            val_size: 60,
            test_size: 120,
        },
        9,
    );
    let bundle = NodeBundle::new(&ds);
    let dims = [ds.feat_dim(), 16, ds.num_classes()];
    let a = BitAssignment::uniform(gcn_schema(2), 8);
    let mut rng = Rng::seed_from_u64(0);
    let mut ps = ParamSet::new();
    let mut net = QGcnNet::new(
        &mut ps,
        &dims,
        a,
        QuantKind::Native,
        &bundle.degrees,
        0.5,
        &mut rng,
    )
    .expect("assignment matches schema");
    let cfg = TrainConfig {
        epochs: 60,
        lr: 0.01,
        weight_decay: 5e-4,
        seed: 0,
        patience: 30,
        ..TrainConfig::default()
    };
    let rep = train_node(&mut net, &mut ps, &ds, &bundle, &cfg);

    // Fake-quantized path (eval mode).
    let fq_logits: Matrix = {
        let mut tape = Tape::new();
        let mut binding = mixq::nn::Binding::new();
        let mut rng = Rng::seed_from_u64(1);
        let mut f = mixq::nn::Fwd {
            tape: &mut tape,
            ps: &ps,
            binding: &mut binding,
            rng: &mut rng,
            training: false,
        };
        let x = f.tape.constant(bundle.features.clone());
        use mixq::nn::NodeNet;
        let y = net.forward(&mut f, &bundle, x);
        tape.value(y).clone()
    };

    // Integer path.
    let snapshot = net.snapshot(&ps).expect("native quantizers with bits < 32");
    let engine = QuantizedGcn::prepare(&snapshot, &gcn_normalize(&ds.adj));
    let int_logits = engine.infer(&ds.features);

    // Same argmax predictions on nearly every node (the integer path is
    // exact in i64 where the FP path accumulates f32 rounding).
    let labels = ds.labels();
    let all: Vec<usize> = (0..ds.num_nodes()).collect();
    let fq_acc = accuracy(&fq_logits, labels, &all);
    let int_acc = accuracy(&int_logits, labels, &all);
    assert!(
        (fq_acc - int_acc).abs() < 0.02,
        "integer path accuracy {int_acc} deviates from fake-quant path {fq_acc}"
    );

    let mut agree = 0usize;
    for r in 0..ds.num_nodes() {
        let arg = |m: &Matrix| {
            m.row_slice(r)
                .iter()
                .enumerate()
                .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
                .map(|(i, _)| i)
                .unwrap()
        };
        if arg(&fq_logits) == arg(&int_logits) {
            agree += 1;
        }
    }
    let rate = agree as f64 / ds.num_nodes() as f64;
    assert!(rate > 0.97, "prediction agreement only {rate}");
    assert!(
        rep.test_metric > 0.5,
        "trained model should be decent, got {}",
        rep.test_metric
    );
}

#[test]
fn integer_sage_inference_agrees_with_training_path() {
    use mixq::core::{sage_schema, QSageNet, QuantizedSage};
    use mixq::sparse::row_normalize;

    let ds = citation_like(
        &CitationConfig {
            name: "tiny-sage",
            nodes: 250,
            feat_dim: 32,
            classes: 3,
            avg_degree: 6.0,
            homophily: 0.85,
            degree_alpha: 2.0,
            topic_size: 8,
            p_topic: 0.5,
            p_noise: 0.02,
            train_per_class: 20,
            val_size: 50,
            test_size: 100,
        },
        13,
    );
    let bundle = NodeBundle::new(&ds);
    let dims = [ds.feat_dim(), 16, ds.num_classes()];
    let a = BitAssignment::uniform(sage_schema(2), 8);
    let mut rng = Rng::seed_from_u64(0);
    let mut ps = ParamSet::new();
    let mut net = QSageNet::new(
        &mut ps,
        &dims,
        a,
        QuantKind::Native,
        &bundle.degrees,
        0.5,
        &mut rng,
    )
    .expect("assignment matches schema");
    let cfg = TrainConfig {
        epochs: 50,
        lr: 0.01,
        weight_decay: 5e-4,
        seed: 0,
        patience: 25,
        ..TrainConfig::default()
    };
    let rep = train_node(&mut net, &mut ps, &ds, &bundle, &cfg);
    assert!(rep.test_metric > 0.5, "trained SAGE should be decent");

    let snapshot = net.snapshot(&ps).expect("native quantizers with bits < 32");
    let engine = QuantizedSage::prepare(&snapshot, &row_normalize(&ds.adj));
    let logits = engine.infer(&ds.features);
    let int_acc = accuracy(&logits, ds.labels(), &ds.test_idx);
    assert!(
        (rep.test_metric - int_acc).abs() < 0.05,
        "integer SAGE accuracy {int_acc} far from QAT accuracy {}",
        rep.test_metric
    );
}
