//! Generated fault specs through the recovery machinery: NaN-gradient
//! rollback at random epochs must be bit-identical to a clean run, a worker
//! panic at a random parallel chunk under a random thread count must retry
//! to the exact serial result, and a forced accumulator-saturation fallback
//! must stay within quantization rounding of the integer path on generated
//! graphs.
//!
//! The fault spec, thread pool, and panic hook are process-global: every
//! test serializes on one mutex, and each generated case installs its spec
//! through a guard whose `Drop` clears it even when the property panics
//! (so shrink replays start clean).

use std::sync::{Mutex, MutexGuard};

use mixq::core::{GcnLayerSnapshot, GcnSnapshot, QuantizedGcn};
use mixq::faultinject;
use mixq::graph::{citation_like, CitationConfig};
use mixq::nn::{params_to_string, train_node, GcnNet, NodeBundle, ParamSet, TrainConfig};
use mixq::sparse::gcn_normalize;
use mixq::tensor::{Matrix, QuantParams, Rng};
use mixq_proptest::{graph, usize_in, Config, GraphConfig};

static GLOBAL: Mutex<()> = Mutex::new(());

fn lock() -> MutexGuard<'static, ()> {
    GLOBAL.lock().unwrap_or_else(|e| e.into_inner())
}

/// Installs a fault spec for one generated case; `Drop` clears it so a
/// failing (panicking) property never leaks its spec into the next case.
struct SpecGuard;

impl SpecGuard {
    fn install(spec: &str) -> Self {
        faultinject::clear();
        faultinject::set_spec(spec).expect("generated fault spec parses");
        SpecGuard
    }
}

impl Drop for SpecGuard {
    fn drop(&mut self) {
        faultinject::clear();
    }
}

fn tiny_train(seed: u64, cfg: &TrainConfig) -> (mixq::nn::TrainReport, String) {
    let ds = citation_like(
        &CitationConfig {
            name: "fault-fuzz",
            nodes: 150,
            feat_dim: 16,
            classes: 3,
            avg_degree: 4.0,
            homophily: 0.8,
            degree_alpha: 2.0,
            topic_size: 6,
            p_topic: 0.5,
            p_noise: 0.02,
            train_per_class: 10,
            val_size: 30,
            test_size: 45,
        },
        seed,
    );
    let bundle = NodeBundle::new(&ds);
    let dims = [ds.feat_dim(), 8, ds.num_classes()];
    let mut rng = Rng::seed_from_u64(seed);
    let mut ps = ParamSet::new();
    let mut net = GcnNet::new(&mut ps, &dims, 0.5, &mut rng);
    let rep = train_node(&mut net, &mut ps, &ds, &bundle, cfg);
    (rep, params_to_string(&ps))
}

/// NaN gradient at a *generated* epoch: the rollback-and-retry path must
/// reconverge to the bit-identical parameters of a fault-free run.
#[test]
fn fuzz_nan_gradient_recovery_bit_identical_at_generated_epochs() {
    let _g = lock();
    let gen = usize_in(1, 3).zip(&usize_in(0, 1000));
    Config::new("fault_recovery")
        .cases(6)
        .run(&gen, |&(epoch, seed)| {
            let cfg = TrainConfig::builder()
                .epochs(4)
                .lr(0.01)
                .seed(seed as u64)
                .patience(0)
                .build()
                .expect("valid config");

            let spec = format!("grad_nan@epoch={epoch}");
            let (rep_f, params_f) = {
                let _s = SpecGuard::install(&spec);
                tiny_train(seed as u64, &cfg)
            };
            let (rep_c, params_c) = tiny_train(seed as u64, &cfg);

            assert_eq!(
                rep_f.recovered_divergences, 1,
                "epoch {epoch}: exactly one rollback expected"
            );
            assert!(!rep_f.diverged);
            assert_eq!(rep_c.recovered_divergences, 0);
            assert_eq!(
                params_f, params_c,
                "epoch {epoch}: rollback + retry must be bit-identical to clean run"
            );
        });
}

/// A worker-thread panic at a generated parallel chunk, under a generated
/// thread count: the runtime's serial retry must reproduce the exact
/// fault-free product.
#[test]
fn fuzz_worker_panic_contained_at_generated_chunks_and_threads() {
    let _g = lock();
    let saved = (
        mixq::parallel::num_threads(),
        mixq::parallel::parallel_row_threshold(),
    );
    let hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(|_| {})); // silence the injected panic

    let gen = usize_in(1, 4)
        .zip(&usize_in(2, 6))
        .zip(&usize_in(0, 1 << 20));
    Config::new("fault_worker_panic")
        .cases(24)
        .run(&gen, |&((chunk, threads), seed)| {
            mixq::parallel::set_num_threads(threads);
            mixq::parallel::set_parallel_row_threshold(2);
            let mut rng = Rng::seed_from_u64(seed as u64);
            let m = 8 + rng.gen_range(40);
            let k = 1 + rng.gen_range(16);
            let n = 1 + rng.gen_range(12);
            let a = Matrix::from_fn(m, k, |_, _| rng.normal());
            let b = Matrix::from_fn(k, n, |_, _| rng.normal());

            let faulted = {
                let _s = SpecGuard::install(&format!("worker_panic@{chunk}"));
                a.matmul(&b)
            };
            let clean = a.matmul(&b);
            assert_eq!(
                faulted.data(),
                clean.data(),
                "chunk {chunk} @ {threads} threads: serial retry diverged"
            );
        });

    std::panic::set_hook(hook);
    mixq::parallel::set_num_threads(saved.0);
    mixq::parallel::set_parallel_row_threshold(saved.1);
}

/// Forced accumulator-saturation fallback on generated graphs: the f32
/// stand-in layer must stay within a few aggregation LSBs of the integer
/// path and mark the fault recovered.
#[test]
fn fuzz_forced_saturation_fallback_stays_close_on_generated_graphs() {
    let _g = lock();
    let cfg = GraphConfig {
        min_nodes: 2,
        max_nodes: 24,
        max_degree: 5,
        degree_alpha: 2.0,
        isolated_frac: 0.2,
        self_loops: true,
        val_lo: 0.1, // positive weights: a normalized-adjacency-like regime
        val_hi: 1.0,
    };
    let gen = graph(cfg).zip(&usize_in(0, 1 << 20));
    Config::new("fault_saturation")
        .cases(12)
        .run(&gen, |&(ref g, seed)| {
            let n = g.nodes;
            let adj = gcn_normalize(&g.to_csr());
            let mut rng = Rng::seed_from_u64(seed as u64);
            let x = Matrix::from_fn(n, 4, |_, _| rng.normal() * 0.5);
            let weight = Matrix::from_fn(4, 3, |_, _| rng.normal() * 0.3);
            let snap = GcnSnapshot {
                input_qp: QuantParams::from_min_max(-2.0, 2.0, 8),
                layers: vec![GcnLayerSnapshot {
                    weight,
                    bias: Some(vec![0.1; 3]),
                    w_qp: QuantParams::symmetric(-1.0, 1.0, 8),
                    lin_qp: QuantParams::from_min_max(-2.0, 2.0, 8),
                    agg_qp: QuantParams::from_min_max(-2.0, 2.0, 8),
                    adj_bits: 8,
                }],
            };
            let agg_scale = snap.layers[0].agg_qp.scale;

            let fallback = {
                // set_spec resets the injected/recovered counters.
                let _s = SpecGuard::install("acc_saturate@1");
                let out = QuantizedGcn::prepare(&snap, &adj).infer(&x);
                assert_eq!(
                    faultinject::recovered_count(),
                    1,
                    "forcing the fallback must be recorded as a recovery"
                );
                out
            };
            let integer = QuantizedGcn::prepare(&snap, &adj).infer(&x);

            assert!(fallback.data().iter().all(|v| v.is_finite()));
            let diff = fallback.max_abs_diff(&integer);
            assert!(
                diff <= 3.0 * agg_scale,
                "nodes={n}: fallback drifted {diff} (scale {agg_scale})"
            );
        });
}
