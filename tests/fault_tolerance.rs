//! Fault-injection integration tests: deterministic faults from
//! `mixq-faultinject` driven through the real training loops, checkpoint
//! writer, parallel runtime and integer inference engine.
//!
//! The fault spec and the thread-pool settings are process-global, so every
//! test serializes on one mutex and clears the spec on exit (also on
//! panic, via the guard's `Drop`).

use std::sync::{Mutex, MutexGuard};

use mixq::core::{GcnLayerSnapshot, GcnSnapshot, QuantizedGcn};
use mixq::faultinject;
use mixq::graph::{citation_like, CitationConfig, NodeDataset};
use mixq::nn::{
    load_params, params_to_string, save_params, train_node, GcnNet, NodeBundle, ParamSet,
    TrainConfig,
};
use mixq::sparse::{gcn_normalize, CooEntry, CsrMatrix};
use mixq::tensor::{Matrix, QuantParams, Rng};

static GLOBAL: Mutex<()> = Mutex::new(());

/// Serializes the test on the global fault/thread state and guarantees the
/// spec is cleared again even if the test panics.
struct FaultGuard(#[allow(dead_code)] MutexGuard<'static, ()>);

impl FaultGuard {
    /// Locks the global fault state with no spec installed.
    fn clean() -> Self {
        let g = GLOBAL.lock().unwrap_or_else(|e| e.into_inner());
        faultinject::clear();
        FaultGuard(g)
    }

    fn with_spec(spec: &str) -> Self {
        let me = Self::clean();
        faultinject::set_spec(spec).expect("test fault spec parses");
        me
    }
}

impl Drop for FaultGuard {
    fn drop(&mut self) {
        faultinject::clear();
    }
}

fn tiny_dataset(seed: u64) -> NodeDataset {
    citation_like(
        &CitationConfig {
            name: "tiny-ft",
            nodes: 300,
            feat_dim: 32,
            classes: 3,
            avg_degree: 5.0,
            homophily: 0.85,
            degree_alpha: 2.0,
            topic_size: 8,
            p_topic: 0.5,
            p_noise: 0.02,
            train_per_class: 20,
            val_size: 60,
            test_size: 120,
        },
        seed,
    )
}

fn train_tiny(cfg: &TrainConfig) -> (mixq::nn::TrainReport, String) {
    let ds = tiny_dataset(5);
    let bundle = NodeBundle::new(&ds);
    let dims = [ds.feat_dim(), 12, ds.num_classes()];
    let mut rng = Rng::seed_from_u64(5);
    let mut ps = ParamSet::new();
    let mut net = GcnNet::new(&mut ps, &dims, 0.5, &mut rng);
    let rep = train_node(&mut net, &mut ps, &ds, &bundle, cfg);
    (rep, params_to_string(&ps))
}

fn quick_cfg() -> TrainConfig {
    TrainConfig::builder()
        .epochs(6)
        .lr(0.01)
        .seed(5)
        .patience(0)
        .build()
        .expect("valid config")
}

#[test]
fn torn_checkpoint_write_leaves_previous_file_intact() {
    let _guard = FaultGuard::with_spec("ckpt_torn@1");
    let dir = std::env::temp_dir();
    let path = dir.join(format!("mixq_ft_torn_{}.params", std::process::id()));

    let mut ps = ParamSet::new();
    ps.add(Matrix::from_vec(2, 2, vec![1.0, -2.5, 0.25, 4.0]));
    // The torn rule only arms once the gate is resolved; the first save must
    // fail (half the bytes written to the temp file, no rename)…
    let err = save_params(&ps, &path);
    assert!(err.is_err(), "injected torn write must surface as an error");
    assert!(!path.exists(), "torn write must not produce the final file");

    // …and with the rule consumed, the atomic path works and survives a
    // later torn attempt: the original stays readable.
    save_params(&ps, &path).expect("clean save succeeds");
    let before = params_to_string(&load_params(&path).expect("readable"));
    faultinject::set_spec("ckpt_torn@1").expect("respec");
    assert!(save_params(&ps, &path).is_err());
    let after = params_to_string(&load_params(&path).expect("still readable"));
    assert_eq!(before, after, "failed overwrite must not corrupt the file");
    let _ = std::fs::remove_file(&path);
}

#[test]
fn nan_gradient_recovery_is_bit_identical_to_clean_run() {
    let cfg = quick_cfg();
    let _guard = FaultGuard::with_spec("grad_nan@epoch=2");
    let (rep_f, params_f) = train_tiny(&cfg);
    assert_eq!(rep_f.recovered_divergences, 1, "one rollback expected");
    assert!(!rep_f.diverged);
    assert!(rep_f.final_train_loss.is_finite());

    faultinject::clear();
    let (rep_c, params_c) = train_tiny(&cfg);
    assert_eq!(rep_c.recovered_divergences, 0);
    assert_eq!(
        params_f, params_c,
        "rollback + unchanged retry must be bit-identical"
    );
    assert_eq!(rep_f.test_metric, rep_c.test_metric);
}

#[test]
fn exhausted_retries_reports_divergence_with_finite_params() {
    // Inject a NaN gradient at every remaining epoch probe: epoch 2 diverges
    // on each of its retries, so recovery is exhausted and the report says
    // so — with parameters still finite (restored from the snapshot).
    let _guard = FaultGuard::with_spec(
        "grad_nan@epoch=2,grad_nan@epoch=2,grad_nan@epoch=2,grad_nan@epoch=2,grad_nan@epoch=2",
    );
    let cfg = TrainConfig {
        max_retries: 3,
        ..quick_cfg()
    };
    let (rep, params) = train_tiny(&cfg);
    assert!(rep.diverged, "retries exhausted ⇒ diverged");
    assert_eq!(rep.recovered_divergences, 3);
    assert!(rep.test_metric.is_finite());
    assert!(
        !params.contains("NaN") && !params.contains("inf"),
        "surfaced parameters must be the last finite ones"
    );
}

#[test]
fn worker_panic_is_contained_and_bit_identical() {
    let _guard = FaultGuard::with_spec("worker_panic@2");
    let saved = (
        mixq::parallel::num_threads(),
        mixq::parallel::parallel_row_threshold(),
    );
    mixq::parallel::set_num_threads(4);
    mixq::parallel::set_parallel_row_threshold(2);
    let hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(|_| {}));

    let mut rng = Rng::seed_from_u64(9);
    let a = Matrix::from_fn(64, 24, |_, _| rng.normal());
    let b = Matrix::from_fn(24, 16, |_, _| rng.normal());
    let faulted = a.matmul(&b);
    let clean = a.matmul(&b); // rule consumed: second product is fault-free

    std::panic::set_hook(hook);
    mixq::parallel::set_num_threads(saved.0);
    mixq::parallel::set_parallel_row_threshold(saved.1);

    assert_eq!(
        faulted.data(),
        clean.data(),
        "serial retry of the panicked chunk must reproduce the exact result"
    );
}

fn drill_snapshot() -> (GcnSnapshot, CsrMatrix, Matrix) {
    let mut rng = Rng::seed_from_u64(13);
    let n = 32;
    let (fin, fout) = (5, 3);
    let x = Matrix::from_fn(n, fin, |_, _| rng.normal() * 0.5);
    let mut entries = Vec::new();
    for i in 0..n {
        for j in 0..n {
            if i != j && rng.bernoulli(0.15) {
                entries.push(CooEntry {
                    row: i,
                    col: j,
                    val: 1.0,
                });
            }
        }
    }
    let adj = gcn_normalize(&CsrMatrix::from_coo(n, n, entries));
    let weight = Matrix::from_fn(fin, fout, |_, _| rng.normal() * 0.3);
    let snap = GcnSnapshot {
        input_qp: QuantParams::from_min_max(-2.0, 2.0, 8),
        layers: vec![GcnLayerSnapshot {
            weight,
            bias: Some(vec![0.1; fout]),
            w_qp: QuantParams::symmetric(-1.0, 1.0, 8),
            lin_qp: QuantParams::from_min_max(-2.0, 2.0, 8),
            agg_qp: QuantParams::from_min_max(-2.0, 2.0, 8),
            adj_bits: 8,
        }],
    };
    (snap, adj, x)
}

#[test]
fn accumulator_saturation_falls_back_per_layer_and_stays_close() {
    let (snap, adj, x) = drill_snapshot();
    let agg_scale = snap.layers[0].agg_qp.scale;

    let _guard = FaultGuard::with_spec("acc_saturate@1");
    let fallback_logits = QuantizedGcn::prepare(&snap, &adj).infer(&x);
    faultinject::clear();
    let integer_logits = QuantizedGcn::prepare(&snap, &adj).infer(&x);

    assert!(fallback_logits.data().iter().all(|v| v.is_finite()));
    let diff = fallback_logits.max_abs_diff(&integer_logits);
    assert!(
        diff <= 3.0 * agg_scale,
        "fallback drifted {diff} from the integer path (scale {agg_scale})"
    );
}

#[test]
fn checkpoint_resume_is_bit_identical_to_straight_run() {
    let _guard = FaultGuard::clean();
    let dir = std::env::temp_dir();
    let ckpt = dir.join(format!("mixq_ft_resume_{}.ckpt", std::process::id()));
    let _ = std::fs::remove_file(&ckpt);

    // Straight run: 6 epochs in one go.
    let (rep_straight, params_straight) = train_tiny(&quick_cfg());

    // Interrupted run: 3 epochs with a checkpoint at epoch 3, then a second
    // process-restart-style run resuming from it for the remaining epochs.
    let first = TrainConfig {
        epochs: 3,
        checkpoint: Some(mixq::nn::CheckpointConfig {
            path: ckpt.clone(),
            every: 3,
        }),
        ..quick_cfg()
    };
    let _ = train_tiny(&first);
    assert!(ckpt.exists(), "checkpoint must be written at epoch 3");
    let second = TrainConfig {
        resume_from: Some(ckpt.clone()),
        ..quick_cfg()
    };
    let (rep_resumed, params_resumed) = train_tiny(&second);

    assert_eq!(
        params_straight, params_resumed,
        "resume must continue the exact parameter/optimizer/rng trajectory"
    );
    assert_eq!(rep_straight.test_metric, rep_resumed.test_metric);
    assert_eq!(rep_straight.final_train_loss, rep_resumed.final_train_loss);
    let _ = std::fs::remove_file(&ckpt);
}
