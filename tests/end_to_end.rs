//! Cross-crate integration tests: the full train → quantize → search
//! pipeline on a small synthetic dataset. Sized to run in debug mode.

use mixq::core::{gcn_schema, search_gcn_bits, BitAssignment, QGcnNet, QuantKind, SearchConfig};
use mixq::graph::{citation_like, CitationConfig, NodeDataset};
use mixq::nn::{train_node, GcnNet, NodeBundle, ParamSet, TrainConfig};
use mixq::tensor::Rng;

fn tiny_dataset(seed: u64) -> NodeDataset {
    citation_like(
        &CitationConfig {
            name: "tiny",
            nodes: 400,
            feat_dim: 48,
            classes: 4,
            avg_degree: 5.0,
            homophily: 0.85,
            degree_alpha: 2.0,
            topic_size: 8,
            p_topic: 0.5,
            p_noise: 0.02,
            train_per_class: 20,
            val_size: 80,
            test_size: 160,
        },
        seed,
    )
}

fn train_cfg(seed: u64) -> TrainConfig {
    TrainConfig {
        epochs: 80,
        lr: 0.01,
        weight_decay: 5e-4,
        seed,
        patience: 30,
        ..TrainConfig::default()
    }
}

fn train_fp32(ds: &NodeDataset, bundle: &NodeBundle, seed: u64) -> f64 {
    let mut rng = Rng::seed_from_u64(seed);
    let mut ps = ParamSet::new();
    let dims = [ds.feat_dim(), 16, ds.num_classes()];
    let mut net = GcnNet::new(&mut ps, &dims, 0.5, &mut rng);
    train_node(&mut net, &mut ps, ds, bundle, &train_cfg(seed)).test_metric
}

fn train_quantized(ds: &NodeDataset, bundle: &NodeBundle, bits: u8, seed: u64) -> f64 {
    let mut rng = Rng::seed_from_u64(seed);
    let mut ps = ParamSet::new();
    let dims = [ds.feat_dim(), 16, ds.num_classes()];
    let a = BitAssignment::uniform(gcn_schema(2), bits);
    let mut net = QGcnNet::new(
        &mut ps,
        &dims,
        a,
        QuantKind::Native,
        &bundle.degrees,
        0.5,
        &mut rng,
    )
    .expect("assignment matches schema");
    train_node(&mut net, &mut ps, ds, bundle, &train_cfg(seed)).test_metric
}

#[test]
fn fp32_gcn_learns_the_synthetic_task() {
    let ds = tiny_dataset(1);
    let bundle = NodeBundle::new(&ds);
    let acc = train_fp32(&ds, &bundle, 0);
    assert!(
        acc > 0.6,
        "FP32 accuracy {acc} too low — the pipeline is broken"
    );
}

#[test]
fn int8_qat_stays_close_to_fp32() {
    let ds = tiny_dataset(2);
    let bundle = NodeBundle::new(&ds);
    let fp32 = train_fp32(&ds, &bundle, 0);
    let int8 = train_quantized(&ds, &bundle, 8, 0);
    assert!(
        int8 > fp32 - 0.08,
        "INT8 accuracy {int8} should be within 8 points of FP32 {fp32}"
    );
}

#[test]
fn precision_ladder_is_monotone_at_the_extremes() {
    let ds = tiny_dataset(3);
    let bundle = NodeBundle::new(&ds);
    let int8 = train_quantized(&ds, &bundle, 8, 0);
    let int2 = train_quantized(&ds, &bundle, 2, 0);
    assert!(
        int8 > int2 + 0.05,
        "INT8 ({int8}) must clearly beat INT2 ({int2})"
    );
}

#[test]
fn mixq_search_produces_trainable_assignment() {
    let ds = tiny_dataset(4);
    let bundle = NodeBundle::new(&ds);
    let dims = [ds.feat_dim(), 16, ds.num_classes()];
    let scfg = SearchConfig {
        epochs: 24,
        lr: 0.02,
        lambda: 0.1,
        seed: 0,
        warmup: 12,
        ..SearchConfig::default()
    };
    let a = search_gcn_bits(&ds, &bundle, &dims, &[2, 4, 8], 0.5, &scfg);
    assert_eq!(a.len(), 9);
    assert!(a.bits.iter().all(|b| [2u8, 4, 8].contains(b)));

    let mut rng = Rng::seed_from_u64(9);
    let mut ps = ParamSet::new();
    let mut net = QGcnNet::new(
        &mut ps,
        &dims,
        a,
        QuantKind::Native,
        &bundle.degrees,
        0.5,
        &mut rng,
    )
    .expect("assignment matches schema");
    let acc = train_node(&mut net, &mut ps, &ds, &bundle, &train_cfg(0)).test_metric;
    let chance = 1.0 / ds.num_classes() as f64;
    assert!(
        acc > 2.0 * chance,
        "MixQ-selected model accuracy {acc} barely above chance"
    );
}

#[test]
fn dq_quantizer_trains_on_the_same_pipeline() {
    let ds = tiny_dataset(5);
    let bundle = NodeBundle::new(&ds);
    let dims = [ds.feat_dim(), 16, ds.num_classes()];
    let a = BitAssignment::uniform(gcn_schema(2), 4);
    let mut rng = Rng::seed_from_u64(4);
    let mut ps = ParamSet::new();
    let mut net = QGcnNet::new(
        &mut ps,
        &dims,
        a,
        QuantKind::Dq {
            p_min: 0.0,
            p_max: 0.3,
        },
        &bundle.degrees,
        0.5,
        &mut rng,
    )
    .expect("assignment matches schema");
    let acc = train_node(&mut net, &mut ps, &ds, &bundle, &train_cfg(0)).test_metric;
    assert!(acc > 0.4, "DQ INT4 accuracy {acc} unexpectedly low");
}

#[test]
fn a2q_quantizer_trains_on_the_same_pipeline() {
    let ds = tiny_dataset(6);
    let bundle = NodeBundle::new(&ds);
    let dims = [ds.feat_dim(), 16, ds.num_classes()];
    let a = BitAssignment::uniform(gcn_schema(2), 8);
    let mut rng = Rng::seed_from_u64(5);
    let mut ps = ParamSet::new();
    let mut net = QGcnNet::new(
        &mut ps,
        &dims,
        a,
        QuantKind::A2q {
            lo: 2,
            mid: 4,
            hi: 8,
        },
        &bundle.degrees,
        0.5,
        &mut rng,
    )
    .expect("assignment matches schema");
    let acc = train_node(&mut net, &mut ps, &ds, &bundle, &train_cfg(0)).test_metric;
    assert!(acc > 0.4, "A2Q accuracy {acc} unexpectedly low");
}
