//! Workspace API contract tests: the [`QuantizedModel`] trait must be
//! indistinguishable from the inherent executor methods, and fallible
//! public APIs must report typed [`MixqError`]s instead of panicking.

use mixq::core::{
    gcn_schema, sage_schema, BitAssignment, QGcnNet, QSageNet, QuantKind, QuantizedGcn,
    QuantizedModel, QuantizedSage,
};
use mixq::graph::cora_like;
use mixq::nn::{params_from_string, train_node, NodeBundle, ParamSet, TrainConfig};
use mixq::sparse::{gcn_normalize, row_normalize, CsrMatrix};
use mixq::tensor::{Matrix, MixqError, Rng};

/// Exercises the engine only through the trait, the way generic callers do.
fn run_via_trait<M: QuantizedModel>(
    snapshot: &M::Snapshot,
    adj: &CsrMatrix,
    features: &Matrix,
) -> (Matrix, Vec<mixq::core::LayerBits>) {
    let engine = M::prepare(snapshot, adj);
    (engine.infer(features), engine.bit_config())
}

fn short_cfg() -> TrainConfig {
    TrainConfig {
        epochs: 3,
        patience: 0,
        ..TrainConfig::default()
    }
}

#[test]
fn gcn_trait_output_is_identical_to_direct_methods() {
    let ds = cora_like(11);
    let bundle = NodeBundle::new(&ds);
    let dims = [ds.feat_dim(), 8, ds.num_classes()];
    let a = BitAssignment::uniform(gcn_schema(2), 8);
    let mut rng = Rng::seed_from_u64(2);
    let mut ps = ParamSet::new();
    let mut net = QGcnNet::new(
        &mut ps,
        &dims,
        a,
        QuantKind::Native,
        &bundle.degrees,
        0.0,
        &mut rng,
    )
    .expect("assignment matches schema");
    train_node(&mut net, &mut ps, &ds, &bundle, &short_cfg());
    let snap = net.snapshot(&ps).expect("native quantizers");
    let adj = gcn_normalize(&ds.adj);

    let direct = QuantizedGcn::prepare(&snap, &adj);
    let direct_out = direct.infer(&ds.features);
    let (trait_out, bits) = run_via_trait::<QuantizedGcn>(&snap, &adj, &ds.features);

    assert_eq!(direct_out, trait_out, "trait infer must match direct infer");
    assert_eq!(bits, direct.bit_config());
    assert_eq!(bits.len(), 2);
    for b in &bits {
        assert_eq!((b.weight_bits, b.activation_bits, b.adj_bits), (8, 8, 8));
    }
}

#[test]
fn sage_trait_output_is_identical_to_direct_methods() {
    let ds = cora_like(12);
    let bundle = NodeBundle::new(&ds);
    let dims = [ds.feat_dim(), 8, ds.num_classes()];
    let a = BitAssignment::uniform(sage_schema(2), 8);
    let mut rng = Rng::seed_from_u64(3);
    let mut ps = ParamSet::new();
    let mut net = QSageNet::new(
        &mut ps,
        &dims,
        a,
        QuantKind::Native,
        &bundle.degrees,
        0.0,
        &mut rng,
    )
    .expect("assignment matches schema");
    train_node(&mut net, &mut ps, &ds, &bundle, &short_cfg());
    let snap = net.snapshot(&ps).expect("native quantizers");
    let adj = row_normalize(&ds.adj);

    let direct = QuantizedSage::prepare(&snap, &adj);
    let direct_out = direct.infer(&ds.features);
    let (trait_out, bits) = run_via_trait::<QuantizedSage>(&snap, &adj, &ds.features);

    assert_eq!(direct_out, trait_out, "trait infer must match direct infer");
    assert_eq!(bits, direct.bit_config());
    assert!(bits.iter().all(|b| b.weight_bits == 8 && b.adj_bits == 8));
}

#[test]
fn schema_mismatch_is_a_typed_error_not_a_panic() {
    let ds = cora_like(13);
    let bundle = NodeBundle::new(&ds);
    let dims = [ds.feat_dim(), 8, ds.num_classes()];
    let mut rng = Rng::seed_from_u64(4);

    // A SAGE assignment handed to a GCN constructor (and vice versa).
    let mut ps = ParamSet::new();
    let err = QGcnNet::new(
        &mut ps,
        &dims,
        BitAssignment::uniform(sage_schema(2), 8),
        QuantKind::Native,
        &bundle.degrees,
        0.0,
        &mut rng,
    )
    .map(|_| ())
    .unwrap_err();
    assert!(matches!(err, MixqError::InvalidConfig { .. }), "{err:?}");
    assert!(err.to_string().contains("QGcnNet::new"), "{err}");

    let mut ps = ParamSet::new();
    let err = QSageNet::new(
        &mut ps,
        &dims,
        BitAssignment::uniform(gcn_schema(2), 8),
        QuantKind::Native,
        &bundle.degrees,
        0.0,
        &mut rng,
    )
    .map(|_| ())
    .unwrap_err();
    assert!(matches!(err, MixqError::InvalidConfig { .. }), "{err:?}");
}

#[test]
fn snapshot_of_identity_quantizers_is_rejected() {
    // 32-bit components are identity quantizers: the integer engine cannot
    // execute them, and says so instead of panicking mid-export.
    let ds = cora_like(14);
    let bundle = NodeBundle::new(&ds);
    let dims = [ds.feat_dim(), ds.num_classes()];
    let mut rng = Rng::seed_from_u64(5);
    let mut ps = ParamSet::new();
    let net = QGcnNet::new(
        &mut ps,
        &dims,
        BitAssignment::uniform(gcn_schema(1), 32),
        QuantKind::Native,
        &bundle.degrees,
        0.0,
        &mut rng,
    )
    .expect("assignment matches schema");
    let err = net.snapshot(&ps).unwrap_err();
    assert!(matches!(err, MixqError::InvalidConfig { .. }), "{err:?}");
    assert!(err.to_string().contains("bits < 32"), "{err}");
}

#[test]
fn corrupt_checkpoints_report_parse_errors() {
    for text in [
        "",
        "wrong header\n1\n",
        "mixq-params v1\nnot-a-count\n",
        "mixq-params v1\n1\n2 2\n1.0 2.0 3.0\n",
        "mixq-params v1\n1\n2 2\n1.0 2.0 3.0 oops\n",
    ] {
        let err = params_from_string(text).unwrap_err();
        assert!(matches!(err, MixqError::Parse { .. }), "{text:?}: {err:?}");
        assert!(err.to_string().contains("checkpoint"), "{err}");
    }
}

#[test]
fn missing_checkpoint_file_reports_io_error() {
    let err = mixq::nn::load_params("/nonexistent/mixq/ckpt.txt").unwrap_err();
    assert!(matches!(err, MixqError::Io(_)), "{err:?}");
    assert!(std::error::Error::source(&err).is_some());
}

#[test]
fn train_config_builder_validates_ranges() {
    let cfg = TrainConfig::builder()
        .epochs(20)
        .lr(0.05)
        .weight_decay(1e-4)
        .seed(9)
        .patience(5)
        .build()
        .expect("valid config");
    assert_eq!(cfg.epochs, 20);
    assert_eq!(cfg.seed, 9);
    assert_eq!(cfg.patience, 5);

    // Defaults must pass validation unchanged.
    let d = TrainConfig::builder().build().expect("defaults are valid");
    assert_eq!(d.epochs, TrainConfig::default().epochs);

    for bad in [
        TrainConfig::builder().epochs(0).build(),
        TrainConfig::builder().lr(0.0).build(),
        TrainConfig::builder().lr(-0.1).build(),
        TrainConfig::builder().lr(f32::NAN).build(),
        TrainConfig::builder().lr(2.0).build(),
        TrainConfig::builder().weight_decay(-1.0).build(),
        TrainConfig::builder().weight_decay(f32::INFINITY).build(),
    ] {
        let err = bad.unwrap_err();
        assert!(matches!(err, MixqError::InvalidConfig { .. }), "{err:?}");
    }
}
