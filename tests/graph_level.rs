//! Integration tests for the graph-classification pipeline: batching,
//! the GIN architecture, quantized training and the MixQ graph search.

use mixq::core::{
    gin_graph_schema, search_gin_graph_bits, BitAssignment, QGinGraphNet, QuantKind, SearchConfig,
};
use mixq::graph::{imdb_b_like, stratified_kfold};
use mixq::nn::{train_graph, GinGraphNet, GraphBundle, ParamSet, TrainConfig};
use mixq::tensor::Rng;

fn split(ds: &mixq::graph::GraphDataset, seed: u64) -> (GraphBundle, GraphBundle) {
    let mut rng = Rng::seed_from_u64(seed);
    let folds = stratified_kfold(&mut rng, &ds.labels, ds.num_classes, 4);
    let (train_idx, test_idx) = &folds[0];
    (
        GraphBundle::from_graphs(ds, train_idx),
        GraphBundle::from_graphs(ds, test_idx),
    )
}

#[test]
fn fp32_gin_learns_graph_classification() {
    let ds = imdb_b_like(21, 80);
    let (train, test) = split(&ds, 1);
    let mut ps = ParamSet::new();
    let mut rng = Rng::seed_from_u64(0);
    let mut net = GinGraphNet::new(&mut ps, ds.feat_dim(), 16, ds.num_classes, 3, &mut rng);
    let cfg = TrainConfig {
        epochs: 60,
        lr: 0.01,
        weight_decay: 1e-4,
        seed: 0,
        patience: 0,
        ..TrainConfig::default()
    };
    let rep = train_graph(&mut net, &mut ps, &train, &test, &cfg);
    let (train_acc, test_acc) = (rep.train_acc, rep.test_acc);
    assert!(
        train_acc > 0.8,
        "GIN should fit the train split, got {train_acc}"
    );
    assert!(test_acc > 0.6, "GIN test accuracy {test_acc} too low");
}

#[test]
fn quantized_gin_int8_close_to_fp32() {
    let ds = imdb_b_like(22, 80);
    let (train, test) = split(&ds, 2);
    let cfg = TrainConfig {
        epochs: 60,
        lr: 0.01,
        weight_decay: 1e-4,
        seed: 0,
        patience: 0,
        ..TrainConfig::default()
    };

    let mut ps = ParamSet::new();
    let mut rng = Rng::seed_from_u64(0);
    let mut fp32 = GinGraphNet::new(&mut ps, ds.feat_dim(), 16, ds.num_classes, 3, &mut rng);
    let fp_acc = train_graph(&mut fp32, &mut ps, &train, &test, &cfg).test_acc;

    let a = BitAssignment::uniform(gin_graph_schema(3), 8);
    let mut ps = ParamSet::new();
    let mut rng = Rng::seed_from_u64(0);
    let mut qnet = QGinGraphNet::new(
        &mut ps,
        ds.feat_dim(),
        16,
        ds.num_classes,
        3,
        a,
        QuantKind::Native,
        &train.degrees,
        &mut rng,
    )
    .expect("assignment matches schema");
    let q_acc = train_graph(&mut qnet, &mut ps, &train, &test, &cfg).test_acc;
    assert!(
        q_acc > fp_acc - 0.12,
        "INT8 GIN ({q_acc}) should be near FP32 ({fp_acc})"
    );
}

#[test]
fn gin_graph_search_returns_valid_assignment() {
    let ds = imdb_b_like(23, 60);
    let (train, _) = split(&ds, 3);
    let scfg = SearchConfig {
        epochs: 16,
        lr: 0.02,
        lambda: 0.1,
        seed: 0,
        warmup: 8,
        ..SearchConfig::default()
    };
    let a = search_gin_graph_bits(&train, ds.feat_dim(), 16, ds.num_classes, 3, &[4, 8], &scfg);
    assert_eq!(a.names, gin_graph_schema(3));
    assert!(a.bits.iter().all(|b| [4u8, 8].contains(b)));
}

#[test]
fn quantized_gin_handles_different_eval_batch_sizes() {
    // Train and test batches have different node counts; degree-driven
    // state must adapt (regression test for per-batch quantizer state).
    let ds = imdb_b_like(24, 60);
    let (train, test) = split(&ds, 4);
    assert_ne!(train.degrees.len(), test.degrees.len());
    let a = BitAssignment::uniform(gin_graph_schema(2), 8);
    let mut ps = ParamSet::new();
    let mut rng = Rng::seed_from_u64(0);
    let mut qnet = QGinGraphNet::new(
        &mut ps,
        ds.feat_dim(),
        16,
        ds.num_classes,
        2,
        a,
        QuantKind::A2q {
            lo: 4,
            mid: 4,
            hi: 8,
        },
        &train.degrees,
        &mut rng,
    )
    .expect("assignment matches schema");
    let cfg = TrainConfig {
        epochs: 20,
        lr: 0.01,
        weight_decay: 1e-4,
        seed: 0,
        patience: 0,
        ..TrainConfig::default()
    };
    let test_acc = train_graph(&mut qnet, &mut ps, &train, &test, &cfg).test_acc;
    assert!(
        test_acc > 0.4,
        "A2Q GIN should at least beat chance, got {test_acc}"
    );
}

#[test]
fn gcn_graph_net_requantizes_adjacency_per_batch() {
    // Regression: the quantized-adjacency cache must be keyed by batch —
    // evaluating on a batch with a different node count used to reuse the
    // train batch's quantized adjacency and crash in the SpMM.
    use mixq::core::{gcn_graph_schema, QGcnGraphNet};
    let ds = imdb_b_like(25, 60);
    let (train, test) = split(&ds, 5);
    assert_ne!(train.degrees.len(), test.degrees.len());
    let a = BitAssignment::uniform(gcn_graph_schema(2), 8);
    let mut ps = ParamSet::new();
    let mut rng = Rng::seed_from_u64(0);
    let mut net = QGcnGraphNet::new(
        &mut ps,
        ds.feat_dim(),
        16,
        ds.num_classes,
        2,
        a,
        QuantKind::Dq {
            p_min: 0.0,
            p_max: 0.2,
        },
        &train.degrees,
        &mut rng,
    )
    .expect("assignment matches schema");
    let cfg = TrainConfig {
        epochs: 15,
        lr: 0.01,
        weight_decay: 1e-4,
        seed: 0,
        patience: 0,
        ..TrainConfig::default()
    };
    let test_acc = train_graph(&mut net, &mut ps, &train, &test, &cfg).test_acc;
    assert!(test_acc.is_finite());
}

#[test]
fn dq_gin_trains_despite_pooled_head_tensors() {
    // Regression: DQ's protective mask is node-level; pooled per-graph
    // tensors in the readout head must quantize without it (used to panic).
    let ds = imdb_b_like(26, 60);
    let (train, test) = split(&ds, 6);
    let a = BitAssignment::uniform(gin_graph_schema(2), 4);
    let mut ps = ParamSet::new();
    let mut rng = Rng::seed_from_u64(0);
    let mut net = QGinGraphNet::new(
        &mut ps,
        ds.feat_dim(),
        16,
        ds.num_classes,
        2,
        a,
        QuantKind::Dq {
            p_min: 0.0,
            p_max: 0.3,
        },
        &train.degrees,
        &mut rng,
    )
    .expect("assignment matches schema");
    let cfg = TrainConfig {
        epochs: 20,
        lr: 0.01,
        weight_decay: 1e-4,
        seed: 0,
        patience: 0,
        ..TrainConfig::default()
    };
    let test_acc = train_graph(&mut net, &mut ps, &train, &test, &cfg).test_acc;
    assert!(test_acc > 0.4, "DQ GIN should beat chance, got {test_acc}");
}
