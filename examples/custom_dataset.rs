//! Using your own data: build a dataset from a plain-text edge list and
//! node table (the format any graph can be exported to), create splits,
//! train a quantized GCN, and save a reusable checkpoint + bit assignment.
//!
//! Run with: `cargo run --release --example custom_dataset`

use mixq::core::{gcn_schema, BitAssignment, QGcnNet, QuantKind};
use mixq::graph::{
    cora_like, edge_list_to_string, node_table_to_string, parse_edge_list, parse_node_table,
    planetoid_split, NodeDataset, NodeTargets,
};
use mixq::nn::{save_params, train_node, NodeBundle, ParamSet, TrainConfig};
use mixq::tensor::Rng;

fn main() {
    // In a real project these strings would come from files on disk
    // (`load_edge_list` / `std::fs::read_to_string`); here we export a
    // synthetic graph to the text formats and read it back, which is
    // exactly the round-trip your own data would take.
    let source = cora_like(7);
    let edges_txt = edge_list_to_string(&source.adj);
    let nodes_txt = node_table_to_string(source.labels(), &source.features);

    let adj = parse_edge_list(&edges_txt, source.num_nodes()).expect("valid edge list");
    let (labels, features) = parse_node_table(&nodes_txt).expect("valid node table");
    let num_classes = labels.iter().max().unwrap() + 1;
    println!(
        "loaded graph: {} nodes, {} edges, {} features, {num_classes} classes",
        adj.rows(),
        adj.nnz(),
        features.cols()
    );

    let mut rng = Rng::seed_from_u64(0);
    let (train_idx, val_idx, test_idx) =
        planetoid_split(&mut rng, &labels, num_classes, 20, 300, 600);
    let ds = NodeDataset {
        name: "custom".into(),
        adj,
        features,
        targets: NodeTargets::SingleLabel {
            labels,
            num_classes,
        },
        train_idx,
        val_idx,
        test_idx,
    };
    let bundle = NodeBundle::new(&ds);

    // Train an INT8 QAT model and persist everything needed to redeploy it.
    let dims = vec![ds.feat_dim(), 64, ds.num_classes()];
    let assignment = BitAssignment::uniform(gcn_schema(2), 8);
    let mut ps = ParamSet::new();
    let mut net = QGcnNet::new(
        &mut ps,
        &dims,
        assignment.clone(),
        QuantKind::Native,
        &bundle.degrees,
        0.5,
        &mut rng,
    )
    .expect("assignment matches schema");
    let cfg = TrainConfig {
        epochs: 120,
        lr: 0.01,
        weight_decay: 5e-4,
        seed: 0,
        patience: 40,
        ..TrainConfig::default()
    };
    let report = train_node(&mut net, &mut ps, &ds, &bundle, &cfg);
    println!("INT8 test accuracy: {:.1}%", report.test_metric * 100.0);

    let dir = std::env::temp_dir();
    let ckpt = dir.join("custom_model.mixq.txt");
    let bits = dir.join("custom_model.bits.txt");
    save_params(&ps, &ckpt).expect("write checkpoint");
    std::fs::write(&bits, assignment.to_text()).expect("write bit assignment");
    println!(
        "saved checkpoint to {} and bit assignment to {}",
        ckpt.display(),
        bits.display()
    );
}
