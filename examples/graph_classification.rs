//! Graph classification with a quantized 5-layer GIN: searches bit-widths
//! with MixQ on one train/test split of a TU-style dataset and compares
//! against the FP32 model.
//!
//! Run with: `cargo run --release --example graph_classification`

use mixq::core::{search_gin_graph_bits, QGinGraphNet, QuantKind, SearchConfig};
use mixq::graph::{imdb_b_like, stratified_kfold};
use mixq::nn::{train_graph, GinGraphNet, GraphBundle, ParamSet, TrainConfig};
use mixq::tensor::Rng;

fn main() {
    let ds = imdb_b_like(11, 240);
    let mut rng = Rng::seed_from_u64(3);
    let folds = stratified_kfold(&mut rng, &ds.labels, ds.num_classes, 5);
    let (train_idx, test_idx) = &folds[0];
    let train = GraphBundle::from_graphs(&ds, train_idx);
    let test = GraphBundle::from_graphs(&ds, test_idx);
    println!(
        "{}: {} train / {} test graphs, {} features",
        ds.name,
        train.num_graphs(),
        test.num_graphs(),
        ds.feat_dim()
    );
    let cfg = TrainConfig {
        epochs: 80,
        lr: 0.01,
        weight_decay: 1e-4,
        seed: 0,
        patience: 0,
        ..TrainConfig::default()
    };

    // FP32 baseline.
    let mut ps = ParamSet::new();
    let mut rng = Rng::seed_from_u64(0);
    let mut fp32 = GinGraphNet::new(&mut ps, ds.feat_dim(), 32, ds.num_classes, 5, &mut rng);
    let fp32_acc = train_graph(&mut fp32, &mut ps, &train, &test, &cfg).test_acc;
    println!("FP32 GIN test accuracy: {:.1}%", fp32_acc * 100.0);

    // MixQ search over {4,8} bits, then QAT retraining.
    let scfg = SearchConfig {
        epochs: 50,
        lr: 0.01,
        lambda: 0.1,
        seed: 0,
        warmup: 25,
        ..SearchConfig::default()
    };
    let assignment =
        search_gin_graph_bits(&train, ds.feat_dim(), 32, ds.num_classes, 5, &[4, 8], &scfg);
    println!("selected bits: {:?}", assignment.bits);
    let mut ps = ParamSet::new();
    let mut rng = Rng::seed_from_u64(1);
    let mut qnet = QGinGraphNet::new(
        &mut ps,
        ds.feat_dim(),
        32,
        ds.num_classes,
        5,
        assignment,
        QuantKind::Native,
        &train.degrees,
        &mut rng,
    )
    .expect("assignment matches schema");
    let q_acc = train_graph(&mut qnet, &mut ps, &train, &test, &cfg).test_acc;
    let n: u64 = train.degrees.len() as u64;
    let cost = qnet.cost_model(n, train.raw.a.nnz() as u64, train.num_graphs() as u64);
    println!(
        "MixQ GIN test accuracy: {:.1}% at {:.2} average bits",
        q_acc * 100.0,
        cost.avg_bits()
    );
}
