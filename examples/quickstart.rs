//! Quickstart: train an FP32 GCN on a synthetic citation graph, run the
//! MixQ bit-width search, retrain the quantized model, and compare
//! accuracy and BitOPs.
//!
//! Run with: `cargo run --release --example quickstart`

use mixq::core::{
    gcn_cost_model, gcn_schema, search_gcn_bits, BitAssignment, QGcnNet, QuantKind, SearchConfig,
};
use mixq::graph::cora_like;
use mixq::nn::{train_node, GcnNet, NodeBundle, ParamSet, TrainConfig};
use mixq::tensor::Rng;

fn main() {
    // 1. Data: a seeded synthetic citation network (Cora-scale).
    let ds = cora_like(42);
    let bundle = NodeBundle::new(&ds);
    println!(
        "dataset: {} nodes, {} edges, {} features, {} classes",
        ds.num_nodes(),
        ds.num_edges(),
        ds.feat_dim(),
        ds.num_classes()
    );
    let dims = vec![ds.feat_dim(), 64, ds.num_classes()];
    let train_cfg = TrainConfig {
        epochs: 150,
        lr: 0.01,
        weight_decay: 5e-4,
        seed: 0,
        patience: 40,
        ..TrainConfig::default()
    };

    // 2. FP32 baseline.
    let mut rng = Rng::seed_from_u64(0);
    let mut ps = ParamSet::new();
    let mut fp32 = GcnNet::new(&mut ps, &dims, 0.5, &mut rng);
    let rep = train_node(&mut fp32, &mut ps, &ds, &bundle, &train_cfg);
    let fp32_assignment = BitAssignment::uniform(gcn_schema(2), 32);
    let fp32_cost = gcn_cost_model(
        &fp32_assignment,
        &dims,
        ds.num_nodes() as u64,
        (ds.num_edges() + ds.num_nodes()) as u64,
    );
    println!(
        "FP32:  accuracy {:.1}%, {:.2} GBitOPs",
        rep.test_metric * 100.0,
        fp32_cost.gbit_ops()
    );

    // 3. MixQ bit-width search (Algorithm 1): relax every component over
    //    {2,4,8} bits and train the α logits with the bit-cost penalty.
    let search_cfg = SearchConfig {
        epochs: 60,
        lr: 0.01,
        lambda: 0.1,
        seed: 0,
        warmup: 30,
        ..SearchConfig::default()
    };
    let assignment = search_gcn_bits(&ds, &bundle, &dims, &[2, 4, 8], 0.5, &search_cfg);
    println!("MixQ-selected bit-widths:");
    for (name, bits) in assignment.names.iter().zip(&assignment.bits) {
        println!("  {name:<12} {bits} bits");
    }

    // 4. Quantization-aware training of the selected assignment.
    let mut rng = Rng::seed_from_u64(1);
    let mut ps = ParamSet::new();
    let mut qnet = QGcnNet::new(
        &mut ps,
        &dims,
        assignment.clone(),
        QuantKind::Native,
        &bundle.degrees,
        0.5,
        &mut rng,
    )
    .expect("assignment matches schema");
    let qrep = train_node(&mut qnet, &mut ps, &ds, &bundle, &train_cfg);
    let qcost = qnet.cost_model(
        ds.num_nodes() as u64,
        (ds.num_edges() + ds.num_nodes()) as u64,
    );
    println!(
        "MixQ:  accuracy {:.1}%, {:.2} avg bits, {:.2} GBitOPs ({:.1}× fewer bit operations)",
        qrep.test_metric * 100.0,
        qcost.avg_bits(),
        qcost.gbit_ops(),
        fp32_cost.gbit_ops() / qcost.gbit_ops()
    );
}
