//! Integer-only inference with Theorem 1: train a fully-quantized GCN,
//! export its quantization parameters, run inference on integer codes with
//! fixed-point requantization, and verify it matches the fake-quantized
//! training path.
//!
//! Run with: `cargo run --release --example integer_inference`

use mixq::core::{
    gcn_schema, BitAssignment, LayerBits, QGcnNet, QuantKind, QuantizedGcn, QuantizedModel,
};
use mixq::graph::cora_like;
use mixq::nn::{accuracy, eval_node, train_node, NodeBundle, ParamSet, TrainConfig};
use mixq::sparse::{gcn_normalize, CsrMatrix};
use mixq::tensor::{Matrix, Rng};

/// Generic over [`QuantizedModel`] — the same call works for the GraphSAGE
/// engine, which is the point of the shared trait.
fn run_integer<M: QuantizedModel>(
    snapshot: &M::Snapshot,
    adj: &CsrMatrix,
    features: &Matrix,
) -> (Matrix, Vec<LayerBits>) {
    let engine = M::prepare(snapshot, adj);
    (engine.infer(features), engine.bit_config())
}

fn main() {
    let ds = cora_like(7);
    let bundle = NodeBundle::new(&ds);
    let dims = vec![ds.feat_dim(), 64, ds.num_classes()];

    // INT8 everywhere — the configuration Theorem 1's integer engine runs.
    let assignment = BitAssignment::uniform(gcn_schema(2), 8);
    let mut rng = Rng::seed_from_u64(0);
    let mut ps = ParamSet::new();
    let mut net = QGcnNet::new(
        &mut ps,
        &dims,
        assignment,
        QuantKind::Native,
        &bundle.degrees,
        0.5,
        &mut rng,
    )
    .expect("assignment matches schema");
    let cfg = TrainConfig {
        epochs: 120,
        lr: 0.01,
        weight_decay: 5e-4,
        seed: 0,
        patience: 40,
        ..TrainConfig::default()
    };
    let rep = train_node(&mut net, &mut ps, &ds, &bundle, &cfg);
    println!(
        "fake-quantized (QAT) test accuracy: {:.1}%",
        rep.test_metric * 100.0
    );

    // Export scales/zero-points + weights, quantize the adjacency once, and
    // run the whole forward pass on integer codes.
    let snapshot = net.snapshot(&ps).expect("native quantizers with bits < 32");
    let (logits, bit_config) =
        run_integer::<QuantizedGcn>(&snapshot, &gcn_normalize(&ds.adj), &ds.features);
    println!(
        "executing bit-widths per layer (weight/activation/adjacency): {:?}",
        bit_config
            .iter()
            .map(|b| (b.weight_bits, b.activation_bits, b.adj_bits))
            .collect::<Vec<_>>()
    );
    let int_acc = accuracy(&logits, ds.labels(), &ds.test_idx);
    println!(
        "integer-only inference test accuracy: {:.1}%",
        int_acc * 100.0
    );

    let mut rng = Rng::seed_from_u64(1);
    let fq_acc = eval_node(&mut net, &ps, &ds, &bundle, &ds.test_idx, &mut rng);
    println!(
        "agreement with the fake-quantized path: {:.2}% absolute difference",
        (int_acc - fq_acc).abs() * 100.0
    );

    if mixq::telemetry::enabled() {
        match mixq::telemetry::write_report("integer_inference") {
            Ok(p) => println!("telemetry report written to {}", p.display()),
            Err(e) => eprintln!("telemetry report failed: {e}"),
        }
    }
}
