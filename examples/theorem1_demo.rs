//! Demonstrates Theorem 1 numerically: quantized message passing computed
//! from integer codes equals quantizing the fake-quantized FP product.
//!
//! Run with: `cargo run --release --example theorem1_demo`

use mixq::core::{quantized_spmm, QmpParams};
use mixq::sparse::{gcn_normalize, CooEntry, CsrMatrix, QuantCsr};
use mixq::tensor::{Matrix, QuantParams, Rng};

fn main() {
    // A small random graph and feature matrix.
    let mut rng = Rng::seed_from_u64(5);
    let n = 8;
    let f = 4;
    let mut entries = Vec::new();
    for i in 0..n {
        for j in 0..n {
            if i != j && rng.bernoulli(0.3) {
                entries.push(CooEntry {
                    row: i,
                    col: j,
                    val: 1.0,
                });
            }
        }
    }
    let adj = gcn_normalize(&CsrMatrix::from_coo(n, n, entries));
    let x = Matrix::from_fn(n, f, |_, _| rng.normal());

    // Quantize Â symmetrically (Z_a = 0 keeps the sparse structure exact)
    // and X with an affine 8-bit quantizer.
    let a_qp = QuantParams::symmetric(0.0, adj.values().iter().cloned().fold(0.0, f32::max), 8);
    let qa = QuantCsr::from_csr(&adj, 8, |_, _, v| a_qp.quantize(v));
    let x_qp = QuantParams::from_min_max(x.min(), x.max(), 8);
    let qx: Vec<i32> = x.data().iter().map(|&v| x_qp.quantize(v)).collect();
    let y_qp = QuantParams::from_min_max(-4.0, 4.0, 8);

    // Integer path (Theorem 1): C1 ⊙ Qa(A)Qx(X) ⊙ C2 + C3.
    let p = QmpParams::per_tensor(
        n,
        f,
        a_qp.scale,
        0,
        x_qp.scale,
        x_qp.zero_point,
        y_qp.scale,
        y_qp.zero_point,
        y_qp.qmin,
        y_qp.qmax,
    );
    let qy = quantized_spmm(&qa, &qx, f, &p);

    // FP reference: fake-quantize both operands, multiply, quantize.
    let a_fake = adj.map_values(|_, _, v| a_qp.fake(v));
    let x_fake = x.map(|v| x_qp.fake(v));
    let y_ref = a_fake.spmm(x_fake.data(), f);
    let qy_ref: Vec<i32> = y_ref.iter().map(|&v| y_qp.quantize(v)).collect();

    let matches = qy.iter().zip(&qy_ref).filter(|(a, b)| a == b).count();
    println!(
        "integer path matches FP reference on {matches}/{} entries",
        qy.len()
    );
    assert_eq!(qy, qy_ref, "Theorem 1 must be numerically exact");
    println!("Theorem 1 verified: Q_y(AX) computed exactly from integer codes.");
}
