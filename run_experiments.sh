#!/bin/bash
# Regenerates every paper table/figure sequentially (single-core machine).
# Budgets are tuned so the full suite finishes in ~1 hour; raise --runs for
# tighter confidence intervals.
set -u
cd "$(dirname "$0")"
BIN=target/release
run() { echo "=== $1 $2 ==="; $BIN/$1 $2 2>&1 | tee results/$1.txt; }
run table2 ""
run table3 "--runs 4"
run table4 "--runs 2"
run table5 "--runs 2"
run table6 "--runs 2"
run table10 "--runs 4"
run fig9 "--runs 1"
run fig1 "--runs 2"
run fig2 "--quick --runs 1"
run fig3 "--quick --runs 1"
run table9 "--runs 1"
run table8 "--quick --runs 3"
run table7 "--quick --runs 1"
run table1 ""
run fig8 ""
run ablation "--quick --runs 2"
$BIN/report
echo ALL_EXPERIMENTS_DONE
